// Scaling study driver: how does the scheme hold up as station count grows
// within a fixed metro disc (density grows with M, as in Section 4)? Prints
// the delivered ratio, collision losses, background SNR prediction, and the
// analytic metro projection alongside each simulated size.
//
//   $ ./metro_scale
#include <iostream>

#include "analysis/capacity.hpp"
#include "analysis/table.hpp"
#include "core/network_builder.hpp"
#include "geo/placement.hpp"
#include "radio/noise_growth.hpp"
#include "radio/propagation.hpp"
#include "routing/dijkstra.hpp"
#include "routing/graph.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"

namespace {

using namespace drn;

struct Row {
  std::size_t stations = 0;
  double delivery = 0.0;
  std::uint64_t collisions = 0;
  double hops = 0.0;
  double snr_db_model = 0.0;
};

Row run(std::size_t stations, std::uint64_t seed) {
  const double region = 1500.0;
  Rng rng(seed);
  const auto placement = geo::uniform_disc(stations, region, rng);
  const radio::FreeSpacePropagation propagation;
  const auto gains =
      radio::PropagationMatrix::from_placement(placement, propagation);
  const radio::ReceptionCriterion criterion(radio::Hertz{200.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{5.0});

  // Reach scales with density: 2.5x the characteristic length.
  const double r0 = radio::characteristic_length(
      radio::disc_density(stations, radio::Meters{region})).value();
  const double reach = 2.5 * r0;

  core::ScheduledNetworkConfig net_cfg;
  net_cfg.target_received_w = 1.0e-9;
  net_cfg.max_power_w = net_cfg.target_received_w * reach * reach;
  Rng build_rng(seed + 1);
  auto net = core::build_scheduled_network(gains, criterion, net_cfg, build_rng);

  const auto graph = routing::Graph::min_energy(gains, 1.0 / (reach * reach));
  const auto tables = routing::RoutingTables::build(graph);

  sim::SimulatorConfig sim_cfg{criterion};
  sim::Simulator sim(gains, sim_cfg);
  for (StationId s = 0; s < gains.size(); ++s)
    sim.set_mac(s, std::move(net.macs[s]));
  sim.set_router(tables.router());

  Rng traffic_rng(seed + 2);
  for (const auto& inj : sim::poisson_traffic(
           static_cast<double>(stations) * 4.0, 1.0, net.packet_bits,
           sim::uniform_pairs(gains.size()), traffic_rng))
    sim.inject(inj.time_s, inj.packet);
  sim.run_until(120.0);

  Row r;
  r.stations = stations;
  r.delivery = sim.metrics().delivery_ratio();
  r.collisions = sim.metrics().total_hop_losses();
  r.hops = sim.metrics().delivered() > 0 ? sim.metrics().hops().mean() : 0.0;
  r.snr_db_model = radio::nearest_neighbor_snr_db(stations, 0.3 * 0.7).value();
  return r;
}

}  // namespace

int main() {
  std::cout << "Metro scaling study — fixed 1.5 km disc, growing station "
               "count (density grows, reach shrinks, hop counts rise; "
               "collision-freedom persists)\n\n";
  analysis::Table t({"stations", "delivery", "collision losses", "mean hops",
                     "Eq.15 SNR dB (at sim duty)"});
  for (std::size_t n : {std::size_t{50}, std::size_t{100}, std::size_t{200}}) {
    const Row r = run(n, 1000 + n);
    t.add_row({analysis::Table::num(std::uint64_t(r.stations)),
               analysis::Table::num(r.delivery, 4),
               analysis::Table::num(r.collisions),
               analysis::Table::num(r.hops, 2),
               analysis::Table::num(r.snr_db_model, 1)});
  }
  t.print(std::cout);

  std::cout << "\nAnalytic continuation to true metro scale (simulation is "
               "laptop-bound; the analysis is not):\n\n";
  analysis::Table p({"stations", "proc gain dB", "raw Mb/s @2.5GHz",
                     "per-neighbour Mb/s"});
  for (std::size_t n : {std::size_t{1000000}, std::size_t{100000000}}) {
    const auto proj = analysis::metro_projection(n, 0.25, radio::Hertz{2.5e9});
    p.add_row({analysis::Table::num(std::uint64_t(n)),
               analysis::Table::num(proj.required_gain.value(), 1),
               analysis::Table::num(proj.raw_rate.value() / 1e6, 1),
               analysis::Table::num(proj.per_neighbor_rate.value() / 1e6, 2)});
  }
  p.print(std::cout);
  return 0;
}
