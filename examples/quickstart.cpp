// Quickstart: build a 20-station packet radio network with the paper's
// collision-free scheduled channel access, route with minimum energy, push
// some traffic through it, and print what happened.
//
//   $ ./quickstart
#include <iostream>

#include "core/network_builder.hpp"
#include "geo/placement.hpp"
#include "radio/propagation.hpp"
#include "routing/dijkstra.hpp"
#include "routing/graph.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"

int main() {
  using namespace drn;

  // 1. Scatter 20 stations over a 600 m disc (positions in metres).
  Rng rng(2024);
  const geo::Placement placement = geo::uniform_disc(20, 600.0, rng);

  // 2. Physics: free-space 1/r^2 propagation -> the gain matrix H.
  const radio::FreeSpacePropagation propagation;
  const auto gains =
      radio::PropagationMatrix::from_placement(placement, propagation);

  // 3. The radio design point: 1 Mb/s over 200 MHz of spread bandwidth
  //    (23 dB processing gain) with a 5 dB margin over the Shannon bound.
  const radio::ReceptionCriterion criterion(radio::Hertz{200.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{5.0});

  // 4. Build the self-organising network: random clocks, rendezvous-fitted
  //    clock models, pseudo-random schedules (p = 0.3), power control
  //    delivering 1 nW to every addressee.
  core::ScheduledNetworkConfig net_cfg;
  net_cfg.target_received_w = 1.0e-9;
  net_cfg.max_power_w = 1.0e-3;  // limits direct reach to ~1 km
  Rng build_rng(7);
  auto net = core::build_scheduled_network(gains, criterion, net_cfg, build_rng);

  // 5. Minimum-energy routes straight from the propagation matrix.
  const auto graph = routing::Graph::min_energy(
      gains, net_cfg.target_received_w / net_cfg.max_power_w);
  const auto tables = routing::RoutingTables::build(graph);

  // 6. Wire it into the event simulator and offer Poisson traffic.
  sim::SimulatorConfig sim_cfg{criterion};
  sim::Simulator sim(gains, sim_cfg);
  for (StationId s = 0; s < gains.size(); ++s)
    sim.set_mac(s, std::move(net.macs[s]));
  sim.set_router(tables.router());

  Rng traffic_rng(99);
  for (const auto& inj :
       sim::poisson_traffic(/*packets_per_second=*/100.0, /*duration_s=*/2.0,
                            net.packet_bits, sim::uniform_pairs(gains.size()),
                            traffic_rng))
    sim.inject(inj.time_s, inj.packet);

  sim.run_until(30.0);

  // 7. Results.
  const auto& m = sim.metrics();
  std::cout << "offered packets:        " << m.offered() << '\n'
            << "delivered end-to-end:   " << m.delivered() << " ("
            << 100.0 * m.delivery_ratio() << "%)\n"
            << "mean hops per packet:   " << m.hops().mean() << '\n'
            << "mean delay:             " << m.delay().mean() * 1000.0
            << " ms\n"
            << "collision losses:       type1=" << m.losses(sim::LossType::kType1)
            << " type2=" << m.losses(sim::LossType::kType2)
            << " type3=" << m.losses(sim::LossType::kType3) << '\n';
  std::cout << "\nThe scheme is collision-free: every loss row above should "
               "read zero.\n";
  return 0;
}
