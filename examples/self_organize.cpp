// Zero-configuration bootstrap: stations are dropped into the world knowing
// NOTHING — no neighbour lists, no clock relationships, no gains. They run
// the over-the-air discovery phase (broadcast beacons stamped with local
// clock readings), assemble their neighbour tables and clock models from
// what they heard, derive minimum-energy routes from the measured gains, and
// then carry traffic collision-free. The whole Section 3.5 + Section 7
// self-organisation story in one program.
//
//   $ ./self_organize
#include <iostream>

#include "analysis/table.hpp"
#include "core/discovery.hpp"
#include "geo/placement.hpp"
#include "radio/propagation.hpp"
#include "routing/dijkstra.hpp"
#include "routing/graph.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"

int main() {
  using namespace drn;

  // The world (unknown to the stations): 25 stations in a 500 m disc.
  Rng rng(777);
  const geo::Placement placement = geo::uniform_disc(25, 500.0, rng);
  const radio::FreeSpacePropagation propagation;
  const auto gains =
      radio::PropagationMatrix::from_placement(placement, propagation);
  const radio::ReceptionCriterion criterion(radio::Hertz{200.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{5.0});

  // Phase 1: discovery. Beacons at known power, stamped with local clocks;
  // every gain and clock model below comes off the air, with 0.5 dB of
  // measurement noise.
  core::ScheduledNetworkConfig net_cfg;
  net_cfg.target_received_w = 1.0e-9;
  net_cfg.max_power_w = 6.25e-4;  // reach 790 m: ample in a 500 m disc
  core::DiscoveryConfig disc_cfg;
  disc_cfg.beacon_count = 8;
  disc_cfg.duration_s = 8.0;
  Rng build_rng(778);
  auto net =
      core::discover_and_build(gains, criterion, net_cfg, disc_cfg, build_rng);

  std::size_t total_links = 0;
  for (const auto& nbrs : net.neighbors) total_links += nbrs.size();
  std::cout << "discovery phase: " << disc_cfg.beacon_count
            << " beacons/station over " << disc_cfg.duration_s << " s -> "
            << total_links / 2 << " bidirectional links learned\n";

  // Phase 2: routing over the MEASURED gains (each station would run the
  // distributed Bellman-Ford of Section 6.2; the tables are equivalent).
  routing::Graph graph(gains.size());
  for (StationId a = 0; a < gains.size(); ++a) {
    for (StationId b : net.neighbors[a]) {
      if (b < a) continue;  // undirected, add once
      const auto* obs = net.macs[a]->neighbors().find(b);
      if (obs == nullptr) continue;
      graph.add_edge(a, b, 1.0 / obs->gain, obs->gain);
    }
  }
  std::cout << "measured-gain routing graph: " << graph.edge_count()
            << " edges, "
            << (graph.connected() ? "connected" : "NOT connected") << "\n\n";
  const auto tables = routing::RoutingTables::build(graph);

  // Phase 3: traffic.
  sim::SimulatorConfig sim_cfg{criterion};
  sim::Simulator sim(gains, sim_cfg);
  for (StationId s = 0; s < gains.size(); ++s)
    sim.set_mac(s, std::move(net.macs[s]));
  sim.set_router(tables.router());
  Rng traffic_rng(779);
  for (const auto& inj :
       sim::poisson_traffic(150.0, 2.0, net.packet_bits,
                            sim::uniform_pairs(gains.size()), traffic_rng))
    sim.inject(inj.time_s, inj.packet);
  sim.run_until(60.0);

  const auto& m = sim.metrics();
  analysis::Table t({"offered", "delivered", "T1", "T2", "T3", "mean hops",
                     "mean delay ms"});
  t.add_row({analysis::Table::num(m.offered()),
             analysis::Table::num(m.delivered()),
             analysis::Table::num(m.losses(sim::LossType::kType1)),
             analysis::Table::num(m.losses(sim::LossType::kType2)),
             analysis::Table::num(m.losses(sim::LossType::kType3)),
             analysis::Table::num(m.hops().mean(), 2),
             analysis::Table::num(m.delay().mean() * 1e3, 1)});
  t.print(std::cout);
  std::cout << "\nNo ground truth was shared with any station: gains, clock "
               "models, routes and schedules all came over the air, and the "
               "network still runs collision-free.\n";
  return 0;
}
