// Clock modelling walkthrough (Section 7): two stations with drifting
// quartz clocks rendezvous a few times, fit affine models of each other's
// clocks, and then predict the other's schedule windows minutes into the
// future. Shows the prediction error versus the guard budget.
//
//   $ ./clock_rendezvous
#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/table.hpp"
#include "core/clock.hpp"
#include "core/clock_model.hpp"
#include "core/schedule.hpp"

int main() {
  using namespace drn;

  // Two stations: clocks set independently at random, rates off-nominal by
  // +13 ppm and -22 ppm of quartz drift.
  const core::StationClock alice(core::Seconds{73123.521}, 1.0 + 13e-6);
  const core::StationClock bob(core::Seconds{4211.007}, 1.0 - 22e-6);

  std::cout << "alice: offset " << alice.offset().value() << " s, rate "
            << alice.rate() << "\n"
            << "bob:   offset " << bob.offset().value() << " s, rate " << bob.rate()
            << "\n\n";

  // Rendezvous: four exchanges over two minutes, each reading the peer's
  // clock with +-2 microseconds of timestamping error.
  Rng rng(42);
  const std::vector<double> when = {-120.0, -80.0, -40.0, -1.0};
  const auto samples = core::rendezvous(alice, bob, when, 2.0e-6, rng);

  std::cout << "rendezvous samples (alice's local clock -> bob's):\n";
  for (const auto& s : samples)
    std::cout << "  " << s.mine_s << " -> " << s.theirs_s << '\n';

  const core::ClockModel model = core::ClockModel::fit(samples);
  std::cout << "\nfitted model: bob ~= " << model.a() << " + " << model.b()
            << " * alice   (max residual " << model.max_residual_s() * 1e6
            << " us)\n\n";

  // Prediction error growing with horizon.
  analysis::Table t({"horizon (s)", "prediction error (us)",
                     "guard budget (us)", "within guard?"});
  const double guard_s = 200.0e-6;  // 2% of a 10 ms slot
  for (double horizon : {1.0, 10.0, 60.0, 300.0, 1800.0}) {
    const double predicted = model.map(alice.local(core::Seconds{horizon}).value());
    const double truth = bob.local(core::Seconds{horizon}).value();
    const double err = std::abs(predicted - truth);
    t.add_row({analysis::Table::num(horizon, 0),
               analysis::Table::num(err * 1e6, 2),
               analysis::Table::num(guard_s * 1e6, 0),
               err < guard_s ? "yes" : "NO - re-rendezvous needed"});
  }
  t.print(std::cout);

  // What the model is for: finding bob's receive windows.
  const core::Schedule schedule(0xABCD, 0.01, 0.3);
  std::cout << "\nbob's next receive windows, as alice predicts them (and "
               "the truth):\n";
  int shown = 0;
  for (std::int64_t slot = schedule.slot_index(model.map(alice.local(core::Seconds{0.0}).value()));
       shown < 5; ++slot) {
    if (!schedule.is_receive_slot(slot)) continue;
    const double bob_local = schedule.slot_begin(slot);
    const double alice_thinks_global = alice.global(core::Seconds{model.inverse(bob_local)}).value();
    const double truly_global = bob.global(core::Seconds{bob_local}).value();
    std::cout << "  slot " << slot << ": predicted t="
              << alice_thinks_global << " s, true t=" << truly_global
              << " s (error "
              << std::abs(alice_thinks_global - truly_global) * 1e6
              << " us)\n";
    ++shown;
  }
  std::cout << "\nErrors stay microseconds-deep inside the 200 us guard, so "
               "every packet alice schedules lands inside a window bob is "
               "actually listening to — Section 7's requirement.\n";
  return 0;
}
