// The paper's motivating scenario (Section 1): replacing cables between
// buildings. A neighbourhood of clustered buildings (Matern-style blocks)
// with log-normal obstruction on every path, running the scheduled scheme
// over minimum-energy routes, compared against what pure ALOHA does on the
// identical physical plant.
//
//   $ ./neighborhood_mesh
#include <iostream>
#include <memory>

#include "analysis/table.hpp"
#include "baselines/aloha.hpp"
#include "core/network_builder.hpp"
#include "geo/placement.hpp"
#include "radio/propagation.hpp"
#include "routing/dijkstra.hpp"
#include "routing/graph.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"

namespace {

using namespace drn;

struct Result {
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t collisions = 0;
  std::uint64_t attempts = 0;
  double delay_ms = 0.0;
};

Result run(bool scheduled, const radio::PropagationMatrix& gains,
           const radio::ReceptionCriterion& criterion,
           const routing::RoutingTables& tables, double packet_bits) {
  sim::SimulatorConfig sim_cfg{criterion};
  sim::Simulator sim(gains, sim_cfg);

  core::ScheduledNetworkConfig net_cfg;
  net_cfg.target_received_w = 1.0e-9;
  net_cfg.max_power_w = 1.0e-3;
  Rng build_rng(11);
  auto net = core::build_scheduled_network(gains, criterion, net_cfg, build_rng);

  if (scheduled) {
    for (StationId s = 0; s < gains.size(); ++s)
      sim.set_mac(s, std::move(net.macs[s]));
  } else {
    baselines::ContentionConfig cc;
    cc.power_w = 1.0e-4;
    cc.max_retries = 6;
    cc.backoff_mean_s = 0.01;
    for (StationId s = 0; s < gains.size(); ++s)
      sim.set_mac(s, std::make_unique<baselines::PureAloha>(cc));
  }
  sim.set_router(tables.router());

  Rng traffic_rng(77);
  for (const auto& inj :
       sim::poisson_traffic(250.0, 2.0, packet_bits,
                            sim::uniform_pairs(gains.size()), traffic_rng))
    sim.inject(inj.time_s, inj.packet);
  sim.run_until(60.0);

  Result r;
  r.offered = sim.metrics().offered();
  r.delivered = sim.metrics().delivered();
  r.collisions = sim.metrics().total_hop_losses();
  r.attempts = sim.metrics().hop_attempts();
  r.delay_ms =
      sim.metrics().delivered() > 0 ? sim.metrics().delay().mean() * 1e3 : 0.0;
  return r;
}

}  // namespace

int main() {
  // Six city blocks of eight buildings each, blocks ~120 m wide, scattered
  // over a ~1 km neighbourhood.
  Rng rng(5150);
  const geo::Placement placement =
      geo::clustered_disc(/*clusters=*/6, /*per_cluster=*/8,
                          /*radius=*/500.0, /*cluster_radius=*/60.0, rng);

  // Obstructed propagation: free space degraded by 6 dB log-normal
  // shadowing (walls, trees), deterministic per building pair.
  auto free_space = std::make_shared<radio::FreeSpacePropagation>();
  const radio::LogNormalShadowing propagation(free_space, radio::Decibels{6.0}, 0xbeef);
  const auto gains =
      radio::PropagationMatrix::from_placement(placement, propagation);

  const radio::ReceptionCriterion criterion(radio::Hertz{200.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{5.0});
  const auto graph = routing::Graph::min_energy(gains, 1.0e-6);
  std::cout << "neighbourhood mesh: " << gains.size() << " buildings, "
            << graph.edge_count() << " usable links, "
            << (graph.connected() ? "connected" : "NOT connected") << "\n\n";
  const auto tables = routing::RoutingTables::build(graph);
  const double packet_bits = 1.0e6 * 0.0025;  // quarter of a 10 ms slot

  const Result scheme = run(true, gains, criterion, tables, packet_bits);
  const Result aloha = run(false, gains, criterion, tables, packet_bits);

  analysis::Table t({"MAC", "offered", "delivered", "collision losses",
                     "transmissions", "mean delay ms"});
  t.add_row({"scheduled scheme", analysis::Table::num(scheme.offered),
             analysis::Table::num(scheme.delivered),
             analysis::Table::num(scheme.collisions),
             analysis::Table::num(scheme.attempts),
             analysis::Table::num(scheme.delay_ms, 1)});
  t.add_row({"pure ALOHA", analysis::Table::num(aloha.offered),
             analysis::Table::num(aloha.delivered),
             analysis::Table::num(aloha.collisions),
             analysis::Table::num(aloha.attempts),
             analysis::Table::num(aloha.delay_ms, 1)});
  t.print(std::cout);
  std::cout << "\nSame buildings, same radios, same obstructions — only the "
               "channel access differs. ALOHA's deliveries lean on a genie "
               "acknowledgement (free, instant) to drive retransmissions; "
               "every collision row is a wasted transmission the scheme "
               "never makes.\n";
  return 0;
}
