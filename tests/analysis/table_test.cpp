#include "analysis/table.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include <sstream>

#include "common/expects.hpp"

namespace drn::analysis {
namespace {

TEST(Table, PrintsHeadersRuleAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // 4 lines: header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table t({"h", "x"});
  t.add_row({"longcell", "1"});
  std::ostringstream os;
  t.print(os);
  std::istringstream is(os.str());
  std::string header;
  std::string rule;
  std::getline(is, header);
  std::getline(is, rule);
  // Rule under the first column spans "longcell" (8 dashes).
  EXPECT_NE(rule.find("--------"), std::string::npos);
}

TEST(Table, RowWidthMismatchRejected) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
  EXPECT_THROW(Table({}), ContractViolation);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.14159, 0), "3");
  EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
}

}  // namespace
}  // namespace drn::analysis
