#include "analysis/ascii_plot.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/expects.hpp"

namespace drn::analysis {
namespace {

TEST(AsciiPlot, RendersGlyphsAndLegend) {
  AsciiPlot plot(40, 10);
  plot.add({"rising", '*', {0.0, 1.0, 2.0}, {0.0, 1.0, 2.0}});
  plot.add({"falling", 'o', {0.0, 1.0, 2.0}, {2.0, 1.0, 0.0}});
  plot.x_label("x");
  plot.y_label("y");
  std::ostringstream os;
  plot.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
  EXPECT_NE(out.find("* = rising"), std::string::npos);
  EXPECT_NE(out.find("o = falling"), std::string::npos);
  EXPECT_NE(out.find("+----"), std::string::npos);  // x axis
}

TEST(AsciiPlot, CornersLandAtExtremes) {
  AsciiPlot plot(20, 5);
  plot.add({"s", '#', {0.0, 10.0}, {0.0, 5.0}});
  std::ostringstream os;
  plot.print(os);
  std::istringstream is(os.str());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(is, line)) lines.push_back(line);
  // First grid row holds the max-y point (right edge), last grid row the
  // min-y point (left edge).
  EXPECT_EQ(lines[0].back(), '#');
  EXPECT_EQ(lines[4][10], '#');  // after the 10-char tick gutter: column 0
}

TEST(AsciiPlot, DegenerateRangesHandled) {
  AsciiPlot plot(20, 5);
  plot.add({"flat", '*', {1.0, 2.0, 3.0}, {7.0, 7.0, 7.0}});
  std::ostringstream os;
  plot.print(os);  // must not divide by zero
  EXPECT_NE(os.str().find('*'), std::string::npos);
}

TEST(AsciiPlot, Contracts) {
  EXPECT_THROW(AsciiPlot(5, 5), ContractViolation);
  EXPECT_THROW(AsciiPlot(20, 2), ContractViolation);
  AsciiPlot plot(20, 5);
  EXPECT_THROW(plot.add({"bad", '*', {}, {}}), ContractViolation);
  EXPECT_THROW(plot.add({"bad", '*', {1.0}, {1.0, 2.0}}), ContractViolation);
  std::ostringstream os;
  EXPECT_THROW(plot.print(os), ContractViolation);  // no series
}

}  // namespace
}  // namespace drn::analysis
