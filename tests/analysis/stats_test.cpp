#include "analysis/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/expects.hpp"
#include "common/rng.hpp"

namespace drn::analysis {
namespace {

TEST(Histogram, BinningBasics) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  h.add(9.9);
  EXPECT_EQ(h.bins(), 10u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.5);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(7.0);
  h.add(1.0);  // exactly the upper edge clamps to the last bin
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinGeometry) {
  Histogram h(2.0, 6.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_width(), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 2.5);
  EXPECT_DOUBLE_EQ(h.bin_center(3), 5.5);
}

TEST(Histogram, EmptyFractionIsZero) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

TEST(Histogram, Contracts) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ContractViolation);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractViolation);
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW((void)h.count(2), ContractViolation);
  EXPECT_THROW((void)h.bin_center(2), ContractViolation);
}

TEST(Percentile, OrderStatistics) {
  const std::vector<double> v = {3.0, 1.0, 2.0, 5.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile(v, 12.5), 1.5);  // interpolated
}

TEST(Percentile, SingleElement) {
  const std::vector<double> v = {7.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 7.0);
}

TEST(Percentile, UniformSampleQuartiles) {
  Rng rng(3);
  std::vector<double> v;
  for (int i = 0; i < 20000; ++i) v.push_back(rng.uniform());
  EXPECT_NEAR(percentile(v, 25.0), 0.25, 0.01);
  EXPECT_NEAR(percentile(v, 75.0), 0.75, 0.01);
}

TEST(Percentile, Contracts) {
  EXPECT_THROW((void)percentile({}, 50.0), ContractViolation);
  const std::vector<double> v = {1.0};
  EXPECT_THROW((void)percentile(v, -1.0), ContractViolation);
  EXPECT_THROW((void)percentile(v, 101.0), ContractViolation);
}

TEST(Mean, Basics) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_THROW((void)mean({}), ContractViolation);
}

}  // namespace
}  // namespace drn::analysis
