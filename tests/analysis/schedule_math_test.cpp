#include "analysis/schedule_math.hpp"

#include <gtest/gtest.h>

#include "common/expects.hpp"

namespace drn::analysis {
namespace {

TEST(ScheduleMath, AccessProbability) {
  EXPECT_DOUBLE_EQ(access_probability(0.3), 0.21);
  EXPECT_DOUBLE_EQ(access_probability(0.5), 0.25);
  EXPECT_DOUBLE_EQ(access_probability(0.0), 0.0);
  EXPECT_DOUBLE_EQ(access_probability(1.0), 0.0);
}

TEST(ScheduleMath, PaperExpectedWait) {
  // Section 7.2: "the expected number of slots until the packet can be sent
  // is 1/(p(1-p)), which for p = 0.3 is 4.76 slot times."
  EXPECT_NEAR(expected_wait(0.3).value(), 4.7619, 1e-3);
  EXPECT_DOUBLE_EQ(expected_wait(0.5).value(), 4.0);
}

TEST(ScheduleMath, WaitPmfIsGeometricAndNormalised) {
  const double p = 0.3;
  double total = 0.0;
  double expectation = 0.0;
  for (unsigned k = 0; k < 400; ++k) {
    const double pk = wait_pmf(p, k);
    total += pk;
    expectation += k * pk;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Mean of the geometric (counting from 0) is (1-q)/q; the paper's "slots
  // until sendable" counts the success slot too: 1/q.
  EXPECT_NEAR(expectation + 1.0, expected_wait(p).value(), 1e-6);
}

TEST(ScheduleMath, PairwiseOptimumIsHalf) {
  EXPECT_DOUBLE_EQ(pairwise_optimal_receive_fraction(), 0.5);
  for (double p : {0.1, 0.3, 0.45, 0.6, 0.9})
    EXPECT_LE(access_probability(p), access_probability(0.5));
}

TEST(ScheduleMath, QuarterSlotPackingIs75Percent) {
  // Section 7.2: quarter-slot packets capture "75% of the total time when
  // transmission is possible".
  EXPECT_NEAR(packing_efficiency(0.25), 0.75, 1e-12);
}

TEST(ScheduleMath, PackingEfficiencyLimits) {
  // Whole-slot packets: a packet fits only if the overlap is the full slot
  // (probability 0) -> efficiency 0.
  EXPECT_NEAR(packing_efficiency(1.0), 0.0, 1e-12);
  // Tiny packets waste almost nothing.
  EXPECT_GT(packing_efficiency(0.01), 0.98);
  // Monotone improvement as packets shrink.
  EXPECT_GT(packing_efficiency(0.125), packing_efficiency(0.25));
  EXPECT_GT(packing_efficiency(0.25), packing_efficiency(0.5));
}

TEST(ScheduleMath, PackingMatchesMonteCarlo) {
  // Direct simulation of E[floor(U/f)]*f / E[U].
  for (double f : {0.1, 0.25, 0.5}) {
    double usable = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
      const double overlap = (i + 0.5) / n;  // stratified U ~ Uniform(0,1)
      usable += static_cast<double>(static_cast<int>(overlap / f)) * f;
    }
    EXPECT_NEAR(usable / n / 0.5, packing_efficiency(f), 1e-3) << f;
  }
}

TEST(ScheduleMath, PaperUsableFractionFifteenPercent) {
  // 21% raw per-neighbour availability x 75% packing ~ 15.75%.
  EXPECT_NEAR(usable_time_fraction(0.3, 0.25), 0.1575, 1e-4);
}

TEST(ScheduleMath, Contracts) {
  EXPECT_THROW((void)access_probability(-0.1), ContractViolation);
  EXPECT_THROW((void)access_probability(1.1), ContractViolation);
  EXPECT_THROW((void)expected_wait(0.0), ContractViolation);
  EXPECT_THROW((void)expected_wait(1.0), ContractViolation);
  EXPECT_THROW((void)wait_pmf(0.0, 1), ContractViolation);
  EXPECT_THROW((void)packing_efficiency(0.0), ContractViolation);
  EXPECT_THROW((void)packing_efficiency(1.5), ContractViolation);
}

}  // namespace
}  // namespace drn::analysis
