#include "analysis/delay_model.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "analysis/schedule_math.hpp"
#include "common/expects.hpp"
#include "common/rng.hpp"

namespace drn::analysis {
namespace {

TEST(DelayModel, GeometricPmfSumsToOne) {
  for (double p : {0.2, 0.3, 0.5}) {
    const auto pmf = geometric_wait_pmf(p, 40);
    double sum = 0.0;
    for (double x : pmf) sum += x;
    EXPECT_NEAR(sum, 1.0, 1e-12) << p;
  }
}

TEST(DelayModel, GeometricPmfMatchesWaitPmf) {
  const auto pmf = geometric_wait_pmf(0.3, 100);
  for (unsigned k = 0; k < 50; ++k)
    EXPECT_NEAR(pmf[k], wait_pmf(0.3, k), 1e-12);
}

TEST(DelayModel, TailFoldsIntoLastBin) {
  const auto pmf = geometric_wait_pmf(0.3, 3);
  // Last bin carries P(wait >= 2) = (1-q)^2.
  const double q = access_probability(0.3);
  EXPECT_NEAR(pmf[2], (1.0 - q) * (1.0 - q), 1e-12);
}

TEST(DelayModel, BinningFractions) {
  const std::vector<double> waits = {0.2, 0.9, 1.1, 2.7, 9.9, 50.0};
  const auto f = binned_wait_fractions(waits, 5);
  EXPECT_NEAR(f[0], 2.0 / 6.0, 1e-12);
  EXPECT_NEAR(f[1], 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(f[2], 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(f[4], 2.0 / 6.0, 1e-12);  // 9.9 and 50 fold into the last bin
}

TEST(DelayModel, TotalVariation) {
  const std::vector<double> a = {0.5, 0.5, 0.0};
  const std::vector<double> b = {0.0, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(total_variation(a, a), 0.0);
  EXPECT_DOUBLE_EQ(total_variation(a, b), 0.5);
  const std::vector<double> c = {1.0, 0.0, 0.0};
  const std::vector<double> d = {0.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(total_variation(c, d), 1.0);
}

TEST(DelayModel, SampledGeometricMatchesModel) {
  // Draw geometric waits and verify the pipeline closes on itself.
  Rng rng(5);
  const double p = 0.3;
  const double q = access_probability(p);
  std::vector<double> waits;
  for (int i = 0; i < 50000; ++i) {
    double w = 0.0;
    while (!rng.bernoulli(q)) w += 1.0;
    waits.push_back(w + rng.uniform());  // fractional phase inside the slot
  }
  const auto measured = binned_wait_fractions(waits, 30);
  const auto model = geometric_wait_pmf(p, 30);
  EXPECT_LT(total_variation(measured, model), 0.02);
  EXPECT_NEAR(binned_mean(measured) + 0.5, expected_wait(p).value(), 0.2);
}

TEST(DelayModel, Contracts) {
  EXPECT_THROW((void)geometric_wait_pmf(0.3, 0), ContractViolation);
  EXPECT_THROW((void)geometric_wait_pmf(0.0, 5), ContractViolation);
  EXPECT_THROW((void)binned_wait_fractions({}, 5), ContractViolation);
  const std::vector<double> neg = {-1.0};
  EXPECT_THROW((void)binned_wait_fractions(neg, 5), ContractViolation);
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {0.5, 0.5};
  EXPECT_THROW((void)total_variation(a, b), ContractViolation);
  EXPECT_THROW((void)total_variation({}, {}), ContractViolation);
  EXPECT_THROW((void)binned_mean({}), ContractViolation);
}

}  // namespace
}  // namespace drn::analysis
