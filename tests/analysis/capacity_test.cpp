#include "analysis/capacity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/expects.hpp"
#include "radio/noise_growth.hpp"

namespace drn::analysis {
namespace {

TEST(ProcessingGain, PaperBudgetLandsIn20To25Db) {
  // Section 6: SNR at the characteristic distance in the -10..-15 dB range
  // for reasonable duty cycles, +5 dB detection headroom, +6 dB for
  // neighbours out at twice the distance -> 20-25 dB processing gain.
  for (std::size_t m : {std::size_t{1000000}, std::size_t{1000000000}}) {
    for (double eta : {0.5, 1.0}) {
      const auto b = processing_gain_budget(m, eta);
      // The paper rounds its window to "20 to 25 dB"; the exact budget for
      // these corners spans ~19.4-25.4 dB.
      EXPECT_GE(b.required_gain.value(), 19.0) << m << " " << eta;
      EXPECT_LE(b.required_gain.value(), 26.5) << m << " " << eta;
    }
  }
}

TEST(ProcessingGain, BudgetDecomposition) {
  const auto b = processing_gain_budget(1000000, 1.0, units::Decibels{5.0},
                                        units::Decibels{6.0});
  EXPECT_NEAR(b.snr.value(),
              radio::nearest_neighbor_snr_db(1000000, 1.0).value(), 1e-12);
  EXPECT_DOUBLE_EQ(b.detection_margin.value(), 5.0);
  EXPECT_DOUBLE_EQ(b.range_margin.value(), 6.0);
  EXPECT_NEAR(b.required_gain.value(), -b.snr.value() + 11.0, 1e-12);
}

TEST(ProcessingGain, LowerDutyCycleNeedsLessGain) {
  const auto full = processing_gain_budget(1000000, 1.0);
  const auto quarter = processing_gain_budget(1000000, 0.25);
  EXPECT_NEAR(full.required_gain.value() - quarter.required_gain.value(), 6.02,
              0.01);
}

TEST(MetroProjection, HundredsOfMegabitsAtMetroScale) {
  // The conclusion's claim: "a self-organizing packet radio network may
  // scale to millions of stations within a metro area with raw per-station
  // rates in the hundreds of megabits per second", given a modest fraction
  // of spectrum and optimistic ("future") signal processing. With 10 GHz of
  // spread bandwidth (a modest fraction of a tens-of-GHz band) and the
  // eta=0.25 budget, the raw rate clears 100 Mb/s; 2.5 GHz lands at tens.
  const auto p = metro_projection(2000000, 0.25, units::Hertz{1.0e10});
  EXPECT_GT(p.raw_rate.value(), 1.0e8);
  EXPECT_LT(p.raw_rate.value(), 1.0e9);
  EXPECT_GT(p.per_neighbor_rate.value(), 1.0e7);
  const auto q = metro_projection(2000000, 0.25, units::Hertz{2.5e9});
  EXPECT_GT(q.raw_rate.value(), 1.0e7);
}

TEST(MetroProjection, RawRateIsBandwidthOverGain) {
  const auto p = metro_projection(1000000, 1.0, units::Hertz{1.0e9});
  const auto b = processing_gain_budget(1000000, 1.0);
  EXPECT_NEAR(p.raw_rate.value(),
              1.0e9 / std::pow(10.0, b.required_gain.value() / 10.0), 1.0);
  EXPECT_DOUBLE_EQ(p.required_gain.value(), b.required_gain.value());
}

TEST(MetroProjection, ShannonBoundDominatesDesignRate) {
  // The budgeted design rate must sit below the information-theoretic bound
  // (that is what the 5 dB margin buys).
  for (std::size_t m : {std::size_t{100000}, std::size_t{100000000}}) {
    const auto p = metro_projection(m, 0.5, units::Hertz{1.0e9});
    EXPECT_LT(p.raw_rate.value(), p.shannon_rate.value());
  }
}

TEST(MetroProjection, SnrMatchesNoiseModel) {
  const auto p = metro_projection(12345678, 0.4, units::Hertz{1.0e9});
  EXPECT_DOUBLE_EQ(p.snr.value(),
                   radio::nearest_neighbor_snr(12345678, 0.4).value());
}

TEST(MetroProjection, Contracts) {
  EXPECT_THROW((void)metro_projection(100, 0.5, units::Hertz{0.0}),
               ContractViolation);
  EXPECT_THROW(
      (void)processing_gain_budget(100, 0.5, units::Decibels{-1.0}),
      ContractViolation);
}

}  // namespace
}  // namespace drn::analysis
