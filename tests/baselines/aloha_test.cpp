#include "baselines/aloha.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "helpers/test_macs.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"

namespace drn::baselines {
namespace {

radio::ReceptionCriterion criterion() {
  return radio::ReceptionCriterion(radio::Hertz{1.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{0.0});
}

sim::SimulatorConfig config() {
  sim::SimulatorConfig cfg{criterion()};
  cfg.thermal_noise_w = 1.0e-15;
  return cfg;
}

TEST(PureAloha, TransmitsImmediatelyWhenIdle) {
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  sim::Simulator sim(m, config());
  sim.set_mac(0, std::make_unique<PureAloha>(ContentionConfig{}));
  sim.set_mac(1, std::make_unique<drn::testing::IdleMac>());
  sim::Packet p;
  p.source = 0;
  p.destination = 1;
  p.size_bits = 1.0e4;
  sim.inject(0.25, p);
  sim.run_until(1.0);
  EXPECT_EQ(sim.metrics().delivered(), 1u);
  // No access delay: exactly one 10 ms airtime after the 0.25 s injection.
  EXPECT_NEAR(sim.metrics().delay().mean(), 0.01, 1e-9);
}

TEST(PureAloha, CollapsesUnderSymmetricCrossTraffic) {
  // Two stations saturating each other with 0 dB required SINR: whenever
  // transmissions overlap at a receiver (or the receiver is itself talking)
  // packets die — the paper's motivating Type 2/3 failures. The genie ack
  // retries mask some of it, but throughput stays far below the clean
  // serial bound while the scheduled scheme (same load, different MAC)
  // delivers everything; see integration/baseline_comparison_test.cpp.
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  sim::Simulator sim(m, config());
  ContentionConfig cfg;
  cfg.max_retries = 2;
  cfg.backoff_mean_s = 0.005;
  sim.set_mac(0, std::make_unique<PureAloha>(cfg));
  sim.set_mac(1, std::make_unique<PureAloha>(cfg));
  Rng rng(31);
  for (const auto& inj : sim::poisson_traffic(
           120.0, 2.0, 1.0e4, sim::uniform_pairs(2), rng))
    sim.inject(inj.time_s, inj.packet);
  sim.run_until(30.0);
  EXPECT_GT(sim.metrics().total_hop_losses(), 0u);
  EXPECT_LT(sim.metrics().delivery_ratio(), 0.9);
  EXPECT_GT(sim.metrics().losses(sim::LossType::kType3), 0u);
}

}  // namespace
}  // namespace drn::baselines
