#include "baselines/slotted_aloha.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/expects.hpp"
#include "helpers/test_macs.hpp"
#include "sim/simulator.hpp"

namespace drn::baselines {
namespace {

radio::ReceptionCriterion criterion() {
  return radio::ReceptionCriterion(radio::Hertz{1.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{0.0});
}

sim::SimulatorConfig config() {
  sim::SimulatorConfig cfg{criterion()};
  cfg.thermal_noise_w = 1.0e-15;
  return cfg;
}

sim::Packet packet(StationId src, StationId dst) {
  sim::Packet p;
  p.source = src;
  p.destination = dst;
  p.size_bits = 1.0e4;  // 10 ms = one slot
  return p;
}

TEST(SlottedAloha, DefersToNextSlotBoundary) {
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  sim::Simulator sim(m, config());
  sim.set_mac(0, std::make_unique<SlottedAloha>(ContentionConfig{}, 0.01));
  sim.set_mac(1, std::make_unique<drn::testing::IdleMac>());
  sim.inject(0.0042, packet(0, 1));  // mid-slot arrival
  sim.run_until(1.0);
  ASSERT_EQ(sim.metrics().delivered(), 1u);
  // Waited until 0.01, then 10 ms airtime: delay = (0.01 - 0.0042) + 0.01.
  EXPECT_NEAR(sim.metrics().delay().mean(), 0.0158, 1e-9);
}

TEST(SlottedAloha, ArrivalOnBoundaryGoesImmediately) {
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  sim::Simulator sim(m, config());
  sim.set_mac(0, std::make_unique<SlottedAloha>(ContentionConfig{}, 0.01));
  sim.set_mac(1, std::make_unique<drn::testing::IdleMac>());
  sim.inject(0.02, packet(0, 1));
  sim.run_until(1.0);
  ASSERT_EQ(sim.metrics().delivered(), 1u);
  EXPECT_NEAR(sim.metrics().delay().mean(), 0.01, 1e-9);
}

TEST(SlottedAloha, SynchronisedCollisionsAreTotal) {
  // The classic slotted-ALOHA pathology: two arrivals in the same slot both
  // transmit at the next boundary and collide completely (Type 2 at the
  // shared receiver).
  radio::PropagationMatrix m(3);
  m.set_gain(2, 0, radio::LinearGain{1.0});
  m.set_gain(2, 1, radio::LinearGain{1.0});
  m.set_gain(0, 1, radio::LinearGain{1e-9});
  sim::Simulator sim(m, config());
  ContentionConfig cfg;
  cfg.max_retries = 0;  // count only the first, synchronised attempt
  sim.set_mac(0, std::make_unique<SlottedAloha>(cfg, 0.01));
  sim.set_mac(1, std::make_unique<SlottedAloha>(cfg, 0.01));
  sim.set_mac(2, std::make_unique<drn::testing::IdleMac>());
  sim.inject(0.001, packet(0, 2));
  sim.inject(0.002, packet(1, 2));
  sim.run_until(1.0);
  EXPECT_EQ(sim.metrics().delivered(), 0u);
  EXPECT_EQ(sim.metrics().losses(sim::LossType::kType2), 2u);
}

TEST(SlottedAloha, RandomisedRetriesResolveTheCollision) {
  radio::PropagationMatrix m(3);
  m.set_gain(2, 0, radio::LinearGain{1.0});
  m.set_gain(2, 1, radio::LinearGain{1.0});
  m.set_gain(0, 1, radio::LinearGain{1e-9});
  sim::Simulator sim(m, config());
  ContentionConfig cfg;
  cfg.backoff_mean_s = 0.02;
  sim.set_mac(0, std::make_unique<SlottedAloha>(cfg, 0.01));
  sim.set_mac(1, std::make_unique<SlottedAloha>(cfg, 0.01));
  sim.set_mac(2, std::make_unique<drn::testing::IdleMac>());
  sim.inject(0.001, packet(0, 2));
  sim.inject(0.002, packet(1, 2));
  sim.run_until(30.0);
  EXPECT_EQ(sim.metrics().delivered(), 2u);
}

TEST(SlottedAloha, RejectsNonPositiveSlot) {
  EXPECT_THROW(SlottedAloha(ContentionConfig{}, 0.0), ContractViolation);
}

}  // namespace
}  // namespace drn::baselines
