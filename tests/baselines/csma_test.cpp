#include "baselines/csma.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/expects.hpp"
#include "helpers/test_macs.hpp"
#include "sim/simulator.hpp"

namespace drn::baselines {
namespace {

radio::ReceptionCriterion criterion() {
  return radio::ReceptionCriterion(radio::Hertz{1.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{0.0});
}

sim::SimulatorConfig config() {
  sim::SimulatorConfig cfg{criterion()};
  cfg.thermal_noise_w = 1.0e-15;
  return cfg;
}

sim::Packet packet(StationId src, StationId dst, double bits = 1.0e4) {
  sim::Packet p;
  p.source = src;
  p.destination = dst;
  p.size_bits = bits;
  return p;
}

TEST(Csma, TransmitsOnIdleChannel) {
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  sim::Simulator sim(m, config());
  sim.set_mac(0, std::make_unique<CsmaMac>(ContentionConfig{}, 1.0e-6));
  sim.set_mac(1, std::make_unique<drn::testing::IdleMac>());
  sim.inject(0.0, packet(0, 1));
  sim.run_until(1.0);
  EXPECT_EQ(sim.metrics().delivered(), 1u);
  EXPECT_NEAR(sim.metrics().delay().mean(), 0.01, 1e-9);
}

TEST(Csma, DefersWhileChannelBusyThenSends) {
  // A loud scripted station occupies the channel 0-50 ms; CSMA hears it
  // (gain 1 to the sender) and defers, transmitting only after it ends.
  radio::PropagationMatrix m(3);
  m.set_gain(0, 2, radio::LinearGain{1.0});   // sensing path: 0 hears 2
  m.set_gain(0, 1, radio::LinearGain{1.0});   // data path
  m.set_gain(1, 2, radio::LinearGain{1e-9});  // receiver barely hears the blocker
  sim::Simulator sim(m, config());
  ContentionConfig cfg;
  cfg.backoff_mean_s = 0.004;
  sim.set_mac(0, std::make_unique<CsmaMac>(cfg, 1.0e-3));
  sim.set_mac(1, std::make_unique<drn::testing::IdleMac>());
  sim.set_mac(2, std::make_unique<drn::testing::ScriptMac>(
                     std::vector<drn::testing::ScriptedTx>{
                         {0.0, 1, 1.0, 5.0e4}}));
  sim.inject(0.001, packet(0, 1));
  sim.run_until(5.0);
  EXPECT_EQ(sim.metrics().delivered(), 2u);  // blocker's packet + ours
  // Our packet could not start before the blocker ended at t=0.05.
  // Delay = (start - 0.001) + 0.01 airtime > 0.059.
  EXPECT_GT(sim.metrics().delay().max(), 0.059);
}

TEST(Csma, HiddenTerminalStillCollides) {
  // The paper's core argument against carrier sense: sensing at the SENDER
  // says nothing about the RECEIVER. Stations 0 and 2 cannot hear each
  // other but both reach receiver 1 -> simultaneous transmissions collide
  // despite CSMA.
  radio::PropagationMatrix m(3);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  m.set_gain(2, 1, radio::LinearGain{1.0});
  m.set_gain(0, 2, radio::LinearGain{1.0e-12});  // hidden from each other
  sim::Simulator sim(m, config());
  ContentionConfig cfg;
  cfg.max_retries = 0;
  sim.set_mac(0, std::make_unique<CsmaMac>(cfg, 1.0e-3));
  sim.set_mac(2, std::make_unique<CsmaMac>(cfg, 1.0e-3));
  sim.set_mac(1, std::make_unique<drn::testing::IdleMac>());
  sim.inject(0.0, packet(0, 1));
  sim.inject(0.001, packet(2, 1));  // overlaps; sensing shows idle
  sim.run_until(1.0);
  EXPECT_EQ(sim.metrics().delivered(), 0u);
  EXPECT_EQ(sim.metrics().losses(sim::LossType::kType2), 2u);
}

TEST(Csma, DinOfDistantStationsBlocksLowThreshold) {
  // Section 4's consequence for CSMA: the aggregate background din keeps
  // the channel "busy" forever if the sense threshold is set below it, so
  // the MAC starves even though its link would work fine.
  radio::PropagationMatrix m(3);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  m.set_gain(0, 2, radio::LinearGain{0.01});  // distant chatterer heard at -20 dB
  m.set_gain(1, 2, radio::LinearGain{1e-9});
  sim::Simulator sim(m, config());
  ContentionConfig cfg;
  cfg.max_retries = 0;
  // Threshold below the chatterer's 0.01 W contribution: never clears.
  sim.set_mac(0, std::make_unique<CsmaMac>(cfg, 1.0e-3));
  sim.set_mac(1, std::make_unique<drn::testing::IdleMac>());
  // Chatterer transmits continuously (back-to-back packets).
  std::vector<drn::testing::ScriptedTx> script;
  for (int i = 0; i < 100; ++i)
    script.push_back({0.01 * i, 1, 1.0, 1.0e4});
  sim.set_mac(2, std::make_unique<drn::testing::ScriptMac>(script));
  // Inject mid-packet so the din is already on the air at the first sense.
  sim.inject(0.005, packet(0, 1));
  sim.run_until(1.0);
  // The chatterer's stream went through fine (its last packet may end one
  // fp-ulp past the horizon), but OUR station never transmitted at all: it
  // was still deferring when the run ended.
  EXPECT_GE(sim.metrics().delivered(), 99u);
  EXPECT_DOUBLE_EQ(sim.metrics().airtime_s(0), 0.0);
}

TEST(Csma, RejectsNonPositiveThreshold) {
  EXPECT_THROW(CsmaMac(ContentionConfig{}, 0.0), ContractViolation);
}

}  // namespace
}  // namespace drn::baselines
