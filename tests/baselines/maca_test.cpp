#include "baselines/maca.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/expects.hpp"
#include "helpers/test_macs.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace drn::baselines {
namespace {

radio::ReceptionCriterion criterion() {
  return radio::ReceptionCriterion(radio::Hertz{1.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{0.0});
}

sim::SimulatorConfig config() {
  sim::SimulatorConfig cfg{criterion()};
  cfg.thermal_noise_w = 1.0e-15;
  return cfg;
}

sim::Packet packet(StationId src, StationId dst, double bits = 1.0e4) {
  sim::Packet p;
  p.source = src;
  p.destination = dst;
  p.size_bits = bits;
  return p;
}

TEST(Maca, CleanHandshakeDeliversData) {
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  sim::Simulator sim(m, config());
  sim::TraceRecorder trace;
  sim.set_observer(&trace);
  sim.set_mac(0, std::make_unique<MacaMac>(MacaConfig{}));
  sim.set_mac(1, std::make_unique<MacaMac>(MacaConfig{}));
  sim.inject(0.0, packet(0, 1));
  sim.run_until(5.0);
  EXPECT_EQ(sim.metrics().delivered(), 1u);
  // Three frames on the air: RTS, CTS, DATA.
  ASSERT_EQ(trace.transmissions().size(), 3u);
  EXPECT_EQ(trace.transmissions()[0].from, 0u);  // RTS
  EXPECT_EQ(trace.transmissions()[0].to, kBroadcast);
  EXPECT_EQ(trace.transmissions()[1].from, 1u);  // CTS
  EXPECT_EQ(trace.transmissions()[2].from, 0u);  // DATA
  EXPECT_EQ(trace.transmissions()[2].to, 1u);
  // Handshake ordering with turnarounds.
  EXPECT_GT(trace.transmissions()[1].start_s, trace.transmissions()[0].end_s);
  EXPECT_GT(trace.transmissions()[2].start_s, trace.transmissions()[1].end_s);
}

TEST(Maca, HiddenTerminalsAreSilencedByCts) {
  // The MACA success story: 0 and 2 are hidden from each other but both
  // reach 1. Station 2 overhears 1's CTS to 0 and defers its own RTS until
  // the data frame is done — so the DATA frames do not collide.
  radio::PropagationMatrix m(3);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  m.set_gain(2, 1, radio::LinearGain{1.0});
  m.set_gain(0, 2, radio::LinearGain{1e-9});  // hidden pair
  sim::Simulator sim(m, config());
  for (StationId s = 0; s < 3; ++s)
    sim.set_mac(s, std::make_unique<MacaMac>(MacaConfig{}));
  sim.inject(0.0, packet(0, 1));
  // Arrives after 0's handshake is in progress (post-CTS, mid-data).
  sim.inject(0.002, packet(2, 1));
  sim.run_until(10.0);
  EXPECT_EQ(sim.metrics().delivered(), 2u);
}

TEST(Maca, RtsCollisionRecoversThroughBackoff) {
  // Simultaneous RTSs to the same station collide (cheaply — they are
  // short); binary exponential backoff desynchronises the retries.
  radio::PropagationMatrix m(3);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  m.set_gain(2, 1, radio::LinearGain{1.0});
  m.set_gain(0, 2, radio::LinearGain{1e-9});
  sim::Simulator sim(m, config());
  for (StationId s = 0; s < 3; ++s)
    sim.set_mac(s, std::make_unique<MacaMac>(MacaConfig{}));
  sim.inject(0.0, packet(0, 1));
  sim.inject(0.0, packet(2, 1));  // RTSs collide at station 1
  sim.run_until(30.0);
  EXPECT_EQ(sim.metrics().delivered(), 2u);
}

TEST(Maca, NoCtsExhaustsRetriesAndDrops) {
  // The addressee cannot hear us at all: every RTS times out.
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0e-9});
  auto cfg = config();
  cfg.thermal_noise_w = 1.0;  // RTS undecodable at the peer
  sim::Simulator sim(m, cfg);
  MacaConfig mc;
  mc.max_retries = 3;
  mc.backoff_mean_s = 0.002;
  sim.set_mac(0, std::make_unique<MacaMac>(mc));
  sim.set_mac(1, std::make_unique<MacaMac>(mc));
  sim.inject(0.0, packet(0, 1));
  sim.run_until(60.0);
  EXPECT_EQ(sim.metrics().delivered(), 0u);
  EXPECT_EQ(sim.metrics().mac_drops(), 1u);
}

TEST(Maca, ControlOverheadIsCharged) {
  // Airtime includes RTS+CTS: for a 10 ms data frame with 160-bit control
  // frames, station 0 radiates 10.16 ms and station 1 radiates 0.16 ms.
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  sim::Simulator sim(m, config());
  sim.set_mac(0, std::make_unique<MacaMac>(MacaConfig{}));
  sim.set_mac(1, std::make_unique<MacaMac>(MacaConfig{}));
  sim.inject(0.0, packet(0, 1));
  sim.run_until(5.0);
  EXPECT_NEAR(sim.metrics().airtime_s(0), 0.01 + 0.00016, 1e-9);
  EXPECT_NEAR(sim.metrics().airtime_s(1), 0.00016, 1e-9);
}

TEST(Maca, QueueOverflowDrops) {
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  sim::Simulator sim(m, config());
  MacaConfig mc;
  mc.max_queue = 2;
  sim.set_mac(0, std::make_unique<MacaMac>(mc));
  sim.set_mac(1, std::make_unique<MacaMac>(MacaConfig{}));
  for (int i = 0; i < 6; ++i) sim.inject(0.0, packet(0, 1));
  sim.run_until(10.0);
  EXPECT_EQ(sim.metrics().delivered() + sim.metrics().mac_drops(), 6u);
  EXPECT_GT(sim.metrics().mac_drops(), 0u);
}

TEST(Maca, ConfigContracts) {
  MacaConfig mc;
  mc.power_w = 0.0;
  EXPECT_THROW(MacaMac{mc}, ContractViolation);
  mc = {};
  mc.data_rate_bps = 0.0;
  EXPECT_THROW(MacaMac{mc}, ContractViolation);
  mc = {};
  mc.timeout_slack_s = 0.0;
  EXPECT_THROW(MacaMac{mc}, ContractViolation);
}

}  // namespace
}  // namespace drn::baselines
