#include "baselines/contention_mac.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "baselines/aloha.hpp"
#include "common/expects.hpp"
#include "helpers/test_macs.hpp"
#include "sim/simulator.hpp"

namespace drn::baselines {
namespace {

radio::ReceptionCriterion criterion() {
  return radio::ReceptionCriterion(radio::Hertz{1.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{0.0});  // required SINR 0 dB
}

sim::SimulatorConfig config() {
  sim::SimulatorConfig cfg{criterion()};
  cfg.thermal_noise_w = 1.0e-15;
  return cfg;
}

sim::Packet packet(StationId src, StationId dst, double bits = 1.0e4) {
  sim::Packet p;
  p.source = src;
  p.destination = dst;
  p.size_bits = bits;
  return p;
}

TEST(ContentionMac, ConfigContracts) {
  ContentionConfig cfg;
  cfg.power_w = 0.0;
  EXPECT_THROW(PureAloha{cfg}, ContractViolation);
  cfg = {};
  cfg.max_retries = -1;
  EXPECT_THROW(PureAloha{cfg}, ContractViolation);
  cfg = {};
  cfg.backoff_mean_s = 0.0;
  EXPECT_THROW(PureAloha{cfg}, ContractViolation);
  cfg = {};
  cfg.max_queue = 0;
  EXPECT_THROW(PureAloha{cfg}, ContractViolation);
}

TEST(ContentionMac, QueueOverflowDrops) {
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  sim::Simulator sim(m, config());
  ContentionConfig cfg;
  cfg.max_queue = 3;
  sim.set_mac(0, std::make_unique<PureAloha>(cfg));
  sim.set_mac(1, std::make_unique<drn::testing::IdleMac>());
  for (int i = 0; i < 10; ++i) sim.inject(0.0, packet(0, 1));
  sim.run_until(10.0);
  // 10 ms airtime each: all injected at t=0, first begins immediately, the
  // rest queue; capacity 3 once the head is in flight... count conservation:
  EXPECT_EQ(sim.metrics().delivered() + sim.metrics().mac_drops(), 10u);
  EXPECT_GT(sim.metrics().mac_drops(), 0u);
}

TEST(ContentionMac, RetryThenSucceed) {
  // Station 2 jams the first attempt; backoff retries eventually get
  // through after the jammer stops.
  radio::PropagationMatrix m(3);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  m.set_gain(1, 2, radio::LinearGain{10.0});
  m.set_gain(2, 0, radio::LinearGain{1.0});  // jammer's own packet must land somewhere
  sim::Simulator sim(m, config());
  ContentionConfig cfg;
  cfg.backoff_mean_s = 0.02;
  sim.set_mac(0, std::make_unique<PureAloha>(cfg));
  sim.set_mac(1, std::make_unique<drn::testing::IdleMac>());
  // Jammer transmits to 0 for 50 ms starting at t=0 (5e4 bits at 1 Mb/s).
  sim.set_mac(2, std::make_unique<drn::testing::ScriptMac>(
                     std::vector<drn::testing::ScriptedTx>{
                         {0.0, 0, 1.0, 5.0e4}}));
  sim.inject(0.001, packet(0, 1));
  sim.run_until(20.0);
  EXPECT_EQ(sim.metrics().delivered(), 1u);
  EXPECT_GE(sim.metrics().hop_attempts(), 2u);  // at least one retry
}

TEST(ContentionMac, RetriesExhaustedDropsPacket) {
  // Receiver permanently deaf (no gain): every attempt is a Type 1 loss;
  // after max_retries the MAC gives up.
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0e-12});
  auto cfg_sim = config();
  cfg_sim.thermal_noise_w = 1.0;  // SINR hopeless
  sim::Simulator sim(m, cfg_sim);
  ContentionConfig cfg;
  cfg.max_retries = 3;
  cfg.backoff_mean_s = 0.001;
  sim.set_mac(0, std::make_unique<PureAloha>(cfg));
  sim.set_mac(1, std::make_unique<drn::testing::IdleMac>());
  sim.inject(0.0, packet(0, 1));
  sim.run_until(60.0);
  EXPECT_EQ(sim.metrics().delivered(), 0u);
  EXPECT_EQ(sim.metrics().mac_drops(), 1u);
  EXPECT_EQ(sim.metrics().hop_attempts(), 4u);  // initial + 3 retries
}

TEST(ContentionMac, ProcessesQueueInOrder) {
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  sim::Simulator sim(m, config());
  sim.set_mac(0, std::make_unique<PureAloha>(ContentionConfig{}));
  sim.set_mac(1, std::make_unique<drn::testing::IdleMac>());
  for (int i = 0; i < 5; ++i) sim.inject(0.0, packet(0, 1));
  sim.run_until(10.0);
  EXPECT_EQ(sim.metrics().delivered(), 5u);
  // Serialized: exactly 5 airtimes of 10 ms.
  EXPECT_NEAR(sim.metrics().airtime_s(0), 0.05, 1e-9);
}

}  // namespace
}  // namespace drn::baselines
