#include "radio/units.hpp"

#include <gtest/gtest.h>

#include "common/expects.hpp"

namespace drn::radio {
namespace {

TEST(Units, KnownDecibelValues) {
  EXPECT_DOUBLE_EQ(to_db(1.0), 0.0);
  EXPECT_DOUBLE_EQ(to_db(10.0), 10.0);
  EXPECT_DOUBLE_EQ(to_db(100.0), 20.0);
  EXPECT_NEAR(to_db(2.0), 3.0103, 1e-4);
  EXPECT_NEAR(to_db(0.5), -3.0103, 1e-4);
  EXPECT_NEAR(to_db(4.0), 6.0206, 1e-4);  // the paper's "6 dB per doubling"
}

TEST(Units, RoundTrip) {
  for (double db : {-30.0, -5.0, 0.0, 2.5, 17.0, 40.0})
    EXPECT_NEAR(to_db(from_db(db)), db, 1e-12);
}

TEST(Units, ToDbRequiresPositive) {
  EXPECT_THROW((void)to_db(0.0), ContractViolation);
  EXPECT_THROW((void)to_db(-1.0), ContractViolation);
}

TEST(Units, DbmConversions) {
  EXPECT_DOUBLE_EQ(watts_to_dbm(1.0), 30.0);
  EXPECT_DOUBLE_EQ(watts_to_dbm(0.001), 0.0);
  EXPECT_NEAR(dbm_to_watts(20.0), 0.1, 1e-12);
  EXPECT_NEAR(dbm_to_watts(watts_to_dbm(0.05)), 0.05, 1e-12);
}

TEST(Units, ThermalNoiseKtb) {
  // kT at 290 K is about 4.00e-21 W/Hz (-174 dBm/Hz).
  const double n = thermal_noise_watts(1.0);
  EXPECT_NEAR(n, 4.0039e-21, 1e-24);
  EXPECT_NEAR(watts_to_dbm(thermal_noise_watts(1.0e6)), -114.0, 0.1);
  // Linear in bandwidth.
  EXPECT_DOUBLE_EQ(thermal_noise_watts(2.0e6), 2.0 * thermal_noise_watts(1.0e6));
}

TEST(Units, ThermalNoiseContracts) {
  EXPECT_THROW((void)thermal_noise_watts(0.0), ContractViolation);
  EXPECT_THROW((void)thermal_noise_watts(1.0, 0.0), ContractViolation);
}

TEST(Units, PaperSignificanceExample) {
  // Section 7.3: adding a -10 dB (relative) signal to a 20 dB signal gives
  // 20.4 dB — "a barely significant change".
  const double sum = from_db(20.0) + from_db(10.0);
  EXPECT_NEAR(to_db(sum), 20.414, 1e-3);
  // And a signal one quarter of the interference level raises it ~1 dB.
  EXPECT_NEAR(to_db(1.0 + 0.25), 0.969, 1e-3);
}

}  // namespace
}  // namespace drn::radio
