#include "radio/reception.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/expects.hpp"
#include "radio/units.hpp"

namespace drn::radio {
namespace {

TEST(Shannon, CapacityKnownPoints) {
  // snr 1 -> 1 b/s/Hz; snr 3 -> 2 b/s/Hz.
  EXPECT_DOUBLE_EQ(shannon_capacity(Hertz{1.0e6}, LinearGain{1.0}).value(),
                   1.0e6);
  EXPECT_DOUBLE_EQ(shannon_capacity(Hertz{1.0e6}, LinearGain{3.0}).value(),
                   2.0e6);
  EXPECT_DOUBLE_EQ(shannon_capacity(Hertz{2.0e6}, LinearGain{0.0}).value(),
                   0.0);
}

TEST(Shannon, PaperSection4CapacityPerKilohertz) {
  // "even with a signal-to-noise ratio of one part in one hundred ...
  // theoretical capacity of approximately 14 bits per second per kilohertz";
  // at eta = 0.25 (+6 dB): "around 56 bits per second per kilohertz".
  EXPECT_NEAR(capacity_per_hz(LinearGain{0.01}) * 1000.0, 14.4, 0.1);
  EXPECT_NEAR(capacity_per_hz(LinearGain{0.04}) * 1000.0, 56.6, 0.1);
}

TEST(Shannon, LowSnrLinearisation) {
  // Paper footnote: log2(1+x) ~ x/ln 2 ~ 1.44 x for x << 1.
  for (double x : {1e-3, 1e-4, 1e-5})
    EXPECT_NEAR(capacity_per_hz(LinearGain{x}) / x, 1.4427, 1e-3);
}

TEST(Shannon, RateFractionInverse) {
  for (double f : {0.01, 0.1, 0.5, 1.0, 2.0})
    EXPECT_NEAR(capacity_per_hz(snr_for_rate_fraction(f)), f, 1e-12);
}

TEST(ReceptionCriterion, RequiredSnrIsShannonTimesMargin) {
  // C/W = 0.01 -> Shannon needs 2^0.01 - 1 = 0.006956; with 5 dB margin
  // (3.162x) the threshold is 0.022.
  const ReceptionCriterion c(Hertz{100.0e6}, BitsPerSecond{1.0e6},
                             Decibels{5.0});
  EXPECT_NEAR(c.required_snr().value(),
              from_db(5.0) * (std::exp2(0.01) - 1.0), 1e-12);
  EXPECT_NEAR(c.required_snr().value(), 0.022, 0.0005);
}

TEST(ReceptionCriterion, ProcessingGain) {
  const ReceptionCriterion c(Hertz{100.0e6}, BitsPerSecond{1.0e6});
  EXPECT_DOUBLE_EQ(c.processing_gain().value(), 100.0);
  EXPECT_DOUBLE_EQ(c.processing_gain_db().value(), 20.0);
}

TEST(ReceptionCriterion, PaperProcessingGainWindow) {
  // Section 6: 20-25 dB of processing gain should tolerate the metro din.
  // With 23 dB (200x) and 5 dB margin, the required SNR is about -15.5 dB —
  // comfortably below the -11.4 dB expected at eta=1, M=1e12... check the
  // required SNR lands below the available SNR for eta = 0.25.
  const ReceptionCriterion c(Hertz{200.0e6}, BitsPerSecond{1.0e6},
                             Decibels{5.0});  // 23 dB gain
  EXPECT_NEAR(c.processing_gain_db().value(), 23.0, 0.05);
  EXPECT_LT(c.required_snr_db().value(), -15.0);
}

TEST(ReceptionCriterion, ReceivableBoundary) {
  const ReceptionCriterion c(Hertz{10.0e6}, BitsPerSecond{1.0e6},
                             Decibels{0.0});
  const double snr = c.required_snr().value();
  EXPECT_TRUE(c.receivable(Watts{snr * 1.0}, Watts{1.0}));
  EXPECT_TRUE(c.receivable(Watts{snr * 1.001}, Watts{1.0}));
  EXPECT_FALSE(c.receivable(Watts{snr * 0.999}, Watts{1.0}));
}

TEST(ReceptionCriterion, PacketDuration) {
  const ReceptionCriterion c(Hertz{10.0e6}, BitsPerSecond{2.0e6});
  EXPECT_DOUBLE_EQ(c.packet_duration(Bits{1.0e4}).value(), 0.005);
  EXPECT_THROW((void)c.packet_duration(Bits{0.0}), ContractViolation);
}

TEST(ReceptionCriterion, ZeroMarginEqualsShannon) {
  const ReceptionCriterion c(Hertz{1.0e6}, BitsPerSecond{1.0e6},
                             Decibels{0.0});
  EXPECT_DOUBLE_EQ(c.required_snr().value(), 1.0);  // 2^1 - 1
}

TEST(ReceptionCriterion, Contracts) {
  EXPECT_THROW(ReceptionCriterion(Hertz{0.0}, BitsPerSecond{1.0}),
               ContractViolation);
  EXPECT_THROW(ReceptionCriterion(Hertz{1.0}, BitsPerSecond{0.0}),
               ContractViolation);
  EXPECT_THROW(
      ReceptionCriterion(Hertz{1.0}, BitsPerSecond{1.0}, Decibels{-1.0}),
      ContractViolation);
  EXPECT_THROW((void)shannon_capacity(Hertz{0.0}, LinearGain{1.0}),
               ContractViolation);
  EXPECT_THROW((void)capacity_per_hz(LinearGain{-0.1}), ContractViolation);
  EXPECT_THROW((void)snr_for_rate_fraction(0.0), ContractViolation);
}

}  // namespace
}  // namespace drn::radio
