#include "radio/propagation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/expects.hpp"

namespace drn::radio {
namespace {

TEST(PowerLaw, FreeSpaceInverseSquare) {
  const FreeSpacePropagation model;
  const geo::Vec2 origin{0.0, 0.0};
  EXPECT_DOUBLE_EQ(model.power_gain(origin, {1.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(model.power_gain(origin, {2.0, 0.0}), 0.25);
  EXPECT_DOUBLE_EQ(model.power_gain(origin, {10.0, 0.0}), 0.01);
}

TEST(PowerLaw, SixDbPerDoubling) {
  // Section 4: "Free-space radio propagation falls off by a factor of four,
  // or 6 dB, for each doubling in distance."
  const FreeSpacePropagation model;
  double prev = model.gain_at(1.0);
  for (double r = 2.0; r <= 64.0; r *= 2.0) {
    const double g = model.gain_at(r);
    EXPECT_DOUBLE_EQ(prev / g, 4.0);
    prev = g;
  }
}

TEST(PowerLaw, ReferenceGainScalesEverything) {
  const PowerLawPropagation base(2.0, 1.0, 1.0);
  const PowerLawPropagation scaled(2.0, 5.0, 1.0);
  EXPECT_DOUBLE_EQ(scaled.gain_at(3.0), 5.0 * base.gain_at(3.0));
}

TEST(PowerLaw, ReferenceDistanceShiftsCurve) {
  // gain(reference_distance) == reference_gain.
  const PowerLawPropagation model(2.0, 0.01, 100.0);
  EXPECT_DOUBLE_EQ(model.gain_at(100.0), 0.01);
  EXPECT_DOUBLE_EQ(model.gain_at(200.0), 0.0025);
}

TEST(PowerLaw, NearFieldClamp) {
  const PowerLawPropagation model(2.0, 1.0, 1.0, /*min_distance=*/0.5);
  EXPECT_DOUBLE_EQ(model.gain_at(0.0), model.gain_at(0.5));
  EXPECT_DOUBLE_EQ(model.gain_at(0.1), 4.0);  // 1/(0.5^2)
}

TEST(PowerLaw, GeneralExponent) {
  const PowerLawPropagation model(4.0);
  EXPECT_DOUBLE_EQ(model.gain_at(2.0), 1.0 / 16.0);
}

TEST(PowerLaw, Symmetric) {
  const FreeSpacePropagation model;
  const geo::Vec2 a{1.0, 2.0};
  const geo::Vec2 b{-4.0, 7.0};
  EXPECT_DOUBLE_EQ(model.power_gain(a, b), model.power_gain(b, a));
}

TEST(PowerLaw, Contracts) {
  EXPECT_THROW(PowerLawPropagation(-1.0), ContractViolation);
  EXPECT_THROW(PowerLawPropagation(2.0, 0.0), ContractViolation);
  EXPECT_THROW(PowerLawPropagation(2.0, 1.0, 0.0), ContractViolation);
  EXPECT_THROW(PowerLawPropagation(2.0, 1.0, 1.0, 0.0), ContractViolation);
  const FreeSpacePropagation model;
  EXPECT_THROW((void)model.gain_at(-1.0), ContractViolation);
}

TEST(Multipath, CoupleOfDbPenaltyAppliedUniformly) {
  // Section 3.3: multipath costs "a couple of decibel decrease in signal to
  // interference ratio" — a flat factor on every link.
  auto base = std::make_shared<FreeSpacePropagation>();
  const MultipathPenalty model(base, 2.0);
  for (double r : {1.0, 10.0, 500.0}) {
    const geo::Vec2 b{r, 0.0};
    EXPECT_NEAR(model.power_gain({0, 0}, b) / base->power_gain({0, 0}, b),
                std::pow(10.0, -0.2), 1e-12);
  }
}

TEST(Multipath, ZeroPenaltyIsTransparentAndContractsHold) {
  auto base = std::make_shared<FreeSpacePropagation>();
  const MultipathPenalty model(base, 0.0);
  EXPECT_DOUBLE_EQ(model.power_gain({0, 0}, {5, 0}),
                   base->power_gain({0, 0}, {5, 0}));
  EXPECT_THROW(MultipathPenalty(nullptr, 2.0), ContractViolation);
  EXPECT_THROW(MultipathPenalty(base, -1.0), ContractViolation);
}

TEST(DualSlope, FreeSpaceBeforeBreakpoint) {
  const DualSlopePropagation model(100.0);
  const FreeSpacePropagation free_space;
  for (double r : {1.0, 10.0, 50.0, 100.0})
    EXPECT_DOUBLE_EQ(model.gain_at(r), free_space.gain_at(r));
}

TEST(DualSlope, SteeperBeyondBreakpoint) {
  const DualSlopePropagation model(100.0, 4.0);
  // Continuous at the breakpoint.
  EXPECT_NEAR(model.gain_at(100.0), 1.0e-4, 1e-15);
  // 12 dB per doubling beyond it (alpha = 4).
  EXPECT_DOUBLE_EQ(model.gain_at(100.0) / model.gain_at(200.0), 16.0);
  EXPECT_DOUBLE_EQ(model.gain_at(200.0) / model.gain_at(400.0), 16.0);
}

TEST(DualSlope, AlwaysAtOrBelowFreeSpace) {
  // The Section 3.5 envelope argument: obstruction only attenuates.
  const DualSlopePropagation model(50.0, 3.5);
  const FreeSpacePropagation free_space;
  for (double r = 1.0; r < 2000.0; r *= 1.7)
    EXPECT_LE(model.gain_at(r), free_space.gain_at(r) * (1.0 + 1e-12));
}

TEST(DualSlope, SymmetricAndVectorised) {
  const DualSlopePropagation model(100.0);
  const geo::Vec2 a{0.0, 0.0};
  const geo::Vec2 b{300.0, 400.0};
  EXPECT_DOUBLE_EQ(model.power_gain(a, b), model.power_gain(b, a));
  EXPECT_DOUBLE_EQ(model.power_gain(a, b), model.gain_at(500.0));
}

TEST(DualSlope, Contracts) {
  EXPECT_THROW(DualSlopePropagation(0.0), ContractViolation);
  EXPECT_THROW(DualSlopePropagation(100.0, 2.0), ContractViolation);
  EXPECT_THROW(DualSlopePropagation(0.05, 4.0, 1.0, 1.0, 0.1),
               ContractViolation);  // breakpoint below min_distance
}

TEST(Shadowing, DeterministicAndSymmetric) {
  auto base = std::make_shared<FreeSpacePropagation>();
  const LogNormalShadowing model(base, 8.0, 1234);
  const geo::Vec2 a{0.0, 0.0};
  const geo::Vec2 b{30.0, 40.0};
  const double g1 = model.power_gain(a, b);
  EXPECT_DOUBLE_EQ(g1, model.power_gain(a, b));  // repeatable
  EXPECT_DOUBLE_EQ(g1, model.power_gain(b, a));  // symmetric
}

TEST(Shadowing, SeedChangesShadow) {
  auto base = std::make_shared<FreeSpacePropagation>();
  const LogNormalShadowing m1(base, 8.0, 1);
  const LogNormalShadowing m2(base, 8.0, 2);
  EXPECT_NE(m1.power_gain({0, 0}, {10, 0}), m2.power_gain({0, 0}, {10, 0}));
}

TEST(Shadowing, ZeroSigmaIsTransparent) {
  auto base = std::make_shared<FreeSpacePropagation>();
  const LogNormalShadowing model(base, 0.0, 77);
  EXPECT_DOUBLE_EQ(model.power_gain({0, 0}, {5, 0}),
                   base->power_gain({0, 0}, {5, 0}));
}

TEST(Shadowing, BoostCappedAtThreeSigma) {
  auto base = std::make_shared<FreeSpacePropagation>();
  const double sigma_db = 6.0;
  const LogNormalShadowing model(base, sigma_db, 99);
  // Over many pairs, no gain exceeds base * 10^(3*sigma/10).
  const double cap = std::pow(10.0, 3.0 * sigma_db / 10.0);
  for (int i = 1; i < 200; ++i) {
    const geo::Vec2 b{static_cast<double>(i), 1.0};
    EXPECT_LE(model.power_gain({0, 0}, b),
              base->power_gain({0, 0}, b) * cap * (1.0 + 1e-12));
  }
}

TEST(Shadowing, NullBaseRejected) {
  EXPECT_THROW(LogNormalShadowing(nullptr, 1.0, 0), ContractViolation);
}

}  // namespace
}  // namespace drn::radio
