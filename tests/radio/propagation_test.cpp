#include "radio/propagation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/expects.hpp"

namespace drn::radio {
namespace {

TEST(PowerLaw, FreeSpaceInverseSquare) {
  const FreeSpacePropagation model;
  const geo::Vec2 origin{0.0, 0.0};
  EXPECT_DOUBLE_EQ(model.power_gain(origin, {1.0, 0.0}).value(), 1.0);
  EXPECT_DOUBLE_EQ(model.power_gain(origin, {2.0, 0.0}).value(), 0.25);
  EXPECT_DOUBLE_EQ(model.power_gain(origin, {10.0, 0.0}).value(), 0.01);
}

TEST(PowerLaw, SixDbPerDoubling) {
  // Section 4: "Free-space radio propagation falls off by a factor of four,
  // or 6 dB, for each doubling in distance."
  const FreeSpacePropagation model;
  LinearGain prev = model.gain_at(Meters{1.0});
  for (double r = 2.0; r <= 64.0; r *= 2.0) {
    const LinearGain g = model.gain_at(Meters{r});
    EXPECT_DOUBLE_EQ((prev / g).value(), 4.0);
    prev = g;
  }
}

TEST(PowerLaw, ReferenceGainScalesEverything) {
  const PowerLawPropagation base(2.0, LinearGain{1.0}, Meters{1.0});
  const PowerLawPropagation scaled(2.0, LinearGain{5.0}, Meters{1.0});
  EXPECT_DOUBLE_EQ(scaled.gain_at(Meters{3.0}).value(),
                   5.0 * base.gain_at(Meters{3.0}).value());
}

TEST(PowerLaw, ReferenceDistanceShiftsCurve) {
  // gain(reference_distance) == reference_gain.
  const PowerLawPropagation model(2.0, LinearGain{0.01}, Meters{100.0});
  EXPECT_DOUBLE_EQ(model.gain_at(Meters{100.0}).value(), 0.01);
  EXPECT_DOUBLE_EQ(model.gain_at(Meters{200.0}).value(), 0.0025);
}

TEST(PowerLaw, NearFieldClamp) {
  const PowerLawPropagation model(2.0, LinearGain{1.0}, Meters{1.0},
                                  /*min_distance=*/Meters{0.5});
  EXPECT_DOUBLE_EQ(model.gain_at(Meters{0.0}).value(),
                   model.gain_at(Meters{0.5}).value());
  EXPECT_DOUBLE_EQ(model.gain_at(Meters{0.1}).value(), 4.0);  // 1/(0.5^2)
}

TEST(PowerLaw, GeneralExponent) {
  const PowerLawPropagation model(4.0);
  EXPECT_DOUBLE_EQ(model.gain_at(Meters{2.0}).value(), 1.0 / 16.0);
}

TEST(PowerLaw, Symmetric) {
  const FreeSpacePropagation model;
  const geo::Vec2 a{1.0, 2.0};
  const geo::Vec2 b{-4.0, 7.0};
  EXPECT_DOUBLE_EQ(model.power_gain(a, b).value(),
                   model.power_gain(b, a).value());
}

TEST(PowerLaw, Contracts) {
  EXPECT_THROW(PowerLawPropagation(-1.0), ContractViolation);
  EXPECT_THROW(PowerLawPropagation(2.0, LinearGain{0.0}), ContractViolation);
  EXPECT_THROW(PowerLawPropagation(2.0, LinearGain{1.0}, Meters{0.0}),
               ContractViolation);
  EXPECT_THROW(
      PowerLawPropagation(2.0, LinearGain{1.0}, Meters{1.0}, Meters{0.0}),
      ContractViolation);
  const FreeSpacePropagation model;
  EXPECT_THROW((void)model.gain_at(Meters{-1.0}), ContractViolation);
}

TEST(Multipath, CoupleOfDbPenaltyAppliedUniformly) {
  // Section 3.3: multipath costs "a couple of decibel decrease in signal to
  // interference ratio" — a flat factor on every link.
  auto base = std::make_shared<FreeSpacePropagation>();
  const MultipathPenalty model(base, Decibels{2.0});
  for (double r : {1.0, 10.0, 500.0}) {
    const geo::Vec2 b{r, 0.0};
    EXPECT_NEAR(
        (model.power_gain({0, 0}, b) / base->power_gain({0, 0}, b)).value(),
        std::pow(10.0, -0.2), 1e-12);
  }
}

TEST(Multipath, ZeroPenaltyIsTransparentAndContractsHold) {
  auto base = std::make_shared<FreeSpacePropagation>();
  const MultipathPenalty model(base, Decibels{0.0});
  EXPECT_DOUBLE_EQ(model.power_gain({0, 0}, {5, 0}).value(),
                   base->power_gain({0, 0}, {5, 0}).value());
  EXPECT_THROW(MultipathPenalty(nullptr, Decibels{2.0}), ContractViolation);
  EXPECT_THROW(MultipathPenalty(base, Decibels{-1.0}), ContractViolation);
}

TEST(DualSlope, FreeSpaceBeforeBreakpoint) {
  const DualSlopePropagation model(Meters{100.0});
  const FreeSpacePropagation free_space;
  for (double r : {1.0, 10.0, 50.0, 100.0})
    EXPECT_DOUBLE_EQ(model.gain_at(Meters{r}).value(),
                     free_space.gain_at(Meters{r}).value());
}

TEST(DualSlope, SteeperBeyondBreakpoint) {
  const DualSlopePropagation model(Meters{100.0}, 4.0);
  // Continuous at the breakpoint.
  EXPECT_NEAR(model.gain_at(Meters{100.0}).value(), 1.0e-4, 1e-15);
  // 12 dB per doubling beyond it (alpha = 4).
  EXPECT_DOUBLE_EQ(
      (model.gain_at(Meters{100.0}) / model.gain_at(Meters{200.0})).value(),
      16.0);
  EXPECT_DOUBLE_EQ(
      (model.gain_at(Meters{200.0}) / model.gain_at(Meters{400.0})).value(),
      16.0);
}

TEST(DualSlope, AlwaysAtOrBelowFreeSpace) {
  // The Section 3.5 envelope argument: obstruction only attenuates.
  const DualSlopePropagation model(Meters{50.0}, 3.5);
  const FreeSpacePropagation free_space;
  for (double r = 1.0; r < 2000.0; r *= 1.7)
    EXPECT_LE(model.gain_at(Meters{r}).value(),
              free_space.gain_at(Meters{r}).value() * (1.0 + 1e-12));
}

TEST(DualSlope, SymmetricAndVectorised) {
  const DualSlopePropagation model(Meters{100.0});
  const geo::Vec2 a{0.0, 0.0};
  const geo::Vec2 b{300.0, 400.0};
  EXPECT_DOUBLE_EQ(model.power_gain(a, b).value(),
                   model.power_gain(b, a).value());
  EXPECT_DOUBLE_EQ(model.power_gain(a, b).value(),
                   model.gain_at(Meters{500.0}).value());
}

TEST(DualSlope, Contracts) {
  EXPECT_THROW(DualSlopePropagation(Meters{0.0}), ContractViolation);
  EXPECT_THROW(DualSlopePropagation(Meters{100.0}, 2.0), ContractViolation);
  EXPECT_THROW(DualSlopePropagation(Meters{0.05}, 4.0, LinearGain{1.0},
                                    Meters{1.0}, Meters{0.1}),
               ContractViolation);  // breakpoint below min_distance
}

TEST(Shadowing, DeterministicAndSymmetric) {
  auto base = std::make_shared<FreeSpacePropagation>();
  const LogNormalShadowing model(base, Decibels{8.0}, 1234);
  const geo::Vec2 a{0.0, 0.0};
  const geo::Vec2 b{30.0, 40.0};
  const double g1 = model.power_gain(a, b).value();
  EXPECT_DOUBLE_EQ(g1, model.power_gain(a, b).value());  // repeatable
  EXPECT_DOUBLE_EQ(g1, model.power_gain(b, a).value());  // symmetric
}

TEST(Shadowing, SeedChangesShadow) {
  auto base = std::make_shared<FreeSpacePropagation>();
  const LogNormalShadowing m1(base, Decibels{8.0}, 1);
  const LogNormalShadowing m2(base, Decibels{8.0}, 2);
  EXPECT_NE(m1.power_gain({0, 0}, {10, 0}).value(),
            m2.power_gain({0, 0}, {10, 0}).value());
}

TEST(Shadowing, ZeroSigmaIsTransparent) {
  auto base = std::make_shared<FreeSpacePropagation>();
  const LogNormalShadowing model(base, Decibels{0.0}, 77);
  EXPECT_DOUBLE_EQ(model.power_gain({0, 0}, {5, 0}).value(),
                   base->power_gain({0, 0}, {5, 0}).value());
}

TEST(Shadowing, BoostCappedAtThreeSigma) {
  auto base = std::make_shared<FreeSpacePropagation>();
  const Decibels sigma{6.0};
  const LogNormalShadowing model(base, sigma, 99);
  // Over many pairs, no gain exceeds base * 10^(3*sigma/10).
  const double cap = (3.0 * sigma).to_linear().value();
  for (int i = 1; i < 200; ++i) {
    const geo::Vec2 b{static_cast<double>(i), 1.0};
    EXPECT_LE(model.power_gain({0, 0}, b).value(),
              base->power_gain({0, 0}, b).value() * cap * (1.0 + 1e-12));
  }
}

TEST(Shadowing, NullBaseRejected) {
  EXPECT_THROW(LogNormalShadowing(nullptr, Decibels{1.0}, 0),
               ContractViolation);
}

}  // namespace
}  // namespace drn::radio
