// Tests for the pluggable interference engines: name parsing, dense /
// compensated / nearfar agreement on shared scenarios, the near/far
// far-field approximation bound, and the drift regression the compensated
// engine exists to fix.
#include "radio/interference_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/expects.hpp"
#include "common/rng.hpp"
#include "geo/placement.hpp"
#include "radio/propagation.hpp"
#include "radio/propagation_matrix.hpp"

namespace drn::radio {
namespace {

TEST(InterferenceEngine, ParseAndNameRoundTrip) {
  for (const auto kind :
       {InterferenceEngineKind::kDense, InterferenceEngineKind::kCompensated,
        InterferenceEngineKind::kNearFar}) {
    const auto parsed = parse_engine(engine_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_engine("exact").has_value());
  EXPECT_FALSE(parse_engine("").has_value());
}

TEST(CompensatedSum, RecoversWhatPlainSummationLoses) {
  // 1 + 1e-16 added 10^4 times: plain double summation drops every tiny
  // addend; the compensated sum carries them.
  CompensatedSum sum;
  double plain = 1.0;
  sum.add(1.0);
  for (int i = 0; i < 10000; ++i) {
    sum.add(1.0e-16);
    plain += 1.0e-16;
  }
  EXPECT_DOUBLE_EQ(plain, 1.0);  // all 10^4 addends lost
  EXPECT_NEAR(sum.value(), 1.0 + 1.0e-12, 1.0e-16);
}

TEST(CompensatedSum, ExactWhenSubtractingTheLargerTerm) {
  // The transmit-end case Neumaier handles and Kahan does not: the addend
  // (the contribution being removed) dwarfs the running sum.
  CompensatedSum sum;
  sum.add(1.0e-12);
  sum.add(1.0e4);
  sum.add(-1.0e4);
  EXPECT_DOUBLE_EQ(sum.value(), 1.0e-12);
}

TEST(InterferenceEngine, MakeDenseGainsGuardsStationCount) {
  // The guard constant itself is far too large to exercise with a real
  // allocation; check the contract wiring with the documented constant.
  Rng rng(2);
  const auto placement = geo::uniform_disc(16, 200.0, rng);
  const FreeSpacePropagation model;
  const auto gains = make_dense_gains(placement, model);
  EXPECT_EQ(gains.size(), 16u);
  EXPECT_LE(gains.size(), kDenseMatrixGuardM);
}

// ---------------------------------------------------------------------------
// Engine agreement on a shared random workload.

struct Workload {
  geo::Placement placement;
  PropagationMatrix gains;
};

Workload make_workload(std::size_t stations, std::uint64_t seed) {
  Rng rng(seed);
  auto placement = geo::uniform_disc(stations, 1000.0, rng);
  const FreeSpacePropagation model;
  auto gains = make_dense_gains(placement, model);
  return {std::move(placement), std::move(gains)};
}

/// Drives `engine` through a deterministic start/open/end script and returns
/// the interference of every open reception at a few sample points.
std::vector<double> run_script(InterferenceEngine& engine,
                               std::size_t stations, std::uint64_t seed) {
  std::vector<double> samples;
  Rng rng(seed);
  std::deque<std::uint64_t> on_air;
  std::vector<std::pair<ReceptionHandle, std::uint64_t>> open;
  std::uint64_t next_tx = 1;
  const auto sender_noop = [](ReceptionHandle) {};
  const auto affected_noop = [](ReceptionHandle, Watts) {};
  for (int step = 0; step < 400; ++step) {
    const auto choice = rng() % 3;
    if (choice == 0 || on_air.size() < 2) {
      const std::uint64_t tx = next_tx++;
      const auto from = static_cast<StationId>(rng() % stations);
      const double power = 1.0e-4 * (1.0 + 1.0e-3 * static_cast<double>(
                                               rng() % 1000));
      engine.transmit_started(tx, from, Watts{power}, sender_noop,
                              affected_noop);
      on_air.push_back(tx);
      const auto rx = static_cast<StationId>(rng() % stations);
      open.emplace_back(engine.open_reception(tx, rx, nullptr), tx);
    } else if (choice == 1 && !open.empty()) {
      const auto idx = rng() % open.size();
      engine.close_reception(open[idx].first);
      open.erase(open.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      const std::uint64_t tx = on_air.front();
      on_air.pop_front();
      for (std::size_t i = open.size(); i-- > 0;) {
        if (open[i].second == tx) {
          engine.close_reception(open[i].first);
          open.erase(open.begin() + static_cast<std::ptrdiff_t>(i));
        }
      }
      engine.transmit_ended(tx, affected_noop);
    }
    if (step % 25 == 0)
      for (const auto& [h, tx] : open) samples.push_back(engine.interference(h).value());
  }
  for (const auto& [h, tx] : open) samples.push_back(engine.interference(h).value());
  return samples;
}

TEST(InterferenceEngine, CompensatedMatchesDenseRecomputation) {
  const std::size_t stations = 24;
  auto w = make_workload(stations, 41);
  const auto dense = make_dense_engine(w.gains);
  const auto comp = make_compensated_engine(w.gains);
  dense->set_thermal_noise(Watts{1.0e-15});
  comp->set_thermal_noise(Watts{1.0e-15});
  const auto a = run_script(*dense, stations, 99);
  const auto b = run_script(*comp, stations, 99);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(a[i], b[i], 1.0e-9 * a[i]) << "sample " << i;
}

TEST(InterferenceEngine, NearFarWithFullCutoffMatchesCompensated) {
  // Cutoff spanning the whole region: every interferer is in the near field,
  // so the nearfar engine must agree with the dense-matrix engines to
  // rounding error.
  const std::size_t stations = 24;
  auto w = make_workload(stations, 43);
  const auto comp = make_compensated_engine(w.gains);
  NearFarConfig nf;
  nf.cutoff = Meters{4000.0};  // > region diameter: no far field at all
  const auto nearfar = make_nearfar_engine(
      w.placement, std::make_shared<FreeSpacePropagation>(), nf);
  comp->set_thermal_noise(Watts{1.0e-15});
  nearfar->set_thermal_noise(Watts{1.0e-15});
  EXPECT_STREQ(nearfar->name(), "nearfar");
  // Lazy gains must match the dense matrix entries exactly.
  for (StationId rx = 0; rx < stations; rx += 5)
    for (StationId tx = 0; tx < stations; ++tx)
      EXPECT_DOUBLE_EQ(nearfar->gain(rx, tx), w.gains.gain(rx, tx));
  const auto a = run_script(*comp, stations, 77);
  const auto b = run_script(*nearfar, stations, 77);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(a[i], b[i], 1.0e-9 * a[i]) << "sample " << i;
}

TEST(InterferenceEngine, NearFarFarFieldStaysWithinCellBound) {
  // Finite cutoff: far-field interferers are folded into cell aggregates.
  // The approximation replaces each far gain by the gain between cell
  // centres; with both endpoints at most cell_m * sqrt(2) / 2 from their
  // centres and separated by at least cutoff_m, the per-term relative error
  // of a 1/d^2 gain is bounded by (1 + sqrt(2) * cell_m / cutoff_m)^2 - 1.
  const std::size_t stations = 48;
  auto w = make_workload(stations, 47);
  NearFarConfig nf;
  nf.cutoff = Meters{600.0};
  nf.cell = Meters{100.0};
  const auto nearfar = make_nearfar_engine(
      w.placement, std::make_shared<FreeSpacePropagation>(), nf);
  nearfar->set_thermal_noise(Watts{1.0e-15});
  const double per_term =
      std::pow(1.0 + std::sqrt(2.0) * nf.cell.value() / nf.cutoff.value(), 2.0) - 1.0;

  std::uint64_t next_tx = 1;
  const auto noop_s = [](ReceptionHandle) {};
  const auto noop_a = [](ReceptionHandle, Watts) {};
  for (StationId from = 1; from < stations; ++from)
    nearfar->transmit_started(next_tx++, from, Watts{1.0e-4}, noop_s, noop_a);
  nearfar->transmit_started(next_tx, 0, Watts{1.0e-4}, noop_s, noop_a);
  for (StationId rx = 1; rx < stations; rx += 3) {
    const auto h = nearfar->open_reception(next_tx, rx, nullptr);
    const double engine_w = nearfar->interference(h).value();
    // Ground truth: exact lazy-gain sum over every other active transmitter.
    double exact = nearfar->thermal_noise().value();
    for (StationId from = 1; from < stations; ++from)
      if (from != rx) exact += nearfar->gain(rx, from) * 1.0e-4;
    EXPECT_NEAR(engine_w, exact, per_term * exact) << "rx " << rx;
    // The incremental value and the engine's own recomputation agree.
    EXPECT_NEAR(nearfar->recomputed_interference(h).value(), engine_w,
                1.0e-12 * engine_w);
    nearfar->close_reception(h);
  }
}

// ---------------------------------------------------------------------------
// The drift regression (ISSUE 4 satellite 1).
//
// One long-lived reception watches >= 10^4 overlapping transmissions come
// and go. The legacy dense engine's subtract-and-clamp accumulates rounding
// error in its incremental interference; the compensated engine stays within
// 1e-12 relative of a from-scratch recomputation throughout.

/// Churns `total` overlapping transmissions (a sliding window of `overlap`
/// concurrently on air) past one reception held open for the whole run, and
/// returns the worst relative error of interference() vs
/// recomputed_interference() observed at any point.
double churn_and_measure(InterferenceEngine& engine, int total, int overlap) {
  Rng rng(4242);
  const auto noop_s = [](ReceptionHandle) {};
  const auto noop_a = [](ReceptionHandle, Watts) {};
  // tx 1: the persistent weak interferer that keeps the true interference
  // tiny, so absolute drift from the loud churn shows up as relative error.
  engine.transmit_started(1, 1, Watts{1.0e-10}, noop_s, noop_a);
  // tx 2: the transmission being received (its own power never counts).
  engine.transmit_started(2, 0, Watts{1.0e-4}, noop_s, noop_a);
  const auto h = engine.open_reception(2, 2, nullptr);

  double worst_rel = 0.0;
  const auto measure = [&] {
    const double inc = engine.interference(h).value();
    const double exact = engine.recomputed_interference(h).value();
    const double rel = std::abs(inc - exact) / exact;
    if (rel > worst_rel) worst_rel = rel;
  };
  std::deque<std::uint64_t> on_air;
  std::uint64_t next_tx = 10;
  for (int i = 0; i < total; ++i) {
    // Loud interferers (~1 W at the receiver) with ragged mantissas so
    // nearly every add/subtract rounds.
    const double power =
        1.0 + 1.0e-6 * static_cast<double>(rng() % 999983);
    const std::uint64_t tx = next_tx++;
    engine.transmit_started(tx, 3, Watts{power}, noop_s, noop_a);
    on_air.push_back(tx);
    if (on_air.size() > static_cast<std::size_t>(overlap)) {
      engine.transmit_ended(on_air.front(), noop_a);
      on_air.pop_front();
    }
    if (i % 500 == 0) measure();
  }
  while (!on_air.empty()) {
    engine.transmit_ended(on_air.front(), noop_a);
    on_air.pop_front();
  }
  // Quiescent again: only the 1e-10 interferer remains. Any leftover from
  // the 10^4 loud transmissions is pure bookkeeping drift.
  measure();
  engine.close_reception(h);
  return worst_rel;
}

PropagationMatrix drift_matrix() {
  // Receiver is station 2. Station 3 (the churn source) reaches it at unit
  // gain; station 1's persistent trickle and station 0's signal define the
  // tiny true residual.
  PropagationMatrix m(4);
  m.set_gain(2, 0, radio::LinearGain{1.0});
  m.set_gain(2, 1, radio::LinearGain{1.0});
  m.set_gain(2, 3, radio::LinearGain{1.0});
  return m;
}

TEST(InterferenceDrift, LegacyDenseEngineDriftsBeyondTolerance) {
  const auto dense = make_dense_engine(drift_matrix());
  dense->set_thermal_noise(Watts{1.0e-15});
  const double worst = churn_and_measure(*dense, 10000, 16);
  // The teeth of the regression test: the subtract-and-clamp baseline is
  // measurably wrong. (Observed ~3e-3 relative on this workload; anything
  // over the fixed engine's 1e-12 bound demonstrates the bug.)
  EXPECT_GT(worst, 1.0e-12);
}

TEST(InterferenceDrift, CompensatedEngineStaysExact) {
  const auto comp = make_compensated_engine(drift_matrix());
  comp->set_thermal_noise(Watts{1.0e-15});
  const double worst = churn_and_measure(*comp, 10000, 16);
  EXPECT_LE(worst, 1.0e-12);
}

TEST(InterferenceDrift, NearFarEngineStaysExactUnderChurn) {
  // Same churn through the grid-indexed path: stations placed so the churn
  // source sits in the receiver's near field.
  geo::Placement p;
  p.push_back({0.0, 0.0});    // 0: wanted sender
  p.push_back({10.0, 0.0});   // 1: persistent weak interferer
  p.push_back({5.0, 5.0});    // 2: receiver
  p.push_back({0.0, 10.0});   // 3: churn source
  NearFarConfig nf;
  nf.cutoff = Meters{100.0};
  const auto nearfar = make_nearfar_engine(
      p, std::make_shared<FreeSpacePropagation>(), nf);
  nearfar->set_thermal_noise(Watts{1.0e-15});
  const double worst = churn_and_measure(*nearfar, 10000, 16);
  EXPECT_LE(worst, 1.0e-12);
}

}  // namespace
}  // namespace drn::radio
