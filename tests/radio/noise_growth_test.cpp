#include "radio/noise_growth.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/expects.hpp"
#include "common/running_stats.hpp"

namespace drn::radio {
namespace {

TEST(NoiseGrowth, CharacteristicLengthDefinition) {
  // A disc of radius R0 holds exactly one expected station.
  const double sigma = 0.01;
  const double r0 = characteristic_length(sigma).value();
  EXPECT_NEAR(sigma * std::numbers::pi * r0 * r0, 1.0, 1e-12);
}

TEST(NoiseGrowth, DiscDensity) {
  EXPECT_NEAR(disc_density(1000, Meters{100.0}),
              1000.0 / (std::numbers::pi * 1.0e4), 1e-12);
}

TEST(NoiseGrowth, InterferenceIntegralClosedForm) {
  // N = 2 pi eta sigma ln(r_outer/r_inner): check against a numeric
  // integration of the 1/r^2 annulus.
  const double sigma = 0.02;
  const double eta = 0.4;
  const double r_in = 1.0;
  const double r_out = 50.0;
  double numeric = 0.0;
  const int steps = 200000;
  for (int i = 0; i < steps; ++i) {
    const double r = r_in + (r_out - r_in) * (i + 0.5) / steps;
    numeric += eta * sigma * 2.0 * std::numbers::pi * r / (r * r) *
               ((r_out - r_in) / steps);
  }
  EXPECT_NEAR(annulus_interference(sigma, eta, Meters{r_in}, Meters{r_out}).value(), numeric, 1e-3);
}

TEST(NoiseGrowth, IntegralDivergesLogarithmically) {
  // The paper's Olbers'-paradox observation: the infinite-plane integral
  // diverges — doubling the outer radius adds a constant increment forever.
  const double inc1 = annulus_interference(0.01, 1.0, Meters{1.0}, Meters{2.0}).value();
  const double inc2 = annulus_interference(0.01, 1.0, Meters{1024.0}, Meters{2048.0}).value();
  EXPECT_NEAR(inc1, inc2, 1e-12);
  EXPECT_GT(inc1, 0.0);
}

TEST(NoiseGrowth, DualSlopeIntegralConverges) {
  // Under dual-slope loss the total interference is FINITE even over the
  // infinite plane — the paper's observation that any extra attenuation
  // resolves the divergence. Check the closed form against numeric
  // integration with a huge outer bound.
  const double sigma = 0.01;
  const double eta = 0.5;
  const double r0 = 1.0;
  const double bp = 20.0;
  const double alpha = 4.0;
  const double closed =
      dual_slope_total_interference(sigma, eta, Meters{r0}, Meters{bp}, alpha)
          .value();
  // Numeric: near part (1/r^2) to bp, far part (bp^2/r^4 scaled) to 1e6.
  double numeric =
      annulus_interference(sigma, eta, Meters{r0}, Meters{bp}).value();
  const int steps = 2000000;
  const double r_far = 1.0e4;
  for (int i = 0; i < steps; ++i) {
    const double r = bp + (r_far - bp) * (i + 0.5) / steps;
    const double gain = (1.0 / (bp * bp)) * std::pow(bp / r, alpha);
    numeric += eta * sigma * 2.0 * std::numbers::pi * r * gain *
               ((r_far - bp) / steps);
  }
  EXPECT_NEAR(closed, numeric, closed * 0.01);
  // And doubling the outer radius no longer changes it (convergence).
  EXPECT_NEAR(closed,
              dual_slope_total_interference(sigma, eta, Meters{r0}, Meters{bp}, alpha)
                  .value(),
              1e-12);
}

TEST(NoiseGrowth, DualSlopeLessThanFreeSpaceDisc) {
  // For a metro-size disc, dual-slope total interference (to infinity!) is
  // below the free-space disc integral once the disc radius is a few
  // breakpoints out — obstruction helps scaling.
  const double sigma = 0.001;
  const double eta = 1.0;
  const double r0 = 1.0;
  const double bp = 50.0;
  EXPECT_LT(
      dual_slope_total_interference(sigma, eta, Meters{r0}, Meters{bp}, 4.0)
          .value(),
      annulus_interference(sigma, eta, Meters{r0}, Meters{10000.0}).value());
}

TEST(NoiseGrowth, DualSlopeContracts) {
  EXPECT_THROW(
      (void)dual_slope_total_interference(0.0, 0.5, Meters{1.0}, Meters{10.0}, 4.0),
      ContractViolation);
  EXPECT_THROW(
      (void)dual_slope_total_interference(1.0, 0.5, Meters{10.0}, Meters{1.0}, 4.0),
      ContractViolation);
  EXPECT_THROW(
      (void)dual_slope_total_interference(1.0, 0.5, Meters{1.0}, Meters{10.0}, 2.0),
      ContractViolation);
}

TEST(NoiseGrowth, Equation15) {
  // S/N = 1 / (eta ln M).
  EXPECT_NEAR(nearest_neighbor_snr(1000000, 1.0).value(),
              1.0 / std::log(1e6), 1e-12);
  EXPECT_NEAR(nearest_neighbor_snr(1000000, 0.25).value(),
              4.0 / std::log(1e6), 1e-12);
}

TEST(NoiseGrowth, DerivationConsistency) {
  // The closed form must equal S/N with S = pi*sigma (signal from R0 at unit
  // power) and N integrated from R0 to R.
  const std::size_t m = 100000;
  const double region = 1000.0;
  const double eta = 0.5;
  const double sigma = disc_density(m, Meters{region});
  const double r0 = characteristic_length(sigma).value();
  const double signal = 1.0 / (r0 * r0);
  const double noise =
      annulus_interference(sigma, eta, Meters{r0}, Meters{region}).value();
  EXPECT_NEAR(signal / noise, nearest_neighbor_snr(m, eta).value(), 1e-9);
}

TEST(NoiseGrowth, SnrDbFigure1Anchors) {
  // Points on Figure 1's curves: at eta = 1 the SNR crosses about -11.4 dB
  // at 10^6 stations and -12.6 dB at 10^8; quartering the duty cycle buys
  // exactly +6 dB everywhere.
  EXPECT_NEAR(nearest_neighbor_snr_db(1000000, 1.0).value(), -11.4, 0.05);
  EXPECT_NEAR(nearest_neighbor_snr_db(100000000, 1.0).value(), -12.65, 0.05);
  EXPECT_NEAR(nearest_neighbor_snr_db(1000000, 0.25).value() -
                  nearest_neighbor_snr_db(1000000, 1.0).value(),
              6.02, 0.01);
}

TEST(NoiseGrowth, DeclineIsLogarithmicallySlow) {
  // Squaring the station count only halves the linear SNR.
  const double s1 = nearest_neighbor_snr(1000, 1.0).value();
  const double s2 = nearest_neighbor_snr(1000000, 1.0).value();
  EXPECT_NEAR(s2, s1 / 2.0, 1e-12);
}

TEST(NoiseGrowth, DistanceMultiple) {
  // 6 dB per doubling of distance (Section 4).
  const std::size_t m = 1000000;
  EXPECT_NEAR(snr_at_distance_multiple(m, 1.0, 2.0).value(),
              nearest_neighbor_snr(m, 1.0).value() / 4.0, 1e-15);
  EXPECT_NEAR(snr_at_distance_multiple(m, 1.0, 4.0).value(),
              nearest_neighbor_snr(m, 1.0).value() / 16.0, 1e-15);
}

TEST(NoiseGrowth, MonteCarloValidatesEquation15) {
  // Eq. 15 is derived for a neighbour at exactly R0; in random placements
  // the nearest-neighbour distance fluctuates and the LINEAR SNR mean is
  // heavy-tailed (E[1/d^2] diverges logarithmically), so compare in the dB
  // domain (geometric mean), which is also what Figure 1 plots.
  Rng rng(2024);
  const std::size_t m = 2000;
  const double eta = 0.5;
  RunningStats snr_db;
  for (int trial = 0; trial < 60; ++trial) {
    const auto s = sample_nearest_neighbor_snr(m, Meters{100.0}, eta, rng);
    if (std::isfinite(s.snr.value()) && s.snr.value() > 0.0)
      snr_db.add(10.0 * std::log10(s.snr.value()));
  }
  const double predicted_db = nearest_neighbor_snr_db(m, eta).value();
  EXPECT_NEAR(snr_db.mean(), predicted_db, 4.0);  // within 4 dB
}

TEST(NoiseGrowth, SampleFieldsConsistent) {
  Rng rng(7);
  const auto s = sample_nearest_neighbor_snr(500, Meters{50.0}, 0.3, rng);
  ASSERT_GT(s.interference.value(), 0.0);
  EXPECT_NEAR(s.snr.value(), s.signal.value() / s.interference.value(),
              1e-12);
  EXPECT_GT(s.signal.value(), 0.0);
}

TEST(NoiseGrowth, Contracts) {
  EXPECT_THROW((void)characteristic_length(0.0), ContractViolation);
  EXPECT_THROW((void)disc_density(0, Meters{1.0}), ContractViolation);
  EXPECT_THROW((void)annulus_interference(1.0, 2.0, Meters{1.0}, Meters{2.0}),
               ContractViolation);
  EXPECT_THROW((void)annulus_interference(1.0, 0.5, Meters{2.0}, Meters{1.0}),
               ContractViolation);
  EXPECT_THROW((void)nearest_neighbor_snr(1, 1.0), ContractViolation);
  EXPECT_THROW((void)nearest_neighbor_snr(100, 0.0), ContractViolation);
  EXPECT_THROW((void)snr_at_distance_multiple(100, 1.0, 0.0),
               ContractViolation);
}

}  // namespace
}  // namespace drn::radio
