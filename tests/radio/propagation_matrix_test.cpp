#include "radio/propagation_matrix.hpp"

#include <gtest/gtest.h>

#include "common/expects.hpp"
#include "common/rng.hpp"

namespace drn::radio {
namespace {

TEST(PropagationMatrix, EmptyConstructionHasSelfGainDiagonal) {
  const PropagationMatrix m(3, LinearGain{2.0});
  EXPECT_EQ(m.size(), 3u);
  for (StationId i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(m.gain(i, i), 2.0);
    for (StationId j = 0; j < 3; ++j) {
      if (i != j) {
        EXPECT_DOUBLE_EQ(m.gain(i, j), 0.0);
      }
    }
  }
}

TEST(PropagationMatrix, FromPlacementMatchesModel) {
  const geo::Placement placement = {{0.0, 0.0}, {2.0, 0.0}, {0.0, 4.0}};
  const FreeSpacePropagation model;
  const auto m = PropagationMatrix::from_placement(placement, model);
  EXPECT_DOUBLE_EQ(m.gain(0, 1), 0.25);          // r = 2
  EXPECT_DOUBLE_EQ(m.gain(0, 2), 1.0 / 16.0);    // r = 4
  EXPECT_DOUBLE_EQ(m.gain(1, 2), 1.0 / 20.0);    // r = sqrt(20)
  EXPECT_DOUBLE_EQ(m.gain(0, 0), 1.0);           // default self gain
}

TEST(PropagationMatrix, IsSymmetric) {
  Rng rng(4);
  const auto placement = geo::uniform_disc(30, 100.0, rng);
  const FreeSpacePropagation model;
  const auto m = PropagationMatrix::from_placement(placement, model);
  EXPECT_TRUE(m.is_symmetric());
  for (StationId i = 0; i < m.size(); ++i)
    for (StationId j = 0; j < m.size(); ++j)
      EXPECT_DOUBLE_EQ(m.gain(i, j), m.gain(j, i));
}

TEST(PropagationMatrix, SetGainUpdatesBothDirections) {
  PropagationMatrix m(4);
  m.set_gain(1, 3, radio::LinearGain{0.5});
  EXPECT_DOUBLE_EQ(m.gain(1, 3), 0.5);
  EXPECT_DOUBLE_EQ(m.gain(3, 1), 0.5);
  EXPECT_TRUE(m.is_symmetric());
}

TEST(PropagationMatrix, StrongestNeighborGain) {
  PropagationMatrix m(3);
  m.set_gain(0, 1, radio::LinearGain{0.3});
  m.set_gain(0, 2, radio::LinearGain{0.7});
  m.set_gain(1, 2, radio::LinearGain{0.1});
  EXPECT_DOUBLE_EQ(m.strongest_neighbor_gain(0).value(), 0.7);
  EXPECT_DOUBLE_EQ(m.strongest_neighbor_gain(1).value(), 0.3);
  EXPECT_DOUBLE_EQ(m.strongest_neighbor_gain(2).value(), 0.7);
}

TEST(PropagationMatrix, Contracts) {
  EXPECT_THROW(PropagationMatrix(0), ContractViolation);
  EXPECT_THROW(PropagationMatrix(2, LinearGain{0.0}), ContractViolation);
  PropagationMatrix m(2);
  EXPECT_THROW((void)m.gain(0, 2), ContractViolation);
  EXPECT_THROW(m.set_gain(0, 1, radio::LinearGain{0.0}), ContractViolation);
}

TEST(PropagationMatrix, SelfGainConfigurable) {
  const geo::Placement placement = {{0.0, 0.0}, {1.0, 0.0}};
  const FreeSpacePropagation model;
  const auto m =
      PropagationMatrix::from_placement(placement, model, /*self_gain=*/LinearGain{42.0});
  EXPECT_DOUBLE_EQ(m.gain(0, 0), 42.0);
  EXPECT_DOUBLE_EQ(m.gain(1, 1), 42.0);
}

}  // namespace
}  // namespace drn::radio
