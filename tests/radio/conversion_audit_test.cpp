// Conversion-site audit (the unit layer's runtime complement): every dB <->
// linear and absolute-power conversion the library performs, pinned against
// closed-form values from the paper's equations. A regression here means a
// conversion site drifted — the exact class of silent bug the strong types
// exist to prevent.
//
// Paper references (Shepard, SIGCOMM '96):
//   Eq. 3-4   C = W log2(1 + S/N); beta margin on the required S/N
//   Eq. 15    S/N = 1 / (eta ln M) nearest-neighbour scaling
//   Sec. 3.3  "a couple of decibel" multipath penalty, h^2 path gains
//   Sec. 6    W/C processing gain, "20 to 25 dB"
#include <gtest/gtest.h>

#include <cmath>

#include "core/clock.hpp"
#include "radio/noise_growth.hpp"
#include "radio/propagation.hpp"
#include "radio/reception.hpp"
#include "radio/units.hpp"

namespace drn::radio {
namespace {

TEST(ConversionAudit, RawBoundaryHelpersMatchClosedForm) {
  // The four sanctioned raw-double converters in radio/units.hpp.
  EXPECT_DOUBLE_EQ(from_db(5.0), std::pow(10.0, 0.5));
  EXPECT_DOUBLE_EQ(from_db(0.0), 1.0);
  EXPECT_DOUBLE_EQ(to_db(100.0), 20.0);
  EXPECT_DOUBLE_EQ(watts_to_dbm(1.0), 30.0);
  EXPECT_DOUBLE_EQ(dbm_to_watts(0.0), 1.0e-3);
}

TEST(ConversionAudit, RawAndTypedConvertersAreBitIdentical) {
  // The typed bridges must compute the same doubles as the historical raw
  // helpers, for any value — the migration contract.
  for (double db : {-31.7, -5.0, 0.0, 3.0, 5.0, 23.0, 60.0}) {
    EXPECT_EQ(Decibels{db}.to_linear().value(), from_db(db));
  }
  for (double lin : {1.0e-12, 0.5, 1.0, 200.0, 7.3e9}) {
    EXPECT_EQ(LinearGain{lin}.to_db().value(), to_db(lin));
    EXPECT_EQ(Watts{lin}.to_dbm().value(), watts_to_dbm(lin));
  }
  for (double dbm : {-90.0, -30.0, 0.0, 30.0}) {
    EXPECT_EQ(DecibelMilliwatts{dbm}.to_watts().value(), dbm_to_watts(dbm));
  }
}

TEST(ConversionAudit, DbRoundTripsAreStable) {
  for (double db : {-120.0, -15.5, 0.0, 5.0, 23.0}) {
    EXPECT_NEAR(Decibels{db}.to_linear().to_db().value(), db, 1e-12);
    EXPECT_NEAR(DecibelMilliwatts{db}.to_watts().to_dbm().value(), db, 1e-12);
  }
}

TEST(ConversionAudit, ThermalNoiseIsBoltzmannKTB) {
  // kTB at 290 K over 200 MHz — the scheme's default noise floor.
  const Hertz w{200.0e6};
  EXPECT_DOUBLE_EQ(thermal_noise(w).value(),
                   kBoltzmann * kStandardTemperatureK * 200.0e6);
  EXPECT_EQ(thermal_noise(w).value(), thermal_noise_watts(200.0e6));
  // About -80.9 dBm: the textbook -174 dBm/Hz + 10 log10(2e8).
  EXPECT_NEAR(thermal_noise(w).to_dbm().value(),
              -174.0 + 10.0 * std::log10(200.0e6), 0.05);
}

TEST(ConversionAudit, RequiredSnrIsMarginTimesShannon) {
  // Eq. 4 with the paper's numbers: C/W = 1e6/1e8 = 0.01 and beta = 5 dB
  // gives S/N = 10^0.5 * (2^0.01 - 1).
  const ReceptionCriterion c(Hertz{1.0e8}, BitsPerSecond{1.0e6},
                             Decibels{5.0});
  EXPECT_DOUBLE_EQ(c.required_snr().value(),
                   from_db(5.0) * (std::exp2(0.01) - 1.0));
  // And the dB view converts back exactly.
  EXPECT_NEAR(c.required_snr_db().to_linear().value(),
              c.required_snr().value(), 1e-12 * c.required_snr().value());
}

TEST(ConversionAudit, ProcessingGainSection6) {
  // Sec. 6: spreading 1 Mb/s over 200 MHz is W/C = 200 = 23.0103 dB —
  // inside the paper's "20 to 25 dB" window.
  const ReceptionCriterion c(Hertz{200.0e6}, BitsPerSecond{1.0e6});
  EXPECT_DOUBLE_EQ(c.processing_gain().value(), 200.0);
  EXPECT_NEAR(c.processing_gain_db().value(), 10.0 * std::log10(200.0),
              1e-12);
  EXPECT_NEAR(c.processing_gain_db().value(), 23.0103, 1e-4);
}

TEST(ConversionAudit, MultipathPenaltySection33) {
  // "A couple of decibel decrease": -2 dB is a flat x10^-0.2 on every link.
  auto base = std::make_shared<FreeSpacePropagation>();
  const MultipathPenalty model(base, Decibels{2.0});
  const geo::Vec2 a{0.0, 0.0};
  const geo::Vec2 b{100.0, 0.0};
  EXPECT_DOUBLE_EQ(
      (model.power_gain(a, b) / base->power_gain(a, b)).value(),
      from_db(-2.0));
}

TEST(ConversionAudit, ShadowingSigmaScalesInDb) {
  // Log-normal shadowing applies 10^(z*sigma/10): doubling sigma squares the
  // linear factor for the same site draw (same base, same seed).
  auto base = std::make_shared<FreeSpacePropagation>();
  const LogNormalShadowing narrow(base, Decibels{4.0}, 7);
  const LogNormalShadowing wide(base, Decibels{8.0}, 7);
  const geo::Vec2 a{0.0, 0.0};
  const geo::Vec2 b{37.0, 19.0};
  const double f_narrow =
      (narrow.power_gain(a, b) / base->power_gain(a, b)).value();
  const double f_wide =
      (wide.power_gain(a, b) / base->power_gain(a, b)).value();
  EXPECT_NEAR(f_wide, f_narrow * f_narrow, 1e-12 * f_wide);
}

TEST(ConversionAudit, Equation15SnrInDb) {
  // Eq. 15: S/N = 1/(eta ln M). At M = 1e6, eta = 1: ln(1e6) = 13.8155,
  // i.e. -11.4 dB (the number quoted in Section 4).
  const double lin = nearest_neighbor_snr(1000000, 1.0).value();
  EXPECT_DOUBLE_EQ(lin, 1.0 / std::log(1.0e6));
  EXPECT_DOUBLE_EQ(nearest_neighbor_snr_db(1000000, 1.0).value(), to_db(lin));
  EXPECT_NEAR(nearest_neighbor_snr_db(1000000, 1.0).value(), -11.4, 0.05);
}

TEST(ConversionAudit, ClockSecondsRoundTrip) {
  // Seconds flow through StationClock without hidden scaling: local/global
  // are exact affine inverses in the same unit.
  const core::StationClock c(core::Seconds{4211.007}, 1.0 - 22e-6);
  for (double g : {0.0, 1.0, 3600.0, -500.25}) {
    EXPECT_NEAR(c.global(c.local(core::Seconds{g})).value(), g,
                1e-9 * std::max(1.0, std::abs(g)));
  }
}

}  // namespace
}  // namespace drn::radio
