#include "dynamics/dynamics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/network_builder.hpp"
#include "core/scheduled_station.hpp"
#include "geo/placement.hpp"
#include "radio/interference_engine.hpp"
#include "radio/propagation.hpp"
#include "radio/reception.hpp"
#include "sim/simulator.hpp"
#include "helpers/scenario.hpp"
#include "helpers/test_macs.hpp"

namespace drn::dynamics {
namespace {

sim::SimulatorConfig tiny_config(std::uint64_t seed = 1) {
  sim::SimulatorConfig cfg{radio::ReceptionCriterion(radio::Hertz{200.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{5.0})};
  cfg.thermal_noise_w = 1.0e-15;
  cfg.seed = seed;
  return cfg;
}

geo::Placement ring(std::size_t n, double radius_m) {
  geo::Placement p;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = 2.0 * 3.14159265358979323846 * static_cast<double>(i) /
                     static_cast<double>(n);
    p.push_back({radius_m * std::cos(a), radius_m * std::sin(a)});
  }
  return p;
}

/// Counts clock-rate change notifications (the drift-ramp delivery path).
class DriftProbe final : public sim::MacProtocol {
 public:
  void on_enqueue(sim::MacContext& ctx, const sim::Packet& pkt,
                  StationId /*next_hop*/) override {
    ctx.drop(pkt);
  }
  void on_clock_rate_changed(sim::MacContext& /*ctx*/,
                             double /*delta_ppm*/) override {
    ++changes;
  }
  int changes = 0;
};

struct IdleSim {
  std::unique_ptr<sim::Simulator> sim;
  geo::Placement placement;
};

IdleSim idle_sim(std::size_t n, std::uint64_t seed = 1) {
  IdleSim s;
  s.placement = ring(n, 200.0);
  const radio::FreeSpacePropagation model;
  s.sim = std::make_unique<sim::Simulator>(
      radio::make_dense_gains(s.placement, model), tiny_config(seed));
  for (StationId i = 0; i < n; ++i)
    s.sim->set_mac(i, std::make_unique<testing::IdleMac>());
  return s;
}

TEST(DynamicsEngine, ChurnLeavesAndRejoinsBookBalance) {
  auto s = idle_sim(6);
  DynamicsConfig dc;
  dc.churn_rate_per_s = 2.0;
  dc.mean_downtime_s = 0.5;
  DynamicsEngine engine(
      dc, *s.sim, s.placement, 6,
      [](StationId) { return std::make_unique<testing::IdleMac>(); }, Rng(3));
  engine.run(20.0);
  const auto& m = s.sim->metrics();
  EXPECT_GT(m.station_leaves(), 10u);
  EXPECT_GT(m.station_joins(), 0u);
  EXPECT_LE(m.station_joins(), m.station_leaves());
  EXPECT_EQ(m.station_leaves() - m.station_joins(), engine.stations_down());
  // Every station still down is genuinely inactive, everyone else is up.
  std::size_t down = 0;
  for (StationId i = 0; i < 6; ++i)
    if (!s.sim->station_active(i)) ++down;
  EXPECT_EQ(down, engine.stations_down());
}

TEST(DynamicsEngine, TimelineIsDeterministicInSeed) {
  auto run_once = [] {
    auto s = idle_sim(6);
    DynamicsConfig dc;
    dc.churn_rate_per_s = 1.5;
    dc.mean_downtime_s = 0.7;
    dc.mobility_speed_mps = 2.0;
    dc.mobility_step_s = 0.25;
    dc.mobility_region_m = 250.0;
    const radio::FreeSpacePropagation model;
    s.sim->enable_mobility(s.placement,
                           std::make_shared<radio::FreeSpacePropagation>());
    DynamicsEngine engine(
        dc, *s.sim, s.placement, 6,
        [](StationId) { return std::make_unique<testing::IdleMac>(); },
        Rng(11));
    engine.run(15.0);
    return std::tuple{s.sim->metrics().station_leaves(),
                      s.sim->metrics().station_joins(),
                      engine.moves_applied(), engine.moves_deferred()};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(DynamicsEngine, ScriptedMobilityChangesEngineGains) {
  auto s = idle_sim(3);
  s.sim->enable_mobility(s.placement,
                         std::make_shared<radio::FreeSpacePropagation>());
  DynamicsConfig dc;
  dc.mobility_speed_mps = 1.0;  // enables mobility; the model below overrides
  dc.mobility_step_s = 0.5;
  dc.mobility_region_m = 400.0;
  DynamicsEngine engine(dc, *s.sim, s.placement, 3, nullptr, Rng(5));
  // Walk station 0 to the far side of the ring: its gain to station 1 drops.
  auto path = std::make_unique<ScriptedPath>(s.placement);
  path->add_keyframe(0, 5.0, s.placement[0] + geo::Vec2{350.0, 0.0});
  engine.set_mobility_model(std::move(path));

  const double gain_before = s.sim->engine().gain(1, 0);
  engine.run(10.0);
  const double gain_after = s.sim->engine().gain(1, 0);
  EXPECT_GT(engine.moves_applied(), 0u);
  EXPECT_LT(gain_after, gain_before);
  // Gain matrices stay reciprocal after recomputation.
  EXPECT_EQ(s.sim->engine().gain(1, 0), s.sim->engine().gain(0, 1));
}

TEST(DynamicsEngine, DriftRampsReachTheMac) {
  geo::Placement placement = ring(3, 200.0);
  const radio::FreeSpacePropagation model;
  sim::Simulator sim(radio::make_dense_gains(placement, model), tiny_config());
  std::vector<DriftProbe*> probes;
  for (StationId i = 0; i < 3; ++i) {
    auto probe = std::make_unique<DriftProbe>();
    probes.push_back(probe.get());
    sim.set_mac(i, std::move(probe));
  }
  DynamicsConfig dc;
  dc.drift_ppm_per_s = 5.0;
  dc.drift_step_s = 0.5;
  DynamicsEngine engine(dc, sim, placement, 3, nullptr, Rng(8));
  engine.run(5.0);
  for (const DriftProbe* probe : probes) EXPECT_GE(probe->changes, 8);
}

// -- scheme-level churn behaviour: re-discovery and ghost eviction ----------

struct SchemeChurnRig {
  testing::Scenario scenario;
  std::unique_ptr<sim::Simulator> sim;
  std::vector<core::ScheduledStation*> macs;  // borrowed; sim owns them
  std::vector<core::ScheduledStationConfig> cfgs;
  std::vector<core::NeighborTable> tables;
};

/// A beacon-enabled scheduled network with every MAC installed and a config
/// + neighbour-table snapshot taken for warm reboots.
SchemeChurnRig scheme_rig(double beacon_s, double timeout_s) {
  core::ScheduledNetworkConfig net;
  net.max_power_w = 1.0e-3;  // keep the small disc connected
  net.beacon_interval_s = beacon_s;
  net.neighbor_timeout_s = timeout_s;
  net.readopt_neighbors = true;
  SchemeChurnRig rig{testing::make_scenario(10, 500.0, 77, net), {}, {}, {},
                     {}};
  sim::SimulatorConfig cfg{testing::scheme_criterion()};
  cfg.seed = 77;
  rig.sim = std::make_unique<sim::Simulator>(rig.scenario.gains, cfg);
  for (const auto& mac : rig.scenario.net.macs) {
    rig.cfgs.push_back(mac->config());
    rig.tables.push_back(mac->neighbors());
  }
  for (StationId s = 0; s < rig.scenario.gains.size(); ++s) {
    rig.macs.push_back(rig.scenario.net.macs[s].get());
    rig.sim->set_mac(s, std::move(rig.scenario.net.macs[s]));
  }
  return rig;
}

/// A station with at least two direct neighbours (so re-discovery has
/// something to find).
StationId pick_victim(const SchemeChurnRig& rig) {
  for (StationId s = 0; s < rig.cfgs.size(); ++s)
    if (rig.tables[s].size() >= 2) return s;
  ADD_FAILURE() << "no station with 2+ neighbours in the rig";
  return 0;
}

TEST(SchemeChurn, RejoiningStationRefitsClocksWithinBoundedBeaconPeriods) {
  const double beacon_s = 0.5;
  auto rig = scheme_rig(beacon_s, 30.0);
  const StationId victim = pick_victim(rig);

  rig.sim->run_until(2.0);
  rig.sim->deactivate_station(victim);
  rig.sim->run_until(4.0);
  auto fresh = std::make_unique<core::ScheduledStation>(rig.cfgs[victim],
                                                        rig.tables[victim]);
  core::ScheduledStation* returned = fresh.get();
  rig.sim->activate_station(victim, std::move(fresh));

  // Within 12 beacon periods the returnee must have heard enough beacons to
  // re-fit a clock model (>= 2 samples) for at least one neighbour — the
  // paper's Section 3.5 re-acquisition claim, bounded.
  rig.sim->run_until(4.0 + 12.0 * beacon_s);
  bool refit = false;
  for (const auto& n : returned->neighbors().all())
    if (returned->clock_samples_from(n.id) >= 2) refit = true;
  EXPECT_TRUE(refit) << "station " << victim
                     << " heard no usable beacons after rejoining";
  EXPECT_EQ(rig.sim->metrics().station_joins(), 1u);
}

TEST(SchemeChurn, NeighborsOfReturneeHearItAgain) {
  const double beacon_s = 0.5;
  auto rig = scheme_rig(beacon_s, 30.0);
  const StationId victim = pick_victim(rig);
  const StationId buddy = rig.tables[victim].all().front().id;

  rig.sim->run_until(2.0);
  const std::size_t samples_at_crash =
      rig.macs[buddy]->clock_samples_from(victim);
  rig.sim->deactivate_station(victim);
  rig.sim->run_until(4.0);
  rig.sim->activate_station(
      victim, std::make_unique<core::ScheduledStation>(rig.cfgs[victim],
                                                       rig.tables[victim]));
  rig.sim->run_until(4.0 + 12.0 * beacon_s);
  // The buddy keeps fitting the returnee's beacons: new samples arrived.
  EXPECT_GT(rig.macs[buddy]->clock_samples_from(victim), samples_at_crash);
}

TEST(SchemeChurn, StaleNeighborsOfCrashedStationAreEvicted) {
  const double beacon_s = 0.5;
  const double timeout_s = 3.0;
  auto rig = scheme_rig(beacon_s, timeout_s);
  const StationId victim = pick_victim(rig);

  rig.sim->run_until(2.0);
  rig.sim->deactivate_station(victim);
  // No ghost lingers: after well past the timeout every survivor that knew
  // the victim has evicted it (and therefore routes nothing to it).
  rig.sim->run_until(2.0 + 4.0 * timeout_s);
  for (StationId s = 0; s < rig.cfgs.size(); ++s) {
    if (s == victim) continue;
    EXPECT_EQ(rig.macs[s]->neighbors().find(victim), nullptr)
        << "station " << s << " still lists crashed station " << victim;
  }
}

}  // namespace
}  // namespace drn::dynamics
