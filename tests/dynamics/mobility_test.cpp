#include "dynamics/mobility.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "geo/placement.hpp"
#include "geo/vec2.hpp"

namespace drn::dynamics {
namespace {

geo::Placement square_start() {
  geo::Placement p;
  p.push_back({10.0, 0.0});
  p.push_back({0.0, 10.0});
  p.push_back({-10.0, 0.0});
  p.push_back({0.0, -10.0});
  return p;
}

TEST(RandomWaypoint, StepObeysSpeedAndStaysInRegion) {
  const double region_m = 100.0;
  const double speed = 5.0;
  RandomWaypoint model(square_start(), region_m, speed);
  Rng rng(7);
  geo::Placement prev = square_start();
  for (int tick = 0; tick < 200; ++tick) {
    for (StationId s = 0; s < 4; ++s) {
      const double dt = 0.3;
      const geo::Vec2 next = model.step(s, dt, rng);
      // Never faster than speed * dt (waypoint switches mid-step included).
      EXPECT_LE(geo::distance(prev[s], next), speed * dt + 1e-9);
      // Targets are drawn inside the disc, so the walk stays inside it.
      EXPECT_LE(geo::norm(next), region_m + 1e-9);
      prev[s] = next;
    }
  }
}

TEST(RandomWaypoint, DeterministicInItsRngStream) {
  RandomWaypoint a(square_start(), 50.0, 2.0);
  RandomWaypoint b(square_start(), 50.0, 2.0);
  Rng ra(42), rb(42);
  for (int tick = 0; tick < 50; ++tick)
    for (StationId s = 0; s < 4; ++s)
      EXPECT_EQ(a.step(s, 0.5, ra), b.step(s, 0.5, rb));
}

TEST(RandomWaypoint, ActuallyMoves) {
  RandomWaypoint model(square_start(), 100.0, 3.0);
  Rng rng(1);
  geo::Vec2 pos = square_start()[0];
  double travelled = 0.0;
  for (int tick = 0; tick < 100; ++tick) {
    const geo::Vec2 next = model.step(0, 0.5, rng);
    travelled += geo::distance(pos, next);
    pos = next;
  }
  EXPECT_GT(travelled, 100.0);  // 50 s at 3 m/s, minus waypoint slack
}

TEST(ScriptedPath, InterpolatesLinearlyAndHoldsLast) {
  geo::Placement start;
  start.push_back({0.0, 0.0});
  ScriptedPath path(std::move(start));
  path.add_keyframe(0, 2.0, {10.0, 0.0});
  path.add_keyframe(0, 4.0, {10.0, 6.0});
  Rng rng(1);

  geo::Vec2 p = path.step(0, 1.0, rng);  // t = 1: halfway to (10, 0)
  EXPECT_NEAR(p.x, 5.0, 1e-12);
  EXPECT_NEAR(p.y, 0.0, 1e-12);
  p = path.step(0, 1.0, rng);  // t = 2: first keyframe exactly
  EXPECT_NEAR(p.x, 10.0, 1e-12);
  EXPECT_NEAR(p.y, 0.0, 1e-12);
  p = path.step(0, 1.0, rng);  // t = 3: halfway up the second leg
  EXPECT_NEAR(p.x, 10.0, 1e-12);
  EXPECT_NEAR(p.y, 3.0, 1e-12);
  p = path.step(0, 10.0, rng);  // t = 13: past the last keyframe — hold
  EXPECT_NEAR(p.x, 10.0, 1e-12);
  EXPECT_NEAR(p.y, 6.0, 1e-12);
}

TEST(ScriptedPath, StationsWithoutKeyframesHoldStart) {
  geo::Placement start;
  start.push_back({1.0, 2.0});
  start.push_back({3.0, 4.0});
  ScriptedPath path(std::move(start));
  path.add_keyframe(1, 1.0, {0.0, 0.0});
  Rng rng(1);
  // Station 0 has no script: it never moves, no matter how far time runs.
  for (int tick = 0; tick < 5; ++tick) {
    const geo::Vec2 p = path.step(0, 2.0, rng);
    EXPECT_EQ(p, (geo::Vec2{1.0, 2.0}));
  }
  // Per-station clocks are independent: station 1's first step still covers
  // its whole leg even though station 0 was stepped five times first.
  const geo::Vec2 q = path.step(1, 0.5, rng);
  EXPECT_NEAR(q.x, 1.5, 1e-12);
  EXPECT_NEAR(q.y, 2.0, 1e-12);
}

}  // namespace
}  // namespace drn::dynamics
