#include "dynamics/jammer.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "geo/placement.hpp"
#include "radio/interference_engine.hpp"
#include "radio/propagation.hpp"
#include "radio/reception.hpp"
#include "sim/simulator.hpp"
#include "helpers/test_macs.hpp"

namespace drn::dynamics {
namespace {

sim::SimulatorConfig tiny_config() {
  sim::SimulatorConfig cfg{radio::ReceptionCriterion(radio::Hertz{200.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{5.0})};
  cfg.thermal_noise_w = 1.0e-15;
  return cfg;
}

TEST(Jammer, WithJammersAppendsInsideRegion) {
  geo::Placement base;
  base.push_back({1.0, 1.0});
  base.push_back({2.0, 2.0});
  Rng rng(9);
  const auto extended = with_jammers(base, 3, 500.0, rng);
  ASSERT_EQ(extended.size(), 5u);
  EXPECT_EQ(extended[0], base[0]);
  EXPECT_EQ(extended[1], base[1]);
  for (std::size_t j = 2; j < 5; ++j)
    EXPECT_LE(geo::norm(extended[j]), 500.0);
}

TEST(Jammer, EmitsOneBurstPerPeriodAfterRandomPhase) {
  geo::Placement placement;
  placement.push_back({0.0, 0.0});
  placement.push_back({100.0, 0.0});
  placement.push_back({50.0, 50.0});
  const radio::FreeSpacePropagation model;
  sim::Simulator sim(radio::make_dense_gains(placement, model), tiny_config());
  sim.set_mac(0, std::make_unique<testing::IdleMac>());
  sim.set_mac(1, std::make_unique<testing::IdleMac>());
  JammerSpec spec;
  spec.count = 1;
  spec.period_s = 0.5;
  spec.duty = 0.2;
  spec.power_w = 1.0e-3;
  install_jammers(sim, 2, spec);
  sim.run_until(5.25);
  // Phase is uniform in [0, period): at least 9 full periods fit, 11 at most.
  EXPECT_GE(sim.metrics().noise_bursts(), 9u);
  EXPECT_LE(sim.metrics().noise_bursts(), 11u);
  // Noise bursts carry no packet: nothing was offered or lost end-to-end.
  EXPECT_EQ(sim.metrics().offered(), 0u);
}

TEST(Jammer, BurstRaisesInterferenceAtReceivers) {
  // Station 0 transmits to station 1 with a jammer parked right next to the
  // receiver: the burst must show up in the receiver's heard power.
  geo::Placement placement;
  placement.push_back({0.0, 0.0});
  placement.push_back({200.0, 0.0});
  placement.push_back({210.0, 0.0});
  const radio::FreeSpacePropagation model;
  sim::Simulator sim(radio::make_dense_gains(placement, model), tiny_config());
  sim.set_mac(0, std::make_unique<testing::IdleMac>());
  sim.set_mac(1, std::make_unique<testing::IdleMac>());
  JammerSpec spec;
  spec.count = 1;
  spec.period_s = 0.25;
  spec.duty = 0.9;  // almost always on: power_at sampling can't miss it
  spec.power_w = 1.0e-2;
  install_jammers(sim, 2, spec);
  sim.run_until(10.0);
  EXPECT_GT(sim.metrics().noise_bursts(), 30u);
}

TEST(Jammer, DropsAnythingEnqueuedAtIt) {
  geo::Placement placement;
  placement.push_back({0.0, 0.0});
  placement.push_back({100.0, 0.0});
  const radio::FreeSpacePropagation model;
  sim::Simulator sim(radio::make_dense_gains(placement, model), tiny_config());
  sim.set_mac(0, std::make_unique<testing::IdleMac>());
  JammerSpec spec;
  spec.count = 1;
  install_jammers(sim, 1, spec);
  sim::Packet pkt;
  pkt.source = 1;
  pkt.destination = 0;
  pkt.size_bits = 1000.0;
  sim.inject(0.1, pkt);
  sim.run_until(2.0);
  EXPECT_EQ(sim.metrics().delivered(), 0u);
  EXPECT_EQ(sim.metrics().mac_drops(), 1u);
}

}  // namespace
}  // namespace drn::dynamics
