// Long-running churn soak — registered under the `soak` ctest configuration
// (ctest -C soak) and deliberately excluded from the tier-1 suite: it runs a
// fully audited, minutes-long simulation with every fault class enabled at
// once and asserts the physics invariants never crack.
#include <gtest/gtest.h>

#include "runner/scenario.hpp"

namespace drn::runner {
namespace {

TEST(ChurnSoak, AuditedEverythingOnRunStaysInvariantClean) {
  ScenarioSpec spec;
  spec.stations = 120;
  spec.region_m = 1800.0;
  spec.rate_pps = 150.0;
  spec.duration_s = 60.0;
  spec.drain_s = 30.0;
  spec.audit = true;
  spec.net.beacon_interval_s = 0.5;
  spec.net.neighbor_timeout_s = 6.0;
  spec.net.readopt_neighbors = true;
  spec.dynamics.churn_rate_per_s = 1.0;
  spec.dynamics.mean_downtime_s = 3.0;
  spec.dynamics.mobility_speed_mps = 1.0;
  spec.dynamics.mobility_step_s = 0.5;
  spec.dynamics.drift_ppm_per_s = 2.0;
  spec.dynamics.jammer.count = 2;

  const TrialResult r = run_trial(spec, 4242);
  EXPECT_GT(r.audit_checks, 100000u);
  EXPECT_EQ(r.audit_violations, 0u);
  EXPECT_GT(r.station_leaves, 20u);
  EXPECT_GT(r.station_joins, 10u);
  EXPECT_GT(r.noise_bursts, 100u);
  EXPECT_GT(r.delivered, 0u);
  EXPECT_GT(r.recoveries, 0u);
}

}  // namespace
}  // namespace drn::runner
