// Dynamics × layering edge cases, asserted through the layer seams the
// Simulator facade now exposes (medium()/host()): the mobility RF-idle
// refusal is the medium's rf_idle rule, double-deactivation and
// clock-rate-on-a-dead-station are StationHost lifecycle contract
// violations. These paths cross layer boundaries (facade orchestrates
// medium teardown before host teardown), so they pin the seams the
// god-object split introduced.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/expects.hpp"
#include "geo/placement.hpp"
#include "geo/vec2.hpp"
#include "radio/propagation.hpp"
#include "radio/propagation_matrix.hpp"
#include "radio/reception.hpp"
#include "radio/units.hpp"
#include "sim/simulator.hpp"
#include "helpers/test_macs.hpp"

namespace drn::dynamics {
namespace {

using drn::testing::IdleMac;
using drn::testing::ScriptMac;
using drn::testing::ScriptedTx;

sim::SimulatorConfig test_config() {
  sim::SimulatorConfig cfg{radio::ReceptionCriterion(
      radio::Hertz{1.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{0.0})};
  cfg.thermal_noise_w = 1.0e-15;
  return cfg;
}

geo::Placement pair_placement() {
  geo::Placement p;
  p.push_back({0.0, 0.0});
  p.push_back({200.0, 0.0});
  return p;
}

/// Station 0 airs a 10 ms packet to station 1 from t=0. While it is on the
/// air, neither endpoint may move: the sender is radiating, the receiver has
/// an open reception record, and in-flight engine state references both
/// stations' gains. Once the packet ends, both moves go through.
TEST(LayeringEdges, MoveRefusedWhileReceptionOpenAtMover) {
  const auto placement = pair_placement();
  const auto model = std::make_shared<radio::FreeSpacePropagation>();
  sim::Simulator sim(radio::make_dense_gains(placement, *model),
                     test_config());
  sim.enable_mobility(placement, model);
  sim.set_mac(0, std::make_unique<ScriptMac>(
                     std::vector<ScriptedTx>{{0.0, 1, 1.0, 1.0e4}}));
  sim.set_mac(1, std::make_unique<IdleMac>());

  sim.run_until(0.005);  // mid-air
  ASSERT_EQ(sim.active_transmissions(), 1u);
  // The receiver: an open reception record pins it (medium's rf_idle rule).
  EXPECT_EQ(sim.medium().open_receptions_at(1), 1);
  EXPECT_FALSE(sim.medium().rf_idle(1));
  EXPECT_FALSE(sim.try_move_station(1, {250.0, 0.0}));
  // The sender: its own radiating transmitter pins it.
  EXPECT_TRUE(sim.medium().station_transmitting(0));
  EXPECT_FALSE(sim.medium().rf_idle(0));
  EXPECT_FALSE(sim.try_move_station(0, {50.0, 0.0}));

  sim.run_until(0.02);  // packet ended; records closed
  EXPECT_EQ(sim.medium().open_receptions_at(1), 0);
  EXPECT_TRUE(sim.medium().rf_idle(0));
  EXPECT_TRUE(sim.medium().rf_idle(1));
  EXPECT_TRUE(sim.try_move_station(1, {250.0, 0.0}));
  EXPECT_TRUE(sim.try_move_station(0, {50.0, 0.0}));
}

TEST(LayeringEdges, ClockRateOnDeactivatedStationIsAContractViolation) {
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  sim::Simulator sim(m, test_config());
  sim.set_mac(0, std::make_unique<IdleMac>());
  sim.set_mac(1, std::make_unique<IdleMac>());
  sim.run_until(0.01);

  sim.deactivate_station(1);
  EXPECT_FALSE(sim.host().station_active(1));
  // The drift ramp has no MAC to talk to: the host rejects the dispatch.
  EXPECT_THROW(sim.notify_clock_rate(1, 50.0), ContractViolation);
  // The surviving station still takes the notification.
  sim.notify_clock_rate(0, 50.0);
}

TEST(LayeringEdges, DoubleDeactivationIsAContractViolation) {
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  sim::Simulator sim(m, test_config());
  sim.set_mac(0, std::make_unique<IdleMac>());
  sim.set_mac(1, std::make_unique<IdleMac>());
  sim.run_until(0.01);

  sim.deactivate_station(1);
  EXPECT_FALSE(sim.host().station_active(1));
  // The second teardown must throw BEFORE any layer mutates: the facade
  // checks the host's activation state ahead of medium-side RF teardown.
  EXPECT_THROW(sim.deactivate_station(1), ContractViolation);
  // A clean rejoin is still possible afterwards.
  sim.activate_station(1, std::make_unique<IdleMac>());
  EXPECT_TRUE(sim.host().station_active(1));
  EXPECT_EQ(sim.metrics().station_joins(), 1u);
}

}  // namespace
}  // namespace drn::dynamics
