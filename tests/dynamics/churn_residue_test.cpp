// Regression: tearing a station down mid-transmission must leave ZERO
// interference residue behind, in every engine. The deactivation path aborts
// the in-flight transmission through the engine's transmit_ended machinery;
// if any reception's running sum kept a stale contribution, the auditor's
// incremental-vs-recomputed cross-check (and the compensated engine's exact
// accounting) would expose it.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "geo/placement.hpp"
#include "radio/interference_engine.hpp"
#include "radio/propagation.hpp"
#include "radio/reception.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "helpers/scenario.hpp"
#include "helpers/test_macs.hpp"

namespace drn::dynamics {
namespace {

geo::Placement line3() {
  geo::Placement p;
  p.push_back({0.0, 0.0});
  p.push_back({300.0, 0.0});
  p.push_back({600.0, 0.0});
  return p;
}

sim::SimulatorConfig line_config(radio::InterferenceEngineKind kind) {
  sim::SimulatorConfig cfg{radio::ReceptionCriterion(radio::Hertz{200.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{5.0})};
  cfg.thermal_noise_w = 1.0e-15;
  cfg.engine = kind;
  return cfg;
}

std::unique_ptr<sim::Simulator> make_sim(radio::InterferenceEngineKind kind) {
  const auto placement = line3();
  if (kind == radio::InterferenceEngineKind::kNearFar) {
    radio::NearFarConfig nf;
    nf.cutoff = radio::Meters{2000.0};  // everything is near-field: exact sums
    return std::make_unique<sim::Simulator>(
        radio::make_nearfar_engine(
            placement, std::make_shared<radio::FreeSpacePropagation>(), nf),
        line_config(kind));
  }
  const radio::FreeSpacePropagation model;
  return std::make_unique<sim::Simulator>(
      radio::make_dense_gains(placement, model), line_config(kind));
}

/// Station 1 receives a long packet from station 2 while station 0's
/// interfering transmission is aborted mid-air by deactivation. The scoped
/// audit cross-checks every reception's incremental interference against a
/// from-scratch recomputation at each event — a stale contribution fails it.
void run_abort_under_reception(radio::InterferenceEngineKind kind) {
  auto sim = make_sim(kind);
  {
    testing::ScopedAudit audit(*sim);
    // 2 -> 1: 2 s airtime spanning the whole abort window.
    sim->set_mac(2, std::make_unique<testing::ScriptMac>(
                        std::vector<testing::ScriptedTx>{
                            {0.5, 1, 1.0e-2, 2.0e6}}));
    // 0 -> 1: would run [1.0, 2.0] but dies at 1.5.
    sim->set_mac(0, std::make_unique<testing::ScriptMac>(
                        std::vector<testing::ScriptedTx>{
                            {1.0, 1, 1.0e-3, 1.0e6}}));
    sim->set_mac(1, std::make_unique<testing::IdleMac>());
    sim->run_until(1.5);
    ASSERT_EQ(sim->active_transmissions(), 2u);
    sim->deactivate_station(0);
    EXPECT_EQ(sim->active_transmissions(), 1u);
    sim->run_until(6.0);
    EXPECT_EQ(sim->active_transmissions(), 0u);
    // The aborted transmission's own reception record is charged kAborted.
    EXPECT_EQ(sim->metrics().losses(sim::LossType::kAborted), 1u);
    EXPECT_EQ(sim->metrics().station_leaves(), 1u);
  }
}

TEST(ChurnResidue, AbortMidTransmissionLeavesNoResidueDense) {
  run_abort_under_reception(radio::InterferenceEngineKind::kDense);
}

TEST(ChurnResidue, AbortMidTransmissionLeavesNoResidueCompensated) {
  run_abort_under_reception(radio::InterferenceEngineKind::kCompensated);
}

TEST(ChurnResidue, AbortMidTransmissionLeavesNoResidueNearFar) {
  run_abort_under_reception(radio::InterferenceEngineKind::kNearFar);
}

/// Engine-level churn soak: a reception held open while 10^4 interferer
/// join/leave cycles (two overlapping, different-magnitude transmissions per
/// cycle, ended in FIFO order so each subtraction happens under a different
/// running sum than its addition) churn the running interference sum. The
/// compensated engine must land back on the recomputed ground truth EXACTLY —
/// zero drift, not just small drift.
TEST(ChurnResidue, CompensatedDriftExactlyZeroAfter1e4JoinLeaveCycles) {
  const auto placement = line3();
  const radio::FreeSpacePropagation model;
  auto engine =
      radio::make_compensated_engine(radio::make_dense_gains(placement, model));
  engine->set_thermal_noise(radio::Watts{1.0e-15});
  const auto noop_sender = [](radio::ReceptionHandle) {};
  const auto noop_affected = [](radio::ReceptionHandle, radio::Watts) {};

  engine->transmit_started(1, 2, radio::Watts{1.0e-2}, noop_sender, noop_affected);
  const auto h = engine->open_reception(1, 1, nullptr);

  std::uint64_t next_tx = 2;
  for (int cycle = 0; cycle < 10000; ++cycle) {
    const std::uint64_t a = next_tx++;
    const std::uint64_t b = next_tx++;
    engine->transmit_started(a, 0, radio::Watts{1.0e-3}, noop_sender, noop_affected);
    engine->transmit_started(b, 0, radio::Watts{3.7e-7}, noop_sender, noop_affected);
    engine->transmit_ended(a, noop_affected);
    engine->transmit_ended(b, noop_affected);
  }

  // Exact equality is the point of the compensated engine: after any number
  // of add/remove rounds the incremental sum IS the recomputed sum.
  EXPECT_EQ(engine->interference(h).value(),
            engine->recomputed_interference(h).value());
  EXPECT_EQ(engine->interference(h).value(), engine->thermal_noise().value());
  engine->close_reception(h);
  engine->transmit_ended(1, noop_affected);
}

/// Same soak through the near/far engine (exact near-field sums when the
/// cutoff covers the whole deployment).
TEST(ChurnResidue, NearFarNoResidueAfterJoinLeaveCycles) {
  const auto placement = line3();
  radio::NearFarConfig nf;
  nf.cutoff = radio::Meters{2000.0};
  auto engine = radio::make_nearfar_engine(
      placement, std::make_shared<radio::FreeSpacePropagation>(), nf);
  engine->set_thermal_noise(radio::Watts{1.0e-15});
  const auto noop_sender = [](radio::ReceptionHandle) {};
  const auto noop_affected = [](radio::ReceptionHandle, radio::Watts) {};

  engine->transmit_started(1, 2, radio::Watts{1.0e-2}, noop_sender, noop_affected);
  const auto h = engine->open_reception(1, 1, nullptr);
  std::uint64_t next_tx = 2;
  for (int cycle = 0; cycle < 10000; ++cycle) {
    const std::uint64_t a = next_tx++;
    engine->transmit_started(a, 0, radio::Watts{1.0e-3}, noop_sender, noop_affected);
    engine->transmit_ended(a, noop_affected);
  }
  EXPECT_NEAR(engine->interference(h).value(),
              engine->recomputed_interference(h).value(), 1.0e-24);
  engine->close_reception(h);
  engine->transmit_ended(1, noop_affected);
}

}  // namespace
}  // namespace drn::dynamics
