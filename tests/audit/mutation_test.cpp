// Mutation tests: prove the auditor actually has teeth. A deliberately
// broken MAC transmits right over its own incoming reception; the simulator
// correctly kills that reception (Type 3), so an auditor watching the true
// event stream stays green (the control). A MutatingObserver then replays
// the same run with one fault injected — the fault a buggy simulator or MAC
// enforcement would produce — and the auditor must flag it.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "audit/invariant_auditor.hpp"
#include "helpers/test_macs.hpp"
#include "radio/propagation_matrix.hpp"
#include "sim/simulator.hpp"

namespace drn::audit {
namespace {

using drn::testing::IdleMac;
using drn::testing::ScriptMac;
using drn::testing::ScriptedTx;

constexpr double kThermalW = 1.0e-12;

/// Relays simulator events into an auditor, applying a mutation to each
/// reception outcome on the way through. Returning nullopt drops the event.
/// This models the failure classes the auditor exists to catch: the
/// simulator mis-reporting what happened on the channel.
class MutatingObserver final : public sim::SimObserver {
 public:
  using RxMutation = std::function<std::optional<sim::RxEvent>(sim::RxEvent)>;

  MutatingObserver(InvariantAuditor& auditor, RxMutation mutate)
      : auditor_(&auditor), mutate_(std::move(mutate)) {}

  void on_transmit_start(const sim::TxEvent& tx) override {
    auditor_->on_transmit_start(tx);
  }
  void on_reception_complete(const sim::RxEvent& rx) override {
    if (auto mutated = mutate_(rx)) auditor_->on_reception_complete(*mutated);
  }

 private:
  InvariantAuditor* auditor_;
  RxMutation mutate_;
};

/// Three stations in a line. Station 0 sends to 1; the broken MAC at 1
/// keys up towards 2 in the middle of that incoming packet, so the
/// reception at 1 dies as a Type 3 loss while 1's own packet gets through.
struct BrokenMacRun {
  sim::Simulator sim;

  BrokenMacRun() : sim(gains(), config()) {}

  static radio::PropagationMatrix gains() {
    radio::PropagationMatrix m(3);
    m.set_gain(0, 1, radio::LinearGain{1.0});
    m.set_gain(1, 2, radio::LinearGain{1.0});
    m.set_gain(0, 2, radio::LinearGain{1.0e-9});
    return m;
  }
  static sim::SimulatorConfig config() {
    sim::SimulatorConfig cfg{radio::ReceptionCriterion(radio::Hertz{1.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{0.0})};
    cfg.thermal_noise_w = kThermalW;
    return cfg;
  }

  void run() {
    sim.set_mac(0, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                       {0.000, 1, 1.0, 1.0e4}}));
    // The broken MAC: deaf to its own receiver, transmits mid-reception.
    sim.set_mac(1, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                       {0.005, 2, 1.0, 1.0e4}}));
    sim.set_mac(2, std::make_unique<IdleMac>());
    sim.run_until(1.0);
    // The scenario only exercises the auditor if the self-blast happened.
    ASSERT_EQ(sim.metrics().losses(sim::LossType::kType3), 1u);
  }
};

TEST(MutationTest, ControlBrokenMacRunKeepsAuditorGreen) {
  BrokenMacRun fixture;
  InvariantAuditor auditor(fixture.sim);
  fixture.sim.add_observer(&auditor);
  fixture.run();
  auditor.finalize(fixture.sim.now());
  auditor.cross_check(fixture.sim.metrics());
  EXPECT_TRUE(auditor.ok()) << auditor.report();
  EXPECT_GT(auditor.checks_run(), 0u);
}

TEST(MutationTest, FlippingType3ToDeliveredTripsHalfDuplex) {
  BrokenMacRun fixture;
  InvariantAuditor auditor(fixture.sim);
  // The fault: half-duplex enforcement silently broken — the reception the
  // receiver's own transmitter should have killed is reported delivered.
  MutatingObserver relay(auditor, [](sim::RxEvent rx) {
    if (rx.loss == sim::LossType::kType3) {
      rx.loss = sim::LossType::kNone;
      rx.delivered = true;
    }
    return std::optional<sim::RxEvent>(rx);
  });
  fixture.sim.add_observer(&relay);
  fixture.run();
  auditor.finalize(fixture.sim.now());
  EXPECT_FALSE(auditor.ok());
  EXPECT_GT(auditor.counts_by_invariant().count("half-duplex"), 0u)
      << auditor.report();
  // The metrics cross-check independently catches the same fault: the
  // simulator's counters still say "one Type 3 loss", the mutated stream
  // says "delivered".
  auditor.cross_check(fixture.sim.metrics());
  EXPECT_GT(auditor.counts_by_invariant().count("metrics-crosscheck"), 0u)
      << auditor.report();
}

TEST(MutationTest, DroppingReceptionOutcomesTripsConservation) {
  BrokenMacRun fixture;
  InvariantAuditor auditor(fixture.sim);
  // The fault: reception outcomes silently vanish from the stream.
  MutatingObserver relay(auditor, [](const sim::RxEvent&) {
    return std::optional<sim::RxEvent>();
  });
  fixture.sim.add_observer(&relay);
  fixture.run();
  auditor.finalize(fixture.sim.now());
  EXPECT_FALSE(auditor.ok());
  EXPECT_GT(auditor.counts_by_invariant().count("conservation"), 0u)
      << auditor.report();
}

TEST(MutationTest, CorruptedSinrBookkeepingTripsConsistency) {
  BrokenMacRun fixture;
  InvariantAuditor auditor(fixture.sim);
  // The fault: interference bookkeeping undercounts, reporting an SINR that
  // exceeds the physically possible zero-interference bound.
  MutatingObserver relay(auditor, [](sim::RxEvent rx) {
    rx.min_sinr = (rx.signal_w / kThermalW) * 1.0e6;
    return std::optional<sim::RxEvent>(rx);
  });
  fixture.sim.add_observer(&relay);
  fixture.run();
  EXPECT_FALSE(auditor.ok());
  EXPECT_GT(auditor.counts_by_invariant().count("sinr-consistency"), 0u)
      << auditor.report();
}

// -- dynamics mutations: the abort path must be auditable too ---------------

/// Relays all events, letting a test bend the abort notification on the way
/// to the auditor (the fault a buggy churn teardown would produce).
class AbortMutatingObserver final : public sim::SimObserver {
 public:
  using AbortMutation = std::function<std::optional<double>(
      const sim::TxEvent& tx, double time_s)>;

  AbortMutatingObserver(InvariantAuditor& auditor, AbortMutation mutate)
      : auditor_(&auditor), mutate_(std::move(mutate)) {}

  void on_transmit_start(const sim::TxEvent& tx) override {
    auditor_->on_transmit_start(tx);
  }
  void on_reception_complete(const sim::RxEvent& rx) override {
    auditor_->on_reception_complete(rx);
  }
  void on_transmit_aborted(const sim::TxEvent& tx, double time_s) override {
    if (auto mutated = mutate_(tx, time_s))
      auditor_->on_transmit_aborted(tx, *mutated);
  }

 private:
  InvariantAuditor* auditor_;
  AbortMutation mutate_;
};

/// Station 0's packet to 1 is cut short by churn teardown mid-airtime, and a
/// third station transmits between the abort instant and the transmission's
/// PLANNED end — the event that exposes an auditor fed a doctored abort
/// timeline.
struct ChurnAbortRun {
  sim::Simulator sim;

  ChurnAbortRun() : sim(gains(), config()) {}

  static radio::PropagationMatrix gains() {
    radio::PropagationMatrix m(3);
    m.set_gain(0, 1, radio::LinearGain{1.0});
    m.set_gain(2, 1, radio::LinearGain{1.0e-3});
    m.set_gain(0, 2, radio::LinearGain{1.0e-9});
    return m;
  }
  static sim::SimulatorConfig config() {
    sim::SimulatorConfig cfg{radio::ReceptionCriterion(radio::Hertz{1.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{0.0})};
    cfg.thermal_noise_w = kThermalW;
    return cfg;
  }

  void run() {
    sim.set_mac(0, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                       {0.000, 1, 1.0, 1.0e4}}));  // 10 ms airtime
    sim.set_mac(1, std::make_unique<IdleMac>());
    sim.set_mac(2, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                       {0.007, 1, 1.0, 1.0e4}}));  // after the 5 ms abort
    sim.run_until(0.005);
    sim.deactivate_station(0);  // mid-transmission crash
    sim.run_until(1.0);
    ASSERT_EQ(sim.metrics().losses(sim::LossType::kAborted), 1u);
  }
};

TEST(MutationTest, ControlChurnAbortKeepsAuditorGreen) {
  ChurnAbortRun fixture;
  InvariantAuditor auditor(fixture.sim);
  fixture.sim.add_observer(&auditor);
  fixture.run();
  auditor.finalize(fixture.sim.now());
  auditor.cross_check(fixture.sim.metrics());
  EXPECT_TRUE(auditor.ok()) << auditor.report();
}

TEST(MutationTest, AbortReportedOutsideAirtimeTripsWellformedness) {
  ChurnAbortRun fixture;
  InvariantAuditor auditor(fixture.sim);
  // The fault: teardown claims the abort happened after the transmission
  // would have ended anyway — an abort that cannot have removed any power.
  AbortMutatingObserver relay(
      auditor, [](const sim::TxEvent& tx, double) {
        return std::optional<double>(tx.end_s + 1.0);
      });
  fixture.sim.add_observer(&relay);
  fixture.run();
  EXPECT_FALSE(auditor.ok());
  EXPECT_GT(auditor.counts_by_invariant().count("abort-wellformed"), 0u)
      << auditor.report();
}

TEST(MutationTest, SwallowedAbortTripsMonotonicity) {
  ChurnAbortRun fixture;
  InvariantAuditor auditor(fixture.sim);
  // The fault: the abort notification vanishes. The auditor's record keeps
  // the planned end (10 ms), so the kAborted outcome — which really surfaces
  // at the 5 ms abort — pushes its event clock to 10 ms, and station 2's
  // genuine 7 ms transmission lands "in the past".
  AbortMutatingObserver relay(auditor, [](const sim::TxEvent&, double) {
    return std::optional<double>();
  });
  fixture.sim.add_observer(&relay);
  fixture.run();
  EXPECT_FALSE(auditor.ok());
  EXPECT_GT(auditor.counts_by_invariant().count("event-monotonicity"), 0u)
      << auditor.report();
}

}  // namespace
}  // namespace drn::audit
