// Unit tests for the invariant auditor: a clean simulator run passes every
// check, and each invariant trips on a hand-crafted event stream that
// breaches exactly it. The synthetic streams model what a buggy simulator
// would emit, which is the failure class the auditor exists to catch.
#include "audit/invariant_auditor.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "helpers/test_macs.hpp"
#include "sim/simulator.hpp"

namespace drn::audit {
namespace {

using drn::testing::IdleMac;
using drn::testing::ScriptMac;
using drn::testing::ScriptedTx;

AuditConfig config(std::size_t stations = 4, int channels = 2) {
  AuditConfig cfg;
  cfg.stations = stations;
  cfg.despreading_channels = channels;
  cfg.thermal_noise = units::Watts{1.0e-12};
  return cfg;
}

sim::TxEvent tx_event(std::uint64_t id, StationId from, StationId to,
                      double start_s, double end_s) {
  sim::TxEvent tx;
  tx.tx_id = id;
  tx.from = from;
  tx.to = to;
  tx.power_w = 1.0;
  tx.start_s = start_s;
  tx.end_s = end_s;
  tx.rate_bps = 1.0e4;
  return tx;
}

sim::RxEvent rx_event(std::uint64_t id, StationId rx, bool delivered) {
  sim::RxEvent ev;
  ev.tx_id = id;
  ev.rx = rx;
  ev.delivered = delivered;
  ev.loss = delivered ? sim::LossType::kNone : sim::LossType::kType1;
  ev.signal_w = 1.0e-6;
  ev.required_snr = 10.0;
  ev.min_sinr = delivered ? 100.0 : 1.0;
  return ev;
}

bool tripped(const InvariantAuditor& a, const std::string& invariant) {
  return a.counts_by_invariant().count(invariant) > 0;
}

// ---------------------------------------------------------------------------
// A real, correct simulation satisfies every invariant.

TEST(InvariantAuditor, CleanSimulatorRunPasses) {
  radio::PropagationMatrix m(3);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  m.set_gain(1, 2, radio::LinearGain{1.0});
  m.set_gain(0, 2, radio::LinearGain{1e-9});
  sim::SimulatorConfig cfg{radio::ReceptionCriterion(radio::Hertz{1.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{0.0})};
  cfg.thermal_noise_w = 1e-15;
  sim::Simulator sim(m, cfg);
  InvariantAuditor auditor(sim);
  sim.add_observer(&auditor);
  sim.set_mac(0, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.00, 1, 1.0, 1.0e4}, {0.02, 1, 1.0, 1.0e4}}));
  sim.set_mac(2, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.05, 1, 1.0, 1.0e4}}));
  sim.set_mac(1, std::make_unique<IdleMac>());
  sim.run_until(1.0);
  auditor.finalize(1.0);
  auditor.cross_check(sim.metrics());
  EXPECT_TRUE(auditor.ok()) << auditor.report();
  EXPECT_GT(auditor.checks_run(), 0u);
  EXPECT_EQ(auditor.violation_count(), 0u);
}

TEST(InvariantAuditor, CleanBroadcastRunPasses) {
  radio::PropagationMatrix m(3);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  m.set_gain(0, 2, radio::LinearGain{1.0});
  m.set_gain(1, 2, radio::LinearGain{1.0});
  sim::SimulatorConfig cfg{radio::ReceptionCriterion(radio::Hertz{1.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{0.0})};
  cfg.thermal_noise_w = 1e-15;
  sim::Simulator sim(m, cfg);
  InvariantAuditor auditor(sim);
  sim.add_observer(&auditor);
  sim.set_mac(0, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.0, kBroadcast, 1.0, 1.0e4}}));
  sim.set_mac(1, std::make_unique<IdleMac>());
  sim.set_mac(2, std::make_unique<IdleMac>());
  sim.run_until(1.0);
  auditor.finalize(1.0);
  auditor.cross_check(sim.metrics());
  EXPECT_TRUE(auditor.ok()) << auditor.report();
}

// ---------------------------------------------------------------------------
// Each invariant trips on a stream that breaches exactly it.

TEST(InvariantAuditor, TripsOnNonMonotonicEvents) {
  InvariantAuditor a(config());
  a.on_transmit_start(tx_event(1, 0, 1, 1.0, 1.1));
  a.on_transmit_start(tx_event(2, 2, 1, 0.5, 0.6));  // earlier than tx 1
  EXPECT_FALSE(a.ok());
  EXPECT_TRUE(tripped(a, "event-monotonicity"));
}

TEST(InvariantAuditor, TripsOnMalformedTransmission) {
  InvariantAuditor a(config());
  a.on_transmit_start(tx_event(1, 0, 1, 1.0, 0.9));  // ends before it starts
  EXPECT_TRUE(tripped(a, "tx-wellformed"));
  InvariantAuditor b(config());
  b.on_transmit_start(tx_event(1, 0, 0, 1.0, 1.1));  // transmits to itself
  EXPECT_TRUE(tripped(b, "tx-wellformed"));
}

TEST(InvariantAuditor, TripsOnOverlappingTransmissionsOfOneStation) {
  InvariantAuditor a(config());
  a.on_transmit_start(tx_event(1, 0, 1, 0.0, 1.0));
  a.on_transmit_start(tx_event(2, 0, 2, 0.5, 1.5));  // same sender, overlaps
  EXPECT_TRUE(tripped(a, "tx-serialization"));
}

TEST(InvariantAuditor, BackToBackTransmissionsAreSerialized) {
  InvariantAuditor a(config());
  a.on_transmit_start(tx_event(1, 0, 1, 0.0, 1.0));
  a.on_transmit_start(tx_event(2, 0, 2, 1.0, 2.0));  // shared boundary: fine
  EXPECT_TRUE(a.ok()) << a.report();
}

TEST(InvariantAuditor, TripsOnDeliveryWhileReceiverTransmits) {
  InvariantAuditor a(config());
  a.on_transmit_start(tx_event(1, 0, 1, 0.0, 1.0));
  a.on_transmit_start(tx_event(2, 1, 2, 0.2, 0.4));  // receiver keys up
  a.on_reception_complete(rx_event(2, 2, true));
  EXPECT_TRUE(a.ok()) << a.report();  // so far so good
  a.on_reception_complete(rx_event(1, 1, true));  // Type 3 must have killed it
  EXPECT_TRUE(tripped(a, "half-duplex"));
}

TEST(InvariantAuditor, Type3LossWhileReceiverTransmitsIsConsistent) {
  InvariantAuditor a(config());
  a.on_transmit_start(tx_event(1, 0, 1, 0.0, 1.0));
  a.on_transmit_start(tx_event(2, 1, 2, 0.2, 0.4));
  a.on_reception_complete(rx_event(2, 2, true));
  sim::RxEvent rx = rx_event(1, 1, false);
  rx.loss = sim::LossType::kType3;
  a.on_reception_complete(rx);
  EXPECT_TRUE(a.ok()) << a.report();
}

TEST(InvariantAuditor, TripsOnDespreadingCapExceeded) {
  InvariantAuditor a(config(/*stations=*/6, /*channels=*/2));
  // Three simultaneous deliveries at station 5 with only two channels.
  a.on_transmit_start(tx_event(1, 0, 5, 0.0, 1.0));
  a.on_transmit_start(tx_event(2, 1, 5, 0.1, 1.1));
  a.on_transmit_start(tx_event(3, 2, 5, 0.2, 1.2));
  a.on_reception_complete(rx_event(1, 5, true));
  a.on_reception_complete(rx_event(2, 5, true));
  a.on_reception_complete(rx_event(3, 5, true));
  EXPECT_TRUE(tripped(a, "despreading-cap"));
}

TEST(InvariantAuditor, CapCountsType1FailuresAsOccupants) {
  InvariantAuditor a(config(/*stations=*/6, /*channels=*/2));
  a.on_transmit_start(tx_event(1, 0, 5, 0.0, 1.0));
  a.on_transmit_start(tx_event(2, 1, 5, 0.1, 1.1));
  a.on_transmit_start(tx_event(3, 2, 5, 0.2, 1.2));
  a.on_reception_complete(rx_event(1, 5, false));  // Type 1: held a channel
  a.on_reception_complete(rx_event(2, 5, true));
  a.on_reception_complete(rx_event(3, 5, true));
  EXPECT_TRUE(tripped(a, "despreading-cap"));
}

TEST(InvariantAuditor, SequentialReceptionsRespectCap) {
  InvariantAuditor a(config(/*stations=*/6, /*channels=*/2));
  a.on_transmit_start(tx_event(1, 0, 5, 0.0, 1.0));
  a.on_transmit_start(tx_event(2, 1, 5, 0.1, 1.1));
  a.on_reception_complete(rx_event(1, 5, true));
  a.on_reception_complete(rx_event(2, 5, true));
  a.on_transmit_start(tx_event(3, 2, 5, 2.0, 3.0));  // after both ended
  a.on_reception_complete(rx_event(3, 5, true));
  EXPECT_TRUE(a.ok()) << a.report();
}

TEST(InvariantAuditor, TripsOnDeliveryBelowThreshold) {
  InvariantAuditor a(config());
  a.on_transmit_start(tx_event(1, 0, 1, 0.0, 1.0));
  sim::RxEvent rx = rx_event(1, 1, true);
  rx.min_sinr = 5.0;  // below required_snr = 10
  a.on_reception_complete(rx);
  EXPECT_TRUE(tripped(a, "sinr-threshold"));
}

TEST(InvariantAuditor, TripsOnSinrAboveZeroInterferenceBound) {
  InvariantAuditor a(config());
  a.on_transmit_start(tx_event(1, 0, 1, 0.0, 1.0));
  sim::RxEvent rx = rx_event(1, 1, true);
  // signal/thermal = 1e-6/1e-12 = 1e6; claiming more is impossible.
  rx.min_sinr = 1.0e7;
  a.on_reception_complete(rx);
  EXPECT_TRUE(tripped(a, "sinr-consistency"));
}

TEST(InvariantAuditor, TripsOnThresholdInconsistentWithRate) {
  AuditConfig cfg = config();
  cfg.bandwidth = units::Hertz{1.0e6};
  cfg.margin = units::Decibels{0.0};
  InvariantAuditor a(cfg);
  a.on_transmit_start(tx_event(1, 0, 1, 0.0, 1.0));  // rate 1e4 over 1e6
  sim::RxEvent rx = rx_event(1, 1, true);
  rx.required_snr = 123.0;  // nowhere near Eq. 4 at this rate fraction
  rx.min_sinr = 200.0;
  a.on_reception_complete(rx);
  EXPECT_TRUE(tripped(a, "required-snr"));
}

TEST(InvariantAuditor, TripsOnContradictoryOutcome) {
  InvariantAuditor a(config());
  a.on_transmit_start(tx_event(1, 0, 1, 0.0, 1.0));
  sim::RxEvent rx = rx_event(1, 1, true);
  rx.loss = sim::LossType::kType2;  // delivered AND lost
  a.on_reception_complete(rx);
  EXPECT_TRUE(tripped(a, "outcome-exclusive"));
}

TEST(InvariantAuditor, TripsOnUnknownTransmissionId) {
  InvariantAuditor a(config());
  a.on_reception_complete(rx_event(99, 1, true));
  EXPECT_TRUE(tripped(a, "conservation"));
}

TEST(InvariantAuditor, TripsOnWrongAddressee) {
  InvariantAuditor a(config());
  a.on_transmit_start(tx_event(1, 0, 1, 0.0, 1.0));
  a.on_reception_complete(rx_event(1, 2, true));  // sent to 1, reported at 2
  EXPECT_TRUE(tripped(a, "conservation"));
}

TEST(InvariantAuditor, TripsOnDuplicateBroadcastOutcome) {
  InvariantAuditor a(config());
  a.on_transmit_start(tx_event(1, 0, kBroadcast, 0.0, 1.0));
  a.on_reception_complete(rx_event(1, 1, true));
  a.on_reception_complete(rx_event(1, 1, true));  // station 1 reports twice
  EXPECT_TRUE(tripped(a, "conservation"));
}

TEST(InvariantAuditor, TripsOnMissingOutcomeAtFinalize) {
  InvariantAuditor a(config());
  a.on_transmit_start(tx_event(1, 0, 1, 0.0, 1.0));
  a.finalize(10.0);  // tx 1 ended at 1.0 but never produced an outcome
  EXPECT_TRUE(tripped(a, "conservation"));
}

TEST(InvariantAuditor, InFlightTransmissionAtCutoffIsNotDangling) {
  InvariantAuditor a(config());
  a.on_transmit_start(tx_event(1, 0, 1, 0.0, 5.0));
  a.finalize(2.0);  // still on the air at the cutoff
  EXPECT_TRUE(a.ok()) << a.report();
}

TEST(InvariantAuditor, TripsOnMetricsMismatch) {
  InvariantAuditor a(config());
  a.on_transmit_start(tx_event(1, 0, 1, 0.0, 1.0));
  a.on_reception_complete(rx_event(1, 1, true));
  sim::Metrics empty(4);  // claims zero hop attempts; the stream shows one
  a.cross_check(empty);
  EXPECT_TRUE(tripped(a, "metrics-crosscheck"));
}

// ---------------------------------------------------------------------------
// Reporting machinery.

TEST(InvariantAuditor, ReportNamesInvariantAndCountsAllViolations) {
  AuditConfig cfg = config();
  cfg.max_recorded_violations = 2;
  InvariantAuditor a(cfg);
  for (std::uint64_t i = 0; i < 5; ++i)
    a.on_reception_complete(rx_event(100 + i, 1, true));  // all unknown
  EXPECT_EQ(a.violation_count(), 5u);
  EXPECT_EQ(a.violations().size(), 2u);  // detail capped, count exact
  const std::string report = a.report();
  EXPECT_NE(report.find("conservation"), std::string::npos);
  EXPECT_NE(report.find("5 violations"), std::string::npos);
}

}  // namespace
}  // namespace drn::audit
