#include "core/neighbor_table.hpp"

#include <gtest/gtest.h>

#include "common/expects.hpp"
#include "radio/units.hpp"

namespace drn::core {
namespace {

Neighbor make(StationId id, double gain, bool respect = false) {
  Neighbor n;
  n.id = id;
  n.gain = gain;
  n.respect_receive_windows = respect;
  return n;
}

TEST(NeighborTable, AddAndFind) {
  NeighborTable t;
  t.add(make(3, 0.5));
  t.add(make(7, 0.25, true));
  EXPECT_EQ(t.size(), 2u);
  ASSERT_NE(t.find(3), nullptr);
  EXPECT_DOUBLE_EQ(t.find(3)->gain, 0.5);
  ASSERT_NE(t.find(7), nullptr);
  EXPECT_TRUE(t.find(7)->respect_receive_windows);
  EXPECT_EQ(t.find(4), nullptr);
}

TEST(NeighborTable, AllSpansEntries) {
  NeighborTable t;
  t.add(make(1, 0.1));
  t.add(make(2, 0.2));
  const auto all = t.all();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].id, 1u);
  EXPECT_EQ(all[1].id, 2u);
}

TEST(NeighborTable, RejectsDuplicatesAndInvalid) {
  NeighborTable t;
  t.add(make(1, 0.1));
  EXPECT_THROW(t.add(make(1, 0.2)), ContractViolation);
  EXPECT_THROW(t.add(make(kNoStation, 0.1)), ContractViolation);
  EXPECT_THROW(t.add(make(2, 0.0)), ContractViolation);
}

TEST(NeighborTable, EraseRemovesOnlyTheNamedNeighbor) {
  NeighborTable t;
  t.add(make(1, 0.1));
  t.add(make(2, 0.2));
  t.add(make(3, 0.3));
  EXPECT_TRUE(t.erase(2));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.find(2), nullptr);
  ASSERT_NE(t.find(1), nullptr);
  ASSERT_NE(t.find(3), nullptr);
  // Erasing an unknown id reports false and leaves the table alone.
  EXPECT_FALSE(t.erase(2));
  EXPECT_FALSE(t.erase(9));
  EXPECT_EQ(t.size(), 2u);
  // An erased id can be re-adopted later (the churn rejoin path).
  t.add(make(2, 0.25));
  ASSERT_NE(t.find(2), nullptr);
  EXPECT_DOUBLE_EQ(t.find(2)->gain, 0.25);
}

TEST(Significance, OneDbRuleFromSection73) {
  // "In order for the addition of a weak signal to increase the overall
  // level of interference by more than 1 dB its power level must be at
  // least one fourth the power level of the overall interference."
  const double budget = 1.0;  // tolerated interference, watts
  // Delivered power exactly one quarter of the budget: not strictly greater,
  // so not significant.
  EXPECT_FALSE(interferes_significantly(0.25, 1.0, budget));
  EXPECT_TRUE(interferes_significantly(0.26, 1.0, budget));
  EXPECT_FALSE(interferes_significantly(0.01, 1.0, budget));
  // Confirm the 1 dB equivalence: budget + budget/4 is ~0.97 dB louder.
  EXPECT_NEAR(radio::to_db(1.25), 0.969, 1e-3);
}

TEST(Significance, ScalesWithPower) {
  EXPECT_TRUE(interferes_significantly(0.01, 100.0, 1.0));
  EXPECT_FALSE(interferes_significantly(0.01, 10.0, 1.0));
}

TEST(Significance, CustomFraction) {
  EXPECT_TRUE(interferes_significantly(0.2, 1.0, 1.0, 0.1));
  EXPECT_FALSE(interferes_significantly(0.2, 1.0, 1.0, 0.5));
}

TEST(Significance, Contracts) {
  EXPECT_THROW((void)interferes_significantly(0.0, 1.0, 1.0),
               ContractViolation);
  EXPECT_THROW((void)interferes_significantly(1.0, 0.0, 1.0),
               ContractViolation);
  EXPECT_THROW((void)interferes_significantly(1.0, 1.0, 0.0),
               ContractViolation);
  EXPECT_THROW((void)interferes_significantly(1.0, 1.0, 1.0, 0.0),
               ContractViolation);
}

}  // namespace
}  // namespace drn::core
