// Clock-model maintenance (Section 7: "stations occasionally rendezvous and
// exchange clock readings ... small differences in clock rates can be
// mutually modeled"): with drifting clocks and a stale single-point model,
// predictions eventually miss receive windows and collisions reappear; with
// maintenance beacons the models refit continuously and the collision-free
// invariant holds indefinitely.
#include <gtest/gtest.h>

#include <memory>

#include "common/expects.hpp"
#include "core/scheduled_station.hpp"
#include "sim/simulator.hpp"

namespace drn::core {
namespace {

radio::ReceptionCriterion criterion() {
  return radio::ReceptionCriterion(radio::Hertz{200.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{5.0});
}

constexpr double kSlot = 0.01;
constexpr double kAirtime = kSlot / 4.0;
constexpr double kPacketBits = 1.0e6 * kAirtime;
constexpr double kDrift = 100e-6;  // 100 ppm: drifts one guard (~0.2 ms) in 2 s

struct Pair {
  std::unique_ptr<sim::Simulator> sim;
  StationClock c0;
  StationClock c1;
  ScheduledStation* station0 = nullptr;
};

/// Two stations whose initial clock models assume rate 1 exactly (a single-
/// rendezvous fit) while the true clocks drift apart at 200 ppm relative.
std::unique_ptr<Pair> make_pair(double beacon_interval_s) {
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0e-4});
  sim::SimulatorConfig sc{criterion()};
  auto pair = std::make_unique<Pair>();
  pair->sim = std::make_unique<sim::Simulator>(m, sc);
  pair->c0 = StationClock(Seconds{10.0}, 1.0 + kDrift);
  pair->c1 = StationClock(Seconds{500.0}, 1.0 - kDrift);

  const Schedule schedule(2021, kSlot, 0.3);
  auto make_station = [&](StationId self, const StationClock& mine,
                          const StationClock& theirs) {
    // Single-rendezvous model at t = 0: offset exact, rate assumed 1.
    Neighbor n;
    n.id = self == 0 ? 1 : 0;
    n.gain = 1.0e-4;
    n.clock = ClockModel((theirs.local(Seconds{0.0}) - mine.local(Seconds{0.0})).value(), 1.0);
    NeighborTable table;
    table.add(n);
    ScheduledStationConfig cfg{schedule,
                               mine,
                               kAirtime,
                               /*guard_s=*/0.0002,
                               PowerControl::fixed(1.0e-4),
                               20000.0,
                               4096,
                               0.0,
                               0.25,
                               /*data_rate_bps=*/1.0e6,
                               beacon_interval_s};
    return std::make_unique<ScheduledStation>(cfg, std::move(table));
  };
  auto s0 = make_station(0, pair->c0, pair->c1);
  pair->station0 = s0.get();
  pair->sim->set_mac(0, std::move(s0));
  pair->sim->set_mac(1, make_station(1, pair->c1, pair->c0));
  return pair;
}

sim::Packet packet(StationId src, StationId dst) {
  sim::Packet p;
  p.source = src;
  p.destination = dst;
  p.size_bits = kPacketBits;
  return p;
}

TEST(Maintenance, StaleModelsEventuallyMissWindows) {
  auto pair = make_pair(/*beacon_interval_s=*/0.0);
  // SIMULTANEOUS bidirectional offers for 2 minutes: once the accumulated
  // drift exceeds a slot (~12 ms relative drift per minute at 200 ppm), the
  // stale models are fully decorrelated from the true windows, the mutual
  // transmit-never-overlaps guarantee evaporates, and Type 3 losses appear.
  for (int i = 0; i < 240; ++i) {
    pair->sim->inject(0.5 * i, packet(0, 1));
    pair->sim->inject(0.5 * i, packet(1, 0));
  }
  pair->sim->run_until(180.0);
  EXPECT_GT(pair->sim->metrics().total_hop_losses(), 0u);
  EXPECT_LT(pair->sim->metrics().delivered(), 480u);
}

TEST(Maintenance, BeaconsKeepModelsFreshAndCollisionFree) {
  auto pair = make_pair(/*beacon_interval_s=*/0.5);
  for (int i = 0; i < 240; ++i) {
    pair->sim->inject(0.5 * i, packet(0, 1));
    pair->sim->inject(0.5 * i, packet(1, 0));
  }
  pair->sim->run_until(180.0);
  EXPECT_EQ(pair->sim->metrics().total_hop_losses(), 0u);
  EXPECT_EQ(pair->sim->metrics().delivered(), 480u);
  EXPECT_GT(pair->sim->metrics().broadcasts_sent(), 200u);
  EXPECT_GE(pair->station0->clock_samples_from(1), 2u);
}

TEST(Maintenance, BeaconsRequireDesignRate) {
  const Schedule schedule(1, kSlot, 0.3);
  ScheduledStationConfig cfg{schedule,
                             StationClock(),
                             kAirtime,
                             0.0,
                             PowerControl::fixed(1.0)};
  cfg.beacon_interval_s = 1.0;  // but data_rate_bps left at 0
  EXPECT_THROW(ScheduledStation(cfg, NeighborTable()), ContractViolation);
}

TEST(Maintenance, BeaconRespectsOwnScheduleWindows) {
  // Even the beacons obey the published schedule: run with beacons and audit
  // every broadcast against the sender's true schedule windows.
  class Auditor final : public sim::SimObserver {
   public:
    Auditor(const Schedule& s, const StationClock& c0, const StationClock& c1)
        : schedule_(&s), clocks_{c0, c1} {}
    void on_transmit_start(const sim::TxEvent& tx) override {
      if (tx.to != kBroadcast) return;
      ++beacons_;
      const auto& clock = clocks_[tx.from];
      if (!schedule_->interval_is(clock.local(Seconds{tx.start_s}).value(),
                                  clock.local(Seconds{tx.end_s}).value(),
                                  false))
        ++violations_;
    }
    std::size_t beacons_ = 0;
    std::size_t violations_ = 0;

   private:
    const Schedule* schedule_;
    StationClock clocks_[2];
  };

  auto pair = make_pair(/*beacon_interval_s=*/0.3);
  const Schedule schedule(2021, kSlot, 0.3);
  Auditor auditor(schedule, pair->c0, pair->c1);
  pair->sim->set_observer(&auditor);
  pair->sim->inject(0.0, packet(0, 1));
  pair->sim->run_until(30.0);
  EXPECT_GT(auditor.beacons_, 50u);
  EXPECT_EQ(auditor.violations_, 0u);
}

}  // namespace
}  // namespace drn::core
