#include "core/hash.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/expects.hpp"

namespace drn::core {
namespace {

TEST(SlotHash, Deterministic) {
  EXPECT_EQ(slot_hash(1, 100), slot_hash(1, 100));
}

TEST(SlotHash, SeedAndSlotSensitivity) {
  EXPECT_NE(slot_hash(1, 100), slot_hash(2, 100));
  EXPECT_NE(slot_hash(1, 100), slot_hash(1, 101));
}

TEST(SlotHash, NegativeSlotsAreValid) {
  // Clocks start at random offsets, so local time (and slot indices) can be
  // negative; the hash must be defined there and differ from positives.
  EXPECT_EQ(slot_hash(7, -5), slot_hash(7, -5));
  EXPECT_NE(slot_hash(7, -5), slot_hash(7, 5));
}

TEST(SlotHash, ConsecutiveSlotsDecorrelated) {
  // Over many consecutive slots the fraction below a p-threshold converges
  // to p — no streaky correlation between adjacent indices.
  const std::uint64_t threshold = receive_threshold(0.3);
  int below = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (slot_hash(42, i) < threshold) ++below;
  EXPECT_NEAR(static_cast<double>(below) / n, 0.3, 0.01);
}

TEST(ReceiveThreshold, Endpoints) {
  EXPECT_EQ(receive_threshold(0.0), 0u);
  EXPECT_EQ(receive_threshold(1.0), std::numeric_limits<std::uint64_t>::max());
}

TEST(ReceiveThreshold, Monotone) {
  EXPECT_LT(receive_threshold(0.1), receive_threshold(0.2));
  EXPECT_LT(receive_threshold(0.2), receive_threshold(0.5));
  EXPECT_LT(receive_threshold(0.5), receive_threshold(0.9));
}

TEST(ReceiveThreshold, HalfIsMidpoint) {
  // p = 0.5 -> 2^63.
  EXPECT_EQ(receive_threshold(0.5), 1ULL << 63);
}

TEST(ReceiveThreshold, RejectsOutOfRange) {
  EXPECT_THROW((void)receive_threshold(-0.1), ContractViolation);
  EXPECT_THROW((void)receive_threshold(1.1), ContractViolation);
}

}  // namespace
}  // namespace drn::core
