#include "core/discovery.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/expects.hpp"
#include "geo/placement.hpp"
#include "radio/propagation.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"

namespace drn::core {
namespace {

radio::ReceptionCriterion criterion() {
  return radio::ReceptionCriterion(radio::Hertz{200.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{5.0});
}

DiscoveryConfig discovery_config() {
  DiscoveryConfig cfg;
  cfg.beacon_count = 6;
  cfg.duration_s = 5.0;
  cfg.beacon_power_w = 1.0e-4;
  cfg.gain_noise_db = 0.0;  // exact measurements for the unit tests
  return cfg;
}

TEST(Discovery, TwoStationsLearnEachOther) {
  radio::PropagationMatrix gains(2);
  gains.set_gain(0, 1, radio::LinearGain{2.5e-5});  // 200 m in free space

  sim::SimulatorConfig sc{criterion()};
  sim::Simulator sim(gains, sc);
  const StationClock c0(Seconds{100.0}, 1.0 + 10e-6);
  const StationClock c1(Seconds{5000.0}, 1.0 - 10e-6);
  auto m0 = std::make_unique<DiscoveryStation>(discovery_config(), c0);
  auto m1 = std::make_unique<DiscoveryStation>(discovery_config(), c1);
  auto* p0 = m0.get();
  auto* p1 = m1.get();
  sim.set_mac(0, std::move(m0));
  sim.set_mac(1, std::move(m1));
  sim.run_until(6.0);

  // Each heard all 6 beacons of the other (no contention in a 2-station
  // network unless beacons overlap, which the stratification makes rare).
  ASSERT_TRUE(p0->observations().contains(1));
  ASSERT_TRUE(p1->observations().contains(0));
  const auto& obs = p0->observations().at(1);
  EXPECT_GE(obs.clock_samples.size(), 4u);
  EXPECT_NEAR(obs.gain.mean(), 2.5e-5, 1e-12);  // exact measurement

  // The fitted clock model predicts the neighbour's clock to microseconds.
  const auto table = p0->build_neighbor_table(0.0);
  ASSERT_NE(table.find(1), nullptr);
  const ClockModel& model = table.find(1)->clock;
  const double g = 30.0;  // 25 s after the last beacon
  EXPECT_NEAR(model.map(c0.local(Seconds{g}).value()),
              c1.local(Seconds{g}).value(), 5.0e-5);
}

TEST(Discovery, GainThresholdPrunesWeakNeighbors) {
  radio::PropagationMatrix gains(3);
  gains.set_gain(0, 1, radio::LinearGain{1.0e-5});
  gains.set_gain(0, 2, radio::LinearGain{1.0e-9});
  gains.set_gain(1, 2, radio::LinearGain{1.0e-9});

  sim::SimulatorConfig sc{criterion()};
  sim::Simulator sim(gains, sc);
  std::vector<DiscoveryStation*> st;
  Rng rng(3);
  for (StationId s = 0; s < 3; ++s) {
    auto mac = std::make_unique<DiscoveryStation>(
        discovery_config(), StationClock::random(rng, Seconds{1000.0}, 10.0));
    st.push_back(mac.get());
    sim.set_mac(s, std::move(mac));
  }
  sim.run_until(6.0);

  const auto table = st[0]->build_neighbor_table(/*min_gain=*/1.0e-6);
  EXPECT_NE(table.find(1), nullptr);
  EXPECT_EQ(table.find(2), nullptr);  // heard, but below the usable floor
  EXPECT_TRUE(st[0]->observations().contains(2));
}

TEST(Discovery, MeasurementNoiseAveragesOut) {
  radio::PropagationMatrix gains(2);
  gains.set_gain(0, 1, radio::LinearGain{1.0e-5});
  sim::SimulatorConfig sc{criterion()};
  sim::Simulator sim(gains, sc);
  auto cfg = discovery_config();
  cfg.gain_noise_db = 1.0;
  cfg.beacon_count = 40;
  cfg.duration_s = 30.0;
  auto m0 = std::make_unique<DiscoveryStation>(cfg, StationClock(Seconds{1.0}));
  auto* p0 = m0.get();
  sim.set_mac(0, std::move(m0));
  sim.set_mac(1, std::make_unique<DiscoveryStation>(cfg, StationClock(Seconds{777.0})));
  sim.run_until(31.0);
  const auto& obs = p0->observations().at(1);
  EXPECT_GE(obs.gain.count(), 30u);
  // Mean of 1 dB log-normal noise: within ~1 dB of truth.
  EXPECT_NEAR(10.0 * std::log10(obs.gain.mean() / 1.0e-5), 0.0, 1.0);
}

TEST(Discovery, DiscoverAndBuildMatchesTruthClosely) {
  Rng rng(11);
  const auto placement = geo::uniform_disc(12, 300.0, rng);
  const radio::FreeSpacePropagation model;
  const auto gains = radio::PropagationMatrix::from_placement(placement, model);

  ScheduledNetworkConfig net_cfg;
  net_cfg.target_received_w = 1.0e-9;
  net_cfg.max_power_w = 1.6e-4;  // reach 400 m
  Rng build_rng(12);
  auto net = discover_and_build(gains, criterion(), net_cfg,
                                discovery_config(), build_rng);

  ASSERT_EQ(net.macs.size(), 12u);
  // Discovered neighbourhoods are (near-)complete: every true neighbour
  // within reach should have been heard several times.
  const double min_gain = net_cfg.target_received_w / net_cfg.max_power_w;
  std::size_t true_links = 0;
  std::size_t found_links = 0;
  for (StationId a = 0; a < 12; ++a) {
    for (StationId b = 0; b < 12; ++b) {
      if (a == b || gains.gain(a, b) < min_gain) continue;
      ++true_links;
      const auto& nbrs = net.neighbors[a];
      if (std::find(nbrs.begin(), nbrs.end(), b) != nbrs.end()) ++found_links;
    }
  }
  ASSERT_GT(true_links, 0u);
  EXPECT_GE(found_links * 10, true_links * 9);  // >= 90% discovered
}

TEST(Discovery, DiscoveredNetworkCarriesTrafficCollisionFree) {
  // The acid test: a network assembled ONLY from what stations heard runs
  // the scheme collision-free.
  Rng rng(21);
  const auto placement = geo::uniform_disc(12, 300.0, rng);
  const radio::FreeSpacePropagation model;
  const auto gains = radio::PropagationMatrix::from_placement(placement, model);

  ScheduledNetworkConfig net_cfg;
  net_cfg.target_received_w = 1.0e-9;
  net_cfg.max_power_w = 1.6e-4;
  Rng build_rng(22);
  auto net = discover_and_build(gains, criterion(), net_cfg,
                                discovery_config(), build_rng);

  sim::SimulatorConfig sc{criterion()};
  sim::Simulator sim(gains, sc);
  for (StationId s = 0; s < 12; ++s) sim.set_mac(s, std::move(net.macs[s]));

  Rng traffic_rng(23);
  const auto traffic = sim::poisson_traffic(
      100.0, 1.0, net.packet_bits, sim::neighbor_pairs(net.neighbors),
      traffic_rng);
  for (const auto& inj : traffic) sim.inject(inj.time_s, inj.packet);
  sim.run_until(30.0);

  EXPECT_EQ(sim.metrics().delivered(), sim.metrics().offered());
  EXPECT_EQ(sim.metrics().losses(sim::LossType::kType2), 0u);
  EXPECT_EQ(sim.metrics().losses(sim::LossType::kType3), 0u);
}

TEST(Discovery, DenseNetworkSurvivesBeaconContention) {
  // 30 stations beaconing into the same disc: some beacons collide (they
  // are unscheduled), but enough get through that neighbourhoods are still
  // discovered nearly completely — the redundancy of several beacons per
  // station is the point.
  Rng rng(41);
  const auto placement = geo::uniform_disc(30, 400.0, rng);
  const radio::FreeSpacePropagation model;
  const auto gains = radio::PropagationMatrix::from_placement(placement, model);

  sim::SimulatorConfig sc{criterion()};
  sim::Simulator sim(gains, sc);
  auto cfg = discovery_config();
  cfg.beacon_count = 8;
  cfg.duration_s = 8.0;
  std::vector<DiscoveryStation*> st;
  Rng clock_rng(42);
  for (StationId s = 0; s < 30; ++s) {
    auto mac = std::make_unique<DiscoveryStation>(
        cfg, StationClock::random(clock_rng, Seconds{1000.0}, 10.0));
    st.push_back(mac.get());
    sim.set_mac(s, std::move(mac));
  }
  sim.run_until(9.0);

  // Beacons were actually lost to contention...
  EXPECT_LT(sim.metrics().broadcast_receptions(), 30u * 8u * 29u);
  // ...yet discovery of in-range neighbours is still (near-)complete.
  const double min_gain = 6.25e-6;  // reach 400 m
  std::size_t true_links = 0;
  std::size_t found = 0;
  for (StationId a = 0; a < 30; ++a) {
    const auto table = st[a]->build_neighbor_table(min_gain);
    for (StationId b = 0; b < 30; ++b) {
      if (a == b || gains.gain(a, b) < min_gain) continue;
      ++true_links;
      if (table.find(b) != nullptr) ++found;
    }
  }
  ASSERT_GT(true_links, 100u);
  EXPECT_GE(found * 100, true_links * 95);  // >= 95% discovered
}

TEST(Discovery, ConfigContracts) {
  DiscoveryConfig cfg = discovery_config();
  cfg.beacon_count = 0;
  EXPECT_THROW(DiscoveryStation(cfg, StationClock()), ContractViolation);
  cfg = discovery_config();
  cfg.duration_s = 0.0;
  EXPECT_THROW(DiscoveryStation(cfg, StationClock()), ContractViolation);
  cfg = discovery_config();
  // Phase too short to fit the beacons.
  cfg.beacon_count = 1000;
  cfg.duration_s = 0.5;
  EXPECT_THROW(DiscoveryStation(cfg, StationClock()), ContractViolation);
}

}  // namespace
}  // namespace drn::core
