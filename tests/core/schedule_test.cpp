#include "core/schedule.hpp"

#include <gtest/gtest.h>

#include "common/expects.hpp"

namespace drn::core {
namespace {

TEST(Schedule, SlotIndexing) {
  const Schedule s(1, 0.01, 0.3);
  EXPECT_EQ(s.slot_index(0.0), 0);
  EXPECT_EQ(s.slot_index(0.0099), 0);
  EXPECT_EQ(s.slot_index(0.01), 1);
  EXPECT_EQ(s.slot_index(-0.001), -1);
  EXPECT_EQ(s.slot_index(-0.01), -1);
  EXPECT_EQ(s.slot_index(-0.0101), -2);
}

TEST(Schedule, SlotBoundaries) {
  const Schedule s(1, 0.25, 0.3);
  EXPECT_DOUBLE_EQ(s.slot_begin(4), 1.0);
  EXPECT_DOUBLE_EQ(s.slot_end(4), 1.25);
  EXPECT_DOUBLE_EQ(s.slot_begin(-2), -0.5);
}

TEST(Schedule, ReceiveFractionConverges) {
  // Section 7.1: the threshold is selected to achieve the desired duty
  // cycle. Check the law of large numbers at several fractions.
  for (double p : {0.1, 0.3, 0.5, 0.7}) {
    const Schedule s(99, 0.01, p);
    EXPECT_NEAR(s.empirical_receive_fraction(0, 200000), p, 0.01)
        << "p=" << p;
  }
}

TEST(Schedule, DifferentSeedsDifferentPatterns) {
  const Schedule a(1, 0.01, 0.5);
  const Schedule b(2, 0.01, 0.5);
  int differ = 0;
  for (std::int64_t k = 0; k < 1000; ++k)
    if (a.is_receive_slot(k) != b.is_receive_slot(k)) ++differ;
  EXPECT_GT(differ, 300);
}

TEST(Schedule, SameSeedSamePattern) {
  // All stations share ONE schedule function (Section 7.1) — two Schedule
  // objects with the same parameters agree everywhere.
  const Schedule a(77, 0.01, 0.3);
  const Schedule b(77, 0.01, 0.3);
  for (std::int64_t k = -500; k < 500; ++k)
    EXPECT_EQ(a.is_receive_slot(k), b.is_receive_slot(k));
}

TEST(Schedule, IntervalIsChecksEverySlotCovered) {
  const Schedule s(5, 1.0, 0.5);
  // Find a receive slot followed by a transmit slot.
  std::int64_t k = 0;
  while (!(s.is_receive_slot(k) && !s.is_receive_slot(k + 1))) ++k;
  const double t0 = s.slot_begin(k);
  EXPECT_TRUE(s.interval_is(t0 + 0.1, t0 + 0.9, true));
  EXPECT_FALSE(s.interval_is(t0 + 0.1, t0 + 1.1, true));   // spills over
  EXPECT_FALSE(s.interval_is(t0 + 0.1, t0 + 0.9, false));  // wrong kind
}

TEST(Schedule, IntervalEndingExactlyOnBoundaryExcludesNextSlot) {
  const Schedule s(5, 1.0, 0.5);
  std::int64_t k = 0;
  while (!(s.is_receive_slot(k) && !s.is_receive_slot(k + 1))) ++k;
  // [begin, end) with end exactly at the next slot boundary: next slot is
  // NOT covered.
  EXPECT_TRUE(s.interval_is(s.slot_begin(k), s.slot_end(k), true));
}

TEST(Schedule, RunEndFindsMaximalRun) {
  const Schedule s(11, 1.0, 0.4);
  for (std::int64_t k = 0; k < 200; ++k) {
    const std::int64_t last = s.run_end(k);
    const bool v = s.is_receive_slot(k);
    for (std::int64_t j = k; j <= last; ++j)
      EXPECT_EQ(s.is_receive_slot(j), v);
    EXPECT_NE(s.is_receive_slot(last + 1), v);
  }
}

TEST(Schedule, RunEndRespectsCap) {
  const Schedule s(11, 1.0, 0.5);
  EXPECT_EQ(s.run_end(3, 1), 3);
}

TEST(Schedule, MeanRunLengthMatchesGeometric) {
  // Receive runs have geometric length with mean 1/(1-p); transmit runs
  // 1/p. Sample a few thousand runs of each kind.
  const double p = 0.3;
  const Schedule s(123, 1.0, p);
  double receive_runs = 0;
  double receive_slots = 0;
  double transmit_runs = 0;
  double transmit_slots = 0;
  std::int64_t k = 0;
  for (int run = 0; run < 10000; ++run) {
    const std::int64_t last = s.run_end(k);
    const auto len = static_cast<double>(last - k + 1);
    if (s.is_receive_slot(k)) {
      receive_runs += 1;
      receive_slots += len;
    } else {
      transmit_runs += 1;
      transmit_slots += len;
    }
    k = last + 1;
  }
  EXPECT_NEAR(receive_slots / receive_runs, 1.0 / (1.0 - p), 0.05);
  EXPECT_NEAR(transmit_slots / transmit_runs, 1.0 / p, 0.15);
}

TEST(Schedule, ExtremeFractions) {
  const Schedule all_rx(1, 1.0, 1.0);
  const Schedule all_tx(1, 1.0, 0.0);
  for (std::int64_t k = -10; k < 10; ++k) {
    EXPECT_TRUE(all_rx.is_receive_slot(k));
    EXPECT_FALSE(all_tx.is_receive_slot(k));
  }
}

TEST(Schedule, Contracts) {
  EXPECT_THROW(Schedule(1, 0.0, 0.5), ContractViolation);
  EXPECT_THROW(Schedule(1, 1.0, 1.5), ContractViolation);
  const Schedule s(1, 1.0, 0.5);
  EXPECT_THROW((void)s.interval_is(1.0, 1.0, true), ContractViolation);
  EXPECT_THROW((void)s.run_end(0, 0), ContractViolation);
  EXPECT_THROW((void)s.empirical_receive_fraction(0, 0), ContractViolation);
}

TEST(Schedule, Accessors) {
  const Schedule s(42, 0.02, 0.35);
  EXPECT_EQ(s.seed(), 42u);
  EXPECT_DOUBLE_EQ(s.slot_duration_s(), 0.02);
  EXPECT_DOUBLE_EQ(s.receive_fraction(), 0.35);
}

}  // namespace
}  // namespace drn::core
