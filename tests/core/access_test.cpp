#include "core/access.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/expects.hpp"
#include "common/rng.hpp"
#include "core/clock.hpp"

namespace drn::core {
namespace {

constexpr double kSlot = 1.0;

AccessRequest request(double earliest, double duration,
                      double horizon = 10000.0) {
  AccessRequest r;
  r.earliest_local = Seconds{earliest};
  r.duration = Seconds{duration};
  r.horizon = Seconds{horizon};
  return r;
}

/// find_transmission_start with the Seconds result unwrapped, so the
/// schedule arithmetic below stays in plain doubles.
std::optional<double> find_start(const AccessRequest& r,
                                 const std::vector<WindowConstraint>& cs) {
  const auto start = find_transmission_start(r, cs);
  if (!start) return std::nullopt;
  return start->value();
}

TEST(Access, SingleTransmitConstraintFindsOwnWindow) {
  const Schedule s(21, kSlot, 0.3);
  std::vector<WindowConstraint> cs = {{&s, ClockModel(), false, Seconds{0.0}}};
  const auto start = find_start(request(0.0, 0.25), cs);
  ASSERT_TRUE(start.has_value());
  // The returned interval is entirely inside transmit slots.
  EXPECT_TRUE(s.interval_is(*start, *start + 0.25, false));
  EXPECT_GE(*start, 0.0);
  // And nothing earlier works: every earlier candidate at slot granularity
  // fails.
  for (double t = 0.0; t + 0.01 < *start; t += 0.01)
    EXPECT_FALSE(s.interval_is(t, t + 0.25, false)) << t;
}

TEST(Access, ReceiveConstraintWantsReceiveSlots) {
  const Schedule s(22, kSlot, 0.3);
  std::vector<WindowConstraint> cs = {{&s, ClockModel(), true, Seconds{0.0}}};
  const auto start = find_start(request(0.0, 0.25), cs);
  ASSERT_TRUE(start.has_value());
  EXPECT_TRUE(s.interval_is(*start, *start + 0.25, true));
}

TEST(Access, PairOverlapSatisfiesBothSchedules) {
  // The core of Section 7: sender transmit window ∩ receiver receive window.
  const Schedule s(23, kSlot, 0.3);
  const StationClock mine(Seconds{0.0});
  const StationClock theirs(Seconds{0.437 * kSlot});  // unaligned
  const ClockModel model = ClockModel::exact(mine, theirs);
  std::vector<WindowConstraint> cs = {
      {&s, ClockModel(), false, Seconds{0.0}},  // my transmit window
      {&s, model, true, Seconds{0.0}},          // their receive window
  };
  const auto start = find_start(request(0.0, 0.25), cs);
  ASSERT_TRUE(start.has_value());
  EXPECT_TRUE(s.interval_is(*start, *start + 0.25, false));
  EXPECT_TRUE(s.interval_is(model.map(*start), model.map(*start + 0.25), true));
}

TEST(Access, GuardPadsTheReceiverInterval) {
  const Schedule s(24, kSlot, 0.3);
  const ClockModel identity;
  const double pad = 0.1;
  std::vector<WindowConstraint> cs = {{&s, identity, true, Seconds{pad}}};
  const auto start = find_start(request(0.0, 0.25), cs);
  ASSERT_TRUE(start.has_value());
  // The PADDED interval sits inside receive slots.
  EXPECT_TRUE(s.interval_is(*start - pad, *start + 0.25 + pad, true));
  EXPECT_GE(*start - pad, 0.0 - kSlot);  // sanity
}

TEST(Access, RespectsEarliestBound) {
  const Schedule s(25, kSlot, 0.3);
  std::vector<WindowConstraint> cs = {{&s, ClockModel(), false, Seconds{0.0}}};
  const auto start = find_start(request(123.456, 0.25), cs);
  ASSERT_TRUE(start.has_value());
  EXPECT_GE(*start, 123.456);
}

TEST(Access, ImpossibleConstraintsReturnNullopt) {
  // The same station required to be simultaneously transmitting and
  // receiving never succeeds.
  const Schedule s(26, kSlot, 0.3);
  std::vector<WindowConstraint> cs = {
      {&s, ClockModel(), false, Seconds{0.0}},
      {&s, ClockModel(), true, Seconds{0.0}},
  };
  EXPECT_FALSE(
      find_start(request(0.0, 0.25, /*horizon=*/200.0), cs)
          .has_value());
}

TEST(Access, AlignedIdenticalSchedulesStarve) {
  // Section 7.1's motivating failure: two stations with IDENTICAL clock
  // phase can never exchange a packet (my transmit slots are exactly their
  // transmit slots).
  const Schedule s(27, kSlot, 0.3);
  const ClockModel identical;  // same clock
  std::vector<WindowConstraint> cs = {
      {&s, ClockModel(), false, Seconds{0.0}},
      {&s, identical, true, Seconds{0.0}},
  };
  EXPECT_FALSE(
      find_start(request(0.0, 0.25, /*horizon=*/500.0), cs)
          .has_value());
}

TEST(Access, UnalignedClockResolvesStarvation) {
  // The same pair with a one-third-slot offset finds an opportunity quickly.
  const Schedule s(27, kSlot, 0.3);
  const ClockModel offset(kSlot / 3.0, 1.0);
  std::vector<WindowConstraint> cs = {
      {&s, ClockModel(), false, Seconds{0.0}},
      {&s, offset, true, Seconds{0.0}},
  };
  EXPECT_TRUE(find_start(request(0.0, 0.25), cs).has_value());
}

TEST(Access, SubSlotOffsetsKeepSchedulesCorrelated) {
  // Section 7.1: "Clocks with only a small difference (of less than one
  // slot time) would not have the full expected amount of time available
  // ... as their transmit schedules would be somewhat correlated." The
  // extreme case: with sub-slot offsets every station indexes ADJACENT
  // slots of the same hash sequence, and for these offsets the three-way
  // requirement (me transmitting, receiver receiving, third party
  // transmitting) is contradictory at every instant.
  const Schedule s(28, kSlot, 0.3);
  std::vector<WindowConstraint> cs = {
      {&s, ClockModel(), false, Seconds{0.0}},
      {&s, ClockModel(0.391, 1.0), true, Seconds{0.0}},
      {&s, ClockModel(0.717, 1.0), false, Seconds{0.0}},
  };
  EXPECT_FALSE(
      find_start(request(0.0, 0.25, /*horizon=*/500.0), cs)
          .has_value());
}

TEST(Access, ThirdPartyAvoidanceConstraint) {
  // Add a respected third party (avoid its receive windows = require its
  // transmit windows): result must satisfy all three. Offsets exceed one
  // slot so the three schedules are decorrelated (Section 7.1).
  const Schedule s(28, kSlot, 0.3);
  const ClockModel receiver(7.391, 1.0);
  const ClockModel third(13.717, 1.0);
  std::vector<WindowConstraint> cs = {
      {&s, ClockModel(), false, Seconds{0.0}},
      {&s, receiver, true, Seconds{0.0}},
      {&s, third, false, Seconds{0.0}},
  };
  const auto start = find_start(request(0.0, 0.25), cs);
  ASSERT_TRUE(start.has_value());
  EXPECT_TRUE(s.interval_is(*start, *start + 0.25, false));
  EXPECT_TRUE(
      s.interval_is(receiver.map(*start), receiver.map(*start + 0.25), true));
  EXPECT_TRUE(s.interval_is(third.map(*start), third.map(*start + 0.25), false));
}

TEST(Access, DriftingClockHandled) {
  // Receiver clock runs 100 ppm fast; the affine model tracks it exactly.
  const Schedule s(29, kSlot, 0.3);
  const StationClock mine(Seconds{0.0}, 1.0);
  const StationClock theirs(Seconds{0.6}, 1.0001);
  const ClockModel model = ClockModel::exact(mine, theirs);
  std::vector<WindowConstraint> cs = {
      {&s, ClockModel(), false, Seconds{0.0}},
      {&s, model, true, Seconds{0.0}},
  };
  const auto start = find_start(request(10000.0, 0.25), cs);
  ASSERT_TRUE(start.has_value());
  EXPECT_TRUE(
      s.interval_is(theirs.local(mine.global(Seconds{*start})).value(),
                    theirs.local(mine.global(Seconds{*start + 0.25})).value(),
                    true));
}

TEST(Access, ManyRandomPairsAlwaysFindWindows) {
  // Property: for random unaligned clock offsets, an opportunity exists
  // within a generous horizon, and the mean wait is near 1/(p(1-p)) slots.
  const double p = 0.3;
  const Schedule s(30, kSlot, p);
  Rng rng(55);
  double total_wait = 0.0;
  const int trials = 400;
  for (int i = 0; i < trials; ++i) {
    const ClockModel other(rng.uniform(1.0, 1000.0), 1.0);
    std::vector<WindowConstraint> cs = {
        {&s, ClockModel(), false, Seconds{0.0}},
        {&s, other, true, Seconds{0.0}},
    };
    const double earliest = rng.uniform(0.0, 1000.0);
    const auto start = find_start(request(earliest, 0.25), cs);
    ASSERT_TRUE(start.has_value());
    total_wait += *start - earliest;
  }
  const double mean_wait_slots = total_wait / trials / kSlot;
  // Geometric wait with success probability ~p(1-p) = 0.21 -> mean ~4.76
  // slots to the START of the window; the measured value also includes
  // partial-slot effects, so allow a broad band.
  EXPECT_GT(mean_wait_slots, 1.5);
  EXPECT_LT(mean_wait_slots, 8.0);
}

TEST(Access, Contracts) {
  const Schedule s(1, kSlot, 0.3);
  std::vector<WindowConstraint> cs = {{&s, ClockModel(), false, Seconds{0.0}}};
  EXPECT_THROW(
      (void)find_start(request(0.0, 0.0), cs),
      ContractViolation);
  AccessRequest r = request(0.0, 0.1);
  r.horizon = Seconds{0.0};
  EXPECT_THROW((void)find_start(r, cs), ContractViolation);
  std::vector<WindowConstraint> bad = {{nullptr, ClockModel(), false, Seconds{0.0}}};
  EXPECT_THROW((void)find_start(request(0.0, 0.1), bad),
               ContractViolation);
  std::vector<WindowConstraint> bad_pad = {{&s, ClockModel(), false, Seconds{-0.1}}};
  EXPECT_THROW((void)find_start(request(0.0, 0.1), bad_pad),
               ContractViolation);
}

}  // namespace
}  // namespace drn::core
