#include "core/scheduled_station.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/expects.hpp"
#include "helpers/test_macs.hpp"
#include "sim/simulator.hpp"

namespace drn::core {
namespace {

// A criterion with heavy processing gain so the schedule, not SINR, decides
// outcomes in these unit tests (required SINR ~ -17.6 dB).
radio::ReceptionCriterion criterion() {
  return radio::ReceptionCriterion(radio::Hertz{200.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{5.0});
}

constexpr double kSlot = 0.01;
constexpr double kAirtime = kSlot / 4.0;
// Packet sized so airtime at the criterion's 1 Mb/s rate is a quarter slot.
constexpr double kPacketBits = 1.0e6 * kAirtime;

ScheduledStationConfig station_config(const Schedule& schedule,
                                      StationClock clock,
                                      double guard = 0.0002) {
  ScheduledStationConfig cfg{schedule, clock, kAirtime, guard,
                             PowerControl::fixed(1.0)};
  return cfg;
}

Neighbor neighbor_of(StationId id, double gain, const StationClock& mine,
                     const StationClock& theirs, bool respect = false) {
  Neighbor n;
  n.id = id;
  n.gain = gain;
  n.clock = ClockModel::exact(mine, theirs);
  n.respect_receive_windows = respect;
  return n;
}

sim::SimulatorConfig sim_config() {
  sim::SimulatorConfig cfg{criterion()};
  cfg.thermal_noise_w = 1.0e-15;
  return cfg;
}

sim::Packet packet(StationId src, StationId dst) {
  sim::Packet p;
  p.source = src;
  p.destination = dst;
  p.size_bits = kPacketBits;
  return p;
}

TEST(ScheduledStation, DeliversSinglePacketCollisionFree) {
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  sim::Simulator sim(m, sim_config());

  const Schedule schedule(1001, kSlot, 0.3);
  const StationClock c0(Seconds{0.0});
  const StationClock c1(Seconds{123.4567});
  NeighborTable t0;
  t0.add(neighbor_of(1, 1.0, c0, c1));
  NeighborTable t1;
  t1.add(neighbor_of(0, 1.0, c1, c0));
  sim.set_mac(0, std::make_unique<ScheduledStation>(
                     station_config(schedule, c0), std::move(t0)));
  sim.set_mac(1, std::make_unique<ScheduledStation>(
                     station_config(schedule, c1), std::move(t1)));

  sim.inject(0.0, packet(0, 1));
  sim.run_until(10.0);
  EXPECT_EQ(sim.metrics().delivered(), 1u);
  EXPECT_EQ(sim.metrics().total_hop_losses(), 0u);
  // The wait for a window is a handful of slots, not seconds.
  EXPECT_LT(sim.metrics().delay().mean(), 100 * kSlot);
}

TEST(ScheduledStation, StreamsManyPacketsWithoutLoss) {
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  sim::Simulator sim(m, sim_config());

  const Schedule schedule(1002, kSlot, 0.3);
  const StationClock c0(Seconds{0.0});
  const StationClock c1(Seconds{77.777});
  NeighborTable t0;
  t0.add(neighbor_of(1, 1.0, c0, c1));
  NeighborTable t1;
  t1.add(neighbor_of(0, 1.0, c1, c0));
  sim.set_mac(0, std::make_unique<ScheduledStation>(
                     station_config(schedule, c0), std::move(t0)));
  sim.set_mac(1, std::make_unique<ScheduledStation>(
                     station_config(schedule, c1), std::move(t1)));

  for (int i = 0; i < 50; ++i) sim.inject(0.001 * i, packet(0, 1));
  sim.run_until(60.0);
  EXPECT_EQ(sim.metrics().delivered(), 50u);
  EXPECT_EQ(sim.metrics().total_hop_losses(), 0u);
  EXPECT_EQ(sim.metrics().losses(sim::LossType::kType3), 0u);
}

TEST(ScheduledStation, BidirectionalTrafficNeverSelfCollides) {
  // The whole point of the scheme: even with both stations loaded, no packet
  // is ever lost to the receiver's own transmitter (Type 3).
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  sim::Simulator sim(m, sim_config());

  const Schedule schedule(1003, kSlot, 0.3);
  const StationClock c0(Seconds{0.0});
  const StationClock c1(Seconds{5.4321});
  NeighborTable t0;
  t0.add(neighbor_of(1, 1.0, c0, c1));
  NeighborTable t1;
  t1.add(neighbor_of(0, 1.0, c1, c0));
  sim.set_mac(0, std::make_unique<ScheduledStation>(
                     station_config(schedule, c0), std::move(t0)));
  sim.set_mac(1, std::make_unique<ScheduledStation>(
                     station_config(schedule, c1), std::move(t1)));

  for (int i = 0; i < 40; ++i) {
    sim.inject(0.002 * i, packet(0, 1));
    sim.inject(0.002 * i + 0.001, packet(1, 0));
  }
  sim.run_until(60.0);
  EXPECT_EQ(sim.metrics().delivered(), 80u);
  EXPECT_EQ(sim.metrics().losses(sim::LossType::kType3), 0u);
  EXPECT_EQ(sim.metrics().total_hop_losses(), 0u);
}

TEST(ScheduledStation, NoHeadOfLineBlocking) {
  // Neighbour 1's schedule is phase-identical to ours (permanently
  // unreachable); neighbour 2 is reachable. A packet stuck for 1 must not
  // stop the packet for 2 (Section 7.2: "a station need not block the head
  // of the line").
  radio::PropagationMatrix m(3);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  m.set_gain(0, 2, radio::LinearGain{1.0});
  m.set_gain(1, 2, radio::LinearGain{1e-9});
  sim::Simulator sim(m, sim_config());

  const Schedule schedule(1004, kSlot, 0.3);
  const StationClock c0(Seconds{0.0});
  const StationClock c1(Seconds{0.0});  // identical phase: starved pair
  const StationClock c2(Seconds{3.14159});
  NeighborTable t0;
  t0.add(neighbor_of(1, 1.0, c0, c1));
  t0.add(neighbor_of(2, 1.0, c0, c2));
  auto cfg0 = station_config(schedule, c0);
  cfg0.horizon_slots = 300;  // keep the doomed search cheap
  sim.set_mac(0, std::make_unique<ScheduledStation>(cfg0, std::move(t0)));
  NeighborTable t1;
  t1.add(neighbor_of(0, 1.0, c1, c0));
  sim.set_mac(1, std::make_unique<ScheduledStation>(
                     station_config(schedule, c1), std::move(t1)));
  NeighborTable t2;
  t2.add(neighbor_of(0, 1.0, c2, c0));
  sim.set_mac(2, std::make_unique<ScheduledStation>(
                     station_config(schedule, c2), std::move(t2)));

  sim.inject(0.0, packet(0, 1));     // never sendable
  sim.inject(0.0005, packet(0, 2));  // must go through anyway
  sim.run_until(10.0);
  EXPECT_EQ(sim.metrics().delivered(), 1u);
  EXPECT_DOUBLE_EQ(sim.metrics().hops().mean(), 1.0);
}

TEST(ScheduledStation, FittedClockModelsWithGuardStillCollisionFree) {
  // Realistic mode: neighbours know each other's clocks only through noisy
  // rendezvous fits; the guard absorbs the prediction error.
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  sim::Simulator sim(m, sim_config());

  const Schedule schedule(1005, kSlot, 0.3);
  Rng rng(321);
  const StationClock c0 = StationClock::random(rng, Seconds{100.0}, 20.0);
  const StationClock c1 = StationClock::random(rng, Seconds{100.0}, 20.0);
  std::vector<double> times = {-120.0, -80.0, -40.0, -1.0};
  auto fit_model = [&](const StationClock& mine, const StationClock& theirs) {
    return ClockModel::fit(rendezvous(mine, theirs, times, 2.0e-6, rng));
  };
  Neighbor n01;
  n01.id = 1;
  n01.gain = 1.0;
  n01.clock = fit_model(c0, c1);
  Neighbor n10;
  n10.id = 0;
  n10.gain = 1.0;
  n10.clock = fit_model(c1, c0);
  NeighborTable t0;
  t0.add(n01);
  NeighborTable t1;
  t1.add(n10);
  sim.set_mac(0, std::make_unique<ScheduledStation>(
                     station_config(schedule, c0, /*guard=*/0.0005),
                     std::move(t0)));
  sim.set_mac(1, std::make_unique<ScheduledStation>(
                     station_config(schedule, c1, /*guard=*/0.0005),
                     std::move(t1)));

  for (int i = 0; i < 30; ++i) {
    sim.inject(0.003 * i, packet(0, 1));
    sim.inject(0.003 * i + 0.0015, packet(1, 0));
  }
  sim.run_until(60.0);
  EXPECT_EQ(sim.metrics().delivered(), 60u);
  EXPECT_EQ(sim.metrics().total_hop_losses(), 0u);
}

TEST(ScheduledStation, QueueOverflowDrops) {
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  sim::Simulator sim(m, sim_config());

  const Schedule schedule(1006, kSlot, 0.3);
  const StationClock c0(Seconds{0.0});
  const StationClock c1(Seconds{42.42});
  NeighborTable t0;
  t0.add(neighbor_of(1, 1.0, c0, c1));
  auto cfg = station_config(schedule, c0);
  cfg.max_queue = 2;
  sim.set_mac(0, std::make_unique<ScheduledStation>(cfg, std::move(t0)));
  NeighborTable t1;
  t1.add(neighbor_of(0, 1.0, c1, c0));
  sim.set_mac(1, std::make_unique<ScheduledStation>(
                     station_config(schedule, c1), std::move(t1)));

  for (int i = 0; i < 10; ++i) sim.inject(0.0, packet(0, 1));
  sim.run_until(10.0);
  EXPECT_GT(sim.metrics().mac_drops(), 0u);
  EXPECT_GT(sim.metrics().delivered(), 0u);
  EXPECT_EQ(sim.metrics().delivered() + sim.metrics().mac_drops(), 10u);
}

TEST(ScheduledStation, UnknownNextHopIsDropped) {
  radio::PropagationMatrix m(3);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  m.set_gain(0, 2, radio::LinearGain{1.0});
  m.set_gain(1, 2, radio::LinearGain{1.0});
  sim::Simulator sim(m, sim_config());

  const Schedule schedule(1007, kSlot, 0.3);
  const StationClock c0(Seconds{0.0});
  NeighborTable t0;  // knows only station 1
  t0.add(neighbor_of(1, 1.0, c0, StationClock(Seconds{9.9})));
  sim.set_mac(0, std::make_unique<ScheduledStation>(
                     station_config(schedule, c0), std::move(t0)));
  sim.set_mac(1, std::make_unique<drn::testing::IdleMac>());
  sim.set_mac(2, std::make_unique<drn::testing::IdleMac>());

  sim.inject(0.0, packet(0, 2));  // direct router says next hop 2: unknown
  sim.run_until(5.0);
  EXPECT_EQ(sim.metrics().mac_drops(), 1u);
  EXPECT_EQ(sim.metrics().delivered(), 0u);
}

TEST(ScheduledStation, PerLinkRateShortensAirtime) {
  // Extension (core/rate_selection): a neighbour marked with a 4x link rate
  // gets 4x-shorter transmissions for the same packet, and the schedule
  // machinery still works (variable durations in the window search).
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  sim::Simulator sim(m, sim_config());

  const Schedule schedule(1010, kSlot, 0.3);
  const StationClock c0(Seconds{0.0});
  const StationClock c1(Seconds{888.888});
  Neighbor n = neighbor_of(1, 1.0, c0, c1);
  n.rate_bps = 4.0e6;
  NeighborTable t0;
  t0.add(n);
  auto cfg = station_config(schedule, c0);
  cfg.data_rate_bps = 1.0e6;  // design rate, enables per-packet airtimes
  sim.set_mac(0, std::make_unique<ScheduledStation>(cfg, std::move(t0)));
  NeighborTable t1;
  t1.add(neighbor_of(0, 1.0, c1, c0));
  sim.set_mac(1, std::make_unique<ScheduledStation>(
                     station_config(schedule, c1), std::move(t1)));

  for (int i = 0; i < 8; ++i) sim.inject(0.001 * i, packet(0, 1));
  sim.run_until(20.0);
  EXPECT_EQ(sim.metrics().delivered(), 8u);
  EXPECT_EQ(sim.metrics().total_hop_losses(), 0u);
  // 8 packets of kPacketBits at 4 Mb/s: airtime kAirtime/4 each.
  EXPECT_NEAR(sim.metrics().airtime_s(0), 8.0 * kAirtime / 4.0, 1e-9);
}

TEST(ScheduledStation, OversizedPacketStillSchedulsAcrossSlotRuns) {
  // A packet longer than one slot needs a run of consecutive transmit slots
  // here and receive slots there; rare but legal. With p = 0.3, double
  // receive slots occur every ~11 slots, so it goes through eventually.
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  sim::Simulator sim(m, sim_config());
  const Schedule schedule(1011, kSlot, 0.3);
  const StationClock c0(Seconds{0.0});
  const StationClock c1(Seconds{17.3});
  NeighborTable t0;
  t0.add(neighbor_of(1, 1.0, c0, c1));
  auto cfg = station_config(schedule, c0, /*guard=*/0.0001);
  cfg.data_rate_bps = 1.0e6;
  sim.set_mac(0, std::make_unique<ScheduledStation>(cfg, std::move(t0)));
  NeighborTable t1;
  t1.add(neighbor_of(0, 1.0, c1, c0));
  sim.set_mac(1, std::make_unique<ScheduledStation>(
                     station_config(schedule, c1), std::move(t1)));

  sim::Packet p = packet(0, 1);
  p.size_bits = 1.2e4;  // 12 ms at 1 Mb/s: 1.2 slots
  sim.inject(0.0, p);
  sim.run_until(120.0);
  EXPECT_EQ(sim.metrics().delivered(), 1u);
  EXPECT_EQ(sim.metrics().total_hop_losses(), 0u);
}

TEST(ScheduledStation, ConfigContracts) {
  const Schedule schedule(1, kSlot, 0.3);
  ScheduledStationConfig cfg{schedule, StationClock(), kAirtime, 0.0,
                             PowerControl::fixed(1.0)};
  cfg.packet_airtime_s = 0.0;
  EXPECT_THROW(ScheduledStation(cfg, NeighborTable()), ContractViolation);
  cfg.packet_airtime_s = kAirtime;
  cfg.guard_s = -1.0;
  EXPECT_THROW(ScheduledStation(cfg, NeighborTable()), ContractViolation);
  cfg.guard_s = kSlot;  // packet + guards no longer fits in one slot
  EXPECT_THROW(ScheduledStation(cfg, NeighborTable()), ContractViolation);
}

}  // namespace
}  // namespace drn::core
