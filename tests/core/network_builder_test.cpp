#include "core/network_builder.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/expects.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"

namespace drn::core {
namespace {

radio::ReceptionCriterion criterion() {
  return radio::ReceptionCriterion(radio::Hertz{200.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{5.0});
}

TEST(NetworkBuilder, BasicShape) {
  Rng rng(1);
  const auto placement = geo::line(4, {0.0, 0.0}, 100.0);
  const radio::FreeSpacePropagation model;
  const auto gains = radio::PropagationMatrix::from_placement(placement, model);

  ScheduledNetworkConfig cfg;
  cfg.target_received_w = 1.0e-9;
  cfg.max_power_w = 1.0;  // reach = gain >= 1e-9: all pairs here (max 300 m)
  Rng build_rng(2);
  const auto net = build_scheduled_network(gains, criterion(), cfg, build_rng);

  EXPECT_EQ(net.macs.size(), 4u);
  EXPECT_EQ(net.clocks.size(), 4u);
  EXPECT_EQ(net.neighbors.size(), 4u);
  EXPECT_DOUBLE_EQ(net.packet_airtime_s, cfg.packet_fraction * cfg.slot_s);
  EXPECT_DOUBLE_EQ(net.packet_bits, 1.0e6 * net.packet_airtime_s);
  EXPECT_GT(net.interference_budget_w, 0.0);
}

TEST(NetworkBuilder, NeighborhoodSymmetricAndThresholded) {
  Rng rng(3);
  const auto placement = geo::uniform_disc(30, 500.0, rng);
  const radio::FreeSpacePropagation model;
  const auto gains = radio::PropagationMatrix::from_placement(placement, model);

  ScheduledNetworkConfig cfg;
  cfg.target_received_w = 1.0e-9;
  cfg.max_power_w = 0.01;  // reach limited to gain >= 1e-7 (100 m)
  Rng build_rng(4);
  const auto net = build_scheduled_network(gains, criterion(), cfg, build_rng);

  for (StationId i = 0; i < 30; ++i) {
    for (StationId j : net.neighbors[i]) {
      EXPECT_GE(gains.gain(i, j), cfg.target_received_w / cfg.max_power_w);
      // Reciprocal channel -> symmetric neighbourhood.
      const auto& back = net.neighbors[j];
      EXPECT_NE(std::find(back.begin(), back.end(), i), back.end());
    }
  }
}

TEST(NetworkBuilder, RespectFlagsTrackProximity) {
  // Three stations on a line: 0 and 1 close (10 m), 2 far (10 km). With
  // power control, 0's worst-case power is what it needs to reach 2;
  // delivering that to 1 massively exceeds the significance threshold, so 1
  // must be respected. Station 2, heard weakly, must not be.
  const geo::Placement placement = {{0.0, 0.0}, {10.0, 0.0}, {10000.0, 0.0}};
  const radio::FreeSpacePropagation model;
  const auto gains = radio::PropagationMatrix::from_placement(placement, model);

  ScheduledNetworkConfig cfg;
  cfg.target_received_w = 1.0e-9;
  cfg.max_power_w = 1.0;
  cfg.exact_clock_models = true;
  Rng build_rng(5);
  const auto net = build_scheduled_network(gains, criterion(), cfg, build_rng);

  const auto& table0 = net.macs[0]->neighbors();
  ASSERT_NE(table0.find(1), nullptr);
  ASSERT_NE(table0.find(2), nullptr);
  EXPECT_TRUE(table0.find(1)->respect_receive_windows);
  EXPECT_FALSE(table0.find(2)->respect_receive_windows);
}

TEST(NetworkBuilder, DisablingRespectClearsFlags) {
  const geo::Placement placement = {{0.0, 0.0}, {10.0, 0.0}, {10000.0, 0.0}};
  const radio::FreeSpacePropagation model;
  const auto gains = radio::PropagationMatrix::from_placement(placement, model);

  ScheduledNetworkConfig cfg;
  cfg.respect_third_party_windows = false;
  Rng build_rng(6);
  const auto net = build_scheduled_network(gains, criterion(), cfg, build_rng);
  for (const auto& mac : net.macs)
    for (const auto& n : mac->neighbors().all())
      EXPECT_FALSE(n.respect_receive_windows);
}

TEST(NetworkBuilder, BuiltNetworkRunsCollisionFree) {
  // End-to-end smoke: a built 10-station network carries single-hop traffic
  // with zero Type 2/3 losses.
  Rng rng(7);
  const auto placement = geo::uniform_disc(10, 200.0, rng);
  const radio::FreeSpacePropagation model;
  const auto gains = radio::PropagationMatrix::from_placement(placement, model);

  ScheduledNetworkConfig cfg;
  cfg.target_received_w = 1.0e-9;
  cfg.max_power_w = 1.0;
  cfg.exact_clock_models = true;
  Rng build_rng(8);
  auto net = build_scheduled_network(gains, criterion(), cfg, build_rng);

  sim::SimulatorConfig sc{criterion()};
  sim::Simulator sim(gains, sc);
  for (StationId s = 0; s < 10; ++s) sim.set_mac(s, std::move(net.macs[s]));

  Rng traffic_rng(9);
  const auto traffic =
      sim::poisson_traffic(200.0, 1.0, net.packet_bits,
                           sim::neighbor_pairs(net.neighbors), traffic_rng);
  for (const auto& inj : traffic) sim.inject(inj.time_s, inj.packet);
  sim.run_until(30.0);

  EXPECT_EQ(sim.metrics().delivered(), sim.metrics().offered());
  EXPECT_EQ(sim.metrics().losses(sim::LossType::kType2), 0u);
  EXPECT_EQ(sim.metrics().losses(sim::LossType::kType3), 0u);
}

TEST(NetworkBuilder, ConfigContracts) {
  const radio::PropagationMatrix gains(2);
  Rng rng(1);
  ScheduledNetworkConfig cfg;
  cfg.slot_s = 0.0;
  EXPECT_THROW(
      (void)build_scheduled_network(gains, criterion(), cfg, rng),
      ContractViolation);
  cfg = {};
  cfg.receive_fraction = 1.0;
  EXPECT_THROW(
      (void)build_scheduled_network(gains, criterion(), cfg, rng),
      ContractViolation);
  cfg = {};
  cfg.packet_fraction = 0.9;
  cfg.guard_fraction = 0.1;  // 0.9 + 0.2 > 1
  EXPECT_THROW(
      (void)build_scheduled_network(gains, criterion(), cfg, rng),
      ContractViolation);
}

}  // namespace
}  // namespace drn::core
