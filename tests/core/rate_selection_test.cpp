#include "core/rate_selection.hpp"

#include <gtest/gtest.h>

#include "common/expects.hpp"
#include "radio/reception.hpp"
#include "radio/units.hpp"

namespace drn::core {
namespace {

TEST(RateLadder, GeometricConstruction) {
  const RateLadder l = geometric_ladder(1.0e6, 2.0, 5);
  ASSERT_EQ(l.size(), 5u);
  EXPECT_DOUBLE_EQ(l[0], 1.0e6);
  EXPECT_DOUBLE_EQ(l[4], 16.0e6);
  EXPECT_THROW((void)geometric_ladder(0.0, 2.0, 3), ContractViolation);
  EXPECT_THROW((void)geometric_ladder(1.0, 1.0, 3), ContractViolation);
  EXPECT_THROW((void)geometric_ladder(1.0, 2.0, 0), ContractViolation);
}

TEST(RateSelection, ThresholdMatchesReceptionCriterion) {
  // required_snr_for_rate must agree with ReceptionCriterion's Eq. 4.
  const radio::ReceptionCriterion crit(
      radio::Hertz{200.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{5.0});
  EXPECT_NEAR(required_snr_for_rate(1.0e6, 200.0e6, 5.0),
              crit.required_snr().value(), 1e-15);
}

TEST(RateSelection, ThresholdGrowsWithRate) {
  double prev = 0.0;
  for (double rate : {1.0e6, 2.0e6, 8.0e6, 64.0e6}) {
    const double snr = required_snr_for_rate(rate, 200.0e6, 5.0);
    EXPECT_GT(snr, prev);
    prev = snr;
  }
}

TEST(RateSelection, PicksHighestFittingRung) {
  const RateLadder ladder = geometric_ladder(1.0e6, 2.0, 8);  // 1..128 Mb/s
  const double bw = 200.0e6;
  const double margin = 5.0;
  // SNR chosen between the 8 Mb/s and 16 Mb/s thresholds.
  const double snr8 = required_snr_for_rate(8.0e6, bw, margin);
  const double snr16 = required_snr_for_rate(16.0e6, bw, margin);
  const double noise = 1.0;
  const double signal = (snr8 + snr16) / 2.0;
  EXPECT_DOUBLE_EQ(rate_for_link(signal, noise, bw, margin, ladder), 8.0e6);
}

TEST(RateSelection, FallsBackToLowestRung) {
  const RateLadder ladder = geometric_ladder(1.0e6, 2.0, 4);
  // SNR below even the lowest threshold: return the base rate (caller may
  // prune the link).
  EXPECT_DOUBLE_EQ(rate_for_link(1.0e-6, 1.0, 200.0e6, 5.0, ladder), 1.0e6);
}

TEST(RateSelection, StrongLinkSaturatesLadder) {
  const RateLadder ladder = geometric_ladder(1.0e6, 2.0, 6);  // up to 32 Mb/s
  EXPECT_DOUBLE_EQ(rate_for_link(1.0e3, 1.0, 200.0e6, 5.0, ladder), 32.0e6);
}

TEST(RateSelection, SixDbBuysTwoRungsAtLowSnr) {
  // In the linear regime the Eq.-4 threshold is ~proportional to rate, so a
  // 6 dB (4x) SNR improvement buys a factor-4 rate: two rungs of a x2
  // ladder.
  const RateLadder ladder = geometric_ladder(0.25e6, 2.0, 10);
  const double bw = 200.0e6;
  const double base = rate_for_link(0.02, 1.0, bw, 5.0, ladder);
  const double better = rate_for_link(0.08, 1.0, bw, 5.0, ladder);
  EXPECT_NEAR(better / base, 4.0, 1e-9);
}

TEST(RateSelection, IdealMultiple) {
  EXPECT_DOUBLE_EQ(ideal_rate_multiple(0.01, 0.01), 1.0);
  // log2(1.04)/log2(1.01) ~ 3.94.
  EXPECT_NEAR(ideal_rate_multiple(0.04, 0.01), 3.94, 0.01);
  EXPECT_THROW((void)ideal_rate_multiple(-0.1, 0.01), ContractViolation);
  EXPECT_THROW((void)ideal_rate_multiple(0.1, 0.0), ContractViolation);
}

TEST(RateSelection, Contracts) {
  const RateLadder ladder = geometric_ladder(1.0e6, 2.0, 2);
  EXPECT_THROW((void)rate_for_link(0.0, 1.0, 1.0e6, 0.0, ladder),
               ContractViolation);
  EXPECT_THROW((void)rate_for_link(1.0, 0.0, 1.0e6, 0.0, ladder),
               ContractViolation);
  EXPECT_THROW((void)rate_for_link(1.0, 1.0, 1.0e6, 0.0, {}),
               ContractViolation);
  EXPECT_THROW((void)required_snr_for_rate(1.0, 1.0, -1.0), ContractViolation);
}

}  // namespace
}  // namespace drn::core
