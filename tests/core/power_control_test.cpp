#include "core/power_control.hpp"

#include <gtest/gtest.h>

#include "common/expects.hpp"

namespace drn::core {
namespace {

TEST(PowerControl, DeliversConstantReceivedPower) {
  // Section 6.1: "transmit with sufficient power to deliver a constant
  // pre-determined amount of power to the intended receiver."
  const PowerControl pc(1.0e-9, 10.0);
  for (double gain : {1.0e-3, 1.0e-6, 1.0e-9}) {
    const double p = pc.transmit_power_w(gain);
    EXPECT_DOUBLE_EQ(p * gain, 1.0e-9) << gain;
  }
}

TEST(PowerControl, ClampsAtMaxPower) {
  const PowerControl pc(1.0e-9, 10.0);
  EXPECT_DOUBLE_EQ(pc.transmit_power_w(1.0e-12), 10.0);  // would need 1000 W
}

TEST(PowerControl, ReachabilityBoundary) {
  const PowerControl pc(1.0e-9, 1.0);
  EXPECT_TRUE(pc.reachable(1.0e-9));       // exactly at the limit
  EXPECT_TRUE(pc.reachable(1.0e-8));
  EXPECT_FALSE(pc.reachable(0.99e-9));
}

TEST(PowerControl, NearerNeighborsGetLessPower) {
  // Quadrupled density -> halved distances -> 4x gain -> quarter power
  // (Section 6.1's constant-power-density argument).
  const PowerControl pc(1.0e-9, 10.0);
  const double far_gain = 1.0e-6;
  const double near_gain = 4.0e-6;
  EXPECT_DOUBLE_EQ(pc.transmit_power_w(near_gain),
                   pc.transmit_power_w(far_gain) / 4.0);
}

TEST(PowerControl, FixedModeIgnoresGain) {
  const PowerControl pc = PowerControl::fixed(2.0);
  EXPECT_FALSE(pc.controlled());
  EXPECT_DOUBLE_EQ(pc.transmit_power_w(1.0e-3), 2.0);
  EXPECT_DOUBLE_EQ(pc.transmit_power_w(1.0e-9), 2.0);
  EXPECT_TRUE(pc.reachable(1.0e-12));
}

TEST(PowerControl, Accessors) {
  const PowerControl pc(2.0e-9, 5.0);
  EXPECT_TRUE(pc.controlled());
  EXPECT_DOUBLE_EQ(pc.target_received_w(), 2.0e-9);
  EXPECT_DOUBLE_EQ(pc.max_power_w(), 5.0);
}

TEST(PowerControl, Contracts) {
  EXPECT_THROW(PowerControl(0.0, 1.0), ContractViolation);
  EXPECT_THROW(PowerControl(1.0, 0.0), ContractViolation);
  EXPECT_THROW(PowerControl::fixed(0.0), ContractViolation);
  const PowerControl pc(1.0e-9, 1.0);
  EXPECT_THROW((void)pc.transmit_power_w(0.0), ContractViolation);
  EXPECT_THROW((void)pc.reachable(-1.0), ContractViolation);
}

}  // namespace
}  // namespace drn::core
