#include "core/clock_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/expects.hpp"

namespace drn::core {
namespace {

TEST(ClockModel, DefaultIsIdentity) {
  const ClockModel m;
  EXPECT_DOUBLE_EQ(m.map(7.5), 7.5);
  EXPECT_DOUBLE_EQ(m.inverse(7.5), 7.5);
  EXPECT_DOUBLE_EQ(m.max_residual_s(), 0.0);
}

TEST(ClockModel, MapInverseRoundTrip) {
  const ClockModel m(3.0, 1.0001);
  for (double t : {-50.0, 0.0, 123.456})
    EXPECT_NEAR(m.inverse(m.map(t)), t, 1e-9);
}

TEST(ClockModel, ExactMatchesTrueClocks) {
  const StationClock mine(Seconds{10.0}, 1.0 + 5e-6);
  const StationClock theirs(Seconds{-3.0}, 1.0 - 8e-6);
  const ClockModel m = ClockModel::exact(mine, theirs);
  for (double g : {0.0, 100.0, 5000.0}) {
    EXPECT_NEAR(m.map(mine.local(Seconds{g}).value()),
                theirs.local(Seconds{g}).value(), 1e-9);
  }
  EXPECT_DOUBLE_EQ(m.max_residual_s(), 0.0);
}

TEST(ClockModel, SingleSamplePinsOffsetAssumesUnitRate) {
  const ClockModel m = ClockModel::fit(std::vector<ClockSample>{{100.0, 250.0}});
  EXPECT_DOUBLE_EQ(m.b(), 1.0);
  EXPECT_DOUBLE_EQ(m.map(100.0), 250.0);
  EXPECT_DOUBLE_EQ(m.map(101.0), 251.0);
}

TEST(ClockModel, TwoSamplesRecoverExactAffine) {
  // theirs = 5 + 1.00002 * mine.
  std::vector<ClockSample> samples = {{0.0, 5.0}, {1000.0, 5.0 + 1000.2 * 0.1}};
  samples[1] = {1000.0, 5.0 + 1000.0 * 1.00002};
  const ClockModel m = ClockModel::fit(samples);
  EXPECT_NEAR(m.a(), 5.0, 1e-9);
  EXPECT_NEAR(m.b(), 1.00002, 1e-12);
  EXPECT_NEAR(m.max_residual_s(), 0.0, 1e-9);
}

TEST(ClockModel, NoisyFitResidualBoundsPredictionError) {
  // Fit over noisy rendezvous; the reported residual must bound the in-
  // sample error, and prediction error shortly after stays comparable.
  const StationClock mine(Seconds{50.0}, 1.0 + 12e-6);
  const StationClock theirs(Seconds{-20.0}, 1.0 - 7e-6);
  Rng rng(9);
  std::vector<double> times;
  for (int i = 0; i < 8; ++i) times.push_back(-120.0 + 15.0 * i);
  const auto samples = rendezvous(mine, theirs, times, 1.0e-6, rng);
  const ClockModel m = ClockModel::fit(samples);
  for (const auto& s : samples)
    EXPECT_LE(std::abs(m.map(s.mine_s) - s.theirs_s),
              m.max_residual_s() + 1e-15);
  // Predict 60 s of global time ahead of the last rendezvous.
  const double g = 60.0;
  const double err = std::abs(m.map(mine.local(Seconds{g}).value()) - theirs.local(Seconds{g}).value());
  EXPECT_LT(err, 50.0e-6);  // comfortably under a 1% guard of a 10 ms slot
}

TEST(ClockModel, RendezvousNoiseFreeSamplesAreExact) {
  const StationClock mine(Seconds{1.0}, 1.0);
  const StationClock theirs(Seconds{2.0}, 1.0);
  Rng rng(1);
  const std::vector<double> times = {0.0, 10.0, 20.0};
  const auto samples = rendezvous(mine, theirs, times, 0.0, rng);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(samples[i].mine_s, mine.local(Seconds{times[i]}).value());
    EXPECT_DOUBLE_EQ(samples[i].theirs_s,
                     theirs.local(Seconds{times[i]}).value());
  }
}

TEST(ClockModel, FitContracts) {
  EXPECT_THROW((void)ClockModel::fit({}), ContractViolation);
  // Non-increasing sample times.
  std::vector<ClockSample> bad = {{10.0, 10.0}, {5.0, 5.0}, {20.0, 20.0}};
  EXPECT_THROW((void)ClockModel::fit(bad), ContractViolation);
  // Duplicate x values (sxx == 0 after the n==1 shortcut is bypassed).
  std::vector<ClockSample> dup = {{10.0, 10.0}, {10.0, 11.0}};
  EXPECT_THROW((void)ClockModel::fit(dup), ContractViolation);
}

TEST(ClockModel, ConstructorContracts) {
  EXPECT_THROW(ClockModel(0.0, 0.0), ContractViolation);
  EXPECT_THROW(ClockModel(0.0, -1.0), ContractViolation);
  EXPECT_THROW(ClockModel(0.0, 1.0, -0.5), ContractViolation);
}

}  // namespace
}  // namespace drn::core
