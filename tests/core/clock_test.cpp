#include "core/clock.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/expects.hpp"

namespace drn::core {
namespace {

TEST(StationClock, IdentityByDefault) {
  const StationClock c;
  EXPECT_DOUBLE_EQ(c.local(Seconds{5.0}).value(), 5.0);
  EXPECT_DOUBLE_EQ(c.global(Seconds{5.0}).value(), 5.0);
}

TEST(StationClock, OffsetAndRate) {
  const StationClock c(Seconds{100.0}, 1.5);
  EXPECT_DOUBLE_EQ(c.local(Seconds{0.0}).value(), 100.0);
  EXPECT_DOUBLE_EQ(c.local(Seconds{10.0}).value(), 115.0);
  EXPECT_DOUBLE_EQ(c.global(Seconds{115.0}).value(), 10.0);
}

TEST(StationClock, RoundTrip) {
  const StationClock c(Seconds{12345.678}, 1.0 + 17e-6);
  for (double g : {-100.0, 0.0, 3.25, 9999.0})
    EXPECT_NEAR(c.global(c.local(Seconds{g})).value(), g, 1e-9);
}

TEST(StationClock, RandomWithinBounds) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const StationClock c = StationClock::random(rng, Seconds{1000.0}, 50.0);
    EXPECT_GE(c.offset().value(), 0.0);
    EXPECT_LT(c.offset().value(), 1000.0);
    EXPECT_LE(std::abs(c.rate() - 1.0), 50e-6);
  }
}

TEST(StationClock, RandomClocksDiffer) {
  // Section 7.1: independent random initialisation makes collisions of
  // clock values vanishingly unlikely.
  Rng rng(6);
  const StationClock a = StationClock::random(rng, Seconds{1.0e6}, 20.0);
  const StationClock b = StationClock::random(rng, Seconds{1.0e6}, 20.0);
  EXPECT_NE(a.offset().value(), b.offset().value());
}

TEST(StationClock, ZeroDriftAllowed) {
  Rng rng(7);
  const StationClock c = StationClock::random(rng, Seconds{10.0}, 0.0);
  EXPECT_DOUBLE_EQ(c.rate(), 1.0);
}

TEST(StationClock, Contracts) {
  EXPECT_THROW(StationClock(Seconds{0.0}, 0.0), ContractViolation);
  EXPECT_THROW(StationClock(Seconds{0.0}, -1.0), ContractViolation);
  Rng rng(1);
  EXPECT_THROW(StationClock::random(rng, Seconds{0.0}, 1.0),
               ContractViolation);
  EXPECT_THROW(StationClock::random(rng, Seconds{1.0}, -1.0),
               ContractViolation);
}

}  // namespace
}  // namespace drn::core
