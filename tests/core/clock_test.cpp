#include "core/clock.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/expects.hpp"

namespace drn::core {
namespace {

TEST(StationClock, IdentityByDefault) {
  const StationClock c;
  EXPECT_DOUBLE_EQ(c.local(5.0), 5.0);
  EXPECT_DOUBLE_EQ(c.global(5.0), 5.0);
}

TEST(StationClock, OffsetAndRate) {
  const StationClock c(100.0, 1.5);
  EXPECT_DOUBLE_EQ(c.local(0.0), 100.0);
  EXPECT_DOUBLE_EQ(c.local(10.0), 115.0);
  EXPECT_DOUBLE_EQ(c.global(115.0), 10.0);
}

TEST(StationClock, RoundTrip) {
  const StationClock c(12345.678, 1.0 + 17e-6);
  for (double g : {-100.0, 0.0, 3.25, 9999.0})
    EXPECT_NEAR(c.global(c.local(g)), g, 1e-9);
}

TEST(StationClock, RandomWithinBounds) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const StationClock c = StationClock::random(rng, 1000.0, 50.0);
    EXPECT_GE(c.offset_s(), 0.0);
    EXPECT_LT(c.offset_s(), 1000.0);
    EXPECT_LE(std::abs(c.rate() - 1.0), 50e-6);
  }
}

TEST(StationClock, RandomClocksDiffer) {
  // Section 7.1: independent random initialisation makes collisions of
  // clock values vanishingly unlikely.
  Rng rng(6);
  const StationClock a = StationClock::random(rng, 1.0e6, 20.0);
  const StationClock b = StationClock::random(rng, 1.0e6, 20.0);
  EXPECT_NE(a.offset_s(), b.offset_s());
}

TEST(StationClock, ZeroDriftAllowed) {
  Rng rng(7);
  const StationClock c = StationClock::random(rng, 10.0, 0.0);
  EXPECT_DOUBLE_EQ(c.rate(), 1.0);
}

TEST(StationClock, Contracts) {
  EXPECT_THROW(StationClock(0.0, 0.0), ContractViolation);
  EXPECT_THROW(StationClock(0.0, -1.0), ContractViolation);
  Rng rng(1);
  EXPECT_THROW(StationClock::random(rng, 0.0, 1.0), ContractViolation);
  EXPECT_THROW(StationClock::random(rng, 1.0, -1.0), ContractViolation);
}

}  // namespace
}  // namespace drn::core
