#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>

#include "helpers/test_macs.hpp"
#include "sim/simulator.hpp"

namespace drn::sim {
namespace {

using drn::testing::IdleMac;
using drn::testing::ScriptMac;
using drn::testing::ScriptedTx;

radio::ReceptionCriterion criterion() {
  return radio::ReceptionCriterion(radio::Hertz{1.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{0.0});
}

TEST(Trace, RecordsTransmissionsAndReceptions) {
  radio::PropagationMatrix m(3);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  m.set_gain(1, 2, radio::LinearGain{1.0});
  m.set_gain(0, 2, radio::LinearGain{1e-9});
  SimulatorConfig cfg{criterion()};
  cfg.thermal_noise_w = 1e-15;
  Simulator sim(m, cfg);
  TraceRecorder trace;
  sim.set_observer(&trace);
  sim.set_mac(0, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.00, 1, 1.0, 1.0e4}, {0.02, 1, 1.0, 1.0e4}}));
  sim.set_mac(2, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.05, 1, 1.0, 1.0e4}}));
  sim.set_mac(1, std::make_unique<IdleMac>());
  sim.run_until(1.0);

  EXPECT_EQ(trace.transmissions().size(), 3u);
  EXPECT_EQ(trace.receptions().size(), 3u);
  EXPECT_EQ(trace.transmissions_from(0).size(), 2u);
  EXPECT_EQ(trace.transmissions_from(2).size(), 1u);
  EXPECT_EQ(trace.receptions_at(1).size(), 3u);
  EXPECT_DOUBLE_EQ(trace.delivery_fraction(), 1.0);
}

TEST(Trace, CapturesLossOutcome) {
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0e-6});
  SimulatorConfig cfg{criterion()};
  cfg.thermal_noise_w = 1.0;  // hopeless SNR
  Simulator sim(m, cfg);
  TraceRecorder trace;
  sim.set_observer(&trace);
  sim.set_mac(0, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.0, 1, 1.0, 1.0e4}}));
  sim.set_mac(1, std::make_unique<IdleMac>());
  sim.run_until(1.0);
  ASSERT_EQ(trace.receptions().size(), 1u);
  EXPECT_FALSE(trace.receptions()[0].delivered);
  EXPECT_EQ(trace.receptions()[0].loss, LossType::kType1);
  EXPECT_DOUBLE_EQ(trace.delivery_fraction(), 0.0);
}

TEST(Trace, CsvOutput) {
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  SimulatorConfig cfg{criterion()};
  cfg.thermal_noise_w = 1e-15;
  Simulator sim(m, cfg);
  TraceRecorder trace;
  sim.set_observer(&trace);
  sim.set_mac(0, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.0, 1, 2.0, 1.0e4}}));
  sim.set_mac(1, std::make_unique<IdleMac>());
  sim.run_until(1.0);

  std::ostringstream tx_csv;
  trace.write_transmissions_csv(tx_csv);
  const std::string tx = tx_csv.str();
  EXPECT_NE(tx.find("tx_id,from,to,power_w"), std::string::npos);
  EXPECT_NE(tx.find("1,0,1,2,"), std::string::npos);

  std::ostringstream rx_csv;
  trace.write_receptions_csv(rx_csv);
  const std::string rx = rx_csv.str();
  EXPECT_NE(rx.find("delivered"), std::string::npos);
  // Two lines: header + one record.
  EXPECT_EQ(std::count(rx.begin(), rx.end(), '\n'), 2);
}

TEST(Trace, EmptyAndClear) {
  TraceRecorder trace;
  EXPECT_DOUBLE_EQ(trace.delivery_fraction(), 1.0);
  TxEvent tx;
  tx.from = 3;
  trace.on_transmit_start(tx);
  EXPECT_EQ(trace.transmissions().size(), 1u);
  trace.clear();
  EXPECT_TRUE(trace.transmissions().empty());
  EXPECT_TRUE(trace.receptions().empty());
}

TEST(Trace, MaxEventsCapDropsOldestAndCounts) {
  TraceRecorder trace(3);
  EXPECT_EQ(trace.max_events(), 3u);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    TxEvent tx;
    tx.tx_id = i;
    trace.on_transmit_start(tx);
  }
  ASSERT_EQ(trace.transmissions().size(), 3u);
  EXPECT_EQ(trace.dropped_transmissions(), 2u);
  // Oldest two (1, 2) were shed; the newest three remain in order.
  EXPECT_EQ(trace.transmissions()[0].tx_id, 3u);
  EXPECT_EQ(trace.transmissions()[2].tx_id, 5u);

  for (std::uint64_t i = 1; i <= 4; ++i) {
    RxEvent rx;
    rx.tx_id = i;
    rx.delivered = true;
    trace.on_reception_complete(rx);
  }
  EXPECT_EQ(trace.receptions().size(), 3u);
  EXPECT_EQ(trace.dropped_receptions(), 1u);
  EXPECT_DOUBLE_EQ(trace.delivery_fraction(), 1.0);

  trace.clear();
  EXPECT_EQ(trace.dropped_transmissions(), 0u);
  EXPECT_EQ(trace.dropped_receptions(), 0u);
  EXPECT_TRUE(trace.transmissions().empty());
}

TEST(Trace, UncappedByDefault) {
  TraceRecorder trace;
  EXPECT_EQ(trace.max_events(), 0u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    TxEvent tx;
    tx.tx_id = i;
    trace.on_transmit_start(tx);
  }
  EXPECT_EQ(trace.transmissions().size(), 100u);
  EXPECT_EQ(trace.dropped_transmissions(), 0u);
}

TEST(Trace, BroadcastToFieldInCsvIsMinusOne) {
  TraceRecorder trace;
  TxEvent tx;
  tx.tx_id = 9;
  tx.from = 0;
  tx.to = kBroadcast;
  trace.on_transmit_start(tx);
  std::ostringstream os;
  trace.write_transmissions_csv(os);
  EXPECT_NE(os.str().find("9,0,-1,"), std::string::npos);
}

}  // namespace
}  // namespace drn::sim
