// Tests for the simulator extensions: broadcast transmissions, the observer
// hook, per-transmission rates, and multiuser-detection subtraction.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/expects.hpp"
#include "helpers/scenario.hpp"
#include "helpers/test_macs.hpp"
#include "sim/simulator.hpp"

namespace drn::sim {
namespace {

using drn::testing::IdleMac;
using drn::testing::ScriptMac;
using drn::testing::ScriptedTx;

radio::ReceptionCriterion spread_criterion() {
  return radio::ReceptionCriterion(radio::Hertz{200.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{5.0});
}

SimulatorConfig config_with(radio::ReceptionCriterion crit,
                            double thermal_w = 1.0e-15) {
  SimulatorConfig cfg{crit};
  cfg.thermal_noise_w = thermal_w;
  return cfg;
}

/// Broadcasts one beacon at t=0 and records everything it overhears.
class BeaconMac final : public MacProtocol {
 public:
  struct Heard {
    StationId from;
    double signal_w;
    double at_s;
    double stamp_s;
  };

  explicit BeaconMac(bool send, double power = 1.0) : send_(send), power_(power) {}

  void on_start(MacContext& ctx) override {
    if (send_) ctx.set_timer(0.0, 0);
  }
  void on_timer(MacContext& ctx, std::uint64_t) override {
    Packet beacon;
    beacon.source = ctx.self();
    beacon.destination = kBroadcast;
    beacon.size_bits = 1.0e3;
    beacon.sender_local_s = 123.456;
    ctx.transmit(beacon, kBroadcast, power_, ctx.now());
  }
  void on_enqueue(MacContext& ctx, const Packet& pkt, StationId) override {
    ctx.drop(pkt);
  }
  void on_broadcast_received(MacContext& ctx, const Packet& pkt,
                             StationId from, double signal_w) override {
    heard.push_back({from, signal_w, ctx.now(), pkt.sender_local_s});
  }

  std::vector<Heard> heard;

 private:
  bool send_;
  double power_;
};

TEST(Broadcast, EveryStationInRangeReceives) {
  radio::PropagationMatrix m(4);
  m.set_gain(0, 1, radio::LinearGain{0.5});
  m.set_gain(0, 2, radio::LinearGain{0.25});
  m.set_gain(0, 3, radio::LinearGain{1e-9});  // in range too (huge processing gain, no noise)
  Simulator sim(m, config_with(spread_criterion(), 1.0e-18));
  auto* sender = new BeaconMac(true);
  std::vector<BeaconMac*> listeners;
  sim.set_mac(0, std::unique_ptr<MacProtocol>(sender));
  for (StationId s = 1; s < 4; ++s) {
    auto mac = std::make_unique<BeaconMac>(false);
    listeners.push_back(mac.get());
    sim.set_mac(s, std::move(mac));
  }
  sim.run_until(1.0);
  EXPECT_EQ(sim.metrics().broadcasts_sent(), 1u);
  EXPECT_EQ(sim.metrics().broadcast_receptions(), 3u);
  EXPECT_EQ(sim.metrics().hop_attempts(), 0u);  // broadcasts are not hops
  ASSERT_EQ(listeners[0]->heard.size(), 1u);
  EXPECT_EQ(listeners[0]->heard[0].from, 0u);
  EXPECT_DOUBLE_EQ(listeners[0]->heard[0].signal_w, 0.5);  // gain * 1 W
  EXPECT_DOUBLE_EQ(listeners[0]->heard[0].stamp_s, 123.456);
  EXPECT_DOUBLE_EQ(listeners[1]->heard[0].signal_w, 0.25);
}

TEST(Broadcast, OutOfRangeStationMissesIt) {
  radio::PropagationMatrix m(3);
  m.set_gain(0, 1, radio::LinearGain{0.5});
  m.set_gain(0, 2, radio::LinearGain{1e-9});
  auto cfg = config_with(spread_criterion(), /*thermal=*/1e-6);
  Simulator sim(m, cfg);  // station 2's SNR = 1e-9/1e-6 = -30 dB: undecodable
  sim.set_mac(0, std::make_unique<BeaconMac>(true));
  auto* near = new BeaconMac(false);
  auto* far = new BeaconMac(false);
  sim.set_mac(1, std::unique_ptr<MacProtocol>(near));
  sim.set_mac(2, std::unique_ptr<MacProtocol>(far));
  sim.run_until(1.0);
  EXPECT_EQ(near->heard.size(), 1u);
  EXPECT_TRUE(far->heard.empty());
  EXPECT_EQ(sim.metrics().broadcast_receptions(), 1u);
  // Broadcast losses are not counted in the unicast loss taxonomy.
  EXPECT_EQ(sim.metrics().total_hop_losses(), 0u);
}

TEST(Broadcast, TransmittingStationCannotHearIt) {
  radio::PropagationMatrix m(3);
  m.set_gain(0, 1, radio::LinearGain{0.5});
  m.set_gain(0, 2, radio::LinearGain{0.5});
  m.set_gain(1, 2, radio::LinearGain{1e-9});
  Simulator sim(m, config_with(spread_criterion()));
  sim.set_mac(0, std::make_unique<BeaconMac>(true));
  auto* idle = new BeaconMac(false);
  sim.set_mac(1, std::unique_ptr<MacProtocol>(idle));
  // Station 2 is busy transmitting its own packet throughout the beacon.
  sim.set_mac(2, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.0, 1, 1e-9, 1.0e4}}));
  sim.run_until(1.0);
  EXPECT_EQ(idle->heard.size(), 1u);
  EXPECT_EQ(sim.metrics().broadcast_receptions(), 1u);  // only station 1
}

TEST(PerTransmissionRate, AirtimeFollowsRate) {
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{0.5});
  Simulator sim(m, config_with(spread_criterion()));
  // 1e4 bits at 4 Mb/s (4x design rate): airtime 2.5 ms instead of 10 ms.
  class RateMac final : public MacProtocol {
   public:
    void on_start(MacContext& ctx) override { ctx.set_timer(0.0, 0); }
    void on_timer(MacContext& ctx, std::uint64_t) override {
      Packet p;
      p.source = ctx.self();
      p.destination = 1;
      p.size_bits = 1.0e4;
      ctx.transmit(p, 1, 1.0, ctx.now(), 4.0e6);
    }
    void on_enqueue(MacContext& ctx, const Packet& p, StationId) override {
      ctx.drop(p);
    }
  };
  sim.set_mac(0, std::make_unique<RateMac>());
  sim.set_mac(1, std::make_unique<IdleMac>());
  sim.run_until(1.0);
  EXPECT_EQ(sim.metrics().hop_successes(), 1u);
  EXPECT_DOUBLE_EQ(sim.metrics().airtime_s(0), 0.0025);
}

TEST(PerTransmissionRate, HigherRateNeedsHigherSinr) {
  // Noise floor set so the design rate (1 Mb/s over 200 MHz) clears the
  // threshold but 64 Mb/s does not.
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0e-3});
  auto cfg = config_with(spread_criterion(), /*thermal=*/1.0e-2);
  // SINR = 1e-3/1e-2 = 0.1. Design rate needs ~0.011; 64 Mb/s needs
  // 3.16*(2^0.32 - 1) ~ 0.78.
  {
    Simulator sim(m, cfg);
    sim.set_mac(0, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                       {0.0, 1, 1.0, 1.0e4}}));
    sim.set_mac(1, std::make_unique<IdleMac>());
    sim.run_until(1.0);
    EXPECT_EQ(sim.metrics().hop_successes(), 1u);
  }
  {
    class FastMac final : public MacProtocol {
     public:
      void on_start(MacContext& ctx) override { ctx.set_timer(0.0, 0); }
      void on_timer(MacContext& ctx, std::uint64_t) override {
        Packet p;
        p.source = 0;
        p.destination = 1;
        p.size_bits = 1.0e4;
        ctx.transmit(p, 1, 1.0, ctx.now(), 64.0e6);
      }
      void on_enqueue(MacContext& ctx, const Packet& p, StationId) override {
        ctx.drop(p);
      }
    };
    Simulator sim(m, cfg);
    sim.set_mac(0, std::make_unique<FastMac>());
    sim.set_mac(1, std::make_unique<IdleMac>());
    sim.run_until(1.0);
    EXPECT_EQ(sim.metrics().hop_successes(), 0u);
    EXPECT_EQ(sim.metrics().losses(LossType::kType1), 1u);
  }
}

TEST(Observer, SeesTransmissionsAndReceptions) {
  class Recorder final : public SimObserver {
   public:
    std::vector<TxEvent> txs;
    std::vector<RxEvent> rxs;
    void on_transmit_start(const TxEvent& tx) override { txs.push_back(tx); }
    void on_reception_complete(const RxEvent& rx) override {
      rxs.push_back(rx);
    }
  };
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{0.5});
  Simulator sim(m, config_with(spread_criterion(), 0.05));
  Recorder rec;
  sim.set_observer(&rec);
  sim.set_mac(0, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.25, 1, 2.0, 1.0e4}}));
  sim.set_mac(1, std::make_unique<IdleMac>());
  sim.run_until(1.0);
  ASSERT_EQ(rec.txs.size(), 1u);
  EXPECT_EQ(rec.txs[0].from, 0u);
  EXPECT_EQ(rec.txs[0].to, 1u);
  EXPECT_DOUBLE_EQ(rec.txs[0].power_w, 2.0);
  EXPECT_DOUBLE_EQ(rec.txs[0].start_s, 0.25);
  EXPECT_DOUBLE_EQ(rec.txs[0].end_s, 0.26);
  EXPECT_DOUBLE_EQ(rec.txs[0].rate_bps, 1.0e6);
  ASSERT_EQ(rec.rxs.size(), 1u);
  EXPECT_TRUE(rec.rxs[0].delivered);
  EXPECT_DOUBLE_EQ(rec.rxs[0].signal_w, 1.0);          // 0.5 gain * 2 W
  EXPECT_DOUBLE_EQ(rec.rxs[0].min_sinr, 1.0 / 0.05);   // thermal only
}

TEST(MultiuserDetection, SubtractionRescuesJammedReception) {
  // A strong interferer would kill the reception; with k=1 subtraction the
  // receiver cancels it (footnote 2's "model and subtract ... the strongest
  // interfering signals").
  auto build = [](int k) {
    radio::PropagationMatrix m(4);
    m.set_gain(1, 0, radio::LinearGain{1.0});   // desired 0 -> 1
    m.set_gain(1, 2, radio::LinearGain{50.0});  // jammer at receiver
    m.set_gain(2, 3, radio::LinearGain{1.0});   // jammer's own link 2 -> 3
    auto cfg = SimulatorConfig{radio::ReceptionCriterion(radio::Hertz{1.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{0.0})};
    cfg.thermal_noise_w = 1.0e-3;
    cfg.multiuser_subtract_k = k;
    return std::pair{m, cfg};
  };
  for (int k : {0, 1}) {
    auto [m, cfg] = build(k);
    Simulator sim(m, cfg);
    sim.set_mac(0, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                       {0.0, 1, 1.0, 1.0e4}}));
    sim.set_mac(1, std::make_unique<IdleMac>());
    sim.set_mac(2, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                       {0.002, 3, 1.0, 1.0e4}}));
    sim.set_mac(3, std::make_unique<IdleMac>());
    sim.run_until(1.0);
    if (k == 0) {
      EXPECT_EQ(sim.metrics().losses(LossType::kType1), 1u) << "k=" << k;
    } else {
      EXPECT_EQ(sim.metrics().total_hop_losses(), 0u) << "k=" << k;
      EXPECT_EQ(sim.metrics().hop_successes(), 2u) << "k=" << k;
    }
  }
}

TEST(MultiuserDetection, SubtractionCapResidualIsThermal) {
  // With k large enough to cancel every interferer, SINR returns to the
  // thermal-limited value, not infinity.
  radio::PropagationMatrix m(3);
  m.set_gain(1, 0, radio::LinearGain{1.0});
  m.set_gain(1, 2, radio::LinearGain{10.0});
  m.set_gain(0, 2, radio::LinearGain{1e-9});
  auto cfg = SimulatorConfig{radio::ReceptionCriterion(radio::Hertz{1.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{0.0})};
  cfg.thermal_noise_w = 0.25;
  cfg.multiuser_subtract_k = 4;
  class Recorder final : public SimObserver {
   public:
    std::vector<RxEvent> rxs;
    void on_reception_complete(const RxEvent& rx) override {
      rxs.push_back(rx);
    }
  };
  Recorder rec;
  Simulator sim(m, cfg);
  sim.set_observer(&rec);
  sim.set_mac(0, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.0, 1, 1.0, 1.0e4}}));
  sim.set_mac(1, std::make_unique<IdleMac>());
  sim.set_mac(2, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.001, 0, 1.0, 1.0e3}}));
  sim.run_until(1.0);
  // Find the 0->1 reception: its min SINR is signal/thermal = 4 even while
  // the 10 W interference contribution is on the air.
  bool found = false;
  for (const auto& rx : rec.rxs) {
    if (rx.rx == 1) {
      EXPECT_NEAR(rx.min_sinr, 1.0 / 0.25, 1e-9);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(MultiuserDetection, BroadcastContributionsTrackedAcrossStartAndEnd) {
  // Broadcast + multiuser_subtract_k > 0: per-interferer contributions must
  // be tracked for every broadcast reception across all three paths —
  // open_reception (jammer 3 is already on air when the beacon starts),
  // transmit start (jammer 5 keys up mid-beacon) and transmit end (jammer 5
  // leaves the air mid-beacon). With k=2 the listeners cancel both jammers
  // and hear the beacon at the thermal-limited SINR throughout.
  radio::PropagationMatrix m(6);
  for (StationId s = 1; s < 6; ++s) m.set_gain(0, s, radio::LinearGain{0.5});  // beacon links
  m.set_gain(3, 1, radio::LinearGain{50.0});  // jammer 1 blankets both listeners
  m.set_gain(3, 2, radio::LinearGain{50.0});
  m.set_gain(5, 1, radio::LinearGain{50.0});  // jammer 2 too
  m.set_gain(5, 2, radio::LinearGain{50.0});
  m.set_gain(3, 4, radio::LinearGain{1.0});   // jammers' own unicast links to station 4
  m.set_gain(5, 4, radio::LinearGain{1.0});
  auto cfg = SimulatorConfig{radio::ReceptionCriterion(radio::Hertz{1.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{0.0})};
  cfg.thermal_noise_w = 1.0e-3;
  cfg.multiuser_subtract_k = 2;
  class Recorder final : public SimObserver {
   public:
    std::vector<RxEvent> rxs;
    void on_reception_complete(const RxEvent& rx) override {
      rxs.push_back(rx);
    }
  };
  Recorder rec;
  Simulator sim(m, cfg);
  drn::testing::ScopedAudit audited(sim);
  sim.add_observer(&rec);
  // Beacon: 2 ms .. 12 ms. Jammer 3: 0 .. 20 ms. Jammer 5: 5 .. 6 ms.
  class Beacon final : public MacProtocol {
   public:
    void on_start(MacContext& ctx) override { ctx.set_timer(0.002, 0); }
    void on_timer(MacContext& ctx, std::uint64_t) override {
      Packet b;
      b.source = ctx.self();
      b.destination = kBroadcast;
      b.size_bits = 1.0e4;
      ctx.transmit(b, kBroadcast, 1.0, ctx.now());
    }
    void on_enqueue(MacContext& ctx, const Packet& p, StationId) override {
      ctx.drop(p);
    }
  };
  sim.set_mac(0, std::make_unique<Beacon>());
  sim.set_mac(1, std::make_unique<IdleMac>());
  sim.set_mac(2, std::make_unique<IdleMac>());
  sim.set_mac(3, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.0, 4, 1.0, 2.0e4}}));
  sim.set_mac(4, std::make_unique<IdleMac>());
  sim.set_mac(5, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.005, 4, 1.0, 1.0e3}}));
  sim.run_until(1.0);
  EXPECT_EQ(sim.metrics().broadcasts_sent(), 1u);
  // Stations 1, 2 and 4 hear the beacon; 3 is transmitting throughout and 5
  // keys up mid-beacon (half-duplex kill).
  EXPECT_EQ(sim.metrics().broadcast_receptions(), 3u);
  // Both jammers' unicasts to 4 get through (each cancels the other + the
  // beacon).
  EXPECT_EQ(sim.metrics().hop_successes(), 2u);
  EXPECT_EQ(sim.metrics().total_hop_losses(), 0u);
  // The listeners' beacon SINR is thermal-limited for the whole airtime:
  // every jammer contribution was cancelled, whether it predated the beacon,
  // keyed up mid-flight, or ended mid-flight.
  int checked = 0;
  for (const auto& rx : rec.rxs) {
    if ((rx.rx == 1 || rx.rx == 2) && rx.delivered) {
      EXPECT_NEAR(rx.min_sinr, 0.5 / 1.0e-3, 1e-6);
      ++checked;
    }
  }
  EXPECT_EQ(checked, 2);
}

TEST(Broadcast, InjectToBroadcastIsRejected) {
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  Simulator sim(m, config_with(spread_criterion()));
  Packet p;
  p.source = 0;
  p.destination = kBroadcast;
  p.size_bits = 100.0;
  EXPECT_THROW(sim.inject(0.0, p), ContractViolation);
}

}  // namespace
}  // namespace drn::sim
