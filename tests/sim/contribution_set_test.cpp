// ContributionSet must return bit-identical top-k sums to the code it
// replaced: copy every contribution into a vector, partial_sort descending,
// then sum the first k in that order.
#include "sim/contribution_set.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/expects.hpp"
#include "common/rng.hpp"

namespace drn::sim {
namespace {

/// The replaced implementation, verbatim semantics: copy + partial_sort +
/// sum the k largest in descending order.
double sum_top_reference(const std::map<std::uint64_t, double>& contributions,
                         std::size_t k) {
  std::vector<double> watts;
  watts.reserve(contributions.size());
  for (const auto& [id, w] : contributions) watts.push_back(w);
  const std::size_t take = std::min(k, watts.size());
  std::partial_sort(watts.begin(),
                    watts.begin() + static_cast<std::ptrdiff_t>(take),
                    watts.end(), std::greater<>());
  double sum = 0.0;
  for (std::size_t i = 0; i < take; ++i) sum += watts[i];
  return sum;
}

TEST(ContributionSet, EmptyAndTrivialQueries) {
  ContributionSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0u);
  EXPECT_DOUBLE_EQ(set.sum_top(0).value(), 0.0);
  EXPECT_DOUBLE_EQ(set.sum_top(5).value(), 0.0);
  set.add(7, radio::Watts{2.5});
  EXPECT_DOUBLE_EQ(set.sum_top(0).value(), 0.0);
  EXPECT_DOUBLE_EQ(set.sum_top(1).value(), 2.5);
  EXPECT_DOUBLE_EQ(set.sum_top(99).value(), 2.5);
}

TEST(ContributionSet, DuplicateWattsEraseOnlyOneInstance) {
  ContributionSet set;
  set.add(1, radio::Watts{0.5});
  set.add(2, radio::Watts{0.5});  // identical contribution from a different transmission
  set.add(3, radio::Watts{0.25});
  set.erase(2);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_DOUBLE_EQ(set.sum_top(2).value(), 0.75);
  set.erase(42);  // absent id: no-op
  EXPECT_EQ(set.size(), 2u);
}

TEST(ContributionSet, RejectsDuplicateTransmissionIds) {
  ContributionSet set;
  set.add(9, radio::Watts{1.0});
  EXPECT_THROW(set.add(9, radio::Watts{2.0}), ContractViolation);
}

TEST(ContributionSet, MatchesPartialSortReferenceUnderChurn) {
  // Randomised adds/erases, checking every k against the replaced
  // copy-and-partial_sort code after each operation. Values are drawn from a
  // small set so duplicates are common (the hard case for the multiset).
  ContributionSet set;
  std::map<std::uint64_t, double> reference;
  Rng rng(321);
  std::uint64_t next_id = 1;
  for (int step = 0; step < 1500; ++step) {
    if (reference.empty() || rng() % 2 != 0) {
      const double w = 1.0e-6 * static_cast<double>(rng() % 8 + 1);
      const std::uint64_t id = next_id++;
      set.add(id, radio::Watts{w});
      reference.emplace(id, w);
    } else {
      auto it = reference.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng() % reference.size()));
      set.erase(it->first);
      reference.erase(it);
    }
    ASSERT_EQ(set.size(), reference.size());
    const std::size_t n = reference.size();
    for (const std::size_t k :
         {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{4},
          n / 2, n, n + 1}) {
      // Bit-identical, not just close: both sum the same descending values.
      ASSERT_EQ(set.sum_top(k).value(), sum_top_reference(reference, k))
          << "step " << step << " k " << k;
    }
  }
  set.clear();
  EXPECT_TRUE(set.empty());
  EXPECT_DOUBLE_EQ(set.sum_top(3).value(), 0.0);
}

}  // namespace
}  // namespace drn::sim
