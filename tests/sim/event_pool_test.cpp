#include "sim/event_pool.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/expects.hpp"

namespace drn::sim {
namespace {

Packet make_packet(std::uint64_t id) {
  Packet p;
  p.id = id;
  p.source = 1;
  p.destination = 2;
  return p;
}

TEST(EventPool, AllocGetTakeRoundTrip) {
  EventPool pool;
  const PacketHandle h = pool.alloc(make_packet(42));
  EXPECT_TRUE(pool.valid(h));
  EXPECT_EQ(pool.live(), 1u);
  EXPECT_EQ(pool.get(h).id, 42u);
  const Packet out = pool.take(h);
  EXPECT_EQ(out.id, 42u);
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_FALSE(pool.valid(h));
}

TEST(EventPool, SlotReusedAfterFree) {
  EventPool pool;
  const PacketHandle a = pool.alloc(make_packet(1));
  pool.release(a);
  const PacketHandle b = pool.alloc(make_packet(2));
  // LIFO free list: the slot comes straight back...
  EXPECT_EQ(b.slot, a.slot);
  // ...under a new generation, and holds the new payload.
  EXPECT_NE(b.generation, a.generation);
  EXPECT_EQ(pool.get(b).id, 2u);
  EXPECT_EQ(pool.capacity(), 1u);
}

TEST(EventPool, StaleHandleRejectedAfterReuse) {
  EventPool pool;
  const PacketHandle old = pool.alloc(make_packet(7));
  (void)pool.take(old);
  const PacketHandle fresh = pool.alloc(make_packet(8));
  ASSERT_EQ(fresh.slot, old.slot);  // aliased slot, different generation
  // The dangling handle must trap, not silently read packet 8.
  EXPECT_FALSE(pool.valid(old));
  EXPECT_THROW((void)pool.get(old), ContractViolation);
  EXPECT_THROW((void)pool.take(old), ContractViolation);
  EXPECT_THROW(pool.release(old), ContractViolation);
  // The live handle still works.
  EXPECT_EQ(pool.get(fresh).id, 8u);
}

TEST(EventPool, DoubleFreeTraps) {
  EventPool pool;
  const PacketHandle h = pool.alloc(make_packet(3));
  pool.release(h);
  EXPECT_THROW(pool.release(h), ContractViolation);
}

TEST(EventPool, OutOfRangeAndNeverArmedHandlesAreInvalid) {
  EventPool pool;
  PacketHandle junk{PacketHandle::kInvalidSlot, 0};
  EXPECT_FALSE(pool.valid(junk));
  EXPECT_THROW((void)pool.get(junk), ContractViolation);
  PacketHandle beyond{5, 0};
  EXPECT_FALSE(pool.valid(beyond));
  EXPECT_THROW((void)pool.get(beyond), ContractViolation);
}

TEST(EventPool, GrowsAndRecyclesUnderChurn) {
  // Exhaust-and-regrow: run many alloc/free waves; capacity must plateau at
  // the high-water mark, not grow per wave, and every payload must read back
  // exactly. (ASan-clean under the sanitizer CI matrix.)
  EventPool pool;
  for (int wave = 0; wave < 50; ++wave) {
    std::vector<PacketHandle> handles;
    for (std::uint64_t i = 0; i < 100; ++i)
      handles.push_back(pool.alloc(make_packet(wave * 1000 + i)));
    EXPECT_EQ(pool.live(), 100u);
    for (std::uint64_t i = 0; i < 100; ++i) {
      EXPECT_EQ(pool.get(handles[i]).id,
                static_cast<std::uint64_t>(wave) * 1000 + i);
      pool.release(handles[i]);
    }
    EXPECT_EQ(pool.live(), 0u);
  }
  EXPECT_EQ(pool.capacity(), 100u);
  EXPECT_EQ(pool.peak_live(), 100u);
}

TEST(EventPool, PeakLiveTracksHighWaterMark) {
  EventPool pool;
  const PacketHandle a = pool.alloc(make_packet(1));
  const PacketHandle b = pool.alloc(make_packet(2));
  pool.release(a);
  pool.release(b);
  (void)pool.alloc(make_packet(3));
  EXPECT_EQ(pool.peak_live(), 2u);
  EXPECT_EQ(pool.live(), 1u);
}

}  // namespace
}  // namespace drn::sim
