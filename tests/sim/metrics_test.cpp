#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include "common/expects.hpp"

namespace drn::sim {
namespace {

TEST(Metrics, StartsZeroed) {
  const Metrics m(4);
  EXPECT_EQ(m.offered(), 0u);
  EXPECT_EQ(m.hop_attempts(), 0u);
  EXPECT_EQ(m.hop_successes(), 0u);
  EXPECT_EQ(m.total_hop_losses(), 0u);
  EXPECT_EQ(m.delivered(), 0u);
  EXPECT_EQ(m.mac_drops(), 0u);
  EXPECT_DOUBLE_EQ(m.delivery_ratio(), 0.0);
}

TEST(Metrics, LossTaxonomyCounters) {
  Metrics m(2);
  m.record_hop_loss(LossType::kType1);
  m.record_hop_loss(LossType::kType2);
  m.record_hop_loss(LossType::kType2);
  m.record_hop_loss(LossType::kType3);
  EXPECT_EQ(m.losses(LossType::kType1), 1u);
  EXPECT_EQ(m.losses(LossType::kType2), 2u);
  EXPECT_EQ(m.losses(LossType::kType3), 1u);
  EXPECT_EQ(m.total_hop_losses(), 4u);
  EXPECT_THROW(m.record_hop_loss(LossType::kNone), ContractViolation);
}

TEST(Metrics, DeliveryRatio) {
  Metrics m(2);
  for (int i = 0; i < 4; ++i) m.record_offered();
  m.record_delivery(0.5, 1);
  m.record_delivery(1.5, 3);
  m.record_delivery(2.5, 2);
  EXPECT_DOUBLE_EQ(m.delivery_ratio(), 0.75);
  EXPECT_DOUBLE_EQ(m.delay().mean(), 1.5);
  EXPECT_DOUBLE_EQ(m.hops().mean(), 2.0);
}

TEST(Metrics, SinrMarginTracked) {
  Metrics m(2);
  m.record_hop_success(3.0);
  m.record_hop_success(5.0);
  EXPECT_EQ(m.hop_successes(), 2u);
  EXPECT_DOUBLE_EQ(m.sinr_margin_db().mean(), 4.0);
}

TEST(Metrics, AirtimeAndDutyCycle) {
  Metrics m(3);
  m.record_airtime(0, 2.0);
  m.record_airtime(0, 1.0);
  m.record_airtime(2, 6.0);
  EXPECT_DOUBLE_EQ(m.airtime_s(0), 3.0);
  EXPECT_DOUBLE_EQ(m.airtime_s(1), 0.0);
  EXPECT_DOUBLE_EQ(m.duty_cycle(0, 10.0), 0.3);
  EXPECT_DOUBLE_EQ(m.duty_cycle(2, 10.0), 0.6);
  EXPECT_DOUBLE_EQ(m.mean_duty_cycle(10.0), (3.0 + 0.0 + 6.0) / 30.0);
}

TEST(Metrics, BroadcastCounters) {
  Metrics m(2);
  m.record_broadcast();
  m.record_broadcast();
  m.record_broadcast_reception();
  EXPECT_EQ(m.broadcasts_sent(), 2u);
  EXPECT_EQ(m.broadcast_receptions(), 1u);
  // Broadcasts never contaminate the unicast hop accounting.
  EXPECT_EQ(m.hop_attempts(), 0u);
  EXPECT_EQ(m.hop_successes(), 0u);
}

TEST(Metrics, Contracts) {
  EXPECT_THROW(Metrics(0), ContractViolation);
  Metrics m(2);
  EXPECT_THROW(m.record_airtime(2, 1.0), ContractViolation);
  EXPECT_THROW(m.record_airtime(0, -1.0), ContractViolation);
  EXPECT_THROW((void)m.duty_cycle(0, 0.0), ContractViolation);
}

}  // namespace
}  // namespace drn::sim
