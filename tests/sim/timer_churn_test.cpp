// Regression test: stale-timer accumulation under sustained churn.
//
// Before the event-core rewrite, a torn-down station's pending timers were
// left riding the queue to a drop-at-pop; a MAC that arms far-future timers
// (the scheme's plan timers, eviction sweeps) leaked one queue entry per
// churn cycle, so a long-running churned simulation grew its heap without
// bound. Teardown now cancels the dead MAC's timers through
// EventQueue::cancel and tombstone compaction keeps the heap physically
// small; this test soaks 10^4 churn cycles and pins the queue's high-water
// mark at a small constant.
#include <gtest/gtest.h>

#include <memory>

#include "radio/units.hpp"
#include "sim/simulator.hpp"

namespace drn::sim {
namespace {

/// Arms one timer far beyond the end of the simulation on every start —
/// the worst case for teardown: the timer never fires on its own.
class FarTimerMac final : public MacProtocol {
 public:
  void on_start(MacContext& ctx) override {
    (void)ctx.set_timer(ctx.now() + 1.0e6, /*cookie=*/1);
  }
  void on_enqueue(MacContext&, const Packet&, StationId) override {}
};

TEST(TimerChurnSoak, PeakQueueSizeBoundedOverTenThousandCycles) {
  radio::PropagationMatrix m(2);
  SimulatorConfig cfg{radio::ReceptionCriterion(radio::Hertz{1.0e6},
                                                radio::BitsPerSecond{1.0e6},
                                                radio::Decibels{0.0})};
  cfg.thermal_noise_w = 1.0e-15;
  Simulator sim(m, cfg);
  sim.set_mac(0, std::make_unique<FarTimerMac>());
  sim.set_mac(1, std::make_unique<FarTimerMac>());
  sim.run_until(0.0);  // starts both MACs; two far-future timers pending

  constexpr int kCycles = 10000;
  for (int i = 0; i < kCycles; ++i) {
    sim.deactivate_station(1);
    sim.activate_station(1, std::make_unique<FarTimerMac>());
  }

  const auto qs = sim.queue_stats();
  // Exactly the two live timers survive...
  EXPECT_EQ(qs.pending, 2u);
  // ...and the heap never grew past a small constant. The pre-rewrite
  // behaviour (one stale entry per cycle) peaks at ~kCycles entries.
  EXPECT_LT(qs.peak_entries, 64u);
  EXPECT_GT(qs.compactions, 0u);

  // The survivor timers are real: they still fire.
  sim.run_until(2.0e6);
  EXPECT_EQ(sim.queue_stats().pending, 0u);
}

}  // namespace
}  // namespace drn::sim
