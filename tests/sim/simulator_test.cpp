#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "baselines/aloha.hpp"
#include "common/expects.hpp"
#include "helpers/test_macs.hpp"
#include "radio/units.hpp"
#include "sim/traffic.hpp"

namespace drn::sim {
namespace {

using drn::testing::IdleMac;
using drn::testing::ScriptMac;
using drn::testing::ScriptedTx;

// A criterion with required SINR exactly 1.0 (0 dB): C/W = 1, margin 0 dB.
radio::ReceptionCriterion zero_db_criterion() {
  return radio::ReceptionCriterion(radio::Hertz{1.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{0.0});
}

// A spread-spectrum criterion tolerating -17 dB SINR (C/W = 0.005, 20 dB
// processing gain is implicit in the rate, 5 dB margin).
radio::ReceptionCriterion spread_criterion() {
  return radio::ReceptionCriterion(radio::Hertz{200.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{5.0});
}

SimulatorConfig config_with(radio::ReceptionCriterion crit,
                            double thermal_w = 1.0e-15) {
  SimulatorConfig cfg{crit};
  cfg.thermal_noise_w = thermal_w;
  return cfg;
}

// Three stations on a line; gains set explicitly per test.
radio::PropagationMatrix matrix3() { return radio::PropagationMatrix(3); }

TEST(Simulator, CleanTransmissionDelivered) {
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{0.5});
  Simulator sim(m, config_with(zero_db_criterion()));
  sim.set_mac(0, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.0, 1, 1.0, 1.0e4}}));
  sim.set_mac(1, std::make_unique<IdleMac>());
  sim.run_until(1.0);
  EXPECT_EQ(sim.metrics().hop_attempts(), 1u);
  EXPECT_EQ(sim.metrics().hop_successes(), 1u);
  EXPECT_EQ(sim.metrics().delivered(), 1u);
  EXPECT_EQ(sim.metrics().total_hop_losses(), 0u);
  // Airtime: 1e4 bits at 1e6 b/s = 10 ms.
  EXPECT_DOUBLE_EQ(sim.metrics().airtime_s(0), 0.01);
}

TEST(Simulator, TooWeakSignalIsType1Loss) {
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0e-3});
  // Thermal floor high enough that SNR = 1e-3/1e-2 < 1.
  auto cfg = config_with(zero_db_criterion(), /*thermal_w=*/1.0e-2);
  Simulator sim(m, cfg);
  sim.set_mac(0, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.0, 1, 1.0, 1.0e4}}));
  sim.set_mac(1, std::make_unique<IdleMac>());
  sim.run_until(1.0);
  EXPECT_EQ(sim.metrics().hop_successes(), 0u);
  EXPECT_EQ(sim.metrics().losses(LossType::kType1), 1u);
}

TEST(Simulator, ThirdPartyInterferenceMidPacketIsType1) {
  // Station 2 (sending to 3) blasts receiver 1 halfway through 0->1's packet.
  radio::PropagationMatrix m(4);
  m.set_gain(0, 1, radio::LinearGain{1.0});    // desired link
  m.set_gain(1, 2, radio::LinearGain{10.0});   // interferer very strong at receiver 1
  m.set_gain(2, 3, radio::LinearGain{1.0});    // interferer's own link
  Simulator sim(m, config_with(zero_db_criterion()));
  sim.set_mac(0, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.0, 1, 1.0, 1.0e4}}));  // 10 ms packet
  sim.set_mac(1, std::make_unique<IdleMac>());
  sim.set_mac(2, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.005, 3, 1.0, 1.0e3}}));  // addressed elsewhere
  sim.set_mac(3, std::make_unique<IdleMac>());
  sim.run_until(1.0);
  EXPECT_EQ(sim.metrics().losses(LossType::kType1), 1u);
  EXPECT_EQ(sim.metrics().hop_successes(), 1u);  // the interferer's own packet
}

TEST(Simulator, SimultaneousSendersHighThresholdBothLostAsType2) {
  // Two equal-power senders to one receiver, required SINR 0 dB: each sees
  // SINR ~ 1 (not > 1), so both fail; classification is Type 2.
  auto m = matrix3();
  m.set_gain(2, 0, radio::LinearGain{1.0});
  m.set_gain(2, 1, radio::LinearGain{1.0});
  m.set_gain(0, 1, radio::LinearGain{1e-9});
  Simulator sim(m, config_with(zero_db_criterion()));
  sim.set_mac(0, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.0, 2, 1.0, 1.0e4}}));
  sim.set_mac(1, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.001, 2, 1.0, 1.0e4}}));
  sim.set_mac(2, std::make_unique<IdleMac>());
  sim.run_until(1.0);
  EXPECT_EQ(sim.metrics().hop_successes(), 0u);
  EXPECT_EQ(sim.metrics().losses(LossType::kType2), 2u);
}

TEST(Simulator, SpreadSpectrumReceivesConcurrentSenders) {
  // Section 5: with spread spectrum (low required SINR) and parallel
  // despreading channels, simultaneous senders to one station all succeed.
  auto m = matrix3();
  m.set_gain(2, 0, radio::LinearGain{1.0});
  m.set_gain(2, 1, radio::LinearGain{1.0});
  m.set_gain(0, 1, radio::LinearGain{1e-9});
  Simulator sim(m, config_with(spread_criterion()));
  sim.set_mac(0, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.0, 2, 1.0, 1.0e4}}));
  sim.set_mac(1, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.001, 2, 1.0, 1.0e4}}));
  sim.set_mac(2, std::make_unique<IdleMac>());
  sim.run_until(1.0);
  EXPECT_EQ(sim.metrics().hop_successes(), 2u);
  EXPECT_EQ(sim.metrics().total_hop_losses(), 0u);
}

TEST(Simulator, DespreadingChannelExhaustionIsType2) {
  auto m = matrix3();
  m.set_gain(2, 0, radio::LinearGain{1.0});
  m.set_gain(2, 1, radio::LinearGain{1.0});
  m.set_gain(0, 1, radio::LinearGain{1e-9});
  auto cfg = config_with(spread_criterion());
  cfg.despreading_channels = 1;
  Simulator sim(m, cfg);
  sim.set_mac(0, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.0, 2, 1.0, 1.0e4}}));
  sim.set_mac(1, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.001, 2, 1.0, 1.0e4}}));
  sim.set_mac(2, std::make_unique<IdleMac>());
  sim.run_until(1.0);
  EXPECT_EQ(sim.metrics().hop_successes(), 1u);
  EXPECT_EQ(sim.metrics().losses(LossType::kType2), 1u);
}

TEST(Simulator, ReceiverTransmittingMidPacketIsType3) {
  auto m = matrix3();
  m.set_gain(1, 0, radio::LinearGain{1.0});
  m.set_gain(1, 2, radio::LinearGain{1.0});
  m.set_gain(0, 2, radio::LinearGain{1e-9});
  Simulator sim(m, config_with(spread_criterion()));
  // 0 sends to 1 (10 ms); 1 starts its own transmission to 2 at 5 ms.
  sim.set_mac(0, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.0, 1, 1.0, 1.0e4}}));
  sim.set_mac(1, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.005, 2, 1.0, 1.0e3}}));
  sim.set_mac(2, std::make_unique<IdleMac>());
  sim.run_until(1.0);
  EXPECT_EQ(sim.metrics().losses(LossType::kType3), 1u);
  EXPECT_EQ(sim.metrics().hop_successes(), 1u);  // 1 -> 2 succeeds
}

TEST(Simulator, ReceiverAlreadyTransmittingIsType3) {
  auto m = matrix3();
  m.set_gain(1, 0, radio::LinearGain{1.0});
  m.set_gain(1, 2, radio::LinearGain{1.0});
  m.set_gain(0, 2, radio::LinearGain{1e-9});
  Simulator sim(m, config_with(spread_criterion()));
  // 1 transmits 0-10 ms; 0's packet to 1 arrives at 2 ms.
  sim.set_mac(1, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.0, 2, 1.0, 1.0e4}}));
  sim.set_mac(0, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.002, 1, 1.0, 1.0e3}}));
  sim.set_mac(2, std::make_unique<IdleMac>());
  sim.run_until(1.0);
  EXPECT_EQ(sim.metrics().losses(LossType::kType3), 1u);
}

TEST(Simulator, BackToBackTransmissionsDoNotSelfCollide) {
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  Simulator sim(m, config_with(zero_db_criterion()));
  // Two 10 ms packets, the second starting exactly when the first ends.
  sim.set_mac(0, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.0, 1, 1.0, 1.0e4}, {0.01, 1, 1.0, 1.0e4}}));
  sim.set_mac(1, std::make_unique<IdleMac>());
  sim.run_until(1.0);
  EXPECT_EQ(sim.metrics().hop_successes(), 2u);
  EXPECT_EQ(sim.metrics().total_hop_losses(), 0u);
}

TEST(Simulator, OverlappingOwnTransmissionsViolateContract) {
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  Simulator sim(m, config_with(zero_db_criterion()));
  sim.set_mac(0, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.0, 1, 1.0, 1.0e4}, {0.005, 1, 1.0, 1.0e4}}));
  sim.set_mac(1, std::make_unique<IdleMac>());
  EXPECT_THROW(sim.run_until(1.0), ContractViolation);
}

TEST(Simulator, ForwardingFollowsRouter) {
  // Chain 0 -> 1 -> 2 using ALOHA senders (no contention here).
  auto m = matrix3();
  m.set_gain(0, 1, radio::LinearGain{1.0});
  m.set_gain(1, 2, radio::LinearGain{1.0});
  m.set_gain(0, 2, radio::LinearGain{1e-12});  // no direct path
  Simulator sim(m, config_with(spread_criterion()));
  baselines::ContentionConfig cc;
  for (StationId s = 0; s < 3; ++s)
    sim.set_mac(s, std::make_unique<baselines::PureAloha>(cc));
  sim.set_router([](StationId at, StationId dst) -> StationId {
    if (at == 0 && dst == 2) return 1;
    return dst;
  });
  Packet p;
  p.source = 0;
  p.destination = 2;
  p.size_bits = 1.0e4;
  sim.inject(0.0, p);
  sim.run_until(1.0);
  EXPECT_EQ(sim.metrics().offered(), 1u);
  EXPECT_EQ(sim.metrics().delivered(), 1u);
  EXPECT_DOUBLE_EQ(sim.metrics().hops().mean(), 2.0);
  // Delay: two 10 ms hops back to back.
  EXPECT_NEAR(sim.metrics().delay().mean(), 0.02, 1e-9);
}

TEST(Simulator, NoRouteDropsPacket) {
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  Simulator sim(m, config_with(zero_db_criterion()));
  sim.set_mac(0, std::make_unique<IdleMac>());
  sim.set_mac(1, std::make_unique<IdleMac>());
  sim.set_router([](StationId, StationId) { return kNoStation; });
  Packet p;
  p.source = 0;
  p.destination = 1;
  p.size_bits = 100.0;
  sim.inject(0.0, p);
  sim.run_until(1.0);
  EXPECT_EQ(sim.metrics().mac_drops(), 1u);
  EXPECT_EQ(sim.metrics().delivered(), 0u);
}

TEST(Simulator, InjectContracts) {
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  Simulator sim(m, config_with(zero_db_criterion()));
  Packet p;
  p.source = 0;
  p.destination = 0;  // self-addressed
  p.size_bits = 100.0;
  EXPECT_THROW(sim.inject(0.0, p), ContractViolation);
  p.destination = 5;  // out of range
  EXPECT_THROW(sim.inject(0.0, p), ContractViolation);
  p.destination = 1;
  p.size_bits = 0.0;
  EXPECT_THROW(sim.inject(0.0, p), ContractViolation);
}

TEST(Simulator, RunRequiresAllMacs) {
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  Simulator sim(m, config_with(zero_db_criterion()));
  sim.set_mac(0, std::make_unique<IdleMac>());
  EXPECT_THROW(sim.run_until(1.0), ContractViolation);
}

TEST(Simulator, SinrMarginMatchesHandComputation) {
  // Single clean link: margin_db = 10 log10((S/N)/required).
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{0.5});
  auto cfg = config_with(zero_db_criterion(), /*thermal_w=*/0.05);
  Simulator sim(m, cfg);
  sim.set_mac(0, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.0, 1, 1.0, 1.0e4}}));
  sim.set_mac(1, std::make_unique<IdleMac>());
  sim.run_until(1.0);
  ASSERT_EQ(sim.metrics().hop_successes(), 1u);
  // S = 0.5, N = 0.05, required = 1.0 -> margin = 10 dB.
  EXPECT_NEAR(sim.metrics().sinr_margin_db().mean(), 10.0, 1e-9);
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run_once = [] {
    auto m = matrix3();
    m.set_gain(0, 1, radio::LinearGain{1.0});
    m.set_gain(1, 2, radio::LinearGain{1.0});
    m.set_gain(0, 2, radio::LinearGain{0.1});
    Simulator sim(m, config_with(spread_criterion()));
    baselines::ContentionConfig cc;
    for (StationId s = 0; s < 3; ++s)
      sim.set_mac(s, std::make_unique<baselines::PureAloha>(cc));
    Rng rng(17);
    for (const auto& inj :
         poisson_traffic(200.0, 2.0, 1.0e4, uniform_pairs(3), rng))
      sim.inject(inj.time_s, inj.packet);
    sim.run_until(5.0);
    return std::tuple{sim.metrics().hop_attempts(),
                      sim.metrics().hop_successes(),
                      sim.metrics().delivered()};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Simulator, RunUntilIsResumable) {
  // Split a run into many short run_until windows: the outcome must be
  // identical to one long run (events straddle window boundaries).
  auto run_split = [](bool split) {
    radio::PropagationMatrix m(2);
    m.set_gain(0, 1, radio::LinearGain{1.0});
    Simulator sim(m, config_with(zero_db_criterion()));
    sim.set_mac(0, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                       {0.003, 1, 1.0, 1.0e4},
                       {0.021, 1, 1.0, 1.0e4},
                       {0.047, 1, 1.0, 1.0e4}}));
    sim.set_mac(1, std::make_unique<IdleMac>());
    if (split) {
      for (double t = 0.001; t <= 0.1; t += 0.001) sim.run_until(t);
    } else {
      sim.run_until(0.1);
    }
    return std::tuple{sim.metrics().hop_successes(),
                      sim.metrics().delivered(),
                      sim.metrics().airtime_s(0)};
  };
  EXPECT_EQ(run_split(true), run_split(false));
}

TEST(Simulator, InjectAfterPartialRunWorks) {
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  Simulator sim(m, config_with(zero_db_criterion()));
  sim.set_mac(0, std::make_unique<baselines::PureAloha>(
                     baselines::ContentionConfig{}));
  sim.set_mac(1, std::make_unique<IdleMac>());
  Packet p;
  p.source = 0;
  p.destination = 1;
  p.size_bits = 1.0e4;
  sim.inject(0.0, p);
  sim.run_until(0.5);
  EXPECT_EQ(sim.metrics().delivered(), 1u);
  sim.inject(0.6, p);  // injection into an already-running simulation
  sim.run_until(1.0);
  EXPECT_EQ(sim.metrics().delivered(), 2u);
  // Injecting into the past is rejected.
  EXPECT_THROW(sim.inject(0.2, p), ContractViolation);
}

TEST(Simulator, InjectedPacketIdsNeverCollideWithGeneratedOnes) {
  // handle_inject: a caller-supplied nonzero Packet::id used to leave
  // next_packet_id_ untouched, so a later zero-id injection could be handed
  // the same id and corrupt exactly-once accounting. The generator must
  // advance past every injected id.
  class IdRecorder final : public SimObserver {
   public:
    std::vector<PacketId> ids;
    void on_transmit_start(const TxEvent& tx) override {
      ids.push_back(tx.packet);
    }
  };
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  Simulator sim(m, config_with(zero_db_criterion()));
  IdRecorder rec;
  sim.set_observer(&rec);
  sim.set_mac(0, std::make_unique<baselines::PureAloha>(
                     baselines::ContentionConfig{}));
  sim.set_mac(1, std::make_unique<IdleMac>());
  Packet p;
  p.source = 0;
  p.destination = 1;
  p.size_bits = 1.0e4;
  p.id = 5;  // caller-chosen id ahead of the generator (which starts at 1)
  sim.inject(0.0, p);
  p.id = 0;  // six generated ids; the fifth used to collide with 5
  for (int i = 1; i <= 6; ++i) sim.inject(0.05 * i, p);
  sim.run_until(2.0);
  ASSERT_EQ(rec.ids.size(), 7u);
  std::set<PacketId> unique(rec.ids.begin(), rec.ids.end());
  EXPECT_EQ(unique.size(), 7u) << "duplicate packet id on the air";
  EXPECT_EQ(sim.metrics().offered(), 7u);
  EXPECT_EQ(sim.metrics().delivered(), 7u);
}

TEST(Simulator, ActiveTransmissionCountTracksAir) {
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  Simulator sim(m, config_with(zero_db_criterion()));
  sim.set_mac(0, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.0, 1, 1.0, 1.0e4}}));
  sim.set_mac(1, std::make_unique<IdleMac>());
  sim.run_until(0.005);
  EXPECT_EQ(sim.active_transmissions(), 1u);
  sim.run_until(0.02);
  EXPECT_EQ(sim.active_transmissions(), 0u);
}

// set_observer historically cleared the WHOLE observer list, silently
// detaching auditors installed via add_observer. It must own exactly one
// slot: replace/clear only what it installed itself.
TEST(Simulator, SetObserverDoesNotEvictAddedObservers) {
  class Counter final : public SimObserver {
   public:
    int tx_starts = 0;
    void on_transmit_start(const TxEvent&) override { ++tx_starts; }
  };

  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  Simulator sim(m, config_with(zero_db_criterion()));
  sim.set_mac(0, std::make_unique<ScriptMac>(std::vector<ScriptedTx>{
                     {0.0, 1, 1.0, 1.0e4}, {0.1, 1, 1.0, 1.0e4},
                     {0.2, 1, 1.0, 1.0e4}}));
  sim.set_mac(1, std::make_unique<IdleMac>());

  Counter auditor;          // an add_observer client (e.g. InvariantAuditor)
  Counter first, second;    // successive set_observer clients (e.g. traces)
  sim.add_observer(&auditor);
  sim.set_observer(&first);
  sim.run_until(0.05);
  EXPECT_EQ(auditor.tx_starts, 1);
  EXPECT_EQ(first.tx_starts, 1);

  // Replacing the set_observer slot must leave the auditor attached...
  sim.set_observer(&second);
  sim.run_until(0.15);
  EXPECT_EQ(auditor.tx_starts, 2) << "add_observer client was evicted";
  EXPECT_EQ(first.tx_starts, 1) << "replaced observer still notified";
  EXPECT_EQ(second.tx_starts, 1);

  // ...and so must clearing it.
  sim.set_observer(nullptr);
  sim.run_until(0.25);
  EXPECT_EQ(auditor.tx_starts, 3) << "add_observer client was evicted";
  EXPECT_EQ(second.tx_starts, 1) << "cleared observer still notified";
}

}  // namespace
}  // namespace drn::sim
