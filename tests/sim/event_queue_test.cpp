#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/expects.hpp"
#include "common/rng.hpp"

namespace drn::sim {
namespace {

Event make(double t, EventKind k, std::uint64_t id = 0) {
  Event e;
  e.time_s = t;
  e.kind = k;
  e.tx_id = id;
  return e;
}

TEST(EventQueue, EmptyBehaviour) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_THROW((void)q.next_time(), ContractViolation);
  EXPECT_THROW((void)q.pop(), ContractViolation);
}

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  q.push(make(3.0, EventKind::kTimer));
  q.push(make(1.0, EventKind::kTimer));
  q.push(make(2.0, EventKind::kTimer));
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  EXPECT_DOUBLE_EQ(q.pop().time_s, 1.0);
  EXPECT_DOUBLE_EQ(q.pop().time_s, 2.0);
  EXPECT_DOUBLE_EQ(q.pop().time_s, 3.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EndBeforeStartAtSameInstant) {
  // The physics requires: a transmission ending at t is processed before one
  // starting at t (back-to-back transmissions must not overlap).
  EventQueue q;
  q.push(make(5.0, EventKind::kTransmitStart, 2));
  q.push(make(5.0, EventKind::kTransmitEnd, 1));
  EXPECT_EQ(q.pop().kind, EventKind::kTransmitEnd);
  EXPECT_EQ(q.pop().kind, EventKind::kTransmitStart);
}

TEST(EventQueue, FullKindPriorityOrder) {
  EventQueue q;
  q.push(make(1.0, EventKind::kTransmitStart));
  q.push(make(1.0, EventKind::kInject));
  q.push(make(1.0, EventKind::kTimer));
  q.push(make(1.0, EventKind::kTransmitEnd));
  EXPECT_EQ(q.pop().kind, EventKind::kTransmitEnd);
  EXPECT_EQ(q.pop().kind, EventKind::kTimer);
  EXPECT_EQ(q.pop().kind, EventKind::kInject);
  EXPECT_EQ(q.pop().kind, EventKind::kTransmitStart);
}

TEST(EventQueue, FifoAmongIdenticalEvents) {
  EventQueue q;
  for (std::uint64_t i = 0; i < 10; ++i)
    q.push(make(1.0, EventKind::kTimer, i));
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(q.pop().tx_id, i);
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue q;
  q.push(make(2.0, EventKind::kTimer, 2));
  q.push(make(1.0, EventKind::kTimer, 1));
  EXPECT_EQ(q.pop().tx_id, 1u);
  q.push(make(0.5, EventKind::kTimer, 3));
  EXPECT_EQ(q.pop().tx_id, 3u);
  EXPECT_EQ(q.pop().tx_id, 2u);
}

TEST(EventQueue, PropertyMatchesReferenceSort) {
  // Random soup of events: popping everything must yield exactly the stable
  // sort by (time, kind, insertion order).
  drn::Rng rng(31337);
  EventQueue q;
  struct Ref {
    double t;
    EventKind k;
    std::uint64_t seq;
  };
  std::vector<Ref> ref;
  for (std::uint64_t i = 0; i < 3000; ++i) {
    Event e;
    // Coarse times so ties are common.
    e.time_s = static_cast<double>(rng.uniform_index(50));
    e.kind = static_cast<EventKind>(rng.uniform_index(4));
    e.tx_id = i;
    q.push(e);
    ref.push_back({e.time_s, e.kind, i});
  }
  std::stable_sort(ref.begin(), ref.end(), [](const Ref& a, const Ref& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.k < b.k;
  });
  for (const Ref& r : ref) {
    const Event e = q.pop();
    EXPECT_DOUBLE_EQ(e.time_s, r.t);
    EXPECT_EQ(e.kind, r.k);
    EXPECT_EQ(e.tx_id, r.seq);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SizeTracksContents) {
  EventQueue q;
  q.push(make(1.0, EventKind::kTimer));
  q.push(make(2.0, EventKind::kTimer));
  EXPECT_EQ(q.size(), 2u);
  (void)q.pop();
  EXPECT_EQ(q.size(), 1u);
}

}  // namespace
}  // namespace drn::sim
