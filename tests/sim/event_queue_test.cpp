#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/expects.hpp"
#include "common/rng.hpp"

namespace drn::sim {
namespace {

Event make(double t, EventKind k, std::uint64_t id = 0) {
  Event e;
  e.time_s = t;
  e.kind = k;
  e.tx_id = id;
  return e;
}

TEST(EventQueue, EmptyBehaviour) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_THROW((void)q.next_time(), ContractViolation);
  EXPECT_THROW((void)q.pop(), ContractViolation);
}

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  q.push(make(3.0, EventKind::kTimer));
  q.push(make(1.0, EventKind::kTimer));
  q.push(make(2.0, EventKind::kTimer));
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  EXPECT_DOUBLE_EQ(q.pop().time_s, 1.0);
  EXPECT_DOUBLE_EQ(q.pop().time_s, 2.0);
  EXPECT_DOUBLE_EQ(q.pop().time_s, 3.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EndBeforeStartAtSameInstant) {
  // The physics requires: a transmission ending at t is processed before one
  // starting at t (back-to-back transmissions must not overlap).
  EventQueue q;
  q.push(make(5.0, EventKind::kTransmitStart, 2));
  q.push(make(5.0, EventKind::kTransmitEnd, 1));
  EXPECT_EQ(q.pop().kind, EventKind::kTransmitEnd);
  EXPECT_EQ(q.pop().kind, EventKind::kTransmitStart);
}

TEST(EventQueue, FullKindPriorityOrder) {
  EventQueue q;
  q.push(make(1.0, EventKind::kTransmitStart));
  q.push(make(1.0, EventKind::kInject));
  q.push(make(1.0, EventKind::kTimer));
  q.push(make(1.0, EventKind::kTransmitEnd));
  EXPECT_EQ(q.pop().kind, EventKind::kTransmitEnd);
  EXPECT_EQ(q.pop().kind, EventKind::kTimer);
  EXPECT_EQ(q.pop().kind, EventKind::kInject);
  EXPECT_EQ(q.pop().kind, EventKind::kTransmitStart);
}

TEST(EventQueue, FifoAmongIdenticalEvents) {
  EventQueue q;
  for (std::uint64_t i = 0; i < 10; ++i)
    q.push(make(1.0, EventKind::kTimer, i));
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(q.pop().tx_id, i);
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue q;
  q.push(make(2.0, EventKind::kTimer, 2));
  q.push(make(1.0, EventKind::kTimer, 1));
  EXPECT_EQ(q.pop().tx_id, 1u);
  q.push(make(0.5, EventKind::kTimer, 3));
  EXPECT_EQ(q.pop().tx_id, 3u);
  EXPECT_EQ(q.pop().tx_id, 2u);
}

TEST(EventQueue, PropertyMatchesReferenceSort) {
  // Random soup of events: popping everything must yield exactly the stable
  // sort by (time, kind, insertion order).
  drn::Rng rng(31337);
  EventQueue q;
  struct Ref {
    double t;
    EventKind k;
    std::uint64_t seq;
  };
  std::vector<Ref> ref;
  for (std::uint64_t i = 0; i < 3000; ++i) {
    Event e;
    // Coarse times so ties are common.
    e.time_s = static_cast<double>(rng.uniform_index(50));
    e.kind = static_cast<EventKind>(rng.uniform_index(4));
    e.tx_id = i;
    q.push(e);
    ref.push_back({e.time_s, e.kind, i});
  }
  std::stable_sort(ref.begin(), ref.end(), [](const Ref& a, const Ref& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.k < b.k;
  });
  for (const Ref& r : ref) {
    const Event e = q.pop();
    EXPECT_DOUBLE_EQ(e.time_s, r.t);
    EXPECT_EQ(e.kind, r.k);
    EXPECT_EQ(e.tx_id, r.seq);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SizeTracksContents) {
  EventQueue q;
  q.push(make(1.0, EventKind::kTimer));
  q.push(make(2.0, EventKind::kTimer));
  EXPECT_EQ(q.size(), 2u);
  (void)q.pop();
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelRemovesEventFromPopStream) {
  EventQueue q;
  const EventHandle a = q.push(make(1.0, EventKind::kTimer, 1));
  const EventHandle b = q.push(make(2.0, EventKind::kTimer, 2));
  q.push(make(3.0, EventKind::kTimer, 3));
  EXPECT_TRUE(q.pending(a));
  EXPECT_TRUE(q.cancel(b));
  EXPECT_FALSE(q.pending(b));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().tx_id, 1u);
  EXPECT_EQ(q.pop().tx_id, 3u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelOfTopKeepsNextTimeLive) {
  // next_time() must always report the earliest LIVE event, even right
  // after the heap top is cancelled.
  EventQueue q;
  const EventHandle top = q.push(make(1.0, EventKind::kTimer, 1));
  q.push(make(5.0, EventKind::kTimer, 2));
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  EXPECT_TRUE(q.cancel(top));
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
  EXPECT_EQ(q.pop().tx_id, 2u);
}

TEST(EventQueue, CancelledHandleIsDeadForever) {
  EventQueue q;
  const EventHandle h = q.push(make(1.0, EventKind::kTimer, 1));
  EXPECT_TRUE(q.cancel(h));
  // Second cancel of the same handle: a no-op reporting false, not a trap —
  // callers legitimately cancel handles that may have already fired.
  EXPECT_FALSE(q.cancel(h));
  EXPECT_FALSE(q.pending(h));
}

TEST(EventQueue, PoppedHandleCannotBeCancelled) {
  EventQueue q;
  const EventHandle h = q.push(make(1.0, EventKind::kTimer, 1));
  (void)q.pop();
  EXPECT_FALSE(q.pending(h));
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, RecycledSlotRejectsOldHandle) {
  // Pop frees the slot; the next push reuses it under a new generation. The
  // stale handle must not cancel the newcomer.
  EventQueue q;
  const EventHandle old = q.push(make(1.0, EventKind::kTimer, 1));
  (void)q.pop();
  const EventHandle fresh = q.push(make(2.0, EventKind::kTimer, 2));
  ASSERT_EQ(fresh.slot, old.slot);
  ASSERT_NE(fresh.generation, old.generation);
  EXPECT_FALSE(q.cancel(old));
  EXPECT_TRUE(q.pending(fresh));
  EXPECT_EQ(q.pop().tx_id, 2u);
}

TEST(EventQueue, NeverArmedHandleIsInert) {
  EventQueue q;
  EventHandle h;  // default: not armed
  EXPECT_FALSE(h.armed());
  EXPECT_FALSE(q.pending(h));
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, PopIfBefore) {
  EventQueue q;
  EXPECT_FALSE(q.pop_if_before(100.0).has_value());  // empty queue
  q.push(make(1.0, EventKind::kTimer, 1));
  q.push(make(2.0, EventKind::kTimer, 2));
  // Boundary is inclusive: an event AT the horizon pops.
  const auto a = q.pop_if_before(1.0);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->tx_id, 1u);
  // The next event is beyond the horizon: nothing pops, nothing is lost.
  EXPECT_FALSE(q.pop_if_before(1.5).has_value());
  EXPECT_EQ(q.size(), 1u);
  const auto b = q.pop_if_before(2.0);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->tx_id, 2u);
}

TEST(EventQueue, PopIfBeforeSkipsCancelledTop) {
  EventQueue q;
  const EventHandle h = q.push(make(1.0, EventKind::kTimer, 1));
  q.push(make(5.0, EventKind::kTimer, 2));
  EXPECT_TRUE(q.cancel(h));
  // The cancelled 1.0 event must not satisfy the horizon test.
  EXPECT_FALSE(q.pop_if_before(3.0).has_value());
  const auto e = q.pop_if_before(5.0);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->tx_id, 2u);
}

TEST(EventQueue, CompactionReclaimsDeadEntries) {
  // Cancel well over half the queue (never the top, so the lazy-tombstone
  // path — not top-pruning — absorbs every cancel): once dead entries
  // outnumber live ones, compaction must fire and physically shrink the
  // heap, and the survivors must still pop in order.
  EventQueue q;
  std::vector<EventHandle> handles;
  for (std::uint64_t i = 0; i < 100; ++i)
    handles.push_back(q.push(make(static_cast<double>(i), EventKind::kTimer, i)));
  for (std::uint64_t i = 30; i < 100; ++i) EXPECT_TRUE(q.cancel(handles[i]));
  EXPECT_EQ(q.size(), 30u);
  EXPECT_GE(q.compactions(), 1u);
  EXPECT_LT(q.heap_entries(), 100u);  // dead entries actually left the heap
  for (std::uint64_t i = 0; i < 30; ++i) EXPECT_EQ(q.pop().tx_id, i);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PeakStatsTrackHighWaterMark) {
  EventQueue q;
  for (std::uint64_t i = 0; i < 10; ++i)
    q.push(make(static_cast<double>(i), EventKind::kTimer, i));
  while (!q.empty()) (void)q.pop();
  EXPECT_EQ(q.peak_entries(), 10u);
  EXPECT_GT(q.peak_bytes(), 0u);
  q.push(make(1.0, EventKind::kTimer));
  EXPECT_EQ(q.peak_entries(), 10u);  // not reset by draining
}

TEST(EventQueue, PropertyMatchesReferenceSortWithInterleavedCancels) {
  // Random pushes, pops and cancels against a reference model: the queue
  // must deliver exactly the uncancelled events in (time, kind, seq) order.
  drn::Rng rng(90210);
  EventQueue q;
  struct Ref {
    double t;
    EventKind k;
    std::uint64_t seq;
  };
  std::vector<Ref> ref;                 // everything ever pushed
  std::vector<EventHandle> handles;     // parallel to ref
  std::vector<bool> cancelled;          // parallel to ref
  std::vector<std::uint64_t> popped;    // ids observed from the queue
  for (std::uint64_t i = 0; i < 4000; ++i) {
    const auto dice = rng.uniform_index(10);
    if (dice < 6) {
      Event e;
      e.time_s = static_cast<double>(rng.uniform_index(40));
      e.kind = static_cast<EventKind>(rng.uniform_index(4));
      e.tx_id = ref.size();
      handles.push_back(q.push(e));
      ref.push_back({e.time_s, e.kind, e.tx_id});
      cancelled.push_back(false);
    } else if (dice < 8 && !handles.empty()) {
      const auto victim = rng.uniform_index(handles.size());
      if (q.cancel(handles[victim])) cancelled[victim] = true;
    } else if (!q.empty()) {
      popped.push_back(q.pop().tx_id);
    }
  }
  while (!q.empty()) popped.push_back(q.pop().tx_id);

  // Reference: stable-sort the never-cancelled, never-popped-early events.
  // Events popped mid-stream left the model then; replay the whole history
  // instead: collect the survivors (pushed, not cancelled) and check that
  // `popped` is a permutation consistent with per-pop-time ordering. The
  // cheap exact check: every pushed event is popped exactly once unless
  // cancelled, and no cancelled event is ever popped.
  std::vector<std::uint64_t> expect_ids;
  for (std::uint64_t i = 0; i < ref.size(); ++i)
    if (!cancelled[i]) expect_ids.push_back(i);
  std::vector<std::uint64_t> got = popped;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expect_ids);
  for (std::uint64_t id : popped) EXPECT_FALSE(cancelled[id]) << id;
}

TEST(EventQueue, CancelAllThenReuse) {
  // Degenerate: cancel every event, then use the queue again from empty.
  EventQueue q;
  std::vector<EventHandle> handles;
  for (std::uint64_t i = 0; i < 32; ++i)
    handles.push_back(q.push(make(static_cast<double>(i), EventKind::kTimer, i)));
  for (const EventHandle h : handles) EXPECT_TRUE(q.cancel(h));
  EXPECT_TRUE(q.empty());
  EXPECT_THROW((void)q.pop(), ContractViolation);
  q.push(make(7.0, EventKind::kTimer, 99));
  EXPECT_EQ(q.pop().tx_id, 99u);
}

}  // namespace
}  // namespace drn::sim
