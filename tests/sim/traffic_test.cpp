#include "sim/traffic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/expects.hpp"

namespace drn::sim {
namespace {

TEST(Traffic, UniformPairsDistinctAndInRange) {
  Rng rng(3);
  const auto choose = uniform_pairs(10);
  std::set<StationId> sources;
  std::set<StationId> destinations;
  for (int i = 0; i < 2000; ++i) {
    const auto [src, dst] = choose(rng);
    EXPECT_NE(src, dst);
    EXPECT_LT(src, 10u);
    EXPECT_LT(dst, 10u);
    sources.insert(src);
    destinations.insert(dst);
  }
  EXPECT_EQ(sources.size(), 10u);       // all stations originate
  EXPECT_EQ(destinations.size(), 10u);  // all stations receive
}

TEST(Traffic, UniformPairsTwoStations) {
  Rng rng(4);
  const auto choose = uniform_pairs(2);
  for (int i = 0; i < 50; ++i) {
    const auto [src, dst] = choose(rng);
    EXPECT_EQ(dst, 1u - src);
  }
}

TEST(Traffic, FixedPair) {
  Rng rng(5);
  const auto choose = fixed_pair(3, 7);
  const auto [src, dst] = choose(rng);
  EXPECT_EQ(src, 3u);
  EXPECT_EQ(dst, 7u);
  EXPECT_THROW((void)fixed_pair(2, 2), ContractViolation);
}

TEST(Traffic, NeighborPairsRespectsLists) {
  Rng rng(6);
  std::vector<std::vector<StationId>> nbrs = {{1, 2}, {0}, {}, {0}};
  const auto choose = neighbor_pairs(nbrs);
  for (int i = 0; i < 500; ++i) {
    const auto [src, dst] = choose(rng);
    ASSERT_LT(src, nbrs.size());
    ASSERT_FALSE(nbrs[src].empty());  // station 2 never chosen as source
    bool found = false;
    for (StationId n : nbrs[src]) found |= (n == dst);
    EXPECT_TRUE(found);
  }
}

TEST(Traffic, PoissonTrafficRateAndOrdering) {
  Rng rng(7);
  const double rate = 200.0;
  const double duration = 50.0;
  const auto traffic =
      poisson_traffic(rate, duration, 1000.0, uniform_pairs(5), rng);
  // Count within 5 sigma of rate*duration.
  const double expected = rate * duration;
  EXPECT_NEAR(static_cast<double>(traffic.size()), expected,
              5.0 * std::sqrt(expected));
  for (std::size_t i = 0; i + 1 < traffic.size(); ++i)
    EXPECT_LE(traffic[i].time_s, traffic[i + 1].time_s);
  for (const auto& inj : traffic) {
    EXPECT_GE(inj.time_s, 0.0);
    EXPECT_LT(inj.time_s, duration);
    EXPECT_DOUBLE_EQ(inj.packet.size_bits, 1000.0);
  }
}

TEST(Traffic, PoissonInterarrivalsExponential) {
  Rng rng(8);
  const auto traffic =
      poisson_traffic(100.0, 200.0, 1.0, fixed_pair(0, 1), rng);
  double sum = 0.0;
  for (std::size_t i = 0; i + 1 < traffic.size(); ++i)
    sum += traffic[i + 1].time_s - traffic[i].time_s;
  const double mean_gap = sum / static_cast<double>(traffic.size() - 1);
  EXPECT_NEAR(mean_gap, 0.01, 0.001);
}

TEST(Traffic, UniformTrafficEvenSpacing) {
  Rng rng(9);
  const auto traffic = uniform_traffic(10, 1.0, 500.0, fixed_pair(0, 1), rng);
  ASSERT_EQ(traffic.size(), 10u);
  for (std::size_t i = 0; i < traffic.size(); ++i)
    EXPECT_DOUBLE_EQ(traffic[i].time_s, 0.1 * static_cast<double>(i));
}

TEST(Traffic, Contracts) {
  Rng rng(1);
  EXPECT_THROW((void)uniform_pairs(1), ContractViolation);
  EXPECT_THROW((void)poisson_traffic(0.0, 1.0, 1.0, fixed_pair(0, 1), rng),
               ContractViolation);
  EXPECT_THROW((void)poisson_traffic(1.0, 0.0, 1.0, fixed_pair(0, 1), rng),
               ContractViolation);
  EXPECT_THROW((void)poisson_traffic(1.0, 1.0, 0.0, fixed_pair(0, 1), rng),
               ContractViolation);
}

}  // namespace
}  // namespace drn::sim
