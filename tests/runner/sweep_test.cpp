#include "runner/sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>

namespace drn::runner {
namespace {

/// A sweep small enough for a unit test but wide enough to exercise every
/// axis: 2 station counts x 2 MACs x 2 replicates = 8 trials.
SweepSpec tiny_spec() {
  SweepSpec spec;
  spec.stations = {6, 9};
  spec.region_m = {400.0};
  spec.macs = {MacKind::kScheme, MacKind::kAloha};
  spec.rates_pps = {50.0};
  spec.seeds = 2;
  spec.master_seed = 11;
  spec.duration_s = 0.3;
  spec.drain_s = 5.0;
  spec.base.net.max_power_w = 1.0e-3;  // keep the tiny discs connected
  return spec;
}

TEST(Sweep, ExpandOrderAndSeeds) {
  const auto spec = tiny_spec();
  const auto trials = expand(spec);
  ASSERT_EQ(trials.size(), spec.trial_count());
  ASSERT_EQ(trials.size(), 8u);
  // Grid order: stations slowest, then mac, then replicate.
  EXPECT_EQ(trials[0].point.stations, 6u);
  EXPECT_EQ(trials[0].point.mac, MacKind::kScheme);
  EXPECT_EQ(trials[0].replicate, 0u);
  EXPECT_EQ(trials[1].replicate, 1u);
  EXPECT_EQ(trials[2].point.mac, MacKind::kAloha);
  EXPECT_EQ(trials[4].point.stations, 9u);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    EXPECT_EQ(trials[i].index, i);
    EXPECT_EQ(trials[i].seed, trial_seed(spec.master_seed, i));
  }
}

TEST(Sweep, TrialSeedIsPureAndDecorrelated) {
  EXPECT_EQ(trial_seed(7, 0), trial_seed(7, 0));
  EXPECT_NE(trial_seed(7, 0), trial_seed(7, 1));
  EXPECT_NE(trial_seed(7, 0), trial_seed(8, 0));
}

TEST(Sweep, ResultsIdenticalAcrossJobCounts) {
  const auto spec = tiny_spec();
  const auto serial = run_sweep(spec, 1);
  const auto parallel = run_sweep(spec, 8);
  ASSERT_EQ(serial.results.size(), parallel.results.size());

  // The deterministic results documents must be byte-identical.
  std::ostringstream a, b;
  write_results_json(a, spec, serial);
  write_results_json(b, spec, parallel);
  EXPECT_EQ(a.str(), b.str());

  // And so must the raw scalars, not just their rendering.
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    EXPECT_EQ(serial.results[i].offered, parallel.results[i].offered) << i;
    EXPECT_EQ(serial.results[i].delivered, parallel.results[i].delivered) << i;
    EXPECT_EQ(serial.results[i].hop_attempts,
              parallel.results[i].hop_attempts)
        << i;
    EXPECT_EQ(serial.results[i].mean_delay_s, parallel.results[i].mean_delay_s)
        << i;
    EXPECT_EQ(serial.results[i].mean_duty, parallel.results[i].mean_duty) << i;
  }
}

TEST(Sweep, ProgressReachesTotal) {
  auto spec = tiny_spec();
  spec.stations = {6};
  spec.macs = {MacKind::kScheme};
  // The callback runs on worker threads: record atomically, assert after
  // (gtest EXPECT macros are not thread-safe).
  std::atomic<std::size_t> max_done{0};
  std::atomic<bool> overshoot{false};
  const auto result =
      run_sweep(spec, 2, [&](std::size_t done, std::size_t total) {
        if (done > total) overshoot = true;
        std::size_t prev = max_done.load();
        while (prev < done && !max_done.compare_exchange_weak(prev, done)) {
        }
      });
  EXPECT_FALSE(overshoot.load());
  EXPECT_EQ(max_done.load(), result.trials.size());
  EXPECT_EQ(result.jobs, 2u);
  EXPECT_GT(result.wall_s, 0.0);
}

TEST(Sweep, SummariesGroupReplicates) {
  const auto spec = tiny_spec();
  const auto result = run_sweep(spec, 4);
  const auto points = summarize(spec, result);
  ASSERT_EQ(points.size(), 4u);  // 2 stations x 2 macs
  for (const auto& p : points) {
    EXPECT_EQ(p.delivery_ratio.count(), spec.seeds);
    EXPECT_EQ(p.offered.count(), spec.seeds);
    EXPECT_GE(p.delivery_ratio.mean(), 0.0);
    EXPECT_LE(p.delivery_ratio.mean(), 1.0);
  }
  // Grid order preserved: first point is (6, scheme), last is (9, aloha).
  EXPECT_EQ(points.front().point.stations, 6u);
  EXPECT_EQ(points.front().point.mac, MacKind::kScheme);
  EXPECT_EQ(points.back().point.stations, 9u);
  EXPECT_EQ(points.back().point.mac, MacKind::kAloha);
}

TEST(Sweep, ResultsJsonShapeAndTimingSeparation) {
  auto spec = tiny_spec();
  spec.stations = {6};
  spec.macs = {MacKind::kScheme};
  spec.seeds = 1;
  const auto result = run_sweep(spec, 1);

  std::ostringstream os;
  write_results_json(os, spec, result);
  const std::string doc = os.str();
  EXPECT_NE(doc.find("\"schema\": \"drn-sweep-v3\""), std::string::npos);
  EXPECT_NE(doc.find("\"trials\""), std::string::npos);
  EXPECT_NE(doc.find("\"summaries\""), std::string::npos);
  // The dynamics config block is always present; the per-trial dynamics
  // counters only appear when dynamics is actually enabled.
  EXPECT_NE(doc.find("\"dynamics\""), std::string::npos);
  EXPECT_NE(doc.find("\"enabled\": false"), std::string::npos);
  EXPECT_EQ(doc.find("\"station_leaves\""), std::string::npos);
  EXPECT_EQ(doc.find("\"median_recovery_s\""), std::string::npos);
  // Timing must NOT leak into the deterministic document.
  EXPECT_EQ(doc.find("wall_s"), std::string::npos);
  EXPECT_EQ(doc.find("trials_per_s"), std::string::npos);

  std::ostringstream ts;
  write_timing_json(ts, result);
  EXPECT_NE(ts.str().find("\"wall_s\""), std::string::npos);
  EXPECT_NE(ts.str().find("\"trials_per_s\""), std::string::npos);
}

TEST(Sweep, SingleSeedSummariesSerializeUndefinedStatsAsNull) {
  // With one replicate per point, stddev/ci95 do not exist (NaN). The
  // results document must stay valid JSON: those fields render as null,
  // never as a bare "nan" token.
  auto spec = tiny_spec();
  spec.stations = {6};
  spec.macs = {MacKind::kScheme};
  spec.seeds = 1;
  const auto result = run_sweep(spec, 1);

  std::ostringstream os;
  write_results_json(os, spec, result);
  const std::string doc = os.str();
  EXPECT_NE(doc.find("\"stddev\": null"), std::string::npos);
  EXPECT_NE(doc.find("\"ci95\": null"), std::string::npos);
  EXPECT_EQ(doc.find("nan"), std::string::npos);
  EXPECT_EQ(doc.find("inf"), std::string::npos);
  // Round-trip sanity: n survives, and the defined stats are still numbers.
  EXPECT_NE(doc.find("\"n\": 1"), std::string::npos);
  EXPECT_NE(doc.find("\"mean\": "), std::string::npos);
}

TEST(Sweep, RunTrialDeterministicForSameSeed) {
  ScenarioSpec spec;
  spec.stations = 6;
  spec.region_m = 400.0;
  spec.rate_pps = 50.0;
  spec.duration_s = 0.3;
  spec.drain_s = 5.0;
  spec.net.max_power_w = 1.0e-3;
  const auto a = run_trial(spec, 42);
  const auto b = run_trial(spec, 42);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.mean_delay_s, b.mean_delay_s);
  const auto c = run_trial(spec, 43);
  // A different seed gives a different placement; offered counts will almost
  // surely differ (Poisson draw) — at minimum the pair can't all match.
  EXPECT_TRUE(c.offered != a.offered || c.mean_delay_s != a.mean_delay_s ||
              c.delivered != a.delivered);
}

TEST(Sweep, PairedSeedsShareSeedAcrossPoints) {
  auto spec = tiny_spec();
  spec.paired_seeds = true;
  const auto trials = expand(spec);
  ASSERT_EQ(trials.size(), 8u);
  for (const auto& t : trials)
    EXPECT_EQ(t.seed, trial_seed(spec.master_seed, t.replicate));

  // Common random numbers: the two MACs at the same (stations, replicate)
  // see the identical placement and traffic, so they are offered the same
  // packet set.
  const auto result = run_sweep(spec, 2);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    for (std::size_t j = i + 1; j < trials.size(); ++j) {
      if (trials[i].point.stations == trials[j].point.stations &&
          trials[i].replicate == trials[j].replicate) {
        EXPECT_EQ(result.results[i].offered, result.results[j].offered);
      }
    }
  }
}

TEST(Sweep, DynamicsConfigRoundTripsIntoJson) {
  auto spec = tiny_spec();
  spec.stations = {6};
  spec.macs = {MacKind::kAloha};
  spec.seeds = 1;
  spec.base.dynamics.churn_rate_per_s = 0.25;
  spec.base.dynamics.mean_downtime_s = 1.5;
  spec.base.dynamics.mobility_speed_mps = 2.0;
  spec.base.dynamics.jammer.count = 1;
  spec.base.dynamics.jammer.duty = 0.1;
  const auto result = run_sweep(spec, 1);

  std::ostringstream os;
  write_results_json(os, spec, result);
  const std::string doc = os.str();
  // The spec's dynamics block round-trips with its configured values...
  EXPECT_NE(doc.find("\"enabled\": true"), std::string::npos);
  EXPECT_NE(doc.find("\"churn_rate_per_s\": 0.25"), std::string::npos);
  EXPECT_NE(doc.find("\"mean_downtime_s\": 1.5"), std::string::npos);
  EXPECT_NE(doc.find("\"mobility_model\": \"random_waypoint\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"jammers\": 1"), std::string::npos);
  EXPECT_NE(doc.find("\"jammer_duty\": 0.1"), std::string::npos);
  // ...and the per-trial dynamics counters + per-point recovery stats appear.
  EXPECT_NE(doc.find("\"station_leaves\""), std::string::npos);
  EXPECT_NE(doc.find("\"noise_bursts\""), std::string::npos);
  EXPECT_NE(doc.find("\"median_recovery_s\""), std::string::npos);
  EXPECT_NE(doc.find("\"aborted_losses\""), std::string::npos);
}

TEST(Sweep, DynamicsTrialDeterministicAndParallelSafe) {
  // A dynamics-laden trial is still a pure function of (spec, seed), and a
  // sweep of such trials is still byte-identical across job counts.
  auto spec = tiny_spec();
  spec.stations = {6};
  spec.base.dynamics.churn_rate_per_s = 1.0;
  spec.base.dynamics.mean_downtime_s = 0.5;
  spec.base.dynamics.mobility_speed_mps = 1.0;
  spec.base.dynamics.mobility_step_s = 0.2;
  spec.base.dynamics.jammer.count = 1;
  spec.base.net.beacon_interval_s = 0.2;
  spec.base.net.neighbor_timeout_s = 2.4;
  spec.base.net.readopt_neighbors = true;

  const auto serial = run_sweep(spec, 1);
  const auto parallel = run_sweep(spec, 8);
  std::ostringstream a, b;
  write_results_json(a, spec, serial);
  write_results_json(b, spec, parallel);
  EXPECT_EQ(a.str(), b.str());

  // Churn actually happened somewhere in the sweep.
  std::uint64_t leaves = 0;
  for (const auto& r : serial.results) leaves += r.station_leaves;
  EXPECT_GT(leaves, 0u);
}

TEST(Sweep, MacNamesRoundTrip) {
  for (MacKind mac :
       {MacKind::kScheme, MacKind::kAloha, MacKind::kSlottedAloha,
        MacKind::kCsma, MacKind::kMaca}) {
    const auto parsed = parse_mac(mac_name(mac));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, mac);
  }
  EXPECT_FALSE(parse_mac("tdma").has_value());
}

}  // namespace
}  // namespace drn::runner
