#include "runner/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace drn::runner {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([&count] { ++count; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroWorkersClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1u);
  auto f = pool.submit([] {});
  f.get();
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i)
      (void)pool.submit([&count] { ++count; });
  }  // ~ThreadPool must run everything already queued
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(
      {
        try {
          f.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "boom");
          throw;
        }
      },
      std::runtime_error);
  // The worker that threw must still be alive for further tasks.
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(257, 0);
  parallel_for(pool, hits.size(),
               [&hits](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(hits.size()));
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForRethrowsLowestIndexException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    parallel_for(pool, 64, [&completed](std::size_t i) {
      if (i == 7) throw std::out_of_range("seven");
      if (i == 40) throw std::runtime_error("forty");
      ++completed;
    });
    FAIL() << "expected an exception";
  } catch (const std::out_of_range& e) {
    EXPECT_STREQ(e.what(), "seven");  // lowest failing index wins
  }
  // All non-throwing iterations still ran (no early abandonment).
  EXPECT_EQ(completed.load(), 62);
}

TEST(ThreadPool, ParallelForZeroIterations) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, HardwareJobsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_jobs(), 1u);
}

}  // namespace
}  // namespace drn::runner
