#include "runner/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

namespace drn::runner::json {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(escape("hello world"), "hello world");
  EXPECT_EQ(escape(""), "");
}

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(escape("a\"b"), "a\\\"b");
  EXPECT_EQ(escape("a\\b"), "a\\\\b");
  EXPECT_EQ(escape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(escape("\t\r\b\f"), "\\t\\r\\b\\f");
  EXPECT_EQ(escape(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
}

TEST(JsonEscape, RoundTripsThroughUnescape) {
  const std::string nasty =
      "quote:\" backslash:\\ newline:\n tab:\t ctrl:\x02 utf8:\xc3\xa9 end";
  const auto back = unescape(escape(nasty));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, nasty);
}

TEST(JsonUnescape, DecodesUnicodeEscapes) {
  const auto s = unescape("\\u0041\\u00e9");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, "A\xc3\xa9");  // é as UTF-8
}

TEST(JsonUnescape, RejectsMalformed) {
  EXPECT_FALSE(unescape("trailing\\").has_value());
  EXPECT_FALSE(unescape("\\q").has_value());
  EXPECT_FALSE(unescape("\\u12").has_value());
  EXPECT_FALSE(unescape("\\uZZZZ").has_value());
}

TEST(JsonNumber, ShortestRoundTrip) {
  EXPECT_EQ(number(0.0), "0");
  EXPECT_EQ(number(1.5), "1.5");
  EXPECT_EQ(number(0.1), "0.1");  // shortest form, not 0.1000000000000000055
  EXPECT_EQ(number(-3.25), "-3.25");
}

TEST(JsonNumber, NonFiniteBecomesNull) {
  EXPECT_EQ(number(std::nan("")), "null");
  EXPECT_EQ(number(std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonNumber, RoundTripsExactly) {
  for (double v : {1.0 / 3.0, 6.02214076e23, 1.0e-9, 123456789.123456789}) {
    const std::string text = number(v);
    EXPECT_EQ(std::stod(text), v) << text;
  }
}

TEST(JsonWriter, CompactObject) {
  std::ostringstream os;
  Writer w(os, 0);
  w.begin_object();
  w.key("a").value(std::uint64_t{1});
  w.key("b").value("x\"y");
  w.key("c").begin_array().value(true).null().value(2.5).end_array();
  w.end_object();
  EXPECT_EQ(os.str(), R"({"a":1,"b":"x\"y","c":[true,null,2.5]})");
}

TEST(JsonWriter, IndentedObject) {
  std::ostringstream os;
  Writer w(os, 2);
  w.begin_object();
  w.key("k").begin_array().value(std::uint64_t{1}).value(std::uint64_t{2}).end_array();
  w.end_object();
  EXPECT_EQ(os.str(),
            "{\n  \"k\": [\n    1,\n    2\n  ]\n}");
}

TEST(JsonWriter, EmptyContainers) {
  std::ostringstream os;
  Writer w(os, 2);
  w.begin_object();
  w.key("arr").begin_array().end_array();
  w.key("obj").begin_object().end_object();
  w.end_object();
  EXPECT_EQ(os.str(), "{\n  \"arr\": [],\n  \"obj\": {}\n}");
}

TEST(JsonWriter, NegativeAndBoolValues) {
  std::ostringstream os;
  Writer w(os, 0);
  w.begin_array();
  w.value(std::int64_t{-42});
  w.value(false);
  w.value("");
  w.end_array();
  EXPECT_EQ(os.str(), R"([-42,false,""])");
}

}  // namespace
}  // namespace drn::runner::json
