#include "runner/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace drn::runner {
namespace {

TEST(SummaryStats, EmptyHasZeroMeanAndUndefinedSpread) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  // Spread statistics do not exist without two samples: NaN, not a
  // zero that reads as "no variance".
  EXPECT_TRUE(std::isnan(s.stddev()));
  EXPECT_TRUE(std::isnan(s.ci95_half_width()));
}

TEST(SummaryStats, SingleSampleHasUndefinedInterval) {
  SummaryStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_TRUE(std::isnan(s.stddev()));
  EXPECT_TRUE(std::isnan(s.ci95_half_width()));
  EXPECT_TRUE(std::isnan(s.ci95_lo()));
  EXPECT_TRUE(std::isnan(s.ci95_hi()));
}

TEST(SummaryStats, CiMatchesHandComputation) {
  // Samples {1, 2, 3, 4, 5}: mean 3, sample stddev sqrt(2.5), n = 5,
  // t_{0.975, 4} = 2.776 -> half width = 2.776 * sqrt(2.5) / sqrt(5).
  SummaryStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.stddev(), std::sqrt(2.5));
  const double expected = 2.776 * std::sqrt(2.5) / std::sqrt(5.0);
  EXPECT_NEAR(s.ci95_half_width(), expected, 1e-12);
  EXPECT_NEAR(s.ci95_lo(), 3.0 - expected, 1e-12);
  EXPECT_NEAR(s.ci95_hi(), 3.0 + expected, 1e-12);
}

TEST(SummaryStats, TwoSamples) {
  // {0, 1}: mean 0.5, stddev sqrt(0.5), t_{0.975, 1} = 12.706.
  SummaryStats s;
  s.add(0.0);
  s.add(1.0);
  EXPECT_NEAR(s.ci95_half_width(), 12.706 * std::sqrt(0.5) / std::sqrt(2.0),
              1e-12);
}

TEST(SummaryStats, IdenticalSamplesHaveZeroWidth) {
  SummaryStats s;
  for (int i = 0; i < 10; ++i) s.add(7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width(), 0.0);
}

TEST(SummaryStats, MinMaxTracked) {
  SummaryStats s;
  for (double x : {4.0, -2.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(TCritical, TableValues) {
  EXPECT_DOUBLE_EQ(t_critical_95(1), 12.706);
  EXPECT_DOUBLE_EQ(t_critical_95(4), 2.776);
  EXPECT_DOUBLE_EQ(t_critical_95(15), 2.131);
  EXPECT_DOUBLE_EQ(t_critical_95(30), 2.042);
  // Beyond the table: the asymptotic normal value.
  EXPECT_DOUBLE_EQ(t_critical_95(31), 1.960);
  EXPECT_DOUBLE_EQ(t_critical_95(1000), 1.960);
}

TEST(TCritical, MonotoneDecreasingInDf) {
  for (std::uint64_t df = 1; df < 30; ++df)
    EXPECT_GT(t_critical_95(df), t_critical_95(df + 1)) << "df=" << df;
}

TEST(SummaryStats, WidthShrinksWithMoreSamples) {
  // Same alternating data, more of it: the interval must tighten.
  SummaryStats small, large;
  for (int i = 0; i < 4; ++i) small.add(i % 2 ? 1.0 : -1.0);
  for (int i = 0; i < 64; ++i) large.add(i % 2 ? 1.0 : -1.0);
  EXPECT_LT(large.ci95_half_width(), small.ci95_half_width());
}

}  // namespace
}  // namespace drn::runner
