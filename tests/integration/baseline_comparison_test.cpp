// The comparison the paper's Section 2 sets up: prior-work random-access
// MACs under the SAME physical model, topology and workload as the scheduled
// scheme. The qualitative shape to reproduce: the scheme loses nothing to
// collisions while ALOHA/CSMA shed packets (Type 1/2/3) as load grows —
// despite the baselines enjoying free genie acknowledgements.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/aloha.hpp"
#include "baselines/csma.hpp"
#include "baselines/slotted_aloha.hpp"
#include "helpers/scenario.hpp"

namespace drn::testing {
namespace {

core::ScheduledNetworkConfig net_config() {
  core::ScheduledNetworkConfig cfg;
  cfg.target_received_w = 1.0e-9;
  cfg.max_power_w = 1.6e-4;
  cfg.exact_clock_models = true;
  return cfg;
}

struct RunOutcome {
  double delivery = 0.0;
  std::uint64_t collisions = 0;
  std::uint64_t attempts = 0;
};

/// Runs `traffic` under baseline MACs built by `make_mac`, with the same
/// routes as the scheme run.
template <typename MakeMac>
RunOutcome run_baseline(const Scenario& scenario, MakeMac&& make_mac,
                        double packets_per_s, double duration_s,
                        std::uint64_t traffic_seed) {
  sim::SimulatorConfig sc{scheme_criterion()};
  sim::Simulator sim(scenario.gains, sc);
  ScopedAudit audited(sim);
  for (StationId s = 0; s < scenario.gains.size(); ++s)
    sim.set_mac(s, make_mac());
  sim.set_router(scenario.tables.router());
  Rng rng(traffic_seed);
  const auto traffic = sim::poisson_traffic(
      packets_per_s, duration_s, scenario.net.packet_bits,
      sim::uniform_pairs(scenario.gains.size()), rng);
  for (const auto& inj : traffic) sim.inject(inj.time_s, inj.packet);
  sim.run_until(duration_s + 60.0);
  RunOutcome out;
  out.delivery = sim.metrics().delivery_ratio();
  out.collisions = sim.metrics().total_hop_losses();
  out.attempts = sim.metrics().hop_attempts();
  return out;
}

TEST(BaselineComparison, SchemeBeatsRandomAccessUnderLoad) {
  const std::uint64_t seed = 101;
  const double rate = 400.0;  // aggressive load
  const double duration = 2.0;

  auto scheme_scenario = make_scenario(30, 900.0, seed, net_config());
  // Baselines share topology/routes but need their own (unconsumed) copy.
  auto baseline_scenario = make_scenario(30, 900.0, seed, net_config());

  sim::SimulatorConfig sc{scheme_criterion()};
  sim::Simulator scheme_sim(scheme_scenario.gains, sc);
  ScopedAudit audited_scheme(scheme_sim);
  const auto& scheme =
      run_scheme(scheme_scenario, scheme_sim, rate, duration, seed);

  baselines::ContentionConfig cc;
  cc.power_w = 1.0e-4;  // comparable radiated power
  cc.max_retries = 6;
  cc.backoff_mean_s = 0.01;
  const auto aloha = run_baseline(
      baseline_scenario,
      [&] { return std::make_unique<baselines::PureAloha>(cc); }, rate,
      duration, seed);

  // The scheme: zero collision losses. ALOHA: real collision losses.
  EXPECT_EQ(scheme.total_hop_losses(), 0u);
  EXPECT_GT(aloha.collisions, 0u);
  EXPECT_GE(scheme.delivery_ratio(), aloha.delivery);
  // The scheme spends exactly one transmission per hop; ALOHA burns extra
  // attempts on retries of collided packets.
  EXPECT_EQ(scheme.hop_attempts(), scheme.hop_successes());
  EXPECT_GT(aloha.attempts, scheme.hop_attempts());
}

TEST(BaselineComparison, CsmaSuffersHiddenTerminalsTheSchemeDoesNot) {
  const std::uint64_t seed = 103;
  const double rate = 400.0;
  const double duration = 2.0;

  auto scheme_scenario = make_scenario(30, 900.0, seed, net_config());
  auto baseline_scenario = make_scenario(30, 900.0, seed, net_config());

  sim::SimulatorConfig sc{scheme_criterion()};
  sim::Simulator scheme_sim(scheme_scenario.gains, sc);
  ScopedAudit audited_scheme(scheme_sim);
  const auto& scheme =
      run_scheme(scheme_scenario, scheme_sim, rate, duration, seed);

  baselines::ContentionConfig cc;
  cc.power_w = 1.0e-4;
  cc.max_retries = 6;
  cc.backoff_mean_s = 0.005;
  // Sense threshold ~ the power a 200 m neighbour delivers.
  const auto csma = run_baseline(
      baseline_scenario,
      [&] { return std::make_unique<baselines::CsmaMac>(cc, 2.5e-9); }, rate,
      duration, seed);

  EXPECT_EQ(scheme.total_hop_losses(), 0u);
  EXPECT_GT(csma.collisions, 0u);
  EXPECT_GE(scheme.delivery_ratio(), csma.delivery);
}

TEST(BaselineComparison, SlottedAlohaStillCollides) {
  const std::uint64_t seed = 105;
  auto scenario = make_scenario(30, 900.0, seed, net_config());
  baselines::ContentionConfig cc;
  cc.power_w = 1.0e-4;
  cc.max_retries = 4;
  cc.backoff_mean_s = 0.02;
  const auto slotted = run_baseline(
      scenario,
      [&] {
        return std::make_unique<baselines::SlottedAloha>(cc, 0.0025);
      },
      400.0, 2.0, seed);
  EXPECT_GT(slotted.collisions, 0u);
  EXPECT_LT(slotted.delivery, 1.0);
}

}  // namespace
}  // namespace drn::testing
