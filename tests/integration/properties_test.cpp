// Parameterised property sweeps across seeds and parameters: statistical
// properties of schedules, the geometric access-delay model of Section 7.2,
// and interference-bookkeeping consistency against brute force.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "analysis/schedule_math.hpp"
#include "baselines/aloha.hpp"
#include "core/access.hpp"
#include "core/schedule.hpp"
#include "helpers/scenario.hpp"
#include "helpers/test_macs.hpp"

namespace drn::testing {
namespace {

// ---------------------------------------------------------------------------
// Schedule statistics across (seed, p).

class ScheduleProperties
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(ScheduleProperties, EmpiricalFractionMatchesP) {
  const auto [seed, p] = GetParam();
  const core::Schedule s(seed, 0.01, p);
  EXPECT_NEAR(s.empirical_receive_fraction(-50000, 100000), p, 0.012);
}

TEST_P(ScheduleProperties, TwoStationsOverlapAtRateP1MinusP) {
  // For two independent-phase stations, the fraction of slot pairs where A
  // may transmit and B listens converges to p(1-p) — the Bernoulli success
  // probability of Section 7.2.
  const auto [seed, p] = GetParam();
  const core::Schedule s(seed, 1.0, p);
  const core::StationClock a(units::Seconds{0.0});
  const core::StationClock b(units::Seconds{12345.678});
  int usable = 0;
  const int slots = 40000;
  for (int k = 0; k < slots; ++k) {
    const double t = a.global(units::Seconds{s.slot_begin(k)}).value();  // my slot k start, global
    const bool i_may_transmit = !s.is_receive_slot(k);
    // Sample B's schedule at the midpoint of my slot.
    const bool b_listens =
        s.is_receive_slot(s.slot_index(b.local(units::Seconds{t + 0.5}).value()));
    if (i_may_transmit && b_listens) ++usable;
  }
  EXPECT_NEAR(static_cast<double>(usable) / slots,
              analysis::access_probability(p), 0.015);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndFractions, ScheduleProperties,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(0.2, 0.3, 0.5)));

// ---------------------------------------------------------------------------
// Access wait distribution is approximately geometric (Section 7.2).

class AccessWait : public ::testing::TestWithParam<double> {};

TEST_P(AccessWait, MeanWaitTracksOneOverPq) {
  const double p = GetParam();
  const core::Schedule s(777, 1.0, p);
  Rng rng(99);
  double total_wait_slots = 0.0;
  const int trials = 600;
  for (int i = 0; i < trials; ++i) {
    const core::ClockModel other(rng.uniform(1.0, 5000.0), 1.0);
    std::vector<core::WindowConstraint> cs = {
        {&s, core::ClockModel(), false, units::Seconds{0.0}},
        {&s, other, true, units::Seconds{0.0}},
    };
    core::AccessRequest req;
    req.earliest_local = units::Seconds{rng.uniform(0.0, 5000.0)};
    req.duration = units::Seconds{0.25};
    req.horizon = units::Seconds{20000.0};
    const auto start = find_transmission_start(req, cs);
    ASSERT_TRUE(start.has_value());
    total_wait_slots += (*start - req.earliest_local).value();
  }
  const double measured = total_wait_slots / trials;
  const double model = analysis::expected_wait(p).value();
  // The slot-phase details shift the constant, but the 1/(p(1-p)) scaling
  // must show through: within a factor of ~1.8 of the Bernoulli model.
  EXPECT_GT(measured, model * 0.4) << p;
  EXPECT_LT(measured, model * 1.8) << p;
}

INSTANTIATE_TEST_SUITE_P(Fractions, AccessWait,
                         ::testing::Values(0.2, 0.3, 0.4, 0.5));

// ---------------------------------------------------------------------------
// SINR bookkeeping: the simulator's incremental interference sums agree with
// a brute-force reconstruction for overlapping transmissions.

TEST(SinrBookkeeping, MarginMatchesBruteForceForStaggeredOverlaps) {
  // Receiver 3 hears sender 0 (signal) plus staggered interferers 1, 2.
  radio::PropagationMatrix m(4);
  m.set_gain(3, 0, radio::LinearGain{1.0});
  m.set_gain(3, 1, radio::LinearGain{0.05});
  m.set_gain(3, 2, radio::LinearGain{0.03});
  m.set_gain(0, 1, radio::LinearGain{1e-9});
  m.set_gain(0, 2, radio::LinearGain{1e-9});
  m.set_gain(1, 2, radio::LinearGain{1.0});

  const double thermal = 0.01;
  sim::SimulatorConfig sc{radio::ReceptionCriterion(radio::Hertz{1.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{0.0})};
  sc.thermal_noise_w = thermal;
  sim::Simulator sim(m, sc);
  ScopedAudit audited(sim);
  sim.set_mac(0, std::make_unique<ScriptMac>(
                     std::vector<ScriptedTx>{{0.000, 3, 1.0, 1.0e4}}));
  sim.set_mac(1, std::make_unique<ScriptMac>(
                     std::vector<ScriptedTx>{{0.002, 2, 1.0, 1.0e4}}));
  sim.set_mac(2, std::make_unique<ScriptMac>(
                     std::vector<ScriptedTx>{{0.004, 1, 1.0, 1.0e4}}));
  sim.set_mac(3, std::make_unique<IdleMac>());
  sim.run_until(1.0);

  // Worst interference at receiver 3 over packet 0->3's airtime: both
  // interferers active -> N = thermal + 0.05 + 0.03; required SINR = 1.
  const double min_sinr = 1.0 / (thermal + 0.05 + 0.03);
  ASSERT_GE(sim.metrics().hop_successes(), 1u);
  // The first success recorded is packet 0->3 (ends first).
  EXPECT_NEAR(sim.metrics().sinr_margin_db().min(),
              10.0 * std::log10(min_sinr), 1e-6);
}

// ---------------------------------------------------------------------------
// Conservation: every hop attempt is accounted for as exactly one success or
// one classified loss, under any MAC and load.

class Conservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Conservation, AttemptsEqualSuccessesPlusLosses) {
  core::ScheduledNetworkConfig cfg;
  cfg.target_received_w = 1.0e-9;
  cfg.max_power_w = 1.6e-4;
  auto scenario = make_scenario(25, 800.0, GetParam(), cfg);
  sim::SimulatorConfig sc{scheme_criterion()};
  sim::Simulator sim(scenario.gains, sc);
  ScopedAudit audited(sim);
  const auto& m = run_scheme(scenario, sim, 200.0, 1.5, GetParam(), 60.0);
  EXPECT_EQ(m.hop_attempts(), m.hop_successes() + m.total_hop_losses());
  EXPECT_EQ(m.delivered() + m.mac_drops(), m.offered());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Conservation,
                         ::testing::Values(41u, 42u, 43u));

TEST(Conservation, HoldsForContendingBaselinesToo) {
  // Heavy ALOHA contention: attempts = successes + losses must still hold
  // exactly (the taxonomy is exhaustive, per Section 5: "This enumeration
  // covers all possible cases of an interfering transmission").
  radio::PropagationMatrix m(5);
  for (StationId a = 0; a < 5; ++a)
    for (StationId b = static_cast<StationId>(a + 1); b < 5; ++b)
      m.set_gain(a, b, radio::LinearGain{1.0});
  sim::SimulatorConfig sc{radio::ReceptionCriterion(radio::Hertz{1.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{0.0})};
  sc.thermal_noise_w = 1.0e-15;
  sim::Simulator sim(m, sc);
  ScopedAudit audited(sim);
  baselines::ContentionConfig cc;
  cc.max_retries = 3;
  cc.backoff_mean_s = 0.003;
  for (StationId s = 0; s < 5; ++s)
    sim.set_mac(s, std::make_unique<baselines::PureAloha>(cc));
  Rng rng(77);
  for (const auto& inj :
       sim::poisson_traffic(500.0, 2.0, 1.0e4, sim::uniform_pairs(5), rng))
    sim.inject(inj.time_s, inj.packet);
  sim.run_until(60.0);
  const auto& mm = sim.metrics();
  EXPECT_GT(mm.total_hop_losses(), 0u);
  EXPECT_EQ(mm.hop_attempts(), mm.hop_successes() + mm.total_hop_losses());
}

// ---------------------------------------------------------------------------
// Whole-network determinism: identical seeds -> identical outcome summary.

TEST(Determinism, FullScenarioIsBitReproducible) {
  auto run = [] {
    core::ScheduledNetworkConfig cfg;
    cfg.target_received_w = 1.0e-9;
    cfg.max_power_w = 1.6e-4;
    auto scenario = make_scenario(20, 700.0, 31, cfg);
    sim::SimulatorConfig sc{scheme_criterion()};
    sim::Simulator sim(scenario.gains, sc);
    ScopedAudit audited(sim);
    const auto& m = run_scheme(scenario, sim, 80.0, 1.0, 31, 30.0);
    return std::tuple{m.offered(), m.delivered(), m.hop_attempts(),
                      m.delivered() > 0 ? m.delay().mean() : 0.0};
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace drn::testing
