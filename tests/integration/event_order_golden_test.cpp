// Golden event-order hashes (event-core rewrite acceptance).
//
// The event queue's total order (time, kind priority, FIFO seq) is a
// load-bearing contract: every published number depends on events being
// handled in exactly this order. These tests pin an order-sensitive FNV-1a
// digest of the full observed event stream (InvariantAuditor::event_hash)
// for two fixed scenarios. The constants were captured from the
// std::priority_queue implementation that predates the indexed 4-ary heap —
// a changed hash means the queue no longer replays history bit-identically,
// which invalidates every recorded experiment.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "audit/invariant_auditor.hpp"
#include "core/scheduled_station.hpp"
#include "dynamics/dynamics.hpp"
#include "runner/scenario.hpp"
#include "runner/sweep.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"

namespace drn {
namespace {

/// run_trial's exact wiring with an auditor riding along, returning the
/// digest of everything it observed.
std::uint64_t hash_of(const runner::ScenarioSpec& spec, std::uint64_t seed) {
  auto scenario =
      runner::make_scenario(spec.stations, spec.region_m, seed, spec.net);
  sim::SimulatorConfig sim_cfg{spec.criterion()};
  sim_cfg.seed = seed;
  sim::Simulator sim(scenario.gains, sim_cfg);
  audit::InvariantAuditor auditor(sim);
  sim.add_observer(&auditor);
  runner::install_macs(sim, scenario, spec);
  sim.set_router(scenario.tables.router());
  Rng traffic_rng = Rng(seed).split(2);
  for (const auto& inj : sim::poisson_traffic(
           spec.rate_pps, spec.duration_s, scenario.net.packet_bits,
           sim::uniform_pairs(scenario.gains.size()), traffic_rng))
    sim.inject(inj.time_s, inj.packet);
  const double total = spec.duration_s + spec.drain_s;
  sim.run_until(total);
  auditor.finalize(total);
  auditor.cross_check(sim.metrics());
  EXPECT_TRUE(auditor.ok()) << auditor.report();
  return auditor.event_hash();
}

runner::ScenarioSpec golden_spec(runner::MacKind mac) {
  runner::ScenarioSpec spec;
  spec.stations = 40;
  spec.region_m = 1000.0;
  spec.mac = mac;
  spec.rate_pps = 200.0;
  spec.duration_s = 0.5;
  spec.drain_s = 10.0;
  return spec;
}

TEST(EventOrderGolden, SchemeHashPinned) {
  // Captured from the pre-rewrite std::priority_queue build (the same
  // auditor digest code run over the unmodified seed implementation).
  constexpr std::uint64_t kGolden = 5225107369499970404ull;
  EXPECT_EQ(hash_of(golden_spec(runner::MacKind::kScheme),
                    runner::trial_seed(606, 0)),
            kGolden);
}

TEST(EventOrderGolden, AlohaHashPinned) {
  constexpr std::uint64_t kGolden = 9336099377361746225ull;  // pre-rewrite
  EXPECT_EQ(hash_of(golden_spec(runner::MacKind::kAloha),
                    runner::trial_seed(606, 0)),
            kGolden);
}

/// run_trial's dynamics wiring with the auditor riding along: churn tears
/// stations down mid-run (abort + rejoin paths), mobility relocates them
/// between receptions. Pins the ordering contract under dynamics, not just
/// the static Section 8 runs.
std::uint64_t churn_mobility_hash(std::uint64_t seed) {
  runner::ScenarioSpec spec = golden_spec(runner::MacKind::kScheme);
  // Maintenance beacons so churned stations can re-converge (the same knobs
  // drn_sweep auto-enables under churn).
  spec.net.beacon_interval_s = 0.5;
  spec.net.neighbor_timeout_s = 12.0 * spec.net.beacon_interval_s;
  spec.net.readopt_neighbors = true;
  spec.dynamics.churn_rate_per_s = 2.0;
  spec.dynamics.mean_downtime_s = 1.0;
  spec.dynamics.mobility_speed_mps = 20.0;
  spec.dynamics.mobility_step_s = 0.25;
  spec.dynamics.mobility_region_m = spec.region_m;

  auto scenario =
      runner::make_scenario(spec.stations, spec.region_m, seed, spec.net);
  sim::SimulatorConfig sim_cfg{spec.criterion()};
  sim_cfg.seed = seed;
  sim::Simulator sim(scenario.gains, sim_cfg);
  const auto model = std::make_shared<radio::FreeSpacePropagation>();
  sim.enable_mobility(scenario.placement, model);
  audit::InvariantAuditor auditor(sim);
  sim.add_observer(&auditor);

  // Scheme stations warm-reboot with their pre-run config and neighbour
  // table, exactly as run_trial's rejoin factory does.
  std::vector<core::ScheduledStationConfig> cfgs;
  std::vector<core::NeighborTable> tables;
  cfgs.reserve(scenario.net.macs.size());
  tables.reserve(scenario.net.macs.size());
  for (const auto& mac : scenario.net.macs) {
    cfgs.push_back(mac->config());
    tables.push_back(mac->neighbors());
  }
  dynamics::MacFactory rejoin = [cfgs = std::move(cfgs),
                                 tables = std::move(tables)](StationId s) {
    return std::make_unique<core::ScheduledStation>(cfgs[s], tables[s]);
  };

  runner::install_macs(sim, scenario, spec);
  sim.set_router(scenario.tables.router());
  Rng traffic_rng = Rng(seed).split(2);
  for (const auto& inj : sim::poisson_traffic(
           spec.rate_pps, spec.duration_s, scenario.net.packet_bits,
           sim::uniform_pairs(scenario.gains.size()), traffic_rng))
    sim.inject(inj.time_s, inj.packet);
  const double total = spec.duration_s + spec.drain_s;
  dynamics::DynamicsEngine driver(spec.dynamics, sim, scenario.placement,
                                  spec.stations, std::move(rejoin),
                                  Rng(seed).split(3));
  driver.run(total);
  auditor.finalize(total);
  auditor.cross_check(sim.metrics());
  EXPECT_TRUE(auditor.ok()) << auditor.report();
  // The scenario must actually exercise the dynamics paths it pins.
  EXPECT_GT(sim.metrics().station_leaves(), 0u);
  EXPECT_GT(sim.metrics().station_joins(), 0u);
  return auditor.event_hash();
}

TEST(EventOrderGolden, ChurnMobilityHashPinned) {
  // Captured from the pre-layering Simulator (the monolithic class that
  // predates the RadioMedium / StationHost / NetworkLayer split), so the
  // refactor is pinned draw-for-draw under aborts, rejoins and moves too.
  constexpr std::uint64_t kGolden = 14753770258953278022ull;
  EXPECT_EQ(churn_mobility_hash(runner::trial_seed(808, 0)), kGolden);
}

TEST(EventOrderGolden, HashIsDeterministic) {
  const auto spec = golden_spec(runner::MacKind::kScheme);
  const std::uint64_t a = hash_of(spec, runner::trial_seed(707, 0));
  const std::uint64_t b = hash_of(spec, runner::trial_seed(707, 0));
  EXPECT_EQ(a, b);
  // A different seed produces a genuinely different stream.
  EXPECT_NE(a, hash_of(spec, runner::trial_seed(707, 1)));
}

}  // namespace
}  // namespace drn
