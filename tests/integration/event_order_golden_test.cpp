// Golden event-order hashes (event-core rewrite acceptance).
//
// The event queue's total order (time, kind priority, FIFO seq) is a
// load-bearing contract: every published number depends on events being
// handled in exactly this order. These tests pin an order-sensitive FNV-1a
// digest of the full observed event stream (InvariantAuditor::event_hash)
// for two fixed scenarios. The constants were captured from the
// std::priority_queue implementation that predates the indexed 4-ary heap —
// a changed hash means the queue no longer replays history bit-identically,
// which invalidates every recorded experiment.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "audit/invariant_auditor.hpp"
#include "runner/scenario.hpp"
#include "runner/sweep.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"

namespace drn {
namespace {

/// run_trial's exact wiring with an auditor riding along, returning the
/// digest of everything it observed.
std::uint64_t hash_of(const runner::ScenarioSpec& spec, std::uint64_t seed) {
  auto scenario =
      runner::make_scenario(spec.stations, spec.region_m, seed, spec.net);
  sim::SimulatorConfig sim_cfg{spec.criterion()};
  sim_cfg.seed = seed;
  sim::Simulator sim(scenario.gains, sim_cfg);
  audit::InvariantAuditor auditor(sim);
  sim.add_observer(&auditor);
  runner::install_macs(sim, scenario, spec);
  sim.set_router(scenario.tables.router());
  Rng traffic_rng = Rng(seed).split(2);
  for (const auto& inj : sim::poisson_traffic(
           spec.rate_pps, spec.duration_s, scenario.net.packet_bits,
           sim::uniform_pairs(scenario.gains.size()), traffic_rng))
    sim.inject(inj.time_s, inj.packet);
  const double total = spec.duration_s + spec.drain_s;
  sim.run_until(total);
  auditor.finalize(total);
  auditor.cross_check(sim.metrics());
  EXPECT_TRUE(auditor.ok()) << auditor.report();
  return auditor.event_hash();
}

runner::ScenarioSpec golden_spec(runner::MacKind mac) {
  runner::ScenarioSpec spec;
  spec.stations = 40;
  spec.region_m = 1000.0;
  spec.mac = mac;
  spec.rate_pps = 200.0;
  spec.duration_s = 0.5;
  spec.drain_s = 10.0;
  return spec;
}

TEST(EventOrderGolden, SchemeHashPinned) {
  // Captured from the pre-rewrite std::priority_queue build (the same
  // auditor digest code run over the unmodified seed implementation).
  constexpr std::uint64_t kGolden = 5225107369499970404ull;
  EXPECT_EQ(hash_of(golden_spec(runner::MacKind::kScheme),
                    runner::trial_seed(606, 0)),
            kGolden);
}

TEST(EventOrderGolden, AlohaHashPinned) {
  constexpr std::uint64_t kGolden = 9336099377361746225ull;  // pre-rewrite
  EXPECT_EQ(hash_of(golden_spec(runner::MacKind::kAloha),
                    runner::trial_seed(606, 0)),
            kGolden);
}

TEST(EventOrderGolden, HashIsDeterministic) {
  const auto spec = golden_spec(runner::MacKind::kScheme);
  const std::uint64_t a = hash_of(spec, runner::trial_seed(707, 0));
  const std::uint64_t b = hash_of(spec, runner::trial_seed(707, 0));
  EXPECT_EQ(a, b);
  // A different seed produces a genuinely different stream.
  EXPECT_NE(a, hash_of(spec, runner::trial_seed(707, 1)));
}

}  // namespace
}  // namespace drn
