// Cooperative forwarding over minimum-energy routes (Section 6): packets
// cross the network hop by hop, route lengths match the Dijkstra oracle, and
// the whole stack (routing + scheduling + physics) composes.
#include <gtest/gtest.h>

#include <memory>

#include "core/network_builder.hpp"
#include "helpers/scenario.hpp"
#include "routing/bellman_ford.hpp"
#include "routing/min_energy.hpp"

namespace drn::testing {
namespace {

TEST(Multihop, ChainDeliversEndToEndWithExpectedHops) {
  // Six stations in a line, 100 m apart; power budget reaches only 150 m,
  // so 0 -> 5 must take exactly 5 hops.
  const auto placement = geo::line(6, {0.0, 0.0}, 100.0);
  const radio::FreeSpacePropagation model;
  auto gains = radio::PropagationMatrix::from_placement(placement, model);

  core::ScheduledNetworkConfig cfg;
  cfg.target_received_w = 1.0e-9;
  cfg.max_power_w = 1.0e-9 * 150.0 * 150.0;  // reach 150 m
  cfg.exact_clock_models = true;
  Rng build_rng(3);
  auto net = core::build_scheduled_network(gains, scheme_criterion(), cfg,
                                           build_rng);

  const auto graph =
      routing::Graph::min_energy(gains, cfg.target_received_w / cfg.max_power_w);
  ASSERT_TRUE(graph.connected());
  const auto tables = routing::RoutingTables::build(graph);

  sim::SimulatorConfig sc{scheme_criterion()};
  sim::Simulator sim(gains, sc);
  ScopedAudit audited(sim);
  for (StationId s = 0; s < 6; ++s) sim.set_mac(s, std::move(net.macs[s]));
  sim.set_router(tables.router());

  sim::Packet p;
  p.source = 0;
  p.destination = 5;
  p.size_bits = net.packet_bits;
  sim.inject(0.0, p);
  sim.run_until(30.0);

  EXPECT_EQ(sim.metrics().delivered(), 1u);
  EXPECT_DOUBLE_EQ(sim.metrics().hops().mean(), 5.0);
  EXPECT_EQ(sim.metrics().total_hop_losses(), 0u);
}

TEST(Multihop, HopCountsMatchDijkstraOracle) {
  auto cfg = core::ScheduledNetworkConfig{};
  cfg.target_received_w = 1.0e-9;
  cfg.max_power_w = 1.6e-4;
  cfg.exact_clock_models = true;
  auto scenario = make_scenario(30, 900.0, 17, cfg);

  // Pick a handful of connected pairs and check delivered hop counts equal
  // the shortest-path hop counts.
  const auto graph = routing::Graph::min_energy(
      scenario.gains, cfg.target_received_w / cfg.max_power_w);
  sim::SimulatorConfig sc{scheme_criterion()};
  sim::Simulator sim(scenario.gains, sc);
  ScopedAudit audited(sim);
  for (StationId s = 0; s < scenario.gains.size(); ++s)
    sim.set_mac(s, std::move(scenario.net.macs[s]));
  sim.set_router(scenario.tables.router());

  const routing::PathTree tree = routing::shortest_paths(graph, 0);
  std::size_t injected = 0;
  double expected_hops = 0.0;
  for (StationId dst = 1; dst < scenario.gains.size() && injected < 5; ++dst) {
    const auto path = routing::extract_path(tree, dst);
    if (path.empty()) continue;
    sim::Packet p;
    p.source = 0;
    p.destination = dst;
    p.size_bits = scenario.net.packet_bits;
    sim.inject(static_cast<double>(injected) * 1.0, p);
    expected_hops += static_cast<double>(routing::hop_count(path));
    ++injected;
  }
  ASSERT_GT(injected, 0u);
  sim.run_until(120.0);
  EXPECT_EQ(sim.metrics().delivered(), injected);
  EXPECT_DOUBLE_EQ(sim.metrics().hops().sum(), expected_hops);
}

TEST(Multihop, MinEnergyPrefersRelaysOverDirectBlast) {
  // Triangle with a centred relay: the route through the middle must be
  // chosen (Section 6.2), so delivered packets show 2 hops even though the
  // direct hop is physically reachable.
  const geo::Placement placement = {{0.0, 0.0}, {100.0, 0.0}, {200.0, 0.0}};
  const radio::FreeSpacePropagation model;
  auto gains = radio::PropagationMatrix::from_placement(placement, model);

  core::ScheduledNetworkConfig cfg;
  cfg.target_received_w = 1.0e-9;
  cfg.max_power_w = 1.0;  // everything reachable
  cfg.exact_clock_models = true;
  Rng build_rng(5);
  auto net = core::build_scheduled_network(gains, scheme_criterion(), cfg,
                                           build_rng);
  const auto tables = routing::RoutingTables::build(
      routing::Graph::min_energy(gains, 1.0e-9));

  sim::SimulatorConfig sc{scheme_criterion()};
  sim::Simulator sim(gains, sc);
  ScopedAudit audited(sim);
  for (StationId s = 0; s < 3; ++s) sim.set_mac(s, std::move(net.macs[s]));
  sim.set_router(tables.router());

  sim::Packet p;
  p.source = 0;
  p.destination = 2;
  p.size_bits = net.packet_bits;
  sim.inject(0.0, p);
  sim.run_until(30.0);
  EXPECT_EQ(sim.metrics().delivered(), 1u);
  EXPECT_DOUBLE_EQ(sim.metrics().hops().mean(), 2.0);
}

TEST(Multihop, StationChurnRerouteViaBellmanFord) {
  // Failure injection: a relay station dies mid-operation. The distributed
  // Bellman-Ford re-converges on the surviving topology and traffic flows
  // around the hole (the paper's self-organisation premise: no element is
  // special).
  const auto placement = geo::line(5, {0.0, 0.0}, 100.0);
  const radio::FreeSpacePropagation model;
  auto gains = radio::PropagationMatrix::from_placement(placement, model);
  // Reach 250 m: chain neighbours are +-1 and +-2.
  const double min_gain = 1.0 / (250.0 * 250.0);

  // Full graph: shortest 0 -> 4 goes hop by hop through the 100 m links.
  const auto full = routing::Graph::min_energy(gains, min_gain);
  routing::DistributedBellmanFord bf_full(full);
  (void)bf_full.run_synchronous();
  EXPECT_EQ(bf_full.next_hop(0, 4), 1u);

  // Station 2 dies: rebuild the graph without its edges and re-converge.
  routing::Graph survivors(gains.size());
  for (StationId a = 0; a < gains.size(); ++a) {
    for (StationId b = static_cast<StationId>(a + 1); b < gains.size(); ++b) {
      if (a == 2 || b == 2) continue;
      const double g = gains.gain(a, b);
      if (g >= min_gain) survivors.add_edge(a, b, 1.0 / g, g);
    }
  }
  routing::DistributedBellmanFord bf(survivors);
  Rng order(5);
  (void)bf.run_asynchronous(order);
  // The route now leaps over the dead station with the 200 m links 1->3.
  StationId at = 0;
  std::vector<StationId> path{at};
  while (at != 4) {
    at = bf.next_hop(at, 4);
    ASSERT_NE(at, kNoStation);
    ASSERT_NE(at, 2u) << "routed through the dead station";
    path.push_back(at);
    ASSERT_LT(path.size(), 10u);
  }
  EXPECT_EQ(path.size(), 4u);  // 0-1-3-4

  // And the scheme still carries traffic over the degraded routes.
  core::ScheduledNetworkConfig cfg;
  cfg.target_received_w = 1.0e-9;
  cfg.max_power_w = 1.0e-9 / min_gain;
  cfg.exact_clock_models = true;
  Rng build_rng(6);
  auto net = core::build_scheduled_network(gains, scheme_criterion(), cfg,
                                           build_rng);
  sim::SimulatorConfig sc{scheme_criterion()};
  sim::Simulator sim(gains, sc);
  ScopedAudit audited(sim);
  for (StationId s = 0; s < gains.size(); ++s)
    sim.set_mac(s, std::move(net.macs[s]));
  sim.set_router([&bf](StationId a, StationId d) { return bf.next_hop(a, d); });
  sim::Packet p;
  p.source = 0;
  p.destination = 4;
  p.size_bits = net.packet_bits;
  sim.inject(0.0, p);
  sim.run_until(30.0);
  EXPECT_EQ(sim.metrics().delivered(), 1u);
  EXPECT_DOUBLE_EQ(sim.metrics().hops().mean(), 3.0);
}

TEST(Multihop, SchemeWorksUnderDualSlopePropagation) {
  // The whole stack under the obstructed (two-ray) propagation model: the
  // scheme is propagation-agnostic — gains come from H regardless of the
  // law that generated them — so collision-freedom must be preserved.
  Rng rng(29);
  const auto placement = geo::uniform_disc(25, 800.0, rng);
  const radio::DualSlopePropagation model(radio::Meters{100.0}, 4.0);
  auto gains = radio::PropagationMatrix::from_placement(placement, model);

  core::ScheduledNetworkConfig cfg;
  cfg.target_received_w = 1.0e-9;
  // Reach ~250 m under dual-slope: gain(250) = 1e-4 * (100/250)^4 = 2.6e-7.
  cfg.max_power_w = 1.0e-9 / 2.6e-7;
  cfg.exact_clock_models = true;
  Rng build_rng(30);
  auto net = core::build_scheduled_network(gains, scheme_criterion(), cfg,
                                           build_rng);
  const auto graph = routing::Graph::min_energy(
      gains, cfg.target_received_w / cfg.max_power_w);
  const auto tables = routing::RoutingTables::build(graph);

  sim::SimulatorConfig sc{scheme_criterion()};
  sim::Simulator sim(gains, sc);
  ScopedAudit audited(sim);
  for (StationId s = 0; s < gains.size(); ++s)
    sim.set_mac(s, std::move(net.macs[s]));
  sim.set_router(tables.router());
  Rng traffic_rng(31);
  for (const auto& inj : sim::poisson_traffic(
           100.0, 1.0, net.packet_bits, sim::uniform_pairs(gains.size()),
           traffic_rng))
    sim.inject(inj.time_s, inj.packet);
  sim.run_until(60.0);
  EXPECT_GT(sim.metrics().delivered(), 0u);
  EXPECT_EQ(sim.metrics().losses(sim::LossType::kType2), 0u);
  EXPECT_EQ(sim.metrics().losses(sim::LossType::kType3), 0u);
  EXPECT_EQ(sim.metrics().delivered() + sim.metrics().mac_drops(),
            sim.metrics().offered());
}

TEST(Multihop, DistributedBellmanFordRoutesWorkInTheSimulator) {
  // Swap Dijkstra tables for the distributed asynchronous computation the
  // paper proposes; behaviour must be identical in cost structure.
  auto cfg = core::ScheduledNetworkConfig{};
  cfg.target_received_w = 1.0e-9;
  cfg.max_power_w = 1.6e-4;
  cfg.exact_clock_models = true;
  auto scenario = make_scenario(25, 800.0, 19, cfg);
  const auto graph = routing::Graph::min_energy(
      scenario.gains, cfg.target_received_w / cfg.max_power_w);

  routing::DistributedBellmanFord bf(graph);
  Rng order_rng(19);
  (void)bf.run_asynchronous(order_rng);

  sim::SimulatorConfig sc{scheme_criterion()};
  sim::Simulator sim(scenario.gains, sc);
  ScopedAudit audited(sim);
  for (StationId s = 0; s < scenario.gains.size(); ++s)
    sim.set_mac(s, std::move(scenario.net.macs[s]));
  sim.set_router(
      [&bf](StationId at, StationId dst) { return bf.next_hop(at, dst); });

  Rng rng(23);
  const auto traffic = sim::poisson_traffic(
      60.0, 1.0, scenario.net.packet_bits,
      sim::uniform_pairs(scenario.gains.size()), rng);
  for (const auto& inj : traffic) sim.inject(inj.time_s, inj.packet);
  sim.run_until(60.0);
  EXPECT_EQ(sim.metrics().losses(sim::LossType::kType2), 0u);
  EXPECT_EQ(sim.metrics().losses(sim::LossType::kType3), 0u);
  // Undelivered packets are exactly the unroutable draws (fringe stations
  // disconnected at this reach); nothing is lost on air.
  EXPECT_EQ(sim.metrics().delivered() + sim.metrics().mac_drops(),
            sim.metrics().offered());
  EXPECT_GT(sim.metrics().delivery_ratio(), 0.75);
}

}  // namespace
}  // namespace drn::testing
