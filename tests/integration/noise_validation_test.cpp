// Monte-Carlo validation of the Section 4 noise-growth analysis: the closed
// form SNR = 1/(eta ln M) (Figure 1) against random placements under the
// simulator's own 1/r^2 physics.
#include <gtest/gtest.h>

#include <cmath>

#include "common/running_stats.hpp"
#include "radio/noise_growth.hpp"
#include "radio/units.hpp"

namespace drn::radio {
namespace {

double monte_carlo_snr_db(std::size_t stations, double eta,
                          std::uint64_t seed, int trials) {
  Rng rng(seed);
  RunningStats snr_db;
  for (int t = 0; t < trials; ++t) {
    const auto s = sample_nearest_neighbor_snr(stations, Meters{100.0}, eta, rng);
    if (std::isfinite(s.snr.value()) && s.snr.value() > 0.0)
      snr_db.add(to_db(s.snr.value()));
  }
  return snr_db.mean();
}

TEST(NoiseValidation, SnrFallsWithScaleAsPredicted) {
  // Larger systems are noisier, and the measured dB-means track the
  // analytic curve within a few dB across two decades of M.
  const double eta = 0.5;
  double previous = 1.0e9;
  for (std::size_t m : {std::size_t{200}, std::size_t{2000},
                        std::size_t{20000}}) {
    const double measured = monte_carlo_snr_db(m, eta, 42, 40);
    const double predicted = nearest_neighbor_snr_db(m, eta).value();
    EXPECT_LT(measured, previous) << m;
    EXPECT_NEAR(measured, predicted, 4.0) << m;
    previous = measured;
  }
}

TEST(NoiseValidation, DutyCycleBuysSixDbPerQuartering) {
  const std::size_t m = 5000;
  const double full = monte_carlo_snr_db(m, 1.0, 7, 60);
  const double quarter = monte_carlo_snr_db(m, 0.25, 7, 60);
  EXPECT_NEAR(quarter - full, 6.0, 2.5);
}

TEST(NoiseValidation, SnrIndependentOfScaleLength) {
  // Eq. 15's striking property: only M and eta matter, not the physical
  // region size (power density cancels).
  const std::size_t m = 3000;
  Rng rng_small(9);
  Rng rng_large(9);
  RunningStats small_db;
  RunningStats large_db;
  for (int t = 0; t < 40; ++t) {
    small_db.add(
        to_db(sample_nearest_neighbor_snr(m, Meters{10.0}, 0.5, rng_small)
                  .snr.value()));
    large_db.add(
        to_db(sample_nearest_neighbor_snr(m, Meters{10000.0}, 0.5, rng_large)
                  .snr.value()));
  }
  EXPECT_NEAR(small_db.mean(), large_db.mean(), 2.0);
}

TEST(NoiseValidation, InterferenceDominatedByAggregateNotNearest) {
  // The "din": no single interferer dominates; the aggregate matters. With
  // eta = 1 the total interference is ln(M)/pi times... simply check the
  // measured interference exceeds any plausible single-station bound most
  // of the time by comparing against the analytic aggregate.
  const std::size_t m = 5000;
  Rng rng(11);
  RunningStats ratio;
  for (int t = 0; t < 30; ++t) {
    const auto s = sample_nearest_neighbor_snr(m, Meters{100.0}, 1.0, rng);
    // Analytic N/S: eta ln M. Measured: interference/signal.
    ratio.add((s.interference.value() / s.signal.value()) /
              (1.0 * std::log(static_cast<double>(m))));
  }
  // Mean ratio near 1 (within a factor ~2): the integral model captures the
  // din's magnitude.
  EXPECT_GT(ratio.mean(), 0.4);
  EXPECT_LT(ratio.mean(), 2.5);
}

}  // namespace
}  // namespace drn::radio
