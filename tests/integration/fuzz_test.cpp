// Randomised self-checking ("fuzz") properties:
//   * the window-intersection search never returns a start violating any of
//     its constraints, over random constraint soups;
//   * the simulator's incremental interference bookkeeping matches a brute-
//     force reconstruction from the trace, over random transmission soups;
//   * the event queue is a stable priority queue, over random event soups.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "core/access.hpp"
#include "helpers/scenario.hpp"
#include "helpers/test_macs.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace drn::testing {
namespace {

// ---------------------------------------------------------------------------

class AccessFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AccessFuzz, FoundStartsSatisfyEveryConstraint) {
  Rng rng(GetParam());
  const core::Schedule schedule(GetParam() ^ 0xABCD, 1.0, 0.3);
  for (int trial = 0; trial < 150; ++trial) {
    // 1-4 constraints with random clock maps, kinds and pads.
    const auto n_constraints = 1 + rng.uniform_index(4);
    std::vector<core::WindowConstraint> cs;
    for (std::size_t i = 0; i < n_constraints; ++i) {
      const double offset = rng.uniform(1.0, 1.0e5);
      const double rate = 1.0 + rng.uniform(-50.0, 50.0) * 1e-6;
      cs.push_back(core::WindowConstraint{
          &schedule, core::ClockModel(offset, rate), rng.bernoulli(0.5),
          units::Seconds{rng.uniform(0.0, 0.05)}});
    }
    core::AccessRequest req;
    req.earliest_local = units::Seconds{rng.uniform(0.0, 1.0e4)};
    req.duration = units::Seconds{rng.uniform(0.05, 0.6)};
    req.horizon = units::Seconds{3000.0};
    const auto found = find_transmission_start(req, cs);
    if (!found) continue;  // contradictory soup: fine, just no window
    const double start = found->value();
    EXPECT_GE(start, req.earliest_local.value());
    for (const auto& c : cs) {
      const double lo = c.clock.map(start - c.pad.value());
      const double hi =
          c.clock.map(start + req.duration.value() + c.pad.value());
      EXPECT_TRUE(schedule.interval_is(lo, hi, c.want_receive))
          << "trial " << trial << " start " << start;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccessFuzz, ::testing::Values(1u, 2u, 3u, 4u));

// ---------------------------------------------------------------------------

class SinrFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SinrFuzz, TraceMinSinrMatchesBruteForce) {
  // Random station count, gains, and transmission script; then for every
  // reception, recompute min SINR from the full trace by brute force and
  // compare to what the simulator reported.
  Rng rng(GetParam());
  const std::size_t n = 4 + rng.uniform_index(5);
  radio::PropagationMatrix gains(n);
  for (StationId a = 0; a < n; ++a)
    for (StationId b = static_cast<StationId>(a + 1); b < n; ++b)
      gains.set_gain(a, b, radio::LinearGain{rng.uniform(1e-6, 1.0)});

  const double thermal = 1e-3;
  sim::SimulatorConfig cfg{radio::ReceptionCriterion(radio::Hertz{1.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{0.0})};
  cfg.thermal_noise_w = thermal;
  cfg.despreading_channels = 16;
  sim::Simulator sim(gains, cfg);
  ScopedAudit audited(sim);
  sim::TraceRecorder trace;
  sim.add_observer(&trace);

  // Random scripts: every station sends a few packets at random times, each
  // serialized per sender by spacing them at least one airtime apart.
  for (StationId s = 0; s < n; ++s) {
    std::vector<drn::testing::ScriptedTx> script;
    double t = rng.uniform(0.0, 0.02);
    const int packets = 1 + static_cast<int>(rng.uniform_index(4));
    for (int i = 0; i < packets; ++i) {
      auto to = static_cast<StationId>(rng.uniform_index(n - 1));
      if (to >= s) ++to;
      const double bits = rng.uniform(2.0e3, 2.0e4);
      script.push_back({t, to, rng.uniform(0.5, 2.0), bits});
      t += bits / 1.0e6 + rng.uniform(0.001, 0.05);
    }
    sim.set_mac(s, std::make_unique<drn::testing::ScriptMac>(script));
  }
  sim.run_until(10.0);

  // Brute force: for each reception, min over its airtime of
  // signal / (thermal + sum of other overlapping transmissions), evaluated
  // at every overlap-boundary instant.
  std::map<std::uint64_t, sim::TxEvent> txs;
  for (const auto& tx : trace.transmissions()) txs[tx.tx_id] = tx;
  for (const auto& rx : trace.receptions()) {
    const auto& mine = txs.at(rx.tx_id);
    double min_sinr = 1.0e300;
    // Candidate evaluation instants: my start plus every other tx start
    // within my airtime (interference only increases at those points).
    std::vector<double> instants{mine.start_s};
    for (const auto& [id, other] : txs) {
      if (id == rx.tx_id || other.from == rx.rx) continue;
      if (other.start_s > mine.start_s && other.start_s < mine.end_s)
        instants.push_back(other.start_s);
    }
    for (double t : instants) {
      double interference = thermal;
      for (const auto& [id, other] : txs) {
        // The receiver's own transmissions are excluded: they kill the
        // reception administratively (Type 3), not through the SINR sum.
        if (id == rx.tx_id || other.from == rx.rx) continue;
        if (other.start_s <= t && t < other.end_s)
          interference += gains.gain(rx.rx, other.from) * other.power_w;
      }
      min_sinr = std::min(
          min_sinr, gains.gain(rx.rx, mine.from) * mine.power_w / interference);
    }
    // Type-3 receptions are failed administratively; SINR bookkeeping still
    // runs but the brute force above does not model the self-blast, so only
    // compare clean and SINR-failed receptions.
    if (rx.loss == sim::LossType::kNone || rx.loss == sim::LossType::kType1 ||
        rx.loss == sim::LossType::kType2) {
      EXPECT_NEAR(rx.min_sinr, min_sinr, min_sinr * 1e-9)
          << "tx " << rx.tx_id << " at rx " << rx.rx;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SinrFuzz,
                         ::testing::Values(10u, 20u, 30u, 40u, 50u));

}  // namespace
}  // namespace drn::testing
