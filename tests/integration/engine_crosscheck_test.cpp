// Exact-vs-approximate interference engine cross-check (ISSUE 4 acceptance):
// the near/far engine must reproduce the compensated (exact) engine's
// physics on tab_sec8-style scenarios — per-reception min-SINR within the
// configured far-field bound, and headline metrics (delivery rate, loss-type
// mix) within 0.5%.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>

#include "audit/invariant_auditor.hpp"
#include "radio/interference_engine.hpp"
#include "radio/propagation.hpp"
#include "runner/scenario.hpp"
#include "runner/sweep.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"

namespace drn {
namespace {

audit::AuditConfig recording_config(const sim::Simulator& sim) {
  audit::AuditConfig cfg;
  cfg.stations = sim.station_count();
  cfg.despreading_channels = sim.config().despreading_channels;
  cfg.thermal_noise = drn::units::Watts{sim.config().thermal_noise_w};
  cfg.bandwidth = sim.config().criterion.bandwidth();
  cfg.margin = sim.config().criterion.margin();
  cfg.record_receptions = true;
  return cfg;
}

struct AuditedRun {
  runner::TrialResult result;
  std::unique_ptr<audit::InvariantAuditor> auditor;
};

/// runner::run_trial with a recording auditor riding along (the runner's own
/// audit path records no per-reception outcomes, which the engine
/// cross-check needs).
AuditedRun run_audited(const runner::ScenarioSpec& spec, std::uint64_t seed) {
  auto scenario =
      runner::make_scenario(spec.stations, spec.region_m, seed, spec.net);
  sim::SimulatorConfig sim_cfg{spec.criterion()};
  sim_cfg.seed = seed;
  sim_cfg.engine = spec.engine;
  std::optional<sim::Simulator> sim_box;
  if (spec.engine == radio::InterferenceEngineKind::kNearFar) {
    radio::NearFarConfig nf;
    nf.cutoff = radio::Meters{
        spec.engine_cutoff_m > 0.0 ? spec.engine_cutoff_m : 2.0 * spec.region_m};
    nf.cell = radio::Meters{spec.engine_cell_m};
    sim_box.emplace(
        radio::make_nearfar_engine(scenario.placement,
                                   std::make_shared<radio::FreeSpacePropagation>(),
                                   nf),
        sim_cfg);
  } else {
    sim_box.emplace(scenario.gains, sim_cfg);
  }
  sim::Simulator& sim = *sim_box;
  auto auditor =
      std::make_unique<audit::InvariantAuditor>(recording_config(sim));
  sim.add_observer(auditor.get());
  runner::install_macs(sim, scenario, spec);
  sim.set_router(scenario.tables.router());
  Rng traffic_rng = Rng(seed).split(2);
  for (const auto& inj : sim::poisson_traffic(
           spec.rate_pps, spec.duration_s, scenario.net.packet_bits,
           sim::uniform_pairs(scenario.gains.size()), traffic_rng))
    sim.inject(inj.time_s, inj.packet);
  const double total = spec.duration_s + spec.drain_s;
  sim.run_until(total);
  AuditedRun out;
  out.result = runner::summarize(sim.metrics(), total);
  auditor->finalize(total);
  auditor->cross_check(sim.metrics());
  return AuditedRun{out.result, std::move(auditor)};
}

/// Per-far-field-term relative gain error of the near/far engine: both
/// endpoints sit at most cell_m * sqrt(2) / 2 from their cell centres and
/// far pairs are at least cutoff_m apart, so a 1/d^2 gain is off by at most
/// this factor (see DESIGN.md "Interference engines").
double far_field_bound(const radio::NearFarConfig& nf) {
  const double cutoff = nf.cutoff.value();
  const double cell = nf.cell.value() > 0.0 ? nf.cell.value() : cutoff / 4.0;
  return std::pow(1.0 + std::sqrt(2.0) * cell / cutoff, 2.0) - 1.0;
}

void expect_headline_metrics_close(const runner::TrialResult& approx,
                                   const runner::TrialResult& exact) {
  EXPECT_EQ(approx.offered, exact.offered);
  EXPECT_NEAR(approx.delivery_ratio, exact.delivery_ratio,
              0.005 * exact.delivery_ratio + 1e-12);
  // Loss-type mix: each class within 0.5% of the exact run's hop attempts.
  const double slack = 0.005 * static_cast<double>(exact.hop_attempts);
  EXPECT_NEAR(static_cast<double>(approx.type1_losses),
              static_cast<double>(exact.type1_losses), slack);
  EXPECT_NEAR(static_cast<double>(approx.type2_losses),
              static_cast<double>(exact.type2_losses), slack);
  EXPECT_NEAR(static_cast<double>(approx.type3_losses),
              static_cast<double>(exact.type3_losses), slack);
}

TEST(EngineCrossCheck, SchemeOnTabSec8Seed) {
  // The tab_sec8 100-station point (region 1600 m, Poisson 400 pkt/s,
  // master seed 606) at a shortened offer window.
  runner::ScenarioSpec spec;
  spec.stations = 100;
  spec.region_m = 1600.0;
  spec.mac = runner::MacKind::kScheme;
  spec.rate_pps = 400.0;
  spec.duration_s = 1.0;
  spec.drain_s = 60.0;
  const std::uint64_t seed = runner::trial_seed(606, 0);

  spec.engine = radio::InterferenceEngineKind::kCompensated;
  auto exact = run_audited(spec, seed);
  EXPECT_TRUE(exact.auditor->ok()) << exact.auditor->report();

  spec.engine = radio::InterferenceEngineKind::kNearFar;
  spec.engine_cutoff_m = 800.0;  // 2x the 400 m free-space reach
  auto approx = run_audited(spec, seed);
  EXPECT_TRUE(approx.auditor->ok()) << approx.auditor->report();

  radio::NearFarConfig nf;
  nf.cutoff = radio::Meters{spec.engine_cutoff_m};
  approx.auditor->cross_check_engine(*exact.auditor, far_field_bound(nf));
  EXPECT_TRUE(approx.auditor->ok()) << approx.auditor->report();
  EXPECT_GT(exact.auditor->recorded_receptions().size(), 100u);
  expect_headline_metrics_close(approx.result, exact.result);
}

TEST(EngineCrossCheck, AlohaLossMixOnTabSec8Seed) {
  // ALOHA generates real collision losses — the loss-type mix actually
  // exercises interference-driven outcomes, unlike the (collision-free)
  // scheduled scheme.
  runner::ScenarioSpec spec;
  spec.stations = 100;
  spec.region_m = 1600.0;
  spec.mac = runner::MacKind::kAloha;
  spec.rate_pps = 400.0;
  spec.duration_s = 1.0;
  spec.drain_s = 30.0;
  const std::uint64_t seed = runner::trial_seed(606, 0);

  spec.engine = radio::InterferenceEngineKind::kCompensated;
  auto exact = run_audited(spec, seed);
  EXPECT_TRUE(exact.auditor->ok()) << exact.auditor->report();
  EXPECT_GT(exact.result.type1_losses + exact.result.type2_losses +
                exact.result.type3_losses,
            0u)
      << "workload produced no collisions; the cross-check is vacuous";

  spec.engine = radio::InterferenceEngineKind::kNearFar;
  spec.engine_cutoff_m = 800.0;
  auto approx = run_audited(spec, seed);
  EXPECT_TRUE(approx.auditor->ok()) << approx.auditor->report();

  radio::NearFarConfig nf;
  nf.cutoff = radio::Meters{spec.engine_cutoff_m};
  approx.auditor->cross_check_engine(*exact.auditor, far_field_bound(nf));
  EXPECT_TRUE(approx.auditor->ok()) << approx.auditor->report();
  expect_headline_metrics_close(approx.result, exact.result);
}

}  // namespace
}  // namespace drn
