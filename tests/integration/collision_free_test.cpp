// The paper's headline property (Sections 1, 7): the channel access scheme
// is FREE of packet loss due to collisions — no Type 2 or Type 3 losses ever,
// and no Type 1 losses when processing gain covers the local interference —
// across random topologies, clock phases, drifting clocks and fitted clock
// models, with only a single transmission per hop and no global coordination.
#include <gtest/gtest.h>

#include "helpers/scenario.hpp"

namespace drn::testing {
namespace {

core::ScheduledNetworkConfig multihop_config() {
  core::ScheduledNetworkConfig cfg;
  cfg.target_received_w = 1.0e-9;
  cfg.max_power_w = 1.6e-4;  // reach ~400 m
  cfg.exact_clock_models = false;
  cfg.max_drift_ppm = 20.0;
  cfg.rendezvous_count = 4;
  cfg.rendezvous_noise_s = 1.0e-6;
  cfg.guard_fraction = 0.02;
  return cfg;
}

class CollisionFree : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CollisionFree, RandomNetworkLosesNothingToCollisions) {
  auto scenario = make_scenario(40, 1000.0, GetParam(), multihop_config());

  // Fraction of ordered pairs the topology can route at all (random discs
  // leave some fringe stations disconnected at this reach).
  const std::size_t n = scenario.gains.size();
  std::size_t routable = 0;
  for (StationId a = 0; a < n; ++a)
    for (StationId b = 0; b < n; ++b)
      if (a != b && scenario.tables.next_hop(a, b) != kNoStation) ++routable;
  const double routable_fraction =
      static_cast<double>(routable) / static_cast<double>(n * (n - 1));

  sim::SimulatorConfig sc{scheme_criterion()};
  sc.seed = GetParam();
  sim::Simulator sim(scenario.gains, sc);
  ScopedAudit audited(sim);
  const auto& m = run_scheme(scenario, sim, /*packets_per_s=*/150.0,
                             /*duration_s=*/2.0, /*traffic_seed=*/GetParam());

  EXPECT_GT(m.offered(), 100u);
  EXPECT_EQ(m.losses(sim::LossType::kType2), 0u) << "seed " << GetParam();
  EXPECT_EQ(m.losses(sim::LossType::kType3), 0u) << "seed " << GetParam();
  EXPECT_EQ(m.losses(sim::LossType::kType1), 0u) << "seed " << GetParam();
  // Everything offered is either delivered or was unroutable (disconnected
  // fringe stations) — never lost on air.
  EXPECT_EQ(m.delivered() + m.mac_drops(), m.offered());
  EXPECT_GT(routable_fraction, 0.5);
  // Delivery equals the routable share of the random traffic draw (binomial
  // fluctuation allowance).
  EXPECT_NEAR(m.delivery_ratio(), routable_fraction, 0.08);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollisionFree,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

class ReceiveFractionSweep : public ::testing::TestWithParam<double> {};

TEST_P(ReceiveFractionSweep, CollisionFreedomHoldsAcrossDutyCycles) {
  auto cfg = multihop_config();
  cfg.receive_fraction = GetParam();
  auto scenario = make_scenario(30, 900.0, 7, cfg);
  sim::SimulatorConfig sc{scheme_criterion()};
  sim::Simulator sim(scenario.gains, sc);
  ScopedAudit audited(sim);
  const auto& m = run_scheme(scenario, sim, 100.0, 2.0, 7);
  EXPECT_EQ(m.losses(sim::LossType::kType2), 0u) << "p " << GetParam();
  EXPECT_EQ(m.losses(sim::LossType::kType3), 0u) << "p " << GetParam();
  EXPECT_GT(m.delivered(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Fractions, ReceiveFractionSweep,
                         ::testing::Values(0.2, 0.3, 0.4, 0.5));

TEST(CollisionFreeEdge, InsufficientGuardBreaksTheInvariant) {
  // Falsification control: with drifting clocks, noisy rendezvous and NO
  // guard, predictions miss receive windows and Type 3 losses reappear —
  // demonstrating the guard is load-bearing, not decorative.
  auto cfg = multihop_config();
  cfg.guard_fraction = 0.0;
  cfg.rendezvous_noise_s = 2.0e-3;  // 20% of a slot: hopeless predictions
  cfg.max_drift_ppm = 100.0;
  auto scenario = make_scenario(30, 900.0, 13, cfg);
  sim::SimulatorConfig sc{scheme_criterion()};
  sim::Simulator sim(scenario.gains, sc);
  ScopedAudit audited(sim);
  const auto& m = run_scheme(scenario, sim, 150.0, 2.0, 13);
  EXPECT_GT(m.total_hop_losses(), 0u);
}

TEST(CollisionFreeEdge, RespectingThirdPartyWindowsPreventsType1) {
  // Section 7.3's mechanism, isolated. Topology: A blasts a FAR station B at
  // high power; C sits 10 m from A and concurrently receives low-power
  // packets from D. A's transmissions deliver ~1.6 uW to C — four orders of
  // magnitude over C's ~0.1 nW interference budget — so any overlap with
  // C's receptions is fatal (Type 1). With the respect rule, A keeps its
  // transmissions out of C's receive windows and nothing is lost.
  auto run = [](bool respect) {
    const geo::Placement placement = {
        {0.0, 0.0},     // A
        {400.0, 0.0},   // B (far: A must use high power)
        {0.0, 10.0},    // C (very near A)
        {0.0, 60.0},    // D (sends to C at low power)
    };
    const radio::FreeSpacePropagation model;
    const auto gains =
        radio::PropagationMatrix::from_placement(placement, model);

    core::ScheduledNetworkConfig cfg;
    cfg.target_received_w = 1.0e-9;
    cfg.max_power_w = 2.0e-4;
    cfg.exact_clock_models = true;
    cfg.respect_third_party_windows = respect;
    Rng build_rng(61);
    auto net = core::build_scheduled_network(gains, scheme_criterion(), cfg,
                                             build_rng);

    sim::SimulatorConfig sc{scheme_criterion()};
    sim::Simulator sim(gains, sc);
    ScopedAudit audited(sim);
    for (StationId s = 0; s < 4; ++s) sim.set_mac(s, std::move(net.macs[s]));

    for (int i = 0; i < 150; ++i) {
      sim::Packet ab;
      ab.source = 0;
      ab.destination = 1;
      ab.size_bits = net.packet_bits;
      sim.inject(0.02 * i, ab);
      sim::Packet dc;
      dc.source = 3;
      dc.destination = 2;
      dc.size_bits = net.packet_bits;
      sim.inject(0.02 * i, dc);
    }
    sim.run_until(60.0);
    return std::pair{sim.metrics().losses(sim::LossType::kType1),
                     sim.metrics().delivered()};
  };

  const auto [losses_respect, delivered_respect] = run(true);
  EXPECT_EQ(losses_respect, 0u);
  EXPECT_EQ(delivered_respect, 300u);

  const auto [losses_rude, delivered_rude] = run(false);
  EXPECT_GT(losses_rude, 0u);  // the falsification control
  EXPECT_LT(delivered_rude, 300u);
}

TEST(CollisionFreeEdge, SingleTransmissionPerHop) {
  // "at each hop requires no per-packet transmissions other than the single
  // transmission used to convey the packet": hop attempts == hop successes
  // (+ nothing), and attempts == delivered packets' total hop count.
  auto scenario = make_scenario(25, 800.0, 21, multihop_config());
  sim::SimulatorConfig sc{scheme_criterion()};
  sim::Simulator sim(scenario.gains, sc);
  ScopedAudit audited(sim);
  const auto& m = run_scheme(scenario, sim, 100.0, 2.0, 21);
  EXPECT_EQ(m.hop_attempts(), m.hop_successes());
  const double total_hops = m.hops().sum();
  EXPECT_DOUBLE_EQ(static_cast<double>(m.hop_attempts()), total_hops);
}

}  // namespace
}  // namespace drn::testing
