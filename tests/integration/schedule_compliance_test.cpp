// Ground-truth verification of the Section 7 invariants, via the simulator's
// observer hook: EVERY transmission the scheduled MAC makes must lie inside
// the sender's own transmit windows and inside the addressee's committed
// receive windows — checked against the TRUE station clocks, not the models
// the senders used.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/aloha.hpp"
#include "helpers/scenario.hpp"
#include "sim/observer.hpp"

namespace drn::testing {
namespace {

class WindowAuditor final : public sim::SimObserver {
 public:
  WindowAuditor(const core::Schedule& schedule,
                const std::vector<core::StationClock>& clocks)
      : schedule_(&schedule), clocks_(&clocks) {}

  void on_transmit_start(const sim::TxEvent& tx) override {
    ++transmissions_;
    // Sender side: the radiating interval must lie inside transmit slots of
    // the sender's own schedule (its published commitment to listen must be
    // honoured exactly).
    const auto& sender_clock = (*clocks_)[tx.from];
    if (!schedule_->interval_is(
            sender_clock.local(core::Seconds{tx.start_s}).value(),
            sender_clock.local(core::Seconds{tx.end_s}).value(), false)) {
      ++sender_violations_;
    }
    // Receiver side: the addressee must be committed to listen throughout.
    if (tx.to != kBroadcast) {
      const auto& rx_clock = (*clocks_)[tx.to];
      if (!schedule_->interval_is(
              rx_clock.local(core::Seconds{tx.start_s}).value(),
              rx_clock.local(core::Seconds{tx.end_s}).value(), true)) {
        ++receiver_violations_;
      }
    }
  }

  [[nodiscard]] std::size_t transmissions() const { return transmissions_; }
  [[nodiscard]] std::size_t sender_violations() const {
    return sender_violations_;
  }
  [[nodiscard]] std::size_t receiver_violations() const {
    return receiver_violations_;
  }

 private:
  const core::Schedule* schedule_;
  const std::vector<core::StationClock>* clocks_;
  std::size_t transmissions_ = 0;
  std::size_t sender_violations_ = 0;
  std::size_t receiver_violations_ = 0;
};

class ScheduleCompliance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduleCompliance, EveryTransmissionHonoursBothSchedules) {
  core::ScheduledNetworkConfig cfg;
  cfg.target_received_w = 1.0e-9;
  cfg.max_power_w = 1.6e-4;
  cfg.exact_clock_models = false;  // fitted models + guards must still comply
  cfg.max_drift_ppm = 20.0;
  cfg.rendezvous_noise_s = 1.0e-6;
  auto scenario = make_scenario(30, 900.0, GetParam(), cfg);

  WindowAuditor auditor(scenario.net.schedule, scenario.net.clocks);
  sim::SimulatorConfig sc{scheme_criterion()};
  sim::Simulator sim(scenario.gains, sc);
  ScopedAudit audited(sim);
  sim.add_observer(&auditor);
  (void)run_scheme(scenario, sim, 120.0, 2.0, GetParam());

  EXPECT_GT(auditor.transmissions(), 200u);
  EXPECT_EQ(auditor.sender_violations(), 0u) << "seed " << GetParam();
  EXPECT_EQ(auditor.receiver_violations(), 0u) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleCompliance,
                         ::testing::Values(3u, 5u, 8u));

TEST(ScheduleCompliance, BaselinesDoViolateSchedules) {
  // Control: ALOHA transmits whenever it pleases, so against the same
  // schedules it racks up violations — the auditor is not vacuous.
  core::ScheduledNetworkConfig cfg;
  cfg.target_received_w = 1.0e-9;
  cfg.max_power_w = 1.6e-4;
  auto scenario = make_scenario(30, 900.0, 13, cfg);

  WindowAuditor auditor(scenario.net.schedule, scenario.net.clocks);
  sim::SimulatorConfig sc{scheme_criterion()};
  sim::Simulator sim(scenario.gains, sc);
  ScopedAudit audited(sim);
  sim.add_observer(&auditor);
  baselines::ContentionConfig cc;
  cc.power_w = 1.0e-4;
  for (StationId s = 0; s < scenario.gains.size(); ++s)
    sim.set_mac(s, std::make_unique<baselines::PureAloha>(cc));
  sim.set_router(scenario.tables.router());
  Rng rng(13);
  for (const auto& inj : sim::poisson_traffic(
           120.0, 2.0, scenario.net.packet_bits,
           sim::uniform_pairs(scenario.gains.size()), rng))
    sim.inject(inj.time_s, inj.packet);
  sim.run_until(30.0);
  EXPECT_GT(auditor.sender_violations() + auditor.receiver_violations(), 0u);
}

}  // namespace
}  // namespace drn::testing
