#include "geo/circle.hpp"

#include <gtest/gtest.h>

#include "common/expects.hpp"

namespace drn::geo {
namespace {

TEST(Circle, ContainsInterior) {
  const Circle c{{0.0, 0.0}, 2.0};
  EXPECT_TRUE(c.contains({1.0, 1.0}));
  EXPECT_FALSE(c.contains({2.0, 0.0}));  // on the boundary: not strict
  EXPECT_TRUE(c.contains_or_on({2.0, 0.0}));
  EXPECT_FALSE(c.contains_or_on({2.1, 0.0}));
}

TEST(Circle, DiameterCircleGeometry) {
  const Circle c = diameter_circle({0.0, 0.0}, {4.0, 0.0});
  EXPECT_EQ(c.center, (Vec2{2.0, 0.0}));
  EXPECT_DOUBLE_EQ(c.radius, 2.0);
}

// Paper Section 6.2 / Figure 3: with 1/r^2 loss, the relay B between A and C
// reduces energy exactly when B is strictly inside the circle whose diameter
// is AC (Thales: angle at B obtuse <=> |AB|^2 + |BC|^2 < |AC|^2).
TEST(Circle, RelayCriterionMatchesThalesCircleForFreeSpace) {
  const Vec2 a{0.0, 0.0};
  const Vec2 c{10.0, 0.0};
  const Circle thales = diameter_circle(a, c);

  const Vec2 candidates[] = {
      {5.0, 0.0},   // centre: best possible relay
      {5.0, 4.9},   // inside, near the top
      {5.0, 5.1},   // just outside
      {1.0, 1.0},   // inside near A
      {9.5, -2.0},  // inside-ish near C
      {12.0, 0.0},  // beyond C
      {-1.0, 0.0},  // behind A
      {5.0, 20.0},  // far off-axis
  };
  for (const Vec2 b : candidates) {
    EXPECT_EQ(relay_reduces_energy(a, b, c, 2.0), thales.contains(b))
        << "b=(" << b.x << "," << b.y << ")";
  }
}

TEST(Circle, PerfectlyCenteredRelayQuartersPowerHalvesEnergy) {
  // Section 6.2: "They would be less by as much as a factor of four if
  // station B is exactly centered" — each half-distance hop needs 1/4 the
  // power; two of them halve the total energy.
  const Vec2 a{0.0, 0.0};
  const Vec2 b{5.0, 0.0};
  const Vec2 c{10.0, 0.0};
  const double direct = distance_sq(a, c);  // ∝ power of direct hop
  const double hop = distance_sq(a, b);     // ∝ power of each relay hop
  EXPECT_DOUBLE_EQ(hop * 4.0, direct);
  EXPECT_DOUBLE_EQ(2.0 * hop, direct / 2.0);  // total energy halves
  EXPECT_TRUE(relay_reduces_energy(a, b, c));
}

TEST(Circle, OnTheThalesBoundaryRelayDoesNotHelp) {
  // Right angle at B: |AB|^2 + |BC|^2 == |AC|^2, so relaying is exactly
  // break-even and the strict criterion must say "no".
  const Vec2 a{0.0, 0.0};
  const Vec2 c{5.0, 0.0};
  const Vec2 b{1.8, 2.4};  // (1.8-2.5)^2 + 2.4^2 = 6.25 = 2.5^2
  EXPECT_FALSE(diameter_circle(a, c).contains(b));
  EXPECT_FALSE(relay_reduces_energy(a, b, c));
}

TEST(Circle, HigherPathLossExponentWidensRelayRegion) {
  // With alpha = 4 (heavily obstructed), relaying pays off even for relays
  // outside the Thales circle.
  const Vec2 a{0.0, 0.0};
  const Vec2 c{10.0, 0.0};
  const Vec2 b{5.0, 5.5};  // just outside the alpha=2 region
  EXPECT_FALSE(relay_reduces_energy(a, b, c, 2.0));
  EXPECT_TRUE(relay_reduces_energy(a, b, c, 4.0));
}

TEST(Circle, RelayRejectsNonPositiveExponent) {
  EXPECT_THROW((void)relay_reduces_energy({0, 0}, {1, 0}, {2, 0}, 0.0),
               ContractViolation);
}

}  // namespace
}  // namespace drn::geo
