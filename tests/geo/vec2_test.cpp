#include "geo/vec2.hpp"

#include <gtest/gtest.h>

namespace drn::geo {
namespace {

TEST(Vec2, DefaultIsOrigin) {
  Vec2 v;
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
}

TEST(Vec2, Addition) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -4.0};
  const Vec2 c = a + b;
  EXPECT_EQ(c.x, 4.0);
  EXPECT_EQ(c.y, -2.0);
}

TEST(Vec2, Subtraction) {
  const Vec2 c = Vec2{5.0, 1.0} - Vec2{2.0, 7.0};
  EXPECT_EQ(c.x, 3.0);
  EXPECT_EQ(c.y, -6.0);
}

TEST(Vec2, ScalarMultiplicationBothSides) {
  const Vec2 a{1.5, -2.0};
  EXPECT_EQ((a * 2.0).x, 3.0);
  EXPECT_EQ((2.0 * a).y, -4.0);
}

TEST(Vec2, CompoundOperators) {
  Vec2 a{1.0, 1.0};
  a += Vec2{2.0, 3.0};
  EXPECT_EQ(a, (Vec2{3.0, 4.0}));
  a -= Vec2{3.0, 0.0};
  EXPECT_EQ(a, (Vec2{0.0, 4.0}));
  a *= 0.5;
  EXPECT_EQ(a, (Vec2{0.0, 2.0}));
}

TEST(Vec2, DotProduct) {
  EXPECT_EQ(dot(Vec2{1.0, 2.0}, Vec2{3.0, 4.0}), 11.0);
  EXPECT_EQ(dot(Vec2{1.0, 0.0}, Vec2{0.0, 1.0}), 0.0);  // orthogonal
}

TEST(Vec2, NormOfPythagoreanTriple) {
  EXPECT_DOUBLE_EQ(norm(Vec2{3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(norm_sq(Vec2{3.0, 4.0}), 25.0);
}

TEST(Vec2, DistanceIsSymmetric) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{-3.0, 5.0};
  EXPECT_DOUBLE_EQ(distance(a, b), distance(b, a));
  EXPECT_DOUBLE_EQ(distance(a, a), 0.0);
}

TEST(Vec2, DistanceSqMatchesDistance) {
  const Vec2 a{0.5, -0.25};
  const Vec2 b{2.0, 1.0};
  EXPECT_DOUBLE_EQ(distance_sq(a, b), distance(a, b) * distance(a, b));
}

TEST(Vec2, Midpoint) {
  const Vec2 m = midpoint(Vec2{0.0, 0.0}, Vec2{4.0, -2.0});
  EXPECT_EQ(m, (Vec2{2.0, -1.0}));
}

TEST(Vec2, TriangleInequality) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{1.0, 3.0};
  const Vec2 c{-2.0, 4.0};
  EXPECT_LE(distance(a, c), distance(a, b) + distance(b, c));
}

}  // namespace
}  // namespace drn::geo
