#include "geo/placement.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/expects.hpp"

namespace drn::geo {
namespace {

TEST(Placement, UniformDiscStaysInDisc) {
  Rng rng(7);
  const double radius = 50.0;
  const Placement p = uniform_disc(500, radius, rng);
  ASSERT_EQ(p.size(), 500u);
  for (const Vec2& v : p) EXPECT_LE(norm(v), radius);
}

TEST(Placement, UniformDiscIsAreaUniform) {
  // With r = R*sqrt(u), half the points fall inside radius R/sqrt(2).
  Rng rng(11);
  const double radius = 10.0;
  const Placement p = uniform_disc(20000, radius, rng);
  const double half_area_radius = radius / std::numbers::sqrt2;
  const auto inside = std::count_if(p.begin(), p.end(), [&](Vec2 v) {
    return norm(v) <= half_area_radius;
  });
  EXPECT_NEAR(static_cast<double>(inside) / 20000.0, 0.5, 0.02);
}

TEST(Placement, UniformDiscDeterministicPerSeed) {
  Rng a(3);
  Rng b(3);
  const Placement pa = uniform_disc(10, 1.0, a);
  const Placement pb = uniform_disc(10, 1.0, b);
  EXPECT_EQ(pa, pb);
  Rng c(4);
  EXPECT_NE(pa, uniform_disc(10, 1.0, c));
}

TEST(Placement, UniformSquareBounds) {
  Rng rng(5);
  const Placement p = uniform_square(200, 7.0, rng);
  for (const Vec2& v : p) {
    EXPECT_GE(v.x, 0.0);
    EXPECT_LT(v.x, 7.0);
    EXPECT_GE(v.y, 0.0);
    EXPECT_LT(v.y, 7.0);
  }
}

TEST(Placement, GridWithoutJitterIsExactLattice) {
  Rng rng(1);
  const Placement p = jittered_grid(3, 4, 2.0, 0.0, rng);
  ASSERT_EQ(p.size(), 12u);
  EXPECT_EQ(p[0], (Vec2{0.0, 0.0}));
  EXPECT_EQ(p[1], (Vec2{2.0, 0.0}));
  EXPECT_EQ(p[4], (Vec2{0.0, 2.0}));
  EXPECT_EQ(p[11], (Vec2{6.0, 4.0}));
}

TEST(Placement, GridJitterStaysBounded) {
  Rng rng(9);
  const Placement exact = jittered_grid(5, 5, 10.0, 0.0, rng);
  Rng rng2(9);
  const Placement jittered = jittered_grid(5, 5, 10.0, 1.0, rng2);
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_LE(std::abs(jittered[i].x - exact[i].x), 1.0);
    EXPECT_LE(std::abs(jittered[i].y - exact[i].y), 1.0);
  }
}

TEST(Placement, ClusteredDiscCountAndSpread) {
  Rng rng(13);
  const Placement p = clustered_disc(8, 25, 100.0, 5.0, rng);
  ASSERT_EQ(p.size(), 200u);
  // Every daughter lies within cluster_radius + radius of the origin.
  for (const Vec2& v : p) EXPECT_LE(norm(v), 105.0);
}

TEST(Placement, LineSpacing) {
  const Placement p = line(4, {1.0, 2.0}, 3.0);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p[0], (Vec2{1.0, 2.0}));
  EXPECT_EQ(p[3], (Vec2{10.0, 2.0}));
  for (std::size_t i = 0; i + 1 < p.size(); ++i)
    EXPECT_DOUBLE_EQ(distance(p[i], p[i + 1]), 3.0);
}

TEST(Placement, RingEquidistantFromCenter) {
  const Placement p = ring(12, 4.0);
  ASSERT_EQ(p.size(), 12u);
  for (const Vec2& v : p) EXPECT_NEAR(norm(v), 4.0, 1e-12);
  // Consecutive points are equally spaced.
  const double chord = distance(p[0], p[1]);
  for (std::size_t i = 0; i + 1 < p.size(); ++i)
    EXPECT_NEAR(distance(p[i], p[i + 1]), chord, 1e-12);
}

TEST(Placement, ExpectedNeighborsMatchesSection6) {
  // Section 6: with reach R0 = 1/sqrt(pi*sigma) the expected neighbour count
  // is exactly 1; doubling the reach makes it 4.
  const std::size_t n = 1000;
  const double region = 100.0;
  const double density =
      static_cast<double>(n) / (std::numbers::pi * region * region);
  const double r0 = 1.0 / std::sqrt(std::numbers::pi * density);
  EXPECT_NEAR(expected_neighbors(n, region, r0), 1.0, 1e-9);
  EXPECT_NEAR(expected_neighbors(n, region, 2.0 * r0), 4.0, 1e-9);
}

TEST(Placement, NearestNeighborDistancesBruteForce) {
  const Placement p = {{0.0, 0.0}, {1.0, 0.0}, {10.0, 0.0}, {10.0, 2.0}};
  const auto d = nearest_neighbor_distances(p);
  ASSERT_EQ(d.size(), 4u);
  EXPECT_DOUBLE_EQ(d[0], 1.0);
  EXPECT_DOUBLE_EQ(d[1], 1.0);
  EXPECT_DOUBLE_EQ(d[2], 2.0);
  EXPECT_DOUBLE_EQ(d[3], 2.0);
}

TEST(Placement, NearestNeighborScalesAsCharacteristicLength) {
  // Mean nearest-neighbour distance of a Poisson process of density sigma is
  // 1/(2 sqrt(sigma)) — the same order as the paper's R0 = 1/sqrt(pi sigma).
  Rng rng(21);
  const std::size_t n = 2000;
  const double region = 100.0;
  const Placement p = uniform_disc(n, region, rng);
  const auto d = nearest_neighbor_distances(p);
  double mean = 0.0;
  for (double x : d) mean += x;
  mean /= static_cast<double>(n);
  const double density =
      static_cast<double>(n) / (std::numbers::pi * region * region);
  EXPECT_NEAR(mean, 0.5 / std::sqrt(density), 0.15 / std::sqrt(density));
}

TEST(Placement, ContractViolations) {
  Rng rng(1);
  EXPECT_THROW(uniform_disc(5, 0.0, rng), ContractViolation);
  EXPECT_THROW(uniform_square(5, -1.0, rng), ContractViolation);
  EXPECT_THROW(jittered_grid(2, 2, 0.0, 0.0, rng), ContractViolation);
  EXPECT_THROW(line(3, {0, 0}, 0.0), ContractViolation);
  EXPECT_THROW(ring(3, 0.0), ContractViolation);
}

}  // namespace
}  // namespace drn::geo
