#include "geo/grid_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/expects.hpp"
#include "common/rng.hpp"
#include "geo/placement.hpp"

namespace drn::geo {
namespace {

Placement random_disc(std::size_t n, double radius_m, std::uint64_t seed) {
  Rng rng(seed);
  return uniform_disc(n, radius_m, rng);
}

TEST(GridIndex, EveryStationLandsInItsOwnCell) {
  const auto placement = random_disc(200, 1000.0, 7);
  const GridIndex grid(placement, 150.0);
  EXPECT_EQ(grid.station_count(), placement.size());
  std::size_t bucketed = 0;
  for (std::int32_t cell = 0; cell < grid.cell_count(); ++cell) {
    for (StationId s : grid.stations_in(cell)) {
      EXPECT_EQ(grid.cell_of(s), cell);
      EXPECT_EQ(grid.cell_at(placement[s]), cell);
      ++bucketed;
    }
  }
  EXPECT_EQ(bucketed, placement.size());
}

TEST(GridIndex, CellsListStationsInAscendingIdOrder) {
  const auto placement = random_disc(300, 800.0, 11);
  const GridIndex grid(placement, 100.0);
  for (std::int32_t cell = 0; cell < grid.cell_count(); ++cell) {
    const auto& ids = grid.stations_in(cell);
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  }
}

TEST(GridIndex, RangeQueryMatchesBruteForce) {
  const auto placement = random_disc(250, 1000.0, 3);
  const GridIndex grid(placement, 120.0);
  for (const double radius : {0.0, 50.0, 333.0, 1500.0}) {
    for (StationId probe : {StationId{0}, StationId{17}, StationId{249}}) {
      std::vector<StationId> via_grid;
      grid.for_each_station_within(placement[probe], radius,
                                   [&](StationId s) { via_grid.push_back(s); });
      std::vector<StationId> brute;
      for (StationId s = 0; s < placement.size(); ++s)
        if (distance_sq(placement[probe], placement[s]) < radius * radius)
          brute.push_back(s);
      std::sort(via_grid.begin(), via_grid.end());
      EXPECT_EQ(via_grid, brute) << "radius " << radius << " probe " << probe;
    }
  }
}

TEST(GridIndex, RangeQueryOutsideTheGridClampsToBorderCells) {
  const auto placement = random_disc(60, 500.0, 5);
  const GridIndex grid(placement, 80.0);
  // A probe far outside the bounding box still enumerates correctly: the
  // covering-cell range is computed from the clamped cell but the exact
  // distance filter decides membership.
  const Vec2 outside{4000.0, -4000.0};
  std::vector<StationId> via_grid;
  grid.for_each_station_within(outside, 5000.0,
                               [&](StationId s) { via_grid.push_back(s); });
  std::vector<StationId> brute;
  for (StationId s = 0; s < placement.size(); ++s)
    if (distance_sq(outside, placement[s]) < 5000.0 * 5000.0)
      brute.push_back(s);
  std::sort(via_grid.begin(), via_grid.end());
  EXPECT_EQ(via_grid, brute);
}

TEST(GridIndex, ChebyshevSeparationBoundsPairDistance) {
  const auto placement = random_disc(150, 1000.0, 9);
  const double cell = 130.0;
  const GridIndex grid(placement, cell);
  for (StationId a = 0; a < placement.size(); a += 7) {
    for (StationId b = 0; b < placement.size(); b += 11) {
      const int cheb = grid.chebyshev(grid.cell_of(a), grid.cell_of(b));
      const double d = std::sqrt(distance_sq(placement[a], placement[b]));
      // Stations in cells r apart (Chebyshev) are at least (r - 1) * cell_m
      // apart and at most (r + 1) * cell_m * sqrt(2) apart.
      if (cheb > 1) {
        EXPECT_GE(d, (cheb - 1) * cell);
      }
      EXPECT_LE(d, (cheb + 1) * cell * std::sqrt(2.0) + 1e-9);
    }
  }
}

TEST(GridIndex, NearestOtherMatchesBruteForce) {
  const auto placement = random_disc(120, 900.0, 13);
  const GridIndex grid(placement, 110.0);
  for (StationId s = 0; s < placement.size(); ++s) {
    double best_d2 = std::numeric_limits<double>::infinity();
    for (StationId t = 0; t < placement.size(); ++t) {
      if (t == s) continue;
      best_d2 = std::min(best_d2, distance_sq(placement[s], placement[t]));
    }
    const StationId got = grid.nearest_other(s);
    ASSERT_NE(got, kNoStation);
    // Ties (exactly equal distances) may resolve to either id; compare
    // distances, not ids.
    EXPECT_DOUBLE_EQ(distance_sq(placement[s], placement[got]), best_d2);
  }
}

TEST(GridIndex, SingleStationHasNoNearestOther) {
  Placement one;
  one.push_back(Vec2{0.0, 0.0});
  const GridIndex grid(one, 10.0);
  EXPECT_EQ(grid.nearest_other(0), kNoStation);
}

TEST(GridIndex, ContractsRejectBadArguments) {
  const auto placement = random_disc(10, 100.0, 1);
  EXPECT_THROW(GridIndex(placement, 0.0), ContractViolation);
  EXPECT_THROW(GridIndex(Placement{}, 10.0), ContractViolation);
  const GridIndex grid(placement, 25.0);
  EXPECT_THROW((void)grid.cell_of(10), ContractViolation);
  EXPECT_THROW((void)grid.stations_in(-1), ContractViolation);
}

}  // namespace
}  // namespace drn::geo
