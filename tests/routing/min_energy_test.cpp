#include "routing/min_energy.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/expects.hpp"
#include "common/rng.hpp"
#include "radio/propagation.hpp"
#include "routing/dijkstra.hpp"
#include "routing/graph.hpp"

namespace drn::routing {
namespace {

TEST(MinEnergy, PathEnergyCostSumsReciprocalGains) {
  radio::PropagationMatrix m(3);
  m.set_gain(0, 1, radio::LinearGain{0.5});
  m.set_gain(1, 2, radio::LinearGain{0.25});
  const std::array<StationId, 3> path = {0, 1, 2};
  EXPECT_DOUBLE_EQ(path_energy_cost(m, path), 2.0 + 4.0);
}

TEST(MinEnergy, CenteredRelayHalvesInterferenceEnergyAtDistantObserver) {
  // Figure 3's quantitative claim: relaying through the exact midpoint
  // doubles the interference duration but quarters the power, halving the
  // energy deposited at a distant observer D.
  const geo::Placement placement = {
      {0.0, 0.0},      // A
      {50.0, 0.0},     // B (midpoint)
      {100.0, 0.0},    // C
      {50.0, 1.0e5},   // D, far away and ~equidistant from all
  };
  const radio::FreeSpacePropagation model;
  const auto gains = radio::PropagationMatrix::from_placement(placement, model);
  const std::array<StationId, 2> direct = {0, 2};
  const std::array<StationId, 3> relayed = {0, 1, 2};
  const double e_direct = interference_energy_at(gains, direct, 3);
  const double e_relayed = interference_energy_at(gains, relayed, 3);
  EXPECT_NEAR(e_relayed / e_direct, 0.5, 0.01);
}

TEST(MinEnergy, OffCenterRelayReducesEnergyLess) {
  const geo::Placement placement = {
      {0.0, 0.0}, {20.0, 0.0}, {100.0, 0.0}, {50.0, 1.0e5}};
  const radio::FreeSpacePropagation model;
  const auto gains = radio::PropagationMatrix::from_placement(placement, model);
  const std::array<StationId, 2> direct = {0, 2};
  const std::array<StationId, 3> relayed = {0, 1, 2};
  const double ratio = interference_energy_at(gains, relayed, 3) /
                       interference_energy_at(gains, direct, 3);
  // (20^2 + 80^2) / 100^2 = 0.68: better than direct, worse than centred.
  EXPECT_NEAR(ratio, 0.68, 0.01);
  EXPECT_GT(ratio, 0.5);
}

TEST(MinEnergy, ObserverOnPathIsSkipped) {
  radio::PropagationMatrix m(3);
  m.set_gain(0, 1, radio::LinearGain{0.5});
  m.set_gain(1, 2, radio::LinearGain{0.25});
  m.set_gain(0, 2, radio::LinearGain{0.1});
  const std::array<StationId, 3> path = {0, 1, 2};
  // Observer 1 hears hop 0->1 (tx 0) but its own transmission is skipped.
  const double e = interference_energy_at(m, path, 1);
  EXPECT_DOUBLE_EQ(e, (1.0 / 0.5) * m.gain(1, 0));
}

TEST(MinEnergy, RelayCircleCriterion) {
  const geo::Vec2 a{0.0, 0.0};
  const geo::Vec2 c{10.0, 0.0};
  EXPECT_TRUE(relay_inside_criterion_circle(a, {5.0, 2.0}, c));
  EXPECT_FALSE(relay_inside_criterion_circle(a, {5.0, 5.0}, c));  // on circle
  EXPECT_FALSE(relay_inside_criterion_circle(a, {-1.0, 0.0}, c));
}

TEST(MinEnergy, DijkstraChoosesRelayExactlyWhenCircleCriterionSays) {
  // Sweep a relay B across positions; Dijkstra on the 1/gain graph must use
  // the relay exactly when B lies inside the A-C diameter circle.
  const geo::Vec2 a{0.0, 0.0};
  const geo::Vec2 c{100.0, 0.0};
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const geo::Vec2 b{rng.uniform(-30.0, 130.0), rng.uniform(-80.0, 80.0)};
    const geo::Placement placement = {a, b, c};
    const radio::FreeSpacePropagation model;
    const auto gains =
        radio::PropagationMatrix::from_placement(placement, model);
    const auto g = Graph::min_energy(gains, 1.0e-12);
    const PathTree t = shortest_paths(g, 0);
    const auto path = extract_path(t, 2);
    const bool used_relay = path.size() == 3;
    EXPECT_EQ(used_relay, relay_inside_criterion_circle(a, b, c))
        << "b=(" << b.x << "," << b.y << ")";
  }
}

TEST(MinEnergy, HopCount) {
  const std::array<StationId, 4> path = {0, 1, 2, 3};
  EXPECT_EQ(hop_count(path), 3u);
  const std::array<StationId, 1> single = {0};
  EXPECT_EQ(hop_count(single), 0u);
}

TEST(MinEnergy, Contracts) {
  radio::PropagationMatrix m(2);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  const std::array<StationId, 1> short_path = {0};
  EXPECT_THROW((void)path_energy_cost(m, short_path), ContractViolation);
  EXPECT_THROW((void)interference_energy_at(m, short_path, 1),
               ContractViolation);
  EXPECT_THROW((void)hop_count(std::span<const StationId>{}),
               ContractViolation);
}

}  // namespace
}  // namespace drn::routing
