#include "routing/dijkstra.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "common/expects.hpp"
#include "common/rng.hpp"
#include "geo/placement.hpp"
#include "radio/propagation.hpp"

namespace drn::routing {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Graph diamond() {
  // 0 -1- 1 -1- 3, 0 -5- 2 -1- 3: best 0->3 is via 1 (cost 2).
  Graph g(4);
  g.add_edge(0, 1, 1.0, 1.0);
  g.add_edge(1, 3, 1.0, 1.0);
  g.add_edge(0, 2, 5.0, 0.2);
  g.add_edge(2, 3, 1.0, 1.0);
  return g;
}

TEST(Dijkstra, ShortestCostsOnDiamond) {
  const PathTree t = shortest_paths(diamond(), 0);
  EXPECT_DOUBLE_EQ(t.cost[0], 0.0);
  EXPECT_DOUBLE_EQ(t.cost[1], 1.0);
  EXPECT_DOUBLE_EQ(t.cost[2], 3.0);  // via 3! 0-1-3-2 = 3 < direct 5
  EXPECT_DOUBLE_EQ(t.cost[3], 2.0);
}

TEST(Dijkstra, ExtractPath) {
  const PathTree t = shortest_paths(diamond(), 0);
  const auto path = extract_path(t, 3);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], 0u);
  EXPECT_EQ(path[1], 1u);
  EXPECT_EQ(path[2], 3u);
  const auto self_path = extract_path(t, 0);
  ASSERT_EQ(self_path.size(), 1u);
  EXPECT_EQ(self_path[0], 0u);
}

TEST(Dijkstra, UnreachableIsInfiniteAndEmptyPath) {
  Graph g(3);
  g.add_edge(0, 1, 1.0, 1.0);
  const PathTree t = shortest_paths(g, 0);
  EXPECT_EQ(t.cost[2], kInf);
  EXPECT_TRUE(extract_path(t, 2).empty());
}

TEST(Dijkstra, MatchesBruteForceOnRandomGraphs) {
  // Compare against Floyd-Warshall on small random graphs.
  Rng rng(42);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 12;
    Graph g(n);
    std::vector<std::vector<double>> dist(n, std::vector<double>(n, kInf));
    for (std::size_t i = 0; i < n; ++i) dist[i][i] = 0.0;
    for (StationId i = 0; i < n; ++i) {
      for (StationId j = static_cast<StationId>(i + 1); j < n; ++j) {
        if (!rng.bernoulli(0.4)) continue;
        const double c = rng.uniform(0.1, 10.0);
        g.add_edge(i, j, c, 1.0 / c);
        dist[i][j] = dist[j][i] = std::min(dist[i][j], c);
      }
    }
    for (std::size_t k = 0; k < n; ++k)
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
          dist[i][j] = std::min(dist[i][j], dist[i][k] + dist[k][j]);
    for (StationId src = 0; src < n; ++src) {
      const PathTree t = shortest_paths(g, src);
      for (std::size_t dst = 0; dst < n; ++dst)
        EXPECT_NEAR(t.cost[dst], dist[src][dst], 1e-9);
    }
  }
}

TEST(RoutingTables, NextHopsOnDiamond) {
  const auto tables = RoutingTables::build(diamond());
  EXPECT_EQ(tables.next_hop(0, 3), 1u);
  EXPECT_EQ(tables.next_hop(1, 3), 3u);
  EXPECT_EQ(tables.next_hop(3, 0), 1u);
  EXPECT_EQ(tables.next_hop(2, 0), 3u);  // 2-3-1-0 = 3 < 2-0 = 5
  EXPECT_DOUBLE_EQ(tables.cost(0, 3), 2.0);
  EXPECT_DOUBLE_EQ(tables.cost(0, 0), 0.0);
}

TEST(RoutingTables, PrefixConsistencyHoldsOnRandomNetworks) {
  // Section 6.2: hop-by-hop forwarding works because suffixes of optimal
  // paths are optimal.
  Rng rng(43);
  const auto placement = geo::uniform_disc(40, 500.0, rng);
  const radio::FreeSpacePropagation model;
  const auto gains = radio::PropagationMatrix::from_placement(placement, model);
  const auto g = Graph::min_energy(gains, 1.0e-6);
  const auto tables = RoutingTables::build(g);
  EXPECT_TRUE(tables.prefix_consistent());
}

TEST(RoutingTables, FollowingNextHopsReproducesDijkstraCost) {
  Rng rng(44);
  const auto placement = geo::uniform_disc(25, 300.0, rng);
  const radio::FreeSpacePropagation model;
  const auto gains = radio::PropagationMatrix::from_placement(placement, model);
  const auto g = Graph::min_energy(gains, 1.0e-6);
  const auto tables = RoutingTables::build(g);
  for (StationId src = 0; src < 25; ++src) {
    const PathTree t = shortest_paths(g, src);
    for (StationId dst = 0; dst < 25; ++dst) {
      if (src == dst || t.cost[dst] == kInf) continue;
      // Walk the tables and accumulate edge costs.
      double walked = 0.0;
      StationId at = src;
      int steps = 0;
      while (at != dst) {
        const StationId next = tables.next_hop(at, dst);
        ASSERT_NE(next, kNoStation);
        double edge = kInf;
        for (const Edge& e : g.edges(at))
          if (e.to == next) edge = std::min(edge, e.cost);
        walked += edge;
        at = next;
        ASSERT_LT(++steps, 26);
      }
      EXPECT_NEAR(walked, t.cost[dst], 1e-9);
    }
  }
}

TEST(RoutingTables, UnreachableNextHopIsNoStation) {
  Graph g(3);
  g.add_edge(0, 1, 1.0, 1.0);
  const auto tables = RoutingTables::build(g);
  EXPECT_EQ(tables.next_hop(0, 2), kNoStation);
  EXPECT_EQ(tables.cost(0, 2), kInf);
}

TEST(RoutingTables, RouterClosureMatchesTables) {
  const auto tables = RoutingTables::build(diamond());
  const auto router = tables.router();
  for (StationId at = 0; at < 4; ++at) {
    for (StationId dst = 0; dst < 4; ++dst) {
      if (at != dst) {
        EXPECT_EQ(router(at, dst), tables.next_hop(at, dst));
      }
    }
  }
}

TEST(Dijkstra, Contracts) {
  Graph g(2);
  g.add_edge(0, 1, 1.0, 1.0);
  EXPECT_THROW((void)shortest_paths(g, 2), ContractViolation);
  const PathTree t = shortest_paths(g, 0);
  EXPECT_THROW((void)extract_path(t, 5), ContractViolation);
}

}  // namespace
}  // namespace drn::routing
