#include "routing/bellman_ford.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/expects.hpp"
#include "geo/placement.hpp"
#include "radio/propagation.hpp"
#include "routing/dijkstra.hpp"

namespace drn::routing {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Graph random_graph(std::uint64_t seed, std::size_t n = 30,
                   double region = 400.0) {
  Rng rng(seed);
  const auto placement = geo::uniform_disc(n, region, rng);
  const radio::FreeSpacePropagation model;
  const auto gains = radio::PropagationMatrix::from_placement(placement, model);
  return Graph::min_energy(gains, 1.0e-6);
}

TEST(BellmanFord, InitialStateKnowsOnlySelf) {
  Graph g(3);
  g.add_edge(0, 1, 1.0, 1.0);
  const DistributedBellmanFord bf(g);
  EXPECT_DOUBLE_EQ(bf.cost(0, 0), 0.0);
  EXPECT_EQ(bf.cost(0, 1), kInf);
  EXPECT_EQ(bf.next_hop(0, 1), kNoStation);
}

TEST(BellmanFord, SynchronousConvergesToDijkstra) {
  const Graph g = random_graph(11);
  DistributedBellmanFord bf(g);
  const std::size_t rounds = bf.run_synchronous();
  EXPECT_LT(rounds, g.size() + 2);  // diameter-bounded
  for (StationId src = 0; src < g.size(); ++src) {
    const PathTree t = shortest_paths(g, src);
    for (StationId dst = 0; dst < g.size(); ++dst)
      EXPECT_NEAR(bf.cost(src, dst), t.cost[dst], 1e-9);
  }
}

TEST(BellmanFord, AsynchronousRandomOrderConvergesToo) {
  // The paper relies on the Bertsekas-Gallager result that asynchronous
  // relaxations converge regardless of order; test several random orders.
  const Graph g = random_graph(12);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    DistributedBellmanFord bf(g);
    Rng rng(seed);
    (void)bf.run_asynchronous(rng);
    for (StationId src = 0; src < g.size(); ++src) {
      const PathTree t = shortest_paths(g, src);
      for (StationId dst = 0; dst < g.size(); ++dst)
        EXPECT_NEAR(bf.cost(src, dst), t.cost[dst], 1e-9);
    }
  }
}

TEST(BellmanFord, NextHopsAreOptimal) {
  const Graph g = random_graph(13);
  DistributedBellmanFord bf(g);
  (void)bf.run_synchronous();
  // cost(at, dst) == edge(at, next) + cost(next, dst) for every pair.
  for (StationId at = 0; at < g.size(); ++at) {
    for (StationId dst = 0; dst < g.size(); ++dst) {
      if (at == dst || bf.cost(at, dst) == kInf) continue;
      const StationId next = bf.next_hop(at, dst);
      ASSERT_NE(next, kNoStation);
      double edge = kInf;
      for (const Edge& e : g.edges(at))
        if (e.to == next) edge = std::min(edge, e.cost);
      EXPECT_NEAR(bf.cost(at, dst), edge + bf.cost(next, dst), 1e-9);
    }
  }
}

TEST(BellmanFord, DisconnectedStaysInfinite) {
  radio::PropagationMatrix m(4);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  m.set_gain(2, 3, radio::LinearGain{1.0});
  const Graph g = Graph::min_energy(m, 0.5);
  DistributedBellmanFord bf(g);
  (void)bf.run_synchronous();
  EXPECT_EQ(bf.cost(0, 2), kInf);
  EXPECT_EQ(bf.next_hop(0, 2), kNoStation);
  EXPECT_DOUBLE_EQ(bf.cost(0, 1), 1.0);
}

TEST(BellmanFord, HopByHopForwardingReachesDestination) {
  const Graph g = random_graph(14);
  DistributedBellmanFord bf(g);
  (void)bf.run_synchronous();
  for (StationId src = 0; src < g.size(); ++src) {
    for (StationId dst = 0; dst < g.size(); ++dst) {
      if (src == dst || bf.cost(src, dst) == kInf) continue;
      StationId at = src;
      std::size_t steps = 0;
      while (at != dst) {
        at = bf.next_hop(at, dst);
        ASSERT_NE(at, kNoStation);
        ASSERT_LT(++steps, g.size() + 1) << "routing loop";
      }
    }
  }
}

TEST(BellmanFord, Contracts) {
  Graph g(2);
  g.add_edge(0, 1, 1.0, 1.0);
  DistributedBellmanFord bf(g);
  EXPECT_THROW((void)bf.relax(2), ContractViolation);
  EXPECT_THROW((void)bf.cost(0, 2), ContractViolation);
  Rng rng(1);
  EXPECT_THROW((void)bf.run_asynchronous(rng, 0), ContractViolation);
}

}  // namespace
}  // namespace drn::routing
