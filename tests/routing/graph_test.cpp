#include "routing/graph.hpp"

#include <gtest/gtest.h>

#include "common/expects.hpp"
#include "common/rng.hpp"
#include "geo/placement.hpp"
#include "radio/noise_growth.hpp"
#include "radio/propagation.hpp"

namespace drn::routing {
namespace {

radio::PropagationMatrix chain3() {
  radio::PropagationMatrix m(3);
  m.set_gain(0, 1, radio::LinearGain{0.5});
  m.set_gain(1, 2, radio::LinearGain{0.25});
  m.set_gain(0, 2, radio::LinearGain{0.01});
  return m;
}

TEST(Graph, MinEnergyCostsAreReciprocalGains) {
  const auto g = Graph::min_energy(chain3(), 0.001);
  ASSERT_EQ(g.size(), 3u);
  EXPECT_EQ(g.edge_count(), 3u);
  bool found01 = false;
  for (const Edge& e : g.edges(0)) {
    if (e.to == 1) {
      found01 = true;
      EXPECT_DOUBLE_EQ(e.cost, 2.0);  // 1/0.5
      EXPECT_DOUBLE_EQ(e.gain, 0.5);
    }
  }
  EXPECT_TRUE(found01);
}

TEST(Graph, ThresholdPrunesWeakLinks) {
  const auto g = Graph::min_energy(chain3(), 0.1);
  EXPECT_EQ(g.edge_count(), 2u);  // 0-2 (gain 0.01) pruned
  for (const Edge& e : g.edges(0)) EXPECT_NE(e.to, 2u);
}

TEST(Graph, MinHopUnitCosts) {
  const auto g = Graph::min_hop(chain3(), 0.001);
  for (StationId s = 0; s < 3; ++s)
    for (const Edge& e : g.edges(s)) EXPECT_DOUBLE_EQ(e.cost, 1.0);
}

TEST(Graph, EdgesAreBidirectional) {
  const auto g = Graph::min_energy(chain3(), 0.001);
  for (StationId s = 0; s < 3; ++s) {
    for (const Edge& e : g.edges(s)) {
      bool reverse = false;
      for (const Edge& r : g.edges(e.to)) reverse |= (r.to == s);
      EXPECT_TRUE(reverse);
    }
  }
}

TEST(Graph, ConnectedDetection) {
  const auto connected = Graph::min_energy(chain3(), 0.001);
  EXPECT_TRUE(connected.connected());
  radio::PropagationMatrix m(4);
  m.set_gain(0, 1, radio::LinearGain{1.0});
  m.set_gain(2, 3, radio::LinearGain{1.0});
  const auto split = Graph::min_energy(m, 0.5);
  EXPECT_FALSE(split.connected());
}

TEST(Graph, SingletonIsConnected) {
  EXPECT_TRUE(Graph(1).connected());
}

TEST(Graph, Degrees) {
  const auto g = Graph::min_energy(chain3(), 0.1);
  const auto d = g.degrees();
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d[0], 1u);
  EXPECT_EQ(d[1], 2u);
  EXPECT_EQ(d[2], 1u);
}

TEST(Graph, PaperNeighborCountStaysSmall) {
  // Section 5: with minimum-energy style reach (a handful of expected
  // neighbours), "the number of routing neighbors never exceeded eight" in
  // the author's random placements. Build random 100-station networks with
  // a reach of 2*R0 (expected 4 neighbours) and check degrees stay small.
  Rng rng(77);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t n = 100;
    const double region = 1000.0;
    const auto placement = geo::uniform_disc(n, region, rng);
    const radio::FreeSpacePropagation model;
    const auto gains = radio::PropagationMatrix::from_placement(placement, model);
    const double density = radio::disc_density(n, radio::Meters{region});
    const double r0 = radio::characteristic_length(density).value();
    const double reach = 2.0 * r0;
    const auto g = Graph::min_energy(gains, 1.0 / (reach * reach));
    double mean_degree = 0.0;
    for (std::size_t d : g.degrees())
      mean_degree += static_cast<double>(d);
    mean_degree /= static_cast<double>(n);
    EXPECT_NEAR(mean_degree, 4.0, 1.5);  // expected-neighbour count ~ 4
  }
}

TEST(Graph, HandshakeLemmaDegreeSum) {
  // Sum of degrees equals twice the undirected edge count, for random
  // graphs of varying density.
  Rng rng(88);
  for (double reach : {100.0, 250.0, 600.0}) {
    const auto placement = geo::uniform_disc(60, 500.0, rng);
    const radio::FreeSpacePropagation model;
    const auto gains =
        radio::PropagationMatrix::from_placement(placement, model);
    const auto g = Graph::min_energy(gains, 1.0 / (reach * reach));
    std::size_t degree_sum = 0;
    for (std::size_t d : g.degrees()) degree_sum += d;
    EXPECT_EQ(degree_sum, 2 * g.edge_count()) << reach;
  }
}

TEST(Graph, AddEdgeContracts) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 0, 1.0, 1.0), ContractViolation);
  EXPECT_THROW(g.add_edge(0, 3, 1.0, 1.0), ContractViolation);
  EXPECT_THROW(g.add_edge(0, 1, 0.0, 1.0), ContractViolation);
  EXPECT_THROW(g.add_edge(0, 1, 1.0, 0.0), ContractViolation);
  EXPECT_THROW(Graph(0), ContractViolation);
  EXPECT_THROW((void)Graph::min_energy(chain3(), 0.0), ContractViolation);
}

}  // namespace
}  // namespace drn::routing
