// End-to-end scenario assembly shared by the integration tests: placement ->
// propagation matrix -> scheduled network -> min-energy routing -> simulator
// with Poisson traffic.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "audit/invariant_auditor.hpp"
#include "core/network_builder.hpp"
#include "geo/placement.hpp"
#include "radio/propagation.hpp"
#include "radio/propagation_matrix.hpp"
#include "routing/dijkstra.hpp"
#include "routing/graph.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"

namespace drn::testing {

/// The paper-flavoured criterion used across integration tests: 1 Mb/s over
/// 200 MHz (23 dB processing gain) with the 5 dB detection margin.
inline radio::ReceptionCriterion scheme_criterion() {
  return radio::ReceptionCriterion(radio::Hertz{200.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{5.0});
}

/// Rides an InvariantAuditor along on `sim` for the scope's lifetime and
/// asserts a clean verdict (including the metrics cross-check) on
/// destruction. Declare one right after constructing a Simulator; every
/// integration test runs fully audited this way.
class ScopedAudit {
 public:
  explicit ScopedAudit(sim::Simulator& sim) : auditor_(sim), sim_(&sim) {
    sim.add_observer(&auditor_);
  }
  ScopedAudit(const ScopedAudit&) = delete;
  ScopedAudit& operator=(const ScopedAudit&) = delete;
  ~ScopedAudit() {
    auditor_.finalize(sim_->now());
    auditor_.cross_check(sim_->metrics());
    EXPECT_TRUE(auditor_.ok()) << auditor_.report();
    EXPECT_GT(auditor_.checks_run(), 0u);
  }

  [[nodiscard]] audit::InvariantAuditor& auditor() { return auditor_; }

 private:
  audit::InvariantAuditor auditor_;
  sim::Simulator* sim_;
};

struct Scenario {
  geo::Placement placement;
  radio::PropagationMatrix gains;
  core::ScheduledNetwork net;
  routing::RoutingTables tables;
};

/// Random-disc scenario with min-energy routing over the builder's neighbour
/// threshold. Deterministic in `seed`.
inline Scenario make_scenario(std::size_t stations, double region_m,
                              std::uint64_t seed,
                              core::ScheduledNetworkConfig net_cfg = {}) {
  Rng rng(seed);
  auto placement = geo::uniform_disc(stations, region_m, rng);
  const radio::FreeSpacePropagation model;
  auto gains = radio::PropagationMatrix::from_placement(placement, model);
  Rng build_rng = rng.split(1);
  auto net =
      build_scheduled_network(gains, scheme_criterion(), net_cfg, build_rng);
  const double min_gain = net_cfg.target_received_w / net_cfg.max_power_w;
  const auto graph = routing::Graph::min_energy(gains, min_gain);
  auto tables = routing::RoutingTables::build(graph);
  return Scenario{std::move(placement), std::move(gains), std::move(net),
                  std::move(tables)};
}

/// Runs Poisson traffic over the scenario's scheduled MACs and min-energy
/// routes. Consumes the scenario's MACs. Traffic is uniform random pairs
/// (multihop) and the run continues past the arrival window until queues
/// drain (drain_s).
inline const sim::Metrics& run_scheme(Scenario& scenario, sim::Simulator& sim,
                                      double packets_per_s, double duration_s,
                                      std::uint64_t traffic_seed,
                                      double drain_s = 60.0) {
  for (StationId s = 0; s < scenario.gains.size(); ++s)
    sim.set_mac(s, std::move(scenario.net.macs[s]));
  sim.set_router(scenario.tables.router());
  Rng rng(traffic_seed);
  const auto traffic = sim::poisson_traffic(
      packets_per_s, duration_s, scenario.net.packet_bits,
      sim::uniform_pairs(scenario.gains.size()), rng);
  for (const auto& inj : traffic) sim.inject(inj.time_s, inj.packet);
  sim.run_until(duration_s + drain_s);
  return sim.metrics();
}

}  // namespace drn::testing
