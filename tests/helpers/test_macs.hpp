// Minimal MAC implementations for driving the simulator deterministically in
// tests: a script-driven transmitter and an idle listener.
#pragma once

#include <utility>
#include <vector>

#include "common/types.hpp"
#include "sim/mac.hpp"

namespace drn::testing {

/// One pre-programmed transmission.
struct ScriptedTx {
  double start_s = 0.0;
  StationId to = kNoStation;
  double power_w = 1.0;
  double size_bits = 1000.0;
};

/// Transmits exactly the scripted transmissions at their scripted times.
/// Forwarded packets (on_enqueue) are dropped — scripts describe the entire
/// behaviour.
class ScriptMac final : public sim::MacProtocol {
 public:
  explicit ScriptMac(std::vector<ScriptedTx> script)
      : script_(std::move(script)) {}

  void on_start(sim::MacContext& ctx) override {
    for (std::size_t i = 0; i < script_.size(); ++i)
      ctx.set_timer(script_[i].start_s, i);
  }

  void on_timer(sim::MacContext& ctx, std::uint64_t cookie) override {
    const ScriptedTx& s = script_[cookie];
    sim::Packet pkt;
    pkt.source = ctx.self();
    pkt.destination = s.to;
    pkt.size_bits = s.size_bits;
    ctx.transmit(pkt, s.to, s.power_w, ctx.now());
  }

  void on_enqueue(sim::MacContext& ctx, const sim::Packet& pkt,
                  StationId /*next_hop*/) override {
    ctx.drop(pkt);
  }

 private:
  std::vector<ScriptedTx> script_;
};

/// Never transmits; drops anything handed to it.
class IdleMac final : public sim::MacProtocol {
 public:
  void on_enqueue(sim::MacContext& ctx, const sim::Packet& pkt,
                  StationId /*next_hop*/) override {
    ctx.drop(pkt);
  }
};

}  // namespace drn::testing
