#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/expects.hpp"

namespace drn {
namespace {

TEST(SplitMix, KnownSequenceAdvancesState) {
  std::uint64_t state = 0;
  const std::uint64_t a = splitmix64_next(state);
  const std::uint64_t b = splitmix64_next(state);
  EXPECT_NE(a, b);
  // Reference value for splitmix64 with initial state 0 (first output).
  EXPECT_EQ(a, 0xe220a8397b1dcdafULL);
}

TEST(HashU64, DeterministicAndSeedSensitive) {
  EXPECT_EQ(hash_u64(1, 42), hash_u64(1, 42));
  EXPECT_NE(hash_u64(1, 42), hash_u64(2, 42));
  EXPECT_NE(hash_u64(1, 42), hash_u64(1, 43));
}

TEST(HashU64, UniformBitsRoughly) {
  // Mean of hashes scaled to [0,1) should be near 1/2.
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    sum += static_cast<double>(hash_u64(99, static_cast<std::uint64_t>(i)) >> 11) *
           0x1.0p-53;
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ReproducibleAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 32; ++i) seen.insert(r());
  EXPECT_GT(seen.size(), 30u);  // not stuck
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(5);
  double lo = 1.0;
  double hi = 0.0;
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
  EXPECT_LT(lo, 0.001);
  EXPECT_GT(hi, 0.999);
}

TEST(Rng, UniformRange) {
  Rng r(6);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 7.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 7.0);
  }
  EXPECT_THROW((void)r.uniform(2.0, 1.0), ContractViolation);
}

TEST(Rng, UniformIndexCoversRangeUniformly) {
  Rng r(7);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.uniform_index(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 100);
  EXPECT_THROW((void)r.uniform_index(0), ContractViolation);
}

TEST(Rng, UniformIndexOfOneIsZero) {
  Rng r(8);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_index(1), 0u);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (r.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
  EXPECT_THROW((void)r.bernoulli(1.5), ContractViolation);
}

TEST(Rng, BernoulliDegenerateCases) {
  Rng r(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialMeanAndPositivity) {
  Rng r(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = r.exponential(4.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.01);
  EXPECT_THROW((void)r.exponential(0.0), ContractViolation);
}

TEST(Rng, NormalMomentsAreStandard) {
  Rng r(12);
  double sum = 0.0;
  double sumsq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Rng, GoldenValuesLockCrossPlatformDeterminism) {
  // These values pin the generator output forever: any platform, compiler,
  // or refactor that changes them breaks reproducibility of every seeded
  // simulation in the repository. (Self-golden: captured from this
  // implementation, which matches the published xoshiro256** update rule.)
  Rng r(12345);
  EXPECT_EQ(r(), 0xbe6a36374160d49bULL);
  EXPECT_EQ(r(), 0x214aaa0637a688c6ULL);
  EXPECT_EQ(r(), 0xf69d16de9954d388ULL);
  EXPECT_EQ(r(), 0x0c60048c4e96e033ULL);
  std::uint64_t s = 42;
  EXPECT_EQ(splitmix64_next(s), 0xbdd732262feb6e95ULL);
  EXPECT_EQ(hash_u64(7, 99), 0xe5e7a27c488b4d8cULL);
}

TEST(Rng, SplitProducesDecorrelatedStreams) {
  Rng master(42);
  Rng s1 = master.split(1);
  Rng s2 = master.split(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (s1() == s2()) ++equal;
  EXPECT_EQ(equal, 0);
}

}  // namespace
}  // namespace drn
