// Contract-path coverage: every public API guarded by DRN_EXPECTS /
// DRN_ENSURES must reject misuse by throwing drn::ContractViolation whose
// message names the failed expression and its file:line — never by silently
// corrupting a simulation. One representative contract per module.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "audit/invariant_auditor.hpp"
#include "common/expects.hpp"
#include "common/rng.hpp"
#include "common/running_stats.hpp"
#include "geo/placement.hpp"
#include "helpers/test_macs.hpp"
#include "radio/propagation_matrix.hpp"
#include "radio/reception.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"

namespace drn {
namespace {

/// Runs `fn`, requires it to throw ContractViolation, returns the message.
template <typename Fn>
std::string violation_message(Fn&& fn) {
  try {
    fn();
  } catch (const ContractViolation& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected ContractViolation";
  return {};
}

TEST(Contracts, RngRejectsInvertedRangeWithLocation) {
  Rng rng(1);
  const std::string what =
      violation_message([&] { (void)rng.uniform(2.0, 1.0); });
  EXPECT_NE(what.find("lo <= hi"), std::string::npos) << what;
  EXPECT_NE(what.find("rng.hpp:"), std::string::npos) << what;
}

TEST(Contracts, RngRejectsEmptyIndexRangeAndBadProbability) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform_index(0), ContractViolation);
  EXPECT_THROW((void)rng.bernoulli(1.5), ContractViolation);
  EXPECT_THROW((void)rng.exponential(0.0), ContractViolation);
}

TEST(Contracts, EventQueueRejectsPopAndNextTimeWhenEmpty) {
  sim::EventQueue q;
  EXPECT_THROW((void)q.pop(), ContractViolation);
  EXPECT_THROW((void)q.next_time(), ContractViolation);
}

TEST(Contracts, RunningStatsRejectsMomentsOfNoSamples) {
  const RunningStats stats;
  EXPECT_THROW((void)stats.mean(), ContractViolation);
}

TEST(Contracts, PropagationMatrixRejectsBadConstructionAndIndices) {
  EXPECT_THROW(radio::PropagationMatrix m(0), ContractViolation);
  radio::PropagationMatrix m(3);
  EXPECT_THROW((void)m.gain(0, 3), ContractViolation);
  EXPECT_THROW(m.set_gain(0, 1, radio::LinearGain{0.0}), ContractViolation);
}

TEST(Contracts, ReceptionCriterionRejectsNonPositiveDesignPoint) {
  EXPECT_THROW(radio::ReceptionCriterion(radio::Hertz{0.0}, radio::BitsPerSecond{1.0e6}, radio::Decibels{0.0}), ContractViolation);
  EXPECT_THROW(radio::ReceptionCriterion(radio::Hertz{1.0e6}, radio::BitsPerSecond{0.0}, radio::Decibels{0.0}), ContractViolation);
  EXPECT_THROW(radio::ReceptionCriterion(radio::Hertz{1.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{-1.0}),
               ContractViolation);
}

TEST(Contracts, PlacementRejectsNonPositiveRegion) {
  Rng rng(1);
  EXPECT_THROW((void)geo::uniform_disc(4, 0.0, rng), ContractViolation);
}

TEST(Contracts, MetricsRejectsBadRecordsAndQueries) {
  EXPECT_THROW(sim::Metrics m(0), ContractViolation);
  sim::Metrics m(2);
  EXPECT_THROW(m.record_hop_loss(sim::LossType::kNone), ContractViolation);
  EXPECT_THROW((void)m.airtime_s(2), ContractViolation);
  EXPECT_THROW((void)m.duty_cycle(0, 0.0), ContractViolation);
}

TEST(Contracts, SimulatorRejectsMisuseWithLocation) {
  radio::PropagationMatrix gains(2);
  gains.set_gain(0, 1, radio::LinearGain{1.0});
  sim::SimulatorConfig cfg{radio::ReceptionCriterion(radio::Hertz{1.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{0.0})};
  sim::Simulator sim(gains, cfg);
  EXPECT_THROW(sim.set_mac(2, std::make_unique<drn::testing::IdleMac>()),
               ContractViolation);
  EXPECT_THROW(sim.set_mac(0, nullptr), ContractViolation);
  EXPECT_THROW(sim.add_observer(nullptr), ContractViolation);

  sim::Packet pkt;
  pkt.source = 0;
  pkt.destination = 0;  // source == destination
  pkt.size_bits = 100.0;
  const std::string what = violation_message([&] { sim.inject(0.0, pkt); });
  EXPECT_NE(what.find("packet.source != packet.destination"),
            std::string::npos)
      << what;
  EXPECT_NE(what.find("simulator.cpp:"), std::string::npos) << what;

  // Running requires every station to have a MAC installed.
  EXPECT_THROW(sim.run_until(1.0), ContractViolation);
}

TEST(Contracts, SimulatorRejectsRunningBackwards) {
  radio::PropagationMatrix gains(2);
  gains.set_gain(0, 1, radio::LinearGain{1.0});
  sim::SimulatorConfig cfg{radio::ReceptionCriterion(radio::Hertz{1.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{0.0})};
  sim::Simulator sim(gains, cfg);
  sim.set_mac(0, std::make_unique<drn::testing::IdleMac>());
  sim.set_mac(1, std::make_unique<drn::testing::IdleMac>());
  sim.run_until(1.0);
  EXPECT_THROW(sim.run_until(0.5), ContractViolation);
}

TEST(Contracts, AuditorRejectsUnusableConfiguration) {
  audit::AuditConfig cfg;
  cfg.stations = 0;  // nothing to audit
  cfg.thermal_noise = units::Watts{1e-12};
  EXPECT_THROW(audit::InvariantAuditor a(cfg), ContractViolation);
  cfg.stations = 4;
  cfg.thermal_noise = units::Watts{0.0};  // SINR bound would divide by zero
  EXPECT_THROW(audit::InvariantAuditor a(cfg), ContractViolation);
  cfg.thermal_noise = units::Watts{1e-12};
  cfg.despreading_channels = 0;
  EXPECT_THROW(audit::InvariantAuditor a(cfg), ContractViolation);
}

}  // namespace
}  // namespace drn
