// Compile-time checks of the unit algebra in common/units.hpp: every legal
// operation's result TYPE and VALUE, pinned with static_assert so a refactor
// that changes either breaks this translation unit rather than a simulation.
// The forbidden half of the contract (what must NOT compile) lives in
// tests/static/ as negative-compile probes.
#include "common/units.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <type_traits>

namespace drn::units {
namespace {

template <class Expected, class Actual>
constexpr bool is = std::is_same_v<Expected, std::remove_const_t<Actual>>;

// --- result types of the cross-dimension operators ----------------------

static_assert(is<LinearGain, decltype(Watts{} / Watts{})>);
static_assert(is<Watts, decltype(Watts{} * LinearGain{})>);
static_assert(is<Watts, decltype(LinearGain{} * Watts{})>);
static_assert(is<Watts, decltype(Watts{} / LinearGain{})>);
static_assert(is<LinearGain, decltype(Hertz{} / BitsPerSecond{})>);
static_assert(is<BitsPerSecond, decltype(Hertz{} / LinearGain{})>);
static_assert(is<double, decltype(BitsPerSecond{} / Hertz{})>);
static_assert(is<Seconds, decltype(Bits{} / BitsPerSecond{})>);
static_assert(is<BitsPerSecond, decltype(Bits{} / Seconds{})>);
static_assert(is<Bits, decltype(BitsPerSecond{} * Seconds{})>);
static_assert(is<Seconds, decltype(Slots{} * Seconds{})>);
static_assert(is<Seconds, decltype(Seconds{} * Slots{})>);
static_assert(is<DecibelMilliwatts, decltype(DecibelMilliwatts{} + Decibels{})>);
static_assert(is<DecibelMilliwatts, decltype(DecibelMilliwatts{} - Decibels{})>);
static_assert(is<Decibels, decltype(DecibelMilliwatts{} - DecibelMilliwatts{})>);
static_assert(is<LinearGain, decltype(LinearGain{} * LinearGain{})>);

// Same-dimension ratios are dimensionless.
static_assert(is<double, decltype(Seconds{} / Seconds{})>);
static_assert(is<double, decltype(Meters{} / Meters{})>);
static_assert(is<double, decltype(Hertz{} / Hertz{})>);
static_assert(is<double, decltype(Decibels{} / Decibels{})>);
static_assert(is<double, decltype(Slots{} / Slots{})>);

// --- values: the algebra is plain double arithmetic, no scaling ----------

static_assert((Seconds{1.5} + Seconds{0.25}).value() == 1.75);
static_assert((Seconds{1.5} - Seconds{0.25}).value() == 1.25);
static_assert((-Seconds{2.0}).value() == -2.0);
static_assert((Watts{6.0} / Watts{3.0}).value() == 2.0);
static_assert((Watts{8.0} * LinearGain{0.25}).value() == 2.0);
static_assert((Hertz{2.0e8} / BitsPerSecond{1.0e6}).value() == 200.0);
static_assert((Hertz{2.0e8} / LinearGain{200.0}).value() == 1.0e6);
static_assert((Bits{1.0e4} / BitsPerSecond{2.0e6}).value() == 0.005);
static_assert((Slots{3.0} * Seconds{0.01}).value() == 0.03);
static_assert((DecibelMilliwatts{-30.0} + Decibels{10.0}).value() == -20.0);
static_assert((DecibelMilliwatts{7.0} - DecibelMilliwatts{3.0}).value() == 4.0);
static_assert(Watts{2.0}.to_milliwatts().value() == 2000.0);
static_assert(Milliwatts{2.0}.to_watts().value() == 0.002);

// Power-of-two scale round trip is exact: W -> mW -> W at 2^k watts stays
// within one ulp (checked with a tolerance at runtime for arbitrary values).
static_assert(Watts{0.0}.to_milliwatts().to_watts().value() == 0.0);

// Ordering exists; equality deliberately does not (see tests/static/).
static_assert(Seconds{1.0} < Seconds{2.0});
static_assert(Watts{2.0} >= Watts{2.0});
static_assert(Decibels{-3.0} <= Decibels{0.0});

// Default construction is zero for every unit.
static_assert(Seconds{}.value() == 0.0);
static_assert(Watts{}.value() == 0.0);
static_assert(DecibelMilliwatts{}.value() == 0.0);

// Zero-overhead claim: each type is exactly one double, trivially copyable.
static_assert(sizeof(Watts) == sizeof(double));
static_assert(sizeof(Decibels) == sizeof(double));
static_assert(sizeof(Seconds) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Watts>);
static_assert(std::is_trivially_copyable_v<Slots>);

// --- the runtime bridges (not constexpr: log10/pow) ----------------------

TEST(UnitsAlgebra, MilliwattRoundTripNearExact) {
  for (double w : {1.234e-9, 3.0e-15, 0.5, 7.0}) {
    EXPECT_NEAR(Watts{w}.to_milliwatts().to_watts().value(), w, 1e-15 * w);
  }
}

TEST(UnitsAlgebra, DbLinearBridgesMatchClosedForm) {
  EXPECT_DOUBLE_EQ(Decibels{5.0}.to_linear().value(), std::pow(10.0, 0.5));
  EXPECT_DOUBLE_EQ(LinearGain{100.0}.to_db().value(), 20.0);
  EXPECT_DOUBLE_EQ(Watts{1.0}.to_dbm().value(), 30.0);
  EXPECT_DOUBLE_EQ(DecibelMilliwatts{30.0}.to_watts().value(), 1.0);
}

TEST(UnitsAlgebra, BridgeContracts) {
  EXPECT_THROW((void)LinearGain{0.0}.to_db(), ContractViolation);
  EXPECT_THROW((void)LinearGain{-1.0}.to_db(), ContractViolation);
  EXPECT_THROW((void)Watts{0.0}.to_dbm(), ContractViolation);
}

TEST(UnitsAlgebra, FormatSpellsTheUnit) {
  EXPECT_EQ(format(Seconds{0.25}), "0.25 s");
  EXPECT_EQ(format(Watts{1.0e-9}), "1e-09 W");
  EXPECT_EQ(format(Decibels{23.0}), "23 dB");
  EXPECT_EQ(format(DecibelMilliwatts{-60.0}), "-60 dBm");
  EXPECT_EQ(format(Slots{4.76}), "4.76 slots");
}

}  // namespace
}  // namespace drn::units
