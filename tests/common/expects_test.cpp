#include "common/expects.hpp"

#include <gtest/gtest.h>

#include <string>

namespace drn {
namespace {

int checked_increment(int x) {
  DRN_EXPECTS(x >= 0);
  const int y = x + 1;
  DRN_ENSURES(y > x);
  return y;
}

TEST(Expects, PassingCheckIsSilent) { EXPECT_EQ(checked_increment(3), 4); }

TEST(Expects, FailingPreconditionThrows) {
  EXPECT_THROW(checked_increment(-1), ContractViolation);
}

TEST(Expects, MessageNamesExpressionAndLocation) {
  try {
    checked_increment(-5);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("x >= 0"), std::string::npos);
    EXPECT_NE(what.find("expects_test.cpp"), std::string::npos);
  }
}

TEST(Expects, ContractViolationIsLogicError) {
  // Callers may catch std::logic_error generically.
  EXPECT_THROW(checked_increment(-1), std::logic_error);
}

}  // namespace
}  // namespace drn
