#include "common/running_stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/expects.hpp"
#include "common/rng.hpp"

namespace drn {
namespace {

TEST(RunningStats, EmptyThrowsOnQueries) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_THROW((void)s.mean(), ContractViolation);
  EXPECT_THROW((void)s.min(), ContractViolation);
  EXPECT_THROW((void)s.max(), ContractViolation);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_THROW((void)s.variance(), ContractViolation);  // needs two samples
}

TEST(RunningStats, KnownSmallSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sum of squared deviations = 32; unbiased variance = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MatchesTwoPassComputation) {
  Rng rng(99);
  RunningStats s;
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(-10.0, 10.0);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-10);
  EXPECT_NEAR(s.variance(), var, 1e-8);
}

TEST(RunningStats, StableUnderLargeOffset) {
  // Welford should not lose the variance of tiny fluctuations around a large
  // mean.
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.add(1.0e9 + (i % 2 == 0 ? 0.5 : -0.5));
  // Unbiased: sum of squared deviations 250 over n-1 = 999.
  EXPECT_NEAR(s.variance(), 250.0 / 999.0, 1e-6);
}

}  // namespace
}  // namespace drn
