// MUST NOT COMPILE: A decibel value is already logarithmic; to_db() exists only on LinearGain.
#include "common/units.hpp"

using namespace drn::units;

auto probe() { return Decibels{3.0}.to_db(); }
