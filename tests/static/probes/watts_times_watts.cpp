// MUST NOT COMPILE: Power times power (W^2) is not a quantity the paper uses anywhere.
#include "common/units.hpp"

using namespace drn::units;

auto probe() { return Watts{1.0} * Watts{2.0}; }
