// MUST NOT COMPILE: Adding a logarithmic ratio to a linear power mixes scales (Eq. 5-6 operate in linear space).
#include "common/units.hpp"

using namespace drn::units;

auto probe() { return Decibels{3.0} + Watts{1.0}; }
