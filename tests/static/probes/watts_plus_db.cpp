// MUST NOT COMPILE: Adding a linear power to a logarithmic ratio mixes scales.
#include "common/units.hpp"

using namespace drn::units;

auto probe() { return Watts{1.0} + Decibels{3.0}; }
