// MUST NOT COMPILE: dBm is an absolute level, not a ratio: the sum of two absolute levels is meaningless.
#include "common/units.hpp"

using namespace drn::units;

auto probe() { return DecibelMilliwatts{0.0} + DecibelMilliwatts{3.0}; }
