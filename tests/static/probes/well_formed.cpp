// MUST COMPILE: the legal unit algebra, exercised end to end. This probe
// is the meta-test for the negative-compile harness: if the harness has a
// broken include path or compiler line, this probe fails too and the
// static_units_well_formed test catches it (instead of every MUST-NOT
// probe silently "passing" by failing for the wrong reason).
#include "common/units.hpp"

using namespace drn::units;

static_assert((Seconds{1.5} + Seconds{0.5}).value() == 2.0);
static_assert((Watts{2.0} / Watts{4.0}).value() == 0.5);
static_assert((Watts{2.0} * LinearGain{0.25}).value() == 0.5);
static_assert((Hertz{2.0e8} / BitsPerSecond{1.0e6}).value() == 200.0);
static_assert((Bits{1.0e4} / BitsPerSecond{2.0e6}).value() == 0.005);
static_assert((Slots{4.76} * Seconds{0.01}).value() > 0.047);
static_assert((DecibelMilliwatts{0.0} + Decibels{3.0}).value() == 3.0);
static_assert((DecibelMilliwatts{10.0} - DecibelMilliwatts{4.0}).value() == 6.0);
static_assert(Watts{1.0}.to_milliwatts().value() == 1000.0);
static_assert(Milliwatts{1.0}.to_watts().value() == 0.001);

double runtime_bridges() {
  // The only dB <-> linear bridges, spelled out.
  const LinearGain g = Decibels{5.0}.to_linear();
  const Decibels d = LinearGain{200.0}.to_db();
  const DecibelMilliwatts p = Watts{1.0}.to_dbm();
  return g.value() + d.value() + p.to_watts().value();
}

int main() { return runtime_bridges() > 0.0 ? 0 : 1; }
