// MUST NOT COMPILE: A linear ratio is already linear; to_linear() exists only on Decibels.
#include "common/units.hpp"

using namespace drn::units;

auto probe() { return LinearGain{2.0}.to_linear(); }
