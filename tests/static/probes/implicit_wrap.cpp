// MUST NOT COMPILE: Raw doubles never silently become dimensioned quantities; construction is explicit.
#include "common/units.hpp"

using namespace drn::units;

Watts probe() { return 1.0; }
