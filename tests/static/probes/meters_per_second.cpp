// MUST NOT COMPILE: The layer defines no velocity dimension; Meters / Seconds must not invent one.
#include "common/units.hpp"

using namespace drn::units;

auto probe() { return Meters{1.0} / Seconds{2.0}; }
