// MUST NOT COMPILE: A duration is not a distance; no implicit cross-dimension conversion exists.
#include "common/units.hpp"

using namespace drn::units;

double span(Meters m) { return m.value(); }
double probe() { return span(Seconds{1.0}); }
