// MUST NOT COMPILE: Exact == on computed physical quantities is banned; compare with <,<=,>,>= or a tolerance on .value().
#include "common/units.hpp"

using namespace drn::units;

bool probe() { return Seconds{1.0} == Seconds{1.0}; }
