// MUST NOT COMPILE: Dimensioned quantities never silently decay to raw doubles; extraction is .value().
#include "common/units.hpp"

using namespace drn::units;

double probe() { return Watts{1.0}; }
