// MUST NOT COMPILE: W and mW differ by a scale factor; adding them without to_watts()/to_milliwatts() is a bug.
#include "common/units.hpp"

using namespace drn::units;

auto probe() { return Watts{1.0} + Milliwatts{1.0}; }
