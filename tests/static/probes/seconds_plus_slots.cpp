// MUST NOT COMPILE: A slot count only becomes time when multiplied by a slot duration (Section 7).
#include "common/units.hpp"

using namespace drn::units;

auto probe() { return Seconds{1.0} + Slots{1.0}; }
