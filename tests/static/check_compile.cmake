# Test driver for the negative-compile probes in probes/.
#
# Invoked by ctest as
#   cmake -DCXX=... -DPROBE=... -DINCLUDE_DIR=... -DEXPECT_FAIL=ON|OFF
#         -P check_compile.cmake
# and runs the probe through the project compiler with -fsyntax-only.
#
# EXPECT_FAIL=ON  -> the probe must be REJECTED (ill-formed unit algebra).
# EXPECT_FAIL=OFF -> the probe must be ACCEPTED (harness meta-test).
#
# A probe that "fails to compile" because the harness itself is broken — a
# missing probe file or include directory — must not count as a pass, so
# infrastructure errors are detected explicitly before the result check.

if(NOT EXISTS "${PROBE}")
  message(FATAL_ERROR "harness error: probe file not found: ${PROBE}")
endif()
if(NOT EXISTS "${INCLUDE_DIR}/common/units.hpp")
  message(FATAL_ERROR
      "harness error: units.hpp not under include dir: ${INCLUDE_DIR}")
endif()

execute_process(
  COMMAND "${CXX}" -std=c++20 -fsyntax-only -I "${INCLUDE_DIR}" "${PROBE}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

# A missing header or probe reaching the compiler anyway (e.g. a stale path
# cached by ctest) also reads as "did not compile" — reject that explicitly.
if(err MATCHES "No such file or directory")
  message(FATAL_ERROR "harness error: compiler could not find an input:\n${err}")
endif()

if(EXPECT_FAIL)
  if(rc EQUAL 0)
    message(FATAL_ERROR
        "ill-formed probe COMPILED — the unit layer lost a compile-time "
        "guarantee: ${PROBE}")
  endif()
else()
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "well-formed probe REJECTED — harness or unit layer broken:\n${err}")
  endif()
endif()
