# Empty dependencies file for drn_radio.
# This may be replaced when dependencies are built.
