file(REMOVE_RECURSE
  "CMakeFiles/drn_radio.dir/radio/noise_growth.cpp.o"
  "CMakeFiles/drn_radio.dir/radio/noise_growth.cpp.o.d"
  "CMakeFiles/drn_radio.dir/radio/propagation.cpp.o"
  "CMakeFiles/drn_radio.dir/radio/propagation.cpp.o.d"
  "CMakeFiles/drn_radio.dir/radio/propagation_matrix.cpp.o"
  "CMakeFiles/drn_radio.dir/radio/propagation_matrix.cpp.o.d"
  "CMakeFiles/drn_radio.dir/radio/reception.cpp.o"
  "CMakeFiles/drn_radio.dir/radio/reception.cpp.o.d"
  "CMakeFiles/drn_radio.dir/radio/units.cpp.o"
  "CMakeFiles/drn_radio.dir/radio/units.cpp.o.d"
  "libdrn_radio.a"
  "libdrn_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drn_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
