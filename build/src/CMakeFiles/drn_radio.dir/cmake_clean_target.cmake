file(REMOVE_RECURSE
  "libdrn_radio.a"
)
