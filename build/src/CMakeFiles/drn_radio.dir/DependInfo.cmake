
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/radio/noise_growth.cpp" "src/CMakeFiles/drn_radio.dir/radio/noise_growth.cpp.o" "gcc" "src/CMakeFiles/drn_radio.dir/radio/noise_growth.cpp.o.d"
  "/root/repo/src/radio/propagation.cpp" "src/CMakeFiles/drn_radio.dir/radio/propagation.cpp.o" "gcc" "src/CMakeFiles/drn_radio.dir/radio/propagation.cpp.o.d"
  "/root/repo/src/radio/propagation_matrix.cpp" "src/CMakeFiles/drn_radio.dir/radio/propagation_matrix.cpp.o" "gcc" "src/CMakeFiles/drn_radio.dir/radio/propagation_matrix.cpp.o.d"
  "/root/repo/src/radio/reception.cpp" "src/CMakeFiles/drn_radio.dir/radio/reception.cpp.o" "gcc" "src/CMakeFiles/drn_radio.dir/radio/reception.cpp.o.d"
  "/root/repo/src/radio/units.cpp" "src/CMakeFiles/drn_radio.dir/radio/units.cpp.o" "gcc" "src/CMakeFiles/drn_radio.dir/radio/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/drn_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
