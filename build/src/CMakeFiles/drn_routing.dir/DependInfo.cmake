
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/bellman_ford.cpp" "src/CMakeFiles/drn_routing.dir/routing/bellman_ford.cpp.o" "gcc" "src/CMakeFiles/drn_routing.dir/routing/bellman_ford.cpp.o.d"
  "/root/repo/src/routing/dijkstra.cpp" "src/CMakeFiles/drn_routing.dir/routing/dijkstra.cpp.o" "gcc" "src/CMakeFiles/drn_routing.dir/routing/dijkstra.cpp.o.d"
  "/root/repo/src/routing/graph.cpp" "src/CMakeFiles/drn_routing.dir/routing/graph.cpp.o" "gcc" "src/CMakeFiles/drn_routing.dir/routing/graph.cpp.o.d"
  "/root/repo/src/routing/min_energy.cpp" "src/CMakeFiles/drn_routing.dir/routing/min_energy.cpp.o" "gcc" "src/CMakeFiles/drn_routing.dir/routing/min_energy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/drn_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
