file(REMOVE_RECURSE
  "libdrn_routing.a"
)
