# Empty dependencies file for drn_routing.
# This may be replaced when dependencies are built.
