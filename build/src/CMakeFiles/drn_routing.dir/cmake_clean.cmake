file(REMOVE_RECURSE
  "CMakeFiles/drn_routing.dir/routing/bellman_ford.cpp.o"
  "CMakeFiles/drn_routing.dir/routing/bellman_ford.cpp.o.d"
  "CMakeFiles/drn_routing.dir/routing/dijkstra.cpp.o"
  "CMakeFiles/drn_routing.dir/routing/dijkstra.cpp.o.d"
  "CMakeFiles/drn_routing.dir/routing/graph.cpp.o"
  "CMakeFiles/drn_routing.dir/routing/graph.cpp.o.d"
  "CMakeFiles/drn_routing.dir/routing/min_energy.cpp.o"
  "CMakeFiles/drn_routing.dir/routing/min_energy.cpp.o.d"
  "libdrn_routing.a"
  "libdrn_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drn_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
