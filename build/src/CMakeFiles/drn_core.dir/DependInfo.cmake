
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/access.cpp" "src/CMakeFiles/drn_core.dir/core/access.cpp.o" "gcc" "src/CMakeFiles/drn_core.dir/core/access.cpp.o.d"
  "/root/repo/src/core/clock.cpp" "src/CMakeFiles/drn_core.dir/core/clock.cpp.o" "gcc" "src/CMakeFiles/drn_core.dir/core/clock.cpp.o.d"
  "/root/repo/src/core/clock_model.cpp" "src/CMakeFiles/drn_core.dir/core/clock_model.cpp.o" "gcc" "src/CMakeFiles/drn_core.dir/core/clock_model.cpp.o.d"
  "/root/repo/src/core/discovery.cpp" "src/CMakeFiles/drn_core.dir/core/discovery.cpp.o" "gcc" "src/CMakeFiles/drn_core.dir/core/discovery.cpp.o.d"
  "/root/repo/src/core/hash.cpp" "src/CMakeFiles/drn_core.dir/core/hash.cpp.o" "gcc" "src/CMakeFiles/drn_core.dir/core/hash.cpp.o.d"
  "/root/repo/src/core/neighbor_table.cpp" "src/CMakeFiles/drn_core.dir/core/neighbor_table.cpp.o" "gcc" "src/CMakeFiles/drn_core.dir/core/neighbor_table.cpp.o.d"
  "/root/repo/src/core/network_builder.cpp" "src/CMakeFiles/drn_core.dir/core/network_builder.cpp.o" "gcc" "src/CMakeFiles/drn_core.dir/core/network_builder.cpp.o.d"
  "/root/repo/src/core/power_control.cpp" "src/CMakeFiles/drn_core.dir/core/power_control.cpp.o" "gcc" "src/CMakeFiles/drn_core.dir/core/power_control.cpp.o.d"
  "/root/repo/src/core/rate_selection.cpp" "src/CMakeFiles/drn_core.dir/core/rate_selection.cpp.o" "gcc" "src/CMakeFiles/drn_core.dir/core/rate_selection.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/CMakeFiles/drn_core.dir/core/schedule.cpp.o" "gcc" "src/CMakeFiles/drn_core.dir/core/schedule.cpp.o.d"
  "/root/repo/src/core/scheduled_station.cpp" "src/CMakeFiles/drn_core.dir/core/scheduled_station.cpp.o" "gcc" "src/CMakeFiles/drn_core.dir/core/scheduled_station.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/drn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
