file(REMOVE_RECURSE
  "libdrn_core.a"
)
