file(REMOVE_RECURSE
  "CMakeFiles/drn_core.dir/core/access.cpp.o"
  "CMakeFiles/drn_core.dir/core/access.cpp.o.d"
  "CMakeFiles/drn_core.dir/core/clock.cpp.o"
  "CMakeFiles/drn_core.dir/core/clock.cpp.o.d"
  "CMakeFiles/drn_core.dir/core/clock_model.cpp.o"
  "CMakeFiles/drn_core.dir/core/clock_model.cpp.o.d"
  "CMakeFiles/drn_core.dir/core/discovery.cpp.o"
  "CMakeFiles/drn_core.dir/core/discovery.cpp.o.d"
  "CMakeFiles/drn_core.dir/core/hash.cpp.o"
  "CMakeFiles/drn_core.dir/core/hash.cpp.o.d"
  "CMakeFiles/drn_core.dir/core/neighbor_table.cpp.o"
  "CMakeFiles/drn_core.dir/core/neighbor_table.cpp.o.d"
  "CMakeFiles/drn_core.dir/core/network_builder.cpp.o"
  "CMakeFiles/drn_core.dir/core/network_builder.cpp.o.d"
  "CMakeFiles/drn_core.dir/core/power_control.cpp.o"
  "CMakeFiles/drn_core.dir/core/power_control.cpp.o.d"
  "CMakeFiles/drn_core.dir/core/rate_selection.cpp.o"
  "CMakeFiles/drn_core.dir/core/rate_selection.cpp.o.d"
  "CMakeFiles/drn_core.dir/core/schedule.cpp.o"
  "CMakeFiles/drn_core.dir/core/schedule.cpp.o.d"
  "CMakeFiles/drn_core.dir/core/scheduled_station.cpp.o"
  "CMakeFiles/drn_core.dir/core/scheduled_station.cpp.o.d"
  "libdrn_core.a"
  "libdrn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
