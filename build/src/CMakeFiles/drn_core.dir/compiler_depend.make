# Empty compiler generated dependencies file for drn_core.
# This may be replaced when dependencies are built.
