# Empty compiler generated dependencies file for drn_sim.
# This may be replaced when dependencies are built.
