file(REMOVE_RECURSE
  "libdrn_sim.a"
)
