file(REMOVE_RECURSE
  "CMakeFiles/drn_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/drn_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/drn_sim.dir/sim/metrics.cpp.o"
  "CMakeFiles/drn_sim.dir/sim/metrics.cpp.o.d"
  "CMakeFiles/drn_sim.dir/sim/rng.cpp.o"
  "CMakeFiles/drn_sim.dir/sim/rng.cpp.o.d"
  "CMakeFiles/drn_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/drn_sim.dir/sim/simulator.cpp.o.d"
  "CMakeFiles/drn_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/drn_sim.dir/sim/trace.cpp.o.d"
  "CMakeFiles/drn_sim.dir/sim/traffic.cpp.o"
  "CMakeFiles/drn_sim.dir/sim/traffic.cpp.o.d"
  "libdrn_sim.a"
  "libdrn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
