
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/drn_sim.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/drn_sim.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/CMakeFiles/drn_sim.dir/sim/metrics.cpp.o" "gcc" "src/CMakeFiles/drn_sim.dir/sim/metrics.cpp.o.d"
  "/root/repo/src/sim/rng.cpp" "src/CMakeFiles/drn_sim.dir/sim/rng.cpp.o" "gcc" "src/CMakeFiles/drn_sim.dir/sim/rng.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/drn_sim.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/drn_sim.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/drn_sim.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/drn_sim.dir/sim/trace.cpp.o.d"
  "/root/repo/src/sim/traffic.cpp" "src/CMakeFiles/drn_sim.dir/sim/traffic.cpp.o" "gcc" "src/CMakeFiles/drn_sim.dir/sim/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/drn_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
