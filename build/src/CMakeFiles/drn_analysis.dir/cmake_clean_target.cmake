file(REMOVE_RECURSE
  "libdrn_analysis.a"
)
