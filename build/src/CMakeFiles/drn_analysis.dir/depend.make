# Empty dependencies file for drn_analysis.
# This may be replaced when dependencies are built.
