file(REMOVE_RECURSE
  "CMakeFiles/drn_analysis.dir/analysis/ascii_plot.cpp.o"
  "CMakeFiles/drn_analysis.dir/analysis/ascii_plot.cpp.o.d"
  "CMakeFiles/drn_analysis.dir/analysis/capacity.cpp.o"
  "CMakeFiles/drn_analysis.dir/analysis/capacity.cpp.o.d"
  "CMakeFiles/drn_analysis.dir/analysis/delay_model.cpp.o"
  "CMakeFiles/drn_analysis.dir/analysis/delay_model.cpp.o.d"
  "CMakeFiles/drn_analysis.dir/analysis/schedule_math.cpp.o"
  "CMakeFiles/drn_analysis.dir/analysis/schedule_math.cpp.o.d"
  "CMakeFiles/drn_analysis.dir/analysis/stats.cpp.o"
  "CMakeFiles/drn_analysis.dir/analysis/stats.cpp.o.d"
  "CMakeFiles/drn_analysis.dir/analysis/table.cpp.o"
  "CMakeFiles/drn_analysis.dir/analysis/table.cpp.o.d"
  "libdrn_analysis.a"
  "libdrn_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drn_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
