
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/ascii_plot.cpp" "src/CMakeFiles/drn_analysis.dir/analysis/ascii_plot.cpp.o" "gcc" "src/CMakeFiles/drn_analysis.dir/analysis/ascii_plot.cpp.o.d"
  "/root/repo/src/analysis/capacity.cpp" "src/CMakeFiles/drn_analysis.dir/analysis/capacity.cpp.o" "gcc" "src/CMakeFiles/drn_analysis.dir/analysis/capacity.cpp.o.d"
  "/root/repo/src/analysis/delay_model.cpp" "src/CMakeFiles/drn_analysis.dir/analysis/delay_model.cpp.o" "gcc" "src/CMakeFiles/drn_analysis.dir/analysis/delay_model.cpp.o.d"
  "/root/repo/src/analysis/schedule_math.cpp" "src/CMakeFiles/drn_analysis.dir/analysis/schedule_math.cpp.o" "gcc" "src/CMakeFiles/drn_analysis.dir/analysis/schedule_math.cpp.o.d"
  "/root/repo/src/analysis/stats.cpp" "src/CMakeFiles/drn_analysis.dir/analysis/stats.cpp.o" "gcc" "src/CMakeFiles/drn_analysis.dir/analysis/stats.cpp.o.d"
  "/root/repo/src/analysis/table.cpp" "src/CMakeFiles/drn_analysis.dir/analysis/table.cpp.o" "gcc" "src/CMakeFiles/drn_analysis.dir/analysis/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/drn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
