file(REMOVE_RECURSE
  "CMakeFiles/drn_geo.dir/geo/circle.cpp.o"
  "CMakeFiles/drn_geo.dir/geo/circle.cpp.o.d"
  "CMakeFiles/drn_geo.dir/geo/placement.cpp.o"
  "CMakeFiles/drn_geo.dir/geo/placement.cpp.o.d"
  "CMakeFiles/drn_geo.dir/geo/vec2.cpp.o"
  "CMakeFiles/drn_geo.dir/geo/vec2.cpp.o.d"
  "libdrn_geo.a"
  "libdrn_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drn_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
