# Empty compiler generated dependencies file for drn_geo.
# This may be replaced when dependencies are built.
