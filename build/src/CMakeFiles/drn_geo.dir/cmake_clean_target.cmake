file(REMOVE_RECURSE
  "libdrn_geo.a"
)
