# Empty compiler generated dependencies file for drn_baselines.
# This may be replaced when dependencies are built.
