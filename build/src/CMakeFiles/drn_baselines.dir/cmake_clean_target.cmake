file(REMOVE_RECURSE
  "libdrn_baselines.a"
)
