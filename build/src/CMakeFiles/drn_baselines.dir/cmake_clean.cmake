file(REMOVE_RECURSE
  "CMakeFiles/drn_baselines.dir/baselines/aloha.cpp.o"
  "CMakeFiles/drn_baselines.dir/baselines/aloha.cpp.o.d"
  "CMakeFiles/drn_baselines.dir/baselines/contention_mac.cpp.o"
  "CMakeFiles/drn_baselines.dir/baselines/contention_mac.cpp.o.d"
  "CMakeFiles/drn_baselines.dir/baselines/csma.cpp.o"
  "CMakeFiles/drn_baselines.dir/baselines/csma.cpp.o.d"
  "CMakeFiles/drn_baselines.dir/baselines/maca.cpp.o"
  "CMakeFiles/drn_baselines.dir/baselines/maca.cpp.o.d"
  "CMakeFiles/drn_baselines.dir/baselines/slotted_aloha.cpp.o"
  "CMakeFiles/drn_baselines.dir/baselines/slotted_aloha.cpp.o.d"
  "libdrn_baselines.a"
  "libdrn_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drn_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
