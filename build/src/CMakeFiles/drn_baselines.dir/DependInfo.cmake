
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/aloha.cpp" "src/CMakeFiles/drn_baselines.dir/baselines/aloha.cpp.o" "gcc" "src/CMakeFiles/drn_baselines.dir/baselines/aloha.cpp.o.d"
  "/root/repo/src/baselines/contention_mac.cpp" "src/CMakeFiles/drn_baselines.dir/baselines/contention_mac.cpp.o" "gcc" "src/CMakeFiles/drn_baselines.dir/baselines/contention_mac.cpp.o.d"
  "/root/repo/src/baselines/csma.cpp" "src/CMakeFiles/drn_baselines.dir/baselines/csma.cpp.o" "gcc" "src/CMakeFiles/drn_baselines.dir/baselines/csma.cpp.o.d"
  "/root/repo/src/baselines/maca.cpp" "src/CMakeFiles/drn_baselines.dir/baselines/maca.cpp.o" "gcc" "src/CMakeFiles/drn_baselines.dir/baselines/maca.cpp.o.d"
  "/root/repo/src/baselines/slotted_aloha.cpp" "src/CMakeFiles/drn_baselines.dir/baselines/slotted_aloha.cpp.o" "gcc" "src/CMakeFiles/drn_baselines.dir/baselines/slotted_aloha.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/drn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
