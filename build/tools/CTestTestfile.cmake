# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(drn_sim_help "/root/repo/build/tools/drn_sim" "--help")
set_tests_properties(drn_sim_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(drn_sim_scheme "/root/repo/build/tools/drn_sim" "--stations" "8" "--region" "400" "--max-power" "1e-3" "--rate" "50" "--duration" "0.3" "--drain" "10" "--mac" "scheme")
set_tests_properties(drn_sim_scheme PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(drn_sim_aloha "/root/repo/build/tools/drn_sim" "--stations" "8" "--region" "400" "--max-power" "1e-3" "--rate" "50" "--duration" "0.3" "--drain" "10" "--mac" "aloha")
set_tests_properties(drn_sim_aloha PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(drn_sim_slotted "/root/repo/build/tools/drn_sim" "--stations" "8" "--region" "400" "--max-power" "1e-3" "--rate" "50" "--duration" "0.3" "--drain" "10" "--mac" "slotted")
set_tests_properties(drn_sim_slotted PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(drn_sim_csma "/root/repo/build/tools/drn_sim" "--stations" "8" "--region" "400" "--max-power" "1e-3" "--rate" "50" "--duration" "0.3" "--drain" "10" "--mac" "csma")
set_tests_properties(drn_sim_csma PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(drn_sim_maca "/root/repo/build/tools/drn_sim" "--stations" "8" "--region" "400" "--max-power" "1e-3" "--rate" "50" "--duration" "0.3" "--drain" "10" "--mac" "maca")
set_tests_properties(drn_sim_maca PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
