# Empty compiler generated dependencies file for drn_sim_cli.
# This may be replaced when dependencies are built.
