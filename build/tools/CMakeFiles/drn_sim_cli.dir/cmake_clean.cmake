file(REMOVE_RECURSE
  "CMakeFiles/drn_sim_cli.dir/drn_sim.cpp.o"
  "CMakeFiles/drn_sim_cli.dir/drn_sim.cpp.o.d"
  "drn_sim"
  "drn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drn_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
