file(REMOVE_RECURSE
  "CMakeFiles/neighborhood_mesh.dir/neighborhood_mesh.cpp.o"
  "CMakeFiles/neighborhood_mesh.dir/neighborhood_mesh.cpp.o.d"
  "neighborhood_mesh"
  "neighborhood_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neighborhood_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
