# Empty compiler generated dependencies file for neighborhood_mesh.
# This may be replaced when dependencies are built.
