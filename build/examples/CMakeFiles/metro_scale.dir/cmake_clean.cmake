file(REMOVE_RECURSE
  "CMakeFiles/metro_scale.dir/metro_scale.cpp.o"
  "CMakeFiles/metro_scale.dir/metro_scale.cpp.o.d"
  "metro_scale"
  "metro_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metro_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
