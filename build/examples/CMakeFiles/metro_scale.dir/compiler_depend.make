# Empty compiler generated dependencies file for metro_scale.
# This may be replaced when dependencies are built.
