# Empty dependencies file for clock_rendezvous.
# This may be replaced when dependencies are built.
