file(REMOVE_RECURSE
  "CMakeFiles/clock_rendezvous.dir/clock_rendezvous.cpp.o"
  "CMakeFiles/clock_rendezvous.dir/clock_rendezvous.cpp.o.d"
  "clock_rendezvous"
  "clock_rendezvous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_rendezvous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
