file(REMOVE_RECURSE
  "CMakeFiles/self_organize.dir/self_organize.cpp.o"
  "CMakeFiles/self_organize.dir/self_organize.cpp.o.d"
  "self_organize"
  "self_organize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/self_organize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
