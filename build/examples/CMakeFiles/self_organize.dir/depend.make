# Empty dependencies file for self_organize.
# This may be replaced when dependencies are built.
