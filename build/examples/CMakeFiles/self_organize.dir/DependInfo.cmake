
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/self_organize.cpp" "examples/CMakeFiles/self_organize.dir/self_organize.cpp.o" "gcc" "examples/CMakeFiles/self_organize.dir/self_organize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/drn_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
