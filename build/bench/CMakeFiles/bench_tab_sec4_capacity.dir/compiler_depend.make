# Empty compiler generated dependencies file for bench_tab_sec4_capacity.
# This may be replaced when dependencies are built.
