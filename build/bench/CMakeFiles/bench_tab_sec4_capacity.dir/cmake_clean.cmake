file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_sec4_capacity.dir/tab_sec4_capacity.cpp.o"
  "CMakeFiles/bench_tab_sec4_capacity.dir/tab_sec4_capacity.cpp.o.d"
  "bench_tab_sec4_capacity"
  "bench_tab_sec4_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_sec4_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
