file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_receiver_design.dir/abl_receiver_design.cpp.o"
  "CMakeFiles/bench_abl_receiver_design.dir/abl_receiver_design.cpp.o.d"
  "bench_abl_receiver_design"
  "bench_abl_receiver_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_receiver_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
