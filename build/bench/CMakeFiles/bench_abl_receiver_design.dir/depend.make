# Empty dependencies file for bench_abl_receiver_design.
# This may be replaced when dependencies are built.
