# Empty dependencies file for bench_fig4_schedule_raster.
# This may be replaced when dependencies are built.
