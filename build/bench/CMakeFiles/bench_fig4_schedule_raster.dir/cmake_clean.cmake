file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_schedule_raster.dir/fig4_schedule_raster.cpp.o"
  "CMakeFiles/bench_fig4_schedule_raster.dir/fig4_schedule_raster.cpp.o.d"
  "bench_fig4_schedule_raster"
  "bench_fig4_schedule_raster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_schedule_raster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
