file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_snr_scaling.dir/fig1_snr_scaling.cpp.o"
  "CMakeFiles/bench_fig1_snr_scaling.dir/fig1_snr_scaling.cpp.o.d"
  "bench_fig1_snr_scaling"
  "bench_fig1_snr_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_snr_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
