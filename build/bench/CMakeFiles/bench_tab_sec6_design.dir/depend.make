# Empty dependencies file for bench_tab_sec6_design.
# This may be replaced when dependencies are built.
