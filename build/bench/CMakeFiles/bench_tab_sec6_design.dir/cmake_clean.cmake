file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_sec6_design.dir/tab_sec6_design.cpp.o"
  "CMakeFiles/bench_tab_sec6_design.dir/tab_sec6_design.cpp.o.d"
  "bench_tab_sec6_design"
  "bench_tab_sec6_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_sec6_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
