# Empty dependencies file for bench_fig2_collision_types.
# This may be replaced when dependencies are built.
