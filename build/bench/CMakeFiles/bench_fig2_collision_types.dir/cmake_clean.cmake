file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_collision_types.dir/fig2_collision_types.cpp.o"
  "CMakeFiles/bench_fig2_collision_types.dir/fig2_collision_types.cpp.o.d"
  "bench_fig2_collision_types"
  "bench_fig2_collision_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_collision_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
