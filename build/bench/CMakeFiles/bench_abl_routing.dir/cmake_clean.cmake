file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_routing.dir/abl_routing.cpp.o"
  "CMakeFiles/bench_abl_routing.dir/abl_routing.cpp.o.d"
  "bench_abl_routing"
  "bench_abl_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
