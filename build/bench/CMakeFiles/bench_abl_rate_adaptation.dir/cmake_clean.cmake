file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_rate_adaptation.dir/abl_rate_adaptation.cpp.o"
  "CMakeFiles/bench_abl_rate_adaptation.dir/abl_rate_adaptation.cpp.o.d"
  "bench_abl_rate_adaptation"
  "bench_abl_rate_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_rate_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
