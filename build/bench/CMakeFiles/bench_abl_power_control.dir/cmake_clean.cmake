file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_power_control.dir/abl_power_control.cpp.o"
  "CMakeFiles/bench_abl_power_control.dir/abl_power_control.cpp.o.d"
  "bench_abl_power_control"
  "bench_abl_power_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_power_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
