# Empty dependencies file for bench_abl_power_control.
# This may be replaced when dependencies are built.
