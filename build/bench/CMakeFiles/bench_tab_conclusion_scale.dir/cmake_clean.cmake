file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_conclusion_scale.dir/tab_conclusion_scale.cpp.o"
  "CMakeFiles/bench_tab_conclusion_scale.dir/tab_conclusion_scale.cpp.o.d"
  "bench_tab_conclusion_scale"
  "bench_tab_conclusion_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_conclusion_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
