file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_multiuser.dir/abl_multiuser.cpp.o"
  "CMakeFiles/bench_abl_multiuser.dir/abl_multiuser.cpp.o.d"
  "bench_abl_multiuser"
  "bench_abl_multiuser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_multiuser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
