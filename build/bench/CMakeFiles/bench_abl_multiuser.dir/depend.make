# Empty dependencies file for bench_abl_multiuser.
# This may be replaced when dependencies are built.
