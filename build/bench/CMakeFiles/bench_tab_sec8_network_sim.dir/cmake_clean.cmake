file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_sec8_network_sim.dir/tab_sec8_network_sim.cpp.o"
  "CMakeFiles/bench_tab_sec8_network_sim.dir/tab_sec8_network_sim.cpp.o.d"
  "bench_tab_sec8_network_sim"
  "bench_tab_sec8_network_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_sec8_network_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
