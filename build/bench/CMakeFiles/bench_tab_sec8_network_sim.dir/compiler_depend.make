# Empty compiler generated dependencies file for bench_tab_sec8_network_sim.
# This may be replaced when dependencies are built.
