file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_min_energy_routing.dir/fig3_min_energy_routing.cpp.o"
  "CMakeFiles/bench_fig3_min_energy_routing.dir/fig3_min_energy_routing.cpp.o.d"
  "bench_fig3_min_energy_routing"
  "bench_fig3_min_energy_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_min_energy_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
