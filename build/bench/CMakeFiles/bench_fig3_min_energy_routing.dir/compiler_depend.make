# Empty compiler generated dependencies file for bench_fig3_min_energy_routing.
# This may be replaced when dependencies are built.
