file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_sec7_scheduling.dir/tab_sec7_scheduling.cpp.o"
  "CMakeFiles/bench_tab_sec7_scheduling.dir/tab_sec7_scheduling.cpp.o.d"
  "bench_tab_sec7_scheduling"
  "bench_tab_sec7_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_sec7_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
