# Empty compiler generated dependencies file for bench_tab_sec7_scheduling.
# This may be replaced when dependencies are built.
