file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_schedule_design.dir/abl_schedule_design.cpp.o"
  "CMakeFiles/bench_abl_schedule_design.dir/abl_schedule_design.cpp.o.d"
  "bench_abl_schedule_design"
  "bench_abl_schedule_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_schedule_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
