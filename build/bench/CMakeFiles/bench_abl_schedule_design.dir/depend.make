# Empty dependencies file for bench_abl_schedule_design.
# This may be replaced when dependencies are built.
