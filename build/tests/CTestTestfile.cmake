# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_geo "/root/repo/build/tests/test_geo")
set_tests_properties(test_geo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;drn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;17;drn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_radio "/root/repo/build/tests/test_radio")
set_tests_properties(test_radio PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;23;drn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;31;drn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;40;drn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_routing "/root/repo/build/tests/test_routing")
set_tests_properties(test_routing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;55;drn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_baselines "/root/repo/build/tests/test_baselines")
set_tests_properties(test_baselines PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;62;drn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_analysis "/root/repo/build/tests/test_analysis")
set_tests_properties(test_analysis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;70;drn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;79;drn_add_test;/root/repo/tests/CMakeLists.txt;0;")
