file(REMOVE_RECURSE
  "CMakeFiles/test_radio.dir/radio/noise_growth_test.cpp.o"
  "CMakeFiles/test_radio.dir/radio/noise_growth_test.cpp.o.d"
  "CMakeFiles/test_radio.dir/radio/propagation_matrix_test.cpp.o"
  "CMakeFiles/test_radio.dir/radio/propagation_matrix_test.cpp.o.d"
  "CMakeFiles/test_radio.dir/radio/propagation_test.cpp.o"
  "CMakeFiles/test_radio.dir/radio/propagation_test.cpp.o.d"
  "CMakeFiles/test_radio.dir/radio/reception_test.cpp.o"
  "CMakeFiles/test_radio.dir/radio/reception_test.cpp.o.d"
  "CMakeFiles/test_radio.dir/radio/units_test.cpp.o"
  "CMakeFiles/test_radio.dir/radio/units_test.cpp.o.d"
  "test_radio"
  "test_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
