
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/broadcast_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/broadcast_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/broadcast_test.cpp.o.d"
  "/root/repo/tests/sim/event_queue_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/event_queue_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/event_queue_test.cpp.o.d"
  "/root/repo/tests/sim/metrics_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/metrics_test.cpp.o.d"
  "/root/repo/tests/sim/simulator_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/simulator_test.cpp.o.d"
  "/root/repo/tests/sim/trace_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/trace_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/trace_test.cpp.o.d"
  "/root/repo/tests/sim/traffic_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/traffic_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/traffic_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/drn_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
