file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/broadcast_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/broadcast_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/event_queue_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/event_queue_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/metrics_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/metrics_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/simulator_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/simulator_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/trace_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/trace_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/traffic_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/traffic_test.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
