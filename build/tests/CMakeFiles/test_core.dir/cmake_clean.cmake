file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/access_test.cpp.o"
  "CMakeFiles/test_core.dir/core/access_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/clock_model_test.cpp.o"
  "CMakeFiles/test_core.dir/core/clock_model_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/clock_test.cpp.o"
  "CMakeFiles/test_core.dir/core/clock_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/discovery_test.cpp.o"
  "CMakeFiles/test_core.dir/core/discovery_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/hash_test.cpp.o"
  "CMakeFiles/test_core.dir/core/hash_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/maintenance_test.cpp.o"
  "CMakeFiles/test_core.dir/core/maintenance_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/neighbor_table_test.cpp.o"
  "CMakeFiles/test_core.dir/core/neighbor_table_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/network_builder_test.cpp.o"
  "CMakeFiles/test_core.dir/core/network_builder_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/power_control_test.cpp.o"
  "CMakeFiles/test_core.dir/core/power_control_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/rate_selection_test.cpp.o"
  "CMakeFiles/test_core.dir/core/rate_selection_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/schedule_test.cpp.o"
  "CMakeFiles/test_core.dir/core/schedule_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/scheduled_station_test.cpp.o"
  "CMakeFiles/test_core.dir/core/scheduled_station_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
