
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/access_test.cpp" "tests/CMakeFiles/test_core.dir/core/access_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/access_test.cpp.o.d"
  "/root/repo/tests/core/clock_model_test.cpp" "tests/CMakeFiles/test_core.dir/core/clock_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/clock_model_test.cpp.o.d"
  "/root/repo/tests/core/clock_test.cpp" "tests/CMakeFiles/test_core.dir/core/clock_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/clock_test.cpp.o.d"
  "/root/repo/tests/core/discovery_test.cpp" "tests/CMakeFiles/test_core.dir/core/discovery_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/discovery_test.cpp.o.d"
  "/root/repo/tests/core/hash_test.cpp" "tests/CMakeFiles/test_core.dir/core/hash_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/hash_test.cpp.o.d"
  "/root/repo/tests/core/maintenance_test.cpp" "tests/CMakeFiles/test_core.dir/core/maintenance_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/maintenance_test.cpp.o.d"
  "/root/repo/tests/core/neighbor_table_test.cpp" "tests/CMakeFiles/test_core.dir/core/neighbor_table_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/neighbor_table_test.cpp.o.d"
  "/root/repo/tests/core/network_builder_test.cpp" "tests/CMakeFiles/test_core.dir/core/network_builder_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/network_builder_test.cpp.o.d"
  "/root/repo/tests/core/power_control_test.cpp" "tests/CMakeFiles/test_core.dir/core/power_control_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/power_control_test.cpp.o.d"
  "/root/repo/tests/core/rate_selection_test.cpp" "tests/CMakeFiles/test_core.dir/core/rate_selection_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/rate_selection_test.cpp.o.d"
  "/root/repo/tests/core/schedule_test.cpp" "tests/CMakeFiles/test_core.dir/core/schedule_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/schedule_test.cpp.o.d"
  "/root/repo/tests/core/scheduled_station_test.cpp" "tests/CMakeFiles/test_core.dir/core/scheduled_station_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/scheduled_station_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/drn_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
