file(REMOVE_RECURSE
  "CMakeFiles/test_geo.dir/geo/circle_test.cpp.o"
  "CMakeFiles/test_geo.dir/geo/circle_test.cpp.o.d"
  "CMakeFiles/test_geo.dir/geo/placement_test.cpp.o"
  "CMakeFiles/test_geo.dir/geo/placement_test.cpp.o.d"
  "CMakeFiles/test_geo.dir/geo/vec2_test.cpp.o"
  "CMakeFiles/test_geo.dir/geo/vec2_test.cpp.o.d"
  "test_geo"
  "test_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
