file(REMOVE_RECURSE
  "CMakeFiles/test_baselines.dir/baselines/aloha_test.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/aloha_test.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/contention_mac_test.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/contention_mac_test.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/csma_test.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/csma_test.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/maca_test.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/maca_test.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/slotted_aloha_test.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/slotted_aloha_test.cpp.o.d"
  "test_baselines"
  "test_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
