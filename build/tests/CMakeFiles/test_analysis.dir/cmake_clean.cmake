file(REMOVE_RECURSE
  "CMakeFiles/test_analysis.dir/analysis/ascii_plot_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/ascii_plot_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/capacity_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/capacity_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/delay_model_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/delay_model_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/schedule_math_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/schedule_math_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/stats_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/stats_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/table_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/table_test.cpp.o.d"
  "test_analysis"
  "test_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
