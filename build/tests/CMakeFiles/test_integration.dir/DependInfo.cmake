
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/baseline_comparison_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/baseline_comparison_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/baseline_comparison_test.cpp.o.d"
  "/root/repo/tests/integration/collision_free_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/collision_free_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/collision_free_test.cpp.o.d"
  "/root/repo/tests/integration/fuzz_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/fuzz_test.cpp.o.d"
  "/root/repo/tests/integration/multihop_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/multihop_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/multihop_test.cpp.o.d"
  "/root/repo/tests/integration/noise_validation_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/noise_validation_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/noise_validation_test.cpp.o.d"
  "/root/repo/tests/integration/properties_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/properties_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/properties_test.cpp.o.d"
  "/root/repo/tests/integration/schedule_compliance_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/schedule_compliance_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/schedule_compliance_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/drn_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drn_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
