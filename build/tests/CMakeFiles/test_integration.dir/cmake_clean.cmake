file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/baseline_comparison_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/baseline_comparison_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/collision_free_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/collision_free_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/fuzz_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/fuzz_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/multihop_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/multihop_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/noise_validation_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/noise_validation_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/properties_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/properties_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/schedule_compliance_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/schedule_compliance_test.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
