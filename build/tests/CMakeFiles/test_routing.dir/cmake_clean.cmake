file(REMOVE_RECURSE
  "CMakeFiles/test_routing.dir/routing/bellman_ford_test.cpp.o"
  "CMakeFiles/test_routing.dir/routing/bellman_ford_test.cpp.o.d"
  "CMakeFiles/test_routing.dir/routing/dijkstra_test.cpp.o"
  "CMakeFiles/test_routing.dir/routing/dijkstra_test.cpp.o.d"
  "CMakeFiles/test_routing.dir/routing/graph_test.cpp.o"
  "CMakeFiles/test_routing.dir/routing/graph_test.cpp.o.d"
  "CMakeFiles/test_routing.dir/routing/min_energy_test.cpp.o"
  "CMakeFiles/test_routing.dir/routing/min_energy_test.cpp.o.d"
  "test_routing"
  "test_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
