// Independent runtime re-derivation of the simulator's physics invariants.
//
// The simulator promises a set of identities (docs: DESIGN.md "Audited
// invariants"): event-time monotonicity, per-station transmit serialization,
// half-duplex reception (the paper's Type 3 taxonomy), the despreading
// channel cap (Type 2), SINR consistency of every reported reception with
// Eq. 3-6, and exactly-once reception accounting per transmission. Nothing
// in the simulator itself re-checks them — a silent regression in the
// incremental interference bookkeeping would corrupt every result downstream.
//
// InvariantAuditor is a passive SimObserver that re-derives each invariant
// from the Tx/Rx event stream alone, sharing no state or code path with the
// physics it audits. It is O(active transmissions) per event and prunes its
// history, so it can ride along on full-length sweeps. Wire it up with
// Simulator::add_observer — a later Simulator::set_observer call (a trace,
// say) only manages its own slot and cannot detach the auditor — run, then
// finalize() and cross_check() against sim::Metrics; ok() reports the
// verdict and report() the evidence.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "sim/metrics.hpp"
#include "sim/observer.hpp"

namespace drn::sim {
class Simulator;
}  // namespace drn::sim

namespace drn::audit {

/// Facts about the simulation the auditor checks against. Everything here is
/// configuration, not simulator state: the auditor must not peek at the
/// internals it is auditing.
struct AuditConfig {
  /// Number of stations (bounds StationId, sizes broadcast conservation).
  std::size_t stations = 0;
  /// Parallel despreading channels per receiver (Type 2 cap).
  int despreading_channels = 8;
  /// Thermal noise floor. Upper-bounds any reported SINR via
  /// signal / thermal_noise (interference only adds noise; multiuser
  /// subtraction clamps its residual at the thermal floor).
  units::Watts thermal_noise;
  /// Radio design point for re-deriving required_snr from a transmission's
  /// rate (Eq. 4 at margin). bandwidth <= 0 disables that check.
  units::Hertz bandwidth;
  units::Decibels margin;
  /// Relative tolerance for floating-point identities. The compensated
  /// interference engine keeps running sums exact, so the SINR identities
  /// hold to rounding error and the default is tight; loosen only for
  /// engines with a documented approximation bound.
  double rel_tol = 1e-12;
  /// How many violations keep full detail text (all are always counted).
  std::size_t max_recorded_violations = 64;
  /// Keep every reception outcome (keyed by tx id and receiver) so two
  /// audited runs can be compared with cross_check_engine(). Off by default:
  /// it stores one record per reception for the whole run.
  bool record_receptions = false;
};

/// One observed breach of an invariant.
struct Violation {
  /// Stable key, e.g. "half-duplex", "despreading-cap", "metrics-crosscheck".
  std::string invariant;
  std::string detail;
  double time_s = 0.0;
};

class InvariantAuditor final : public sim::SimObserver {
 public:
  explicit InvariantAuditor(AuditConfig config);
  /// Derives the AuditConfig from a simulator's public configuration.
  explicit InvariantAuditor(const sim::Simulator& sim);

  void on_transmit_start(const sim::TxEvent& tx) override;
  void on_reception_complete(const sim::RxEvent& rx) override;
  /// Dynamics teardown cut a transmission short at `time_s`: the auditor
  /// truncates its record (and the sender's transmit interval) to the actual
  /// end before the kAborted reception outcomes arrive, so monotonicity and
  /// half-duplex keep holding across churn.
  void on_transmit_aborted(const sim::TxEvent& tx, double time_s) override;

  /// Closes the audit at simulated time `cutoff_s`: every transmission that
  /// ended at or before the cutoff must have produced its full set of
  /// reception outcomes (transmissions still in flight at the cutoff are
  /// legitimately unresolved). Call after Simulator::run_until.
  void finalize(double cutoff_s);

  /// Cross-checks the auditor's independently derived counters against the
  /// simulator's own Metrics (hop attempts/successes, per-type losses,
  /// broadcast accounting). Call after finalize().
  void cross_check(const sim::Metrics& metrics);

  /// One recorded reception outcome (record_receptions mode).
  struct RecordedReception {
    bool delivered = false;
    sim::LossType loss = sim::LossType::kNone;
    double min_sinr = 0.0;
    double required_snr = 0.0;
    double signal_w = 0.0;
  };

  /// Exact-vs-approximate engine cross-check: compares this run's recorded
  /// receptions against `reference` (the exact engine's run over the same
  /// scenario and seed). Every reception must exist in both runs, each
  /// per-reception min-SINR must agree within relative `sinr_rel_bound`, and
  /// a delivered/lost disagreement is tolerated only when the reference SINR
  /// sits within the bound of its threshold (a genuine borderline call).
  /// Both auditors need record_receptions; violations land on *this* under
  /// the "engine-crosscheck" key. Call after finalize().
  void cross_check_engine(const InvariantAuditor& reference,
                          double sinr_rel_bound);

  /// Recorded outcomes, keyed by (tx id, receiver). Empty unless
  /// record_receptions was set.
  [[nodiscard]] const std::map<std::pair<std::uint64_t, StationId>,
                               RecordedReception>&
  recorded_receptions() const {
    return recorded_;
  }

  /// True while no invariant has been breached.
  [[nodiscard]] bool ok() const { return total_violations_ == 0; }
  [[nodiscard]] std::uint64_t violation_count() const {
    return total_violations_;
  }
  /// Individual invariant evaluations performed so far.
  [[nodiscard]] std::uint64_t checks_run() const { return checks_run_; }
  /// Violations with recorded detail (capped at max_recorded_violations).
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  /// Total breach count per invariant key.
  [[nodiscard]] const std::map<std::string, std::uint64_t>& counts_by_invariant()
      const {
    return counts_;
  }

  /// Human-readable verdict: one line per invariant plus recorded details.
  [[nodiscard]] std::string report() const;

  /// Order-sensitive FNV-1a digest of every observed event (tx starts,
  /// reception outcomes, aborts) with doubles folded in bit-exactly. Two runs
  /// produce the same hash iff the simulator delivered the same event stream
  /// in the same order with the same physics — the golden-hash regression
  /// test pins this against the pre-event-core-rewrite queue.
  [[nodiscard]] std::uint64_t event_hash() const { return event_hash_; }

 private:
  struct Interval {
    double start_s = 0.0;
    double end_s = 0.0;
  };
  /// A completed, channel-occupying reception whose concurrency count may
  /// still grow as longer overlapping receptions complete.
  struct PendingOccupancy {
    double start_s = 0.0;
    double end_s = 0.0;
    int stabbing = 0;  // receptions whose interval contains start_s
  };
  struct TxRecord {
    sim::TxEvent ev;
    std::size_t expected_rx = 0;
    std::size_t seen_rx = 0;
    /// Which stations reported an outcome (duplicate detection). Sized
    /// lazily for broadcasts; unicast uses seen_rx alone.
    std::vector<bool> seen_at;
  };

  /// Folds one 64-bit word into event_hash_ (FNV-1a, byte at a time).
  void mix(std::uint64_t word);
  void mix_double(double x);

  void violate(const std::string& invariant, double time_s,
               const std::string& detail);
  /// Runs one check: records a violation when `pass` is false.
  void check(bool pass, const char* invariant, double time_s,
             const std::string& detail);
  /// Serialization check + interval bookkeeping shared by data transmissions
  /// and noise bursts (both occupy the station's one transmitter).
  void note_own_transmission(const sim::TxEvent& tx, const std::string& who);
  void check_reception_identity(const TxRecord& rec, const sim::RxEvent& rx);
  void check_sinr(const TxRecord& rec, const sim::RxEvent& rx);
  void check_half_duplex(const TxRecord& rec, const sim::RxEvent& rx);
  void check_despreading_cap(const TxRecord& rec, const sim::RxEvent& rx);
  /// Smallest start time among transmissions not yet fully accounted for.
  [[nodiscard]] double min_active_start() const;

  AuditConfig config_;
  std::vector<Violation> violations_;
  std::map<std::string, std::uint64_t> counts_;
  std::uint64_t total_violations_ = 0;
  std::uint64_t checks_run_ = 0;
  std::uint64_t event_hash_ = 14695981039346656037ull;  // FNV-1a offset basis

  double last_event_s_ = 0.0;
  double max_airtime_s_ = 0.0;
  std::map<std::uint64_t, TxRecord> active_;  // started, outcomes pending
  /// Per-station transmit intervals, for serialization + half-duplex checks.
  std::vector<std::vector<Interval>> own_tx_;
  /// Per-station completed channel-occupying receptions (despreading cap).
  std::vector<std::vector<PendingOccupancy>> occupancy_;

  /// Reception outcomes by (tx id, receiver); only in record_receptions mode.
  std::map<std::pair<std::uint64_t, StationId>, RecordedReception> recorded_;

  // Independently derived counters, cross-checked against sim::Metrics.
  std::uint64_t unicast_starts_ = 0;
  std::uint64_t unicast_delivered_ = 0;
  std::uint64_t broadcast_starts_ = 0;
  std::uint64_t broadcast_delivered_ = 0;
  std::uint64_t noise_starts_ = 0;
  std::array<std::uint64_t, 5> unicast_losses_{};  // by LossType (incl aborted)
};

}  // namespace drn::audit
