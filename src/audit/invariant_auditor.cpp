#include "audit/invariant_auditor.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "common/expects.hpp"
#include "radio/reception.hpp"
#include "radio/units.hpp"
#include "sim/simulator.hpp"

namespace drn::audit {

namespace {

/// Open-interval overlap: shared boundary instants (a transmission ending
/// exactly when another starts) do not count, matching the event queue's
/// end-before-start simultaneity rule.
bool overlaps(double a_start, double a_end, double b_start, double b_end) {
  return a_start < b_end && b_start < a_end;
}

const char* loss_name(sim::LossType type) {
  switch (type) {
    case sim::LossType::kNone: return "none";
    case sim::LossType::kType1: return "type1";
    case sim::LossType::kType2: return "type2";
    case sim::LossType::kType3: return "type3";
    case sim::LossType::kAborted: return "aborted";
  }
  return "?";
}

}  // namespace

InvariantAuditor::InvariantAuditor(AuditConfig config)
    : config_(config),
      own_tx_(config.stations),
      occupancy_(config.stations) {
  DRN_EXPECTS(config_.stations > 0);
  DRN_EXPECTS(config_.despreading_channels > 0);
  DRN_EXPECTS(config_.thermal_noise.value() > 0.0);
}

namespace {

AuditConfig config_from(const sim::Simulator& sim) {
  AuditConfig cfg;
  cfg.stations = sim.station_count();
  cfg.despreading_channels = sim.config().despreading_channels;
  cfg.thermal_noise = units::Watts{sim.config().thermal_noise_w};
  cfg.bandwidth = sim.config().criterion.bandwidth();
  cfg.margin = sim.config().criterion.margin();
  return cfg;
}

}  // namespace

InvariantAuditor::InvariantAuditor(const sim::Simulator& sim)
    : InvariantAuditor(config_from(sim)) {}

void InvariantAuditor::mix(std::uint64_t word) {
  // FNV-1a over the word's 8 bytes, little-endian order.
  for (int i = 0; i < 8; ++i) {
    event_hash_ ^= (word >> (8 * i)) & 0xffu;
    event_hash_ *= 1099511628211ull;  // FNV-1a 64-bit prime
  }
}

void InvariantAuditor::mix_double(double x) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(x));
  std::memcpy(&bits, &x, sizeof(bits));
  mix(bits);
}

void InvariantAuditor::violate(const std::string& invariant, double time_s,
                               const std::string& detail) {
  ++total_violations_;
  ++counts_[invariant];
  if (violations_.size() < config_.max_recorded_violations)
    violations_.push_back(Violation{invariant, detail, time_s});
}

void InvariantAuditor::check(bool pass, const char* invariant, double time_s,
                             const std::string& detail) {
  ++checks_run_;
  if (!pass) violate(invariant, time_s, detail);
}

double InvariantAuditor::min_active_start() const {
  double min_start = std::numeric_limits<double>::infinity();
  for (const auto& [id, rec] : active_)
    min_start = std::min(min_start, rec.ev.start_s);
  return min_start;
}

void InvariantAuditor::note_own_transmission(const sim::TxEvent& tx,
                                             const std::string& who) {
  // One transmitter per station: this station's transmissions (data or
  // noise) must not overlap each other.
  auto& own = own_tx_[tx.from];
  bool serialized = true;
  for (const Interval& i : own)
    serialized &= !overlaps(i.start_s, i.end_s, tx.start_s, tx.end_s);
  check(serialized, "tx-serialization", tx.start_s,
        who + " overlaps an earlier transmission of the same station");
  own.push_back(Interval{tx.start_s, tx.end_s});

  max_airtime_s_ = std::max(max_airtime_s_, tx.end_s - tx.start_s);
  // A past own-tx interval only matters while some reception could still
  // overlap it; anything ending more than one max airtime ago cannot.
  const double horizon = tx.start_s - max_airtime_s_;
  std::erase_if(own, [horizon](const Interval& i) { return i.end_s < horizon; });
}

void InvariantAuditor::on_transmit_start(const sim::TxEvent& tx) {
  mix(1);  // event-kind tag
  mix(tx.tx_id);
  mix(tx.from);
  mix(tx.to);
  mix_double(tx.power_w);
  mix_double(tx.start_s);
  mix_double(tx.end_s);
  mix_double(tx.rate_bps);
  mix(tx.packet);

  std::ostringstream who;
  who << "tx " << tx.tx_id << " from " << tx.from;

  check(tx.start_s >= last_event_s_, "event-monotonicity", tx.start_s,
        who.str() + " starts in the past of the event stream");
  last_event_s_ = std::max(last_event_s_, tx.start_s);

  if (tx.to == kNoStation) {
    // A pure noise burst (dynamics jammer): it occupies the transmitter like
    // any transmission but is rateless, carries no packet and produces no
    // reception outcomes.
    check(tx.end_s > tx.start_s && tx.power_w > 0.0, "tx-wellformed",
          tx.start_s, who.str() + " (noise) has a non-positive duration or power");
    check(tx.from < config_.stations, "tx-wellformed", tx.start_s,
          who.str() + " (noise) has an out-of-range emitter");
    if (tx.from >= config_.stations) return;
    note_own_transmission(tx, who.str());
    ++noise_starts_;
    return;
  }

  check(tx.end_s > tx.start_s && tx.power_w > 0.0 && tx.rate_bps > 0.0,
        "tx-wellformed", tx.start_s,
        who.str() + " has a non-positive airtime, power or rate");
  check(tx.from < config_.stations &&
            (tx.to < config_.stations || tx.to == kBroadcast) &&
            tx.to != tx.from,
        "tx-wellformed", tx.start_s, who.str() + " has out-of-range endpoints");
  if (tx.from >= config_.stations) return;  // cannot index further checks

  note_own_transmission(tx, who.str());

  TxRecord rec;
  rec.ev = tx;
  rec.expected_rx = tx.to == kBroadcast ? config_.stations - 1 : 1;
  if (tx.to == kBroadcast) {
    rec.seen_at.assign(config_.stations, false);
    ++broadcast_starts_;
  } else {
    ++unicast_starts_;
  }
  const bool fresh = active_.emplace(tx.tx_id, std::move(rec)).second;
  check(fresh, "conservation", tx.start_s,
        who.str() + " reuses a live transmission id");
}

void InvariantAuditor::check_reception_identity(const TxRecord& rec,
                                                const sim::RxEvent& rx) {
  std::ostringstream who;
  who << "rx of tx " << rx.tx_id << " at " << rx.rx;
  const sim::TxEvent& tx = rec.ev;
  if (tx.to == kBroadcast) {
    check(rx.rx < config_.stations && rx.rx != tx.from, "conservation",
          tx.end_s, who.str() + " reported at an impossible station");
  } else {
    check(rx.rx == tx.to, "conservation", tx.end_s,
          who.str() + " reported at a station the packet was not sent to");
  }
  check(rx.delivered == (rx.loss == sim::LossType::kNone), "outcome-exclusive",
        tx.end_s,
        who.str() + " is both delivered and lost (" + loss_name(rx.loss) + ")");
}

void InvariantAuditor::check_sinr(const TxRecord& rec, const sim::RxEvent& rx) {
  std::ostringstream who;
  who << "rx of tx " << rx.tx_id << " at " << rx.rx;
  const double t = rec.ev.end_s;
  const double slack = 1.0 + config_.rel_tol;

  check(rx.signal_w >= 0.0 && rx.required_snr > 0.0, "sinr-consistency", t,
        who.str() + " reports a negative signal or non-positive threshold");

  // Eq. 5-6: interference only ever adds to thermal noise, so no reported
  // SINR can exceed the zero-interference bound signal/thermal. (Multiuser
  // subtraction clamps its residual at the thermal floor, preserving this.)
  const units::LinearGain zero_interference_bound =
      units::Watts{rx.signal_w} / config_.thermal_noise;
  check(rx.min_sinr <= zero_interference_bound.value() * slack,
        "sinr-consistency", t,
        who.str() + " reports an SINR above its zero-interference bound of " +
            units::format(zero_interference_bound));

  // Eq. 3-4: a delivered packet held SINR at or above the threshold for its
  // whole airtime.
  if (rx.delivered) {
    check(rx.min_sinr * slack >= rx.required_snr, "sinr-threshold", t,
          who.str() + " was delivered below its required SINR");
  }

  // Eq. 4 at this transmission's rate: the threshold the simulator applied
  // must equal margin * snr_for_rate_fraction(rate / W).
  if (config_.bandwidth.value() > 0.0 && rec.ev.rate_bps > 0.0) {
    const units::LinearGain expected =
        config_.margin.to_linear() *
        radio::snr_for_rate_fraction(rec.ev.rate_bps /
                                     config_.bandwidth.value());
    const bool matches = rx.required_snr <= expected.value() * slack &&
                         rx.required_snr * slack >= expected.value();
    check(matches, "required-snr", t,
          who.str() + " was held to a threshold inconsistent with its rate" +
              " (Eq. 4 expects " + units::format(expected) + ")");
  }
}

void InvariantAuditor::check_half_duplex(const TxRecord& rec,
                                          const sim::RxEvent& rx) {
  if (!rx.delivered || rx.rx >= config_.stations) return;
  const sim::TxEvent& tx = rec.ev;
  bool clean = true;
  for (const Interval& own : own_tx_[rx.rx])
    clean &= !overlaps(own.start_s, own.end_s, tx.start_s, tx.end_s);
  std::ostringstream what;
  what << "rx of tx " << rx.tx_id << " at " << rx.rx
       << " delivered while the receiver was transmitting (Type 3)";
  check(clean, "half-duplex", tx.end_s, what.str());
}

void InvariantAuditor::check_despreading_cap(const TxRecord& rec,
                                              const sim::RxEvent& rx) {
  // Delivered and Type 1 outcomes both held one of the receiver's
  // despreading channels for the packet's whole airtime (a Type 3 reception
  // never gets a channel; a Type 2 may or may not have). So among
  // {delivered, type1} receptions at one station, no instant may be covered
  // by more than despreading_channels intervals.
  if (rx.rx >= config_.stations) return;
  if (!rx.delivered && rx.loss != sim::LossType::kType1) return;
  const sim::TxEvent& tx = rec.ev;
  const int cap = config_.despreading_channels;
  auto& pending = occupancy_[rx.rx];

  // Max clique of an interval set = max over intervals of how many intervals
  // contain that interval's start. Completions arrive in end-time order, so
  // count this interval's already-completed containers now and let longer
  // receptions still in flight increment it (and each stored count) as they
  // complete.
  PendingOccupancy mine{tx.start_s, tx.end_s, 1};
  for (PendingOccupancy& p : pending) {
    if (p.start_s <= tx.start_s && tx.start_s < p.end_s) ++mine.stabbing;
    if (tx.start_s <= p.start_s && p.start_s < tx.end_s) {
      ++p.stabbing;
      std::ostringstream what;
      what << "station " << rx.rx << " held " << p.stabbing
           << " simultaneous receptions with only " << cap
           << " despreading channels";
      check(p.stabbing <= cap, "despreading-cap", tx.end_s, what.str());
    }
  }
  std::ostringstream what;
  what << "station " << rx.rx << " held " << mine.stabbing
       << " simultaneous receptions with only " << cap
       << " despreading channels";
  check(mine.stabbing <= cap, "despreading-cap", tx.end_s, what.str());
  pending.push_back(mine);

  // A stored interval is dead once no in-flight transmission can still
  // produce a reception starting inside it: its own count can no longer
  // grow, and it can no longer contain a future start instant. In-flight
  // receptions start no earlier than min_active_start, so that is exactly
  // when the interval ends at or before that bound.
  const double min_start = min_active_start();
  std::erase_if(pending, [min_start](const PendingOccupancy& p) {
    return p.end_s <= min_start;
  });
}

void InvariantAuditor::on_reception_complete(const sim::RxEvent& rx) {
  mix(2);  // event-kind tag
  mix(rx.tx_id);
  mix(rx.rx);
  mix(rx.delivered ? 1 : 0);
  mix(static_cast<std::uint64_t>(rx.loss));
  mix_double(rx.min_sinr);
  mix_double(rx.required_snr);
  mix_double(rx.signal_w);

  auto it = active_.find(rx.tx_id);
  if (it == active_.end()) {
    std::ostringstream what;
    what << "rx at " << rx.rx << " references unknown or already-completed tx "
         << rx.tx_id;
    ++checks_run_;
    violate("conservation", last_event_s_, what.str());
    return;
  }
  TxRecord& rec = it->second;
  const sim::TxEvent& tx = rec.ev;

  // Reception outcomes surface exactly when their transmission ends.
  check(tx.end_s >= last_event_s_, "event-monotonicity", tx.end_s,
        "rx of tx " + std::to_string(rx.tx_id) +
            " completes in the past of the event stream");
  last_event_s_ = std::max(last_event_s_, tx.end_s);

  check_reception_identity(rec, rx);

  // Exactly-once accounting per (transmission, receiver).
  bool duplicate = false;
  if (tx.to == kBroadcast && rx.rx < rec.seen_at.size()) {
    duplicate = rec.seen_at[rx.rx];
    rec.seen_at[rx.rx] = true;
  }
  check(!duplicate, "conservation", tx.end_s,
        "station " + std::to_string(rx.rx) +
            " reported two outcomes for broadcast tx " +
            std::to_string(rx.tx_id));

  check_sinr(rec, rx);
  check_half_duplex(rec, rx);
  check_despreading_cap(rec, rx);

  if (config_.record_receptions) {
    recorded_[{rx.tx_id, rx.rx}] = RecordedReception{
        rx.delivered, rx.loss, rx.min_sinr, rx.required_snr, rx.signal_w};
  }

  if (tx.to == kBroadcast) {
    if (rx.delivered) ++broadcast_delivered_;
  } else {
    if (rx.delivered) {
      ++unicast_delivered_;
    } else {
      ++unicast_losses_[static_cast<std::size_t>(rx.loss)];
    }
  }

  if (++rec.seen_rx >= rec.expected_rx) active_.erase(it);
}

void InvariantAuditor::on_transmit_aborted(const sim::TxEvent& tx,
                                           double time_s) {
  mix(3);  // event-kind tag
  mix(tx.tx_id);
  mix(tx.from);
  mix_double(time_s);

  std::ostringstream who;
  who << "abort of tx " << tx.tx_id << " from " << tx.from;

  check(time_s >= last_event_s_, "event-monotonicity", time_s,
        who.str() + " happens in the past of the event stream");
  last_event_s_ = std::max(last_event_s_, time_s);
  check(time_s >= tx.start_s && time_s < tx.end_s, "abort-wellformed", time_s,
        who.str() + " lies outside the transmission's airtime");

  // The signal left the air at time_s, not at the planned end: truncate the
  // sender's transmit interval so later receptions at a rejoined station are
  // not falsely flagged as half-duplex breaches. Serialization guarantees at
  // most one own interval contains time_s.
  if (tx.from < config_.stations) {
    for (Interval& i : own_tx_[tx.from])
      if (i.start_s <= time_s && time_s < i.end_s) i.end_s = time_s;
  }

  if (tx.to == kNoStation) return;  // noise: no record, no outcomes expected

  const auto it = active_.find(tx.tx_id);
  ++checks_run_;
  if (it == active_.end()) {
    violate("conservation", time_s,
            who.str() + " references an unknown or completed transmission");
    return;
  }
  // The kAborted reception outcomes that follow immediately complete at
  // time_s; move the record's end so monotonicity and finalize() agree.
  it->second.ev.end_s = time_s;
}

void InvariantAuditor::finalize(double cutoff_s) {
  for (const auto& [id, rec] : active_) {
    std::ostringstream what;
    what << "tx " << id << " ended at " << rec.ev.end_s << " but reported "
         << rec.seen_rx << "/" << rec.expected_rx << " reception outcomes";
    // A transmission still on the air at the cutoff is legitimately
    // unresolved; one that ended inside the audited window is not.
    check(rec.ev.end_s > cutoff_s, "conservation", rec.ev.end_s, what.str());
  }
}

void InvariantAuditor::cross_check(const sim::Metrics& m) {
  const auto expect_eq = [this](const char* what, std::uint64_t metrics_says,
                                std::uint64_t audit_says) {
    std::ostringstream detail;
    detail << what << ": metrics counted " << metrics_says
           << ", the event stream implies " << audit_says;
    check(metrics_says == audit_says, "metrics-crosscheck", last_event_s_,
          detail.str());
  };
  expect_eq("hop attempts", m.hop_attempts(), unicast_starts_);
  expect_eq("hop successes", m.hop_successes(), unicast_delivered_);
  expect_eq("type 1 losses", m.losses(sim::LossType::kType1),
            unicast_losses_[1]);
  expect_eq("type 2 losses", m.losses(sim::LossType::kType2),
            unicast_losses_[2]);
  expect_eq("type 3 losses", m.losses(sim::LossType::kType3),
            unicast_losses_[3]);
  expect_eq("aborted losses", m.losses(sim::LossType::kAborted),
            unicast_losses_[4]);
  expect_eq("broadcasts sent", m.broadcasts_sent(), broadcast_starts_);
  expect_eq("broadcast receptions", m.broadcast_receptions(),
            broadcast_delivered_);
  expect_eq("noise bursts", m.noise_bursts(), noise_starts_);
}

void InvariantAuditor::cross_check_engine(const InvariantAuditor& reference,
                                          double sinr_rel_bound) {
  DRN_EXPECTS(sinr_rel_bound > 0.0);
  DRN_EXPECTS(config_.record_receptions);
  DRN_EXPECTS(reference.config_.record_receptions);
  const auto rel_close = [sinr_rel_bound](double a, double b) {
    const double scale = std::max(std::abs(a), std::abs(b));
    return std::abs(a - b) <= sinr_rel_bound * std::max(scale, 1e-300);
  };

  for (const auto& [key, ref] : reference.recorded_) {
    const auto it = recorded_.find(key);
    std::ostringstream who;
    who << "rx of tx " << key.first << " at " << key.second;
    if (it == recorded_.end()) {
      check(false, "engine-crosscheck", last_event_s_,
            who.str() + " exists only in the reference engine's run");
      continue;
    }
    const RecordedReception& mine = it->second;

    check(rel_close(mine.min_sinr, ref.min_sinr), "engine-crosscheck",
          last_event_s_,
          who.str() + " min-SINR disagrees beyond the configured bound (" +
              std::to_string(mine.min_sinr) + " vs reference " +
              std::to_string(ref.min_sinr) + ")");

    if (mine.delivered != ref.delivered) {
      // A flipped outcome is only legitimate when the reference call was
      // borderline: its SINR within the bound of the threshold. Anything
      // else means the approximation changed physics, not rounding.
      check(rel_close(ref.min_sinr, ref.required_snr), "engine-crosscheck",
            last_event_s_,
            who.str() + " outcome flipped on a non-borderline reception");
    }
  }
  for (const auto& [key, mine] : recorded_) {
    if (reference.recorded_.contains(key)) continue;
    std::ostringstream who;
    who << "rx of tx " << key.first << " at " << key.second;
    check(false, "engine-crosscheck", last_event_s_,
          who.str() + " exists only in this engine's run");
  }
}

std::string InvariantAuditor::report() const {
  std::ostringstream os;
  os << "invariant audit: " << checks_run_ << " checks, " << total_violations_
     << " violations\n";
  for (const auto& [invariant, count] : counts_)
    os << "  " << invariant << ": " << count << "\n";
  for (const Violation& v : violations_)
    os << "  [" << v.invariant << "] t=" << v.time_s << " " << v.detail
       << "\n";
  return os.str();
}

}  // namespace drn::audit
