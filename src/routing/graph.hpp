// The routing graph derived from the propagation matrix (Section 6.2).
//
// "A criterion for selecting routes that is directly determinable from the
// propagation matrix would be particularly convenient... the costs are the
// reciprocal of the path gains. (The reciprocal of the path gain is
// proportional to the power that would be used with power control.)"
//
// An edge exists between stations whose mutual gain clears a usability
// threshold (i.e. the hop is reachable within the power budget); its cost is
// 1/gain — the transmit energy per unit delivered power. Minimising the sum
// of 1/gain along a path is exactly minimum-energy routing.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "radio/propagation_matrix.hpp"

namespace drn::routing {

struct Edge {
  StationId to = kNoStation;
  double cost = 0.0;  // 1/gain for min-energy, 1 for min-hop
  double gain = 0.0;
};

class Graph {
 public:
  /// Min-energy graph: edge iff gain >= min_gain, cost = 1/gain.
  static Graph min_energy(const radio::PropagationMatrix& gains,
                          double min_gain);

  /// Min-hop graph over the same edges, unit costs (ablation A3 comparator).
  static Graph min_hop(const radio::PropagationMatrix& gains, double min_gain);

  /// Empty graph over `size` stations; edges added with add_edge.
  explicit Graph(std::size_t size);

  /// Adds an undirected edge (both directions, same cost/gain).
  void add_edge(StationId a, StationId b, double cost, double gain);

  [[nodiscard]] std::size_t size() const { return adjacency_.size(); }
  [[nodiscard]] std::span<const Edge> edges(StationId station) const;

  /// Number of undirected edges.
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }

  /// True iff every station can reach every other.
  [[nodiscard]] bool connected() const;

  /// Degree (direct-neighbour count) of each station; Section 5 observes the
  /// routing-neighbour count stays small ("never exceeded eight").
  [[nodiscard]] std::vector<std::size_t> degrees() const;

 private:
  static Graph build(const radio::PropagationMatrix& gains, double min_gain,
                     bool unit_cost);

  std::vector<std::vector<Edge>> adjacency_;
  std::size_t edge_count_ = 0;
};

}  // namespace drn::routing
