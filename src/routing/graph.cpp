#include "routing/graph.hpp"

#include <vector>

#include "common/expects.hpp"

namespace drn::routing {

Graph::Graph(std::size_t size) : adjacency_(size) { DRN_EXPECTS(size > 0); }

Graph Graph::build(const radio::PropagationMatrix& gains, double min_gain,
                   bool unit_cost) {
  DRN_EXPECTS(min_gain > 0.0);
  Graph g(gains.size());
  for (StationId i = 0; i < gains.size(); ++i) {
    for (StationId j = static_cast<StationId>(i + 1); j < gains.size(); ++j) {
      const double gain = gains.gain(i, j);
      if (gain < min_gain) continue;
      g.add_edge(i, j, unit_cost ? 1.0 : 1.0 / gain, gain);
    }
  }
  return g;
}

Graph Graph::min_energy(const radio::PropagationMatrix& gains,
                        double min_gain) {
  return build(gains, min_gain, /*unit_cost=*/false);
}

Graph Graph::min_hop(const radio::PropagationMatrix& gains, double min_gain) {
  return build(gains, min_gain, /*unit_cost=*/true);
}

void Graph::add_edge(StationId a, StationId b, double cost, double gain) {
  DRN_EXPECTS(a < size() && b < size() && a != b);
  DRN_EXPECTS(cost > 0.0);
  DRN_EXPECTS(gain > 0.0);
  adjacency_[a].push_back(Edge{b, cost, gain});
  adjacency_[b].push_back(Edge{a, cost, gain});
  ++edge_count_;
}

std::span<const Edge> Graph::edges(StationId station) const {
  DRN_EXPECTS(station < size());
  return adjacency_[station];
}

bool Graph::connected() const {
  std::vector<bool> seen(size(), false);
  std::vector<StationId> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const StationId at = stack.back();
    stack.pop_back();
    for (const Edge& e : adjacency_[at]) {
      if (seen[e.to]) continue;
      seen[e.to] = true;
      ++visited;
      stack.push_back(e.to);
    }
  }
  return visited == size();
}

std::vector<std::size_t> Graph::degrees() const {
  std::vector<std::size_t> out(size());
  for (std::size_t i = 0; i < size(); ++i) out[i] = adjacency_[i].size();
  return out;
}

}  // namespace drn::routing
