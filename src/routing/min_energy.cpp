#include "routing/min_energy.hpp"

#include "common/expects.hpp"

namespace drn::routing {

double path_energy_cost(const radio::PropagationMatrix& gains,
                        std::span<const StationId> path) {
  DRN_EXPECTS(path.size() >= 2);
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    total += 1.0 / gains.gain(path[i + 1], path[i]);
  return total;
}

double interference_energy_at(const radio::PropagationMatrix& gains,
                              std::span<const StationId> path,
                              StationId observer, double target) {
  DRN_EXPECTS(path.size() >= 2);
  DRN_EXPECTS(target > 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const StationId tx = path[i];
    if (tx == observer) continue;  // the observer hears itself trivially
    const double power = target / gains.gain(path[i + 1], tx);
    total += power * gains.gain(observer, tx);  // unit airtime per hop
  }
  return total;
}

bool relay_inside_criterion_circle(geo::Vec2 a, geo::Vec2 b, geo::Vec2 c) {
  return geo::diameter_circle(a, c).contains(b);
}

std::size_t hop_count(std::span<const StationId> path) {
  DRN_EXPECTS(!path.empty());
  return path.size() - 1;
}

}  // namespace drn::routing
