#include "routing/dijkstra.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/expects.hpp"

namespace drn::routing {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

PathTree shortest_paths(const Graph& graph, StationId source) {
  DRN_EXPECTS(source < graph.size());
  PathTree tree;
  tree.source = source;
  tree.cost.assign(graph.size(), kInf);
  tree.parent.assign(graph.size(), kNoStation);
  tree.cost[source] = 0.0;

  using Item = std::pair<double, StationId>;  // (cost, station)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [cost, at] = heap.top();
    heap.pop();
    if (cost > tree.cost[at]) continue;  // stale entry
    for (const Edge& e : graph.edges(at)) {
      const double candidate = cost + e.cost;
      if (candidate < tree.cost[e.to]) {
        tree.cost[e.to] = candidate;
        tree.parent[e.to] = at;
        heap.emplace(candidate, e.to);
      }
    }
  }
  return tree;
}

std::vector<StationId> extract_path(const PathTree& tree,
                                    StationId destination) {
  DRN_EXPECTS(destination < tree.cost.size());
  if (tree.cost[destination] == kInf) return {};
  std::vector<StationId> path;
  for (StationId at = destination; at != kNoStation; at = tree.parent[at])
    path.push_back(at);
  std::reverse(path.begin(), path.end());
  DRN_ENSURES(path.front() == tree.source);
  return path;
}

RoutingTables::RoutingTables(std::size_t size)
    : size_(size),
      next_hop_(size * size, kNoStation),
      cost_(size * size, kInf) {}

RoutingTables RoutingTables::build(const Graph& graph) {
  RoutingTables tables(graph.size());
  // One Dijkstra per DESTINATION: with symmetric costs, the parent of `at`
  // in the tree rooted at dst is exactly the next hop from `at` toward dst.
  for (StationId dst = 0; dst < graph.size(); ++dst) {
    const PathTree tree = shortest_paths(graph, dst);
    for (StationId at = 0; at < graph.size(); ++at) {
      if (at == dst) continue;
      tables.next_hop_[tables.index(at, dst)] = tree.parent[at];
      tables.cost_[tables.index(at, dst)] = tree.cost[at];
    }
  }
  return tables;
}

StationId RoutingTables::next_hop(StationId at, StationId dst) const {
  DRN_EXPECTS(at < size_ && dst < size_);
  return next_hop_[index(at, dst)];
}

double RoutingTables::cost(StationId at, StationId dst) const {
  DRN_EXPECTS(at < size_ && dst < size_);
  if (at == dst) return 0.0;
  return cost_[index(at, dst)];
}

bool RoutingTables::prefix_consistent() const {
  for (StationId at = 0; at < size_; ++at) {
    for (StationId dst = 0; dst < size_; ++dst) {
      if (at == dst || cost(at, dst) == kInf) continue;
      StationId hop = at;
      double last_cost = cost(at, dst);
      for (std::size_t steps = 0; hop != dst; ++steps) {
        if (steps > size_) return false;  // loop
        hop = next_hop(hop, dst);
        if (hop == kNoStation) return false;
        const double c = cost(hop, dst);
        if (hop != dst && c >= last_cost) return false;
        last_cost = c;
      }
    }
  }
  return true;
}

std::function<StationId(StationId, StationId)> RoutingTables::router() const {
  // Copy the tables into the closure so the router outlives this object.
  return [tables = *this](StationId at, StationId dst) {
    return tables.next_hop(at, dst);
  };
}

}  // namespace drn::routing
