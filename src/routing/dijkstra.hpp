// Centralized min-cost paths (Dijkstra) and the all-pairs next-hop tables
// built from them. The distributed computation the paper actually proposes is
// in routing/bellman_ford.hpp; Dijkstra serves as the reference oracle the
// distributed algorithm must agree with (tested), and as the fast way to
// build routing tables for large simulations.
#pragma once

#include <functional>
#include <vector>

#include "common/types.hpp"
#include "routing/graph.hpp"

namespace drn::routing {

/// Single-source shortest-path tree.
struct PathTree {
  StationId source = kNoStation;
  std::vector<double> cost;       // infinity if unreachable
  std::vector<StationId> parent;  // kNoStation at source / unreachable
};

/// Dijkstra from `source` over non-negative edge costs.
[[nodiscard]] PathTree shortest_paths(const Graph& graph, StationId source);

/// The station sequence from `tree.source` to `destination` (inclusive);
/// empty if unreachable.
[[nodiscard]] std::vector<StationId> extract_path(const PathTree& tree,
                                                  StationId destination);

/// All-pairs next-hop tables: next_hop(at, dst) is the neighbour `at`
/// forwards to for destination `dst`. Built from one Dijkstra per
/// destination; costs must be symmetric (undirected graph).
class RoutingTables {
 public:
  static RoutingTables build(const Graph& graph);

  /// kNoStation if dst is unreachable from `at` (or at == dst).
  [[nodiscard]] StationId next_hop(StationId at, StationId dst) const;

  /// Total path cost from `at` to `dst` (infinity if unreachable).
  [[nodiscard]] double cost(StationId at, StationId dst) const;

  [[nodiscard]] std::size_t size() const { return size_; }

  /// The paper's hop-by-hop consistency property (Section 6.2): "a
  /// minimum-energy route from A to C that goes through B will use the same
  /// route from B to C as any other route that goes through B to get to C."
  /// True iff following next_hop pointers from every (at, dst) pair reaches
  /// dst in at most `size` hops with monotonically decreasing cost.
  [[nodiscard]] bool prefix_consistent() const;

  /// A Simulator-compatible router closure over these tables.
  [[nodiscard]] std::function<StationId(StationId, StationId)> router() const;

 private:
  explicit RoutingTables(std::size_t size);

  [[nodiscard]] std::size_t index(StationId at, StationId dst) const {
    return static_cast<std::size_t>(at) * size_ + dst;
  }

  std::size_t size_;
  std::vector<StationId> next_hop_;
  std::vector<double> cost_;
};

}  // namespace drn::routing
