// The distributed asynchronous Bellman-Ford computation the paper proposes
// for minimum-energy routing (Section 6.2, citing Bertsekas & Gallager):
// "Each station need only remember the next hop for each potential
// destination and the total energy along that route to the destination."
//
// Every station holds a distance vector (cost-to-destination, next hop) and
// repeatedly relaxes it against its neighbours' advertised vectors. Updates
// can be applied in any order (asynchronously) and still converge to the
// Dijkstra optimum on static topologies — a property the tests check against
// routing/dijkstra.hpp under randomised update orders.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "routing/graph.hpp"

namespace drn::routing {

class DistributedBellmanFord {
 public:
  explicit DistributedBellmanFord(const Graph& graph);

  /// Relaxes the vector of one station against its neighbours' current
  /// vectors (one "message processing" step). Returns true if anything
  /// changed.
  bool relax(StationId station);

  /// Runs synchronous rounds (every station relaxed once per round, fixed
  /// order) until a full quiet round. Returns the number of rounds.
  std::size_t run_synchronous(std::size_t max_rounds = 1 << 20);

  /// Runs asynchronously: stations are relaxed in uniformly random order
  /// until `quiet_streak` consecutive relaxations change nothing and a final
  /// full sweep confirms quiescence. Returns total relaxations performed.
  std::size_t run_asynchronous(Rng& rng, std::size_t quiet_streak = 64);

  /// Cost from `at` to `dst` per the current (possibly unconverged) state.
  [[nodiscard]] double cost(StationId at, StationId dst) const;

  /// Next hop from `at` toward `dst`; kNoStation if none known.
  [[nodiscard]] StationId next_hop(StationId at, StationId dst) const;

  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  [[nodiscard]] std::size_t index(StationId at, StationId dst) const {
    return static_cast<std::size_t>(at) * size_ + dst;
  }

  const Graph* graph_;
  std::size_t size_;
  std::vector<double> cost_;
  std::vector<StationId> next_hop_;
};

}  // namespace drn::routing
