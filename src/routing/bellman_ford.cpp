#include "routing/bellman_ford.hpp"

#include <limits>

#include "common/expects.hpp"

namespace drn::routing {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

DistributedBellmanFord::DistributedBellmanFord(const Graph& graph)
    : graph_(&graph),
      size_(graph.size()),
      cost_(size_ * size_, kInf),
      next_hop_(size_ * size_, kNoStation) {
  for (StationId s = 0; s < size_; ++s) cost_[index(s, s)] = 0.0;
}

bool DistributedBellmanFord::relax(StationId station) {
  DRN_EXPECTS(station < size_);
  bool changed = false;
  for (StationId dst = 0; dst < size_; ++dst) {
    if (dst == station) continue;
    double best = kInf;
    StationId best_hop = kNoStation;
    for (const Edge& e : graph_->edges(station)) {
      const double via = e.cost + cost_[index(e.to, dst)];
      if (via < best) {
        best = via;
        best_hop = e.to;
      }
    }
    auto& my_cost = cost_[index(station, dst)];
    auto& my_hop = next_hop_[index(station, dst)];
    if (best != my_cost || best_hop != my_hop) {
      my_cost = best;
      my_hop = best_hop;
      changed = true;
    }
  }
  return changed;
}

std::size_t DistributedBellmanFord::run_synchronous(std::size_t max_rounds) {
  for (std::size_t round = 1; round <= max_rounds; ++round) {
    bool changed = false;
    for (StationId s = 0; s < size_; ++s) changed |= relax(s);
    if (!changed) return round;
  }
  return max_rounds;
}

std::size_t DistributedBellmanFord::run_asynchronous(Rng& rng,
                                                     std::size_t quiet_streak) {
  DRN_EXPECTS(quiet_streak > 0);
  std::size_t relaxations = 0;
  std::size_t quiet = 0;
  while (quiet < quiet_streak) {
    const auto s = static_cast<StationId>(rng.uniform_index(size_));
    ++relaxations;
    quiet = relax(s) ? 0 : quiet + 1;
  }
  // Confirm quiescence with a deterministic full sweep (and converge any
  // stragglers the random order missed).
  bool changed = true;
  while (changed) {
    changed = false;
    for (StationId s = 0; s < size_; ++s) {
      ++relaxations;
      changed |= relax(s);
    }
  }
  return relaxations;
}

double DistributedBellmanFord::cost(StationId at, StationId dst) const {
  DRN_EXPECTS(at < size_ && dst < size_);
  return cost_[index(at, dst)];
}

StationId DistributedBellmanFord::next_hop(StationId at, StationId dst) const {
  DRN_EXPECTS(at < size_ && dst < size_);
  return next_hop_[index(at, dst)];
}

}  // namespace drn::routing
