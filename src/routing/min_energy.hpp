// Minimum-energy route properties (Section 6.2, Figure 3).
//
// Minimum-energy routing minimises a packet's "total contribution to
// interference at distant stations": each hop radiates power ∝ 1/gain for
// the packet's airtime, so path cost Σ 1/gain is (up to the constant
// airtime × target power) the radiated energy. These helpers quantify the
// geometric claims — the relay-circle criterion, the up-to-4x power and 2x
// energy reduction of a centred relay — and measure the interference energy
// a route deposits at a distant observer.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "geo/circle.hpp"
#include "geo/placement.hpp"
#include "radio/propagation_matrix.hpp"

namespace drn::routing {

/// Total route cost Σ 1/gain over consecutive stations of `path`.
[[nodiscard]] double path_energy_cost(const radio::PropagationMatrix& gains,
                                      std::span<const StationId> path);

/// Energy (power x time, relative units) a packet traversing `path` deposits
/// at `observer`: each hop transmits at power target/gain(hop) for unit
/// airtime, of which gain(observer, transmitter) arrives (Figure 3's
/// "distant station D" accounting). `target` is the delivered-power constant
/// and cancels in comparisons; it defaults to 1.
[[nodiscard]] double interference_energy_at(
    const radio::PropagationMatrix& gains, std::span<const StationId> path,
    StationId observer, double target = 1.0);

/// Figure 3's geometric criterion under free-space (1/r²) loss: relaying
/// A->B->C beats the direct hop exactly when B is strictly inside the circle
/// whose diameter is segment AC. Returns that prediction.
[[nodiscard]] bool relay_inside_criterion_circle(geo::Vec2 a, geo::Vec2 b,
                                                 geo::Vec2 c);

/// Number of hops in `path` (edges, not stations).
[[nodiscard]] std::size_t hop_count(std::span<const StationId> path);

}  // namespace drn::routing
