// The event-driven radio network simulator.
//
// Physics implemented (Sections 3.3-3.4 of the paper):
//   * propagation is a scalar power gain per ordered station pair, served by
//     a pluggable interference engine (radio/interference_engine) — dense
//     matrix or lazy grid-indexed near/far evaluation;
//   * the received "noise" for a reception is thermal noise plus the summed
//     power of every OTHER active transmission at the receiver (Eq. 5-6);
//   * a packet is decoded iff its SINR stays at or above the threshold for
//     its rate (Eq. 4) for the packet's entire airtime, the receiver never
//     radiates during that airtime (Type 3), and a despreading channel was
//     free when the packet arrived (Type 2 overload otherwise).
//
// Interference sums are maintained incrementally by the engine: every
// transmission start or end updates the running interference of each
// in-flight reception it reaches, and the simulator re-tests SINR through
// the engine's change notifications. The default (compensated) engine keeps
// those running sums exact; the near/far engine trades a bounded SINR error
// for locality (see interference_engine.hpp).
//
// Extensions beyond the base model (all off by default / opt-in):
//   * broadcast transmissions (to = kBroadcast): every station attempts
//     reception; successes arrive via MacProtocol::on_broadcast_received —
//     the substrate for over-the-air neighbour discovery;
//   * per-transmission rates (MacContext::transmit rate_bps): airtime and
//     required SINR follow the rate, enabling per-link rate selection (the
//     paper's footnote 9 direction);
//   * multiuser detection (SimulatorConfig::multiuser_subtract_k): receivers
//     subtract up to k strongest interfering contributions before the SINR
//     test (the paper's footnote 2 / Verdu reference);
//   * network dynamics (src/dynamics/): stations can be torn down and
//     rebuilt mid-run (activate/deactivate, aborting in-flight RF state),
//     moved when RF-idle (try_move_station), handed clock-rate changes, and
//     made to radiate pure noise (transmit_noise — the jammer substrate);
//     with no dynamics driver these paths are never taken.
//
// The network layer is built in: on a successful unicast hop the simulator
// counts an end-to-end delivery or consults the installed router and
// re-enqueues the packet at the receiver's MAC (Section 6.2 forwarding).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "geo/vec2.hpp"
#include "radio/interference_engine.hpp"
#include "radio/propagation_matrix.hpp"
#include "radio/reception.hpp"
#include "sim/contribution_set.hpp"
#include "sim/event_pool.hpp"
#include "sim/event_queue.hpp"
#include "sim/mac.hpp"
#include "sim/metrics.hpp"
#include "sim/observer.hpp"
#include "sim/packet.hpp"

namespace drn::sim {

/// Chooses the next hop for a packet at `at` destined for `dst`. Returning
/// kNoStation drops the packet (no route).
using Router = std::function<StationId(StationId at, StationId dst)>;

struct SimulatorConfig {
  /// The fixed design rate / bandwidth / margin shared by all stations.
  radio::ReceptionCriterion criterion;
  /// Thermal noise floor at every receiver, watts. Negative = derive kTB
  /// from the criterion's bandwidth.
  double thermal_noise_w = -1.0;
  /// Parallel despreading channels per receiver (Section 5: "GPS receivers
  /// often have six or twelve"; routing keeps direct neighbours <= 8).
  int despreading_channels = 8;
  /// Multiuser detection: subtract up to this many strongest interfering
  /// contributions before the SINR test (0 = off, the paper's base model).
  int multiuser_subtract_k = 0;
  /// Master seed for the per-station MAC random streams.
  std::uint64_t seed = 1;
  /// Interference accounting engine used by the matrix constructor (the
  /// engine constructor brings its own). kNearFar needs geometry the matrix
  /// does not carry, so it is only reachable via the engine constructor.
  radio::InterferenceEngineKind engine =
      radio::InterferenceEngineKind::kCompensated;
};

class Simulator final : public MacContext {
 public:
  /// Builds a dense-matrix engine of config.engine's kind over `gains`.
  Simulator(radio::PropagationMatrix gains, SimulatorConfig config);
  /// Adopts a ready-made engine (the only route to the near/far engine).
  Simulator(std::unique_ptr<radio::InterferenceEngine> engine,
            SimulatorConfig config);
  ~Simulator() override;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Installs the MAC driving `station`. Every station needs one before run.
  void set_mac(StationId station, std::unique_ptr<MacProtocol> mac);

  /// Installs the next-hop chooser. Default: one-hop direct to destination.
  void set_router(Router router);

  /// Installs a passive observer (not owned; null clears), replacing any
  /// already installed. See observer.hpp.
  void set_observer(SimObserver* observer) {
    observers_.clear();
    if (observer != nullptr) observers_.push_back(observer);
  }

  /// Adds a passive observer alongside any already installed (not owned).
  /// Observers are notified in installation order.
  void add_observer(SimObserver* observer);

  /// Schedules a packet to enter the network at its source at `time_s`.
  void inject(double time_s, Packet packet);

  /// Runs until the event queue drains or simulated time exceeds `t_end_s`.
  /// Calls each MAC's on_start once on the first run() call.
  void run_until(double t_end_s);

  [[nodiscard]] const Metrics& metrics() const { return metrics_; }
  [[nodiscard]] Metrics& metrics() { return metrics_; }
  [[nodiscard]] std::size_t station_count() const {
    return engine_->station_count();
  }
  [[nodiscard]] const radio::InterferenceEngine& engine() const {
    return *engine_;
  }
  [[nodiscard]] const SimulatorConfig& config() const { return config_; }

  /// Number of transmissions currently in flight (for tests).
  [[nodiscard]] std::size_t active_transmissions() const {
    return active_.size();
  }

  /// Event-core counters (benches and regression tests; see DESIGN.md
  /// section 12). Cheap snapshot — callable mid-run.
  struct QueueStats {
    /// Events popped and handled since construction.
    std::uint64_t events_processed = 0;
    /// Live entries waiting in the queue right now.
    std::size_t pending = 0;
    /// High-water mark of heap entries (live + tombstones).
    std::size_t peak_entries = 0;
    /// High-water mark of queue memory (heap items + slot headers), bytes.
    std::size_t peak_bytes = 0;
    /// Tombstone-compaction passes the queue has run.
    std::uint64_t compactions = 0;
    /// Pooled packet payloads currently allocated / pool capacity.
    std::size_t pool_live = 0;
    std::size_t pool_capacity = 0;
  };
  [[nodiscard]] QueueStats queue_stats() const;

  // -- network dynamics (driven by src/dynamics/) --------------------------

  /// Whether `station` is up (participating in the network). All stations
  /// start active; only deactivate_station changes this.
  [[nodiscard]] bool station_active(StationId station) const {
    DRN_EXPECTS(station < active_station_.size());
    return active_station_[station] != 0;
  }

  /// Tears `station` down mid-run (crash/leave): cancels its scheduled
  /// transmissions, aborts any transmission it has on the air (receivers see
  /// LossType::kAborted), marks receptions in progress at it as aborted,
  /// destroys its MAC (the queue dies with it) and invalidates its pending
  /// timers. Returns the number of queued packets lost.
  std::size_t deactivate_station(StationId station);

  /// Brings a deactivated `station` back up with a fresh MAC. If the
  /// simulation has started, the MAC's on_start runs immediately.
  void activate_station(StationId station, std::unique_ptr<MacProtocol> mac);

  /// Relocates `station` to `position` (mobility). Refused (returns false)
  /// while the station is radiating or any reception record at it is open:
  /// in-flight interference accounting references its current gains, and
  /// moving underneath it would corrupt the engine's incremental sums. The
  /// mobility model simply retries at its next tick.
  bool try_move_station(StationId station, geo::Vec2 position);

  /// Delivers a clock-rate change of `delta_ppm` (relative to the current
  /// rate) to `station`'s MAC — the dynamics drift-ramp entry point.
  void notify_clock_rate(StationId station, double delta_ppm);

  /// Hands the interference engine the geometry it needs to recompute gains
  /// when stations move (matrix engines; the near/far engine carries its
  /// own). Forwarded to InterferenceEngine::enable_mobility.
  void enable_mobility(geo::Placement placement,
                       std::shared_ptr<const radio::PropagationModel> model,
                       radio::LinearGain self_gain = radio::LinearGain{1.0}) {
    engine_->enable_mobility(std::move(placement), std::move(model),
                             self_gain);
  }

  // -- MacContext (the simulator services the MAC whose hook is running) ---
  [[nodiscard]] double now() const override { return now_s_; }
  [[nodiscard]] StationId self() const override;
  using MacContext::transmit;
  void transmit(const Packet& pkt, StationId to, double power_w,
                double start_s, double rate_bps) override;
  void transmit_noise(double power_w, double start_s,
                      double duration_s) override;
  TimerHandle set_timer(double at_s, std::uint64_t cookie) override;
  bool cancel_timer(TimerHandle h) override;
  [[nodiscard]] bool transmitting() const override;
  [[nodiscard]] double received_power_w() const override;
  [[nodiscard]] double gain_to(StationId other) const override;
  void drop(const Packet& pkt) override;
  [[nodiscard]] Rng& rng() override;

 private:
  struct ActiveTx {
    Packet packet;
    StationId from = kNoStation;
    StationId to = kNoStation;  // station id, kBroadcast, or kNoStation
                                // (= a pure noise burst: no receptions)
    double power_w = 0.0;
    double start_s = 0.0;
    double end_s = 0.0;
    double rate_bps = 0.0;
    double required_snr = 0.0;  // Eq. 4 threshold at this rate
    /// Queue entries for this transmission, cancellable while pending: both
    /// while scheduled, the end alone once in flight (aborts cut it short).
    EventHandle start_ev;
    EventHandle end_ev;
  };

  struct Reception {
    StationId rx = kNoStation;
    double signal_w = 0.0;
    /// Engine-side interference state for this reception (the engine's
    /// interference(handle) is thermal + all other active transmissions).
    radio::ReceptionHandle handle = radio::kInvalidReception;
    double min_sinr = 0.0;  // worst (effective) SINR seen so far
    double required_snr = 0.0;
    LossType failure = LossType::kNone;
    bool occupies_channel = false;  // holds one of rx's despreading channels
    /// Per-interferer contributions, kept only when multiuser detection is
    /// on (needed to subtract the strongest k).
    ContributionSet contributions;
  };

  void handle_transmit_start(std::uint64_t tx_id);
  void handle_transmit_end(std::uint64_t tx_id);
  void handle_inject(PacketHandle handle);

  /// Cuts short a transmission already on the air (its sender is being torn
  /// down): removes it from the engine now, closes its receptions with
  /// kAborted outcomes, and cancels its pending end event. Does NOT call the
  /// sender's on_transmit_end.
  void abort_transmission(std::uint64_t tx_id);

  /// Books the start/end queue entries for a freshly scheduled transmission
  /// and stores their handles on the ActiveTx (shared tail of transmit and
  /// transmit_noise).
  void schedule_tx_events(std::uint64_t tx_id, ActiveTx& tx);

  void deliver(const Packet& packet, StationId at);
  void enqueue_at(StationId station, const Packet& packet);

  /// Opens the reception record for `tx` at receiver `rx` (admission rules:
  /// not transmitting, free despreading channel, initial SINR) and registers
  /// its engine handle in by_handle_.
  void open_reception(std::uint64_t tx_id, const ActiveTx& tx, StationId rx,
                      std::vector<Reception>& records);

  /// Effective SINR of a reception after optional multiuser subtraction.
  [[nodiscard]] double effective_sinr(const Reception& r) const;

  /// Re-tests a reception against its threshold after an interference
  /// change and folds the result into min_sinr.
  void note_interference_change(Reception& r, const ActiveTx& cause);

  /// Marks `r` failed (first failure wins) with the taxonomy type implied by
  /// the interfering transmission `cause`.
  void fail_reception(Reception& r, const ActiveTx& cause);

  /// Interference classification for a transmission relative to receiver rx.
  [[nodiscard]] static LossType classify(const ActiveTx& interferer,
                                         StationId rx);

  [[nodiscard]] bool station_transmitting(StationId s) const {
    return transmitting_count_[s] > 0;
  }

  [[nodiscard]] Reception& reception_at(radio::ReceptionHandle h) {
    DRN_EXPECTS(h < by_handle_.size() && by_handle_[h] != nullptr);
    return *by_handle_[h];
  }

  /// Runs a MAC hook with the context bound to `station`.
  template <typename F>
  void with_station(StationId station, F&& hook);

  std::unique_ptr<radio::InterferenceEngine> engine_;
  SimulatorConfig config_;
  Metrics metrics_;
  EventQueue queue_;
  EventPool pool_;  // payloads of pending kInject events
  double now_s_ = 0.0;
  bool started_ = false;
  std::uint64_t events_processed_ = 0;

  std::vector<std::unique_ptr<MacProtocol>> macs_;
  std::vector<Rng> rngs_;
  Router router_;
  std::vector<SimObserver*> observers_;

  std::uint64_t next_tx_id_ = 1;
  PacketId next_packet_id_ = 1;
  // Pending (scheduled but not started) + in-flight transmissions.
  std::map<std::uint64_t, ActiveTx> scheduled_;
  std::map<std::uint64_t, ActiveTx> active_;
  // In-flight receptions, keyed by tx_id (one per receiver for broadcasts).
  // Vectors are reserved before records are appended so the back-pointers
  // in by_handle_ stay valid for a record's whole lifetime.
  std::map<std::uint64_t, std::vector<Reception>> receptions_;
  std::vector<Reception*> by_handle_;     // engine handle -> live record
  std::vector<int> transmitting_count_;   // per station
  std::vector<int> reception_count_;      // per station (despreading channels)
  // Per station: in-flight unicast transmissions addressed TO it. Lets the
  // below-threshold-at-open Type-2 attribution test run in O(1) instead of
  // walking every active transmission per opened reception (a broadcast at
  // large M opens thousands, most of them below threshold).
  std::vector<int> addressed_count_;
  std::vector<double> tx_busy_until_s_;   // per station: serialization check

  // Handles of timers armed by each station's current MAC, so teardown can
  // cancel them outright instead of letting them ride the queue to a
  // drop-at-pop. Fired/cancelled handles go stale harmlessly; the list is
  // pruned of them when it grows. Registered in set_timer.
  std::vector<std::vector<EventHandle>> station_timers_;

  // -- dynamics state (quiescent unless src/dynamics/ drives the run) ------
  std::vector<char> active_station_;      // per station: 1 = up
  // Bumped on every teardown so a timer armed by a dead MAC — already
  // cancelled via station_timers_; the generation is defense in depth —
  // can never be delivered to its replacement.
  std::vector<std::uint32_t> mac_generation_;
  // Open reception records at each station (all outcomes, not just pending):
  // while > 0 the engine holds per-reception state referencing the station's
  // gains, so the station must not move.
  std::vector<int> open_rx_count_;

  // Context binding for the MAC hook currently executing.
  StationId current_station_ = kNoStation;
};

}  // namespace drn::sim
