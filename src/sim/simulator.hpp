// The event-driven radio network simulator — a thin facade over three
// internally-owned layers (see DESIGN.md section 13):
//
//   * sim::RadioMedium (medium.hpp): the physical channel. Propagation
//     gains served by a pluggable interference engine, incremental
//     interference sums (Eq. 5-6), the SINR decode test (Eq. 4), the
//     Section 5 loss taxonomy and despreading-channel admission, broadcast
//     fan-out, per-transmission rates and multiuser subtraction.
//   * sim::StationHost (station_host.hpp): the stations. MAC instances,
//     per-station RNG streams, timers, activation state (churn), and the
//     context binding for every MAC hook.
//   * sim::NetworkLayer (network_layer.hpp): Section 6.2 forwarding. The
//     router, end-to-end delivery accounting, and the injected-traffic
//     packet-id namespace.
//
// The event core (event_queue/event_pool) is owned here and shared by
// reference; the facade runs the event loop and dispatches each popped
// event to its layer. Decode outcomes climb back up through the private
// RadioMedium::Client implementation, which routes them to the receiving
// MAC or the network layer at exactly the points the historical monolithic
// Simulator invoked them — the split is draw-for-draw bit-identical, pinned
// by the event-order golden digests (tests/integration).
//
// Facade guarantee: the public Simulator API is unchanged by the layering —
// every pre-split caller (MACs via MacContext, runners, benches, dynamics,
// audits) compiles and behaves identically. The layers are reachable
// read-only via medium()/host()/network() for tests and tools that want to
// assert through the seams.
//
// Extensions beyond the base model — broadcast fan-out, per-transmission
// rates, multiuser detection, network dynamics (churn/mobility/drift/
// jammers) — are documented on the layer that owns each (medium.hpp,
// station_host.hpp) and are all off by default / opt-in.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "geo/vec2.hpp"
#include "radio/interference_engine.hpp"
#include "radio/propagation_matrix.hpp"
#include "radio/reception.hpp"
#include "sim/event_pool.hpp"
#include "sim/event_queue.hpp"
#include "sim/mac.hpp"
#include "sim/medium.hpp"
#include "sim/metrics.hpp"
#include "sim/network_layer.hpp"
#include "sim/observer.hpp"
#include "sim/packet.hpp"
#include "sim/station_host.hpp"

namespace drn::sim {

class Simulator final : public MacContext, private RadioMedium::Client {
 public:
  /// Builds a dense-matrix engine of config.engine's kind over `gains`.
  Simulator(radio::PropagationMatrix gains, SimulatorConfig config);
  /// Adopts a ready-made engine (the only route to the near/far engine).
  Simulator(std::unique_ptr<radio::InterferenceEngine> engine,
            SimulatorConfig config);
  ~Simulator() override;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Installs the MAC driving `station`. Every station needs one before run.
  void set_mac(StationId station, std::unique_ptr<MacProtocol> mac);

  /// Installs the next-hop chooser. Default: one-hop direct to destination.
  void set_router(Router router);

  /// Installs a passive observer (not owned; null clears), replacing only
  /// the observer this method itself installed earlier — observers added
  /// via add_observer (auditors, dynamics engines, traces) are never
  /// touched. See observer.hpp.
  void set_observer(SimObserver* observer);

  /// Adds a passive observer alongside any already installed (not owned).
  /// Observers are notified in installation order.
  void add_observer(SimObserver* observer);

  /// Schedules a packet to enter the network at its source at `time_s`.
  void inject(double time_s, Packet packet);

  /// Runs until the event queue drains or simulated time exceeds `t_end_s`.
  /// Calls each MAC's on_start once on the first run() call.
  void run_until(double t_end_s);

  [[nodiscard]] const Metrics& metrics() const { return metrics_; }
  [[nodiscard]] Metrics& metrics() { return metrics_; }
  [[nodiscard]] std::size_t station_count() const {
    return medium_.station_count();
  }
  [[nodiscard]] const radio::InterferenceEngine& engine() const {
    return medium_.engine();
  }
  [[nodiscard]] const SimulatorConfig& config() const { return config_; }

  /// Number of transmissions currently in flight (for tests).
  [[nodiscard]] std::size_t active_transmissions() const {
    return medium_.active_count();
  }

  // -- the layers (read-only seams for tests/tools) -------------------------
  [[nodiscard]] const RadioMedium& medium() const { return medium_; }
  [[nodiscard]] const StationHost& host() const { return host_; }
  [[nodiscard]] const NetworkLayer& network() const { return network_; }

  /// Event-core counters (benches and regression tests; see DESIGN.md
  /// section 12). Cheap snapshot — callable mid-run.
  struct QueueStats {
    /// Events popped and handled since construction.
    std::uint64_t events_processed = 0;
    /// Live entries waiting in the queue right now.
    std::size_t pending = 0;
    /// High-water mark of heap entries (live + tombstones).
    std::size_t peak_entries = 0;
    /// High-water mark of queue memory (heap items + slot headers), bytes.
    std::size_t peak_bytes = 0;
    /// Tombstone-compaction passes the queue has run.
    std::uint64_t compactions = 0;
    /// Pooled packet payloads currently allocated / pool capacity.
    std::size_t pool_live = 0;
    std::size_t pool_capacity = 0;
  };
  [[nodiscard]] QueueStats queue_stats() const;

  // -- network dynamics (driven by src/dynamics/) --------------------------

  /// Whether `station` is up (participating in the network). All stations
  /// start active; only deactivate_station changes this.
  [[nodiscard]] bool station_active(StationId station) const {
    return host_.station_active(station);
  }

  /// Tears `station` down mid-run (crash/leave): cancels its scheduled
  /// transmissions, aborts any transmission it has on the air (receivers see
  /// LossType::kAborted), marks receptions in progress at it as aborted,
  /// destroys its MAC (the queue dies with it) and invalidates its pending
  /// timers. Returns the number of queued packets lost.
  std::size_t deactivate_station(StationId station);

  /// Brings a deactivated `station` back up with a fresh MAC. If the
  /// simulation has started, the MAC's on_start runs immediately.
  void activate_station(StationId station, std::unique_ptr<MacProtocol> mac);

  /// Relocates `station` to `position` (mobility). Refused (returns false)
  /// while the station is radiating or any reception record at it is open:
  /// in-flight interference accounting references its current gains, and
  /// moving underneath it would corrupt the engine's incremental sums. The
  /// mobility model simply retries at its next tick.
  bool try_move_station(StationId station, geo::Vec2 position);

  /// Delivers a clock-rate change of `delta_ppm` (relative to the current
  /// rate) to `station`'s MAC — the dynamics drift-ramp entry point.
  void notify_clock_rate(StationId station, double delta_ppm);

  /// Hands the interference engine the geometry it needs to recompute gains
  /// when stations move (matrix engines; the near/far engine carries its
  /// own). Forwarded to InterferenceEngine::enable_mobility.
  void enable_mobility(geo::Placement placement,
                       std::shared_ptr<const radio::PropagationModel> model,
                       radio::LinearGain self_gain = radio::LinearGain{1.0}) {
    medium_.enable_mobility(std::move(placement), std::move(model),
                            self_gain);
  }

  // -- MacContext (the simulator services the MAC whose hook is running) ---
  [[nodiscard]] double now() const override { return now_s_; }
  [[nodiscard]] StationId self() const override { return host_.self(); }
  using MacContext::transmit;
  void transmit(const Packet& pkt, StationId to, double power_w,
                double start_s, double rate_bps) override;
  void transmit_noise(double power_w, double start_s,
                      double duration_s) override;
  TimerHandle set_timer(double at_s, std::uint64_t cookie) override;
  bool cancel_timer(TimerHandle h) override;
  [[nodiscard]] bool transmitting() const override;
  [[nodiscard]] double received_power_w() const override;
  [[nodiscard]] double gain_to(StationId other) const override;
  void drop(const Packet& pkt) override;
  [[nodiscard]] Rng& rng() override { return host_.rng(); }

 private:
  void handle_inject(PacketHandle handle);

  // -- RadioMedium::Client: decode outcomes climbing out of the medium -----
  [[nodiscard]] bool station_up(StationId station) const override {
    return host_.station_active(station);
  }
  void on_decoded_unicast(const Packet& packet, StationId rx) override {
    network_.deliver(packet, rx, now_s_);
  }
  void on_decoded_broadcast(const Packet& packet, StationId from,
                            StationId rx, double signal_w) override;
  void on_transmit_complete(StationId from, const Packet& packet,
                            StationId to, bool any_delivered) override;

  SimulatorConfig config_;  // finalized at construction (thermal derived)
  Metrics metrics_;
  EventQueue queue_;
  EventPool pool_;  // payloads of pending kInject events
  double now_s_ = 0.0;
  std::uint64_t events_processed_ = 0;

  // Observer slots, shared by reference with the medium. set_observer owns
  // at most one slot (tracked by index); add_observer appends.
  std::vector<SimObserver*> observers_;
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  std::size_t owned_slot_ = kNoSlot;

  // The three layers (construction order matters: the medium adopts the
  // engine, the host needs the station count, the network needs the host).
  RadioMedium medium_;
  StationHost host_;
  NetworkLayer network_;
};

}  // namespace drn::sim
