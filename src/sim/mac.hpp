// The MAC (channel access) interface between station behaviour and the
// event-driven simulator.
//
// One MacProtocol instance drives one station. The simulator calls the
// on_* hooks; the MAC acts through the MacContext services (schedule a
// transmission, set a timer, sense the channel). The paper's scheme
// (core/scheduled_station.hpp) and the prior-work baselines
// (baselines/aloha.hpp etc.) all implement this interface, so every
// comparison runs under the identical physical model.
//
// MacContext is implemented by the Simulator facade: transmit paths and
// channel queries resolve in the physical layer (sim::RadioMedium), timers
// and the per-station RNG in the lifecycle layer (sim::StationHost). The
// MAC never sees the layering — DESIGN.md §13.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/event_handle.hpp"
#include "sim/packet.hpp"

namespace drn::sim {

/// Names one armed timer. Generation-stamped (see EventHandle): once the
/// timer fires or is cancelled the handle goes stale, and cancelling a stale
/// handle is a guaranteed no-op — a MAC may keep one around indefinitely.
using TimerHandle = EventHandle;

/// Services the simulator offers a MAC. Lifetime: valid only for the duration
/// of the hook call it is passed to.
class MacContext {
 public:
  virtual ~MacContext() = default;

  /// Current global simulation time, seconds. (Station-local clocks are the
  /// MAC's own business; see core/clock.hpp.)
  [[nodiscard]] virtual double now() const = 0;

  /// This station's id.
  [[nodiscard]] virtual StationId self() const = 0;

  /// Schedules a physical transmission of `pkt` to `to` (a station id, or
  /// kBroadcast to let every station in range attempt reception), radiating
  /// `power_w` watts from global time `start_s` (>= now). `rate_bps` is the
  /// modulation rate for this transmission — it sets both the airtime
  /// (size_bits / rate) and the required SINR (Eq. 4 at this rate); 0 means
  /// the network's fixed design rate. Transmissions of one station must not
  /// overlap; the simulator enforces this as a precondition.
  virtual void transmit(const Packet& pkt, StationId to, double power_w,
                        double start_s, double rate_bps) = 0;

  /// Convenience: transmit at the network's design rate.
  void transmit(const Packet& pkt, StationId to, double power_w,
                double start_s) {
    transmit(pkt, to, power_w, start_s, 0.0);
  }

  /// Schedules a pure noise emission: `power_w` watts on the air from
  /// `start_s` (>= now) for `duration_s` seconds, addressed to nobody. It
  /// raises the interference of every reception it reaches (classified as
  /// Type 1 for third parties, Type 3 at the emitter itself) but opens no
  /// reception and carries no packet. This is the jammer substrate
  /// (src/dynamics/jammer.hpp); it serializes with the station's ordinary
  /// transmissions.
  virtual void transmit_noise(double power_w, double start_s,
                              double duration_s) = 0;

  /// Arms a timer; on_timer(cookie) fires at global time `at_s` (>= now).
  /// The returned handle cancels exactly this timer; callers that re-arm
  /// fire-and-forget timers may ignore it (a fired timer is simply dropped
  /// if its cookie no longer matches the MAC's state).
  virtual TimerHandle set_timer(double at_s, std::uint64_t cookie) = 0;

  /// Disarms the timer behind `h` before it fires. Returns whether it was
  /// still pending; a fired, already-cancelled, or never-armed handle is a
  /// harmless no-op (false). Cancelling instead of dropping at fire time
  /// keeps superseded timers from accumulating in the event queue.
  virtual bool cancel_timer(TimerHandle h) = 0;

  /// True while this station's transmitter is radiating.
  [[nodiscard]] virtual bool transmitting() const = 0;

  /// Total signal power currently impinging on this station's antenna
  /// (thermal noise + every active transmission), watts. This is what a
  /// carrier-sense MAC can measure.
  [[nodiscard]] virtual double received_power_w() const = 0;

  /// Power gain from this station to `other` (the measurable entry of the
  /// propagation matrix H — Section 6.2: stations "observe the path gains").
  [[nodiscard]] virtual double gain_to(StationId other) const = 0;

  /// Records that the MAC permanently gave up on a packet (queue overflow,
  /// retry exhaustion). The packet counts as lost in the metrics.
  virtual void drop(const Packet& pkt) = 0;

  /// Per-station deterministic random stream.
  [[nodiscard]] virtual Rng& rng() = 0;
};

/// A station's channel access behaviour.
class MacProtocol {
 public:
  virtual ~MacProtocol() = default;

  /// Called once when the simulation starts.
  virtual void on_start(MacContext& ctx) { (void)ctx; }

  /// A packet (locally originated or to be forwarded) was handed to this
  /// station; the network layer has already chosen `next_hop`.
  virtual void on_enqueue(MacContext& ctx, const Packet& pkt,
                          StationId next_hop) = 0;

  /// A previously armed timer fired.
  virtual void on_timer(MacContext& ctx, std::uint64_t cookie) {
    (void)ctx;
    (void)cookie;
  }

  /// One of this station's transmissions finished. `delivered` reports
  /// whether the addressee decoded it (for broadcasts: whether anyone did).
  /// The paper's scheme never needs this oracle (it is collision-free by
  /// construction); retransmitting baselines use it as an idealised (free,
  /// instant) acknowledgement, which biases the comparison in the
  /// baselines' favour.
  virtual void on_transmit_end(MacContext& ctx, const Packet& pkt,
                               StationId to, bool delivered) {
    (void)ctx;
    (void)pkt;
    (void)to;
    (void)delivered;
  }

  /// A broadcast transmission from `from` was decoded at this station.
  /// `signal_w` is the received signal power — combined with a power value
  /// carried in the payload this is how stations measure path gains
  /// ("stations may observe the actual propagation", Section 3.5).
  virtual void on_broadcast_received(MacContext& ctx, const Packet& pkt,
                                     StationId from, double signal_w) {
    (void)ctx;
    (void)pkt;
    (void)from;
    (void)signal_w;
  }

  /// Packets currently queued at this MAC awaiting transmission. The
  /// simulator consults it when tearing a station down (dynamics churn) to
  /// account for the queue that dies with the MAC; protocols without a queue
  /// may leave the default.
  [[nodiscard]] virtual std::size_t queued_packets() const { return 0; }

  /// This station's oscillator rate just changed by `delta_ppm` parts per
  /// million relative to its CURRENT rate (a dynamics clock-drift ramp).
  /// Clock-aware protocols update their local clock, keeping local time
  /// continuous at the instant of the change; others ignore it.
  virtual void on_clock_rate_changed(MacContext& ctx, double delta_ppm) {
    (void)ctx;
    (void)delta_ppm;
  }
};

}  // namespace drn::sim
