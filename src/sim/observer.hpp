// Passive instrumentation of the simulator: an observer sees every
// transmission start and every reception outcome, with the physical facts
// (powers, SINR, loss classification) attached. Tests use this to check
// schedule compliance against ground-truth clocks; tools use it for traces.
//
// All notifications originate in the physical layer (sim::RadioMedium) at
// the instant the fact becomes true on the air. Install long-lived riders
// (auditors, dynamics engines) with Simulator::add_observer; set_observer
// manages a single replaceable slot for tools and never touches the rest.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "sim/metrics.hpp"
#include "sim/packet.hpp"

namespace drn::sim {

/// Facts about a transmission at the moment it starts radiating.
struct TxEvent {
  std::uint64_t tx_id = 0;
  StationId from = kNoStation;
  /// Addressee, or kBroadcast.
  StationId to = kNoStation;
  double power_w = 0.0;
  double start_s = 0.0;
  double end_s = 0.0;
  double rate_bps = 0.0;
  PacketId packet = 0;
};

/// Facts about one reception at the moment its transmission ends.
struct RxEvent {
  std::uint64_t tx_id = 0;
  StationId rx = kNoStation;
  bool delivered = false;
  LossType loss = LossType::kNone;
  /// Worst SINR seen over the packet's airtime.
  double min_sinr = 0.0;
  /// The threshold this reception had to clear.
  double required_snr = 0.0;
  /// Received signal power, watts (what a receiver can measure).
  double signal_w = 0.0;
};

class SimObserver {
 public:
  virtual ~SimObserver() = default;
  virtual void on_transmit_start(const TxEvent& tx) { (void)tx; }
  virtual void on_reception_complete(const RxEvent& rx) { (void)rx; }
  /// A transmission already on the air was cut short at `time_s` (its sender
  /// was torn down by a dynamics event). The RxEvents for its receptions
  /// follow immediately, carrying LossType::kAborted; `tx` repeats the
  /// original on_transmit_start facts (so end_s is the PLANNED end — the
  /// actual end is time_s).
  virtual void on_transmit_aborted(const TxEvent& tx, double time_s) {
    (void)tx;
    (void)time_s;
  }
};

}  // namespace drn::sim
