#include "sim/station_host.hpp"

#include <algorithm>

namespace drn::sim {

StationHost::StationHost(std::size_t station_count, std::uint64_t seed,
                         EventQueue& queue, Metrics& metrics, MacContext& ctx)
    : queue_(queue),
      metrics_(metrics),
      ctx_(ctx),
      macs_(station_count),
      station_timers_(station_count),
      active_station_(station_count, 1),
      mac_generation_(station_count, 0) {
  Rng master(seed);
  rngs_.reserve(station_count);
  for (std::size_t i = 0; i < station_count; ++i)
    rngs_.push_back(master.split(i));
}

void StationHost::set_mac(StationId station,
                          std::unique_ptr<MacProtocol> mac) {
  DRN_EXPECTS(station < macs_.size());
  DRN_EXPECTS(mac != nullptr);
  DRN_EXPECTS(!started_);
  macs_[station] = std::move(mac);
}

void StationHost::start_if_needed() {
  if (started_) return;
  for (StationId s = 0; s < macs_.size(); ++s) {
    if (active_station_[s] == 0) continue;
    DRN_EXPECTS(macs_[s] != nullptr);  // every active station needs a MAC
    with_station(s, [this](MacProtocol& mac) { mac.on_start(ctx_); });
  }
  started_ = true;
}

void StationHost::deliver_timer(StationId station, std::uint64_t cookie,
                                std::uint32_t generation) {
  // A timer armed by a MAC that has since been torn down is cancelled at
  // teardown, so a stale one can barely reach here; the generation guard
  // stays as defense in depth. Deliver only fresh timers.
  if (active_station_[station] == 0 ||
      generation != mac_generation_[station]) {
    return;
  }
  with_station(station, [this, cookie](MacProtocol& mac) {
    mac.on_timer(ctx_, cookie);
  });
}

TimerHandle StationHost::arm_timer(double at_s, std::uint64_t cookie) {
  Event e;
  e.time_s = at_s;
  e.kind = EventKind::kTimer;
  e.station = self();
  e.cookie = cookie;
  e.generation = mac_generation_[e.station];
  const EventHandle h = queue_.push(e);
  // Remember the handle so teardown can cancel outright. Fired and
  // cancelled handles go stale on their own; sweep them out once the list
  // grows, keeping it proportional to the station's truly pending timers.
  auto& timers = station_timers_[e.station];
  if (timers.size() >= 32) {
    std::erase_if(timers,
                  [this](EventHandle t) { return !queue_.pending(t); });
  }
  timers.push_back(h);
  return h;
}

std::size_t StationHost::teardown(StationId station) {
  DRN_EXPECTS(macs_[station] != nullptr);
  // The dead MAC's pending timers leave the queue now instead of riding it
  // as deadweight until their fire time (the generation bump below still
  // guards anything that slipped through).
  for (const EventHandle h : station_timers_[station]) queue_.cancel(h);
  station_timers_[station].clear();

  // The queue dies with the MAC.
  const std::size_t dropped = macs_[station]->queued_packets();
  metrics_.record_churn_drops(dropped);
  macs_[station].reset();
  active_station_[station] = 0;
  ++mac_generation_[station];  // pending timers of the old MAC are now stale
  metrics_.record_station_down();
  return dropped;
}

void StationHost::activate(StationId station,
                           std::unique_ptr<MacProtocol> mac) {
  DRN_EXPECTS(station < macs_.size());
  DRN_EXPECTS(active_station_[station] == 0);
  DRN_EXPECTS(mac != nullptr);
  macs_[station] = std::move(mac);
  active_station_[station] = 1;
  metrics_.record_station_up();
  if (started_)
    with_station(station, [this](MacProtocol& m) { m.on_start(ctx_); });
}

void StationHost::notify_clock_rate(StationId station, double delta_ppm) {
  DRN_EXPECTS(station < macs_.size());
  DRN_EXPECTS(active_station_[station] != 0);
  with_station(station, [this, delta_ppm](MacProtocol& mac) {
    mac.on_clock_rate_changed(ctx_, delta_ppm);
  });
}

}  // namespace drn::sim
