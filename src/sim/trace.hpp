// A recording observer: captures every transmission and reception outcome
// for offline analysis, assertions, or CSV export. Plug into
// Simulator::set_observer.
#pragma once

#include <ostream>
#include <vector>

#include "sim/observer.hpp"

namespace drn::sim {

class TraceRecorder final : public SimObserver {
 public:
  void on_transmit_start(const TxEvent& tx) override;
  void on_reception_complete(const RxEvent& rx) override;

  [[nodiscard]] const std::vector<TxEvent>& transmissions() const {
    return transmissions_;
  }
  [[nodiscard]] const std::vector<RxEvent>& receptions() const {
    return receptions_;
  }

  /// Transmissions radiated by `station`.
  [[nodiscard]] std::vector<TxEvent> transmissions_from(StationId station) const;

  /// Reception outcomes at `station`.
  [[nodiscard]] std::vector<RxEvent> receptions_at(StationId station) const;

  /// Fraction of receptions that were delivered (1.0 when empty).
  [[nodiscard]] double delivery_fraction() const;

  /// Writes the transmissions as CSV:
  /// tx_id,from,to,power_w,start_s,end_s,rate_bps,packet.
  void write_transmissions_csv(std::ostream& os) const;

  /// Writes the receptions as CSV:
  /// tx_id,rx,delivered,loss,min_sinr,required_snr,signal_w.
  void write_receptions_csv(std::ostream& os) const;

  void clear();

 private:
  std::vector<TxEvent> transmissions_;
  std::vector<RxEvent> receptions_;
};

}  // namespace drn::sim
