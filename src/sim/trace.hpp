// A recording observer: captures every transmission and reception outcome
// for offline analysis, assertions, or CSV export. Plug into
// Simulator::set_observer (which owns exactly one observer slot, so a trace
// installed this way never evicts an auditor added via add_observer).
//
// Memory can be bounded with a max_events cap: each stream keeps only the
// newest max_events records (oldest dropped first) and counts what it shed,
// so long sweeps with tracing enabled stay O(cap) instead of O(run length).
#pragma once

#include <cstdint>
#include <deque>
#include <ostream>
#include <vector>

#include "sim/observer.hpp"

namespace drn::sim {

class TraceRecorder final : public SimObserver {
 public:
  /// `max_events` caps EACH stream (transmissions, receptions) separately;
  /// 0 means unbounded.
  explicit TraceRecorder(std::size_t max_events = 0)
      : max_events_(max_events) {}

  void on_transmit_start(const TxEvent& tx) override;
  void on_reception_complete(const RxEvent& rx) override;

  [[nodiscard]] const std::deque<TxEvent>& transmissions() const {
    return transmissions_;
  }
  [[nodiscard]] const std::deque<RxEvent>& receptions() const {
    return receptions_;
  }

  /// The per-stream cap (0 = unbounded).
  [[nodiscard]] std::size_t max_events() const { return max_events_; }

  /// Events shed from the front of each stream to honour the cap.
  [[nodiscard]] std::uint64_t dropped_transmissions() const {
    return dropped_transmissions_;
  }
  [[nodiscard]] std::uint64_t dropped_receptions() const {
    return dropped_receptions_;
  }

  /// Transmissions radiated by `station`.
  [[nodiscard]] std::vector<TxEvent> transmissions_from(StationId station) const;

  /// Reception outcomes at `station`.
  [[nodiscard]] std::vector<RxEvent> receptions_at(StationId station) const;

  /// Fraction of receptions that were delivered (1.0 when empty).
  [[nodiscard]] double delivery_fraction() const;

  /// Writes the transmissions as CSV:
  /// tx_id,from,to,power_w,start_s,end_s,rate_bps,packet.
  void write_transmissions_csv(std::ostream& os) const;

  /// Writes the receptions as CSV:
  /// tx_id,rx,delivered,loss,min_sinr,required_snr,signal_w.
  void write_receptions_csv(std::ostream& os) const;

  /// Discards all records and resets the dropped counters.
  void clear();

 private:
  std::size_t max_events_ = 0;
  std::deque<TxEvent> transmissions_;
  std::deque<RxEvent> receptions_;
  std::uint64_t dropped_transmissions_ = 0;
  std::uint64_t dropped_receptions_ = 0;
};

}  // namespace drn::sim
