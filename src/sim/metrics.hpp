// Simulation outcome accounting.
//
// Losses are classified by the paper's Section 5 taxonomy:
//   Type 1 — interference from a transmission neither from nor to the
//            receiver pushed SINR below threshold;
//   Type 2 — a second transmission addressed to the same receiver did so, or
//            all despreading channels were busy when the packet arrived;
//   Type 3 — the receiver's own transmitter was active during the packet.
//   Aborted — the transmitter or receiver was torn down mid-air by a
//            dynamics event (station crash/leave); not a paper loss class,
//            only reachable when churn is enabled.
// "MAC drop" counts packets a MAC abandoned (queue overflow / retries).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/running_stats.hpp"
#include "common/types.hpp"

namespace drn::sim {

enum class LossType : std::uint8_t {
  kNone = 0,
  kType1 = 1,
  kType2 = 2,
  kType3 = 3,
  kAborted = 4,
};

/// Counters and distributions collected over one simulation run.
class Metrics {
 public:
  explicit Metrics(std::size_t stations);

  // -- recording (called by the simulator) --------------------------------
  void record_offered() { ++offered_; }
  void record_hop_attempt() { ++hop_attempts_; }
  void record_hop_success(double sinr_margin_db);
  void record_hop_loss(LossType type);
  void record_mac_drop() { ++mac_drops_; }
  void record_delivery(double delay_s, std::uint32_t hops);
  void record_airtime(StationId station, double seconds);
  void record_broadcast() { ++broadcasts_sent_; }
  void record_broadcast_reception() { ++broadcast_receptions_; }
  /// Subtracts airtime recorded up front for a transmission that was aborted
  /// before its planned end (the unaired remainder).
  void trim_airtime(StationId station, double seconds);

  // -- dynamics (src/dynamics/; all zero when no dynamics run) -------------
  void record_station_down() { ++station_leaves_; }
  void record_station_up() { ++station_joins_; }
  /// Queued packets lost when a station was torn down.
  void record_churn_drops(std::uint64_t count) { churn_drops_ += count; }
  /// One deliberate noise burst (jammer) started radiating.
  void record_noise_burst() { ++noise_bursts_; }
  /// Seconds from a station's rejoin to its first successful hop.
  void record_recovery(double seconds) { recovery_s_.add(seconds); }

  // -- results -------------------------------------------------------------
  [[nodiscard]] std::uint64_t offered() const { return offered_; }
  [[nodiscard]] std::uint64_t hop_attempts() const { return hop_attempts_; }
  [[nodiscard]] std::uint64_t hop_successes() const { return hop_successes_; }
  [[nodiscard]] std::uint64_t losses(LossType type) const;
  [[nodiscard]] std::uint64_t total_hop_losses() const;
  [[nodiscard]] std::uint64_t mac_drops() const { return mac_drops_; }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t broadcasts_sent() const {
    return broadcasts_sent_;
  }
  [[nodiscard]] std::uint64_t broadcast_receptions() const {
    return broadcast_receptions_;
  }
  [[nodiscard]] std::uint64_t station_leaves() const { return station_leaves_; }
  [[nodiscard]] std::uint64_t station_joins() const { return station_joins_; }
  [[nodiscard]] std::uint64_t churn_drops() const { return churn_drops_; }
  [[nodiscard]] std::uint64_t noise_bursts() const { return noise_bursts_; }

  /// Re-convergence times recorded after rejoins, seconds.
  [[nodiscard]] const RunningStats& recovery_s() const { return recovery_s_; }

  /// Fraction of end-to-end packets delivered, of those offered.
  [[nodiscard]] double delivery_ratio() const;

  /// End-to-end delay distribution of delivered packets, seconds.
  [[nodiscard]] const RunningStats& delay() const { return delay_; }

  /// Hop-count distribution of delivered packets.
  [[nodiscard]] const RunningStats& hops() const { return hops_; }

  /// Distribution of SINR margin (achieved minus required, dB) over
  /// successful hop receptions.
  [[nodiscard]] const RunningStats& sinr_margin_db() const {
    return sinr_margin_db_;
  }

  /// Transmit airtime accumulated by `station`, seconds.
  [[nodiscard]] double airtime_s(StationId station) const;

  /// Transmit duty cycle of `station` over a run of `duration_s`.
  [[nodiscard]] double duty_cycle(StationId station, double duration_s) const;

  /// Mean transmit duty cycle across all stations.
  [[nodiscard]] double mean_duty_cycle(double duration_s) const;

 private:
  std::uint64_t offered_ = 0;
  std::uint64_t hop_attempts_ = 0;
  std::uint64_t hop_successes_ = 0;
  std::uint64_t mac_drops_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t broadcasts_sent_ = 0;
  std::uint64_t broadcast_receptions_ = 0;
  std::uint64_t station_leaves_ = 0;
  std::uint64_t station_joins_ = 0;
  std::uint64_t churn_drops_ = 0;
  std::uint64_t noise_bursts_ = 0;
  std::array<std::uint64_t, 5> losses_{};  // indexed by LossType
  RunningStats delay_;
  RunningStats hops_;
  RunningStats sinr_margin_db_;
  RunningStats recovery_s_;
  std::vector<double> airtime_s_;
};

}  // namespace drn::sim
