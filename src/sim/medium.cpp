#include "sim/medium.hpp"

#include <algorithm>
#include <utility>

#include "radio/units.hpp"

namespace drn::sim {

RadioMedium::RadioMedium(std::unique_ptr<radio::InterferenceEngine> engine,
                         const SimulatorConfig& config, EventQueue& queue,
                         Metrics& metrics,
                         const std::vector<SimObserver*>& observers,
                         Client& client)
    : engine_(std::move(engine)),
      config_(config),
      queue_(queue),
      metrics_(metrics),
      observers_(observers),
      client_(client),
      transmitting_count_(engine_->station_count(), 0),
      reception_count_(engine_->station_count(), 0),
      addressed_count_(engine_->station_count(), 0),
      tx_busy_until_s_(engine_->station_count(), 0.0),
      open_rx_count_(engine_->station_count(), 0) {
  DRN_EXPECTS(config_.thermal_noise_w > 0.0);  // facade finalizes first
  engine_->set_thermal_noise(radio::Watts{config_.thermal_noise_w});
}

// ---------------------------------------------------------------------------
// Transmission booking

void RadioMedium::schedule_data(StationId from, const Packet& pkt,
                                StationId to, double power_w, double start_s,
                                double rate_bps, double now_s) {
  DRN_EXPECTS(to < station_count() || to == kBroadcast);
  DRN_EXPECTS(to != from);
  DRN_EXPECTS(power_w > 0.0);
  DRN_EXPECTS(rate_bps >= 0.0);
  DRN_EXPECTS(start_s >= now_s);
  DRN_EXPECTS(pkt.size_bits > 0.0);
  // One transmitter per station: transmissions must be serialized by the
  // MAC. A sub-nanosecond shortfall is floating-point noise from computing
  // the same instant two ways (e.g. 0.01*i vs a running sum of 0.01) and is
  // clamped rather than rejected.
  if (start_s < tx_busy_until_s_[from] &&
      tx_busy_until_s_[from] - start_s < 1e-9) {
    start_s = tx_busy_until_s_[from];
  }
  DRN_EXPECTS(start_s >= tx_busy_until_s_[from]);

  ActiveTx tx;
  tx.packet = pkt;
  tx.from = from;
  tx.to = to;
  tx.power_w = power_w;
  tx.rate_bps =
      rate_bps > 0.0 ? rate_bps : config_.criterion.data_rate_bps();
  tx.start_s = start_s;
  tx.end_s = start_s + pkt.size_bits / tx.rate_bps;
  tx.required_snr =
      (config_.criterion.margin().to_linear() *
       radio::snr_for_rate_fraction(tx.rate_bps /
                                    config_.criterion.bandwidth_hz()))
          .value();
  tx_busy_until_s_[from] = tx.end_s;

  const std::uint64_t id = next_tx_id_++;
  ActiveTx& slot = scheduled_.insert(id, tx);
  schedule_tx_events(id, slot);
}

void RadioMedium::schedule_noise(StationId from, double power_w,
                                 double start_s, double duration_s,
                                 double now_s) {
  DRN_EXPECTS(power_w > 0.0);
  DRN_EXPECTS(duration_s > 0.0);
  DRN_EXPECTS(start_s >= now_s);
  // Noise uses the one transmitter too; same serialization (and the same
  // sub-nanosecond clamp) as data transmissions.
  if (start_s < tx_busy_until_s_[from] &&
      tx_busy_until_s_[from] - start_s < 1e-9) {
    start_s = tx_busy_until_s_[from];
  }
  DRN_EXPECTS(start_s >= tx_busy_until_s_[from]);

  ActiveTx tx;
  tx.from = from;
  tx.to = kNoStation;  // addressed to nobody: pure interference
  tx.power_w = power_w;
  tx.rate_bps = 0.0;
  tx.start_s = start_s;
  tx.end_s = start_s + duration_s;
  tx.required_snr = 0.0;
  tx_busy_until_s_[from] = tx.end_s;

  const std::uint64_t id = next_tx_id_++;
  ActiveTx& slot = scheduled_.insert(id, tx);
  schedule_tx_events(id, slot);
}

void RadioMedium::schedule_tx_events(std::uint64_t tx_id, ActiveTx& tx) {
  Event start;
  start.time_s = tx.start_s;
  start.kind = EventKind::kTransmitStart;
  start.tx_id = tx_id;
  tx.start_ev = queue_.push(start);

  Event end;
  end.time_s = tx.end_s;
  end.kind = EventKind::kTransmitEnd;
  end.tx_id = tx_id;
  tx.end_ev = queue_.push(end);
}

// ---------------------------------------------------------------------------
// Physics

LossType RadioMedium::classify(const ActiveTx& interferer, StationId rx) {
  if (interferer.from == rx) return LossType::kType3;
  if (interferer.to == rx) return LossType::kType2;
  return LossType::kType1;
}

void RadioMedium::fail_reception(Reception& r, const ActiveTx& cause) {
  if (r.failure == LossType::kNone) r.failure = classify(cause, r.rx);
}

double RadioMedium::effective_sinr(const Reception& r) const {
  const double interference = engine_->interference(r.handle).value();
  if (config_.multiuser_subtract_k == 0 || r.contributions.empty())
    return r.signal_w / interference;
  // Subtract the k strongest interfering contributions (idealised multiuser
  // detection: the receiver reconstructs and cancels them).
  const double cancelled =
      r.contributions
          .sum_top(static_cast<std::size_t>(config_.multiuser_subtract_k))
          .value();
  const double residual =
      std::max(config_.thermal_noise_w, interference - cancelled);
  return r.signal_w / residual;
}

void RadioMedium::note_interference_change(Reception& r,
                                           const ActiveTx& cause) {
  const double sinr = effective_sinr(r);
  r.min_sinr = std::min(r.min_sinr, sinr);
  if (r.failure == LossType::kNone && sinr < r.required_snr)
    fail_reception(r, cause);
}

void RadioMedium::open_reception(std::uint64_t tx_id, const ActiveTx& tx,
                                 StationId rx,
                                 std::vector<Reception>& records) {
  Reception r;
  r.rx = rx;
  r.signal_w = engine_->gain(rx, tx.from) * tx.power_w;
  r.required_snr = tx.required_snr;
  radio::InterferenceEngine::ContributionVisitor on_contribution;
  if (config_.multiuser_subtract_k > 0) {
    on_contribution = [&r](std::uint64_t id, radio::Watts watts) {
      r.contributions.add(id, watts);
    };
  }
  r.handle = engine_->open_reception(tx_id, rx, on_contribution);

  if (!client_.station_up(rx)) {
    // The receiver is down (churn): the record still exists — conservation
    // and the engine's interference accounting need it — but nothing can be
    // decoded at a dead station, and no despreading channel is consumed.
    r.failure = LossType::kAborted;
  } else if (station_transmitting(rx)) {
    r.failure = LossType::kType3;
  } else if (reception_count_[rx] >= config_.despreading_channels) {
    r.failure = LossType::kType2;  // all despreading channels busy
  } else {
    r.occupies_channel = true;
    ++reception_count_[rx];
  }

  r.min_sinr = effective_sinr(r);
  if (r.failure == LossType::kNone && r.min_sinr < r.required_snr) {
    // Below threshold from the first instant: attribute the loss to an
    // already-active transmission addressed to the same receiver (Type 2) if
    // one exists, otherwise to third-party interference / sheer lack of
    // signal (Type 1). addressed_count_ mirrors the active set, so the test
    // is O(1); subtract this transmission itself when it is the one
    // addressed to rx.
    const int others = addressed_count_[rx] - (tx.to == rx ? 1 : 0);
    r.failure = others > 0 ? LossType::kType2 : LossType::kType1;
  }

  // The vector was reserved by the caller, so push_back never reallocates
  // and the back-pointer registered here stays valid until close.
  DRN_EXPECTS(records.size() < records.capacity());
  records.push_back(std::move(r));
  ++open_rx_count_[rx];
  const radio::ReceptionHandle h = records.back().handle;
  if (by_handle_.size() <= h) by_handle_.resize(h + 1, nullptr);
  by_handle_[h] = &records.back();
}

void RadioMedium::handle_transmit_start(std::uint64_t tx_id) {
  const ActiveTx& tx = active_.insert(tx_id, scheduled_.extract(tx_id));
  const bool noise = tx.to == kNoStation;
  if (tx.to < station_count()) ++addressed_count_[tx.to];

  metrics_.record_airtime(tx.from, tx.end_s - tx.start_s);
  if (noise) {
    metrics_.record_noise_burst();
  } else if (tx.to == kBroadcast) {
    metrics_.record_broadcast();
  } else {
    metrics_.record_hop_attempt();
  }
  ++transmitting_count_[tx.from];

  if (!observers_.empty()) {
    TxEvent ev;
    ev.tx_id = tx_id;
    ev.from = tx.from;
    ev.to = tx.to;
    ev.power_w = tx.power_w;
    ev.start_s = tx.start_s;
    ev.end_s = tx.end_s;
    ev.rate_bps = tx.rate_bps;
    ev.packet = tx.packet.id;
    for (SimObserver* o : observers_) o->on_transmit_start(ev);
  }

  const bool track = config_.multiuser_subtract_k > 0;

  // The new signal raises the interference of every in-flight reception it
  // reaches and kills any reception in progress at the (now radiating)
  // sender itself; the engine walks them and notifies us per reception.
  engine_->transmit_started(
      tx_id, tx.from, radio::Watts{tx.power_w},
      [this, &tx](radio::ReceptionHandle h) {
        fail_reception(reception_at(h), tx);  // Type 3: own transmitter up
      },
      [this, &tx, tx_id, track](radio::ReceptionHandle h, radio::Watts watts) {
        Reception& r = reception_at(h);
        if (track) r.contributions.add(tx_id, watts);
        note_interference_change(r, tx);
      });

  // A noise burst carries nothing: it interferes (above) but opens no
  // reception.
  if (noise) return;

  // Open the reception record(s).
  auto& records = receptions_[tx_id];
  if (tx.to == kBroadcast) {
    records.reserve(station_count() - 1);
    for (StationId rx = 0; rx < station_count(); ++rx) {
      if (rx == tx.from) continue;
      open_reception(tx_id, tx, rx, records);
    }
  } else {
    records.reserve(1);
    open_reception(tx_id, tx, tx.to, records);
  }
}

void RadioMedium::handle_transmit_end(std::uint64_t tx_id) {
  const ActiveTx tx = active_.extract(tx_id);
  --transmitting_count_[tx.from];
  if (tx.to < station_count()) --addressed_count_[tx.to];

  // The signal leaves the air: the engine lowers everyone else's
  // interference (receptions at the sender's own station never had this
  // contribution added — they die via Type 3 — and the engine skips them
  // symmetrically). Interference only drops here, so min_sinr cannot move;
  // the notification is only needed to retire tracked contributions.
  radio::InterferenceEngine::AffectedVisitor on_affected;
  if (config_.multiuser_subtract_k > 0) {
    on_affected = [this, tx_id](radio::ReceptionHandle h,
                                radio::Watts /*watts*/) {
      reception_at(h).contributions.erase(tx_id);
    };
  }
  engine_->transmit_ended(tx_id, on_affected);

  if (tx.to == kNoStation) {
    // Noise burst: nothing was receivable; just tell the emitter.
    client_.on_transmit_complete(tx.from, tx.packet, tx.to, false);
    return;
  }

  auto rnode = receptions_.extract(tx_id);
  DRN_EXPECTS(!rnode.empty());
  bool any_delivered = false;
  for (Reception& r : rnode.mapped()) {
    engine_->close_reception(r.handle);
    by_handle_[r.handle] = nullptr;
    if (r.occupies_channel) --reception_count_[r.rx];
    --open_rx_count_[r.rx];
    const bool delivered = r.failure == LossType::kNone;
    any_delivered |= delivered;

    if (!observers_.empty()) {
      RxEvent ev;
      ev.tx_id = tx_id;
      ev.rx = r.rx;
      ev.delivered = delivered;
      ev.loss = r.failure;
      ev.min_sinr = r.min_sinr;
      ev.required_snr = r.required_snr;
      ev.signal_w = r.signal_w;
      for (SimObserver* o : observers_) o->on_reception_complete(ev);
    }

    if (tx.to == kBroadcast) {
      if (delivered) {
        metrics_.record_broadcast_reception();
        client_.on_decoded_broadcast(tx.packet, tx.from, r.rx, r.signal_w);
      }
      continue;
    }

    if (delivered) {
      metrics_.record_hop_success(
          radio::to_db(r.min_sinr / r.required_snr));
      client_.on_decoded_unicast(tx.packet, r.rx);
    } else {
      metrics_.record_hop_loss(r.failure);
    }
  }

  client_.on_transmit_complete(tx.from, tx.packet, tx.to, any_delivered);
}

// ---------------------------------------------------------------------------
// Teardown support (station churn)

void RadioMedium::abort_transmission(std::uint64_t tx_id, double now_s) {
  const ActiveTx tx = active_.extract(tx_id);
  --transmitting_count_[tx.from];
  if (tx.to < station_count()) --addressed_count_[tx.to];
  // Airtime was booked for the full planned duration at start; give back the
  // part that never aired.
  metrics_.trim_airtime(tx.from, tx.end_s - now_s);
  const bool was_pending = queue_.cancel(tx.end_ev);
  DRN_EXPECTS(was_pending);  // the tx was in flight, so its end lay ahead

  // Observers first (the auditor truncates its record of this transmission
  // to now before the aborted RxEvents below arrive).
  if (!observers_.empty()) {
    TxEvent ev;
    ev.tx_id = tx_id;
    ev.from = tx.from;
    ev.to = tx.to;
    ev.power_w = tx.power_w;
    ev.start_s = tx.start_s;
    ev.end_s = tx.end_s;
    ev.rate_bps = tx.rate_bps;
    ev.packet = tx.packet.id;
    for (SimObserver* o : observers_) o->on_transmit_aborted(ev, now_s);
  }

  // The signal leaves the air early; interference drops exactly as at a
  // normal end, through the same engine path (no ad-hoc subtraction).
  radio::InterferenceEngine::AffectedVisitor on_affected;
  if (config_.multiuser_subtract_k > 0) {
    on_affected = [this, tx_id](radio::ReceptionHandle h,
                                radio::Watts /*watts*/) {
      reception_at(h).contributions.erase(tx_id);
    };
  }
  engine_->transmit_ended(tx_id, on_affected);

  if (tx.to == kNoStation) return;  // noise: no reception records

  auto rnode = receptions_.extract(tx_id);
  DRN_EXPECTS(!rnode.empty());
  for (Reception& r : rnode.mapped()) {
    engine_->close_reception(r.handle);
    by_handle_[r.handle] = nullptr;
    if (r.occupies_channel) --reception_count_[r.rx];
    --open_rx_count_[r.rx];
    // A truncated packet is undecodable regardless of its SINR so far.
    if (r.failure == LossType::kNone) r.failure = LossType::kAborted;

    if (!observers_.empty()) {
      RxEvent ev;
      ev.tx_id = tx_id;
      ev.rx = r.rx;
      ev.delivered = false;
      ev.loss = r.failure;
      ev.min_sinr = r.min_sinr;
      ev.required_snr = r.required_snr;
      ev.signal_w = r.signal_w;
      for (SimObserver* o : observers_) o->on_reception_complete(ev);
    }

    if (tx.to != kBroadcast) metrics_.record_hop_loss(r.failure);
  }
  // No completion upcall: the sender's MAC is being torn down right now.
}

void RadioMedium::cancel_scheduled_from(StationId station) {
  // Scheduled-but-not-started transmissions from the station never happen:
  // both their queue entries are cancelled on the spot.
  scheduled_.erase_if([this, station](std::uint64_t /*id*/, ActiveTx& tx) {
    if (tx.from != station) return false;
    queue_.cancel(tx.start_ev);
    queue_.cancel(tx.end_ev);
    return true;
  });
}

void RadioMedium::abort_active_from(StationId station, double now_s) {
  // Transmissions already on the air are cut short, in ascending-id order.
  std::vector<std::uint64_t> airborne;
  for (const auto& e : active_)
    if (e.tx.from == station) airborne.push_back(e.id);
  for (const std::uint64_t id : airborne) abort_transmission(id, now_s);
}

void RadioMedium::abort_receptions_at(StationId station) {
  // Receptions in progress at the station die with it. The records stay
  // open (the engine keeps accounting the interference they see, and
  // conservation still expects their outcomes at the transmissions' ends)
  // but can no longer deliver — even if the station rejoins first.
  for (auto& [id, records] : receptions_) {
    (void)id;
    for (Reception& r : records) {
      if (r.rx == station && r.failure == LossType::kNone)
        r.failure = LossType::kAborted;
    }
  }
}

}  // namespace drn::sim
