// The physical layer of the simulator: RadioMedium owns everything that
// happens on the air (Sections 3.3-3.4 of the paper).
//
//   * transmission records: scheduled (booked but not yet radiating) and
//     active (in flight), in flat id-sorted sets;
//   * reception records: despreading-channel admission (Section 5), the
//     running worst-SINR test against Eq. 3-6 thresholds, the Section 5
//     loss taxonomy (Type 1/2/3), and idealised multiuser subtraction
//     (footnote 2) through a bounded ContributionSet;
//   * all interaction with the pluggable InterferenceEngine
//     (radio/interference_engine): start/end notifications, per-reception
//     interference queries, mobility-driven gain recomputation.
//
// The medium knows nothing about MACs, routing or station lifecycle — by
// design and by lint (drn_lint's layer-boundary rule forbids medium.* from
// including sim/mac.hpp). Outcomes that concern the layers above flow
// through the narrow RadioMedium::Client interface, which the Simulator
// facade implements by dispatching to StationHost (MAC hooks) and
// NetworkLayer (forwarding): decode outcomes and transmit completions go up;
// nothing above the medium can touch interference state directly.
//
// Everything here is a pure re-homing of the historical Simulator physics:
// engine calls, metrics calls and observer notifications run in exactly the
// order the monolithic class produced, so event-order golden digests and
// bench tables are byte-identical across the split.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/expects.hpp"
#include "common/types.hpp"
#include "geo/vec2.hpp"
#include "radio/interference_engine.hpp"
#include "radio/reception.hpp"
#include "sim/contribution_set.hpp"
#include "sim/event_handle.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"
#include "sim/observer.hpp"
#include "sim/packet.hpp"

namespace drn::sim {

struct SimulatorConfig {
  /// The fixed design rate / bandwidth / margin shared by all stations.
  radio::ReceptionCriterion criterion;
  /// Thermal noise floor at every receiver, watts. Negative = derive kTB
  /// from the criterion's bandwidth.
  double thermal_noise_w = -1.0;
  /// Parallel despreading channels per receiver (Section 5: "GPS receivers
  /// often have six or twelve"; routing keeps direct neighbours <= 8).
  int despreading_channels = 8;
  /// Multiuser detection: subtract up to this many strongest interfering
  /// contributions before the SINR test (0 = off, the paper's base model).
  int multiuser_subtract_k = 0;
  /// Master seed for the per-station MAC random streams.
  std::uint64_t seed = 1;
  /// Interference accounting engine used by the matrix constructor (the
  /// engine constructor brings its own). kNearFar needs geometry the matrix
  /// does not carry, so it is only reachable via the engine constructor.
  radio::InterferenceEngineKind engine =
      radio::InterferenceEngineKind::kCompensated;
};

/// The channel: spread-spectrum physics, interference accounting and the
/// reception admission/outcome rules, behind a MAC-free interface.
class RadioMedium {
 public:
  /// What the layers above must provide so decode outcomes can leave the
  /// medium. Implemented by the Simulator facade, which routes station_up to
  /// StationHost, decoded packets to NetworkLayer / the receiving MAC, and
  /// transmit completions to the sending MAC. Calls arrive exactly where the
  /// monolithic simulator invoked the corresponding hook, so layering does
  /// not perturb event order.
  class Client {
   public:
    virtual ~Client() = default;
    /// Whether `station` is up (a reception at a downed station still
    /// occupies engine state but can never decode).
    [[nodiscard]] virtual bool station_up(StationId station) const = 0;
    /// A unicast reception decoded cleanly at `rx`; the network layer takes
    /// over (end-to-end delivery or forwarding).
    virtual void on_decoded_unicast(const Packet& packet, StationId rx) = 0;
    /// A broadcast reception decoded cleanly at `rx`.
    virtual void on_decoded_broadcast(const Packet& packet, StationId from,
                                      StationId rx, double signal_w) = 0;
    /// A transmission ran to its planned end (never called for aborts);
    /// `any_delivered` reports whether any addressee decoded it.
    virtual void on_transmit_complete(StationId from, const Packet& packet,
                                      StationId to, bool any_delivered) = 0;
  };

  /// `config` must already be finalized (thermal noise derived); the medium
  /// keeps references to the facade-owned config, queue, metrics and
  /// observer list, and installs the thermal floor into `engine`.
  RadioMedium(std::unique_ptr<radio::InterferenceEngine> engine,
              const SimulatorConfig& config, EventQueue& queue,
              Metrics& metrics, const std::vector<SimObserver*>& observers,
              Client& client);

  RadioMedium(const RadioMedium&) = delete;
  RadioMedium& operator=(const RadioMedium&) = delete;

  // -- transmission booking (MacContext transmit paths) ---------------------

  /// Books a data transmission on the air from `start_s` (the transmit()
  /// service minus the context binding: `from` is the bound station).
  void schedule_data(StationId from, const Packet& pkt, StationId to,
                     double power_w, double start_s, double rate_bps,
                     double now_s);

  /// Books a pure noise burst (interference without a packet).
  void schedule_noise(StationId from, double power_w, double start_s,
                      double duration_s, double now_s);

  // -- event handlers (driven by the facade's event loop) -------------------

  void handle_transmit_start(std::uint64_t tx_id);
  void handle_transmit_end(std::uint64_t tx_id);

  // -- teardown support (station churn) -------------------------------------

  /// Cancels every scheduled-but-not-started transmission from `station`
  /// (both queue entries die on the spot).
  void cancel_scheduled_from(StationId station);

  /// Cuts short every transmission `station` has on the air: engine removal,
  /// kAborted reception outcomes, airtime trim, observer notification. Does
  /// NOT call back into any MAC (the sender is being torn down).
  void abort_active_from(StationId station, double now_s);

  /// Marks every still-pending reception record AT `station` as aborted: the
  /// records stay open (conservation and the engine's interference sums need
  /// them) but can no longer deliver, even if the station rejoins first.
  void abort_receptions_at(StationId station);

  /// Releases the station's transmitter serialization clamp to `now_s` (its
  /// booked future airtime was cancelled or aborted).
  void release_transmitter(StationId station, double now_s) {
    DRN_EXPECTS(station < tx_busy_until_s_.size());
    tx_busy_until_s_[station] = now_s;
  }

  // -- queries --------------------------------------------------------------

  [[nodiscard]] std::size_t station_count() const {
    return engine_->station_count();
  }
  [[nodiscard]] bool station_transmitting(StationId s) const {
    return transmitting_count_[s] > 0;
  }
  /// RF-idle rule for mobility: no radiating transmitter and no open
  /// reception record, so no in-flight engine state references the
  /// station's current gains.
  [[nodiscard]] bool rf_idle(StationId s) const {
    return transmitting_count_[s] == 0 && open_rx_count_[s] == 0;
  }
  /// Open reception records at `s` (all outcomes, not just pending).
  [[nodiscard]] int open_receptions_at(StationId s) const {
    return open_rx_count_[s];
  }
  /// Transmissions currently in flight.
  [[nodiscard]] std::size_t active_count() const { return active_.size(); }
  [[nodiscard]] const radio::InterferenceEngine& engine() const {
    return *engine_;
  }
  /// Power gain from transmitter `tx` to receiver `rx`.
  [[nodiscard]] double gain(StationId rx, StationId tx) const {
    return engine_->gain(rx, tx);
  }
  /// Total power impinging on `s` right now (carrier sense).
  [[nodiscard]] radio::Watts power_at(StationId s) const {
    return engine_->power_at(s);
  }

  // -- mobility (dynamics) --------------------------------------------------

  /// Relocates `s`. Precondition: rf_idle(s) — enforced by the facade's
  /// try_move_station, which refuses the move otherwise.
  void station_moved(StationId s, geo::Vec2 position) {
    engine_->station_moved(s, position);
  }
  void enable_mobility(geo::Placement placement,
                       std::shared_ptr<const radio::PropagationModel> model,
                       radio::LinearGain self_gain) {
    engine_->enable_mobility(std::move(placement), std::move(model),
                             self_gain);
  }

 private:
  struct ActiveTx {
    Packet packet;
    StationId from = kNoStation;
    StationId to = kNoStation;  // station id, kBroadcast, or kNoStation
                                // (= a pure noise burst: no receptions)
    double power_w = 0.0;
    double start_s = 0.0;
    double end_s = 0.0;
    double rate_bps = 0.0;
    double required_snr = 0.0;  // Eq. 4 threshold at this rate
    /// Queue entries for this transmission, cancellable while pending: both
    /// while scheduled, the end alone once in flight (aborts cut it short).
    EventHandle start_ev;
    EventHandle end_ev;
  };

  /// Flat id-sorted set of transmission records — the same container
  /// discipline the interference engines' ActiveSet uses. Iteration is one
  /// contiguous ascending-id scan (the exact order the previous std::map
  /// produced, so every downstream draw stays bit-identical); tx ids are
  /// assigned monotonically, so insert is an amortized push_back and erase a
  /// short memmove over the handful of concurrent transmissions.
  class TxSet {
   public:
    struct Entry {
      std::uint64_t id;
      ActiveTx tx;
    };

    ActiveTx& insert(std::uint64_t id, const ActiveTx& tx) {
      const auto it = lower_bound(id);
      DRN_EXPECTS(it == entries_.end() || it->id != id);
      return entries_.insert(it, Entry{id, tx})->tx;
    }

    ActiveTx extract(std::uint64_t id) {
      const auto it = lower_bound(id);
      DRN_EXPECTS(it != entries_.end() && it->id == id);
      const ActiveTx tx = it->tx;
      entries_.erase(it);
      return tx;
    }

    /// Removes entries matching `pred(id, tx)`, visiting in ascending-id
    /// order (side effects in the predicate observe the map-era order).
    template <typename Pred>
    void erase_if(Pred&& pred) {
      std::erase_if(entries_,
                    [&](Entry& e) { return pred(e.id, e.tx); });
    }

    [[nodiscard]] std::size_t size() const { return entries_.size(); }
    [[nodiscard]] auto begin() const { return entries_.begin(); }
    [[nodiscard]] auto end() const { return entries_.end(); }

   private:
    [[nodiscard]] std::vector<Entry>::iterator lower_bound(std::uint64_t id) {
      return std::lower_bound(
          entries_.begin(), entries_.end(), id,
          [](const Entry& e, std::uint64_t v) { return e.id < v; });
    }

    std::vector<Entry> entries_;
  };

  struct Reception {
    StationId rx = kNoStation;
    double signal_w = 0.0;
    /// Engine-side interference state for this reception (the engine's
    /// interference(handle) is thermal + all other active transmissions).
    radio::ReceptionHandle handle = radio::kInvalidReception;
    double min_sinr = 0.0;  // worst (effective) SINR seen so far
    double required_snr = 0.0;
    LossType failure = LossType::kNone;
    bool occupies_channel = false;  // holds one of rx's despreading channels
    /// Per-interferer contributions, kept only when multiuser detection is
    /// on (needed to subtract the strongest k).
    ContributionSet contributions;
  };

  /// Cuts short a transmission already on the air (its sender is being torn
  /// down): removes it from the engine now, closes its receptions with
  /// kAborted outcomes, and cancels its pending end event.
  void abort_transmission(std::uint64_t tx_id, double now_s);

  /// Books the start/end queue entries for a freshly scheduled transmission
  /// and stores their handles on the ActiveTx (shared tail of schedule_data
  /// and schedule_noise).
  void schedule_tx_events(std::uint64_t tx_id, ActiveTx& tx);

  /// Opens the reception record for `tx` at receiver `rx` (admission rules:
  /// not transmitting, free despreading channel, initial SINR) and registers
  /// its engine handle in by_handle_.
  void open_reception(std::uint64_t tx_id, const ActiveTx& tx, StationId rx,
                      std::vector<Reception>& records);

  /// Effective SINR of a reception after optional multiuser subtraction.
  [[nodiscard]] double effective_sinr(const Reception& r) const;

  /// Re-tests a reception against its threshold after an interference
  /// change and folds the result into min_sinr.
  void note_interference_change(Reception& r, const ActiveTx& cause);

  /// Marks `r` failed (first failure wins) with the taxonomy type implied by
  /// the interfering transmission `cause`.
  void fail_reception(Reception& r, const ActiveTx& cause);

  /// Interference classification for a transmission relative to receiver rx.
  [[nodiscard]] static LossType classify(const ActiveTx& interferer,
                                         StationId rx);

  [[nodiscard]] Reception& reception_at(radio::ReceptionHandle h) {
    DRN_EXPECTS(h < by_handle_.size() && by_handle_[h] != nullptr);
    return *by_handle_[h];
  }

  std::unique_ptr<radio::InterferenceEngine> engine_;
  const SimulatorConfig& config_;  // facade-owned, finalized
  EventQueue& queue_;              // the shared event core
  Metrics& metrics_;
  const std::vector<SimObserver*>& observers_;  // facade-owned slots
  Client& client_;

  std::uint64_t next_tx_id_ = 1;
  // Pending (scheduled but not started) + in-flight transmissions.
  TxSet scheduled_;
  TxSet active_;
  // In-flight receptions, keyed by tx_id (one per receiver for broadcasts).
  // Vectors are reserved before records are appended so the back-pointers
  // in by_handle_ stay valid for a record's whole lifetime.
  std::map<std::uint64_t, std::vector<Reception>> receptions_;
  std::vector<Reception*> by_handle_;     // engine handle -> live record
  std::vector<int> transmitting_count_;   // per station
  std::vector<int> reception_count_;      // per station (despreading channels)
  // Per station: in-flight unicast transmissions addressed TO it. Lets the
  // below-threshold-at-open Type-2 attribution test run in O(1) instead of
  // walking every active transmission per opened reception (a broadcast at
  // large M opens thousands, most of them below threshold).
  std::vector<int> addressed_count_;
  std::vector<double> tx_busy_until_s_;   // per station: serialization check
  // Open reception records at each station (all outcomes, not just pending):
  // while > 0 the engine holds per-reception state referencing the station's
  // gains, so the station must not move.
  std::vector<int> open_rx_count_;
};

}  // namespace drn::sim
