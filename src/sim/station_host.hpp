// The station lifecycle layer: StationHost owns everything that lives AT a
// station rather than on the air — the MAC instances themselves, each
// station's deterministic random stream, its armed timers, its up/down
// activation state, and the context binding that tells a running MAC hook
// which station it is.
//
// This is the seam the related work needs (swap the MAC, hold the medium
// fixed): the host knows nothing about interference, receptions or routing.
// It dispatches hooks into MacProtocol implementations on behalf of the
// Simulator facade, which passes itself as the MacContext the hooks see.
//
// Timer discipline (unchanged from the monolithic Simulator): every armed
// timer's handle is remembered per station so churn teardown can cancel the
// lot outright instead of letting dead timers ride the queue to a
// drop-at-pop; fired/cancelled handles go stale harmlessly and are swept
// once the list grows. A per-station MAC generation, bumped at every
// teardown, keeps any timer that slips through from ever reaching a
// replacement MAC.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/expects.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/event_queue.hpp"
#include "sim/mac.hpp"
#include "sim/metrics.hpp"

namespace drn::sim {

/// Owns the per-station MACs, RNGs, timers and activation state, and binds
/// the station context for every MAC hook it dispatches.
class StationHost {
 public:
  /// `ctx` is the MacContext handed to every dispatched hook (the Simulator
  /// facade); only stored, never called during construction.
  StationHost(std::size_t station_count, std::uint64_t seed,
              EventQueue& queue, Metrics& metrics, MacContext& ctx);

  StationHost(const StationHost&) = delete;
  StationHost& operator=(const StationHost&) = delete;

  /// Installs the MAC driving `station`. Every station needs one before the
  /// first run (replacements mid-run go through teardown + activate).
  void set_mac(StationId station, std::unique_ptr<MacProtocol> mac);

  /// First-run hook: calls every active station's on_start exactly once.
  /// Later calls are no-ops.
  void start_if_needed();
  [[nodiscard]] bool started() const { return started_; }

  /// Runs a MAC hook with the context bound to `station` (the facade's
  /// self() reads the binding). Restores the previous binding on exit, so
  /// nested dispatch (a hook whose fallout reaches another station's MAC
  /// synchronously) unwinds correctly.
  template <typename F>
  void with_station(StationId station, F&& hook) {
    DRN_EXPECTS(macs_[station] != nullptr);
    const StationId saved = current_station_;
    current_station_ = station;
    hook(*macs_[station]);
    current_station_ = saved;
  }

  // -- event dispatch (facade event loop) -----------------------------------

  /// Delivers a popped timer event to its station's MAC — unless the station
  /// is down or the timer was armed by a previous MAC generation (teardown
  /// cancels timers outright; the generation guard is defense in depth).
  void deliver_timer(StationId station, std::uint64_t cookie,
                     std::uint32_t generation);

  /// Arms a timer for the currently bound station (the set_timer service
  /// minus the time check, which the facade performs against now).
  TimerHandle arm_timer(double at_s, std::uint64_t cookie);

  // -- MacContext backing ---------------------------------------------------

  /// The station whose hook is currently executing.
  [[nodiscard]] StationId self() const {
    DRN_EXPECTS(current_station_ != kNoStation);
    return current_station_;
  }
  /// The bound station's deterministic random stream.
  [[nodiscard]] Rng& rng() { return rngs_[self()]; }
  /// The MacContext every dispatched hook sees (the Simulator facade) — for
  /// layers that dispatch hooks themselves via with_station.
  [[nodiscard]] MacContext& context() { return ctx_; }

  // -- lifecycle (dynamics churn) -------------------------------------------

  [[nodiscard]] bool station_active(StationId station) const {
    DRN_EXPECTS(station < active_station_.size());
    return active_station_[station] != 0;
  }

  /// Tears down `station`'s MAC-side state: cancels its pending timers,
  /// drops the queue that dies with the MAC (returned; also recorded as
  /// churn drops), destroys the MAC, marks the station down and bumps its
  /// generation. RF-side teardown (aborting transmissions/receptions) is the
  /// medium's job and must happen BEFORE this (the MAC must not be consulted
  /// once destroyed).
  std::size_t teardown(StationId station);

  /// Brings a downed `station` back up with a fresh MAC; if the simulation
  /// has started, the MAC's on_start runs immediately.
  void activate(StationId station, std::unique_ptr<MacProtocol> mac);

  /// Hands a clock-rate change to `station`'s MAC (must be active).
  void notify_clock_rate(StationId station, double delta_ppm);

  [[nodiscard]] std::size_t station_count() const { return macs_.size(); }
  [[nodiscard]] bool has_mac(StationId station) const {
    return macs_[station] != nullptr;
  }

 private:
  EventQueue& queue_;  // the shared event core
  Metrics& metrics_;
  MacContext& ctx_;  // the facade; passed to every dispatched hook

  std::vector<std::unique_ptr<MacProtocol>> macs_;
  std::vector<Rng> rngs_;
  bool started_ = false;

  // Handles of timers armed by each station's current MAC, so teardown can
  // cancel them outright instead of letting them ride the queue to a
  // drop-at-pop. Fired/cancelled handles go stale harmlessly; the list is
  // pruned of them when it grows. Registered in arm_timer.
  std::vector<std::vector<EventHandle>> station_timers_;

  std::vector<char> active_station_;  // per station: 1 = up
  // Bumped on every teardown so a timer armed by a dead MAC — already
  // cancelled via station_timers_; the generation is defense in depth —
  // can never be delivered to its replacement.
  std::vector<std::uint32_t> mac_generation_;

  // Context binding for the MAC hook currently executing.
  StationId current_station_ = kNoStation;
};

}  // namespace drn::sim
