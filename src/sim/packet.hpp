// The unit of traffic.
//
// The paper's scheme uses small fixed-size packets (one quarter of a slot
// time, Section 7.2); baselines may use any size. A Packet records enough to
// measure end-to-end delay and hop counts; payload content is never modelled.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace drn::sim {

/// What a frame is for. The physical layer does not care; MAC protocols
/// with in-band control traffic (RTS/CTS, beacons) dispatch on it.
enum class PacketKind : std::uint8_t {
  kData = 0,
  kRts = 1,  // request to send (MACA baseline)
  kCts = 2,  // clear to send (MACA baseline)
};

struct Packet {
  PacketKind kind = PacketKind::kData;
  PacketId id = 0;
  StationId source = kNoStation;
  StationId destination = kNoStation;
  double size_bits = 0.0;
  /// Global time the packet entered the network at its source.
  double created_s = 0.0;
  /// Hops traversed so far (incremented by the simulator on each delivery).
  std::uint32_t hop_count = 0;
  /// Optional payload timestamp: the sender's LOCAL clock reading at
  /// transmission time. Discovery beacons carry it so receivers can collect
  /// clock samples (Section 7's rendezvous) over the air.
  double sender_local_s = 0.0;
  /// Optional payload field: the power this packet was radiated at, watts.
  /// Beacons carry it so a receiver can observe the path gain as
  /// signal_w / tx_power_w ("stations may observe the actual propagation",
  /// Section 3.5) — the basis for re-adopting a rejoined neighbour. 0 =
  /// not stamped.
  double tx_power_w = 0.0;
  /// Network-allocation vector for control frames (RTS/CTS): how long
  /// overhearing stations should defer, seconds.
  double nav_s = 0.0;
};

}  // namespace drn::sim
