#include "common/rng.hpp"

// The generators are header-only (common/rng.hpp); this translation unit
// anchors them into the sim library so dependants get a consistent home for
// the module.
