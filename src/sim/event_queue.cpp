#include "sim/event_queue.hpp"

#include "common/expects.hpp"

namespace drn::sim {

void EventQueue::push(Event e) { heap_.push(Entry{e, next_seq_++}); }

double EventQueue::next_time() const {
  DRN_EXPECTS(!heap_.empty());
  return heap_.top().event.time_s;
}

Event EventQueue::pop() {
  DRN_EXPECTS(!heap_.empty());
  Event e = heap_.top().event;
  heap_.pop();
  return e;
}

}  // namespace drn::sim
