#include "sim/event_queue.hpp"

#include "common/expects.hpp"

namespace drn::sim {

namespace {

// 4-ary layout: shallower than binary (half the sift-down levels) while the
// four-child scan stays within one cache line of 24-byte items.
constexpr std::size_t kArity = 4;

constexpr std::size_t parent_of(std::size_t i) { return (i - 1) / kArity; }
constexpr std::size_t first_child_of(std::size_t i) { return kArity * i + 1; }

}  // namespace

void EventQueue::sift_up(std::size_t i) {
  const Item moving = heap_[i];
  while (i > 0) {
    const std::size_t p = parent_of(i);
    if (!earlier(moving, heap_[p])) break;
    heap_[i] = heap_[p];
    i = p;
  }
  heap_[i] = moving;
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const Item moving = heap_[i];
  for (;;) {
    const std::size_t first = first_child_of(i);
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = first + kArity < n ? first + kArity : n;
    for (std::size_t c = first + 1; c < last; ++c)
      if (earlier(heap_[c], heap_[best])) best = c;
    if (!earlier(heap_[best], moving)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = moving;
}

void EventQueue::remove_item(std::size_t i) {
  const std::size_t last = heap_.size() - 1;
  if (i != last) {
    heap_[i] = heap_[last];
    heap_.pop_back();
    // The replacement came from deeper in the tree, but across subtrees it
    // can order either way relative to i's parent: restore both directions.
    sift_down(i);
    if (i > 0) sift_up(i);
  } else {
    heap_.pop_back();
  }
}

void EventQueue::kill_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.live = false;
  ++s.generation;  // every handle to this entry is stale from here on
  --live_;
}

void EventQueue::recycle_slot(std::uint32_t slot) {
  slots_[slot].next_free = free_head_;
  free_head_ = slot;
}

void EventQueue::prune_top() {
  while (!heap_.empty() && !slots_[heap_[0].slot].live) {
    recycle_slot(heap_[0].slot);
    --dead_;
    remove_item(0);
  }
}

void EventQueue::compact() {
  std::size_t w = 0;
  for (const Item& item : heap_) {
    if (slots_[item.slot].live) {
      heap_[w++] = item;
    } else {
      recycle_slot(item.slot);
    }
  }
  heap_.resize(w);
  if (w > 1) {
    for (std::size_t i = parent_of(w - 1) + 1; i-- > 0;) sift_down(i);
  }
  dead_ = 0;
  ++compactions_;
}

EventHandle EventQueue::push(Event e) {
  std::uint32_t slot;
  if (free_head_ != EventHandle::kInvalidSlot) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    DRN_EXPECTS(slots_.size() < EventHandle::kInvalidSlot);
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.event = e;
  s.live = true;
  ++live_;

  // The kind priority rides in the two bits above the sequence counter; at
  // 2^62 pushes the packing would wrap, far beyond any run's event count.
  const std::uint64_t seq = next_seq_++;
  DRN_EXPECTS(seq < (std::uint64_t{1} << 62));
  heap_.push_back(Item{
      e.time_s,
      (static_cast<std::uint64_t>(e.kind) << 62) | seq,
      slot,
  });
  sift_up(heap_.size() - 1);
  if (heap_.size() > peak_entries_) peak_entries_ = heap_.size();
  return EventHandle{slot, s.generation};
}

double EventQueue::next_time() const {
  DRN_EXPECTS(live_ > 0);
  // prune_top() keeps the top live whenever live_ > 0.
  return heap_[0].time_s;
}

Event EventQueue::pop() {
  DRN_EXPECTS(live_ > 0);
  const std::uint32_t slot = heap_[0].slot;
  const Event e = slots_[slot].event;
  kill_slot(slot);
  recycle_slot(slot);
  remove_item(0);
  prune_top();
  return e;
}

std::optional<Event> EventQueue::pop_if_before(double t_s) {
  if (live_ == 0 || heap_[0].time_s > t_s) return std::nullopt;
  return pop();
}

bool EventQueue::cancel(EventHandle h) {
  if (!pending(h)) return false;
  kill_slot(h.slot);
  ++dead_;
  if (!heap_.empty() && heap_[0].slot == h.slot) {
    prune_top();
  } else if (dead_ > live_) {
    compact();
  }
  return true;
}

std::size_t EventQueue::peak_bytes() const {
  return peak_entries_ * sizeof(Item) + slots_.size() * sizeof(Slot);
}

}  // namespace drn::sim
