#include "sim/network_layer.hpp"

#include <utility>

#include "common/expects.hpp"

namespace drn::sim {

namespace {

/// Default router: every destination is assumed to be in direct reach.
StationId direct_router(StationId /*at*/, StationId dst) { return dst; }

}  // namespace

NetworkLayer::NetworkLayer(StationHost& host, Metrics& metrics)
    : host_(host), metrics_(metrics), router_(direct_router) {}

void NetworkLayer::set_router(Router router) {
  DRN_EXPECTS(router != nullptr);
  router_ = std::move(router);
}

void NetworkLayer::admit(Packet packet, double now_s) {
  if (packet.id == 0) {
    packet.id = next_packet_id_++;
  } else if (packet.id >= next_packet_id_) {
    // Caller-chosen ids and generated ids share one namespace: advance the
    // generator past every injected id so later zero-id injections can never
    // collide with it and corrupt exactly-once accounting.
    next_packet_id_ = packet.id + 1;
  }
  packet.created_s = now_s;
  packet.hop_count = 0;
  metrics_.record_offered();
  enqueue_at(packet.source, packet);
}

void NetworkLayer::deliver(const Packet& packet, StationId at, double now_s) {
  Packet pkt = packet;
  ++pkt.hop_count;
  if (pkt.destination == at) {
    metrics_.record_delivery(now_s - pkt.created_s, pkt.hop_count);
    return;
  }
  enqueue_at(at, pkt);
}

void NetworkLayer::enqueue_at(StationId station, const Packet& packet) {
  if (!host_.station_active(station)) {
    metrics_.record_churn_drops(1);  // the station is down (churn)
    return;
  }
  const StationId next = router_(station, packet.destination);
  if (next == kNoStation || next == station) {
    metrics_.record_mac_drop();  // no route
    return;
  }
  DRN_EXPECTS(next < host_.station_count());
  host_.with_station(station, [this, &packet, next](MacProtocol& mac) {
    mac.on_enqueue(host_.context(), packet, next);
  });
}

}  // namespace drn::sim
