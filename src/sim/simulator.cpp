#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"
#include "radio/units.hpp"

namespace drn::sim {

namespace {

/// Default router: every destination is assumed to be in direct reach.
StationId direct_router(StationId /*at*/, StationId dst) { return dst; }

}  // namespace

Simulator::Simulator(radio::PropagationMatrix gains, SimulatorConfig config)
    : gains_(std::move(gains)),
      config_(config),
      metrics_(gains_.size()),
      macs_(gains_.size()),
      router_(direct_router),
      transmitting_count_(gains_.size(), 0),
      reception_count_(gains_.size(), 0),
      tx_busy_until_s_(gains_.size(), 0.0) {
  DRN_EXPECTS(config_.despreading_channels > 0);
  DRN_EXPECTS(config_.multiuser_subtract_k >= 0);
  if (config_.thermal_noise_w < 0.0) {
    config_.thermal_noise_w =
        radio::thermal_noise_watts(config_.criterion.bandwidth_hz());
  }
  Rng master(config_.seed);
  rngs_.reserve(gains_.size());
  for (std::size_t i = 0; i < gains_.size(); ++i)
    rngs_.push_back(master.split(i));
}

Simulator::~Simulator() = default;

void Simulator::set_mac(StationId station, std::unique_ptr<MacProtocol> mac) {
  DRN_EXPECTS(station < macs_.size());
  DRN_EXPECTS(mac != nullptr);
  DRN_EXPECTS(!started_);
  macs_[station] = std::move(mac);
}

void Simulator::set_router(Router router) {
  DRN_EXPECTS(router != nullptr);
  router_ = std::move(router);
}

void Simulator::add_observer(SimObserver* observer) {
  DRN_EXPECTS(observer != nullptr);
  observers_.push_back(observer);
}

void Simulator::inject(double time_s, Packet packet) {
  DRN_EXPECTS(time_s >= now_s_);
  DRN_EXPECTS(packet.source < gains_.size());
  DRN_EXPECTS(packet.destination < gains_.size());
  DRN_EXPECTS(packet.source != packet.destination);
  DRN_EXPECTS(packet.size_bits > 0.0);
  Event e;
  e.time_s = time_s;
  e.kind = EventKind::kInject;
  e.packet = packet;
  queue_.push(e);
}

template <typename F>
void Simulator::with_station(StationId station, F&& hook) {
  DRN_EXPECTS(macs_[station] != nullptr);
  const StationId saved = current_station_;
  current_station_ = station;
  hook(*macs_[station]);
  current_station_ = saved;
}

void Simulator::run_until(double t_end_s) {
  DRN_EXPECTS(t_end_s >= now_s_);
  if (!started_) {
    for (StationId s = 0; s < gains_.size(); ++s) {
      DRN_EXPECTS(macs_[s] != nullptr);  // every station needs a MAC
      with_station(s, [this](MacProtocol& mac) { mac.on_start(*this); });
    }
    started_ = true;
  }
  while (!queue_.empty() && queue_.next_time() <= t_end_s) {
    const Event e = queue_.pop();
    now_s_ = e.time_s;
    switch (e.kind) {
      case EventKind::kTransmitEnd:
        handle_transmit_end(e.tx_id);
        break;
      case EventKind::kTimer:
        with_station(e.station, [this, &e](MacProtocol& mac) {
          mac.on_timer(*this, e.cookie);
        });
        break;
      case EventKind::kInject:
        handle_inject(e.packet);
        break;
      case EventKind::kTransmitStart:
        handle_transmit_start(e.tx_id);
        break;
    }
  }
  now_s_ = std::max(now_s_, t_end_s);
}

// ---------------------------------------------------------------------------
// MacContext services

StationId Simulator::self() const {
  DRN_EXPECTS(current_station_ != kNoStation);
  return current_station_;
}

void Simulator::transmit(const Packet& pkt, StationId to, double power_w,
                         double start_s, double rate_bps) {
  const StationId from = self();
  DRN_EXPECTS(to < gains_.size() || to == kBroadcast);
  DRN_EXPECTS(to != from);
  DRN_EXPECTS(power_w > 0.0);
  DRN_EXPECTS(rate_bps >= 0.0);
  DRN_EXPECTS(start_s >= now_s_);
  DRN_EXPECTS(pkt.size_bits > 0.0);
  // One transmitter per station: transmissions must be serialized by the
  // MAC. A sub-nanosecond shortfall is floating-point noise from computing
  // the same instant two ways (e.g. 0.01*i vs a running sum of 0.01) and is
  // clamped rather than rejected.
  if (start_s < tx_busy_until_s_[from] &&
      tx_busy_until_s_[from] - start_s < 1e-9) {
    start_s = tx_busy_until_s_[from];
  }
  DRN_EXPECTS(start_s >= tx_busy_until_s_[from]);

  ActiveTx tx;
  tx.packet = pkt;
  tx.from = from;
  tx.to = to;
  tx.power_w = power_w;
  tx.rate_bps =
      rate_bps > 0.0 ? rate_bps : config_.criterion.data_rate_bps();
  tx.start_s = start_s;
  tx.end_s = start_s + pkt.size_bits / tx.rate_bps;
  tx.required_snr =
      radio::from_db(config_.criterion.margin_db()) *
      radio::snr_for_rate_fraction(tx.rate_bps /
                                   config_.criterion.bandwidth_hz());
  tx_busy_until_s_[from] = tx.end_s;

  const std::uint64_t id = next_tx_id_++;
  scheduled_.emplace(id, tx);

  Event start;
  start.time_s = start_s;
  start.kind = EventKind::kTransmitStart;
  start.tx_id = id;
  queue_.push(start);

  Event end;
  end.time_s = tx.end_s;
  end.kind = EventKind::kTransmitEnd;
  end.tx_id = id;
  queue_.push(end);
}

void Simulator::set_timer(double at_s, std::uint64_t cookie) {
  DRN_EXPECTS(at_s >= now_s_);
  Event e;
  e.time_s = at_s;
  e.kind = EventKind::kTimer;
  e.station = self();
  e.cookie = cookie;
  queue_.push(e);
}

bool Simulator::transmitting() const { return station_transmitting(self()); }

double Simulator::received_power_w() const {
  const StationId s = self();
  double power = config_.thermal_noise_w;
  for (const auto& [id, tx] : active_)
    power += gains_.gain(s, tx.from) * tx.power_w;
  return power;
}

double Simulator::gain_to(StationId other) const {
  DRN_EXPECTS(other < gains_.size());
  return gains_.gain(other, self());
}

void Simulator::drop(const Packet& pkt) {
  (void)pkt;
  metrics_.record_mac_drop();
}

Rng& Simulator::rng() { return rngs_[self()]; }

// ---------------------------------------------------------------------------
// Physics

LossType Simulator::classify(const ActiveTx& interferer, StationId rx) {
  if (interferer.from == rx) return LossType::kType3;
  if (interferer.to == rx) return LossType::kType2;
  return LossType::kType1;
}

void Simulator::fail_reception(Reception& r, const ActiveTx& cause) {
  if (r.failure == LossType::kNone) r.failure = classify(cause, r.rx);
}

double Simulator::effective_sinr(const Reception& r) const {
  if (config_.multiuser_subtract_k == 0 || r.contributions.empty())
    return r.signal_w / r.interference_w;
  // Subtract the k strongest interfering contributions (idealised multiuser
  // detection: the receiver reconstructs and cancels them).
  std::vector<double> top;
  top.reserve(r.contributions.size());
  for (const auto& [id, watts] : r.contributions) top.push_back(watts);
  const auto k = std::min<std::size_t>(
      static_cast<std::size_t>(config_.multiuser_subtract_k), top.size());
  std::partial_sort(top.begin(), top.begin() + static_cast<std::ptrdiff_t>(k),
                    top.end(), std::greater<>());
  double cancelled = 0.0;
  for (std::size_t i = 0; i < k; ++i) cancelled += top[i];
  const double residual =
      std::max(config_.thermal_noise_w, r.interference_w - cancelled);
  return r.signal_w / residual;
}

Simulator::Reception Simulator::open_reception(std::uint64_t tx_id,
                                               const ActiveTx& tx,
                                               StationId rx) {
  Reception r;
  r.rx = rx;
  r.signal_w = gains_.gain(rx, tx.from) * tx.power_w;
  r.required_snr = tx.required_snr;
  r.interference_w = config_.thermal_noise_w;
  const bool track = config_.multiuser_subtract_k > 0;
  for (const auto& [id, other] : active_) {
    // The receiver's own transmissions are never part of the SINR sum: they
    // kill the reception administratively (Type 3) and their contribution
    // is skipped symmetrically at start, open, and end.
    if (id == tx_id || other.from == rx) continue;
    const double watts = gains_.gain(rx, other.from) * other.power_w;
    r.interference_w += watts;
    if (track) r.contributions.emplace(id, watts);
  }

  if (station_transmitting(rx)) {
    r.failure = LossType::kType3;
  } else if (reception_count_[rx] >= config_.despreading_channels) {
    r.failure = LossType::kType2;  // all despreading channels busy
  } else {
    r.occupies_channel = true;
    ++reception_count_[rx];
  }

  r.min_sinr = effective_sinr(r);
  if (r.failure == LossType::kNone && r.min_sinr < r.required_snr) {
    // Below threshold from the first instant: attribute the loss to an
    // already-active transmission addressed to the same receiver (Type 2) if
    // one exists, otherwise to third-party interference / sheer lack of
    // signal (Type 1).
    r.failure = LossType::kType1;
    for (const auto& [id, other] : active_) {
      if (id != tx_id && other.to == rx) {
        r.failure = LossType::kType2;
        break;
      }
    }
  }
  return r;
}

void Simulator::handle_transmit_start(std::uint64_t tx_id) {
  auto node = scheduled_.extract(tx_id);
  DRN_EXPECTS(!node.empty());
  const ActiveTx& tx = active_.emplace(tx_id, node.mapped()).first->second;

  metrics_.record_airtime(tx.from, tx.end_s - tx.start_s);
  if (tx.to == kBroadcast) {
    metrics_.record_broadcast();
  } else {
    metrics_.record_hop_attempt();
  }
  ++transmitting_count_[tx.from];

  if (!observers_.empty()) {
    TxEvent ev;
    ev.tx_id = tx_id;
    ev.from = tx.from;
    ev.to = tx.to;
    ev.power_w = tx.power_w;
    ev.start_s = tx.start_s;
    ev.end_s = tx.end_s;
    ev.rate_bps = tx.rate_bps;
    ev.packet = tx.packet.id;
    for (SimObserver* o : observers_) o->on_transmit_start(ev);
  }

  const bool track = config_.multiuser_subtract_k > 0;

  // The new signal raises the interference of every in-flight reception and
  // kills any reception in progress at the (now radiating) sender itself.
  for (auto& [id, receptions] : receptions_) {
    for (Reception& r : receptions) {
      if (r.rx == tx.from) {
        fail_reception(r, tx);  // Type 3: receiver's own transmitter keyed up
        continue;
      }
      const double watts = gains_.gain(r.rx, tx.from) * tx.power_w;
      r.interference_w += watts;
      if (track) r.contributions.emplace(tx_id, watts);
      const double sinr = effective_sinr(r);
      r.min_sinr = std::min(r.min_sinr, sinr);
      if (r.failure == LossType::kNone && sinr < r.required_snr)
        fail_reception(r, tx);
    }
  }

  // Open the reception record(s).
  auto& records = receptions_[tx_id];
  if (tx.to == kBroadcast) {
    records.reserve(gains_.size() - 1);
    for (StationId rx = 0; rx < gains_.size(); ++rx) {
      if (rx == tx.from) continue;
      records.push_back(open_reception(tx_id, tx, rx));
    }
  } else {
    records.push_back(open_reception(tx_id, tx, tx.to));
  }
}

void Simulator::handle_transmit_end(std::uint64_t tx_id) {
  auto node = active_.extract(tx_id);
  DRN_EXPECTS(!node.empty());
  const ActiveTx tx = node.mapped();
  --transmitting_count_[tx.from];

  const bool track = config_.multiuser_subtract_k > 0;

  // The signal leaves the air: lower everyone else's interference. Mirror
  // the start-side bookkeeping exactly: receptions at the sender's own
  // station never had this contribution added (they die via Type 3), so it
  // must not be subtracted either.
  for (auto& [id, receptions] : receptions_) {
    if (id == tx_id) continue;
    for (Reception& r : receptions) {
      if (r.rx == tx.from) continue;
      r.interference_w = std::max(
          config_.thermal_noise_w,
          r.interference_w - gains_.gain(r.rx, tx.from) * tx.power_w);
      if (track) r.contributions.erase(tx_id);
    }
  }

  auto rnode = receptions_.extract(tx_id);
  DRN_EXPECTS(!rnode.empty());
  bool any_delivered = false;
  for (const Reception& r : rnode.mapped()) {
    if (r.occupies_channel) --reception_count_[r.rx];
    const bool delivered = r.failure == LossType::kNone;
    any_delivered |= delivered;

    if (!observers_.empty()) {
      RxEvent ev;
      ev.tx_id = tx_id;
      ev.rx = r.rx;
      ev.delivered = delivered;
      ev.loss = r.failure;
      ev.min_sinr = r.min_sinr;
      ev.required_snr = r.required_snr;
      ev.signal_w = r.signal_w;
      for (SimObserver* o : observers_) o->on_reception_complete(ev);
    }

    if (tx.to == kBroadcast) {
      if (delivered) {
        metrics_.record_broadcast_reception();
        with_station(r.rx, [this, &tx, &r](MacProtocol& mac) {
          mac.on_broadcast_received(*this, tx.packet, tx.from, r.signal_w);
        });
      }
      continue;
    }

    if (delivered) {
      metrics_.record_hop_success(
          radio::to_db(r.min_sinr / r.required_snr));
      deliver(tx.packet, r.rx);
    } else {
      metrics_.record_hop_loss(r.failure);
    }
  }

  with_station(tx.from, [this, &tx, any_delivered](MacProtocol& mac) {
    mac.on_transmit_end(*this, tx.packet, tx.to, any_delivered);
  });
}

void Simulator::deliver(const Packet& packet, StationId at) {
  Packet pkt = packet;
  ++pkt.hop_count;
  if (pkt.destination == at) {
    metrics_.record_delivery(now_s_ - pkt.created_s, pkt.hop_count);
    return;
  }
  enqueue_at(at, pkt);
}

void Simulator::enqueue_at(StationId station, const Packet& packet) {
  const StationId next = router_(station, packet.destination);
  if (next == kNoStation || next == station) {
    metrics_.record_mac_drop();  // no route
    return;
  }
  DRN_EXPECTS(next < gains_.size());
  with_station(station, [this, &packet, next](MacProtocol& mac) {
    mac.on_enqueue(*this, packet, next);
  });
}

void Simulator::handle_inject(const Packet& packet) {
  Packet pkt = packet;
  if (pkt.id == 0) pkt.id = next_packet_id_++;
  pkt.created_s = now_s_;
  pkt.hop_count = 0;
  metrics_.record_offered();
  enqueue_at(pkt.source, pkt);
}

}  // namespace drn::sim
