#include "sim/simulator.hpp"

#include <algorithm>

#include "common/expects.hpp"
#include "radio/units.hpp"

namespace drn::sim {

namespace {

std::unique_ptr<radio::InterferenceEngine> engine_from_matrix(
    radio::PropagationMatrix gains, radio::InterferenceEngineKind kind) {
  switch (kind) {
    case radio::InterferenceEngineKind::kDense:
      return radio::make_dense_engine(std::move(gains));
    case radio::InterferenceEngineKind::kCompensated:
      return radio::make_compensated_engine(std::move(gains));
    case radio::InterferenceEngineKind::kNearFar:
      break;  // needs station geometry; use the engine constructor
  }
  DRN_EXPECTS(kind != radio::InterferenceEngineKind::kNearFar);
  return nullptr;
}

std::size_t station_count_of(const radio::InterferenceEngine* engine) {
  DRN_EXPECTS(engine != nullptr);
  return engine->station_count();
}

/// Validates the config and derives the thermal floor if asked — before any
/// layer is built over it (the medium requires a finalized config).
SimulatorConfig finalized(SimulatorConfig config) {
  DRN_EXPECTS(config.despreading_channels > 0);
  DRN_EXPECTS(config.multiuser_subtract_k >= 0);
  if (config.thermal_noise_w < 0.0) {
    config.thermal_noise_w =
        radio::thermal_noise(config.criterion.bandwidth()).value();
  }
  return config;
}

}  // namespace

Simulator::Simulator(radio::PropagationMatrix gains, SimulatorConfig config)
    : Simulator(engine_from_matrix(std::move(gains), config.engine), config) {}

Simulator::Simulator(std::unique_ptr<radio::InterferenceEngine> engine,
                     SimulatorConfig config)
    : config_(finalized(config)),
      metrics_(station_count_of(engine.get())),
      medium_(std::move(engine), config_, queue_, metrics_, observers_,
              *this),
      host_(medium_.station_count(), config_.seed, queue_, metrics_, *this),
      network_(host_, metrics_) {}

Simulator::~Simulator() = default;

void Simulator::set_mac(StationId station, std::unique_ptr<MacProtocol> mac) {
  host_.set_mac(station, std::move(mac));
}

void Simulator::set_router(Router router) {
  network_.set_router(std::move(router));
}

void Simulator::set_observer(SimObserver* observer) {
  if (owned_slot_ != kNoSlot) {
    if (observer != nullptr) {
      observers_[owned_slot_] = observer;  // replace only our own slot
    } else {
      observers_.erase(observers_.begin() +
                       static_cast<std::ptrdiff_t>(owned_slot_));
      owned_slot_ = kNoSlot;
    }
    return;
  }
  if (observer == nullptr) return;  // nothing owned, nothing to clear
  owned_slot_ = observers_.size();
  observers_.push_back(observer);
}

void Simulator::add_observer(SimObserver* observer) {
  DRN_EXPECTS(observer != nullptr);
  observers_.push_back(observer);
}

void Simulator::inject(double time_s, Packet packet) {
  DRN_EXPECTS(time_s >= now_s_);
  DRN_EXPECTS(packet.source < station_count());
  DRN_EXPECTS(packet.destination < station_count());
  DRN_EXPECTS(packet.source != packet.destination);
  DRN_EXPECTS(packet.size_bits > 0.0);
  Event e;
  e.time_s = time_s;
  e.kind = EventKind::kInject;
  e.packet = pool_.alloc(packet);  // heap entry carries only the handle
  queue_.push(e);
}

void Simulator::run_until(double t_end_s) {
  DRN_EXPECTS(t_end_s >= now_s_);
  host_.start_if_needed();
  // pop_if_before folds the bound test into the pop: one top inspection per
  // event instead of a next_time()/pop() pair re-reading the heap top.
  while (const auto e = queue_.pop_if_before(t_end_s)) {
    now_s_ = e->time_s;
    ++events_processed_;
    switch (e->kind) {
      case EventKind::kTransmitEnd:
        medium_.handle_transmit_end(e->tx_id);
        break;
      case EventKind::kTimer:
        host_.deliver_timer(e->station, e->cookie, e->generation);
        break;
      case EventKind::kInject:
        handle_inject(e->packet);
        break;
      case EventKind::kTransmitStart:
        medium_.handle_transmit_start(e->tx_id);
        break;
    }
  }
  now_s_ = std::max(now_s_, t_end_s);
}

// ---------------------------------------------------------------------------
// MacContext services (context binding via the host, physics via the medium)

void Simulator::transmit(const Packet& pkt, StationId to, double power_w,
                         double start_s, double rate_bps) {
  medium_.schedule_data(self(), pkt, to, power_w, start_s, rate_bps, now_s_);
}

void Simulator::transmit_noise(double power_w, double start_s,
                               double duration_s) {
  medium_.schedule_noise(self(), power_w, start_s, duration_s, now_s_);
}

TimerHandle Simulator::set_timer(double at_s, std::uint64_t cookie) {
  DRN_EXPECTS(at_s >= now_s_);
  return host_.arm_timer(at_s, cookie);
}

bool Simulator::cancel_timer(TimerHandle h) { return queue_.cancel(h); }

bool Simulator::transmitting() const {
  return medium_.station_transmitting(host_.self());
}

double Simulator::received_power_w() const {
  return medium_.power_at(host_.self()).value();
}

double Simulator::gain_to(StationId other) const {
  DRN_EXPECTS(other < station_count());
  return medium_.gain(other, host_.self());
}

void Simulator::drop(const Packet& pkt) {
  (void)pkt;
  metrics_.record_mac_drop();
}

// ---------------------------------------------------------------------------
// RadioMedium::Client — decode outcomes route to the layer that owns them

void Simulator::on_decoded_broadcast(const Packet& packet, StationId from,
                                     StationId rx, double signal_w) {
  host_.with_station(rx, [this, &packet, from, signal_w](MacProtocol& mac) {
    mac.on_broadcast_received(*this, packet, from, signal_w);
  });
}

void Simulator::on_transmit_complete(StationId from, const Packet& packet,
                                     StationId to, bool any_delivered) {
  host_.with_station(from,
                     [this, &packet, to, any_delivered](MacProtocol& mac) {
                       mac.on_transmit_end(*this, packet, to, any_delivered);
                     });
}

// ---------------------------------------------------------------------------
// Network dynamics (src/dynamics/ drives these; quiescent otherwise)

std::size_t Simulator::deactivate_station(StationId station) {
  DRN_EXPECTS(station < station_count());
  DRN_EXPECTS(host_.station_active(station));
  DRN_EXPECTS(host_.has_mac(station));

  // RF teardown first (the medium must not upcall into a destroyed MAC):
  // scheduled transmissions vanish, airborne ones are cut short, receptions
  // in progress at the station are marked aborted.
  medium_.cancel_scheduled_from(station);
  medium_.abort_active_from(station, now_s_);
  medium_.abort_receptions_at(station);

  // Then the station side: timers, the queue that dies with the MAC, the
  // MAC itself, activation state and the generation bump.
  const std::size_t dropped = host_.teardown(station);
  medium_.release_transmitter(station, now_s_);
  return dropped;
}

void Simulator::activate_station(StationId station,
                                 std::unique_ptr<MacProtocol> mac) {
  DRN_EXPECTS(station < station_count());
  host_.activate(station, std::move(mac));
}

bool Simulator::try_move_station(StationId station, geo::Vec2 position) {
  DRN_EXPECTS(station < station_count());
  // RF-idle rule: while the station radiates, or any reception record at it
  // is open, in-flight engine state references its current gains; moving
  // underneath that state would corrupt the incremental interference sums.
  if (!medium_.rf_idle(station)) return false;
  medium_.station_moved(station, position);
  return true;
}

void Simulator::notify_clock_rate(StationId station, double delta_ppm) {
  DRN_EXPECTS(station < station_count());
  host_.notify_clock_rate(station, delta_ppm);
}

Simulator::QueueStats Simulator::queue_stats() const {
  QueueStats s;
  s.events_processed = events_processed_;
  s.pending = queue_.size();
  s.peak_entries = queue_.peak_entries();
  s.peak_bytes = queue_.peak_bytes();
  s.compactions = queue_.compactions();
  s.pool_live = pool_.live();
  s.pool_capacity = pool_.capacity();
  return s;
}

void Simulator::handle_inject(PacketHandle handle) {
  network_.admit(pool_.take(handle), now_s_);
}

}  // namespace drn::sim
