#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"
#include "radio/units.hpp"

namespace drn::sim {

namespace {

/// Default router: every destination is assumed to be in direct reach.
StationId direct_router(StationId /*at*/, StationId dst) { return dst; }

std::unique_ptr<radio::InterferenceEngine> engine_from_matrix(
    radio::PropagationMatrix gains, radio::InterferenceEngineKind kind) {
  switch (kind) {
    case radio::InterferenceEngineKind::kDense:
      return radio::make_dense_engine(std::move(gains));
    case radio::InterferenceEngineKind::kCompensated:
      return radio::make_compensated_engine(std::move(gains));
    case radio::InterferenceEngineKind::kNearFar:
      break;  // needs station geometry; use the engine constructor
  }
  DRN_EXPECTS(kind != radio::InterferenceEngineKind::kNearFar);
  return nullptr;
}

std::size_t station_count_of(const radio::InterferenceEngine* engine) {
  DRN_EXPECTS(engine != nullptr);
  return engine->station_count();
}

}  // namespace

Simulator::Simulator(radio::PropagationMatrix gains, SimulatorConfig config)
    : Simulator(engine_from_matrix(std::move(gains), config.engine), config) {}

Simulator::Simulator(std::unique_ptr<radio::InterferenceEngine> engine,
                     SimulatorConfig config)
    : engine_(std::move(engine)),
      config_(config),
      metrics_(station_count_of(engine_.get())),
      macs_(engine_->station_count()),
      router_(direct_router),
      transmitting_count_(engine_->station_count(), 0),
      reception_count_(engine_->station_count(), 0),
      addressed_count_(engine_->station_count(), 0),
      tx_busy_until_s_(engine_->station_count(), 0.0),
      station_timers_(engine_->station_count()),
      active_station_(engine_->station_count(), 1),
      mac_generation_(engine_->station_count(), 0),
      open_rx_count_(engine_->station_count(), 0) {
  DRN_EXPECTS(config_.despreading_channels > 0);
  DRN_EXPECTS(config_.multiuser_subtract_k >= 0);
  if (config_.thermal_noise_w < 0.0) {
    config_.thermal_noise_w =
        radio::thermal_noise(config_.criterion.bandwidth()).value();
  }
  engine_->set_thermal_noise(radio::Watts{config_.thermal_noise_w});
  Rng master(config_.seed);
  rngs_.reserve(engine_->station_count());
  for (std::size_t i = 0; i < engine_->station_count(); ++i)
    rngs_.push_back(master.split(i));
}

Simulator::~Simulator() = default;

void Simulator::set_mac(StationId station, std::unique_ptr<MacProtocol> mac) {
  DRN_EXPECTS(station < macs_.size());
  DRN_EXPECTS(mac != nullptr);
  DRN_EXPECTS(!started_);
  macs_[station] = std::move(mac);
}

void Simulator::set_router(Router router) {
  DRN_EXPECTS(router != nullptr);
  router_ = std::move(router);
}

void Simulator::add_observer(SimObserver* observer) {
  DRN_EXPECTS(observer != nullptr);
  observers_.push_back(observer);
}

void Simulator::inject(double time_s, Packet packet) {
  DRN_EXPECTS(time_s >= now_s_);
  DRN_EXPECTS(packet.source < station_count());
  DRN_EXPECTS(packet.destination < station_count());
  DRN_EXPECTS(packet.source != packet.destination);
  DRN_EXPECTS(packet.size_bits > 0.0);
  Event e;
  e.time_s = time_s;
  e.kind = EventKind::kInject;
  e.packet = pool_.alloc(packet);  // heap entry carries only the handle
  queue_.push(e);
}

template <typename F>
void Simulator::with_station(StationId station, F&& hook) {
  DRN_EXPECTS(macs_[station] != nullptr);
  const StationId saved = current_station_;
  current_station_ = station;
  hook(*macs_[station]);
  current_station_ = saved;
}

void Simulator::run_until(double t_end_s) {
  DRN_EXPECTS(t_end_s >= now_s_);
  if (!started_) {
    for (StationId s = 0; s < station_count(); ++s) {
      if (active_station_[s] == 0) continue;
      DRN_EXPECTS(macs_[s] != nullptr);  // every active station needs a MAC
      with_station(s, [this](MacProtocol& mac) { mac.on_start(*this); });
    }
    started_ = true;
  }
  // pop_if_before folds the bound test into the pop: one top inspection per
  // event instead of a next_time()/pop() pair re-reading the heap top.
  while (const auto e = queue_.pop_if_before(t_end_s)) {
    now_s_ = e->time_s;
    ++events_processed_;
    switch (e->kind) {
      case EventKind::kTransmitEnd:
        handle_transmit_end(e->tx_id);
        break;
      case EventKind::kTimer:
        // A timer armed by a MAC that has since been torn down is cancelled
        // at teardown, so a stale one can barely reach here; the generation
        // guard stays as defense in depth. Deliver only fresh timers.
        if (active_station_[e->station] != 0 &&
            e->generation == mac_generation_[e->station]) {
          with_station(e->station, [this, &e](MacProtocol& mac) {
            mac.on_timer(*this, e->cookie);
          });
        }
        break;
      case EventKind::kInject:
        handle_inject(e->packet);
        break;
      case EventKind::kTransmitStart:
        handle_transmit_start(e->tx_id);
        break;
    }
  }
  now_s_ = std::max(now_s_, t_end_s);
}

// ---------------------------------------------------------------------------
// MacContext services

StationId Simulator::self() const {
  DRN_EXPECTS(current_station_ != kNoStation);
  return current_station_;
}

void Simulator::transmit(const Packet& pkt, StationId to, double power_w,
                         double start_s, double rate_bps) {
  const StationId from = self();
  DRN_EXPECTS(to < station_count() || to == kBroadcast);
  DRN_EXPECTS(to != from);
  DRN_EXPECTS(power_w > 0.0);
  DRN_EXPECTS(rate_bps >= 0.0);
  DRN_EXPECTS(start_s >= now_s_);
  DRN_EXPECTS(pkt.size_bits > 0.0);
  // One transmitter per station: transmissions must be serialized by the
  // MAC. A sub-nanosecond shortfall is floating-point noise from computing
  // the same instant two ways (e.g. 0.01*i vs a running sum of 0.01) and is
  // clamped rather than rejected.
  if (start_s < tx_busy_until_s_[from] &&
      tx_busy_until_s_[from] - start_s < 1e-9) {
    start_s = tx_busy_until_s_[from];
  }
  DRN_EXPECTS(start_s >= tx_busy_until_s_[from]);

  ActiveTx tx;
  tx.packet = pkt;
  tx.from = from;
  tx.to = to;
  tx.power_w = power_w;
  tx.rate_bps =
      rate_bps > 0.0 ? rate_bps : config_.criterion.data_rate_bps();
  tx.start_s = start_s;
  tx.end_s = start_s + pkt.size_bits / tx.rate_bps;
  tx.required_snr =
      (config_.criterion.margin().to_linear() *
       radio::snr_for_rate_fraction(tx.rate_bps /
                                    config_.criterion.bandwidth_hz()))
          .value();
  tx_busy_until_s_[from] = tx.end_s;

  const std::uint64_t id = next_tx_id_++;
  auto& slot = scheduled_.emplace(id, tx).first->second;
  schedule_tx_events(id, slot);
}

void Simulator::schedule_tx_events(std::uint64_t tx_id, ActiveTx& tx) {
  Event start;
  start.time_s = tx.start_s;
  start.kind = EventKind::kTransmitStart;
  start.tx_id = tx_id;
  tx.start_ev = queue_.push(start);

  Event end;
  end.time_s = tx.end_s;
  end.kind = EventKind::kTransmitEnd;
  end.tx_id = tx_id;
  tx.end_ev = queue_.push(end);
}

TimerHandle Simulator::set_timer(double at_s, std::uint64_t cookie) {
  DRN_EXPECTS(at_s >= now_s_);
  Event e;
  e.time_s = at_s;
  e.kind = EventKind::kTimer;
  e.station = self();
  e.cookie = cookie;
  e.generation = mac_generation_[e.station];
  const EventHandle h = queue_.push(e);
  // Remember the handle so deactivate_station can cancel outright. Fired and
  // cancelled handles go stale on their own; sweep them out once the list
  // grows, keeping it proportional to the station's truly pending timers.
  auto& timers = station_timers_[e.station];
  if (timers.size() >= 32) {
    std::erase_if(timers,
                  [this](EventHandle t) { return !queue_.pending(t); });
  }
  timers.push_back(h);
  return h;
}

bool Simulator::cancel_timer(TimerHandle h) { return queue_.cancel(h); }

void Simulator::transmit_noise(double power_w, double start_s,
                               double duration_s) {
  const StationId from = self();
  DRN_EXPECTS(power_w > 0.0);
  DRN_EXPECTS(duration_s > 0.0);
  DRN_EXPECTS(start_s >= now_s_);
  // Noise uses the one transmitter too; same serialization (and the same
  // sub-nanosecond clamp) as data transmissions.
  if (start_s < tx_busy_until_s_[from] &&
      tx_busy_until_s_[from] - start_s < 1e-9) {
    start_s = tx_busy_until_s_[from];
  }
  DRN_EXPECTS(start_s >= tx_busy_until_s_[from]);

  ActiveTx tx;
  tx.from = from;
  tx.to = kNoStation;  // addressed to nobody: pure interference
  tx.power_w = power_w;
  tx.rate_bps = 0.0;
  tx.start_s = start_s;
  tx.end_s = start_s + duration_s;
  tx.required_snr = 0.0;
  tx_busy_until_s_[from] = tx.end_s;

  const std::uint64_t id = next_tx_id_++;
  auto& slot = scheduled_.emplace(id, tx).first->second;
  schedule_tx_events(id, slot);
}

bool Simulator::transmitting() const { return station_transmitting(self()); }

double Simulator::received_power_w() const {
  return engine_->power_at(self()).value();
}

double Simulator::gain_to(StationId other) const {
  DRN_EXPECTS(other < station_count());
  return engine_->gain(other, self());
}

void Simulator::drop(const Packet& pkt) {
  (void)pkt;
  metrics_.record_mac_drop();
}

Rng& Simulator::rng() { return rngs_[self()]; }

// ---------------------------------------------------------------------------
// Physics

LossType Simulator::classify(const ActiveTx& interferer, StationId rx) {
  if (interferer.from == rx) return LossType::kType3;
  if (interferer.to == rx) return LossType::kType2;
  return LossType::kType1;
}

void Simulator::fail_reception(Reception& r, const ActiveTx& cause) {
  if (r.failure == LossType::kNone) r.failure = classify(cause, r.rx);
}

double Simulator::effective_sinr(const Reception& r) const {
  const double interference = engine_->interference(r.handle).value();
  if (config_.multiuser_subtract_k == 0 || r.contributions.empty())
    return r.signal_w / interference;
  // Subtract the k strongest interfering contributions (idealised multiuser
  // detection: the receiver reconstructs and cancels them).
  const double cancelled =
      r.contributions
          .sum_top(static_cast<std::size_t>(config_.multiuser_subtract_k))
          .value();
  const double residual =
      std::max(config_.thermal_noise_w, interference - cancelled);
  return r.signal_w / residual;
}

void Simulator::note_interference_change(Reception& r, const ActiveTx& cause) {
  const double sinr = effective_sinr(r);
  r.min_sinr = std::min(r.min_sinr, sinr);
  if (r.failure == LossType::kNone && sinr < r.required_snr)
    fail_reception(r, cause);
}

void Simulator::open_reception(std::uint64_t tx_id, const ActiveTx& tx,
                               StationId rx,
                               std::vector<Reception>& records) {
  Reception r;
  r.rx = rx;
  r.signal_w = engine_->gain(rx, tx.from) * tx.power_w;
  r.required_snr = tx.required_snr;
  radio::InterferenceEngine::ContributionVisitor on_contribution;
  if (config_.multiuser_subtract_k > 0) {
    on_contribution = [&r](std::uint64_t id, radio::Watts watts) {
      r.contributions.add(id, watts);
    };
  }
  r.handle = engine_->open_reception(tx_id, rx, on_contribution);

  if (active_station_[rx] == 0) {
    // The receiver is down (churn): the record still exists — conservation
    // and the engine's interference accounting need it — but nothing can be
    // decoded at a dead station, and no despreading channel is consumed.
    r.failure = LossType::kAborted;
  } else if (station_transmitting(rx)) {
    r.failure = LossType::kType3;
  } else if (reception_count_[rx] >= config_.despreading_channels) {
    r.failure = LossType::kType2;  // all despreading channels busy
  } else {
    r.occupies_channel = true;
    ++reception_count_[rx];
  }

  r.min_sinr = effective_sinr(r);
  if (r.failure == LossType::kNone && r.min_sinr < r.required_snr) {
    // Below threshold from the first instant: attribute the loss to an
    // already-active transmission addressed to the same receiver (Type 2) if
    // one exists, otherwise to third-party interference / sheer lack of
    // signal (Type 1). addressed_count_ mirrors the active set, so the test
    // is O(1); subtract this transmission itself when it is the one
    // addressed to rx.
    const int others = addressed_count_[rx] - (tx.to == rx ? 1 : 0);
    r.failure = others > 0 ? LossType::kType2 : LossType::kType1;
  }

  // The vector was reserved by the caller, so push_back never reallocates
  // and the back-pointer registered here stays valid until close.
  DRN_EXPECTS(records.size() < records.capacity());
  records.push_back(std::move(r));
  ++open_rx_count_[rx];
  const radio::ReceptionHandle h = records.back().handle;
  if (by_handle_.size() <= h) by_handle_.resize(h + 1, nullptr);
  by_handle_[h] = &records.back();
}

void Simulator::handle_transmit_start(std::uint64_t tx_id) {
  auto node = scheduled_.extract(tx_id);
  DRN_EXPECTS(!node.empty());
  const ActiveTx& tx = active_.emplace(tx_id, node.mapped()).first->second;
  const bool noise = tx.to == kNoStation;
  if (tx.to < station_count()) ++addressed_count_[tx.to];

  metrics_.record_airtime(tx.from, tx.end_s - tx.start_s);
  if (noise) {
    metrics_.record_noise_burst();
  } else if (tx.to == kBroadcast) {
    metrics_.record_broadcast();
  } else {
    metrics_.record_hop_attempt();
  }
  ++transmitting_count_[tx.from];

  if (!observers_.empty()) {
    TxEvent ev;
    ev.tx_id = tx_id;
    ev.from = tx.from;
    ev.to = tx.to;
    ev.power_w = tx.power_w;
    ev.start_s = tx.start_s;
    ev.end_s = tx.end_s;
    ev.rate_bps = tx.rate_bps;
    ev.packet = tx.packet.id;
    for (SimObserver* o : observers_) o->on_transmit_start(ev);
  }

  const bool track = config_.multiuser_subtract_k > 0;

  // The new signal raises the interference of every in-flight reception it
  // reaches and kills any reception in progress at the (now radiating)
  // sender itself; the engine walks them and notifies us per reception.
  engine_->transmit_started(
      tx_id, tx.from, radio::Watts{tx.power_w},
      [this, &tx](radio::ReceptionHandle h) {
        fail_reception(reception_at(h), tx);  // Type 3: own transmitter up
      },
      [this, &tx, tx_id, track](radio::ReceptionHandle h, radio::Watts watts) {
        Reception& r = reception_at(h);
        if (track) r.contributions.add(tx_id, watts);
        note_interference_change(r, tx);
      });

  // A noise burst carries nothing: it interferes (above) but opens no
  // reception.
  if (noise) return;

  // Open the reception record(s).
  auto& records = receptions_[tx_id];
  if (tx.to == kBroadcast) {
    records.reserve(station_count() - 1);
    for (StationId rx = 0; rx < station_count(); ++rx) {
      if (rx == tx.from) continue;
      open_reception(tx_id, tx, rx, records);
    }
  } else {
    records.reserve(1);
    open_reception(tx_id, tx, tx.to, records);
  }
}

void Simulator::handle_transmit_end(std::uint64_t tx_id) {
  auto node = active_.extract(tx_id);
  DRN_EXPECTS(!node.empty());
  const ActiveTx tx = node.mapped();
  --transmitting_count_[tx.from];
  if (tx.to < station_count()) --addressed_count_[tx.to];

  // The signal leaves the air: the engine lowers everyone else's
  // interference (receptions at the sender's own station never had this
  // contribution added — they die via Type 3 — and the engine skips them
  // symmetrically). Interference only drops here, so min_sinr cannot move;
  // the notification is only needed to retire tracked contributions.
  radio::InterferenceEngine::AffectedVisitor on_affected;
  if (config_.multiuser_subtract_k > 0) {
    on_affected = [this, tx_id](radio::ReceptionHandle h,
                                radio::Watts /*watts*/) {
      reception_at(h).contributions.erase(tx_id);
    };
  }
  engine_->transmit_ended(tx_id, on_affected);

  if (tx.to == kNoStation) {
    // Noise burst: nothing was receivable; just tell the emitter.
    with_station(tx.from, [this, &tx](MacProtocol& mac) {
      mac.on_transmit_end(*this, tx.packet, tx.to, false);
    });
    return;
  }

  auto rnode = receptions_.extract(tx_id);
  DRN_EXPECTS(!rnode.empty());
  bool any_delivered = false;
  for (Reception& r : rnode.mapped()) {
    engine_->close_reception(r.handle);
    by_handle_[r.handle] = nullptr;
    if (r.occupies_channel) --reception_count_[r.rx];
    --open_rx_count_[r.rx];
    const bool delivered = r.failure == LossType::kNone;
    any_delivered |= delivered;

    if (!observers_.empty()) {
      RxEvent ev;
      ev.tx_id = tx_id;
      ev.rx = r.rx;
      ev.delivered = delivered;
      ev.loss = r.failure;
      ev.min_sinr = r.min_sinr;
      ev.required_snr = r.required_snr;
      ev.signal_w = r.signal_w;
      for (SimObserver* o : observers_) o->on_reception_complete(ev);
    }

    if (tx.to == kBroadcast) {
      if (delivered) {
        metrics_.record_broadcast_reception();
        with_station(r.rx, [this, &tx, &r](MacProtocol& mac) {
          mac.on_broadcast_received(*this, tx.packet, tx.from, r.signal_w);
        });
      }
      continue;
    }

    if (delivered) {
      metrics_.record_hop_success(
          radio::to_db(r.min_sinr / r.required_snr));
      deliver(tx.packet, r.rx);
    } else {
      metrics_.record_hop_loss(r.failure);
    }
  }

  with_station(tx.from, [this, &tx, any_delivered](MacProtocol& mac) {
    mac.on_transmit_end(*this, tx.packet, tx.to, any_delivered);
  });
}

void Simulator::deliver(const Packet& packet, StationId at) {
  Packet pkt = packet;
  ++pkt.hop_count;
  if (pkt.destination == at) {
    metrics_.record_delivery(now_s_ - pkt.created_s, pkt.hop_count);
    return;
  }
  enqueue_at(at, pkt);
}

void Simulator::enqueue_at(StationId station, const Packet& packet) {
  if (active_station_[station] == 0) {
    metrics_.record_churn_drops(1);  // the station is down (churn)
    return;
  }
  const StationId next = router_(station, packet.destination);
  if (next == kNoStation || next == station) {
    metrics_.record_mac_drop();  // no route
    return;
  }
  DRN_EXPECTS(next < station_count());
  with_station(station, [this, &packet, next](MacProtocol& mac) {
    mac.on_enqueue(*this, packet, next);
  });
}

// ---------------------------------------------------------------------------
// Network dynamics (src/dynamics/ drives these; quiescent otherwise)

void Simulator::abort_transmission(std::uint64_t tx_id) {
  auto node = active_.extract(tx_id);
  DRN_EXPECTS(!node.empty());
  const ActiveTx tx = node.mapped();
  --transmitting_count_[tx.from];
  if (tx.to < station_count()) --addressed_count_[tx.to];
  // Airtime was booked for the full planned duration at start; give back the
  // part that never aired.
  metrics_.trim_airtime(tx.from, tx.end_s - now_s_);
  const bool was_pending = queue_.cancel(tx.end_ev);
  DRN_EXPECTS(was_pending);  // the tx was in flight, so its end lay ahead

  // Observers first (the auditor truncates its record of this transmission
  // to now before the aborted RxEvents below arrive).
  if (!observers_.empty()) {
    TxEvent ev;
    ev.tx_id = tx_id;
    ev.from = tx.from;
    ev.to = tx.to;
    ev.power_w = tx.power_w;
    ev.start_s = tx.start_s;
    ev.end_s = tx.end_s;
    ev.rate_bps = tx.rate_bps;
    ev.packet = tx.packet.id;
    for (SimObserver* o : observers_) o->on_transmit_aborted(ev, now_s_);
  }

  // The signal leaves the air early; interference drops exactly as at a
  // normal end, through the same engine path (no ad-hoc subtraction).
  radio::InterferenceEngine::AffectedVisitor on_affected;
  if (config_.multiuser_subtract_k > 0) {
    on_affected = [this, tx_id](radio::ReceptionHandle h,
                                radio::Watts /*watts*/) {
      reception_at(h).contributions.erase(tx_id);
    };
  }
  engine_->transmit_ended(tx_id, on_affected);

  if (tx.to == kNoStation) return;  // noise: no reception records

  auto rnode = receptions_.extract(tx_id);
  DRN_EXPECTS(!rnode.empty());
  for (Reception& r : rnode.mapped()) {
    engine_->close_reception(r.handle);
    by_handle_[r.handle] = nullptr;
    if (r.occupies_channel) --reception_count_[r.rx];
    --open_rx_count_[r.rx];
    // A truncated packet is undecodable regardless of its SINR so far.
    if (r.failure == LossType::kNone) r.failure = LossType::kAborted;

    if (!observers_.empty()) {
      RxEvent ev;
      ev.tx_id = tx_id;
      ev.rx = r.rx;
      ev.delivered = false;
      ev.loss = r.failure;
      ev.min_sinr = r.min_sinr;
      ev.required_snr = r.required_snr;
      ev.signal_w = r.signal_w;
      for (SimObserver* o : observers_) o->on_reception_complete(ev);
    }

    if (tx.to != kBroadcast) metrics_.record_hop_loss(r.failure);
  }
  // No on_transmit_end: the sender's MAC is being torn down right now.
}

std::size_t Simulator::deactivate_station(StationId station) {
  DRN_EXPECTS(station < station_count());
  DRN_EXPECTS(active_station_[station] != 0);
  DRN_EXPECTS(macs_[station] != nullptr);

  // Scheduled-but-not-started transmissions from the station never happen:
  // both their queue entries are cancelled on the spot.
  for (auto it = scheduled_.begin(); it != scheduled_.end();) {
    if (it->second.from == station) {
      queue_.cancel(it->second.start_ev);
      queue_.cancel(it->second.end_ev);
      it = scheduled_.erase(it);
    } else {
      ++it;
    }
  }

  // Transmissions already on the air are cut short.
  std::vector<std::uint64_t> airborne;
  for (const auto& [id, tx] : active_)
    if (tx.from == station) airborne.push_back(id);
  for (const std::uint64_t id : airborne) abort_transmission(id);

  // Receptions in progress at the station die with it. The records stay
  // open (the engine keeps accounting the interference they see, and
  // conservation still expects their outcomes at the transmissions' ends)
  // but can no longer deliver — even if the station rejoins first.
  for (auto& [id, records] : receptions_) {
    (void)id;
    for (Reception& r : records) {
      if (r.rx == station && r.failure == LossType::kNone)
        r.failure = LossType::kAborted;
    }
  }

  // The dead MAC's pending timers leave the queue now instead of riding it
  // as deadweight until their fire time (the generation bump below still
  // guards anything that slipped through).
  for (const EventHandle h : station_timers_[station]) queue_.cancel(h);
  station_timers_[station].clear();

  // The queue dies with the MAC.
  const std::size_t dropped = macs_[station]->queued_packets();
  metrics_.record_churn_drops(dropped);
  macs_[station].reset();
  active_station_[station] = 0;
  ++mac_generation_[station];  // pending timers of the old MAC are now stale
  tx_busy_until_s_[station] = now_s_;
  metrics_.record_station_down();
  return dropped;
}

void Simulator::activate_station(StationId station,
                                 std::unique_ptr<MacProtocol> mac) {
  DRN_EXPECTS(station < station_count());
  DRN_EXPECTS(active_station_[station] == 0);
  DRN_EXPECTS(mac != nullptr);
  macs_[station] = std::move(mac);
  active_station_[station] = 1;
  metrics_.record_station_up();
  if (started_)
    with_station(station, [this](MacProtocol& m) { m.on_start(*this); });
}

bool Simulator::try_move_station(StationId station, geo::Vec2 position) {
  DRN_EXPECTS(station < station_count());
  // RF-idle rule: while the station radiates, or any reception record at it
  // is open, in-flight engine state references its current gains; moving
  // underneath that state would corrupt the incremental interference sums.
  if (transmitting_count_[station] > 0 || open_rx_count_[station] > 0)
    return false;
  engine_->station_moved(station, position);
  return true;
}

void Simulator::notify_clock_rate(StationId station, double delta_ppm) {
  DRN_EXPECTS(station < station_count());
  DRN_EXPECTS(active_station_[station] != 0);
  with_station(station, [this, delta_ppm](MacProtocol& mac) {
    mac.on_clock_rate_changed(*this, delta_ppm);
  });
}

Simulator::QueueStats Simulator::queue_stats() const {
  QueueStats s;
  s.events_processed = events_processed_;
  s.pending = queue_.size();
  s.peak_entries = queue_.peak_entries();
  s.peak_bytes = queue_.peak_bytes();
  s.compactions = queue_.compactions();
  s.pool_live = pool_.live();
  s.pool_capacity = pool_.capacity();
  return s;
}

void Simulator::handle_inject(PacketHandle handle) {
  Packet pkt = pool_.take(handle);
  if (pkt.id == 0) {
    pkt.id = next_packet_id_++;
  } else if (pkt.id >= next_packet_id_) {
    // Caller-chosen ids and generated ids share one namespace: advance the
    // generator past every injected id so later zero-id injections can never
    // collide with it and corrupt exactly-once accounting.
    next_packet_id_ = pkt.id + 1;
  }
  pkt.created_s = now_s_;
  pkt.hop_count = 0;
  metrics_.record_offered();
  enqueue_at(pkt.source, pkt);
}

}  // namespace drn::sim
