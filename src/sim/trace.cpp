#include "sim/trace.hpp"

namespace drn::sim {

void TraceRecorder::on_transmit_start(const TxEvent& tx) {
  transmissions_.push_back(tx);
  if (max_events_ > 0 && transmissions_.size() > max_events_) {
    transmissions_.pop_front();
    ++dropped_transmissions_;
  }
}

void TraceRecorder::on_reception_complete(const RxEvent& rx) {
  receptions_.push_back(rx);
  if (max_events_ > 0 && receptions_.size() > max_events_) {
    receptions_.pop_front();
    ++dropped_receptions_;
  }
}

std::vector<TxEvent> TraceRecorder::transmissions_from(
    StationId station) const {
  std::vector<TxEvent> out;
  for (const auto& tx : transmissions_)
    if (tx.from == station) out.push_back(tx);
  return out;
}

std::vector<RxEvent> TraceRecorder::receptions_at(StationId station) const {
  std::vector<RxEvent> out;
  for (const auto& rx : receptions_)
    if (rx.rx == station) out.push_back(rx);
  return out;
}

double TraceRecorder::delivery_fraction() const {
  if (receptions_.empty()) return 1.0;
  std::size_t delivered = 0;
  for (const auto& rx : receptions_)
    if (rx.delivered) ++delivered;
  return static_cast<double>(delivered) /
         static_cast<double>(receptions_.size());
}

void TraceRecorder::write_transmissions_csv(std::ostream& os) const {
  os << "tx_id,from,to,power_w,start_s,end_s,rate_bps,packet\n";
  for (const auto& tx : transmissions_) {
    os << tx.tx_id << ',' << tx.from << ','
       << (tx.to == kBroadcast ? -1 : static_cast<long long>(tx.to)) << ','
       << tx.power_w << ',' << tx.start_s << ',' << tx.end_s << ','
       << tx.rate_bps << ',' << tx.packet << '\n';
  }
}

void TraceRecorder::write_receptions_csv(std::ostream& os) const {
  os << "tx_id,rx,delivered,loss,min_sinr,required_snr,signal_w\n";
  for (const auto& rx : receptions_) {
    os << rx.tx_id << ',' << rx.rx << ',' << (rx.delivered ? 1 : 0) << ','
       << static_cast<int>(rx.loss) << ',' << rx.min_sinr << ','
       << rx.required_snr << ',' << rx.signal_w << '\n';
  }
}

void TraceRecorder::clear() {
  transmissions_.clear();
  receptions_.clear();
  dropped_transmissions_ = 0;
  dropped_receptions_ = 0;
}

}  // namespace drn::sim
