// Per-interferer contribution tracking for multiuser detection.
//
// The SINR test with multiuser_subtract_k > 0 needs "the sum of the k
// strongest interfering contributions" on every interference update. The old
// code copied the whole contribution map into a vector and partial-sorted it
// per query — O(n log k) copies on the hot path. This keeps the watt values
// in an ordered multiset alongside the id map, so a query walks the first k
// elements in descending order and insert/erase stay O(log n), with results
// bit-identical to the sort-based code (both sum the same k doubles in the
// same descending order).
//
// sum_top is additionally memoized: a pop burst at one timestamp can re-test
// a reception's SINR several times, and queries between which this set did
// not change reuse the cached top-k sum instead of re-walking the multiset.
// Any add/erase/clear invalidates the cache and a recompute performs the
// identical descending walk, so the returned doubles are bit-for-bit the
// same with or without the cache.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>

#include "common/expects.hpp"
#include "radio/units.hpp"

namespace drn::sim {

class ContributionSet {
 public:
  void add(std::uint64_t tx_id, radio::Watts power) {
    const bool inserted = by_id_.emplace(tx_id, power.value()).second;
    DRN_EXPECTS(inserted);
    watts_.insert(power.value());
    cached_k_ = kNoCache;
  }

  /// Removes tx_id's contribution if present (a transmission that never
  /// reached this receiver's record has nothing to erase).
  void erase(std::uint64_t tx_id) {
    const auto it = by_id_.find(tx_id);
    if (it == by_id_.end()) return;
    // erase(find(...)): remove ONE instance of the value, not every
    // transmission that happens to contribute identical watts.
    watts_.erase(watts_.find(it->second));
    by_id_.erase(it);
    cached_k_ = kNoCache;
  }

  [[nodiscard]] bool empty() const { return by_id_.empty(); }
  [[nodiscard]] std::size_t size() const { return by_id_.size(); }

  /// Sum of the k strongest contributions (all of them if k >= size).
  /// Memoized per (set contents, k); see the header comment.
  [[nodiscard]] radio::Watts sum_top(std::size_t k) const {
    if (cached_k_ == k) return radio::Watts{cached_sum_};
    double sum = 0.0;
    std::size_t n = 0;
    for (const double w : watts_) {
      if (n++ == k) break;
      sum += w;
    }
    cached_k_ = k;
    cached_sum_ = sum;
    return radio::Watts{sum};
  }

  void clear() {
    by_id_.clear();
    watts_.clear();
    cached_k_ = kNoCache;
  }

 private:
  static constexpr std::size_t kNoCache = static_cast<std::size_t>(-1);

  std::map<std::uint64_t, double> by_id_;
  std::multiset<double, std::greater<>> watts_;  // descending
  // sum_top memo (mutable: caching does not change observable state).
  mutable std::size_t cached_k_ = kNoCache;
  mutable double cached_sum_ = 0.0;
};

}  // namespace drn::sim
