// Generation-checked free-list pool for event payloads.
//
// Heap entries in the event queue are a small POD header; anything bigger —
// today the injected Packet — lives here and is named by a PacketHandle
// (slot index + generation stamp). Freeing a slot bumps its generation, so
// a dangling handle held across a free can never silently read a recycled
// slot: every access revalidates the stamp and a mismatch is a contract
// violation, not a wrong answer. Slots are recycled LIFO and the backing
// vector only grows, so steady-state traffic allocates nothing.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/expects.hpp"
#include "sim/packet.hpp"

namespace drn::sim {

// Trivial on purpose (no default member initializers): it lives inside
// Event's payload union, whose members must have trivial default
// construction. Handles are only ever produced by EventPool::alloc.
struct PacketHandle {
  static constexpr std::uint32_t kInvalidSlot = 0xffffffffu;

  std::uint32_t slot;
  std::uint32_t generation;

  friend bool operator==(const PacketHandle& a, const PacketHandle& b) {
    return a.slot == b.slot && a.generation == b.generation;
  }
};

class EventPool {
 public:
  /// Stores a copy of `packet`; the returned handle stays valid until the
  /// matching take()/release().
  PacketHandle alloc(const Packet& packet) {
    std::uint32_t slot;
    if (free_head_ != PacketHandle::kInvalidSlot) {
      slot = free_head_;
      free_head_ = slots_[slot].next_free;
    } else {
      DRN_EXPECTS(slots_.size() < PacketHandle::kInvalidSlot);
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[slot];
    s.packet = packet;
    s.live = true;
    ++live_;
    peak_live_ = live_ > peak_live_ ? live_ : peak_live_;
    return PacketHandle{slot, s.generation};
  }

  /// The payload behind a live handle. The handle must be valid: naming a
  /// freed or recycled slot is a contract violation.
  [[nodiscard]] const Packet& get(PacketHandle h) const {
    check_live(h);
    return slots_[h.slot].packet;
  }

  /// Removes and returns the payload; the handle (and any copy of it) is
  /// dead afterwards.
  Packet take(PacketHandle h) {
    check_live(h);
    Packet out = slots_[h.slot].packet;
    release(h);
    return out;
  }

  /// Frees the slot without reading it.
  void release(PacketHandle h) {
    check_live(h);
    Slot& s = slots_[h.slot];
    s.live = false;
    ++s.generation;  // every outstanding handle to this slot is now stale
    s.next_free = free_head_;
    free_head_ = h.slot;
    --live_;
  }

  /// True iff `h` names a payload that is still allocated (stale and
  /// never-armed handles report false rather than trapping).
  [[nodiscard]] bool valid(PacketHandle h) const {
    return h.slot < slots_.size() && slots_[h.slot].live &&
           slots_[h.slot].generation == h.generation;
  }

  [[nodiscard]] std::size_t live() const { return live_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] std::size_t peak_live() const { return peak_live_; }

 private:
  struct Slot {
    Packet packet;
    std::uint32_t generation = 0;
    std::uint32_t next_free = PacketHandle::kInvalidSlot;
    bool live = false;
  };

  void check_live(PacketHandle h) const {
    DRN_EXPECTS(h.slot < slots_.size());
    DRN_EXPECTS(slots_[h.slot].live);
    DRN_EXPECTS(slots_[h.slot].generation == h.generation);
  }

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = PacketHandle::kInvalidSlot;
  std::size_t live_ = 0;
  std::size_t peak_live_ = 0;
};

}  // namespace drn::sim
