// Workload generators: Poisson packet arrival processes over various
// source/destination distributions, as used throughout the paper's
// simulations (random traffic over 100- and 1000-station networks).
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/packet.hpp"

namespace drn::sim {

/// A packet plus the global time it enters the network.
struct Injection {
  double time_s = 0.0;
  Packet packet;
};

/// Chooses a (source, destination) pair for one packet.
using PairChooser = std::function<std::pair<StationId, StationId>(Rng&)>;

/// Uniform random ordered pair of distinct stations.
[[nodiscard]] PairChooser uniform_pairs(std::size_t stations);

/// Fixed source -> destination flow.
[[nodiscard]] PairChooser fixed_pair(StationId source, StationId destination);

/// Uniform random source; destination drawn uniformly from the source's row
/// of the supplied neighbour lists (single-hop traffic).
[[nodiscard]] PairChooser neighbor_pairs(
    std::vector<std::vector<StationId>> neighbors);

/// Poisson arrivals at aggregate rate `packets_per_second` over [0, duration),
/// each packet of `size_bits`, with endpoints drawn by `choose`.
[[nodiscard]] std::vector<Injection> poisson_traffic(double packets_per_second,
                                                     double duration_s,
                                                     double size_bits,
                                                     const PairChooser& choose,
                                                     Rng& rng);

/// Deterministic arrivals: `count` packets evenly spaced over [0, duration).
[[nodiscard]] std::vector<Injection> uniform_traffic(std::size_t count,
                                                     double duration_s,
                                                     double size_bits,
                                                     const PairChooser& choose,
                                                     Rng& rng);

}  // namespace drn::sim
