#include "sim/metrics.hpp"

#include "common/expects.hpp"

namespace drn::sim {

Metrics::Metrics(std::size_t stations) : airtime_s_(stations, 0.0) {
  DRN_EXPECTS(stations > 0);
}

void Metrics::record_hop_success(double sinr_margin_db) {
  ++hop_successes_;
  sinr_margin_db_.add(sinr_margin_db);
}

void Metrics::record_hop_loss(LossType type) {
  DRN_EXPECTS(type != LossType::kNone);
  ++losses_[static_cast<std::size_t>(type)];
}

void Metrics::record_delivery(double delay_s, std::uint32_t hops) {
  ++delivered_;
  delay_.add(delay_s);
  hops_.add(static_cast<double>(hops));
}

void Metrics::record_airtime(StationId station, double seconds) {
  DRN_EXPECTS(station < airtime_s_.size());
  DRN_EXPECTS(seconds >= 0.0);
  airtime_s_[station] += seconds;
}

std::uint64_t Metrics::losses(LossType type) const {
  return losses_[static_cast<std::size_t>(type)];
}

void Metrics::trim_airtime(StationId station, double seconds) {
  DRN_EXPECTS(station < airtime_s_.size());
  DRN_EXPECTS(seconds >= 0.0);
  DRN_EXPECTS(airtime_s_[station] >= seconds);
  airtime_s_[station] -= seconds;
}

std::uint64_t Metrics::total_hop_losses() const {
  return losses_[1] + losses_[2] + losses_[3] + losses_[4];
}

double Metrics::delivery_ratio() const {
  if (offered_ == 0) return 0.0;
  return static_cast<double>(delivered_) / static_cast<double>(offered_);
}

double Metrics::airtime_s(StationId station) const {
  DRN_EXPECTS(station < airtime_s_.size());
  return airtime_s_[station];
}

double Metrics::duty_cycle(StationId station, double duration_s) const {
  DRN_EXPECTS(duration_s > 0.0);
  return airtime_s(station) / duration_s;
}

double Metrics::mean_duty_cycle(double duration_s) const {
  DRN_EXPECTS(duration_s > 0.0);
  double total = 0.0;
  for (double a : airtime_s_) total += a;
  return total / (duration_s * static_cast<double>(airtime_s_.size()));
}

}  // namespace drn::sim
