#include "sim/traffic.hpp"

#include <memory>
#include <utility>

#include "common/expects.hpp"

namespace drn::sim {

PairChooser uniform_pairs(std::size_t stations) {
  DRN_EXPECTS(stations >= 2);
  return [stations](Rng& rng) {
    const auto src = static_cast<StationId>(rng.uniform_index(stations));
    auto dst = static_cast<StationId>(rng.uniform_index(stations - 1));
    if (dst >= src) ++dst;  // skip src, keeping the draw uniform over the rest
    return std::pair{src, dst};
  };
}

PairChooser fixed_pair(StationId source, StationId destination) {
  DRN_EXPECTS(source != destination);
  return [source, destination](Rng&) { return std::pair{source, destination}; };
}

PairChooser neighbor_pairs(std::vector<std::vector<StationId>> neighbors) {
  DRN_EXPECTS(!neighbors.empty());
  auto lists = std::make_shared<std::vector<std::vector<StationId>>>(
      std::move(neighbors));
  return [lists](Rng& rng) {
    // Draw sources until one with at least one neighbour comes up.
    for (;;) {
      const auto src = static_cast<StationId>(rng.uniform_index(lists->size()));
      const auto& nbrs = (*lists)[src];
      if (nbrs.empty()) continue;
      const auto dst = nbrs[rng.uniform_index(nbrs.size())];
      return std::pair{src, dst};
    }
  };
}

namespace {

Injection make_injection(double time_s, double size_bits,
                         const PairChooser& choose, Rng& rng) {
  Injection inj;
  inj.time_s = time_s;
  auto [src, dst] = choose(rng);
  inj.packet.source = src;
  inj.packet.destination = dst;
  inj.packet.size_bits = size_bits;
  return inj;
}

}  // namespace

std::vector<Injection> poisson_traffic(double packets_per_second,
                                       double duration_s, double size_bits,
                                       const PairChooser& choose, Rng& rng) {
  DRN_EXPECTS(packets_per_second > 0.0);
  DRN_EXPECTS(duration_s > 0.0);
  DRN_EXPECTS(size_bits > 0.0);
  std::vector<Injection> out;
  double t = rng.exponential(packets_per_second);
  while (t < duration_s) {
    out.push_back(make_injection(t, size_bits, choose, rng));
    t += rng.exponential(packets_per_second);
  }
  return out;
}

std::vector<Injection> uniform_traffic(std::size_t count, double duration_s,
                                       double size_bits,
                                       const PairChooser& choose, Rng& rng) {
  DRN_EXPECTS(duration_s > 0.0);
  std::vector<Injection> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double t =
        duration_s * static_cast<double>(i) / static_cast<double>(count);
    out.push_back(make_injection(t, size_bits, choose, rng));
  }
  return out;
}

}  // namespace drn::sim
