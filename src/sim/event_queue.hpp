// Deterministic discrete-event queue.
//
// Events are ordered by (time, kind priority, insertion sequence). The kind
// priority resolves simultaneity the way the physics requires: a transmission
// that ends at instant t must be processed before one that starts at t, so
// back-to-back transmissions by one sender neither overlap nor interfere
// with each other at the shared boundary.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/types.hpp"
#include "sim/packet.hpp"

namespace drn::sim {

/// Discriminates event payloads. Enumerator order IS the simultaneity
/// priority (lower value runs first at equal times).
enum class EventKind : std::uint8_t {
  kTransmitEnd = 0,
  kTimer = 1,
  kInject = 2,
  kTransmitStart = 3,
};

struct Event {
  double time_s = 0.0;
  EventKind kind = EventKind::kTimer;
  // Payload (union-by-convention; which fields are live depends on kind).
  std::uint64_t tx_id = 0;        // kTransmitStart / kTransmitEnd
  StationId station = kNoStation; // kTimer
  std::uint64_t cookie = 0;       // kTimer
  /// Station MAC generation that armed this timer; a timer whose station has
  /// been torn down (and possibly replaced) since is stale and is dropped
  /// instead of delivered to the new MAC.
  std::uint32_t generation = 0;   // kTimer
  Packet packet;                  // kInject
};

/// Min-queue of events with total, deterministic ordering.
class EventQueue {
 public:
  void push(Event e);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Requires a non-empty queue.
  [[nodiscard]] double next_time() const;

  /// Removes and returns the earliest event. Requires a non-empty queue.
  Event pop();

 private:
  struct Entry {
    Event event;
    std::uint64_t seq;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      // Two ordering comparisons: only bit-identical times reach the
      // kind/sequence tie-break that encodes the end-before-start
      // simultaneity rule, and the order is total (time, kind, sequence)
      // without ever testing floating-point equality.
      if (a.event.time_s > b.event.time_s) return true;
      if (b.event.time_s > a.event.time_s) return false;
      if (a.event.kind != b.event.kind) return a.event.kind > b.event.kind;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace drn::sim
