// Deterministic discrete-event queue.
//
// Events are ordered by (time, kind priority, insertion sequence). The kind
// priority resolves simultaneity the way the physics requires: a transmission
// that ends at instant t must be processed before one that starts at t, so
// back-to-back transmissions by one sender neither overlap nor interfere
// with each other at the shared boundary.
//
// Layout: the heap itself holds 24-byte items (time, a packed kind+sequence
// key, a slot index); the 32-byte POD Event header lives in a slot array
// recycled through a free list, and bulky payloads (the injected Packet)
// live in the simulator's EventPool, named by handle. Sifts therefore move
// small items and never copy packets.
//
// Cancellation is lazy: cancel(handle) tombstones the slot in O(1) and the
// dead heap item is discarded when it surfaces — except that the heap top is
// always kept live (pruned eagerly) so next_time() stays exact, and when
// tombstones outnumber live entries the heap is compacted in one O(n) pass.
// The pop ORDER is untouched by any of this: (time, kind, seq) is a total
// order with unique sequence numbers, so the surviving events pop in exactly
// the order they would have without cancellation.
#pragma once

#include <cstdint>
#include <optional>
#include <type_traits>
#include <vector>

#include "common/types.hpp"
#include "sim/event_handle.hpp"
#include "sim/event_pool.hpp"

namespace drn::sim {

/// Discriminates event payloads. Enumerator order IS the simultaneity
/// priority (lower value runs first at equal times).
enum class EventKind : std::uint8_t {
  kTransmitEnd = 0,
  kTimer = 1,
  kInject = 2,
  kTransmitStart = 3,
};

/// POD event header. Which union member is live depends on kind; the timer
/// fields (station, generation) sit outside the union so a kTimer event
/// carries station + generation + cookie at once.
struct Event {
  double time_s = 0.0;
  union {
    std::uint64_t tx_id = 0;  // kTransmitStart / kTransmitEnd
    std::uint64_t cookie;     // kTimer
    PacketHandle packet;      // kInject (payload in the owner's EventPool)
  };
  StationId station = kNoStation;  // kTimer
  /// Station MAC generation that armed this timer; a timer whose station has
  /// been torn down (and possibly replaced) since is stale and is dropped
  /// instead of delivered to the new MAC.
  std::uint32_t generation = 0;  // kTimer
  EventKind kind = EventKind::kTimer;
};

static_assert(std::is_trivially_copyable_v<Event>);
static_assert(sizeof(Event) <= 32, "Event must stay a slim POD header");

/// Min-queue of events with total, deterministic ordering and O(1) lazy
/// cancellation through generation-stamped handles.
class EventQueue {
 public:
  /// Enqueues `e`; the handle cancels exactly this entry (and nothing else,
  /// ever — see EventHandle).
  EventHandle push(Event e);

  /// Live (non-cancelled) entries.
  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest pending event. Requires a non-empty queue.
  [[nodiscard]] double next_time() const;

  /// Removes and returns the earliest event. Requires a non-empty queue.
  Event pop();

  /// Removes and returns the earliest event iff it is due at or before
  /// `t_s`; one top inspection serves both the bound test and the pop, so
  /// drain loops need no separate next_time()/pop() pair.
  std::optional<Event> pop_if_before(double t_s);

  /// Cancels the entry behind `h` if it is still pending. Returns whether it
  /// was (a stale, fired, or never-armed handle is a no-op).
  bool cancel(EventHandle h);

  /// True iff `h` names an entry still waiting in the queue.
  [[nodiscard]] bool pending(EventHandle h) const {
    return h.slot < slots_.size() && slots_[h.slot].live &&
           slots_[h.slot].generation == h.generation;
  }

  // -- introspection (tests, benches) ---------------------------------------

  /// Heap entries including tombstones awaiting compaction.
  [[nodiscard]] std::size_t heap_entries() const { return heap_.size(); }
  /// High-water mark of heap entries (live + tombstones).
  [[nodiscard]] std::size_t peak_entries() const { return peak_entries_; }
  /// High-water mark of queue memory: peak heap items plus the slot array
  /// (slots only grow, so their current count is their peak).
  [[nodiscard]] std::size_t peak_bytes() const;
  /// Completed O(n) tombstone-compaction passes.
  [[nodiscard]] std::uint64_t compactions() const { return compactions_; }

 private:
  /// What the heap actually sifts: 24 bytes, no payload. `key` packs the
  /// kind priority above the insertion sequence, so the (kind, seq)
  /// tie-break is one integer compare.
  struct Item {
    double time_s;
    std::uint64_t key;  // (kind << 62) | seq
    std::uint32_t slot;
  };

  struct Slot {
    Event event;
    std::uint32_t generation = 0;
    std::uint32_t next_free = EventHandle::kInvalidSlot;
    bool live = false;
  };

  static bool earlier(const Item& a, const Item& b) {
    // Only bit-identical times reach the integer tie-break (which encodes
    // the end-before-start simultaneity rule); the order is total without
    // ever testing floating-point equality.
    if (a.time_s < b.time_s) return true;
    if (b.time_s < a.time_s) return false;
    return a.key < b.key;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  /// Removes heap_[i] in O(log n), preserving the heap property.
  void remove_item(std::size_t i);
  /// Discards tombstoned items sitting on top so heap_[0] (when the queue is
  /// non-empty) is always live and next_time() needs no search.
  void prune_top();
  /// One O(n) pass dropping every tombstone, then a bottom-up re-heapify.
  void compact();

  /// Tombstones the slot: bumps its generation (staling every handle) and
  /// takes it out of the live count. The heap item stays until pruned,
  /// popped over, or compacted away.
  void kill_slot(std::uint32_t slot);
  /// Returns a slot whose heap item is gone to the free list.
  void recycle_slot(std::uint32_t slot);

  std::vector<Item> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = EventHandle::kInvalidSlot;
  std::size_t live_ = 0;
  std::size_t dead_ = 0;  // tombstones still occupying heap items
  std::uint64_t next_seq_ = 0;
  std::size_t peak_entries_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace drn::sim
