// Generation-stamped handle to a pending entry in the event queue.
//
// A handle names a queue slot plus the generation the slot had when the
// entry was pushed. The slot index is recycled after the entry leaves the
// queue (fired or cancelled) and the generation is bumped at that moment,
// so a stale handle can never alias a later entry: cancel() on it is a
// harmless no-op and pending() reports false. This is what makes real
// cancellation safe to sprinkle through MAC and dynamics code — holding a
// handle past its event's death costs nothing.
#pragma once

#include <cstdint>

namespace drn::sim {

struct EventHandle {
  static constexpr std::uint32_t kInvalidSlot = 0xffffffffu;

  std::uint32_t slot = kInvalidSlot;
  std::uint32_t generation = 0;

  /// False for a default-constructed (never-armed) handle. True says only
  /// that the handle once named an entry, not that the entry is still
  /// pending — ask EventQueue::pending for that.
  [[nodiscard]] bool armed() const { return slot != kInvalidSlot; }

  friend bool operator==(const EventHandle& a, const EventHandle& b) {
    return a.slot == b.slot && a.generation == b.generation;
  }
};

}  // namespace drn::sim
