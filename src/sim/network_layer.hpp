// The network layer: Section 6.2 forwarding, built over the station host.
//
// NetworkLayer owns the packet-id namespace for injected traffic, the
// installed Router, and the hop-by-hop forwarding decisions: on a decoded
// unicast hop it either counts an end-to-end delivery or consults the
// router and re-enqueues the packet at the receiver's MAC. It touches
// stations only through StationHost (activation state + hook dispatch) and
// never sees interference or reception records — the medium reports decode
// outcomes upward through the Simulator facade.
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.hpp"
#include "sim/metrics.hpp"
#include "sim/packet.hpp"
#include "sim/station_host.hpp"

namespace drn::sim {

/// Chooses the next hop for a packet at `at` destined for `dst`. Returning
/// kNoStation drops the packet (no route).
using Router = std::function<StationId(StationId at, StationId dst)>;

/// Section 6.2 forwarding: router, end-to-end delivery accounting, and the
/// injected-traffic packet-id namespace.
class NetworkLayer {
 public:
  NetworkLayer(StationHost& host, Metrics& metrics);

  NetworkLayer(const NetworkLayer&) = delete;
  NetworkLayer& operator=(const NetworkLayer&) = delete;

  /// Installs the next-hop chooser. Default: one-hop direct to destination.
  void set_router(Router router);

  /// A packet enters the network at its source (the inject event fired).
  /// Assigns an id from the shared namespace if the caller left it 0 and
  /// advances the generator past caller-chosen ids so the two can never
  /// collide and corrupt exactly-once accounting.
  void admit(Packet packet, double now_s);

  /// A packet decoded cleanly at `at`: end-to-end delivery if `at` is the
  /// destination, otherwise one more hop via the router.
  void deliver(const Packet& packet, StationId at, double now_s);

  /// Hands `packet` to `station`'s MAC with the router's next-hop choice
  /// (drops it if the station is down or no route exists).
  void enqueue_at(StationId station, const Packet& packet);

 private:
  StationHost& host_;
  Metrics& metrics_;
  Router router_;
  PacketId next_packet_id_ = 1;
};

}  // namespace drn::sim
