// Shared vocabulary types.
//
// Quantities are plain doubles in SI units (watts, hertz, seconds, metres,
// bits/second); variable and member names carry the unit. Linear power ratios
// are dimensionless doubles; decibel values only appear at API boundaries via
// the radio/units.hpp converters.
#pragma once

#include <cstdint>
#include <limits>

namespace drn {

/// Index of a station in a Placement / PropagationMatrix. Stations are dense
/// 0..M-1.
using StationId = std::uint32_t;

/// Sentinel for "no station" (e.g. unreachable routing destination).
inline constexpr StationId kNoStation = std::numeric_limits<StationId>::max();

/// Pseudo-address for broadcast transmissions (e.g. discovery beacons):
/// every station in range attempts reception.
inline constexpr StationId kBroadcast =
    std::numeric_limits<StationId>::max() - 1;

/// Unique id of a packet within one simulation run.
using PacketId = std::uint64_t;

}  // namespace drn
