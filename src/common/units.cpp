#include "common/units.hpp"

#include <cstdio>

namespace drn::units {

namespace {

std::string with_unit(double value, const char* unit) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g %s", value, unit);
  return buf;
}

}  // namespace

std::string format(Seconds q) { return with_unit(q.value(), "s"); }
std::string format(Meters q) { return with_unit(q.value(), "m"); }
std::string format(Watts q) { return with_unit(q.value(), "W"); }
std::string format(Milliwatts q) { return with_unit(q.value(), "mW"); }
std::string format(LinearGain q) { return with_unit(q.value(), "x"); }
std::string format(Decibels q) { return with_unit(q.value(), "dB"); }
std::string format(DecibelMilliwatts q) { return with_unit(q.value(), "dBm"); }
std::string format(Hertz q) { return with_unit(q.value(), "Hz"); }
std::string format(BitsPerSecond q) { return with_unit(q.value(), "bit/s"); }
std::string format(Bits q) { return with_unit(q.value(), "bit"); }
std::string format(Slots q) { return with_unit(q.value(), "slots"); }

}  // namespace drn::units
