// Deterministic pseudo-random number generation.
//
// All randomness in this library flows from explicit seeds through these
// generators, so simulations are bit-reproducible across platforms and
// standard-library versions (the C++ standard does not pin down the output of
// std::uniform_real_distribution and friends).
//
// splitmix64 is used both for seeding and as the schedule hash (Section 7.1 of
// the paper hashes slot start times); xoshiro256** is the workhorse stream
// generator. References: Steele/Lea/Flood (splitmix64), Blackman/Vigna
// (xoshiro256**); both are public-domain algorithms re-implemented here.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

#include "common/expects.hpp"

namespace drn {

/// One splitmix64 step: returns the output for state `x` after advancing it.
/// Deterministic, full-period over 2^64, and statistically strong enough to
/// decorrelate consecutive slot indices — which is all the schedule needs.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit hash of `v` under `seed` (two splitmix64 rounds). This is
/// the hash function behind Schedule: h(seed, slot_index).
[[nodiscard]] constexpr std::uint64_t hash_u64(std::uint64_t seed,
                                               std::uint64_t v) {
  std::uint64_t x = seed ^ (v * 0x9e3779b97f4a7c15ULL);
  (void)splitmix64_next(x);
  return splitmix64_next(x);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from splitmix64(seed), per Vigna's
  /// recommendation; any seed (including 0) yields a valid non-zero state.
  explicit constexpr Rng(std::uint64_t seed = 0) {
    std::uint64_t x = seed;
    for (auto& w : state_) w = splitmix64_next(x);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  [[nodiscard]] double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    DRN_EXPECTS(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be positive. Uses rejection sampling so
  /// the result is exactly uniform.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n) {
    DRN_EXPECTS(n > 0);
    // Rejection threshold: largest multiple of n that fits in 2^64.
    const std::uint64_t limit = (~std::uint64_t{0} / n) * n;
    std::uint64_t v = (*this)();
    while (v >= limit) v = (*this)();
    return v % n;
  }

  /// Bernoulli trial with success probability p in [0, 1].
  [[nodiscard]] bool bernoulli(double p) {
    DRN_EXPECTS(p >= 0.0 && p <= 1.0);
    return uniform() < p;
  }

  /// Exponential variate with the given rate (mean 1/rate). Used for Poisson
  /// packet arrival processes.
  [[nodiscard]] double exponential(double rate) {
    DRN_EXPECTS(rate > 0.0);
    // 1 - uniform() is in (0, 1], so the log is finite.
    return -std::log(1.0 - uniform()) / rate;
  }

  /// Standard normal variate (Box–Muller, one branch). Used for log-normal
  /// shadowing and clock measurement noise.
  [[nodiscard]] double normal() {
    const double u1 = 1.0 - uniform();  // (0, 1]
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Derives an independent sub-stream: a fresh Rng seeded by hashing
  /// (this stream's next output, tag). Lets one master seed fan out to many
  /// decorrelated per-station streams.
  [[nodiscard]] Rng split(std::uint64_t tag) {
    return Rng(hash_u64((*this)(), tag));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace drn
