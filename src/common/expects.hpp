// Lightweight contract checks in the spirit of the GSL's Expects/Ensures.
//
// DRN_EXPECTS guards preconditions on public API boundaries; DRN_ENSURES guards
// postconditions. Both throw drn::ContractViolation (so misuse is testable and
// never silently corrupts a simulation) and are kept enabled in all build
// types: every check in this library is O(1) and off the per-event hot path.
#pragma once

#include <stdexcept>
#include <string>

namespace drn {

/// Thrown when a function's precondition or postcondition is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace drn

#define DRN_EXPECTS(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::drn::detail::contract_fail("precondition", #expr, __FILE__, __LINE__); \
  } while (false)

#define DRN_ENSURES(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::drn::detail::contract_fail("postcondition", #expr, __FILE__, __LINE__); \
  } while (false)
