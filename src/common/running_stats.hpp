// Streaming mean/variance/min/max accumulator (Welford's algorithm).
// Header-only so both the simulator's metrics and the analysis module can use
// it without a dependency between them.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/expects.hpp"

namespace drn {

/// Accumulates count, mean, variance, min and max of a stream of doubles in
/// O(1) memory, numerically stably.
class RunningStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }

  /// Mean of the samples. Requires at least one sample.
  [[nodiscard]] double mean() const {
    DRN_EXPECTS(count_ > 0);
    return mean_;
  }

  /// Unbiased sample variance. Requires at least two samples.
  [[nodiscard]] double variance() const {
    DRN_EXPECTS(count_ > 1);
    return m2_ / static_cast<double>(count_ - 1);
  }

  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  [[nodiscard]] double min() const {
    DRN_EXPECTS(count_ > 0);
    return min_;
  }

  [[nodiscard]] double max() const {
    DRN_EXPECTS(count_ > 0);
    return max_;
  }

  /// Sum of all samples.
  [[nodiscard]] double sum() const {
    return mean_ * static_cast<double>(count_);
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace drn
