// Zero-overhead dimensional-analysis layer for the paper's physics.
//
// Every headline quantity in the paper is dimensional — the SINR threshold
// beta * (2^(C/W) - 1) of Eq. 3-6, the S/N = 1/(eta ln M) scaling law of
// Eq. 15, the W/C processing gain of Section 6 — and a silent dB-vs-linear,
// power-vs-gain or seconds-vs-slots mixup produces plausible-but-wrong curves
// that no runtime test reliably catches. Each type below wraps exactly one
// double (so codegen is identical to raw doubles) and permits only the
// dimensionally valid operations:
//
//   Watts / Watts            -> LinearGain        (an SINR, Eq. 5-6)
//   Watts * LinearGain       -> Watts             (received power S = P h^2)
//   Hertz / BitsPerSecond    -> LinearGain        (processing gain W/C, Sec 6)
//   Bits  / BitsPerSecond    -> Seconds           (packet airtime)
//   Slots * Seconds          -> Seconds           (schedule position, Sec 7)
//   Decibels::to_linear()    -> LinearGain        (explicit, at the boundary)
//   LinearGain::to_db()      -> Decibels          (explicit, at the boundary)
//
// and rejects the invalid ones at compile time: Decibels + Watts, dBm + dBm,
// Meters / Seconds, Watts * Watts, implicit wrap/unwrap of raw doubles.
// tests/static/ keeps a probe per rejected operation under try_compile, so
// the "does not compile" contract is itself tested.
//
// Construction from a raw double is always explicit and extraction is always
// a spelled-out .value(): the boundary where unit discipline starts and ends
// is grep-able. Equality operators are deliberately absent — exact == on a
// computed physical quantity is almost always a bug (see drn_lint float-eq);
// compare with <, <=, >, >= or extract values and use a tolerance.
#pragma once

#include <cmath>
#include <string>

#include "common/expects.hpp"

namespace drn::units {

class LinearGain;
class Decibels;
class DecibelMilliwatts;
class Milliwatts;
class Watts;
class Seconds;
class Bits;
class BitsPerSecond;

/// Time in seconds: slot durations, airtimes, clock readings (Section 7).
class Seconds {
 public:
  constexpr Seconds() = default;
  explicit constexpr Seconds(double value) : value_(value) {}
  [[nodiscard]] constexpr double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Distance in metres: ranges r, region radii, the characteristic length
/// R0 = 1/sqrt(sigma) of Section 4.
class Meters {
 public:
  constexpr Meters() = default;
  explicit constexpr Meters(double value) : value_(value) {}
  [[nodiscard]] constexpr double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Linear power in watts: transmit power P, received signal S, noise and
/// interference N of Eq. 5-6.
class Watts {
 public:
  constexpr Watts() = default;
  explicit constexpr Watts(double value) : value_(value) {}
  [[nodiscard]] constexpr double value() const { return value_; }

  /// Watts -> milliwatts (exact scale by 1000).
  [[nodiscard]] constexpr Milliwatts to_milliwatts() const;
  /// Watts -> absolute power in dBm. Requires positive power.
  [[nodiscard]] DecibelMilliwatts to_dbm() const;

 private:
  double value_ = 0.0;
};

/// Linear power in milliwatts — the CLI-facing unit; convert explicitly.
class Milliwatts {
 public:
  constexpr Milliwatts() = default;
  explicit constexpr Milliwatts(double value) : value_(value) {}
  [[nodiscard]] constexpr double value() const { return value_; }

  /// Milliwatts -> watts (exact scale by 1/1000).
  [[nodiscard]] constexpr Watts to_watts() const;

 private:
  double value_ = 0.0;
};

/// Dimensionless linear power ratio: path gains h^2 (Section 3.3), SINR
/// (Eq. 5-6), processing gain W/C (Section 6), margins in linear form.
class LinearGain {
 public:
  constexpr LinearGain() = default;
  explicit constexpr LinearGain(double value) : value_(value) {}
  [[nodiscard]] constexpr double value() const { return value_; }

  /// Linear ratio -> decibels, 10 log10(ratio). Requires a positive ratio.
  [[nodiscard]] Decibels to_db() const;

 private:
  double value_ = 0.0;
};

/// Relative power ratio in decibels: the 5 dB margin beta of Eq. 4, shadowing
/// sigma, the "6 dB per doubling of distance" of Section 3.3. Never added to
/// a linear quantity; convert explicitly with to_linear().
class Decibels {
 public:
  constexpr Decibels() = default;
  explicit constexpr Decibels(double value) : value_(value) {}
  [[nodiscard]] constexpr double value() const { return value_; }

  /// Decibels -> linear power ratio, 10^(dB/10).
  [[nodiscard]] LinearGain to_linear() const;

 private:
  double value_ = 0.0;
};

/// Absolute power in decibels relative to one milliwatt. An absolute level,
/// not a ratio: dBm + dBm does not exist; dBm +/- dB and dBm - dBm -> dB do.
class DecibelMilliwatts {
 public:
  constexpr DecibelMilliwatts() = default;
  explicit constexpr DecibelMilliwatts(double value) : value_(value) {}
  [[nodiscard]] constexpr double value() const { return value_; }

  /// dBm -> watts.
  [[nodiscard]] Watts to_watts() const;

 private:
  double value_ = 0.0;
};

/// Bandwidth in hertz: the spread-spectrum bandwidth W of Eq. 3.
class Hertz {
 public:
  constexpr Hertz() = default;
  explicit constexpr Hertz(double value) : value_(value) {}
  [[nodiscard]] constexpr double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Data rate in bits/second: the channel capacity C of Eq. 3.
class BitsPerSecond {
 public:
  constexpr BitsPerSecond() = default;
  explicit constexpr BitsPerSecond(double value) : value_(value) {}
  [[nodiscard]] constexpr double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Packet length in bits.
class Bits {
 public:
  constexpr Bits() = default;
  explicit constexpr Bits(double value) : value_(value) {}
  [[nodiscard]] constexpr double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Dimensionless count of schedule slots (Section 7): a position or wait in
/// the slot grid, distinct from the seconds it spans until multiplied by a
/// slot duration.
class Slots {
 public:
  constexpr Slots() = default;
  explicit constexpr Slots(double value) : value_(value) {}
  [[nodiscard]] constexpr double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// --- Seconds -----------------------------------------------------------

[[nodiscard]] constexpr Seconds operator+(Seconds a, Seconds b) {
  return Seconds{a.value() + b.value()};
}
[[nodiscard]] constexpr Seconds operator-(Seconds a, Seconds b) {
  return Seconds{a.value() - b.value()};
}
[[nodiscard]] constexpr Seconds operator-(Seconds a) {
  return Seconds{-a.value()};
}
[[nodiscard]] constexpr Seconds operator*(Seconds a, double k) {
  return Seconds{a.value() * k};
}
[[nodiscard]] constexpr Seconds operator*(double k, Seconds a) {
  return Seconds{k * a.value()};
}
[[nodiscard]] constexpr Seconds operator/(Seconds a, double k) {
  return Seconds{a.value() / k};
}
[[nodiscard]] constexpr double operator/(Seconds a, Seconds b) {
  return a.value() / b.value();
}
[[nodiscard]] constexpr bool operator<(Seconds a, Seconds b) {
  return a.value() < b.value();
}
[[nodiscard]] constexpr bool operator<=(Seconds a, Seconds b) {
  return a.value() <= b.value();
}
[[nodiscard]] constexpr bool operator>(Seconds a, Seconds b) {
  return a.value() > b.value();
}
[[nodiscard]] constexpr bool operator>=(Seconds a, Seconds b) {
  return a.value() >= b.value();
}

// --- Meters ------------------------------------------------------------

[[nodiscard]] constexpr Meters operator+(Meters a, Meters b) {
  return Meters{a.value() + b.value()};
}
[[nodiscard]] constexpr Meters operator-(Meters a, Meters b) {
  return Meters{a.value() - b.value()};
}
[[nodiscard]] constexpr Meters operator*(Meters a, double k) {
  return Meters{a.value() * k};
}
[[nodiscard]] constexpr Meters operator*(double k, Meters a) {
  return Meters{k * a.value()};
}
[[nodiscard]] constexpr Meters operator/(Meters a, double k) {
  return Meters{a.value() / k};
}
[[nodiscard]] constexpr double operator/(Meters a, Meters b) {
  return a.value() / b.value();
}
[[nodiscard]] constexpr bool operator<(Meters a, Meters b) {
  return a.value() < b.value();
}
[[nodiscard]] constexpr bool operator<=(Meters a, Meters b) {
  return a.value() <= b.value();
}
[[nodiscard]] constexpr bool operator>(Meters a, Meters b) {
  return a.value() > b.value();
}
[[nodiscard]] constexpr bool operator>=(Meters a, Meters b) {
  return a.value() >= b.value();
}

// --- Watts / Milliwatts / LinearGain ------------------------------------

[[nodiscard]] constexpr Watts operator+(Watts a, Watts b) {
  return Watts{a.value() + b.value()};
}
[[nodiscard]] constexpr Watts operator-(Watts a, Watts b) {
  return Watts{a.value() - b.value()};
}
[[nodiscard]] constexpr Watts operator*(Watts a, double k) {
  return Watts{a.value() * k};
}
[[nodiscard]] constexpr Watts operator*(double k, Watts a) {
  return Watts{k * a.value()};
}
[[nodiscard]] constexpr Watts operator/(Watts a, double k) {
  return Watts{a.value() / k};
}
/// A power ratio is an SINR / relative level (Eq. 5-6) — never a power.
[[nodiscard]] constexpr LinearGain operator/(Watts a, Watts b) {
  return LinearGain{a.value() / b.value()};
}
/// Received power S = P * h^2 (Section 3.3).
[[nodiscard]] constexpr Watts operator*(Watts p, LinearGain g) {
  return Watts{p.value() * g.value()};
}
[[nodiscard]] constexpr Watts operator*(LinearGain g, Watts p) {
  return Watts{g.value() * p.value()};
}
[[nodiscard]] constexpr Watts operator/(Watts p, LinearGain g) {
  return Watts{p.value() / g.value()};
}
[[nodiscard]] constexpr bool operator<(Watts a, Watts b) {
  return a.value() < b.value();
}
[[nodiscard]] constexpr bool operator<=(Watts a, Watts b) {
  return a.value() <= b.value();
}
[[nodiscard]] constexpr bool operator>(Watts a, Watts b) {
  return a.value() > b.value();
}
[[nodiscard]] constexpr bool operator>=(Watts a, Watts b) {
  return a.value() >= b.value();
}

[[nodiscard]] constexpr Milliwatts operator+(Milliwatts a, Milliwatts b) {
  return Milliwatts{a.value() + b.value()};
}
[[nodiscard]] constexpr Milliwatts operator-(Milliwatts a, Milliwatts b) {
  return Milliwatts{a.value() - b.value()};
}
[[nodiscard]] constexpr Milliwatts operator*(Milliwatts a, double k) {
  return Milliwatts{a.value() * k};
}
[[nodiscard]] constexpr Milliwatts operator*(double k, Milliwatts a) {
  return Milliwatts{k * a.value()};
}
[[nodiscard]] constexpr Milliwatts operator/(Milliwatts a, double k) {
  return Milliwatts{a.value() / k};
}
[[nodiscard]] constexpr double operator/(Milliwatts a, Milliwatts b) {
  return a.value() / b.value();
}
[[nodiscard]] constexpr bool operator<(Milliwatts a, Milliwatts b) {
  return a.value() < b.value();
}
[[nodiscard]] constexpr bool operator<=(Milliwatts a, Milliwatts b) {
  return a.value() <= b.value();
}
[[nodiscard]] constexpr bool operator>(Milliwatts a, Milliwatts b) {
  return a.value() > b.value();
}
[[nodiscard]] constexpr bool operator>=(Milliwatts a, Milliwatts b) {
  return a.value() >= b.value();
}

/// Cascaded gains multiply in linear space (Section 3.3).
[[nodiscard]] constexpr LinearGain operator*(LinearGain a, LinearGain b) {
  return LinearGain{a.value() * b.value()};
}
[[nodiscard]] constexpr LinearGain operator/(LinearGain a, LinearGain b) {
  return LinearGain{a.value() / b.value()};
}
[[nodiscard]] constexpr LinearGain operator*(LinearGain a, double k) {
  return LinearGain{a.value() * k};
}
[[nodiscard]] constexpr LinearGain operator*(double k, LinearGain a) {
  return LinearGain{k * a.value()};
}
[[nodiscard]] constexpr LinearGain operator/(LinearGain a, double k) {
  return LinearGain{a.value() / k};
}
[[nodiscard]] constexpr bool operator<(LinearGain a, LinearGain b) {
  return a.value() < b.value();
}
[[nodiscard]] constexpr bool operator<=(LinearGain a, LinearGain b) {
  return a.value() <= b.value();
}
[[nodiscard]] constexpr bool operator>(LinearGain a, LinearGain b) {
  return a.value() > b.value();
}
[[nodiscard]] constexpr bool operator>=(LinearGain a, LinearGain b) {
  return a.value() >= b.value();
}

// --- Decibels / DecibelMilliwatts ---------------------------------------

[[nodiscard]] constexpr Decibels operator+(Decibels a, Decibels b) {
  return Decibels{a.value() + b.value()};
}
[[nodiscard]] constexpr Decibels operator-(Decibels a, Decibels b) {
  return Decibels{a.value() - b.value()};
}
[[nodiscard]] constexpr Decibels operator-(Decibels a) {
  return Decibels{-a.value()};
}
[[nodiscard]] constexpr Decibels operator*(Decibels a, double k) {
  return Decibels{a.value() * k};
}
[[nodiscard]] constexpr Decibels operator*(double k, Decibels a) {
  return Decibels{k * a.value()};
}
[[nodiscard]] constexpr Decibels operator/(Decibels a, double k) {
  return Decibels{a.value() / k};
}
[[nodiscard]] constexpr double operator/(Decibels a, Decibels b) {
  return a.value() / b.value();
}
[[nodiscard]] constexpr bool operator<(Decibels a, Decibels b) {
  return a.value() < b.value();
}
[[nodiscard]] constexpr bool operator<=(Decibels a, Decibels b) {
  return a.value() <= b.value();
}
[[nodiscard]] constexpr bool operator>(Decibels a, Decibels b) {
  return a.value() > b.value();
}
[[nodiscard]] constexpr bool operator>=(Decibels a, Decibels b) {
  return a.value() >= b.value();
}

/// An absolute level shifted by a relative gain stays absolute.
[[nodiscard]] constexpr DecibelMilliwatts operator+(DecibelMilliwatts a,
                                                    Decibels b) {
  return DecibelMilliwatts{a.value() + b.value()};
}
[[nodiscard]] constexpr DecibelMilliwatts operator+(Decibels a,
                                                    DecibelMilliwatts b) {
  return DecibelMilliwatts{a.value() + b.value()};
}
[[nodiscard]] constexpr DecibelMilliwatts operator-(DecibelMilliwatts a,
                                                    Decibels b) {
  return DecibelMilliwatts{a.value() - b.value()};
}
/// The difference of two absolute levels is a relative gain.
[[nodiscard]] constexpr Decibels operator-(DecibelMilliwatts a,
                                           DecibelMilliwatts b) {
  return Decibels{a.value() - b.value()};
}
[[nodiscard]] constexpr bool operator<(DecibelMilliwatts a,
                                       DecibelMilliwatts b) {
  return a.value() < b.value();
}
[[nodiscard]] constexpr bool operator<=(DecibelMilliwatts a,
                                        DecibelMilliwatts b) {
  return a.value() <= b.value();
}
[[nodiscard]] constexpr bool operator>(DecibelMilliwatts a,
                                       DecibelMilliwatts b) {
  return a.value() > b.value();
}
[[nodiscard]] constexpr bool operator>=(DecibelMilliwatts a,
                                        DecibelMilliwatts b) {
  return a.value() >= b.value();
}

// --- Hertz / BitsPerSecond / Bits ---------------------------------------

[[nodiscard]] constexpr Hertz operator+(Hertz a, Hertz b) {
  return Hertz{a.value() + b.value()};
}
[[nodiscard]] constexpr Hertz operator-(Hertz a, Hertz b) {
  return Hertz{a.value() - b.value()};
}
[[nodiscard]] constexpr Hertz operator*(Hertz a, double k) {
  return Hertz{a.value() * k};
}
[[nodiscard]] constexpr Hertz operator*(double k, Hertz a) {
  return Hertz{k * a.value()};
}
[[nodiscard]] constexpr Hertz operator/(Hertz a, double k) {
  return Hertz{a.value() / k};
}
[[nodiscard]] constexpr double operator/(Hertz a, Hertz b) {
  return a.value() / b.value();
}
/// Processing gain W/C (Section 6): how far the signal is spread.
[[nodiscard]] constexpr LinearGain operator/(Hertz w, BitsPerSecond c);
[[nodiscard]] constexpr bool operator<(Hertz a, Hertz b) {
  return a.value() < b.value();
}
[[nodiscard]] constexpr bool operator<=(Hertz a, Hertz b) {
  return a.value() <= b.value();
}
[[nodiscard]] constexpr bool operator>(Hertz a, Hertz b) {
  return a.value() > b.value();
}
[[nodiscard]] constexpr bool operator>=(Hertz a, Hertz b) {
  return a.value() >= b.value();
}

[[nodiscard]] constexpr BitsPerSecond operator+(BitsPerSecond a,
                                                BitsPerSecond b) {
  return BitsPerSecond{a.value() + b.value()};
}
[[nodiscard]] constexpr BitsPerSecond operator-(BitsPerSecond a,
                                                BitsPerSecond b) {
  return BitsPerSecond{a.value() - b.value()};
}
[[nodiscard]] constexpr BitsPerSecond operator*(BitsPerSecond a, double k) {
  return BitsPerSecond{a.value() * k};
}
[[nodiscard]] constexpr BitsPerSecond operator*(double k, BitsPerSecond a) {
  return BitsPerSecond{k * a.value()};
}
[[nodiscard]] constexpr BitsPerSecond operator/(BitsPerSecond a, double k) {
  return BitsPerSecond{a.value() / k};
}
[[nodiscard]] constexpr double operator/(BitsPerSecond a, BitsPerSecond b) {
  return a.value() / b.value();
}
/// Spectral rate fraction C/W of Eq. 3-4 (bits/s/Hz), dimensionless.
[[nodiscard]] constexpr double operator/(BitsPerSecond c, Hertz w) {
  return c.value() / w.value();
}
[[nodiscard]] constexpr bool operator<(BitsPerSecond a, BitsPerSecond b) {
  return a.value() < b.value();
}
[[nodiscard]] constexpr bool operator<=(BitsPerSecond a, BitsPerSecond b) {
  return a.value() <= b.value();
}
[[nodiscard]] constexpr bool operator>(BitsPerSecond a, BitsPerSecond b) {
  return a.value() > b.value();
}
[[nodiscard]] constexpr bool operator>=(BitsPerSecond a, BitsPerSecond b) {
  return a.value() >= b.value();
}

constexpr LinearGain operator/(Hertz w, BitsPerSecond c) {
  return LinearGain{w.value() / c.value()};
}
/// Inverse of the processing-gain ratio: the raw chip-budget data rate
/// C = W / G a spread of gain G leaves over bandwidth W (Sec. 6).
[[nodiscard]] constexpr BitsPerSecond operator/(Hertz w, LinearGain g) {
  return BitsPerSecond{w.value() / g.value()};
}

[[nodiscard]] constexpr Bits operator+(Bits a, Bits b) {
  return Bits{a.value() + b.value()};
}
[[nodiscard]] constexpr Bits operator-(Bits a, Bits b) {
  return Bits{a.value() - b.value()};
}
[[nodiscard]] constexpr Bits operator*(Bits a, double k) {
  return Bits{a.value() * k};
}
[[nodiscard]] constexpr Bits operator*(double k, Bits a) {
  return Bits{k * a.value()};
}
[[nodiscard]] constexpr double operator/(Bits a, Bits b) {
  return a.value() / b.value();
}
/// Packet airtime: length over rate.
[[nodiscard]] constexpr Seconds operator/(Bits n, BitsPerSecond c) {
  return Seconds{n.value() / c.value()};
}
/// Rate needed to move `n` bits in a given time.
[[nodiscard]] constexpr BitsPerSecond operator/(Bits n, Seconds t) {
  return BitsPerSecond{n.value() / t.value()};
}
/// Bits moved at a rate over a duration.
[[nodiscard]] constexpr Bits operator*(BitsPerSecond c, Seconds t) {
  return Bits{c.value() * t.value()};
}
[[nodiscard]] constexpr Bits operator*(Seconds t, BitsPerSecond c) {
  return Bits{t.value() * c.value()};
}
[[nodiscard]] constexpr bool operator<(Bits a, Bits b) {
  return a.value() < b.value();
}
[[nodiscard]] constexpr bool operator<=(Bits a, Bits b) {
  return a.value() <= b.value();
}
[[nodiscard]] constexpr bool operator>(Bits a, Bits b) {
  return a.value() > b.value();
}
[[nodiscard]] constexpr bool operator>=(Bits a, Bits b) {
  return a.value() >= b.value();
}

// --- Slots --------------------------------------------------------------

[[nodiscard]] constexpr Slots operator+(Slots a, Slots b) {
  return Slots{a.value() + b.value()};
}
[[nodiscard]] constexpr Slots operator-(Slots a, Slots b) {
  return Slots{a.value() - b.value()};
}
[[nodiscard]] constexpr Slots operator*(Slots a, double k) {
  return Slots{a.value() * k};
}
[[nodiscard]] constexpr Slots operator*(double k, Slots a) {
  return Slots{k * a.value()};
}
[[nodiscard]] constexpr double operator/(Slots a, Slots b) {
  return a.value() / b.value();
}
/// A slot count times a slot duration is a span of time (Section 7).
[[nodiscard]] constexpr Seconds operator*(Slots n, Seconds slot) {
  return Seconds{n.value() * slot.value()};
}
[[nodiscard]] constexpr Seconds operator*(Seconds slot, Slots n) {
  return Seconds{slot.value() * n.value()};
}
[[nodiscard]] constexpr bool operator<(Slots a, Slots b) {
  return a.value() < b.value();
}
[[nodiscard]] constexpr bool operator<=(Slots a, Slots b) {
  return a.value() <= b.value();
}
[[nodiscard]] constexpr bool operator>(Slots a, Slots b) {
  return a.value() > b.value();
}
[[nodiscard]] constexpr bool operator>=(Slots a, Slots b) {
  return a.value() >= b.value();
}

// --- Explicit conversions ------------------------------------------------
//
// The only bridges between the decibel and linear worlds. Formulas are
// bit-identical to the historical radio/units.hpp helpers so migrating a
// call site never changes a result.

inline Decibels LinearGain::to_db() const {
  DRN_EXPECTS(value_ > 0.0);
  return Decibels{10.0 * std::log10(value_)};
}

inline LinearGain Decibels::to_linear() const {
  return LinearGain{std::pow(10.0, value_ / 10.0)};
}

constexpr Milliwatts Watts::to_milliwatts() const {
  return Milliwatts{value_ * 1.0e3};
}

constexpr Watts Milliwatts::to_watts() const { return Watts{value_ * 1.0e-3}; }

inline DecibelMilliwatts Watts::to_dbm() const {
  DRN_EXPECTS(value_ > 0.0);
  return DecibelMilliwatts{10.0 * std::log10(value_) + 30.0};
}

inline Watts DecibelMilliwatts::to_watts() const {
  return Watts{std::pow(10.0, (value_ - 30.0) / 10.0)};
}

// --- Formatting (units.cpp) ----------------------------------------------
//
// Human-readable "value unit" strings for reports and diagnostics; the
// simulator's machine outputs stay raw doubles.

[[nodiscard]] std::string format(Seconds q);
[[nodiscard]] std::string format(Meters q);
[[nodiscard]] std::string format(Watts q);
[[nodiscard]] std::string format(Milliwatts q);
[[nodiscard]] std::string format(LinearGain q);
[[nodiscard]] std::string format(Decibels q);
[[nodiscard]] std::string format(DecibelMilliwatts q);
[[nodiscard]] std::string format(Hertz q);
[[nodiscard]] std::string format(BitsPerSecond q);
[[nodiscard]] std::string format(Bits q);
[[nodiscard]] std::string format(Slots q);

}  // namespace drn::units
