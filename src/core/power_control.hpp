// Transmit power control (Section 6.1).
//
// The paper's algorithm: "transmit with sufficient power to deliver a
// constant pre-determined amount of power to the intended receiver." This
// keeps the system-wide power density constant as local station density
// varies, so the Section-4 SNR analysis keeps holding, and it collapses the
// variance of received SNRs (bench A2 measures exactly that).
#pragma once

namespace drn::core {

class PowerControl {
 public:
  /// Controlled mode: power = target_received_w / gain, clamped to
  /// max_power_w.
  PowerControl(double target_received_w, double max_power_w);

  /// Uncontrolled mode: every transmission uses `power_w` (the Section 4
  /// "all transmissions at the same power level" assumption; ablation A2).
  static PowerControl fixed(double power_w);

  /// Transmit power to use toward a receiver reached with `gain_to_receiver`.
  [[nodiscard]] double transmit_power_w(double gain_to_receiver) const;

  /// True iff the target received power is achievable within the power limit.
  [[nodiscard]] bool reachable(double gain_to_receiver) const;

  [[nodiscard]] bool controlled() const { return controlled_; }
  [[nodiscard]] double target_received_w() const { return target_received_w_; }
  [[nodiscard]] double max_power_w() const { return max_power_w_; }

 private:
  PowerControl(bool controlled, double target, double max_power);

  bool controlled_;
  double target_received_w_;
  double max_power_w_;
};

}  // namespace drn::core
