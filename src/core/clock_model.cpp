#include "core/clock_model.hpp"

#include <cmath>

#include "common/expects.hpp"

namespace drn::core {

ClockModel::ClockModel(double a, double b, double max_residual_s)
    : a_(a), b_(b), max_residual_s_(max_residual_s) {
  DRN_EXPECTS(b > 0.0);
  DRN_EXPECTS(max_residual_s >= 0.0);
}

ClockModel ClockModel::fit(std::span<const ClockSample> samples) {
  DRN_EXPECTS(!samples.empty());
  const std::size_t n = samples.size();
  if (n == 1) {
    // One rendezvous pins the offset; the rate defaults to nominal.
    return ClockModel(samples[0].theirs_s - samples[0].mine_s, 1.0, 0.0);
  }

  // Ordinary least squares for theirs = a + b*mine, computed around the
  // sample means for numerical stability (clock readings can be large).
  double mean_x = 0.0;
  double mean_y = 0.0;
  for (const auto& s : samples) {
    mean_x += s.mine_s;
    mean_y += s.theirs_s;
  }
  mean_x /= static_cast<double>(n);
  mean_y /= static_cast<double>(n);

  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i + 1 < n; ++i)
    DRN_EXPECTS(samples[i].mine_s < samples[i + 1].mine_s);
  for (const auto& s : samples) {
    const double dx = s.mine_s - mean_x;
    sxx += dx * dx;
    sxy += dx * (s.theirs_s - mean_y);
  }
  DRN_EXPECTS(sxx > 0.0);
  const double b = sxy / sxx;
  DRN_EXPECTS(b > 0.0);  // a clock running backwards is broken hardware
  const double a = mean_y - b * mean_x;

  double max_residual = 0.0;
  for (const auto& s : samples)
    max_residual = std::max(max_residual,
                            std::abs(a + b * s.mine_s - s.theirs_s));
  return ClockModel(a, b, max_residual);
}

ClockModel ClockModel::exact(const StationClock& mine,
                             const StationClock& theirs) {
  // theirs(g) with g = (mine_local - mine.offset) / mine.rate:
  const double b = theirs.rate() / mine.rate();
  const double a = theirs.offset().value() - b * mine.offset().value();
  return ClockModel(a, b, 0.0);
}

std::vector<ClockSample> rendezvous(const StationClock& mine,
                                    const StationClock& theirs,
                                    std::span<const double> global_times_s,
                                    double reading_noise_s, Rng& rng) {
  DRN_EXPECTS(reading_noise_s >= 0.0);
  std::vector<ClockSample> out;
  out.reserve(global_times_s.size());
  for (double g : global_times_s) {
    ClockSample s;
    s.mine_s = mine.local(Seconds{g}).value();
    s.theirs_s = theirs.local(Seconds{g}).value();
    if (reading_noise_s > 0.0)
      s.theirs_s += rng.uniform(-reading_noise_s, reading_noise_s);
    out.push_back(s);
  }
  return out;
}

}  // namespace drn::core
