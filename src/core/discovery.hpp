// Over-the-air self-organisation: neighbour discovery and clock rendezvous.
//
// The paper assumes stations "observe the actual propagation between
// stations" (Section 3.5) and "occasionally rendezvous and exchange clock
// readings" (Section 7) but leaves the bootstrap mechanics open. This module
// implements the obvious one: during a discovery phase every station
// broadcasts a few beacons at known power, each stamped with the sender's
// local clock. A receiver that decodes a beacon learns
//   * a path-gain sample   (received power / known beacon power), and
//   * a clock sample       (its own reading paired with the beacon stamp,
//                           corrected for the beacon's airtime),
// which is exactly the input the scheduled-access scheme needs: gains feed
// power control, routing costs and Section 7.3 respect flags; clock samples
// feed the affine ClockModel fits.
//
// discover_and_build() runs the whole phase in a Simulator and returns a
// ScheduledNetwork assembled purely from what stations HEARD — nothing is
// copied from the ground-truth propagation matrix.
#pragma once

#include <map>
#include <vector>

#include "common/running_stats.hpp"
#include "core/clock_model.hpp"
#include "core/network_builder.hpp"
#include "sim/mac.hpp"

namespace drn::core {

struct DiscoveryConfig {
  /// Beacons each station sends during the phase.
  int beacon_count = 6;
  /// Length of the discovery phase, seconds. Beacons are stratified over it
  /// at random offsets so they rarely collide.
  double duration_s = 10.0;
  /// Known, network-wide beacon transmit power (how receivers turn received
  /// power into a gain estimate).
  double beacon_power_w = 1.0e-4;
  /// Beacon length in bits (at the design rate).
  double beacon_bits = 500.0;
  /// The design data rate (needed to correct clock stamps for airtime).
  double data_rate_bps = 1.0e6;
  /// Std-dev of the receiver's gain-measurement error, dB (0 = perfect).
  double gain_noise_db = 0.5;
  /// Minimum clock samples before a station trusts a neighbour (2+ lets the
  /// affine fit track drift).
  int min_clock_samples = 2;
};

/// What one station has learned about one neighbour.
struct NeighborObservation {
  RunningStats gain;  // linear power-gain samples
  std::vector<ClockSample> clock_samples;
};

/// The discovery-phase MAC: broadcasts stamped beacons, collects
/// observations from everyone it hears.
class DiscoveryStation final : public sim::MacProtocol {
 public:
  DiscoveryStation(DiscoveryConfig config, StationClock clock);

  void on_start(sim::MacContext& ctx) override;
  void on_timer(sim::MacContext& ctx, std::uint64_t cookie) override;
  void on_enqueue(sim::MacContext& ctx, const sim::Packet& pkt,
                  StationId next_hop) override;
  void on_broadcast_received(sim::MacContext& ctx, const sim::Packet& pkt,
                             StationId from, double signal_w) override;

  /// Everything heard so far, keyed by neighbour id.
  [[nodiscard]] const std::map<StationId, NeighborObservation>& observations()
      const {
    return observations_;
  }

  /// Converts the observations into a NeighborTable: mean measured gain,
  /// least-squares clock model; neighbours below `min_gain` or with fewer
  /// than min_clock_samples samples are not trusted.
  [[nodiscard]] NeighborTable build_neighbor_table(double min_gain) const;

  [[nodiscard]] const StationClock& clock() const { return clock_; }

 private:
  DiscoveryConfig config_;
  StationClock clock_;
  std::map<StationId, NeighborObservation> observations_;
};

/// Runs a full discovery phase for `gains` (fresh random clocks, one
/// DiscoveryStation per station), then assembles the scheduled-access
/// network from the measurements alone: neighbour tables, power control,
/// respect flags and schedules, exactly as build_scheduled_network does from
/// ground truth. The returned neighbour lists may be a subset of the true
/// ones (beacons lost to collisions or below the reach threshold).
[[nodiscard]] ScheduledNetwork discover_and_build(
    const radio::PropagationMatrix& gains,
    const radio::ReceptionCriterion& criterion,
    const ScheduledNetworkConfig& net_config,
    const DiscoveryConfig& discovery_config, Rng& rng);

}  // namespace drn::core
