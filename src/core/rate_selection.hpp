// Per-link rate selection (the paper's footnote 9 direction: "stations might
// vary the rate at which they communicate depending on the observed
// interference... the recent past might be a good-enough predictor of the
// future noise levels").
//
// The base design fixes one network-wide rate sized for the WORST tolerable
// link (2x the characteristic distance at the full metro din). A link that is
// closer or quieter has SINR headroom, and Shannon says that headroom is
// bits: rate_for_link computes the highest rate in a discrete ladder whose
// Eq.-4 threshold the link still clears with the design margin. The
// simulator's per-transmission rate support carries the chosen rate end to
// end (airtime shrinks, or more bits fit in the same quarter-slot).
#pragma once

#include <vector>

namespace drn::core {

/// A discrete set of usable data rates, ascending, bits/second.
using RateLadder = std::vector<double>;

/// A geometric ladder: `steps` rates from base_rate upward, each `factor`
/// apart (e.g. 1, 2, 4, ... Mb/s).
[[nodiscard]] RateLadder geometric_ladder(double base_rate_bps, double factor,
                                          int steps);

/// The Eq.-4 SINR threshold for a given rate over `bandwidth_hz` with
/// `margin_db` of detection headroom.
[[nodiscard]] double required_snr_for_rate(double rate_bps,
                                           double bandwidth_hz,
                                           double margin_db);

/// Highest ladder rate whose threshold the link clears, given the expected
/// received signal and expected noise+interference at the receiver. Returns
/// the lowest rate if even that one does not fit (the link is then outside
/// the design envelope; the caller may prune it instead).
[[nodiscard]] double rate_for_link(double expected_signal_w,
                                   double expected_noise_w,
                                   double bandwidth_hz, double margin_db,
                                   const RateLadder& ladder);

/// The throughput multiple a link at `snr` enjoys over the design rate under
/// ideal (Shannon) adaptation: log2(1+snr) / log2(1+design_snr). Upper bound
/// for what any ladder can deliver; printed by the ablation bench.
[[nodiscard]] double ideal_rate_multiple(double snr, double design_snr);

}  // namespace drn::core
