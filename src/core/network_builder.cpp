#include "core/network_builder.hpp"

#include <algorithm>

#include "common/expects.hpp"
#include "core/clock_model.hpp"

namespace drn::core {

ScheduledNetwork build_scheduled_network(
    const radio::PropagationMatrix& gains,
    const radio::ReceptionCriterion& criterion,
    const ScheduledNetworkConfig& config, Rng& rng) {
  DRN_EXPECTS(config.slot_s > 0.0);
  DRN_EXPECTS(config.receive_fraction > 0.0 && config.receive_fraction < 1.0);
  DRN_EXPECTS(config.packet_fraction > 0.0);
  DRN_EXPECTS(config.guard_fraction >= 0.0);
  DRN_EXPECTS(config.packet_fraction + 2.0 * config.guard_fraction <= 1.0);
  DRN_EXPECTS(config.target_received_w > 0.0);
  DRN_EXPECTS(config.max_power_w > 0.0);
  DRN_EXPECTS(config.rendezvous_count >= 1);

  const std::size_t m = gains.size();
  ScheduledNetwork net{
      Schedule(config.schedule_seed, config.slot_s, config.receive_fraction),
      {},
      std::vector<std::vector<StationId>>(m),
      {},
      config.packet_fraction * config.slot_s,
      0.0,
      (units::Watts{config.target_received_w} / criterion.required_snr())
          .value()};
  net.packet_bits = criterion.data_rate_bps() * net.packet_airtime_s;

  // Clocks: independent random offsets (Section 7.1) and quartz drift.
  net.clocks.reserve(m);
  for (std::size_t i = 0; i < m; ++i)
    net.clocks.push_back(
        StationClock::random(rng, Seconds{config.max_clock_offset_s},
                             config.max_drift_ppm));

  const PowerControl power(config.target_received_w, config.max_power_w);

  // Neighbour selection: the addressee must be reachable within the power
  // limit (and above any explicit gain floor).
  auto is_neighbor = [&](StationId a, StationId b) {
    const double g = gains.gain(a, b);
    return power.reachable(g) && g >= config.min_neighbor_gain;
  };

  // Worst-case power each station may radiate: enough to reach its weakest
  // neighbour. Used for the Section-7.3 significance test.
  std::vector<double> worst_power(m, 0.0);
  for (StationId i = 0; i < m; ++i) {
    for (StationId j = 0; j < m; ++j) {
      if (i == j || !is_neighbor(i, j)) continue;
      net.neighbors[i].push_back(j);
      worst_power[i] =
          std::max(worst_power[i], power.transmit_power_w(gains.gain(i, j)));
    }
  }

  // Rendezvous schedule shared by every pair (relative global times < 0, i.e.
  // before the simulation starts).
  std::vector<double> rendezvous_times;
  rendezvous_times.reserve(static_cast<std::size_t>(config.rendezvous_count));
  for (int k = 0; k < config.rendezvous_count; ++k) {
    const double frac = config.rendezvous_count == 1
                            ? 1.0
                            : static_cast<double>(k) /
                                  static_cast<double>(config.rendezvous_count - 1);
    rendezvous_times.push_back(-config.rendezvous_span_s * (1.0 - frac) -
                               config.slot_s);
  }

  net.macs.reserve(m);
  for (StationId i = 0; i < m; ++i) {
    NeighborTable table;
    for (StationId j : net.neighbors[i]) {
      Neighbor nb;
      nb.id = j;
      nb.gain = gains.gain(i, j);
      if (config.exact_clock_models) {
        nb.clock = ClockModel::exact(net.clocks[i], net.clocks[j]);
      } else {
        const auto samples =
            rendezvous(net.clocks[i], net.clocks[j], rendezvous_times,
                       config.rendezvous_noise_s, rng);
        nb.clock = ClockModel::fit(samples);
      }
      nb.respect_receive_windows =
          config.respect_third_party_windows &&
          interferes_significantly(nb.gain, worst_power[i],
                                   net.interference_budget_w,
                                   config.significance_fraction);
      table.add(nb);
    }

    ScheduledStationConfig sc{net.schedule,
                              net.clocks[i],
                              net.packet_airtime_s,
                              config.guard_fraction * config.slot_s,
                              power,
                              /*horizon_slots=*/20000.0,
                              config.max_queue,
                              /*interference_budget_w=*/net.interference_budget_w,
                              config.significance_fraction};
    if (config.beacon_interval_s > 0.0) {
      sc.data_rate_bps = criterion.data_rate_bps();
      sc.beacon_interval_s = config.beacon_interval_s;
      sc.beacon_bits = config.beacon_bits;
      sc.neighbor_timeout_s = config.neighbor_timeout_s;
      sc.readopt_neighbors = config.readopt_neighbors;
    }
    net.macs.push_back(std::make_unique<ScheduledStation>(sc, std::move(table)));
  }
  return net;
}

}  // namespace drn::core
