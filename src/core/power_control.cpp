#include "core/power_control.hpp"

#include <algorithm>

#include "common/expects.hpp"

namespace drn::core {

PowerControl::PowerControl(bool controlled, double target, double max_power)
    : controlled_(controlled),
      target_received_w_(target),
      max_power_w_(max_power) {}

PowerControl::PowerControl(double target_received_w, double max_power_w)
    : PowerControl(true, target_received_w, max_power_w) {
  DRN_EXPECTS(target_received_w > 0.0);
  DRN_EXPECTS(max_power_w > 0.0);
}

PowerControl PowerControl::fixed(double power_w) {
  DRN_EXPECTS(power_w > 0.0);
  return PowerControl(false, 0.0, power_w);
}

double PowerControl::transmit_power_w(double gain_to_receiver) const {
  DRN_EXPECTS(gain_to_receiver > 0.0);
  if (!controlled_) return max_power_w_;
  return std::min(target_received_w_ / gain_to_receiver, max_power_w_);
}

bool PowerControl::reachable(double gain_to_receiver) const {
  DRN_EXPECTS(gain_to_receiver > 0.0);
  if (!controlled_) return true;
  return target_received_w_ / gain_to_receiver <= max_power_w_;
}

}  // namespace drn::core
