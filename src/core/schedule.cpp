#include "core/schedule.hpp"

#include <cmath>

#include "common/expects.hpp"

namespace drn::core {

Schedule::Schedule(std::uint64_t seed, double slot_duration_s,
                   double receive_fraction)
    : seed_(seed),
      slot_s_(slot_duration_s),
      p_(receive_fraction),
      threshold_(receive_threshold(receive_fraction)) {
  DRN_EXPECTS(slot_duration_s > 0.0);
  DRN_EXPECTS(receive_fraction >= 0.0 && receive_fraction <= 1.0);
}

std::int64_t Schedule::slot_index(double local_s) const {
  return static_cast<std::int64_t>(std::floor(local_s / slot_s_));
}

double Schedule::slot_begin(std::int64_t slot) const {
  return static_cast<double>(slot) * slot_s_;
}

bool Schedule::interval_is(double begin_s, double end_s, bool receive) const {
  DRN_EXPECTS(begin_s < end_s);
  for (std::int64_t slot = slot_index(begin_s); slot_begin(slot) < end_s;
       ++slot) {
    if (is_receive_slot(slot) != receive) return false;
  }
  return true;
}

std::int64_t Schedule::run_end(std::int64_t slot, std::int64_t max_slots) const {
  DRN_EXPECTS(max_slots >= 1);
  const bool value = is_receive_slot(slot);
  std::int64_t last = slot;
  while (last - slot + 1 < max_slots && is_receive_slot(last + 1) == value)
    ++last;
  return last;
}

double Schedule::empirical_receive_fraction(std::int64_t first,
                                            std::int64_t count) const {
  DRN_EXPECTS(count > 0);
  std::int64_t receive = 0;
  for (std::int64_t s = first; s < first + count; ++s)
    if (is_receive_slot(s)) ++receive;
  return static_cast<double>(receive) / static_cast<double>(count);
}

}  // namespace drn::core
