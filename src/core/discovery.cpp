#include "core/discovery.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"
#include "radio/units.hpp"
#include "sim/simulator.hpp"

namespace drn::core {

DiscoveryStation::DiscoveryStation(DiscoveryConfig config, StationClock clock)
    : config_(config), clock_(clock) {
  DRN_EXPECTS(config.beacon_count >= 1);
  DRN_EXPECTS(config.duration_s > 0.0);
  DRN_EXPECTS(config.beacon_power_w > 0.0);
  DRN_EXPECTS(config.beacon_bits > 0.0);
  DRN_EXPECTS(config.data_rate_bps > 0.0);
  DRN_EXPECTS(config.gain_noise_db >= 0.0);
  DRN_EXPECTS(config.min_clock_samples >= 1);
  const double airtime = config.beacon_bits / config.data_rate_bps;
  DRN_EXPECTS(config.duration_s >
              static_cast<double>(config.beacon_count) * 2.0 * airtime);
}

void DiscoveryStation::on_start(sim::MacContext& ctx) {
  // Stratify beacons over the phase with random offsets inside each stratum,
  // leaving room for the airtime so our own beacons never overlap.
  const double stratum =
      config_.duration_s / static_cast<double>(config_.beacon_count);
  const double airtime = config_.beacon_bits / config_.data_rate_bps;
  for (int i = 0; i < config_.beacon_count; ++i) {
    const double offset = ctx.rng().uniform(0.0, stratum - airtime);
    ctx.set_timer(static_cast<double>(i) * stratum + offset,
                  static_cast<std::uint64_t>(i));
  }
}

void DiscoveryStation::on_timer(sim::MacContext& ctx, std::uint64_t cookie) {
  (void)cookie;
  sim::Packet beacon;
  beacon.source = ctx.self();
  beacon.destination = kBroadcast;
  beacon.size_bits = config_.beacon_bits;
  beacon.sender_local_s = clock_.local(Seconds{ctx.now()}).value();
  ctx.transmit(beacon, kBroadcast, config_.beacon_power_w, ctx.now());
}

void DiscoveryStation::on_enqueue(sim::MacContext& ctx, const sim::Packet& pkt,
                                  StationId /*next_hop*/) {
  ctx.drop(pkt);  // the discovery phase carries no data traffic
}

void DiscoveryStation::on_broadcast_received(sim::MacContext& ctx,
                                             const sim::Packet& pkt,
                                             StationId from, double signal_w) {
  NeighborObservation& obs = observations_[from];

  double measured_gain = signal_w / config_.beacon_power_w;
  if (config_.gain_noise_db > 0.0) {
    measured_gain *=
        radio::from_db(config_.gain_noise_db * ctx.rng().normal());
  }
  obs.gain.add(measured_gain);

  // The stamp was taken at transmission start; we hear the end, one airtime
  // later (by the sender's clock, whose rate is within ppm of ours).
  const double airtime = pkt.size_bits / config_.data_rate_bps;
  ClockSample sample;
  sample.mine_s = clock_.local(Seconds{ctx.now()}).value();
  sample.theirs_s = pkt.sender_local_s + airtime;
  obs.clock_samples.push_back(sample);
}

NeighborTable DiscoveryStation::build_neighbor_table(double min_gain) const {
  DRN_EXPECTS(min_gain >= 0.0);
  NeighborTable table;
  for (const auto& [id, obs] : observations_) {
    if (obs.clock_samples.size() <
        static_cast<std::size_t>(config_.min_clock_samples))
      continue;
    const double gain = obs.gain.mean();
    if (gain < min_gain) continue;
    Neighbor n;
    n.id = id;
    n.gain = gain;
    n.clock = ClockModel::fit(obs.clock_samples);
    table.add(n);
  }
  return table;
}

ScheduledNetwork discover_and_build(const radio::PropagationMatrix& gains,
                                    const radio::ReceptionCriterion& criterion,
                                    const ScheduledNetworkConfig& net_config,
                                    const DiscoveryConfig& discovery_config,
                                    Rng& rng) {
  const std::size_t m = gains.size();

  ScheduledNetwork net{
      Schedule(net_config.schedule_seed, net_config.slot_s,
               net_config.receive_fraction),
      {},
      std::vector<std::vector<StationId>>(m),
      {},
      net_config.packet_fraction * net_config.slot_s,
      0.0,
      (units::Watts{net_config.target_received_w} / criterion.required_snr())
          .value()};
  net.packet_bits = criterion.data_rate_bps() * net.packet_airtime_s;

  net.clocks.reserve(m);
  for (std::size_t i = 0; i < m; ++i)
    net.clocks.push_back(StationClock::random(
        rng, Seconds{net_config.max_clock_offset_s}, net_config.max_drift_ppm));

  // Run the discovery phase under the real physics.
  sim::SimulatorConfig sim_cfg{criterion};
  sim_cfg.seed = rng();
  sim::Simulator sim(gains, sim_cfg);
  std::vector<DiscoveryStation*> stations(m);
  for (StationId s = 0; s < m; ++s) {
    auto mac = std::make_unique<DiscoveryStation>(discovery_config,
                                                  net.clocks[s]);
    stations[s] = mac.get();
    sim.set_mac(s, std::move(mac));
  }
  sim.run_until(discovery_config.duration_s + 1.0);

  // Assemble the scheduled network from the measurements.
  const PowerControl power(net_config.target_received_w,
                           net_config.max_power_w);
  const double min_gain =
      std::max(net_config.min_neighbor_gain,
               net_config.target_received_w / net_config.max_power_w);

  std::vector<NeighborTable> tables;
  tables.reserve(m);
  std::vector<double> worst_power(m, 0.0);
  for (StationId s = 0; s < m; ++s) {
    tables.push_back(stations[s]->build_neighbor_table(min_gain));
    for (const auto& n : tables.back().all()) {
      net.neighbors[s].push_back(n.id);
      worst_power[s] =
          std::max(worst_power[s], power.transmit_power_w(n.gain));
    }
  }

  net.macs.reserve(m);
  for (StationId s = 0; s < m; ++s) {
    NeighborTable table;
    for (const auto& n : tables[s].all()) {
      Neighbor copy = n;
      copy.respect_receive_windows =
          net_config.respect_third_party_windows &&
          interferes_significantly(copy.gain, worst_power[s],
                                   net.interference_budget_w,
                                   net_config.significance_fraction);
      table.add(copy);
    }
    ScheduledStationConfig sc{net.schedule,
                              net.clocks[s],
                              net.packet_airtime_s,
                              net_config.guard_fraction * net_config.slot_s,
                              power,
                              /*horizon_slots=*/20000.0,
                              net_config.max_queue,
                              net.interference_budget_w,
                              net_config.significance_fraction};
    net.macs.push_back(
        std::make_unique<ScheduledStation>(sc, std::move(table)));
  }
  return net;
}

}  // namespace drn::core
