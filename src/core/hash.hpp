// The schedule hash of Section 7.1.
//
// "Whether a particular slot is for transmitting or receiving can be
// determined by using a hash function to hash the value of time at the
// beginning of the slot. If the hash value is less than a threshold, then the
// slot is a receive slot." We hash the slot index (equivalent to the slot's
// start time in units of slots) with splitmix64 under a network-wide seed.
#pragma once

#include <cstdint>

namespace drn::core {

/// Hash of slot `slot_index` under `seed`, uniform over the full 64-bit range.
/// Negative indices (times before the clock epoch) are well-defined via
/// two's-complement wraparound.
[[nodiscard]] std::uint64_t slot_hash(std::uint64_t seed,
                                      std::int64_t slot_index);

/// The threshold below which a hash denotes a receive slot, for receive duty
/// cycle `p` in [0, 1]: floor(p * 2^64), saturating at 2^64 - 1 for p = 1.
[[nodiscard]] std::uint64_t receive_threshold(double p);

}  // namespace drn::core
