#include "core/rate_selection.hpp"

#include <cmath>

#include "common/expects.hpp"
#include "radio/reception.hpp"
#include "radio/units.hpp"

namespace drn::core {

RateLadder geometric_ladder(double base_rate_bps, double factor, int steps) {
  DRN_EXPECTS(base_rate_bps > 0.0);
  DRN_EXPECTS(factor > 1.0);
  DRN_EXPECTS(steps >= 1);
  RateLadder ladder;
  ladder.reserve(static_cast<std::size_t>(steps));
  double rate = base_rate_bps;
  for (int i = 0; i < steps; ++i) {
    ladder.push_back(rate);
    rate *= factor;
  }
  return ladder;
}

double required_snr_for_rate(double rate_bps, double bandwidth_hz,
                             double margin_db) {
  DRN_EXPECTS(rate_bps > 0.0);
  DRN_EXPECTS(bandwidth_hz > 0.0);
  DRN_EXPECTS(margin_db >= 0.0);
  return (radio::Decibels{margin_db}.to_linear() *
          radio::snr_for_rate_fraction(rate_bps / bandwidth_hz))
      .value();
}

double rate_for_link(double expected_signal_w, double expected_noise_w,
                     double bandwidth_hz, double margin_db,
                     const RateLadder& ladder) {
  DRN_EXPECTS(expected_signal_w > 0.0);
  DRN_EXPECTS(expected_noise_w > 0.0);
  DRN_EXPECTS(!ladder.empty());
  const double snr = expected_signal_w / expected_noise_w;
  double best = ladder.front();
  for (double rate : ladder) {
    DRN_EXPECTS(rate > 0.0);
    if (snr >= required_snr_for_rate(rate, bandwidth_hz, margin_db))
      best = rate;
  }
  return best;
}

double ideal_rate_multiple(double snr, double design_snr) {
  DRN_EXPECTS(snr >= 0.0);
  DRN_EXPECTS(design_snr > 0.0);
  return radio::capacity_per_hz(radio::LinearGain{snr}) /
         radio::capacity_per_hz(radio::LinearGain{design_snr});
}

}  // namespace drn::core
