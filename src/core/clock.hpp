// Station clocks (Section 7).
//
// "The term clock as used in this work does not imply knowledge of what time
// it is. Here clock just means something that advances at some known rate."
// A station's clock is an affine map of (unknowable) global time:
//
//     local = offset + rate * global.
//
// Offsets are set independently at random — deliberately, so that no two
// neighbours' slot grids align (Section 7.1); rates differ from 1 by a few
// parts per million of quartz drift.
#pragma once

#include "common/rng.hpp"
#include "common/units.hpp"

namespace drn::core {

using units::Seconds;

class StationClock {
 public:
  /// @param offset reading of this clock at global time zero.
  /// @param rate   seconds of local time per second of global time (~1).
  explicit StationClock(Seconds offset = Seconds{0.0}, double rate = 1.0);

  /// Local reading at global time `global`.
  [[nodiscard]] Seconds local(Seconds global) const {
    return offset_ + rate_ * global;
  }

  /// Global time at which this clock reads `local`.
  [[nodiscard]] Seconds global(Seconds local) const {
    return (local - offset_) / rate_;
  }

  [[nodiscard]] Seconds offset() const { return offset_; }
  [[nodiscard]] double rate() const { return rate_; }

  /// A clock with offset uniform in [0, max_offset) and rate uniform in
  /// 1 ± max_drift_ppm*1e-6 — how a deployed station initialises itself
  /// ("set them independently to a random value", Section 7.1).
  static StationClock random(Rng& rng, Seconds max_offset,
                             double max_drift_ppm);

 private:
  Seconds offset_;
  double rate_;
};

}  // namespace drn::core
