// Station clocks (Section 7).
//
// "The term clock as used in this work does not imply knowledge of what time
// it is. Here clock just means something that advances at some known rate."
// A station's clock is an affine map of (unknowable) global time:
//
//     local = offset + rate * global.
//
// Offsets are set independently at random — deliberately, so that no two
// neighbours' slot grids align (Section 7.1); rates differ from 1 by a few
// parts per million of quartz drift.
#pragma once

#include "common/rng.hpp"

namespace drn::core {

class StationClock {
 public:
  /// @param offset_s reading of this clock at global time zero.
  /// @param rate     seconds of local time per second of global time (~1).
  explicit StationClock(double offset_s = 0.0, double rate = 1.0);

  /// Local reading at global time `global_s`.
  [[nodiscard]] double local(double global_s) const {
    return offset_s_ + rate_ * global_s;
  }

  /// Global time at which this clock reads `local_s`.
  [[nodiscard]] double global(double local_s) const {
    return (local_s - offset_s_) / rate_;
  }

  [[nodiscard]] double offset_s() const { return offset_s_; }
  [[nodiscard]] double rate() const { return rate_; }

  /// A clock with offset uniform in [0, max_offset_s) and rate uniform in
  /// 1 ± max_drift_ppm*1e-6 — how a deployed station initialises itself
  /// ("set them independently to a random value", Section 7.1).
  static StationClock random(Rng& rng, double max_offset_s,
                             double max_drift_ppm);

 private:
  double offset_s_;
  double rate_;
};

}  // namespace drn::core
