// Per-station knowledge about direct neighbours.
//
// A station knows, for each neighbour it may send to: the path gain it
// observed (the usable entries of the propagation matrix H), a model of the
// neighbour's clock built from rendezvous exchanges, and whether the
// neighbour is close enough that its published receive windows must be
// respected even when it is not the addressee (Section 7.3: a very near
// transmitter can raise a neighbour's interference floor "significantly" —
// the paper's threshold is a 1 dB rise, i.e. interference at least one
// quarter of the tolerated noise level).
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "core/clock_model.hpp"

namespace drn::core {

struct Neighbor {
  StationId id = kNoStation;
  /// Power gain between us and the neighbour (reciprocal channel).
  double gain = 0.0;
  /// Map from our local clock to theirs.
  ClockModel clock;
  /// If true, never transmit (to anyone else) during this neighbour's
  /// receive windows — our signal would raise its noise floor significantly.
  bool respect_receive_windows = false;
  /// Per-link data rate (core/rate_selection extension); 0 = the network's
  /// fixed design rate.
  double rate_bps = 0.0;
};

class NeighborTable {
 public:
  /// Adds a neighbour. Ids must be distinct.
  void add(Neighbor neighbor);

  /// The entry for `id`, or nullptr if unknown.
  [[nodiscard]] const Neighbor* find(StationId id) const;

  /// Mutable access (clock-model refits during maintenance rendezvous).
  [[nodiscard]] Neighbor* find_mutable(StationId id);

  /// Removes the entry for `id` (dynamics: a crashed neighbour is evicted
  /// once it falls silent). Returns false when `id` was not present.
  bool erase(StationId id);

  [[nodiscard]] std::span<const Neighbor> all() const { return neighbors_; }
  [[nodiscard]] std::size_t size() const { return neighbors_.size(); }

 private:
  std::vector<Neighbor> neighbors_;
};

/// Section 7.3's significance rule: must a transmission at `power_w` from us
/// be kept out of a neighbour's receive windows? True iff the power we would
/// deliver to it exceeds `significance_fraction` of its tolerated
/// interference budget (budget = expected received signal / required SNR; the
/// paper's 1 dB threshold corresponds to a fraction of about 1/4).
[[nodiscard]] bool interferes_significantly(double gain_to_neighbor,
                                            double power_w,
                                            double interference_budget_w,
                                            double significance_fraction = 0.25);

}  // namespace drn::core
