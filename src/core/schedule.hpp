// Pseudo-random transmit/receive schedules (Section 7.1, Figure 4).
//
// Every station in the network evaluates the SAME schedule function — time is
// divided into equal slots and each slot is hashed into "receive" (the
// station commits to listen) or "transmit" (the station may transmit) — but
// each station reckons slot boundaries by its OWN clock. Because clocks are
// set independently (and at random), any two stations' slot grids are
// unaligned and their schedules are statistically independent, which is what
// guarantees overlap opportunities between every pair (the paper's argument
// against simple periodic schedules, reproduced in bench A1).
//
// All times in this class are STATION-LOCAL seconds; conversion from global
// simulation time is the caller's job (core/clock.hpp).
#pragma once

#include <cstdint>

#include "core/hash.hpp"

namespace drn::core {

class Schedule {
 public:
  /// @param seed            network-wide hash seed.
  /// @param slot_duration_s slot length T_slot in (local) seconds.
  /// @param receive_fraction p, the probability a slot is a receive slot
  ///                         (the paper finds p = 0.3 near-optimal).
  Schedule(std::uint64_t seed, double slot_duration_s, double receive_fraction);

  /// True iff `slot` is a receive slot (a commitment to listen).
  [[nodiscard]] bool is_receive_slot(std::int64_t slot) const {
    return slot_hash(seed_, slot) < threshold_;
  }

  /// The slot containing local time `t` (floor; negative times are valid).
  [[nodiscard]] std::int64_t slot_index(double local_s) const;

  /// Start / end of a slot in local seconds.
  [[nodiscard]] double slot_begin(std::int64_t slot) const;
  [[nodiscard]] double slot_end(std::int64_t slot) const {
    return slot_begin(slot + 1);
  }

  /// True iff every slot overlapping [begin_s, end_s) has receive-ness equal
  /// to `receive`. Requires begin_s < end_s.
  [[nodiscard]] bool interval_is(double begin_s, double end_s,
                                 bool receive) const;

  /// The last slot of the maximal run of same-valued slots starting at
  /// `slot`, scanning at most `max_slots` ahead.
  [[nodiscard]] std::int64_t run_end(std::int64_t slot,
                                     std::int64_t max_slots = 1 << 20) const;

  /// Fraction of receive slots over [first, first + count) — converges to
  /// receive_fraction() by the law of large numbers (tested).
  [[nodiscard]] double empirical_receive_fraction(std::int64_t first,
                                                  std::int64_t count) const;

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] double slot_duration_s() const { return slot_s_; }
  [[nodiscard]] double receive_fraction() const { return p_; }

 private:
  std::uint64_t seed_;
  double slot_s_;
  double p_;
  std::uint64_t threshold_;
};

}  // namespace drn::core
