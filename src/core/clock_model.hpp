// Modelling a neighbour's clock from rendezvous exchanges (Section 7).
//
// "Global clock synchronization is not required. Only the ability to relate
// one station's clock with another's is required. This ability can be
// accomplished if stations occasionally rendezvous and exchange clock
// readings. Differences between clocks and small differences in clock rates
// can be mutually modeled, and the resulting models ... used by neighbors to
// predict when a station will be transmitting."
//
// A ClockModel is the affine fit  theirs ≈ a + b * mine  over exchanged
// reading pairs, with a worst-case residual that tells the access scheduler
// how much guard time a prediction needs.
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "core/clock.hpp"

namespace drn::core {

/// One rendezvous: simultaneous readings of my clock and the neighbour's.
struct ClockSample {
  double mine_s = 0.0;
  double theirs_s = 0.0;
};

class ClockModel {
 public:
  /// Identity model (used for a station's constraints against itself).
  ClockModel() = default;

  /// @param a,b affine coefficients of theirs = a + b*mine.
  /// @param max_residual_s worst observed |prediction - truth| over the fit.
  ClockModel(double a, double b, double max_residual_s = 0.0);

  /// Least-squares affine fit over rendezvous samples. With a single sample
  /// the rate is assumed to be exactly 1. Requires at least one sample and
  /// strictly increasing mine_s.
  static ClockModel fit(std::span<const ClockSample> samples);

  /// The true model between two known clocks (a genie; used by tests and by
  /// simulations that assume perfect rendezvous).
  static ClockModel exact(const StationClock& mine, const StationClock& theirs);

  /// Predicted neighbour-local time for my local time `mine_s`.
  [[nodiscard]] double map(double mine_s) const { return a_ + b_ * mine_s; }

  /// My local time at which the neighbour's clock reads `theirs_s`.
  [[nodiscard]] double inverse(double theirs_s) const {
    return (theirs_s - a_) / b_;
  }

  [[nodiscard]] double a() const { return a_; }
  [[nodiscard]] double b() const { return b_; }

  /// Worst |residual| over the fitting samples, seconds. A guard interval
  /// for schedule predictions should exceed this plus a drift allowance for
  /// the prediction horizon.
  [[nodiscard]] double max_residual_s() const { return max_residual_s_; }

 private:
  double a_ = 0.0;
  double b_ = 1.0;
  double max_residual_s_ = 0.0;
};

/// Simulates `count` rendezvous exchanges between two stations at the given
/// global times: each side reads its own clock exactly and the neighbour's
/// with uniform error in ±reading_noise_s (propagation delay, timestamping
/// jitter). Returns samples from `mine`'s point of view.
[[nodiscard]] std::vector<ClockSample> rendezvous(
    const StationClock& mine, const StationClock& theirs,
    std::span<const double> global_times_s, double reading_noise_s, Rng& rng);

}  // namespace drn::core
