#include "core/hash.hpp"

#include <cmath>
#include <limits>

#include "common/expects.hpp"
#include "common/rng.hpp"

namespace drn::core {

std::uint64_t slot_hash(std::uint64_t seed, std::int64_t slot_index) {
  return hash_u64(seed, static_cast<std::uint64_t>(slot_index));
}

std::uint64_t receive_threshold(double p) {
  DRN_EXPECTS(p >= 0.0 && p <= 1.0);
  if (p >= 1.0) return std::numeric_limits<std::uint64_t>::max();
  // 2^64 * p computed in long double to keep the low bits meaningful.
  return static_cast<std::uint64_t>(
      std::floor(static_cast<long double>(p) * 18446744073709551616.0L));
}

}  // namespace drn::core
