#include "core/neighbor_table.hpp"

#include "common/expects.hpp"

namespace drn::core {

void NeighborTable::add(Neighbor neighbor) {
  DRN_EXPECTS(neighbor.id != kNoStation);
  DRN_EXPECTS(neighbor.gain > 0.0);
  DRN_EXPECTS(find(neighbor.id) == nullptr);
  neighbors_.push_back(neighbor);
}

const Neighbor* NeighborTable::find(StationId id) const {
  for (const auto& n : neighbors_)
    if (n.id == id) return &n;
  return nullptr;
}

Neighbor* NeighborTable::find_mutable(StationId id) {
  for (auto& n : neighbors_)
    if (n.id == id) return &n;
  return nullptr;
}

bool NeighborTable::erase(StationId id) {
  for (auto it = neighbors_.begin(); it != neighbors_.end(); ++it) {
    if (it->id == id) {
      neighbors_.erase(it);
      return true;
    }
  }
  return false;
}

bool interferes_significantly(double gain_to_neighbor, double power_w,
                              double interference_budget_w,
                              double significance_fraction) {
  DRN_EXPECTS(gain_to_neighbor > 0.0);
  DRN_EXPECTS(power_w > 0.0);
  DRN_EXPECTS(interference_budget_w > 0.0);
  DRN_EXPECTS(significance_fraction > 0.0);
  return gain_to_neighbor * power_w >
         significance_fraction * interference_budget_w;
}

}  // namespace drn::core
