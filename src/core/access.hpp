// The collision-free channel access computation (Section 7).
//
// "A station with a packet to be sent to another station will compare its own
// schedule with the receiving station's schedule and send the packet during a
// time when one of its own transmit windows overlaps with a receive window of
// the receiving station enough to handle the packet length."
//
// find_transmission_start() solves exactly that as an interval-intersection
// search: given a required duration and a set of window constraints — each
// "this station's schedule, seen through this clock map, must read
// transmit/receive over the whole (padded) interval" — it returns the
// earliest feasible start in the sender's local time. The sender's own
// transmit windows, the addressee's receive windows, and (Section 7.3) the
// avoided receive windows of very-near third parties are all just constraints
// in the list.
#pragma once

#include <optional>
#include <span>

#include "common/units.hpp"
#include "core/clock_model.hpp"
#include "core/schedule.hpp"

namespace drn::core {

using units::Seconds;

/// One schedule containment requirement on a candidate interval.
struct WindowConstraint {
  /// The schedule to test (all stations share one schedule function, but the
  /// pointer keeps the API general). Not owned; must outlive the call.
  const Schedule* schedule = nullptr;
  /// Map from sender-local time to this constraint's station-local time.
  ClockModel clock;
  /// Required value of every slot overlapping the mapped interval: true =
  /// receive slots (the addressee must be listening), false = transmit slots
  /// (the sender may transmit / a respected third party is not listening).
  bool want_receive = false;
  /// Guard padding, sender-local time, applied on both sides BEFORE
  /// mapping — absorbs clock-model prediction error.
  Seconds pad;
};

struct AccessRequest {
  /// Earliest admissible start, sender-local time.
  Seconds earliest_local;
  /// Required transmission duration, sender-local time.
  Seconds duration;
  /// Give up after scanning this much sender-local time past the earliest
  /// start (a safety net; random schedules yield an overlap within a few
  /// slots with overwhelming probability).
  Seconds horizon;
};

/// Earliest start >= earliest_local_s such that, for every constraint, the
/// padded interval [start - pad, start + duration + pad] maps into a run of
/// slots of the wanted kind. Returns nullopt if none exists within the
/// horizon (e.g. pathological aligned periodic schedules — bench A1).
[[nodiscard]] std::optional<Seconds> find_transmission_start(
    const AccessRequest& request, std::span<const WindowConstraint> constraints);

}  // namespace drn::core
