#include "core/scheduled_station.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/expects.hpp"

namespace drn::core {

namespace {

/// Margin keeping converted times strictly inside simulator preconditions
/// despite local<->global round-trips (1 ns against millisecond slots).
constexpr double kTimeEpsilonS = 1e-9;

/// Timer cookie for the beacon-due wakeup (plan cookies count up from 1, so
/// the max value can never collide).
constexpr std::uint64_t kBeaconWakeCookie =
    std::numeric_limits<std::uint64_t>::max();

}  // namespace

ScheduledStation::ScheduledStation(ScheduledStationConfig config,
                                   NeighborTable neighbors)
    : config_(std::move(config)), neighbors_(std::move(neighbors)) {
  DRN_EXPECTS(config_.packet_airtime_s > 0.0);
  DRN_EXPECTS(config_.guard_s >= 0.0);
  DRN_EXPECTS(config_.horizon_slots > 0.0);
  DRN_EXPECTS(config_.max_queue > 0);
  // A schedule only works if a packet plus guards fits inside one slot; the
  // paper uses quarter-slot packets precisely to make fitting easy.
  DRN_EXPECTS(config_.packet_airtime_s + 2.0 * config_.guard_s <=
              config_.schedule.slot_duration_s());
  // Timeout eviction and re-adoption both hinge on hearing (or not hearing)
  // periodic beacons; without beacons they could only misfire.
  DRN_EXPECTS(config_.neighbor_timeout_s <= 0.0 || beacons_enabled());
  DRN_EXPECTS(!config_.readopt_neighbors || beacons_enabled());
  if (beacons_enabled()) {
    DRN_EXPECTS(config_.data_rate_bps > 0.0);
    DRN_EXPECTS(config_.beacon_bits > 0.0);
    DRN_EXPECTS(config_.max_clock_samples >= 2);
    // Beacon power: enough to reach the weakest neighbour (the same worst
    // case the respect flags already budget for).
    for (const auto& n : neighbors_.all()) {
      beacon_power_w_ =
          std::max(beacon_power_w_, config_.power.transmit_power_w(n.gain));
    }
  }
}

void ScheduledStation::on_start(sim::MacContext& ctx) {
  eviction_epoch_s_ = ctx.now();
  if (!beacons_enabled()) return;
  if (neighbors_.size() == 0 && !config_.readopt_neighbors) return;
  // Desynchronise the first beacon across stations.
  next_beacon_due_global_s_ =
      ctx.now() + ctx.rng().uniform(0.0, config_.beacon_interval_s);
  ctx.set_timer(next_beacon_due_global_s_, kBeaconWakeCookie);
}

std::size_t ScheduledStation::queued_packets() const {
  std::size_t n = 0;
  for (const auto& [id, q] : queues_) n += q.size();
  return n;
}

double ScheduledStation::airtime_s(const sim::Packet& pkt,
                                   const Neighbor& n) const {
  const double rate =
      n.rate_bps > 0.0 ? n.rate_bps : config_.data_rate_bps;
  if (rate <= 0.0) return config_.packet_airtime_s;
  return pkt.size_bits / rate;
}

std::optional<double> ScheduledStation::find_start(
    StationId neighbor, double earliest_local_s, double duration_s) const {
  const Neighbor* n = neighbors_.find(neighbor);
  DRN_EXPECTS(n != nullptr);

  std::vector<WindowConstraint> constraints;
  constraints.reserve(2 + neighbors_.size());
  // Our own published schedule: we may only radiate in our transmit windows.
  constraints.push_back(WindowConstraint{&config_.schedule, ClockModel(),
                                         /*want_receive=*/false,
                                         Seconds{0.0}});
  // The addressee must be committed to listen, with guards against our
  // imperfect model of its clock.
  constraints.push_back(WindowConstraint{&config_.schedule, n->clock,
                                         /*want_receive=*/true,
                                         Seconds{config_.guard_s}});
  // Section 7.3: stay out of very-near third parties' receive windows —
  // those to which THIS transmission's power would deliver a significant
  // fraction of their interference budget.
  const double power_w = config_.power.transmit_power_w(n->gain);
  for (const auto& m : neighbors_.all()) {
    if (!m.respect_receive_windows || m.id == neighbor) continue;
    if (config_.interference_budget_w > 0.0 &&
        !interferes_significantly(m.gain, power_w,
                                  config_.interference_budget_w,
                                  config_.significance_fraction)) {
      continue;
    }
    constraints.push_back(WindowConstraint{&config_.schedule, m.clock,
                                           /*want_receive=*/false,
                                           Seconds{config_.guard_s}});
  }

  AccessRequest request;
  request.earliest_local = Seconds{earliest_local_s};
  request.duration = Seconds{duration_s * config_.clock.rate()};
  request.horizon =
      Seconds{config_.horizon_slots * config_.schedule.slot_duration_s()};
  const auto start = find_transmission_start(request, constraints);
  if (!start) return std::nullopt;
  return start->value();
}

std::optional<double> ScheduledStation::find_beacon_start(
    double earliest_local_s) const {
  std::vector<WindowConstraint> constraints;
  constraints.push_back(WindowConstraint{&config_.schedule, ClockModel(),
                                         /*want_receive=*/false,
                                         Seconds{0.0}});
  // A broadcast at worst-case power: keep it out of every respected third
  // party's receive windows (Section 7.3 applies to beacons too).
  for (const auto& m : neighbors_.all()) {
    if (!m.respect_receive_windows) continue;
    constraints.push_back(WindowConstraint{&config_.schedule, m.clock,
                                           /*want_receive=*/false,
                                           Seconds{config_.guard_s}});
  }
  AccessRequest request;
  request.earliest_local = Seconds{earliest_local_s};
  request.duration = Seconds{beacon_airtime_s() * config_.clock.rate()};
  request.horizon =
      Seconds{config_.horizon_slots * config_.schedule.slot_duration_s()};
  const auto start = find_transmission_start(request, constraints);
  if (!start) return std::nullopt;
  return start->value();
}

void ScheduledStation::replan(sim::MacContext& ctx) {
  const double earliest_global =
      std::max(ctx.now(), busy_until_global_s_) + kTimeEpsilonS;
  const double earliest_local =
      config_.clock.local(Seconds{earliest_global}).value();

  std::optional<Plan> best;
  for (const auto& [neighbor, queue] : queues_) {
    if (queue.empty()) continue;
    const double duration =
        airtime_s(queue.front(), *neighbors_.find(neighbor));
    if (const auto start = find_start(neighbor, earliest_local, duration)) {
      if (!best || *start < best->start_local_s)
        best = Plan{neighbor, *start};
    }
  }
  // A due maintenance beacon competes like any packet. Under re-adoption a
  // station keeps beaconing even with every neighbour evicted — that is how
  // the others re-discover it.
  if (beacons_enabled() &&
      (neighbors_.size() > 0 || config_.readopt_neighbors) &&
      beacon_power_w_ > 0.0 && ctx.now() >= next_beacon_due_global_s_) {
    if (const auto start = find_beacon_start(earliest_local)) {
      if (!best || *start < best->start_local_s)
        best = Plan{kBroadcast, *start};
    }
  }
  if (!best) return;  // nothing sendable within the horizon
  if (plan_ && plan_->start_local_s <= best->start_local_s) return;

  plan_ = best;
  ++plan_generation_;
  // The superseded plan's timer (if still pending) is disarmed for real —
  // before real cancellation each replanning left a dead timer in the event
  // queue until its fire time.
  ctx.cancel_timer(plan_timer_);
  plan_timer_ =
      ctx.set_timer(std::max(ctx.now(),
                             config_.clock.global(Seconds{best->start_local_s})
                                 .value()),
                    plan_generation_);
}

void ScheduledStation::send_beacon(sim::MacContext& ctx) {
  sim::Packet beacon;
  beacon.source = ctx.self();
  beacon.destination = kBroadcast;
  beacon.size_bits = config_.beacon_bits;
  const double start = std::max(ctx.now(), busy_until_global_s_);
  beacon.sender_local_s = config_.clock.local(Seconds{start}).value();
  beacon.tx_power_w = beacon_power_w_;  // lets receivers observe the gain
  ctx.transmit(beacon, kBroadcast, beacon_power_w_, start);
  busy_until_global_s_ = start + beacon_airtime_s();
  next_beacon_due_global_s_ = start + config_.beacon_interval_s;
  ctx.set_timer(next_beacon_due_global_s_, kBeaconWakeCookie);
}

void ScheduledStation::on_enqueue(sim::MacContext& ctx, const sim::Packet& pkt,
                                  StationId next_hop) {
  DRN_EXPECTS(next_hop != ctx.self());
  if (neighbors_.find(next_hop) == nullptr) {
    ctx.drop(pkt);  // routed toward a station we cannot reach directly
    return;
  }
  auto& queue = queues_[next_hop];
  if (queue.size() >= config_.max_queue) {
    ctx.drop(pkt);
    return;
  }
  queue.push_back(pkt);
  replan(ctx);
}

void ScheduledStation::on_timer(sim::MacContext& ctx, std::uint64_t cookie) {
  if (cookie == kBeaconWakeCookie) {
    evict_stale(ctx);  // beacon cadence doubles as the staleness sweep
    replan(ctx);       // a beacon may have just become due
    // If nothing could be planned (e.g. no neighbours yet — a rejoined
    // station still listening for its first adoption), keep the periodic
    // wake alive instead of letting the beacon chain die.
    if (!plan_ && beacons_enabled()) {
      next_beacon_due_global_s_ = ctx.now() + config_.beacon_interval_s;
      ctx.set_timer(next_beacon_due_global_s_, kBeaconWakeCookie);
    }
    return;
  }
  if (!plan_ || cookie != plan_generation_) return;  // superseded plan
  const Plan plan = *plan_;
  plan_.reset();

  if (plan.neighbor == kBroadcast) {
    send_beacon(ctx);
    replan(ctx);
    return;
  }

  auto it = queues_.find(plan.neighbor);
  DRN_EXPECTS(it != queues_.end() && !it->second.empty());
  const sim::Packet pkt = it->second.front();
  it->second.pop_front();
  if (it->second.empty()) queues_.erase(it);

  const Neighbor* n = neighbors_.find(plan.neighbor);
  const double start = std::max(ctx.now(), busy_until_global_s_);
  ctx.transmit(pkt, plan.neighbor, config_.power.transmit_power_w(n->gain),
               start, n->rate_bps);
  busy_until_global_s_ = start + airtime_s(pkt, *n);
  replan(ctx);
}

void ScheduledStation::on_transmit_end(sim::MacContext& ctx,
                                       const sim::Packet& pkt, StationId to,
                                       bool delivered) {
  (void)pkt;
  (void)to;
  (void)delivered;  // the scheme needs no acknowledgements
  replan(ctx);
}

void ScheduledStation::on_broadcast_received(sim::MacContext& ctx,
                                             const sim::Packet& pkt,
                                             StationId from,
                                             double signal_w) {
  if (!beacons_enabled()) return;
  // One amortized-O(1) lookup covers everything the beacon updates: at
  // large M every station hears every beacon, so this path runs millions of
  // times per simulated second.
  BeaconPeer& peer = beacon_peers_[from];
  peer.last_heard_global_s = ctx.now();
  Neighbor* n = neighbors_.find_mutable(from);
  if (n == nullptr && !config_.readopt_neighbors) return;

  ClockSample sample;
  sample.mine_s = config_.clock.local(Seconds{ctx.now()}).value();
  sample.theirs_s =
      pkt.sender_local_s + pkt.size_bits / config_.data_rate_bps;
  if (peer.ring.size() < config_.max_clock_samples) {
    if (peer.ring.empty()) peer.ring.reserve(config_.max_clock_samples);
    peer.ring.push_back(sample);
  } else {
    // Full: overwrite the oldest in place — the last max_clock_samples
    // stamps survive, exactly as the old push_back/pop_front window.
    peer.ring[peer.head] = sample;
    peer.head = (peer.head + 1) % peer.ring.size();
  }

  if (n == nullptr) {
    // An unknown beaconer — a station that joined or rejoined. Adopt it once
    // two stamps allow a clock fit and the stamped power reveals the gain.
    if (peer.ring.size() < 2 || pkt.tx_power_w <= 0.0 || signal_w <= 0.0)
      return;
    Neighbor fresh;
    fresh.id = from;
    fresh.gain = signal_w / pkt.tx_power_w;
    fresh.clock = ClockModel::fit(beacon_window(peer));
    neighbors_.add(fresh);
    beacon_power_w_ =
        std::max(beacon_power_w_, config_.power.transmit_power_w(fresh.gain));
    replan(ctx);
    return;
  }

  // Refresh the observed gain (mobility changes it). Sub-ppb wobble from the
  // power round-trip is ignored so a static network keeps bit-identical
  // gains; any real change dwarfs the threshold.
  if (pkt.tx_power_w > 0.0 && signal_w > 0.0) {
    const double observed = signal_w / pkt.tx_power_w;
    if (std::abs(observed - n->gain) > 1e-9 * n->gain) n->gain = observed;
  }

  // Refit once the window holds enough points to track drift.
  if (peer.ring.size() >= 2) n->clock = ClockModel::fit(beacon_window(peer));
}

std::span<const ClockSample> ScheduledStation::beacon_window(
    const BeaconPeer& peer) {
  // Unroll the ring oldest->newest into the reused scratch so the fit sums
  // the samples in the same order (same bits) the old deque walk produced.
  fit_window_.clear();
  const std::size_t count = peer.ring.size();
  for (std::size_t i = 0; i < count; ++i)
    fit_window_.push_back(peer.ring[(peer.head + i) % count]);
  return fit_window_;
}

void ScheduledStation::on_clock_rate_changed(sim::MacContext& ctx,
                                             double delta_ppm) {
  // The oscillator sped up or slowed down relative to its CURRENT rate; the
  // reading is continuous at this instant, so re-anchor the offset at now.
  const double now = ctx.now();
  const double new_rate = config_.clock.rate() * (1.0 + delta_ppm * 1e-6);
  const double offset = config_.clock.local(Seconds{now}).value() - new_rate * now;
  config_.clock = StationClock(Seconds{offset}, new_rate);
}

void ScheduledStation::evict_stale(sim::MacContext& ctx) {
  if (config_.neighbor_timeout_s <= 0.0) return;
  const double now = ctx.now();
  std::vector<StationId> stale;
  for (const auto& n : neighbors_.all()) {
    const auto heard = beacon_peers_.find(n.id);
    const double since = heard != beacon_peers_.end()
                             ? heard->second.last_heard_global_s
                             : eviction_epoch_s_;
    if (now - since > config_.neighbor_timeout_s) stale.push_back(n.id);
  }
  for (const StationId id : stale) {
    neighbors_.erase(id);
    beacon_peers_.erase(id);
    // The ghost's queue dies with it: those packets had nowhere to go.
    if (const auto it = queues_.find(id); it != queues_.end()) {
      for (const sim::Packet& pkt : it->second) ctx.drop(pkt);
      queues_.erase(it);
    }
    if (plan_ && plan_->neighbor == id) {
      plan_.reset();
      ctx.cancel_timer(plan_timer_);
    }
  }
}

std::size_t ScheduledStation::clock_samples_from(StationId neighbor) const {
  const auto it = beacon_peers_.find(neighbor);
  return it == beacon_peers_.end() ? 0 : it->second.ring.size();
}

}  // namespace drn::core
