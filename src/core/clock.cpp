#include "core/clock.hpp"

#include "common/expects.hpp"

namespace drn::core {

StationClock::StationClock(Seconds offset, double rate)
    : offset_(offset), rate_(rate) {
  DRN_EXPECTS(rate > 0.0);
}

StationClock StationClock::random(Rng& rng, Seconds max_offset,
                                  double max_drift_ppm) {
  DRN_EXPECTS(max_offset.value() > 0.0);
  DRN_EXPECTS(max_drift_ppm >= 0.0);
  const Seconds offset{rng.uniform(0.0, max_offset.value())};
  const double drift = rng.uniform(-max_drift_ppm, max_drift_ppm) * 1e-6;
  return StationClock(offset, 1.0 + drift);
}

}  // namespace drn::core
