#include "core/clock.hpp"

#include "common/expects.hpp"

namespace drn::core {

StationClock::StationClock(double offset_s, double rate)
    : offset_s_(offset_s), rate_(rate) {
  DRN_EXPECTS(rate > 0.0);
}

StationClock StationClock::random(Rng& rng, double max_offset_s,
                                  double max_drift_ppm) {
  DRN_EXPECTS(max_offset_s > 0.0);
  DRN_EXPECTS(max_drift_ppm >= 0.0);
  const double offset = rng.uniform(0.0, max_offset_s);
  const double drift = rng.uniform(-max_drift_ppm, max_drift_ppm) * 1e-6;
  return StationClock(offset, 1.0 + drift);
}

}  // namespace drn::core
