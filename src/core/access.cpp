#include "core/access.hpp"

#include <algorithm>

#include "common/expects.hpp"

namespace drn::core {

namespace {

/// Minimum forward progress per scan iteration, sender-local seconds. Clock
/// readings can be ~1e6 s (random offsets), where one double ulp is ~1e-10 s;
/// 1 ns is comfortably above that yet far below any guard interval, so the
/// scan can never stagnate on a map/inverse round-trip landing an ulp short
/// of a slot boundary.
constexpr double kMinStepS = 1e-9;

/// If the constraint is satisfied for a (padded) start at `start_s`, returns
/// nullopt; otherwise returns the smallest sender-local start that clears the
/// first offending slot.
std::optional<double> next_feasible_start(const WindowConstraint& c,
                                          double start_s, double duration_s) {
  const double pad_s = c.pad.value();
  const double lo = c.clock.map(start_s - pad_s);
  const double hi = c.clock.map(start_s + duration_s + pad_s);
  const Schedule& sched = *c.schedule;
  for (std::int64_t slot = sched.slot_index(lo); sched.slot_begin(slot) < hi;
       ++slot) {
    if (sched.is_receive_slot(slot) != c.want_receive) {
      // Push the padded interval past the offending slot (with a nudge so
      // floating-point round-trips cannot re-select the same slot).
      return c.clock.inverse(sched.slot_end(slot)) + pad_s + kMinStepS;
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<Seconds> find_transmission_start(
    const AccessRequest& request,
    std::span<const WindowConstraint> constraints) {
  DRN_EXPECTS(request.duration.value() > 0.0);
  DRN_EXPECTS(request.horizon.value() > 0.0);
  for (const auto& c : constraints) {
    DRN_EXPECTS(c.schedule != nullptr);
    DRN_EXPECTS(c.pad.value() >= 0.0);
  }

  const double duration_s = request.duration.value();
  const double deadline = request.earliest_local.value() + request.horizon.value();
  double start = request.earliest_local.value();
  while (start <= deadline) {
    double pushed = start;
    bool feasible = true;
    for (const auto& c : constraints) {
      if (const auto next = next_feasible_start(c, start, duration_s)) {
        feasible = false;
        pushed = std::max(pushed, *next);
      }
    }
    if (feasible) return Seconds{start};
    // next_feasible_start pushes strictly past a slot boundary; the extra
    // kMinStepS floor guarantees progress even at large clock magnitudes.
    start = std::max(pushed, start + kMinStepS);
  }
  return std::nullopt;
}

}  // namespace drn::core
