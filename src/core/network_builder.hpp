// Convenience assembly of a complete scheduled-access network: clocks,
// rendezvous-fitted clock models, neighbour tables with Section-7.3 respect
// flags, power control, and one ScheduledStation MAC per station — everything
// Sections 6-7 say a self-organising deployment derives locally from the
// observable propagation matrix.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/clock.hpp"
#include "core/power_control.hpp"
#include "core/schedule.hpp"
#include "core/scheduled_station.hpp"
#include "radio/propagation_matrix.hpp"
#include "radio/reception.hpp"
#include "sim/mac.hpp"

namespace drn::core {

struct ScheduledNetworkConfig {
  /// Network-wide schedule parameters (Section 7.1-7.2).
  std::uint64_t schedule_seed = 0x5ced5ced;
  double slot_s = 0.01;
  double receive_fraction = 0.3;
  /// Packet airtime as a fraction of a slot (Section 7.2: one quarter).
  double packet_fraction = 0.25;
  /// Guard as a fraction of a slot, absorbing clock-model error.
  double guard_fraction = 0.02;

  /// Clock initialisation (Section 7.1) and rendezvous modelling (Section 7).
  double max_clock_offset_s = 1.0e6;
  double max_drift_ppm = 20.0;
  /// If true, neighbours know each other's clocks exactly (genie rendezvous);
  /// otherwise models are least-squares fits over noisy exchanges.
  bool exact_clock_models = false;
  int rendezvous_count = 4;
  double rendezvous_span_s = 120.0;
  double rendezvous_noise_s = 1.0e-6;

  /// Power control (Section 6.1): deliver this power to every addressee.
  double target_received_w = 1.0e-9;
  double max_power_w = 1.0;

  /// Stations are neighbours iff the target power is reachable AND the gain
  /// is at least this floor (0 = reachability alone decides).
  double min_neighbor_gain = 0.0;

  /// Section 7.3: avoid receive windows of third parties whose interference
  /// budget we would consume more than `significance_fraction` of.
  bool respect_third_party_windows = true;
  double significance_fraction = 0.25;

  std::size_t max_queue = 4096;

  /// Maintenance beacons + dynamics resilience, copied into every station's
  /// ScheduledStationConfig (see scheduled_station.hpp). beacon_interval_s
  /// > 0 also sets each station's data_rate_bps from the criterion (beacons
  /// need a rate to have an airtime). All default off: a network built
  /// without them behaves draw-for-draw as before.
  double beacon_interval_s = 0.0;
  double beacon_bits = 500.0;
  double neighbor_timeout_s = 0.0;
  bool readopt_neighbors = false;
};

struct ScheduledNetwork {
  Schedule schedule;
  std::vector<StationClock> clocks;
  /// Direct neighbours of each station (ids), as selected by the builder.
  std::vector<std::vector<StationId>> neighbors;
  /// One MAC per station, ready for Simulator::set_mac.
  std::vector<std::unique_ptr<ScheduledStation>> macs;
  /// Fixed packet airtime and the matching size at the criterion's rate.
  double packet_airtime_s = 0.0;
  double packet_bits = 0.0;
  /// The tolerated-interference budget used for respect flags, watts.
  double interference_budget_w = 0.0;
};

/// Builds the full network state for `gains` under `criterion`.
/// Deterministic given `rng`'s state.
[[nodiscard]] ScheduledNetwork build_scheduled_network(
    const radio::PropagationMatrix& gains,
    const radio::ReceptionCriterion& criterion,
    const ScheduledNetworkConfig& config, Rng& rng);

}  // namespace drn::core
