// The paper's station behaviour: collision-free scheduled channel access
// (Sections 6-7) as a MacProtocol for the event simulator.
//
// Behaviour per Section 7:
//   * the station publishes (via its schedule + clock) receive windows it
//     commits to, and only ever transmits inside its own transmit windows;
//   * a packet for neighbour n is sent at the earliest time a transmit
//     window of ours overlaps a (guard-shrunk, clock-model-predicted)
//     receive window of n long enough for the packet;
//   * packets are fixed-size (nominally one quarter slot, Section 7.2);
//   * queues are per-next-hop and the earliest feasible transmission across
//     ALL queues is sent first — "a station need not block the head of the
//     line", which is how transmit duty cycles approach 50%;
//   * transmit power delivers constant power to the addressee (Section 6.1);
//   * receive windows of very-near third parties are avoided (Section 7.3).
//
// No acknowledgements, no carrier sense, no per-packet control traffic: the
// single data transmission is the only emission per hop.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/access.hpp"
#include "core/clock.hpp"
#include "core/neighbor_table.hpp"
#include "core/power_control.hpp"
#include "core/schedule.hpp"
#include "sim/mac.hpp"

namespace drn::core {

struct ScheduledStationConfig {
  /// The network-wide schedule function (same seed everywhere).
  Schedule schedule;
  /// This station's own clock.
  StationClock clock;
  /// Nominal packet airtime, global seconds (nominally slot/4). Packets are
  /// assumed to be sized for this airtime at the design rate; when
  /// `data_rate_bps` (below) is set, the actual airtime of each packet is
  /// computed from its size and the link's rate instead.
  double packet_airtime_s = 0.0;
  /// Guard padding absorbing clock-prediction error, sender-local seconds.
  double guard_s = 0.0;
  /// Power policy toward addressees.
  PowerControl power = PowerControl::fixed(1.0);
  /// Window search horizon, in slots.
  double horizon_slots = 20000.0;
  /// Per-neighbour queue capacity; beyond it packets are dropped.
  std::size_t max_queue = 4096;
  /// Section 7.3: the interference a receiver tolerates (its expected signal
  /// over the required SINR), watts. When > 0, a planned transmission avoids
  /// the receive windows of any respect-flagged third party to which it
  /// would deliver more than `significance_fraction` of this budget — judged
  /// by THIS transmission's power, so low-power hops to close neighbours
  /// avoid almost no one. When 0, the respect flag alone decides
  /// (worst-case, maximally conservative).
  double interference_budget_w = 0.0;
  double significance_fraction = 0.25;
  /// The design data rate, used to compute per-packet airtimes (with
  /// Neighbor::rate_bps overriding per link). 0 = every packet occupies
  /// exactly packet_airtime_s (the fixed-size base design).
  double data_rate_bps = 0.0;
  /// Maintenance beacons ("stations occasionally rendezvous", Section 7):
  /// when > 0, the station broadcasts a clock-stamped beacon roughly every
  /// beacon_interval_s — inside its own transmit windows, avoiding respected
  /// third parties' receive windows — and continuously refits each
  /// neighbour's clock model from a sliding window of received beacon
  /// stamps, keeping guards valid indefinitely under drift. Requires
  /// data_rate_bps > 0.
  double beacon_interval_s = 0.0;
  double beacon_bits = 500.0;
  /// Sliding window of clock samples kept per neighbour for refitting.
  std::size_t max_clock_samples = 8;
  /// Dynamics resilience: when > 0 (requires beacons), a neighbour not heard
  /// from for this long is evicted — its queue is dropped and its receive
  /// windows stop constraining us, so packets are never routed at a ghost
  /// and a crashed near neighbour cannot pin our schedule forever.
  double neighbor_timeout_s = 0.0;
  /// Dynamics resilience: when true (requires beacons), a station heard
  /// beaconing that is not in the neighbour table is adopted once two clock
  /// stamps are in hand — gain observed as signal_w / tx_power_w, clock
  /// model fitted from the stamps. This is how a rejoining station is
  /// re-discovered by its neighbours.
  bool readopt_neighbors = false;
};

class ScheduledStation final : public sim::MacProtocol {
 public:
  ScheduledStation(ScheduledStationConfig config, NeighborTable neighbors);

  void on_start(sim::MacContext& ctx) override;
  void on_enqueue(sim::MacContext& ctx, const sim::Packet& pkt,
                  StationId next_hop) override;
  void on_timer(sim::MacContext& ctx, std::uint64_t cookie) override;
  void on_transmit_end(sim::MacContext& ctx, const sim::Packet& pkt,
                       StationId to, bool delivered) override;
  void on_broadcast_received(sim::MacContext& ctx, const sim::Packet& pkt,
                             StationId from, double signal_w) override;
  void on_clock_rate_changed(sim::MacContext& ctx, double delta_ppm) override;

  /// Packets currently queued across all next hops (also consulted by the
  /// simulator at churn teardown).
  [[nodiscard]] std::size_t queued_packets() const override;

  [[nodiscard]] const NeighborTable& neighbors() const { return neighbors_; }
  [[nodiscard]] const ScheduledStationConfig& config() const { return config_; }

  /// Beacon stamps received from `neighbor` so far (test introspection).
  [[nodiscard]] std::size_t clock_samples_from(StationId neighbor) const;

 private:
  struct Plan {
    StationId neighbor = kNoStation;  // kBroadcast for a beacon
    double start_local_s = 0.0;
  };

  /// Airtime of `pkt` on the link to `n` (per-link rate, else design rate,
  /// else the nominal fixed airtime).
  [[nodiscard]] double airtime_s(const sim::Packet& pkt,
                                 const Neighbor& n) const;

  /// Earliest feasible start (sender-local) for a transmission of
  /// `duration_s` to `neighbor`, no earlier than `earliest_local_s`.
  [[nodiscard]] std::optional<double> find_start(StationId neighbor,
                                                 double earliest_local_s,
                                                 double duration_s) const;

  /// Earliest feasible start for a maintenance beacon (own transmit windows,
  /// respected third parties avoided).
  [[nodiscard]] std::optional<double> find_beacon_start(
      double earliest_local_s) const;

  /// Re-evaluates what to send next and (re)arms the plan timer if a better
  /// opportunity exists.
  void replan(sim::MacContext& ctx);

  struct BeaconPeer;
  /// The peer's sample ring unrolled oldest->newest (into fit_window_),
  /// ready for ClockModel::fit. Valid until the next call.
  [[nodiscard]] std::span<const ClockSample> beacon_window(
      const BeaconPeer& peer);

  void send_beacon(sim::MacContext& ctx);

  /// Evicts every neighbour silent for longer than neighbor_timeout_s,
  /// dropping its queue and invalidating any plan aimed at it.
  void evict_stale(sim::MacContext& ctx);

  [[nodiscard]] bool beacons_enabled() const {
    return config_.beacon_interval_s > 0.0;
  }
  [[nodiscard]] double beacon_airtime_s() const {
    return config_.beacon_bits / config_.data_rate_bps;
  }

  ScheduledStationConfig config_;
  NeighborTable neighbors_;
  std::map<StationId, std::deque<sim::Packet>> queues_;
  std::optional<Plan> plan_;
  std::uint64_t plan_generation_ = 0;
  /// Handle of the armed plan timer: a superseded or invalidated plan's
  /// timer is cancelled outright rather than left to fire as a stale no-op
  /// (the plan_generation_ cookie check stays as defense in depth).
  sim::TimerHandle plan_timer_;
  double busy_until_global_s_ = 0.0;
  // Maintenance-beacon state.
  double next_beacon_due_global_s_ = 0.0;
  double beacon_power_w_ = 0.0;
  /// Per-beaconer bookkeeping: when the station was last heard (global
  /// seconds) and its clock-stamp window. The window is a fixed ring of
  /// capacity max_clock_samples — `head` names the OLDEST sample once the
  /// ring is full — kept in one hashed map: at large M every station hears
  /// every beacon, so this lookup runs millions of times per simulated
  /// second and must not walk an ordered map of all beaconers, and nothing
  /// ever iterates the map (iteration order would not be deterministic).
  struct BeaconPeer {  // declared above for beacon_window's signature
    double last_heard_global_s = 0.0;
    std::vector<ClockSample> ring;
    std::size_t head = 0;
  };
  std::unordered_map<StationId, BeaconPeer> beacon_peers_;
  /// Scratch for unrolling a ring oldest->newest before a clock fit (the
  /// fit's summation order — hence its bits — matches the old deque walk).
  std::vector<ClockSample> fit_window_;
  // Reference instant a never-heard neighbour's silence ages from.
  double eviction_epoch_s_ = 0.0;
};

}  // namespace drn::core
