// Propagation models: the map from geometry to power gain.
//
// Section 3.3 of the paper reduces propagation to a scalar per ordered pair:
// the amplitude response h_ij ∝ 1/r_ij, so the POWER gain is h² ∝ 1/r².
// This library works in power gains throughout:
//
//     received_power = power_gain(i, j) * transmitted_power.
//
// Section 3.5 ("Calibration") notes that free space is the accurate-or-
// pessimistic choice: near signals are modelled well, distant ones are
// overestimated (obstructions only attenuate). We provide the paper's
// free-space law, a general power-law exponent, and a deterministic
// log-normal shadowing decorator for the obstructed building-to-building
// scenarios that motivate the paper.
#pragma once

#include <memory>

#include "geo/vec2.hpp"

namespace drn::radio {

/// Interface: power gain between two points in the plane. Implementations
/// must be symmetric (gain(a,b) == gain(b,a)) and positive.
class PropagationModel {
 public:
  virtual ~PropagationModel() = default;

  /// Power gain between points a and b (dimensionless, > 0).
  [[nodiscard]] virtual double power_gain(geo::Vec2 a, geo::Vec2 b) const = 0;
};

/// Inverse power law: gain = reference_gain * (reference_distance / r)^alpha,
/// clamped below min_distance so the gain never exceeds the gain at
/// min_distance (the far-field model is meaningless at r -> 0).
class PowerLawPropagation : public PropagationModel {
 public:
  /// @param exponent         path-loss exponent alpha (2 = free space).
  /// @param reference_gain   gain at reference_distance (the paper's kappa,
  ///                         set by antennas and wavelength).
  /// @param reference_distance  distance at which reference_gain applies, m.
  /// @param min_distance     near-field clamp distance, m.
  explicit PowerLawPropagation(double exponent = 2.0,
                               double reference_gain = 1.0,
                               double reference_distance = 1.0,
                               double min_distance = 0.1);

  [[nodiscard]] double power_gain(geo::Vec2 a, geo::Vec2 b) const override;

  /// Gain at scalar distance r (same clamping). Exposed for the analytic
  /// noise-growth code and tests.
  [[nodiscard]] double gain_at(double r) const;

  [[nodiscard]] double exponent() const { return exponent_; }

 private:
  double exponent_;
  double reference_gain_;
  double reference_distance_;
  double min_distance_;
};

/// The paper's model: free space, power falls as 1/r².
class FreeSpacePropagation : public PowerLawPropagation {
 public:
  explicit FreeSpacePropagation(double reference_gain = 1.0,
                                double reference_distance = 1.0,
                                double min_distance = 0.1)
      : PowerLawPropagation(2.0, reference_gain, reference_distance,
                            min_distance) {}
};

/// Constant multipath penalty (Section 3.3): "the reduction in performance
/// due to actual multipath would be equivalent to a couple of decibel
/// decrease in signal to interference ratio" — modelled, as the paper does,
/// as a flat dB loss on every link (a rake receiver recovers the rest).
class MultipathPenalty : public PropagationModel {
 public:
  MultipathPenalty(std::shared_ptr<const PropagationModel> base,
                   double penalty_db);

  [[nodiscard]] double power_gain(geo::Vec2 a, geo::Vec2 b) const override;

  [[nodiscard]] double penalty_db() const { return penalty_db_; }

 private:
  std::shared_ptr<const PropagationModel> base_;
  double penalty_db_;
  double factor_;
};

/// Dual-slope (two-ray) model: free-space 1/r^2 out to a breakpoint
/// distance, then a steeper 1/r^alpha2 beyond it — the classic ground-
/// reflection behaviour of near-ground urban links. Continuous at the
/// breakpoint. Strictly more pessimistic than free space past the
/// breakpoint, so the Section 3.5 envelope argument still holds (and the
/// Section 4 interference integral CONVERGES under it, removing the
/// radio-horizon cutoff assumption — see the noise-growth tests).
class DualSlopePropagation : public PropagationModel {
 public:
  /// @param breakpoint_m distance where the slope steepens.
  /// @param far_exponent alpha2 (> 2; classically 4).
  DualSlopePropagation(double breakpoint_m, double far_exponent = 4.0,
                       double reference_gain = 1.0,
                       double reference_distance = 1.0,
                       double min_distance = 0.1);

  [[nodiscard]] double power_gain(geo::Vec2 a, geo::Vec2 b) const override;

  /// Gain at scalar distance r.
  [[nodiscard]] double gain_at(double r) const;

  [[nodiscard]] double breakpoint_m() const { return breakpoint_m_; }

 private:
  PowerLawPropagation near_;
  double breakpoint_m_;
  double far_exponent_;
};

/// Decorates a base model with deterministic log-normal shadowing: each
/// unordered pair of points draws a fixed attenuation 10^(sigma_db·z/10) with
/// z standard normal, derived by hashing the pair's coordinates under `seed`.
/// Shadowing only ever attenuates relative to +3 sigma (attenuation is capped
/// at 0 dB gain boost of 3 sigma), keeping the free-space model the
/// optimistic envelope the paper assumes. Symmetric by construction.
class LogNormalShadowing : public PropagationModel {
 public:
  LogNormalShadowing(std::shared_ptr<const PropagationModel> base,
                     double sigma_db, std::uint64_t seed);

  [[nodiscard]] double power_gain(geo::Vec2 a, geo::Vec2 b) const override;

 private:
  std::shared_ptr<const PropagationModel> base_;
  double sigma_db_;
  std::uint64_t seed_;
};

}  // namespace drn::radio
