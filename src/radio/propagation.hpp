// Propagation models: the map from geometry to power gain.
//
// Section 3.3 of the paper reduces propagation to a scalar per ordered pair:
// the amplitude response h_ij ∝ 1/r_ij, so the POWER gain is h² ∝ 1/r².
// This library works in power gains throughout:
//
//     received_power = power_gain(i, j) * transmitted_power.
//
// Section 3.5 ("Calibration") notes that free space is the accurate-or-
// pessimistic choice: near signals are modelled well, distant ones are
// overestimated (obstructions only attenuate). We provide the paper's
// free-space law, a general power-law exponent, and a deterministic
// log-normal shadowing decorator for the obstructed building-to-building
// scenarios that motivate the paper.
#pragma once

#include <memory>

#include "geo/vec2.hpp"
#include "radio/units.hpp"

namespace drn::radio {

/// Interface: power gain between two points in the plane. Implementations
/// must be symmetric (gain(a,b) == gain(b,a)) and positive.
class PropagationModel {
 public:
  virtual ~PropagationModel() = default;

  /// Power gain h² between points a and b (> 0).
  [[nodiscard]] virtual LinearGain power_gain(geo::Vec2 a,
                                              geo::Vec2 b) const = 0;
};

/// Inverse power law: gain = reference_gain * (reference_distance / r)^alpha,
/// clamped below min_distance so the gain never exceeds the gain at
/// min_distance (the far-field model is meaningless at r -> 0).
class PowerLawPropagation : public PropagationModel {
 public:
  /// @param exponent           path-loss exponent alpha (2 = free space).
  /// @param reference_gain     gain at reference_distance (the paper's kappa,
  ///                           set by antennas and wavelength).
  /// @param reference_distance distance at which reference_gain applies.
  /// @param min_distance       near-field clamp distance.
  explicit PowerLawPropagation(double exponent = 2.0,
                               LinearGain reference_gain = LinearGain{1.0},
                               Meters reference_distance = Meters{1.0},
                               Meters min_distance = Meters{0.1});

  [[nodiscard]] LinearGain power_gain(geo::Vec2 a, geo::Vec2 b) const override;

  /// Gain at scalar distance r (same clamping). Exposed for the analytic
  /// noise-growth code and tests.
  [[nodiscard]] LinearGain gain_at(Meters r) const;

  [[nodiscard]] double exponent() const { return exponent_; }

 private:
  double exponent_;
  LinearGain reference_gain_;
  Meters reference_distance_;
  Meters min_distance_;
};

/// The paper's model: free space, power falls as 1/r².
class FreeSpacePropagation : public PowerLawPropagation {
 public:
  explicit FreeSpacePropagation(LinearGain reference_gain = LinearGain{1.0},
                                Meters reference_distance = Meters{1.0},
                                Meters min_distance = Meters{0.1})
      : PowerLawPropagation(2.0, reference_gain, reference_distance,
                            min_distance) {}
};

/// Constant multipath penalty (Section 3.3): "the reduction in performance
/// due to actual multipath would be equivalent to a couple of decibel
/// decrease in signal to interference ratio" — modelled, as the paper does,
/// as a flat dB loss on every link (a rake receiver recovers the rest).
class MultipathPenalty : public PropagationModel {
 public:
  MultipathPenalty(std::shared_ptr<const PropagationModel> base,
                   Decibels penalty);

  [[nodiscard]] LinearGain power_gain(geo::Vec2 a, geo::Vec2 b) const override;

  [[nodiscard]] Decibels penalty() const { return penalty_; }

 private:
  std::shared_ptr<const PropagationModel> base_;
  Decibels penalty_;
  LinearGain factor_;
};

/// Dual-slope (two-ray) model: free-space 1/r^2 out to a breakpoint
/// distance, then a steeper 1/r^alpha2 beyond it — the classic ground-
/// reflection behaviour of near-ground urban links. Continuous at the
/// breakpoint. Strictly more pessimistic than free space past the
/// breakpoint, so the Section 3.5 envelope argument still holds (and the
/// Section 4 interference integral CONVERGES under it, removing the
/// radio-horizon cutoff assumption — see the noise-growth tests).
class DualSlopePropagation : public PropagationModel {
 public:
  /// @param breakpoint   distance where the slope steepens.
  /// @param far_exponent alpha2 (> 2; classically 4).
  DualSlopePropagation(Meters breakpoint, double far_exponent = 4.0,
                       LinearGain reference_gain = LinearGain{1.0},
                       Meters reference_distance = Meters{1.0},
                       Meters min_distance = Meters{0.1});

  [[nodiscard]] LinearGain power_gain(geo::Vec2 a, geo::Vec2 b) const override;

  /// Gain at scalar distance r.
  [[nodiscard]] LinearGain gain_at(Meters r) const;

  [[nodiscard]] Meters breakpoint() const { return breakpoint_; }

 private:
  PowerLawPropagation near_;
  Meters breakpoint_;
  double far_exponent_;
};

/// Decorates a base model with deterministic log-normal shadowing: each
/// unordered pair of points draws a fixed attenuation 10^(sigma_db·z/10) with
/// z standard normal, derived by hashing the pair's coordinates under `seed`.
/// Shadowing only ever attenuates relative to +3 sigma (attenuation is capped
/// at 0 dB gain boost of 3 sigma), keeping the free-space model the
/// optimistic envelope the paper assumes. Symmetric by construction.
class LogNormalShadowing : public PropagationModel {
 public:
  LogNormalShadowing(std::shared_ptr<const PropagationModel> base,
                     Decibels sigma, std::uint64_t seed);

  [[nodiscard]] LinearGain power_gain(geo::Vec2 a, geo::Vec2 b) const override;

 private:
  std::shared_ptr<const PropagationModel> base_;
  Decibels sigma_;
  std::uint64_t seed_;
};

}  // namespace drn::radio
