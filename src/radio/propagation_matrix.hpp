// The propagation matrix H of the paper (Section 3), stored as power gains.
//
// Entry (i, j) is the power gain from transmitter j to receiver i: if j
// transmits at power P, station i receives power gain(i, j) * P from it
// (Eq. 6 uses h²_ij P_j; we store g_ij = h²_ij). The matrix is what stations
// can measure in a real deployment and is the sole input to routing (Section
// 6.2: "they will be able to observe the path gains between themselves and
// construct entries in the propagation matrix H").
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "geo/placement.hpp"
#include "radio/propagation.hpp"
#include "radio/units.hpp"

namespace drn::radio {

/// Dense M x M matrix of power gains. Immutable after construction except for
/// explicit set_gain (used by tests and obstruction scenarios).
class PropagationMatrix {
 public:
  /// Builds the matrix from station positions under a propagation model.
  /// The diagonal (a station's coupling to its own transmitter) is set to
  /// `self_gain`; the paper treats self-interference as unconditionally fatal
  /// (Type 3), so any value >= the strongest neighbour gain is faithful.
  static PropagationMatrix from_placement(
      const geo::Placement& placement, const PropagationModel& model,
      LinearGain self_gain = LinearGain{1.0});

  /// An M x M matrix with all off-diagonal gains zero (for incremental test
  /// construction via set_gain).
  explicit PropagationMatrix(std::size_t size,
                             LinearGain self_gain = LinearGain{1.0});

  /// Number of stations M.
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Power gain from transmitter `tx` to receiver `rx`, as a raw double.
  /// This is the per-event hot path; the raw read is the sanctioned boundary
  /// where gains leave the typed layer (see DESIGN.md "Unit safety").
  [[nodiscard]] double gain(StationId rx, StationId tx) const {
    return gains_[index(rx, tx)];
  }

  /// The full gain row of station `s`: row(s)[other] == gain(s, other). The
  /// matrix is exactly symmetric by construction (every write path stores
  /// the same double in both triangles), so row(tx)[rx] is also gain(rx, tx)
  /// — which lets a loop over receivers of one transmitter walk memory
  /// sequentially instead of striding a column of an O(M²) matrix.
  [[nodiscard]] const double* row(StationId s) const {
    DRN_EXPECTS(s < size_);
    return gains_.data() + static_cast<std::size_t>(s) * size_;
  }

  /// Sets the gain in BOTH directions (the physical channel is reciprocal).
  void set_gain(StationId a, StationId b, LinearGain gain);

  /// True iff every entry equals its transpose entry.
  [[nodiscard]] bool is_symmetric() const;

  /// The largest off-diagonal gain seen by `rx` (its strongest neighbour).
  [[nodiscard]] LinearGain strongest_neighbor_gain(StationId rx) const;

 private:
  [[nodiscard]] std::size_t index(StationId rx, StationId tx) const;

  std::size_t size_;
  std::vector<double> gains_;  // row-major: gains_[rx * size_ + tx]
};

}  // namespace drn::radio
