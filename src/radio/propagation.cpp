#include "radio/propagation.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/expects.hpp"
#include "common/rng.hpp"

namespace drn::radio {

PowerLawPropagation::PowerLawPropagation(double exponent,
                                         LinearGain reference_gain,
                                         Meters reference_distance,
                                         Meters min_distance)
    : exponent_(exponent),
      reference_gain_(reference_gain),
      reference_distance_(reference_distance),
      min_distance_(min_distance) {
  DRN_EXPECTS(exponent > 0.0);
  DRN_EXPECTS(reference_gain.value() > 0.0);
  DRN_EXPECTS(reference_distance.value() > 0.0);
  DRN_EXPECTS(min_distance.value() > 0.0);
}

LinearGain PowerLawPropagation::gain_at(Meters r) const {
  DRN_EXPECTS(r.value() >= 0.0);
  const Meters clamped = std::max(r, min_distance_);
  return reference_gain_ *
         std::pow(reference_distance_ / clamped, exponent_);
}

LinearGain PowerLawPropagation::power_gain(geo::Vec2 a, geo::Vec2 b) const {
  return gain_at(Meters{geo::distance(a, b)});
}

MultipathPenalty::MultipathPenalty(std::shared_ptr<const PropagationModel> base,
                                   Decibels penalty)
    : base_(std::move(base)),
      penalty_(penalty),
      factor_((-penalty).to_linear()) {
  DRN_EXPECTS(base_ != nullptr);
  DRN_EXPECTS(penalty.value() >= 0.0);
}

LinearGain MultipathPenalty::power_gain(geo::Vec2 a, geo::Vec2 b) const {
  return base_->power_gain(a, b) * factor_;
}

DualSlopePropagation::DualSlopePropagation(Meters breakpoint,
                                           double far_exponent,
                                           LinearGain reference_gain,
                                           Meters reference_distance,
                                           Meters min_distance)
    : near_(2.0, reference_gain, reference_distance, min_distance),
      breakpoint_(breakpoint),
      far_exponent_(far_exponent) {
  DRN_EXPECTS(breakpoint.value() > 0.0);
  DRN_EXPECTS(far_exponent > 2.0);
  DRN_EXPECTS(breakpoint >= min_distance);
}

LinearGain DualSlopePropagation::gain_at(Meters r) const {
  DRN_EXPECTS(r.value() >= 0.0);
  if (r <= breakpoint_) return near_.gain_at(r);
  // Continuous at the breakpoint: gain(bp) * (bp/r)^alpha2.
  return near_.gain_at(breakpoint_) *
         std::pow(breakpoint_ / r, far_exponent_);
}

LinearGain DualSlopePropagation::power_gain(geo::Vec2 a, geo::Vec2 b) const {
  return gain_at(Meters{geo::distance(a, b)});
}

namespace {

/// Hash an unordered pair of points into a standard-normal-ish variate,
/// deterministically under `seed`. Coordinates are hashed bit-exactly; the
/// pair is ordered canonically so the result is symmetric.
double pair_normal(std::uint64_t seed, geo::Vec2 a, geo::Vec2 b) {
  const auto key = [](geo::Vec2 p) {
    return hash_u64(std::bit_cast<std::uint64_t>(p.x),
                    std::bit_cast<std::uint64_t>(p.y));
  };
  std::uint64_t ka = key(a);
  std::uint64_t kb = key(b);
  if (ka > kb) std::swap(ka, kb);
  Rng rng(hash_u64(seed, hash_u64(ka, kb)));
  return rng.normal();
}

}  // namespace

LogNormalShadowing::LogNormalShadowing(
    std::shared_ptr<const PropagationModel> base, Decibels sigma,
    std::uint64_t seed)
    : base_(std::move(base)), sigma_(sigma), seed_(seed) {
  DRN_EXPECTS(base_ != nullptr);
  DRN_EXPECTS(sigma.value() >= 0.0);
}

LinearGain LogNormalShadowing::power_gain(geo::Vec2 a, geo::Vec2 b) const {
  const double z = std::min(pair_normal(seed_, a, b), 3.0);
  const Decibels shadow = sigma_ * z;
  return base_->power_gain(a, b) * shadow.to_linear();
}

}  // namespace drn::radio
