#include "radio/propagation.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/expects.hpp"
#include "common/rng.hpp"

namespace drn::radio {

PowerLawPropagation::PowerLawPropagation(double exponent, double reference_gain,
                                         double reference_distance,
                                         double min_distance)
    : exponent_(exponent),
      reference_gain_(reference_gain),
      reference_distance_(reference_distance),
      min_distance_(min_distance) {
  DRN_EXPECTS(exponent > 0.0);
  DRN_EXPECTS(reference_gain > 0.0);
  DRN_EXPECTS(reference_distance > 0.0);
  DRN_EXPECTS(min_distance > 0.0);
}

double PowerLawPropagation::gain_at(double r) const {
  DRN_EXPECTS(r >= 0.0);
  const double clamped = std::max(r, min_distance_);
  return reference_gain_ * std::pow(reference_distance_ / clamped, exponent_);
}

double PowerLawPropagation::power_gain(geo::Vec2 a, geo::Vec2 b) const {
  return gain_at(geo::distance(a, b));
}

MultipathPenalty::MultipathPenalty(std::shared_ptr<const PropagationModel> base,
                                   double penalty_db)
    : base_(std::move(base)),
      penalty_db_(penalty_db),
      factor_(std::pow(10.0, -penalty_db / 10.0)) {
  DRN_EXPECTS(base_ != nullptr);
  DRN_EXPECTS(penalty_db >= 0.0);
}

double MultipathPenalty::power_gain(geo::Vec2 a, geo::Vec2 b) const {
  return base_->power_gain(a, b) * factor_;
}

DualSlopePropagation::DualSlopePropagation(double breakpoint_m,
                                           double far_exponent,
                                           double reference_gain,
                                           double reference_distance,
                                           double min_distance)
    : near_(2.0, reference_gain, reference_distance, min_distance),
      breakpoint_m_(breakpoint_m),
      far_exponent_(far_exponent) {
  DRN_EXPECTS(breakpoint_m > 0.0);
  DRN_EXPECTS(far_exponent > 2.0);
  DRN_EXPECTS(breakpoint_m >= min_distance);
}

double DualSlopePropagation::gain_at(double r) const {
  DRN_EXPECTS(r >= 0.0);
  if (r <= breakpoint_m_) return near_.gain_at(r);
  // Continuous at the breakpoint: gain(bp) * (bp/r)^alpha2.
  return near_.gain_at(breakpoint_m_) *
         std::pow(breakpoint_m_ / r, far_exponent_);
}

double DualSlopePropagation::power_gain(geo::Vec2 a, geo::Vec2 b) const {
  return gain_at(geo::distance(a, b));
}

namespace {

/// Hash an unordered pair of points into a standard-normal-ish variate,
/// deterministically under `seed`. Coordinates are hashed bit-exactly; the
/// pair is ordered canonically so the result is symmetric.
double pair_normal(std::uint64_t seed, geo::Vec2 a, geo::Vec2 b) {
  auto key = [](geo::Vec2 p) {
    return hash_u64(std::bit_cast<std::uint64_t>(p.x),
                    std::bit_cast<std::uint64_t>(p.y));
  };
  std::uint64_t ka = key(a);
  std::uint64_t kb = key(b);
  if (ka > kb) std::swap(ka, kb);
  Rng rng(hash_u64(seed, hash_u64(ka, kb)));
  return rng.normal();
}

}  // namespace

LogNormalShadowing::LogNormalShadowing(
    std::shared_ptr<const PropagationModel> base, double sigma_db,
    std::uint64_t seed)
    : base_(std::move(base)), sigma_db_(sigma_db), seed_(seed) {
  DRN_EXPECTS(base_ != nullptr);
  DRN_EXPECTS(sigma_db >= 0.0);
}

double LogNormalShadowing::power_gain(geo::Vec2 a, geo::Vec2 b) const {
  const double z = std::min(pair_normal(seed_, a, b), 3.0);
  const double shadow_db = sigma_db_ * z;
  return base_->power_gain(a, b) * std::pow(10.0, shadow_db / 10.0);
}

}  // namespace drn::radio
