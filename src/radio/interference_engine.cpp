#include "radio/interference_engine.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "geo/grid_index.hpp"

namespace drn::radio {

namespace {

/// Incremental recomputation period: after this many updates a reception's
/// running sum is rebuilt exactly from the live transmission set, so
/// compensated rounding residue can never accumulate across more than
/// kRecomputePeriod operations.
constexpr std::uint32_t kRecomputePeriod = 64;

struct ActiveTx {
  StationId from = kNoStation;
  double power_w = 0.0;
};

/// Flat sorted-by-id set of active transmissions for the dense engines. The
/// hot loops walk the whole set once per opened reception, so locality beats
/// asymptotics: iteration is one contiguous ascending-id scan — the exact
/// order the previous std::map produced, so every plain and compensated sum
/// accumulates in the same order and stays bit-identical — and the simulator
/// assigns ids monotonically, so insert is an amortized push_back and erase
/// a short memmove over the handful of concurrent transmissions.
class ActiveSet {
 public:
  struct Entry {
    std::uint64_t id;
    ActiveTx tx;
  };

  void insert(std::uint64_t id, ActiveTx tx) {
    const auto it = lower_bound(id);
    DRN_EXPECTS(it == entries_.end() || it->id != id);
    entries_.insert(it, Entry{id, tx});
  }

  ActiveTx extract(std::uint64_t id) {
    const auto it = lower_bound(id);
    DRN_EXPECTS(it != entries_.end() && it->id == id);
    const ActiveTx tx = it->tx;
    entries_.erase(it);
    return tx;
  }

  [[nodiscard]] bool contains(std::uint64_t id) const {
    const auto it = lower_bound(id);
    return it != entries_.end() && it->id == id;
  }

  [[nodiscard]] auto begin() const { return entries_.begin(); }
  [[nodiscard]] auto end() const { return entries_.end(); }

 private:
  [[nodiscard]] std::vector<Entry>::const_iterator lower_bound(
      std::uint64_t id) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), id,
        [](const Entry& e, std::uint64_t v) { return e.id < v; });
  }
  [[nodiscard]] std::vector<Entry>::iterator lower_bound(std::uint64_t id) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), id,
        [](const Entry& e, std::uint64_t v) { return e.id < v; });
  }

  std::vector<Entry> entries_;
};

/// Shared slot bookkeeping for the two dense-matrix engines.
template <typename Slot>
class SlotTable {
 public:
  ReceptionHandle alloc() {
    if (!free_.empty()) {
      const ReceptionHandle h = free_.back();
      free_.pop_back();
      slots_[h] = Slot{};
      slots_[h].live = true;
      return h;
    }
    slots_.emplace_back();
    slots_.back().live = true;
    return static_cast<ReceptionHandle>(slots_.size() - 1);
  }

  void release(ReceptionHandle h) {
    slots_[h].live = false;
    free_.push_back(h);
  }

  Slot& at(ReceptionHandle h) {
    DRN_EXPECTS(h < slots_.size() && slots_[h].live);
    return slots_[h];
  }
  const Slot& at(ReceptionHandle h) const {
    DRN_EXPECTS(h < slots_.size() && slots_[h].live);
    return slots_[h];
  }

  [[nodiscard]] std::size_t live_count() const {
    return slots_.size() - free_.size();
  }

  /// Visits live slots in ascending handle order (deterministic).
  template <typename F>
  void for_each_live(F&& visit) {
    for (ReceptionHandle h = 0; h < slots_.size(); ++h)
      if (slots_[h].live) visit(h, slots_[h]);
  }

 private:
  std::vector<Slot> slots_;
  std::vector<ReceptionHandle> free_;
};

// ---------------------------------------------------------------------------
// Dense engine: the historical subtract-and-clamp arithmetic, verbatim.

class DenseEngine final : public InterferenceEngine {
 public:
  explicit DenseEngine(PropagationMatrix gains) : gains_(std::move(gains)) {}

  [[nodiscard]] std::size_t station_count() const override {
    return gains_.size();
  }
  [[nodiscard]] const char* name() const override { return "dense"; }
  [[nodiscard]] double gain(StationId rx, StationId tx) const override {
    return gains_.gain(rx, tx);
  }

  void transmit_started(std::uint64_t tx_id, StationId from, Watts power,
                        const SenderVisitor& at_sender,
                        const AffectedVisitor& affected) override {
    const double power_w = power.value();
    active_.insert(tx_id, ActiveTx{from, power_w});
    // By symmetry row(from)[rx] == gain(rx, from): the walk over open
    // receptions reads one contiguous row instead of striding a column.
    const double* from_row = gains_.row(from);
    slots_.for_each_live([&](ReceptionHandle h, Slot& s) {
      if (s.rx == from) {
        if (at_sender) at_sender(h);
        return;
      }
      const double watts = from_row[s.rx] * power_w;
      s.interference_w += watts;
      if (affected) affected(h, Watts{watts});
    });
  }

  void transmit_ended(std::uint64_t tx_id,
                      const AffectedVisitor& affected) override {
    const ActiveTx tx = active_.extract(tx_id);
    const double* from_row = gains_.row(tx.from);
    slots_.for_each_live([&](ReceptionHandle h, Slot& s) {
      if (s.tx_id == tx_id || s.rx == tx.from) return;
      const double watts = from_row[s.rx] * tx.power_w;
      // The drift bug under test: `watts` was added when the rounding context
      // was different, so this subtraction leaves a residue, and the clamp
      // only hides the cases that would have gone below thermal.
      s.interference_w = std::max(thermal_w_, s.interference_w - watts);
      if (affected) affected(h, Watts{watts});
    });
  }

  [[nodiscard]] ReceptionHandle open_reception(
      std::uint64_t tx_id, StationId rx,
      const ContributionVisitor& contribution) override {
    DRN_EXPECTS(active_.contains(tx_id));
    const ReceptionHandle h = slots_.alloc();
    Slot& s = slots_.at(h);
    s.tx_id = tx_id;
    s.rx = rx;
    s.interference_w = thermal_w_;
    for (const auto& [id, other] : active_) {
      if (id == tx_id || other.from == rx) continue;
      const double watts = gains_.gain(rx, other.from) * other.power_w;
      s.interference_w += watts;
      if (contribution) contribution(id, Watts{watts});
    }
    return h;
  }

  void close_reception(ReceptionHandle h) override { slots_.release(h); }
  [[nodiscard]] std::size_t open_receptions() const override {
    return slots_.live_count();
  }

  [[nodiscard]] Watts interference(ReceptionHandle h) const override {
    return Watts{slots_.at(h).interference_w};
  }

  [[nodiscard]] Watts recomputed_interference(
      ReceptionHandle h) const override {
    const Slot& s = slots_.at(h);
    CompensatedSum sum;
    for (const auto& [id, other] : active_) {
      if (id == s.tx_id || other.from == s.rx) continue;
      sum.add(gains_.gain(s.rx, other.from) * other.power_w);
    }
    return Watts{thermal_w_ + std::max(0.0, sum.value())};
  }

  [[nodiscard]] Watts power_at(StationId st) const override {
    double power = thermal_w_;
    for (const auto& [id, tx] : active_)
      power += gains_.gain(st, tx.from) * tx.power_w;
    return Watts{power};
  }

  void enable_mobility(geo::Placement placement,
                       std::shared_ptr<const PropagationModel> model,
                       LinearGain self_gain) override {
    DRN_EXPECTS(model != nullptr);
    DRN_EXPECTS(placement.size() == gains_.size());
    placement_ = std::move(placement);
    model_ = std::move(model);
    self_gain_ = self_gain.value();
  }

  void station_moved(StationId s, geo::Vec2 position) override {
    DRN_EXPECTS(s < gains_.size());
    DRN_EXPECTS(model_ != nullptr);  // enable_mobility() first
    // RF-idle precondition: no running interference sum may reference the
    // station's old gains, or the eventual subtraction would not match.
    for (const auto& [id, tx] : active_) DRN_EXPECTS(tx.from != s);
    slots_.for_each_live(
        [&](ReceptionHandle, Slot& slot) { DRN_EXPECTS(slot.rx != s); });
    placement_[s] = position;
    for (StationId other = 0; other < gains_.size(); ++other) {
      if (other == s) continue;
      gains_.set_gain(s, other,
                      model_->power_gain(placement_[s], placement_[other]));
    }
    gains_.set_gain(s, s, LinearGain{self_gain_});
  }

 private:
  struct Slot {
    std::uint64_t tx_id = 0;
    StationId rx = kNoStation;
    double interference_w = 0.0;
    bool live = false;
  };

  PropagationMatrix gains_;
  ActiveSet active_;
  SlotTable<Slot> slots_;
  geo::Placement placement_;                        // mobility only
  std::shared_ptr<const PropagationModel> model_;   // mobility only
  double self_gain_ = 1.0;
};

// ---------------------------------------------------------------------------
// Compensated engine: Neumaier sums + periodic exact recomputation.

class CompensatedEngine final : public InterferenceEngine {
 public:
  explicit CompensatedEngine(PropagationMatrix gains)
      : gains_(std::move(gains)) {}

  [[nodiscard]] std::size_t station_count() const override {
    return gains_.size();
  }
  [[nodiscard]] const char* name() const override { return "compensated"; }
  [[nodiscard]] double gain(StationId rx, StationId tx) const override {
    return gains_.gain(rx, tx);
  }

  void transmit_started(std::uint64_t tx_id, StationId from, Watts power,
                        const SenderVisitor& at_sender,
                        const AffectedVisitor& affected) override {
    const double power_w = power.value();
    active_.insert(tx_id, ActiveTx{from, power_w});
    // By symmetry row(from)[rx] == gain(rx, from): the walk over open
    // receptions reads one contiguous row instead of striding a column.
    const double* from_row = gains_.row(from);
    slots_.for_each_live([&](ReceptionHandle h, Slot& s) {
      if (s.rx == from) {
        if (at_sender) at_sender(h);
        return;
      }
      const double watts = from_row[s.rx] * power_w;
      s.sum.add(watts);
      bump(s);
      if (affected) affected(h, Watts{watts});
    });
  }

  void transmit_ended(std::uint64_t tx_id,
                      const AffectedVisitor& affected) override {
    const ActiveTx tx = active_.extract(tx_id);
    const double* from_row = gains_.row(tx.from);
    slots_.for_each_live([&](ReceptionHandle h, Slot& s) {
      if (s.tx_id == tx_id || s.rx == tx.from) return;
      const double watts = from_row[s.rx] * tx.power_w;
      s.sum.add(-watts);
      bump(s);
      if (affected) affected(h, Watts{watts});
    });
  }

  [[nodiscard]] ReceptionHandle open_reception(
      std::uint64_t tx_id, StationId rx,
      const ContributionVisitor& contribution) override {
    DRN_EXPECTS(active_.contains(tx_id));
    const ReceptionHandle h = slots_.alloc();
    Slot& s = slots_.at(h);
    s.tx_id = tx_id;
    s.rx = rx;
    for (const auto& [id, other] : active_) {
      if (id == tx_id || other.from == rx) continue;
      const double watts = gains_.gain(rx, other.from) * other.power_w;
      s.sum.add(watts);
      if (contribution) contribution(id, Watts{watts});
    }
    return h;
  }

  void close_reception(ReceptionHandle h) override { slots_.release(h); }
  [[nodiscard]] std::size_t open_receptions() const override {
    return slots_.live_count();
  }

  [[nodiscard]] Watts interference(ReceptionHandle h) const override {
    // max(0, ·): a fully-compensated sum of removals can still leave a
    // residue of a few ulps below zero; physical interference cannot.
    return Watts{thermal_w_ + std::max(0.0, slots_.at(h).sum.value())};
  }

  [[nodiscard]] Watts recomputed_interference(
      ReceptionHandle h) const override {
    const Slot& s = slots_.at(h);
    return Watts{thermal_w_ + std::max(0.0, exact_sum(s).value())};
  }

  [[nodiscard]] Watts power_at(StationId st) const override {
    CompensatedSum sum;
    for (const auto& [id, tx] : active_)
      sum.add(gains_.gain(st, tx.from) * tx.power_w);
    return Watts{thermal_w_ + std::max(0.0, sum.value())};
  }

  void enable_mobility(geo::Placement placement,
                       std::shared_ptr<const PropagationModel> model,
                       LinearGain self_gain) override {
    DRN_EXPECTS(model != nullptr);
    DRN_EXPECTS(placement.size() == gains_.size());
    placement_ = std::move(placement);
    model_ = std::move(model);
    self_gain_ = self_gain.value();
  }

  void station_moved(StationId s, geo::Vec2 position) override {
    DRN_EXPECTS(s < gains_.size());
    DRN_EXPECTS(model_ != nullptr);  // enable_mobility() first
    // RF-idle precondition: no compensated sum may hold a contribution that
    // was added through the station's old gains.
    for (const auto& [id, tx] : active_) DRN_EXPECTS(tx.from != s);
    slots_.for_each_live(
        [&](ReceptionHandle, Slot& slot) { DRN_EXPECTS(slot.rx != s); });
    placement_[s] = position;
    for (StationId other = 0; other < gains_.size(); ++other) {
      if (other == s) continue;
      gains_.set_gain(s, other,
                      model_->power_gain(placement_[s], placement_[other]));
    }
    gains_.set_gain(s, s, LinearGain{self_gain_});
  }

 private:
  struct Slot {
    std::uint64_t tx_id = 0;
    StationId rx = kNoStation;
    CompensatedSum sum;  // excludes thermal
    std::uint32_t ops = 0;
    bool live = false;
  };

  [[nodiscard]] CompensatedSum exact_sum(const Slot& s) const {
    CompensatedSum sum;
    for (const auto& [id, other] : active_) {
      if (id == s.tx_id || other.from == s.rx) continue;
      sum.add(gains_.gain(s.rx, other.from) * other.power_w);
    }
    return sum;
  }

  void bump(Slot& s) {
    if (++s.ops >= kRecomputePeriod) {
      s.sum = exact_sum(s);
      s.ops = 0;
    }
  }

  PropagationMatrix gains_;
  ActiveSet active_;
  SlotTable<Slot> slots_;
  geo::Placement placement_;                        // mobility only
  std::shared_ptr<const PropagationModel> model_;   // mobility only
  double self_gain_ = 1.0;
};

// ---------------------------------------------------------------------------
// Near/far engine: exact near field over a spatial grid, aggregated far din.

class NearFarEngine final : public InterferenceEngine {
 public:
  NearFarEngine(const geo::Placement& placement,
                std::shared_ptr<const PropagationModel> model,
                NearFarConfig config)
      : placement_(placement),
        model_(std::move(model)),
        config_(config),
        grid_(placement, config.cell.value() > 0.0
                             ? config.cell.value()
                             : config.cutoff.value() / 4.0) {
    DRN_EXPECTS(model_ != nullptr);
    DRN_EXPECTS(config_.cutoff.value() > 0.0);
    // Near = every cell whose Chebyshev distance is within the cutoff in
    // cell units; +1 so a pair straddling the cutoff is classified near
    // (erring exact) never far.
    range_ = static_cast<int>(config_.cutoff.value() / grid_.cell_m()) + 1;
  }

  [[nodiscard]] std::size_t station_count() const override {
    return placement_.size();
  }
  [[nodiscard]] const char* name() const override { return "nearfar"; }
  [[nodiscard]] double gain(StationId rx, StationId tx) const override {
    return pair_gain(rx, tx);
  }

  void transmit_started(std::uint64_t tx_id, StationId from, Watts power,
                        const SenderVisitor& at_sender,
                        const AffectedVisitor& affected) override {
    const double power_w = power.value();
    const std::int32_t cell = grid_.cell_of(from);
    active_.emplace(tx_id, Tx{from, power_w, cell});
    tx_ids_by_cell_[cell].push_back(tx_id);
    auto& load = tx_cells_[cell];
    load.power_w.add(power_w);
    ++load.count;

    // Far field: fold the new signal into the din of every occupied
    // receiver cell beyond the cutoff, then notify its receptions.
    for (auto& [rx_cell, far] : far_) {
      if (grid_.chebyshev(cell, rx_cell) <= range_) continue;
      const double watts = power_w * cell_gain(cell, rx_cell);
      far.din_w.add(watts);
      ++far.contributors;
      for (const ReceptionHandle h : far.handles) {
        const Slot& s = slots_.at(h);
        if (s.rx == from) continue;  // cannot happen (own cell is near)
        if (affected) affected(h, Watts{watts});
      }
    }

    // Near field: exact per-pair update of receptions in cells within range.
    for_each_occupied(far_, cell, [&](std::int32_t, FarField& far) {
      for (const ReceptionHandle h : far.handles) {
        Slot& s = slots_.at(h);
        if (s.rx == from) {
          if (at_sender) at_sender(h);
          continue;
        }
        if (s.tx_id == tx_id) continue;
        const double watts = pair_gain(s.rx, from) * power_w;
        s.near_w.add(watts);
        bump(s);
        if (affected) affected(h, Watts{watts});
      }
    });
  }

  void transmit_ended(std::uint64_t tx_id,
                      const AffectedVisitor& affected) override {
    const auto node = active_.extract(tx_id);
    DRN_EXPECTS(!node.empty());
    const Tx tx = node.mapped();
    auto& ids = tx_ids_by_cell_[tx.cell];
    const auto idit = std::find(ids.begin(), ids.end(), tx_id);
    DRN_EXPECTS(idit != ids.end());
    ids.erase(idit);
    if (ids.empty()) tx_ids_by_cell_.erase(tx.cell);
    const auto lit = tx_cells_.find(tx.cell);
    DRN_EXPECTS(lit != tx_cells_.end());
    if (--lit->second.count == 0) {
      tx_cells_.erase(lit);  // exact reset: an idle cell carries no residue
    } else {
      lit->second.power_w.add(-tx.power_w);
    }

    for (auto& [rx_cell, far] : far_) {
      if (grid_.chebyshev(tx.cell, rx_cell) <= range_) continue;
      const double watts = tx.power_w * cell_gain(tx.cell, rx_cell);
      if (--far.contributors == 0) {
        far.din_w.reset();  // exact reset at quiescence
      } else {
        far.din_w.add(-watts);
      }
      for (const ReceptionHandle h : far.handles) {
        const Slot& s = slots_.at(h);
        if (s.tx_id == tx_id || s.rx == tx.from) continue;
        if (affected) affected(h, Watts{watts});
      }
    }

    for_each_occupied(far_, tx.cell, [&](std::int32_t, FarField& far) {
      for (const ReceptionHandle h : far.handles) {
        Slot& s = slots_.at(h);
        if (s.tx_id == tx_id || s.rx == tx.from) continue;
        const double watts = pair_gain(s.rx, tx.from) * tx.power_w;
        s.near_w.add(-watts);
        bump(s);
        if (affected) affected(h, Watts{watts});
      }
    });
  }

  [[nodiscard]] ReceptionHandle open_reception(
      std::uint64_t tx_id, StationId rx,
      const ContributionVisitor& contribution) override {
    const auto txit = active_.find(tx_id);
    DRN_EXPECTS(txit != active_.end());
    const ReceptionHandle h = slots_.alloc();
    Slot& s = slots_.at(h);
    s.tx_id = tx_id;
    s.rx = rx;
    s.rx_cell = grid_.cell_of(rx);
    s.tx_from = txit->second.from;
    s.tx_power_w = txit->second.power_w;
    s.tx_cell = txit->second.cell;

    // Near: exact sum over active transmissions in cells within range.
    for_each_occupied(tx_ids_by_cell_, s.rx_cell,
                      [&](std::int32_t, const std::vector<std::uint64_t>& ids) {
      for (const std::uint64_t id : ids) {
        if (id == tx_id) continue;
        const Tx& other = active_.at(id);
        if (other.from == rx) continue;
        const double watts = pair_gain(rx, other.from) * other.power_w;
        s.near_w.add(watts);
        if (contribution) contribution(id, Watts{watts});
      }
    });

    // Far: share (or build) the din aggregate for this receiver cell.
    auto& far = far_[s.rx_cell];
    if (far.handles.empty()) {
      far.din_w.reset();
      far.contributors = 0;
      for (const auto& [id, other] : active_) {
        if (grid_.chebyshev(other.cell, s.rx_cell) <= range_) continue;
        far.din_w.add(other.power_w * cell_gain(other.cell, s.rx_cell));
        ++far.contributors;
      }
    }
    far.handles.push_back(h);
    if (contribution) {
      // Per-interferer far contributions (multiuser detection wants every
      // interferer): approximate by the same cell-centre gain the aggregate
      // uses, in deterministic id order.
      for (const auto& [id, other] : active_) {
        if (id == tx_id || other.from == rx) continue;
        if (grid_.chebyshev(other.cell, s.rx_cell) <= range_) continue;
        contribution(id,
                     Watts{other.power_w * cell_gain(other.cell, s.rx_cell)});
      }
    }
    return h;
  }

  void close_reception(ReceptionHandle h) override {
    const Slot& s = slots_.at(h);
    const auto it = far_.find(s.rx_cell);
    DRN_EXPECTS(it != far_.end());
    auto& handles = it->second.handles;
    const auto hit = std::find(handles.begin(), handles.end(), h);
    DRN_EXPECTS(hit != handles.end());
    handles.erase(hit);
    if (handles.empty()) far_.erase(it);
    slots_.release(h);
  }

  [[nodiscard]] std::size_t open_receptions() const override {
    return slots_.live_count();
  }

  [[nodiscard]] Watts interference(ReceptionHandle h) const override {
    const Slot& s = slots_.at(h);
    const auto it = far_.find(s.rx_cell);
    DRN_EXPECTS(it != far_.end());
    double far = std::max(0.0, it->second.din_w.value());
    if (grid_.chebyshev(s.tx_cell, s.rx_cell) > range_) {
      // The reception's own signal sits in the far aggregate; take it out.
      far = std::max(
          0.0, far - s.tx_power_w * cell_gain(s.tx_cell, s.rx_cell));
    }
    return Watts{thermal_w_ + std::max(0.0, s.near_w.value()) + far};
  }

  [[nodiscard]] Watts recomputed_interference(
      ReceptionHandle h) const override {
    const Slot& s = slots_.at(h);
    CompensatedSum near;
    CompensatedSum far;
    for (const auto& [id, other] : active_) {
      if (id == s.tx_id || other.from == s.rx) continue;
      if (grid_.chebyshev(other.cell, s.rx_cell) <= range_) {
        near.add(pair_gain(s.rx, other.from) * other.power_w);
      } else {
        far.add(other.power_w * cell_gain(other.cell, s.rx_cell));
      }
    }
    return Watts{thermal_w_ + std::max(0.0, near.value()) +
                 std::max(0.0, far.value())};
  }

  [[nodiscard]] Watts power_at(StationId st) const override {
    const std::int32_t cell = grid_.cell_of(st);
    CompensatedSum sum;
    for_each_occupied(tx_ids_by_cell_, cell,
                      [&](std::int32_t, const std::vector<std::uint64_t>& ids) {
      for (const std::uint64_t id : ids) {
        const Tx& tx = active_.at(id);
        sum.add(pair_gain(st, tx.from) * tx.power_w);
      }
    });
    for (const auto& [c, load] : tx_cells_) {
      if (grid_.chebyshev(c, cell) <= range_) continue;
      sum.add(std::max(0.0, load.power_w.value()) * cell_gain(c, cell));
    }
    return Watts{thermal_w_ + std::max(0.0, sum.value())};
  }

  void enable_mobility(geo::Placement placement,
                       std::shared_ptr<const PropagationModel> model,
                       LinearGain self_gain) override {
    // Nothing to set up: this engine already owns its placement and model
    // and evaluates every gain lazily from them.
    DRN_EXPECTS(placement.size() == placement_.size());
    (void)model;
    (void)self_gain;
  }

  void station_moved(StationId s, geo::Vec2 position) override {
    DRN_EXPECTS(s < placement_.size());
    // RF-idle precondition: the station contributes to no active near sum,
    // no cell load, and no far-field din, so only its future pairings see
    // the new position.
    for (const auto& [id, tx] : active_) DRN_EXPECTS(tx.from != s);
    slots_.for_each_live(
        [&](ReceptionHandle, Slot& slot) { DRN_EXPECTS(slot.rx != s); });
    placement_[s] = position;
    grid_.move_station(s, position);
  }

 private:
  struct Tx {
    StationId from = kNoStation;
    double power_w = 0.0;
    std::int32_t cell = 0;
  };

  struct Slot {
    std::uint64_t tx_id = 0;
    StationId rx = kNoStation;
    std::int32_t rx_cell = 0;
    StationId tx_from = kNoStation;
    double tx_power_w = 0.0;
    std::int32_t tx_cell = 0;
    CompensatedSum near_w;  // exact near field, thermal excluded
    std::uint32_t ops = 0;
    bool live = false;
  };

  /// Per occupied receiver cell: the aggregated far-field din (Section 4's
  /// "din of distant transmitters") plus the open receptions sharing it.
  struct FarField {
    CompensatedSum din_w;
    int contributors = 0;
    std::vector<ReceptionHandle> handles;  // event (insertion) order
  };

  struct CellLoad {
    CompensatedSum power_w;
    int count = 0;
  };

  /// Visits `map`'s entries whose cell key lies within Chebyshev range_ of
  /// `cell`, row-major (the same order for_each_cell_in_range would visit
  /// them, so floating-point accumulation order is unchanged). One
  /// lower_bound per row instead of one find per cell: the near window is
  /// mostly empty, and this walks only occupied entries.
  template <typename Map, typename F>
  void for_each_occupied(Map& map, std::int32_t cell, F&& visit) const {
    const int cols = grid_.cols();
    const int cx = cell % cols;
    const int cy = cell / cols;
    const int y_lo = cy - range_ < 0 ? 0 : cy - range_;
    const int y_hi = cy + range_ >= grid_.rows() ? grid_.rows() - 1 : cy + range_;
    const int x_lo = cx - range_ < 0 ? 0 : cx - range_;
    const int x_hi = cx + range_ >= cols ? cols - 1 : cx + range_;
    for (int y = y_lo; y <= y_hi; ++y) {
      const std::int32_t row_hi = y * cols + x_hi;
      for (auto it = map.lower_bound(y * cols + x_lo);
           it != map.end() && it->first <= row_hi; ++it)
        visit(it->first, it->second);
    }
  }

  [[nodiscard]] double pair_gain(StationId rx, StationId tx) const {
    if (rx == tx) return config_.self_gain.value();
    return model_->power_gain(placement_[rx], placement_[tx]).value();
  }

  [[nodiscard]] double cell_gain(std::int32_t a, std::int32_t b) const {
    return model_->power_gain(grid_.cell_center(a), grid_.cell_center(b))
        .value();
  }

  void bump(Slot& s) {
    if (++s.ops < kRecomputePeriod) return;
    CompensatedSum near;
    for (const auto& [id, other] : active_) {
      if (id == s.tx_id || other.from == s.rx) continue;
      if (grid_.chebyshev(other.cell, s.rx_cell) > range_) continue;
      near.add(pair_gain(s.rx, other.from) * other.power_w);
    }
    s.near_w = near;
    s.ops = 0;
  }

  geo::Placement placement_;
  std::shared_ptr<const PropagationModel> model_;
  NearFarConfig config_;
  geo::GridIndex grid_;
  int range_ = 1;
  std::map<std::uint64_t, Tx> active_;
  std::map<std::int32_t, std::vector<std::uint64_t>> tx_ids_by_cell_;
  std::map<std::int32_t, CellLoad> tx_cells_;
  std::map<std::int32_t, FarField> far_;
  SlotTable<Slot> slots_;
};

}  // namespace

void InterferenceEngine::station_moved(StationId s, geo::Vec2 position) {
  (void)s;
  (void)position;
  DRN_EXPECTS(false);  // this engine does not support mobility
}

void InterferenceEngine::enable_mobility(
    geo::Placement placement, std::shared_ptr<const PropagationModel> model,
    LinearGain self_gain) {
  (void)placement;
  (void)model;
  (void)self_gain;
  DRN_EXPECTS(false);  // this engine does not support mobility
}

std::optional<InterferenceEngineKind> parse_engine(std::string_view text) {
  if (text == "dense") return InterferenceEngineKind::kDense;
  if (text == "compensated") return InterferenceEngineKind::kCompensated;
  if (text == "nearfar") return InterferenceEngineKind::kNearFar;
  return std::nullopt;
}

const char* engine_name(InterferenceEngineKind kind) {
  switch (kind) {
    case InterferenceEngineKind::kDense: return "dense";
    case InterferenceEngineKind::kCompensated: return "compensated";
    case InterferenceEngineKind::kNearFar: return "nearfar";
  }
  return "?";
}

PropagationMatrix make_dense_gains(const geo::Placement& placement,
                                   const PropagationModel& model,
                                   LinearGain self_gain) {
  DRN_EXPECTS(placement.size() <= kDenseMatrixGuardM);
  // drn-lint: allow(dense-matrix) — the sanctioned guarded route.
  return PropagationMatrix::from_placement(placement, model, self_gain);
}

std::unique_ptr<InterferenceEngine> make_dense_engine(PropagationMatrix gains) {
  return std::make_unique<DenseEngine>(std::move(gains));
}

std::unique_ptr<InterferenceEngine> make_compensated_engine(
    PropagationMatrix gains) {
  return std::make_unique<CompensatedEngine>(std::move(gains));
}

std::unique_ptr<InterferenceEngine> make_nearfar_engine(
    const geo::Placement& placement,
    std::shared_ptr<const PropagationModel> model, NearFarConfig config) {
  return std::make_unique<NearFarEngine>(placement, std::move(model), config);
}

}  // namespace drn::radio
