#include "radio/reception.hpp"

#include <cmath>

#include "common/expects.hpp"
#include "radio/units.hpp"

namespace drn::radio {

double shannon_capacity(double bandwidth_hz, double snr) {
  DRN_EXPECTS(bandwidth_hz > 0.0);
  DRN_EXPECTS(snr >= 0.0);
  return bandwidth_hz * std::log2(1.0 + snr);
}

double capacity_per_hz(double snr) {
  DRN_EXPECTS(snr >= 0.0);
  return std::log2(1.0 + snr);
}

double snr_for_rate_fraction(double rate_fraction) {
  DRN_EXPECTS(rate_fraction > 0.0);
  return std::exp2(rate_fraction) - 1.0;
}

ReceptionCriterion::ReceptionCriterion(double bandwidth_hz, double data_rate_bps,
                                       double margin_db)
    : bandwidth_hz_(bandwidth_hz),
      data_rate_bps_(data_rate_bps),
      margin_db_(margin_db),
      required_snr_(from_db(margin_db) *
                    snr_for_rate_fraction(data_rate_bps / bandwidth_hz)) {
  DRN_EXPECTS(bandwidth_hz > 0.0);
  DRN_EXPECTS(data_rate_bps > 0.0);
  DRN_EXPECTS(margin_db >= 0.0);
}

double ReceptionCriterion::required_snr_db() const {
  return to_db(required_snr_);
}

double ReceptionCriterion::processing_gain_db() const {
  return to_db(processing_gain());
}

double ReceptionCriterion::packet_duration_s(double bits) const {
  DRN_EXPECTS(bits > 0.0);
  return bits / data_rate_bps_;
}

}  // namespace drn::radio
