#include "radio/reception.hpp"

#include <cmath>

#include "common/expects.hpp"

namespace drn::radio {

BitsPerSecond shannon_capacity(Hertz bandwidth, LinearGain snr) {
  DRN_EXPECTS(bandwidth.value() > 0.0);
  DRN_EXPECTS(snr.value() >= 0.0);
  return BitsPerSecond{bandwidth.value() * std::log2(1.0 + snr.value())};
}

double capacity_per_hz(LinearGain snr) {
  DRN_EXPECTS(snr.value() >= 0.0);
  return std::log2(1.0 + snr.value());
}

LinearGain snr_for_rate_fraction(double rate_fraction) {
  DRN_EXPECTS(rate_fraction > 0.0);
  return LinearGain{std::exp2(rate_fraction) - 1.0};
}

ReceptionCriterion::ReceptionCriterion(Hertz bandwidth, BitsPerSecond data_rate,
                                       Decibels margin)
    : bandwidth_(bandwidth),
      data_rate_(data_rate),
      margin_(margin),
      required_snr_(margin.to_linear() *
                    snr_for_rate_fraction(data_rate / bandwidth)) {
  DRN_EXPECTS(bandwidth.value() > 0.0);
  DRN_EXPECTS(data_rate.value() > 0.0);
  DRN_EXPECTS(margin.value() >= 0.0);
}

Decibels ReceptionCriterion::required_snr_db() const {
  return required_snr_.to_db();
}

Decibels ReceptionCriterion::processing_gain_db() const {
  return processing_gain().to_db();
}

Seconds ReceptionCriterion::packet_duration(Bits bits) const {
  DRN_EXPECTS(bits.value() > 0.0);
  return bits / data_rate_;
}

}  // namespace drn::radio
