#include "radio/noise_growth.hpp"

#include <cmath>
#include <limits>
#include <numbers>

#include "common/expects.hpp"

namespace drn::radio {

Meters characteristic_length(double density) {
  DRN_EXPECTS(density > 0.0);
  return Meters{1.0 / std::sqrt(std::numbers::pi * density)};
}

double disc_density(std::size_t stations, Meters region_radius) {
  DRN_EXPECTS(stations > 0);
  DRN_EXPECTS(region_radius.value() > 0.0);
  return static_cast<double>(stations) /
         (std::numbers::pi * region_radius.value() * region_radius.value());
}

LinearGain annulus_interference(double density, double eta, Meters r_inner,
                                Meters r_outer) {
  DRN_EXPECTS(density > 0.0);
  DRN_EXPECTS(eta >= 0.0 && eta <= 1.0);
  DRN_EXPECTS(r_inner.value() > 0.0);
  DRN_EXPECTS(r_outer >= r_inner);
  return LinearGain{2.0 * std::numbers::pi * eta * density *
                    std::log(r_outer / r_inner)};
}

LinearGain dual_slope_total_interference(double density, double eta,
                                         Meters r_inner, Meters breakpoint,
                                         double far_exponent) {
  DRN_EXPECTS(density > 0.0);
  DRN_EXPECTS(eta >= 0.0 && eta <= 1.0);
  DRN_EXPECTS(r_inner.value() > 0.0);
  DRN_EXPECTS(breakpoint >= r_inner);
  DRN_EXPECTS(far_exponent > 2.0);
  return LinearGain{2.0 * std::numbers::pi * eta * density *
                    (std::log(breakpoint / r_inner) +
                     1.0 / (far_exponent - 2.0))};
}

LinearGain nearest_neighbor_snr(std::size_t stations, double eta) {
  DRN_EXPECTS(stations >= 2);
  DRN_EXPECTS(eta > 0.0 && eta <= 1.0);
  return LinearGain{1.0 / (eta * std::log(static_cast<double>(stations)))};
}

Decibels nearest_neighbor_snr_db(std::size_t stations, double eta) {
  return nearest_neighbor_snr(stations, eta).to_db();
}

LinearGain snr_at_distance_multiple(std::size_t stations, double eta,
                                    double distance_multiple) {
  DRN_EXPECTS(distance_multiple > 0.0);
  return nearest_neighbor_snr(stations, eta) /
         (distance_multiple * distance_multiple);
}

SnrSample sample_nearest_neighbor_snr(std::size_t stations,
                                      Meters region_radius, double eta,
                                      Rng& rng) {
  DRN_EXPECTS(stations >= 3);
  DRN_EXPECTS(region_radius.value() > 0.0);
  DRN_EXPECTS(eta > 0.0 && eta <= 1.0);

  const geo::Placement placement =
      geo::uniform_disc(stations, region_radius.value(), rng);

  // Receiver: the station nearest the disc centre (avoids edge effects, where
  // the interference annulus is truncated and Eq. 15 overestimates).
  std::size_t rx = 0;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < placement.size(); ++i) {
    const double d2 = geo::norm_sq(placement[i]);
    if (d2 < best) {
      best = d2;
      rx = i;
    }
  }

  // Sender: the receiver's nearest neighbour, at unit power.
  std::size_t tx = rx == 0 ? 1 : 0;
  double tx_d2 = geo::distance_sq(placement[rx], placement[tx]);
  for (std::size_t i = 0; i < placement.size(); ++i) {
    if (i == rx || i == tx) continue;
    const double d2 = geo::distance_sq(placement[rx], placement[i]);
    if (d2 < tx_d2) {
      tx_d2 = d2;
      tx = i;
    }
  }

  SnrSample s;
  s.signal = LinearGain{1.0 / tx_d2};  // 1/r² power gain, unit reference.
  double interference = 0.0;
  for (std::size_t i = 0; i < placement.size(); ++i) {
    if (i == rx || i == tx) continue;
    if (!rng.bernoulli(eta)) continue;
    interference += 1.0 / geo::distance_sq(placement[rx], placement[i]);
  }
  s.interference = LinearGain{interference};
  s.snr = interference > 0.0
              ? s.signal / s.interference
              : LinearGain{std::numeric_limits<double>::infinity()};
  return s;
}

}  // namespace drn::radio
