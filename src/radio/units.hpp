// Radio-layer unit vocabulary: physical constants, the strong quantity types
// of common/units.hpp re-exported under drn::radio, and the sanctioned
// raw-double decibel converters for API boundaries.
//
// The paper reasons almost entirely in decibels ("5 dB margin", "20 to 25 dB
// of processing gain", "6 dB per doubling of distance"); the library computes
// in linear power ratios and converts at the edges. Library code should use
// the strong types (Decibels::to_linear(), LinearGain::to_db()); the raw
// to_db/from_db helpers below exist for the CLI/telemetry boundary where
// quantities arrive or leave as plain doubles, and this header is the one
// sanctioned home for them (see tools/drn_lint.py manual-db).
#pragma once

#include "common/units.hpp"

namespace drn::radio {

using units::Bits;
using units::BitsPerSecond;
using units::DecibelMilliwatts;
using units::Decibels;
using units::Hertz;
using units::LinearGain;
using units::Meters;
using units::Milliwatts;
using units::Seconds;
using units::Slots;
using units::Watts;

/// Boltzmann constant, J/K.
inline constexpr double kBoltzmann = 1.380649e-23;

/// Standard receiver reference temperature, K.
inline constexpr double kStandardTemperatureK = 290.0;

/// Linear power ratio -> decibels. Requires a positive ratio.
[[nodiscard]] double to_db(double linear);

/// Decibels -> linear power ratio.
[[nodiscard]] double from_db(double db);

/// Watts -> dBm (decibels relative to one milliwatt).
[[nodiscard]] double watts_to_dbm(double watts);

/// dBm -> watts.
[[nodiscard]] double dbm_to_watts(double dbm);

/// Thermal noise floor kTB for the given bandwidth, at the standard 290 K
/// reference temperature. Section 4 argues this is dominated by aggregate
/// interference at scale; the simulator still includes it.
[[nodiscard]] Watts thermal_noise(Hertz bandwidth,
                                  double temperature_k = kStandardTemperatureK);

/// Raw-double boundary form of thermal_noise().
[[nodiscard]] double thermal_noise_watts(double bandwidth_hz,
                                         double temperature_k = kStandardTemperatureK);

}  // namespace drn::radio
