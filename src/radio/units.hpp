// Decibel conversions and physical constants.
//
// The paper reasons almost entirely in decibels ("5 dB margin", "20 to 25 dB
// of processing gain", "6 dB per doubling of distance"); the library computes
// in linear power ratios and converts at the edges.
#pragma once

namespace drn::radio {

/// Boltzmann constant, J/K.
inline constexpr double kBoltzmann = 1.380649e-23;

/// Standard receiver reference temperature, K.
inline constexpr double kStandardTemperatureK = 290.0;

/// Linear power ratio -> decibels. Requires a positive ratio.
[[nodiscard]] double to_db(double linear);

/// Decibels -> linear power ratio.
[[nodiscard]] double from_db(double db);

/// Watts -> dBm (decibels relative to one milliwatt).
[[nodiscard]] double watts_to_dbm(double watts);

/// dBm -> watts.
[[nodiscard]] double dbm_to_watts(double dbm);

/// Thermal noise floor kTB in watts for the given bandwidth, at the standard
/// 290 K reference temperature. Section 4 argues this is dominated by
/// aggregate interference at scale; the simulator still includes it.
[[nodiscard]] double thermal_noise_watts(double bandwidth_hz,
                                         double temperature_k = kStandardTemperatureK);

}  // namespace drn::radio
