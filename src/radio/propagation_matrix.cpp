#include "radio/propagation_matrix.hpp"

#include <algorithm>

#include "common/expects.hpp"

namespace drn::radio {

PropagationMatrix::PropagationMatrix(std::size_t size, LinearGain self_gain)
    : size_(size), gains_(size * size, 0.0) {
  DRN_EXPECTS(size > 0);
  DRN_EXPECTS(self_gain.value() > 0.0);
  for (std::size_t i = 0; i < size_; ++i)
    gains_[i * size_ + i] = self_gain.value();
}

PropagationMatrix PropagationMatrix::from_placement(
    const geo::Placement& placement, const PropagationModel& model,
    LinearGain self_gain) {
  PropagationMatrix m(placement.size(), self_gain);
  for (std::size_t i = 0; i < placement.size(); ++i) {
    for (std::size_t j = i + 1; j < placement.size(); ++j) {
      const double g = model.power_gain(placement[i], placement[j]).value();
      m.gains_[i * m.size_ + j] = g;
      m.gains_[j * m.size_ + i] = g;
    }
  }
  return m;
}

std::size_t PropagationMatrix::index(StationId rx, StationId tx) const {
  DRN_EXPECTS(rx < size_ && tx < size_);
  return static_cast<std::size_t>(rx) * size_ + tx;
}

void PropagationMatrix::set_gain(StationId a, StationId b, LinearGain gain) {
  DRN_EXPECTS(gain.value() > 0.0);
  gains_[index(a, b)] = gain.value();
  gains_[index(b, a)] = gain.value();
}

bool PropagationMatrix::is_symmetric() const {
  for (std::size_t i = 0; i < size_; ++i)
    for (std::size_t j = i + 1; j < size_; ++j)
      if (gains_[i * size_ + j] != gains_[j * size_ + i]) return false;
  return true;
}

LinearGain PropagationMatrix::strongest_neighbor_gain(StationId rx) const {
  DRN_EXPECTS(rx < size_);
  double best = 0.0;
  for (std::size_t tx = 0; tx < size_; ++tx)
    if (tx != rx) best = std::max(best, gains_[rx * size_ + tx]);
  return LinearGain{best};
}

}  // namespace drn::radio
