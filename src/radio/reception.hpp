// The reception model of Sections 3.4 and 6: Shannon-bound threshold with a
// detection margin, and the processing-gain arithmetic built on it.
//
// A packet sent at rate C over bandwidth W is successfully received iff the
// signal-to-noise-plus-interference ratio satisfies, for the WHOLE packet
// duration (Eq. 4),
//
//     S/N >= beta * (2^(C/W) - 1),
//
// where beta > 1 is the margin covering the gap between practical modems and
// the Shannon bound (the paper budgets 5 dB, beta ~ 3.16). W/C is the
// spread-spectrum processing gain; Section 6 determines 20-25 dB of it is the
// right amount for a scalable network.
#pragma once

namespace drn::radio {

/// Shannon capacity C = W log2(1 + snr) in bits/second.
[[nodiscard]] double shannon_capacity(double bandwidth_hz, double snr);

/// Capacity per hertz, log2(1 + snr). The paper quotes this per kilohertz:
/// snr = 0.01 -> ~14 b/s/kHz, snr = 0.04 -> ~56 b/s/kHz (Section 4).
[[nodiscard]] double capacity_per_hz(double snr);

/// The SNR needed to carry `rate_fraction` = C/W by the Shannon bound, i.e.
/// 2^(C/W) - 1. Inverse of capacity_per_hz.
[[nodiscard]] double snr_for_rate_fraction(double rate_fraction);

/// The fixed-rate reception criterion of Eq. 4. Immutable value type; one
/// instance describes the whole (homogeneous) network, since the paper fixes
/// a single design rate for all stations.
class ReceptionCriterion {
 public:
  /// @param bandwidth_hz  spread (chip) bandwidth W.
  /// @param data_rate_bps design data rate C (must leave C < W achievable).
  /// @param margin_db     detection margin beta above the Shannon bound
  ///                      (paper: 5 dB).
  ReceptionCriterion(double bandwidth_hz, double data_rate_bps,
                     double margin_db = 5.0);

  /// Minimum SINR at which a packet is received, beta * (2^(C/W) - 1).
  [[nodiscard]] double required_snr() const { return required_snr_; }

  /// Same, in dB.
  [[nodiscard]] double required_snr_db() const;

  /// Spread-spectrum processing gain W/C (linear).
  [[nodiscard]] double processing_gain() const {
    return bandwidth_hz_ / data_rate_bps_;
  }

  /// Processing gain in dB (Section 6: the design lands in 20-25 dB).
  [[nodiscard]] double processing_gain_db() const;

  /// True iff a signal power `signal_w` against total noise-plus-interference
  /// `noise_w` meets the criterion.
  [[nodiscard]] bool receivable(double signal_w, double noise_w) const {
    return signal_w >= required_snr_ * noise_w;
  }

  [[nodiscard]] double bandwidth_hz() const { return bandwidth_hz_; }
  [[nodiscard]] double data_rate_bps() const { return data_rate_bps_; }
  [[nodiscard]] double margin_db() const { return margin_db_; }

  /// Airtime of a packet of `bits` at the design rate, seconds.
  [[nodiscard]] double packet_duration_s(double bits) const;

 private:
  double bandwidth_hz_;
  double data_rate_bps_;
  double margin_db_;
  double required_snr_;
};

}  // namespace drn::radio
