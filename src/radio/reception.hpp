// The reception model of Sections 3.4 and 6: Shannon-bound threshold with a
// detection margin, and the processing-gain arithmetic built on it.
//
// A packet sent at rate C over bandwidth W is successfully received iff the
// signal-to-noise-plus-interference ratio satisfies, for the WHOLE packet
// duration (Eq. 4),
//
//     S/N >= beta * (2^(C/W) - 1),
//
// where beta > 1 is the margin covering the gap between practical modems and
// the Shannon bound (the paper budgets 5 dB, beta ~ 3.16). W/C is the
// spread-spectrum processing gain; Section 6 determines 20-25 dB of it is the
// right amount for a scalable network.
#pragma once

#include "radio/units.hpp"

namespace drn::radio {

/// Shannon capacity C = W log2(1 + snr).
[[nodiscard]] BitsPerSecond shannon_capacity(Hertz bandwidth, LinearGain snr);

/// Capacity per hertz, log2(1 + snr), in bits/s/Hz. The paper quotes this per
/// kilohertz: snr = 0.01 -> ~14 b/s/kHz, snr = 0.04 -> ~56 b/s/kHz (Sec. 4).
[[nodiscard]] double capacity_per_hz(LinearGain snr);

/// The SNR needed to carry `rate_fraction` = C/W by the Shannon bound, i.e.
/// 2^(C/W) - 1. Inverse of capacity_per_hz.
[[nodiscard]] LinearGain snr_for_rate_fraction(double rate_fraction);

/// The fixed-rate reception criterion of Eq. 4. Immutable value type; one
/// instance describes the whole (homogeneous) network, since the paper fixes
/// a single design rate for all stations.
class ReceptionCriterion {
 public:
  /// @param bandwidth spread (chip) bandwidth W.
  /// @param data_rate design data rate C (must leave C < W achievable).
  /// @param margin    detection margin beta above the Shannon bound
  ///                  (paper: 5 dB).
  ReceptionCriterion(Hertz bandwidth, BitsPerSecond data_rate,
                     Decibels margin = Decibels{5.0});

  /// Minimum SINR at which a packet is received, beta * (2^(C/W) - 1).
  [[nodiscard]] LinearGain required_snr() const { return required_snr_; }

  /// Same, in dB.
  [[nodiscard]] Decibels required_snr_db() const;

  /// Spread-spectrum processing gain W/C (linear).
  [[nodiscard]] LinearGain processing_gain() const {
    return bandwidth_ / data_rate_;
  }

  /// Processing gain in dB (Section 6: the design lands in 20-25 dB).
  [[nodiscard]] Decibels processing_gain_db() const;

  /// True iff a signal against total noise-plus-interference `noise` meets
  /// the criterion.
  [[nodiscard]] bool receivable(Watts signal, Watts noise) const {
    return signal >= required_snr_ * noise;
  }

  [[nodiscard]] Hertz bandwidth() const { return bandwidth_; }
  [[nodiscard]] BitsPerSecond data_rate() const { return data_rate_; }
  [[nodiscard]] Decibels margin() const { return margin_; }

  // Raw-double reads for the CLI/telemetry boundary (sim events and JSON
  // carry plain doubles by design).
  [[nodiscard]] double bandwidth_hz() const { return bandwidth_.value(); }
  [[nodiscard]] double data_rate_bps() const { return data_rate_.value(); }
  [[nodiscard]] double margin_db() const { return margin_.value(); }

  /// Airtime of a packet of `bits` at the design rate.
  [[nodiscard]] Seconds packet_duration(Bits bits) const;

 private:
  Hertz bandwidth_;
  BitsPerSecond data_rate_;
  Decibels margin_;
  LinearGain required_snr_;
};

}  // namespace drn::radio
