// Pluggable interference accounting behind the simulator's SINR hot path.
//
// The simulator maintains, for every in-flight reception, the summed power of
// all other active transmissions (Eq. 5-6). How that sum is maintained is a
// pure performance/precision trade, so it lives behind this interface:
//
//   dense        The historical baseline: plain += / subtract-and-clamp over
//                a dense O(M²) PropagationMatrix. Kept because its drift bug
//                (subtracting a float that was added in a different rounding
//                context, then clamping at thermal) is what the regression
//                tests demonstrate against.
//   compensated  The fix: Neumaier compensated accumulation plus a periodic
//                exact recomputation from the live transmission set, still
//                over the dense matrix. Bit-accurate interference for runs of
//                any length; the default engine.
//   nearfar      Section 4's din made algorithmic: a uniform spatial grid
//                (geo/grid_index) enumerates interferers within a cutoff
//                radius exactly, and everything beyond is folded into one
//                aggregated far-field term per (tx cell, rx cell) pair using
//                cell-centre gains. Gains are evaluated lazily on demand —
//                no O(M²) matrix — so M is bounded by memory for stations,
//                not for station pairs. Approximation error is bounded by
//                the gain variation across one cell at the cutoff distance
//                (see DESIGN.md §"Interference engines").
//
// Engines own all interference state; their sole client is the physical
// layer (sim::RadioMedium — nothing above it may touch interference state,
// enforced by drn_lint's layer-boundary rule), which holds one opaque
// ReceptionHandle per in-flight reception and is notified through visitors
// when a transmission start/end changes a reception's interference (so it
// can re-test SINR and track per-interferer contributions for multiuser
// detection). All engine iteration runs in deterministic order (ordered
// maps, row-major cells), preserving the simulator's bit-reproducibility
// contract.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>

#include "common/expects.hpp"
#include "common/types.hpp"
#include "geo/placement.hpp"
#include "geo/vec2.hpp"
#include "radio/propagation.hpp"
#include "radio/propagation_matrix.hpp"
#include "radio/units.hpp"

namespace drn::radio {

/// Neumaier-compensated running sum: add() accumulates the rounding error of
/// every addition in a second double, value() folds it back in. Unlike plain
/// Kahan it stays correct when the addend is larger than the running sum
/// (exactly the transmit-end case: subtracting the last big contribution).
class CompensatedSum {
 public:
  void add(double x) {
    const double t = sum_ + x;
    if (std::abs(sum_) >= std::abs(x)) {
      comp_ += (sum_ - t) + x;
    } else {
      comp_ += (x - t) + sum_;
    }
    sum_ = t;
  }
  [[nodiscard]] double value() const { return sum_ + comp_; }
  void reset() { sum_ = 0.0; comp_ = 0.0; }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

enum class InterferenceEngineKind {
  kDense,        // legacy subtract-and-clamp (drifts; kept as the baseline)
  kCompensated,  // compensated exact accumulation (default)
  kNearFar,      // grid-indexed near field + aggregated far-field din
};

/// Parses "dense" | "compensated" | "nearfar".
std::optional<InterferenceEngineKind> parse_engine(std::string_view text);
const char* engine_name(InterferenceEngineKind kind);

/// Opaque id of one in-flight reception inside an engine.
using ReceptionHandle = std::uint32_t;
inline constexpr ReceptionHandle kInvalidReception = ~ReceptionHandle{0};

class InterferenceEngine {
 public:
  /// Notified for each open reception whose interference a transmission
  /// start/end changed, with the power delta (always positive; the engine
  /// has already applied the sign internally).
  using AffectedVisitor = std::function<void(ReceptionHandle, Watts)>;
  /// Notified for each open reception at the station that just keyed up its
  /// own transmitter (the simulator fails these as Type 3; no power is ever
  /// added to them).
  using SenderVisitor = std::function<void(ReceptionHandle)>;
  /// Notified once per already-active interfering transmission when a
  /// reception opens: (tx_id, power). Pass nullptr unless per-interferer
  /// contributions are needed (multiuser detection).
  using ContributionVisitor = std::function<void(std::uint64_t, Watts)>;

  virtual ~InterferenceEngine() = default;

  [[nodiscard]] virtual std::size_t station_count() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;

  /// Power gain from transmitter `tx` to receiver `rx` (self gain on the
  /// diagonal). Lazy engines evaluate this on demand.
  [[nodiscard]] virtual double gain(StationId rx, StationId tx) const = 0;

  /// Thermal noise floor folded into every interference() result.
  void set_thermal_noise(Watts noise) {
    DRN_EXPECTS(noise.value() > 0.0);
    thermal_w_ = noise.value();
  }
  [[nodiscard]] Watts thermal_noise() const { return Watts{thermal_w_}; }

  /// A transmission keyed up: raise the interference of every open reception
  /// it reaches. Receptions at the sender itself go to `at_sender` instead
  /// (their interference is never touched, matching the Type 3 rule).
  virtual void transmit_started(std::uint64_t tx_id, StationId from,
                                Watts power, const SenderVisitor& at_sender,
                                const AffectedVisitor& affected) = 0;

  /// The transmission left the air: lower everyone else's interference.
  /// Receptions belonging to tx_id itself and receptions at the sender's
  /// station are skipped, mirroring transmit_started exactly.
  virtual void transmit_ended(std::uint64_t tx_id,
                              const AffectedVisitor& affected) = 0;

  /// Opens a reception of `tx_id` at station `rx`; its initial interference
  /// is thermal plus every other active transmission (excluding any from
  /// `rx` itself). `tx_id` must be active (transmit_started already called).
  [[nodiscard]] virtual ReceptionHandle open_reception(
      std::uint64_t tx_id, StationId rx,
      const ContributionVisitor& contribution) = 0;
  virtual void close_reception(ReceptionHandle h) = 0;
  [[nodiscard]] virtual std::size_t open_receptions() const = 0;

  /// Current interference (thermal included) of an open reception.
  [[nodiscard]] virtual Watts interference(ReceptionHandle h) const = 0;

  /// Interference recomputed from scratch off the live transmission set —
  /// the ground truth the incremental value is audited against.
  [[nodiscard]] virtual Watts recomputed_interference(
      ReceptionHandle h) const = 0;

  /// Total power a station hears right now: thermal plus every active
  /// transmission including the station's own (carrier sense).
  [[nodiscard]] virtual Watts power_at(StationId s) const = 0;

  /// Station `s` relocated to `position` (dynamics mobility). Precondition,
  /// enforced by the simulator: the station is RF-idle — it is not
  /// transmitting and has no open reception — so no in-flight interference
  /// sum ever mixes gains sampled at two positions. The dense/compensated
  /// engines recompute the station's matrix row and column and additionally
  /// require enable_mobility() to have been called first (they otherwise
  /// have no propagation model to recompute gains from); the nearfar engine
  /// re-bins the station in its spatial grid and needs no setup. The base
  /// default rejects the call.
  virtual void station_moved(StationId s, geo::Vec2 position);

  /// Hands a matrix-backed engine the placement + propagation model backing
  /// its gain matrix so station_moved() can recompute rows. `self_gain` is
  /// the matrix-diagonal value to restore for the moved station. The nearfar
  /// engine keeps its own placement/model; for it this is a no-op.
  virtual void enable_mobility(geo::Placement placement,
                               std::shared_ptr<const PropagationModel> model,
                               LinearGain self_gain);

 protected:
  double thermal_w_ = 1e-15;
};

/// Station counts above which library code must not build a dense O(M²)
/// matrix outside the engine layer (enforced by drn_lint's dense-matrix
/// rule + make_dense_gains): beyond this, use the nearfar engine.
inline constexpr std::size_t kDenseMatrixGuardM = 4096;

/// The one sanctioned library-side route to a dense matrix: guards M against
/// kDenseMatrixGuardM so accidental metro-scale dense allocations fail fast
/// instead of exhausting memory.
[[nodiscard]] PropagationMatrix make_dense_gains(
    const geo::Placement& placement, const PropagationModel& model,
    LinearGain self_gain = LinearGain{1.0});

/// Legacy engine: plain += on start, subtract-and-clamp on end. Drifts.
[[nodiscard]] std::unique_ptr<InterferenceEngine> make_dense_engine(
    PropagationMatrix gains);

/// Default engine: Neumaier accumulation + periodic exact recomputation.
[[nodiscard]] std::unique_ptr<InterferenceEngine> make_compensated_engine(
    PropagationMatrix gains);

struct NearFarConfig {
  /// Interferers within this radius are summed exactly per pair.
  Meters cutoff;
  /// Grid cell side; <= 0 derives cutoff / 4 (finer cells tighten the
  /// far-field bound, cost grows as the square of cutoff / cell).
  Meters cell;
  /// Matrix-diagonal equivalent for gain(s, s).
  LinearGain self_gain = LinearGain{1.0};
};

/// Near/far engine over lazy gains; never materialises an O(M²) matrix.
[[nodiscard]] std::unique_ptr<InterferenceEngine> make_nearfar_engine(
    const geo::Placement& placement,
    std::shared_ptr<const PropagationModel> model, NearFarConfig config);

}  // namespace drn::radio
