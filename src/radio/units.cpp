#include "radio/units.hpp"

#include <cmath>

#include "common/expects.hpp"

namespace drn::radio {

double to_db(double linear) {
  DRN_EXPECTS(linear > 0.0);
  return 10.0 * std::log10(linear);
}

double from_db(double db) { return std::pow(10.0, db / 10.0); }

double watts_to_dbm(double watts) { return to_db(watts) + 30.0; }

double dbm_to_watts(double dbm) { return from_db(dbm - 30.0); }

double thermal_noise_watts(double bandwidth_hz, double temperature_k) {
  DRN_EXPECTS(bandwidth_hz > 0.0);
  DRN_EXPECTS(temperature_k > 0.0);
  return kBoltzmann * temperature_k * bandwidth_hz;
}

}  // namespace drn::radio
