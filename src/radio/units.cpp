#include "radio/units.hpp"

#include "common/expects.hpp"

namespace drn::radio {

double to_db(double linear) { return LinearGain{linear}.to_db().value(); }

double from_db(double db) { return Decibels{db}.to_linear().value(); }

double watts_to_dbm(double watts) { return Watts{watts}.to_dbm().value(); }

double dbm_to_watts(double dbm) {
  return DecibelMilliwatts{dbm}.to_watts().value();
}

Watts thermal_noise(Hertz bandwidth, double temperature_k) {
  DRN_EXPECTS(bandwidth.value() > 0.0);
  DRN_EXPECTS(temperature_k > 0.0);
  return Watts{kBoltzmann * temperature_k * bandwidth.value()};
}

double thermal_noise_watts(double bandwidth_hz, double temperature_k) {
  return thermal_noise(Hertz{bandwidth_hz}, temperature_k).value();
}

}  // namespace drn::radio
