// Section 4: how interference grows as the system scales (Eq. 7-15, Figure 1).
//
// Setup: M stations at density sigma fill a disc of radius R (the radio
// horizon bounds the interfering population), each transmitting unit power a
// fraction eta of the time. The characteristic length is
//
//     R0 = 1 / sqrt(pi * sigma)        (a disc of radius R0 holds one
//                                       expected station),
//
// chosen, as the paper's footnote says, "because it makes the algebra work
// out nicely": the signal from a neighbour at R0 is S = 1/R0² = pi*sigma,
// the aggregate interference integrated from R0 out to R is
// N = 2*pi*eta*sigma*ln(R/R0) = pi*eta*sigma*ln(M), and so
//
//     S/N = 1 / (eta * ln M)           (Eq. 15)
//
// — independent of scale-length, declining only logarithmically in M. These
// functions reproduce each step plus the divergent infinite-plane integral
// the derivation starts from, and a Monte-Carlo estimator used to validate
// the closed form against random placements (bench F1).
//
// Powers here are normalised to a unit-power transmitter, so "interference"
// and "signal" are dimensionless ratios (LinearGain), exactly as in the
// paper's algebra.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "geo/placement.hpp"
#include "radio/units.hpp"

namespace drn::radio {

/// Characteristic length R0 = 1/sqrt(pi*sigma) for station density `sigma`
/// (stations per square metre).
[[nodiscard]] Meters characteristic_length(double density);

/// Density sigma = M / (pi R²) of M stations filling a disc of radius R.
[[nodiscard]] double disc_density(std::size_t stations, Meters region_radius);

/// The interference integral of Eq. 7/11: total received power at a receiver
/// from transmitters of unit power, density `sigma`, duty cycle `eta`, filling
/// the annulus [r_inner, r_outer] under 1/r² loss:
///
///     N = 2*pi*eta*sigma * ln(r_outer / r_inner).
///
/// Diverges logarithmically as r_outer -> infinity — the paper's Olbers'-
/// paradox observation; callers demonstrate divergence by growing r_outer.
[[nodiscard]] LinearGain annulus_interference(double density, double eta,
                                              Meters r_inner, Meters r_outer);

/// The same interference integral under DUAL-SLOPE propagation (1/r^2 out to
/// `breakpoint`, 1/r^far_exponent beyond): integrated from r_inner to
/// INFINITY it converges to
///
///     N = 2*pi*eta*density * ( ln(breakpoint/r_inner) + 1/(far_exponent-2) )
///
/// — i.e. any extra attenuation beyond free space resolves the paper's
/// Olbers-paradox divergence without invoking the radio horizon ("the
/// slightest bit of atmospheric attenuation ... would make the integral
/// converge"). Requires r_inner <= breakpoint.
[[nodiscard]] LinearGain dual_slope_total_interference(
    double density, double eta, Meters r_inner, Meters breakpoint,
    double far_exponent = 4.0);

/// Eq. 15: expected SNR of a nearest-neighbour (distance R0) transmission in
/// a system of M stations at duty cycle eta. SNR = 1 / (eta * ln M).
[[nodiscard]] LinearGain nearest_neighbor_snr(std::size_t stations,
                                              double eta);

/// Same in dB — the y-axis of Figure 1.
[[nodiscard]] Decibels nearest_neighbor_snr_db(std::size_t stations,
                                               double eta);

/// SNR of a link to a station `distance_multiple` times farther than R0:
/// free-space loss costs a factor of distance_multiple² (6 dB per doubling,
/// Section 4's closing argument that only nearby neighbours are reachable).
[[nodiscard]] LinearGain snr_at_distance_multiple(std::size_t stations,
                                                  double eta,
                                                  double distance_multiple);

/// One Monte-Carlo estimate of the nearest-neighbour SNR: places `stations`
/// uniformly in a disc, picks the station closest to the centre as receiver
/// and its nearest neighbour as the (unit-power) sender, activates every
/// other station independently with probability `eta`, and returns
/// signal / interference under 1/r² loss. Averaged over trials this validates
/// Eq. 15 within its approximations. All three fields are unit-power ratios.
struct SnrSample {
  LinearGain snr;
  LinearGain signal;
  LinearGain interference;
};
[[nodiscard]] SnrSample sample_nearest_neighbor_snr(std::size_t stations,
                                                    Meters region_radius,
                                                    double eta, Rng& rng);

}  // namespace drn::radio
