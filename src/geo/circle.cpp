#include "geo/circle.hpp"

#include <cmath>

#include "common/expects.hpp"

namespace drn::geo {

Circle diameter_circle(Vec2 a, Vec2 b) {
  return Circle{midpoint(a, b), distance(a, b) / 2.0};
}

bool relay_reduces_energy(Vec2 a, Vec2 b, Vec2 c, double path_loss_exponent) {
  DRN_EXPECTS(path_loss_exponent > 0.0);
  const double ab = distance(a, b);
  const double bc = distance(b, c);
  const double ac = distance(a, c);
  return std::pow(ab, path_loss_exponent) + std::pow(bc, path_loss_exponent) <
         std::pow(ac, path_loss_exponent);
}

}  // namespace drn::geo
