#include "geo/placement.hpp"

#include <cmath>
#include <limits>
#include <numbers>

#include "common/expects.hpp"

namespace drn::geo {

namespace {

/// Uniform point in the disc of `radius` around `center` via the inverse-CDF
/// radial method (r = R*sqrt(u) makes area, not radius, uniform).
Vec2 uniform_in_disc(Vec2 center, double radius, Rng& rng) {
  const double r = radius * std::sqrt(rng.uniform());
  const double theta = rng.uniform(0.0, 2.0 * std::numbers::pi);
  return {center.x + r * std::cos(theta), center.y + r * std::sin(theta)};
}

}  // namespace

Placement uniform_disc(std::size_t n, double radius, Rng& rng) {
  DRN_EXPECTS(radius > 0.0);
  Placement p;
  p.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    p.push_back(uniform_in_disc({0.0, 0.0}, radius, rng));
  return p;
}

Placement uniform_square(std::size_t n, double side, Rng& rng) {
  DRN_EXPECTS(side > 0.0);
  Placement p;
  p.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    p.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  return p;
}

Placement jittered_grid(std::size_t rows, std::size_t cols, double spacing,
                        double jitter, Rng& rng) {
  DRN_EXPECTS(spacing > 0.0);
  DRN_EXPECTS(jitter >= 0.0);
  Placement p;
  p.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      Vec2 pos{static_cast<double>(c) * spacing,
               static_cast<double>(r) * spacing};
      if (jitter > 0.0) {
        pos.x += rng.uniform(-jitter, jitter);
        pos.y += rng.uniform(-jitter, jitter);
      }
      p.push_back(pos);
    }
  }
  return p;
}

Placement clustered_disc(std::size_t clusters, std::size_t per_cluster,
                         double radius, double cluster_radius, Rng& rng) {
  DRN_EXPECTS(radius > 0.0);
  DRN_EXPECTS(cluster_radius > 0.0);
  Placement p;
  p.reserve(clusters * per_cluster);
  for (std::size_t c = 0; c < clusters; ++c) {
    const Vec2 parent = uniform_in_disc({0.0, 0.0}, radius, rng);
    for (std::size_t i = 0; i < per_cluster; ++i)
      p.push_back(uniform_in_disc(parent, cluster_radius, rng));
  }
  return p;
}

Placement line(std::size_t n, Vec2 start, double spacing) {
  DRN_EXPECTS(spacing > 0.0);
  Placement p;
  p.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    p.push_back({start.x + static_cast<double>(i) * spacing, start.y});
  return p;
}

Placement ring(std::size_t n, double radius) {
  DRN_EXPECTS(radius > 0.0);
  Placement p;
  p.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double theta =
        2.0 * std::numbers::pi * static_cast<double>(i) / static_cast<double>(n);
    p.push_back({radius * std::cos(theta), radius * std::sin(theta)});
  }
  return p;
}

double expected_neighbors(std::size_t n, double region_radius, double range) {
  DRN_EXPECTS(region_radius > 0.0);
  DRN_EXPECTS(range >= 0.0);
  const double density = static_cast<double>(n) /
                         (std::numbers::pi * region_radius * region_radius);
  return density * std::numbers::pi * range * range;
}

std::vector<double> nearest_neighbor_distances(const Placement& placement) {
  const std::size_t n = placement.size();
  std::vector<double> out(n, std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d2 = distance_sq(placement[i], placement[j]);
      if (d2 < out[i] * out[i]) out[i] = std::sqrt(d2);
      if (d2 < out[j] * out[j]) out[j] = std::sqrt(d2);
    }
  }
  return out;
}

}  // namespace drn::geo
