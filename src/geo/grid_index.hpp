// Uniform spatial grid over a station placement.
//
// Section 4 of the paper argues that interference splits into a handful of
// dominant near-field terms plus an aggregate far-field din; turning that
// into an O(near) algorithm needs a spatial index that answers "which
// stations are within r of here" without walking all M stations. A uniform
// grid fits: cell lookup is O(1), range enumeration is O(cells in range),
// and everything is deterministic (cells are visited in row-major order).
// Mobility re-bins one station at a time (move_station); the grid's extent
// stays the bounding box of the original placement, with outside positions
// clamped into the border cells just like point queries.
#pragma once

#include <cstdint>
#include <vector>

#include "common/expects.hpp"
#include "common/types.hpp"
#include "geo/placement.hpp"
#include "geo/vec2.hpp"

namespace drn::geo {

class GridIndex {
 public:
  /// Buckets `placement` into square cells of side `cell_m`. The grid covers
  /// the placement's bounding box exactly; points outside (queries only) are
  /// clamped to the border cells.
  GridIndex(const Placement& placement, double cell_m);

  [[nodiscard]] std::size_t station_count() const { return cell_of_.size(); }
  [[nodiscard]] double cell_m() const { return cell_m_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] std::int32_t cell_count() const {
    return static_cast<std::int32_t>(cols_) * rows_;
  }

  /// Cell (row-major flattened index) holding station `s`.
  [[nodiscard]] std::int32_t cell_of(StationId s) const {
    DRN_EXPECTS(s < cell_of_.size());
    return cell_of_[s];
  }

  /// Cell containing point `p`, clamped into the grid.
  [[nodiscard]] std::int32_t cell_at(Vec2 p) const;

  /// Centre point of a cell (metres).
  [[nodiscard]] Vec2 cell_center(std::int32_t cell) const;

  /// Chebyshev distance between two cells, in cell units. Two stations in
  /// cells with chebyshev(a, b) <= r are at most (r + 1) * cell_m * sqrt(2)
  /// apart; with chebyshev(a, b) > r they are at least (r - 1) * cell_m
  /// apart (0 when r <= 1).
  [[nodiscard]] int chebyshev(std::int32_t a, std::int32_t b) const;

  /// Stations bucketed in `cell`.
  [[nodiscard]] const std::vector<StationId>& stations_in(
      std::int32_t cell) const {
    DRN_EXPECTS(cell >= 0 && cell < cell_count());
    return cells_[static_cast<std::size_t>(cell)];
  }

  /// Visits every cell within Chebyshev `range` of `cell`, row-major order
  /// (deterministic — callers accumulate floating-point sums over this).
  template <typename F>
  void for_each_cell_in_range(std::int32_t cell, int range, F&& visit) const {
    const int cx = cell % cols_;
    const int cy = cell / cols_;
    const int y_lo = cy - range < 0 ? 0 : cy - range;
    const int y_hi = cy + range >= rows_ ? rows_ - 1 : cy + range;
    const int x_lo = cx - range < 0 ? 0 : cx - range;
    const int x_hi = cx + range >= cols_ ? cols_ - 1 : cx + range;
    for (int y = y_lo; y <= y_hi; ++y)
      for (int x = x_lo; x <= x_hi; ++x) visit(y * cols_ + x);
  }

  /// Visits every station strictly within `radius` metres of `p` (exact
  /// distance filter over the covering cells), ascending station id within a
  /// cell, cells in row-major order.
  template <typename F>
  void for_each_station_within(Vec2 p, double radius, F&& visit) const {
    DRN_EXPECTS(radius >= 0.0);
    const int range = static_cast<int>(radius / cell_m_) + 1;
    const double r2 = radius * radius;
    for_each_cell_in_range(cell_at(p), range, [&](std::int32_t cell) {
      for (StationId s : stations_in(cell))
        if (distance_sq(p, positions_[s]) < r2) visit(s);
    });
  }

  /// Re-bins station `s` at position `p` (dynamics mobility): the old cell
  /// bucket drops `s`, the new one gains it (ids stay ascending). Positions
  /// outside the original bounding box land in the clamped border cell, the
  /// same rule cell_at applies to queries.
  void move_station(StationId s, Vec2 p);

  /// Nearest station to `s` other than `s` itself (expanding ring search);
  /// kNoStation when the placement has a single station.
  [[nodiscard]] StationId nearest_other(StationId s) const;

 private:
  double cell_m_ = 0.0;
  Vec2 origin_;
  int cols_ = 0;
  int rows_ = 0;
  Placement positions_;
  std::vector<std::int32_t> cell_of_;         // per station
  std::vector<std::vector<StationId>> cells_;  // per cell, ascending ids
};

}  // namespace drn::geo
