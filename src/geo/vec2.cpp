#include "geo/vec2.hpp"

// Header-only; this translation unit exists so the target has a stable archive
// member for the module and to host any future out-of-line definitions.
