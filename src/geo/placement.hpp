// Station placement generators.
//
// Section 4 of the paper analyses stations "distributed randomly within a
// circle of radius R"; the simulations in Section 1/8 use 100- and
// 1000-station random placements. Beyond the uniform disc we provide jittered
// grids (engineered deployments), Matérn-style clusters (buildings along
// streets — the paper's motivating scenario), and degenerate line/ring
// layouts useful for constructing worst cases in tests.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "geo/vec2.hpp"

namespace drn::geo {

/// A set of station positions. Index into the vector is the station id used
/// throughout the library.
using Placement = std::vector<Vec2>;

/// `n` stations uniform i.i.d. in the disc of the given radius centred at the
/// origin — the Section 4 model.
[[nodiscard]] Placement uniform_disc(std::size_t n, double radius, Rng& rng);

/// `n` stations uniform i.i.d. in the axis-aligned square [0,side]x[0,side].
[[nodiscard]] Placement uniform_square(std::size_t n, double side, Rng& rng);

/// Stations on a rows x cols grid with the given spacing, each perturbed by a
/// uniform jitter in [-jitter, jitter]^2. jitter = 0 gives an exact lattice.
[[nodiscard]] Placement jittered_grid(std::size_t rows, std::size_t cols,
                                      double spacing, double jitter, Rng& rng);

/// Matérn-style cluster process: `clusters` parent points uniform in the disc
/// of `radius`, each with `per_cluster` daughters uniform in a disc of
/// `cluster_radius` around the parent. Models dense pockets (city blocks)
/// separated by sparser gaps.
[[nodiscard]] Placement clustered_disc(std::size_t clusters,
                                       std::size_t per_cluster, double radius,
                                       double cluster_radius, Rng& rng);

/// `n` stations evenly spaced on a line starting at `start` with the given
/// spacing along +x. Deterministic; useful for multihop chain scenarios.
[[nodiscard]] Placement line(std::size_t n, Vec2 start, double spacing);

/// `n` stations evenly spaced on a circle of the given radius.
[[nodiscard]] Placement ring(std::size_t n, double radius);

/// Expected number of stations within distance `range` of a typical station
/// when `n` stations fill a disc of radius `region_radius` (density * pi *
/// range^2). Section 6 uses this to argue that a reach of 1/sqrt(density)
/// yields only ~pi expected neighbours and that doubling the reach yields
/// ~4*pi.
[[nodiscard]] double expected_neighbors(std::size_t n, double region_radius,
                                        double range);

/// Distance to the nearest other station for each station (brute force,
/// O(n^2)); used to validate the R0 = 1/sqrt(density) characteristic length.
[[nodiscard]] std::vector<double> nearest_neighbor_distances(
    const Placement& placement);

}  // namespace drn::geo
