// 2-D geometry primitives for station placement and propagation distances.
//
// The paper models stations as points in the plane (Section 4 assumes a
// uniform density over a disc bounded by the radio horizon). All positions and
// distances in this library are in metres unless stated otherwise.
#pragma once

#include <cmath>

namespace drn::geo {

/// A point or displacement in the plane, in metres.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(Vec2 o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr Vec2& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) { return a += b; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) { return a -= b; }
  friend constexpr Vec2 operator*(Vec2 a, double s) { return a *= s; }
  friend constexpr Vec2 operator*(double s, Vec2 a) { return a *= s; }
  friend constexpr bool operator==(Vec2 a, Vec2 b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Dot product.
[[nodiscard]] constexpr double dot(Vec2 a, Vec2 b) { return a.x * b.x + a.y * b.y; }

/// Squared Euclidean norm. Prefer this to norm() when comparing distances.
[[nodiscard]] constexpr double norm_sq(Vec2 a) { return dot(a, a); }

/// Euclidean norm.
[[nodiscard]] inline double norm(Vec2 a) { return std::sqrt(norm_sq(a)); }

/// Distance between two points.
[[nodiscard]] inline double distance(Vec2 a, Vec2 b) { return norm(a - b); }

/// Squared distance between two points.
[[nodiscard]] constexpr double distance_sq(Vec2 a, Vec2 b) {
  return norm_sq(a - b);
}

/// Midpoint of the segment ab.
[[nodiscard]] constexpr Vec2 midpoint(Vec2 a, Vec2 b) {
  return {(a.x + b.x) / 2.0, (a.y + b.y) / 2.0};
}

}  // namespace drn::geo
