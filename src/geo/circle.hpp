// Circle predicates used by the minimum-energy routing criterion.
//
// Section 6.2 of the paper: with 1/r^2 free-space power loss, minimum-energy
// routing takes an intermediate hop through B between A and C exactly when B
// lies inside the circle whose diameter is the segment A-C (the smallest
// circle touching both A and C). These helpers express that geometry.
#pragma once

#include "geo/vec2.hpp"

namespace drn::geo {

/// A circle in the plane.
struct Circle {
  Vec2 center;
  double radius = 0.0;

  /// True iff p lies strictly inside the circle.
  [[nodiscard]] bool contains(Vec2 p) const {
    return distance_sq(center, p) < radius * radius;
  }

  /// True iff p lies inside or on the circle.
  [[nodiscard]] bool contains_or_on(Vec2 p) const {
    return distance_sq(center, p) <= radius * radius;
  }
};

/// The smallest circle touching both a and b: center at the midpoint, diameter
/// |ab|. This is the "relay circle" of the paper's Figure 3 discussion.
[[nodiscard]] Circle diameter_circle(Vec2 a, Vec2 b);

/// True iff relaying a->b->c costs less energy than sending a->c directly
/// under an inverse-power path-loss law with the given exponent (paper: 2).
///
/// Energy of a hop of length r is proportional to r^alpha (the transmit power
/// needed to deliver constant power at the receiver). Relaying wins iff
/// |ab|^alpha + |bc|^alpha < |ac|^alpha. For alpha == 2 this is equivalent to
/// b lying strictly inside diameter_circle(a, c) (Thales' theorem: the angle
/// at b is obtuse).
[[nodiscard]] bool relay_reduces_energy(Vec2 a, Vec2 b, Vec2 c,
                                        double path_loss_exponent = 2.0);

}  // namespace drn::geo
