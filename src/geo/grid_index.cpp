#include "geo/grid_index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace drn::geo {

GridIndex::GridIndex(const Placement& placement, double cell_m)
    : cell_m_(cell_m), positions_(placement) {
  DRN_EXPECTS(!placement.empty());
  DRN_EXPECTS(cell_m > 0.0);
  Vec2 lo = placement.front();
  Vec2 hi = placement.front();
  for (const Vec2& p : placement) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }
  origin_ = lo;
  cols_ = static_cast<int>(std::floor((hi.x - lo.x) / cell_m)) + 1;
  rows_ = static_cast<int>(std::floor((hi.y - lo.y) / cell_m)) + 1;
  DRN_EXPECTS(cols_ >= 1 && rows_ >= 1);
  // 2^24 cells ≈ 128 MiB of empty buckets; a placement that sparse wants a
  // bigger cell, not a bigger grid.
  DRN_EXPECTS(static_cast<std::int64_t>(cols_) * rows_ < (1 << 24));

  cells_.resize(static_cast<std::size_t>(cols_) * static_cast<std::size_t>(rows_));
  cell_of_.reserve(placement.size());
  for (StationId s = 0; s < placement.size(); ++s) {
    const std::int32_t c = cell_at(placement[s]);
    cell_of_.push_back(c);
    cells_[static_cast<std::size_t>(c)].push_back(s);
  }
}

std::int32_t GridIndex::cell_at(Vec2 p) const {
  int cx = static_cast<int>(std::floor((p.x - origin_.x) / cell_m_));
  int cy = static_cast<int>(std::floor((p.y - origin_.y) / cell_m_));
  cx = std::clamp(cx, 0, cols_ - 1);
  cy = std::clamp(cy, 0, rows_ - 1);
  return cy * cols_ + cx;
}

Vec2 GridIndex::cell_center(std::int32_t cell) const {
  DRN_EXPECTS(cell >= 0 && cell < cell_count());
  const int cx = cell % cols_;
  const int cy = cell / cols_;
  return {origin_.x + (cx + 0.5) * cell_m_, origin_.y + (cy + 0.5) * cell_m_};
}

int GridIndex::chebyshev(std::int32_t a, std::int32_t b) const {
  DRN_EXPECTS(a >= 0 && a < cell_count() && b >= 0 && b < cell_count());
  const int dx = std::abs(a % cols_ - b % cols_);
  const int dy = std::abs(a / cols_ - b / cols_);
  return std::max(dx, dy);
}

void GridIndex::move_station(StationId s, Vec2 p) {
  DRN_EXPECTS(s < positions_.size());
  positions_[s] = p;
  const std::int32_t to = cell_at(p);
  const std::int32_t from = cell_of_[s];
  if (to == from) return;
  auto& old_bucket = cells_[static_cast<std::size_t>(from)];
  const auto it = std::find(old_bucket.begin(), old_bucket.end(), s);
  DRN_EXPECTS(it != old_bucket.end());
  old_bucket.erase(it);
  auto& new_bucket = cells_[static_cast<std::size_t>(to)];
  new_bucket.insert(std::lower_bound(new_bucket.begin(), new_bucket.end(), s),
                    s);
  cell_of_[s] = to;
}

StationId GridIndex::nearest_other(StationId s) const {
  DRN_EXPECTS(s < positions_.size());
  if (positions_.size() < 2) return kNoStation;
  const Vec2 p = positions_[s];
  const int cx = cell_of(s) % cols_;
  const int cy = cell_of(s) / cols_;
  StationId best = kNoStation;
  double best_sq = std::numeric_limits<double>::infinity();
  const int max_ring = std::max(cols_, rows_);
  for (int ring = 0; ring <= max_ring; ++ring) {
    // Once a candidate is in hand, any station in a farther ring is at least
    // (ring - 1) cells away; stop when that lower bound beats the best.
    if (best != kNoStation && ring >= 2) {
      const double bound = (ring - 1) * cell_m_;
      if (bound * bound > best_sq) break;
    }
    for (int y = cy - ring; y <= cy + ring; ++y) {
      if (y < 0 || y >= rows_) continue;
      for (int x = cx - ring; x <= cx + ring; ++x) {
        if (x < 0 || x >= cols_) continue;
        if (std::max(std::abs(x - cx), std::abs(y - cy)) != ring) continue;
        for (StationId cand : cells_[static_cast<std::size_t>(y * cols_ + x)]) {
          if (cand == s) continue;
          const double d = distance_sq(p, positions_[cand]);
          if (d < best_sq) {
            best_sq = d;
            best = cand;
          }
        }
      }
    }
  }
  return best;
}

}  // namespace drn::geo
