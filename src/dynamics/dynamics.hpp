// The network dynamics & fault-injection engine.
//
// The paper's analysis assumes a quasi-static network: stations hold still,
// clocks drift smoothly, nobody leaves. This subsystem drives a simulation
// through the faults real deployments see, so the scheme's self-organisation
// claims (Sections 3.5, 6.2, 7: neighbour discovery, clock refit, schedule
// maintenance) can be measured rather than assumed:
//
//   * churn    — stations crash (Poisson process), stay down for an
//                exponential holding time, then rejoin with a fresh MAC
//                built by the caller's factory; the simulator facade
//                orchestrates the teardown across its layers (RadioMedium
//                aborts in-flight RF state, StationHost retires the MAC,
//                its timers and generation — DESIGN.md §13) and the
//                surviving stations must evict the ghost and re-adopt the
//                returnee via maintenance beacons;
//   * mobility — a MobilityModel (random waypoint / scripted) is polled on a
//                fixed tick and positions applied through
//                Simulator::try_move_station, re-deriving the propagation
//                gains under the schedule's feet;
//   * drift    — per-station oscillator-rate ramps (ppm/s slopes applied in
//                steps), stressing the clock-model refit machinery;
//   * jammers  — duty-cycled noise stations (jammer.hpp) raising the
//                interference floor.
//
// Everything is deterministic: one Rng handed in at construction drives the
// whole timeline, and the engine advances the simulator itself (run()
// interleaves Simulator::run_until with event application), so a given
// (config, seed) pair replays bit-identically regardless of host threading.
//
// Recovery measurement: after a station rejoins, the engine (as a passive
// SimObserver) watches for the first delivered unicast hop the returnee
// sends or receives; the time from rejoin to that hop is the station's
// re-convergence time, recorded in Metrics::recovery_s().
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "dynamics/jammer.hpp"
#include "dynamics/mobility.hpp"
#include "geo/placement.hpp"
#include "sim/observer.hpp"
#include "sim/simulator.hpp"

namespace drn::dynamics {

/// Builds the replacement MAC for a station rejoining after a crash. The
/// caller decides what a reboot means (the paper's scheme: same schedule and
/// clock config, empty or snapshot neighbour table).
using MacFactory =
    std::function<std::unique_ptr<sim::MacProtocol>(StationId)>;

struct DynamicsConfig {
  /// Station crash rate for the whole network, crashes per second of
  /// simulated time. 0 = no churn.
  double churn_rate_per_s = 0.0;
  /// Mean exponential downtime before a crashed station rejoins.
  double mean_downtime_s = 5.0;

  /// Random-waypoint speed for movable stations. 0 = no mobility.
  double mobility_speed_mps = 0.0;
  /// How often positions are advanced and pushed into the engine.
  double mobility_step_s = 0.5;
  /// Radius of the deployment disc the default waypoint model roams
  /// (required > 0 when mobility is enabled).
  double mobility_region_m = 0.0;

  /// Half-width of the per-station oscillator slope distribution: each
  /// movable station gets a slope uniform in [-drift_ppm_per_s,
  /// +drift_ppm_per_s], applied as rate steps every drift_step_s. 0 = off.
  double drift_ppm_per_s = 0.0;
  double drift_step_s = 1.0;

  /// Jammer stations (appended after the real network by the caller).
  JammerSpec jammer;

  [[nodiscard]] bool churn_enabled() const { return churn_rate_per_s > 0.0; }
  [[nodiscard]] bool mobility_enabled() const {
    return mobility_speed_mps > 0.0;
  }
  [[nodiscard]] bool drift_enabled() const { return drift_ppm_per_s > 0.0; }
  [[nodiscard]] bool enabled() const {
    return churn_enabled() || mobility_enabled() || drift_enabled() ||
           jammer.count > 0;
  }
};

/// Drives one simulation through the configured fault timeline. Construct
/// it, then call run() instead of Simulator::run_until.
class DynamicsEngine final : public sim::SimObserver {
 public:
  /// `movable` is the number of leading station ids subject to churn,
  /// mobility and drift (jammers and other appended infrastructure beyond it
  /// are left alone); `initial` must cover at least the movable stations
  /// (index = id). `rejoin` is required when churn is enabled. `rng` is this
  /// engine's private stream (split it off the trial master). The engine
  /// registers itself as an observer on `sim`; it must outlive the run.
  DynamicsEngine(DynamicsConfig config, sim::Simulator& sim,
                 geo::Placement initial, std::size_t movable,
                 MacFactory rejoin, Rng rng);

  /// Replaces the default RandomWaypoint model (call before run()).
  void set_mobility_model(std::unique_ptr<MobilityModel> model);

  /// Advances the simulation to `t_end_s`, applying the fault timeline along
  /// the way. May be called repeatedly with increasing horizons.
  void run(double t_end_s);

  // -- outcome introspection ------------------------------------------------
  /// Re-convergence samples recorded so far, seconds (also folded into the
  /// simulator's Metrics::recovery_s()).
  [[nodiscard]] const std::vector<double>& recovery_samples() const {
    return recovery_s_;
  }
  /// Mobility position updates applied / refused-and-superseded.
  [[nodiscard]] std::uint64_t moves_applied() const { return moves_applied_; }
  [[nodiscard]] std::uint64_t moves_deferred() const {
    return moves_deferred_;
  }
  /// Stations currently down (rejoin still pending).
  [[nodiscard]] std::size_t stations_down() const {
    return pending_rejoin_.size();
  }

  // -- SimObserver (recovery measurement) -----------------------------------
  void on_transmit_start(const sim::TxEvent& tx) override;
  void on_reception_complete(const sim::RxEvent& rx) override;
  void on_transmit_aborted(const sim::TxEvent& tx, double time_s) override;

 private:
  void initialize(double now_s);
  /// Applies every timeline actor due at `t` (rejoin before leave, so a
  /// station can bounce at one instant without double-counting).
  void apply_due(double t);
  void leave_one(double t);
  void move_all();
  void step_drift();
  void record_recovery(StationId s, double t);
  [[nodiscard]] double next_rejoin_s() const;

  DynamicsConfig config_;
  sim::Simulator& sim_;
  geo::Placement initial_;
  std::size_t movable_;
  MacFactory rejoin_;
  Rng rng_;

  std::unique_ptr<MobilityModel> mobility_;
  std::vector<double> drift_slope_ppm_per_s_;

  bool initialized_ = false;
  double next_leave_s_ = 0.0;
  double next_move_s_ = 0.0;
  double next_drift_s_ = 0.0;
  /// (rejoin time, station), unordered; scanned each loop step.
  std::vector<std::pair<double, StationId>> pending_rejoin_;

  // Recovery measurement state (only populated while a rejoin is pending).
  std::map<StationId, double> pending_recovery_;  // station -> rejoin time
  std::map<std::uint64_t, std::pair<StationId, double>>
      live_tx_;  // tx_id -> (sender, planned end)
  std::vector<double> recovery_s_;

  std::uint64_t moves_applied_ = 0;
  std::uint64_t moves_deferred_ = 0;
};

}  // namespace drn::dynamics
