#include "dynamics/jammer.hpp"

#include <utility>

#include "common/expects.hpp"
#include "sim/simulator.hpp"

namespace drn::dynamics {

JammerMac::JammerMac(double period_s, double duty, double power_w)
    : period_s_(period_s), duty_(duty), power_w_(power_w) {
  DRN_EXPECTS(period_s_ > 0.0);
  DRN_EXPECTS(duty_ > 0.0 && duty_ <= 1.0);
  DRN_EXPECTS(power_w_ > 0.0);
}

void JammerMac::on_start(sim::MacContext& ctx) {
  // Random phase so co-located jammers do not fire in lockstep.
  ctx.set_timer(ctx.now() + ctx.rng().uniform(0.0, period_s_), 0);
}

void JammerMac::on_enqueue(sim::MacContext& ctx, const sim::Packet& pkt,
                           StationId next_hop) {
  (void)next_hop;
  ctx.drop(pkt);  // jammers carry no traffic
}

void JammerMac::on_timer(sim::MacContext& ctx, std::uint64_t cookie) {
  (void)cookie;
  ctx.transmit_noise(power_w_, ctx.now(), duty_ * period_s_);
  ctx.set_timer(ctx.now() + period_s_, 0);
}

geo::Placement with_jammers(const geo::Placement& base, std::size_t count,
                            double region_m, Rng& rng) {
  geo::Placement extended = base;
  for (geo::Vec2 p : geo::uniform_disc(count, region_m, rng))
    extended.push_back(p);
  return extended;
}

void install_jammers(sim::Simulator& sim, std::size_t stations,
                     const JammerSpec& spec) {
  DRN_EXPECTS(sim.station_count() == stations + spec.count);
  for (std::size_t j = 0; j < spec.count; ++j)
    sim.set_mac(static_cast<StationId>(stations + j),
                std::make_unique<JammerMac>(spec.period_s, spec.duty,
                                            spec.power_w));
}

}  // namespace drn::dynamics
