#include "dynamics/mobility.hpp"

#include <cmath>
#include <numbers>

#include "common/expects.hpp"

namespace drn::dynamics {

namespace {

// Uniform point in the disc of `radius` about the origin (area-uniform:
// r = radius * sqrt(u)).
geo::Vec2 uniform_in_disc(double radius, Rng& rng) {
  const double r = radius * std::sqrt(rng.uniform(0.0, 1.0));
  const double theta = rng.uniform(0.0, 2.0 * std::numbers::pi);
  return {r * std::cos(theta), r * std::sin(theta)};
}

}  // namespace

RandomWaypoint::RandomWaypoint(geo::Placement start, double region_m,
                               double speed_mps)
    : positions_(std::move(start)),
      targets_(positions_.size()),
      has_target_(positions_.size(), 0),
      region_m_(region_m),
      speed_mps_(speed_mps) {
  DRN_EXPECTS(region_m_ > 0.0);
  DRN_EXPECTS(speed_mps_ > 0.0);
}

geo::Vec2 RandomWaypoint::step(StationId s, double dt_s, Rng& rng) {
  DRN_EXPECTS(s < positions_.size());
  DRN_EXPECTS(dt_s > 0.0);
  double budget_m = speed_mps_ * dt_s;
  geo::Vec2 p = positions_[s];
  // Walk toward the target, drawing new targets as they are reached. The
  // loop runs at most a handful of times per tick (each iteration covers a
  // full leg of the walk).
  while (budget_m > 0.0) {
    if (has_target_[s] == 0) {
      targets_[s] = uniform_in_disc(region_m_, rng);
      has_target_[s] = 1;
    }
    const geo::Vec2 leg = targets_[s] - p;
    const double leg_m = geo::norm(leg);
    if (leg_m <= budget_m) {
      p = targets_[s];
      has_target_[s] = 0;
      budget_m -= leg_m;
      // A target drawn exactly on the current position would spin the loop
      // without consuming budget; treat arrival as consuming at least an
      // infinitesimal step by redrawing next iteration (the draw itself
      // advances the RNG, and a zero-length leg twice in a row has
      // probability zero under the continuous draw).
      if (leg_m <= 0.0) break;
    } else {
      p += leg * (budget_m / leg_m);
      budget_m = 0.0;
    }
  }
  positions_[s] = p;
  return p;
}

ScriptedPath::ScriptedPath(geo::Placement start)
    : start_(std::move(start)), elapsed_s_(start_.size(), 0.0) {}

void ScriptedPath::add_keyframe(StationId s, double t_s, geo::Vec2 position) {
  DRN_EXPECTS(s < start_.size());
  DRN_EXPECTS(t_s > 0.0);
  auto& path = paths_[s];
  DRN_EXPECTS(path.empty() || path.back().t_s < t_s);
  path.push_back({t_s, position});
}

geo::Vec2 ScriptedPath::step(StationId s, double dt_s, Rng& rng) {
  (void)rng;  // deterministic model
  DRN_EXPECTS(s < start_.size());
  DRN_EXPECTS(dt_s > 0.0);
  elapsed_s_[s] += dt_s;
  const double t = elapsed_s_[s];
  const auto it = paths_.find(s);
  if (it == paths_.end()) return start_[s];
  geo::Vec2 prev_pos = start_[s];
  double prev_t = 0.0;
  for (const Keyframe& k : it->second) {
    if (t < k.t_s) {
      const double alpha = (t - prev_t) / (k.t_s - prev_t);
      return prev_pos + (k.position - prev_pos) * alpha;
    }
    prev_pos = k.position;
    prev_t = k.t_s;
  }
  return prev_pos;  // past the last keyframe: hold
}

}  // namespace drn::dynamics
