// Duty-cycled jammer stations.
//
// A jammer is an extra station whose MAC never carries traffic: it radiates
// periodic pure-noise bursts (MacContext::transmit_noise) that raise the
// interference floor of every reception in range — the adversarial /
// non-network interferer the paper's Section 5 taxonomy classifies as Type 1
// loss at third parties. Jammers are appended AFTER the real stations
// (ids [stations, stations + count)), are excluded from routing, churn,
// mobility and drift, and show up in the metrics only through the noise
// bursts they emit and the losses they cause.
#pragma once

#include <cstddef>
#include <memory>

#include "common/rng.hpp"
#include "geo/placement.hpp"
#include "sim/mac.hpp"

namespace drn::sim {
class Simulator;
}  // namespace drn::sim

namespace drn::dynamics {

struct JammerSpec {
  /// Number of jammer stations appended after the real network. 0 = none.
  std::size_t count = 0;
  /// Burst cadence: one noise burst per period.
  double period_s = 0.5;
  /// Fraction of each period spent radiating, in (0, 1].
  double duty = 0.2;
  /// Radiated noise power per burst, watts.
  double power_w = 1e-3;
};

/// The jammer's MAC: waits a random phase within one period (decorrelating
/// multiple jammers), then emits a `duty * period` noise burst every period,
/// forever. Drops anything enqueued at it.
class JammerMac final : public sim::MacProtocol {
 public:
  JammerMac(double period_s, double duty, double power_w);

  void on_start(sim::MacContext& ctx) override;
  void on_enqueue(sim::MacContext& ctx, const sim::Packet& pkt,
                  StationId next_hop) override;
  void on_timer(sim::MacContext& ctx, std::uint64_t cookie) override;

 private:
  double period_s_;
  double duty_;
  double power_w_;
};

/// Returns `base` with `count` jammer positions appended, drawn uniformly in
/// the disc of `region_m` from `rng`.
[[nodiscard]] geo::Placement with_jammers(const geo::Placement& base,
                                          std::size_t count, double region_m,
                                          Rng& rng);

/// Installs a JammerMac on stations [stations, stations + spec.count) of
/// `sim` (which must have been built over stations + spec.count stations).
void install_jammers(sim::Simulator& sim, std::size_t stations,
                     const JammerSpec& spec);

}  // namespace drn::dynamics
