// Mobility models for the dynamics engine (src/dynamics/dynamics.hpp).
//
// A model owns the *intended* trajectory of every movable station and is
// polled once per mobility tick: step() advances station `s` by `dt_s` and
// returns where it should now be. The engine then applies the position via
// Simulator::try_move_station, which can refuse while the station's RF state
// is in flight — the model keeps advancing regardless, so a refused update is
// simply superseded by the next tick's position (a dropped position report,
// not a stalled trajectory).
//
// The paper assumes quasi-static geometry ("propagation observed over
// seconds", Section 3.5); these models exist to test how the scheme degrades
// when that assumption is bent — gains drift under the schedule's feet and
// the beacon/refit machinery must track them.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "geo/placement.hpp"
#include "geo/vec2.hpp"

namespace drn::dynamics {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Advances station `s` by `dt_s` seconds of its trajectory and returns
  /// its new intended position. Draws (if any) come from `rng` in a
  /// deterministic order: the engine calls step() for s = 0..movable-1 at
  /// every tick, in that order.
  [[nodiscard]] virtual geo::Vec2 step(StationId s, double dt_s,
                                       Rng& rng) = 0;
};

/// Random waypoint over the disc of radius `region_m` centred at the origin
/// (the Section 4 deployment region): each station walks toward a uniformly
/// drawn target at `speed_mps`; on arrival it draws the next target. No
/// pause time — the worst case for gain tracking.
class RandomWaypoint final : public MobilityModel {
 public:
  /// `start` holds the initial positions of the movable stations (index =
  /// station id); only the first `start.size()` ids may be stepped.
  RandomWaypoint(geo::Placement start, double region_m, double speed_mps);

  [[nodiscard]] geo::Vec2 step(StationId s, double dt_s, Rng& rng) override;

 private:
  geo::Placement positions_;
  std::vector<geo::Vec2> targets_;
  std::vector<char> has_target_;
  double region_m_;
  double speed_mps_;
};

/// Deterministic piecewise-linear paths: per-station keyframes
/// (time, position) interpolated linearly, holding the last keyframe
/// afterwards. Stations without keyframes stay at their start position.
/// Used by tests that need an exactly known gain trajectory.
class ScriptedPath final : public MobilityModel {
 public:
  explicit ScriptedPath(geo::Placement start);

  /// Appends a keyframe for `s`; times must be strictly increasing per
  /// station. The path starts at the station's initial position at t = 0.
  void add_keyframe(StationId s, double t_s, geo::Vec2 position);

  [[nodiscard]] geo::Vec2 step(StationId s, double dt_s, Rng& rng) override;

 private:
  struct Keyframe {
    double t_s = 0.0;
    geo::Vec2 position;
  };

  geo::Placement start_;
  std::vector<double> elapsed_s_;  // per-station trajectory clock
  std::map<StationId, std::vector<Keyframe>> paths_;
};

}  // namespace drn::dynamics
