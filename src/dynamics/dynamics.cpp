#include "dynamics/dynamics.hpp"

#include <algorithm>
#include <cstddef>
#include <limits>

#include "common/expects.hpp"

namespace drn::dynamics {

namespace {
constexpr double kNever = std::numeric_limits<double>::infinity();
}  // namespace

DynamicsEngine::DynamicsEngine(DynamicsConfig config, sim::Simulator& sim,
                               geo::Placement initial, std::size_t movable,
                               MacFactory rejoin, Rng rng)
    : config_(config),
      sim_(sim),
      initial_(std::move(initial)),
      movable_(movable),
      rejoin_(std::move(rejoin)),
      rng_(rng) {
  DRN_EXPECTS(config_.enabled());
  DRN_EXPECTS(movable_ > 0 && movable_ <= sim_.station_count());
  DRN_EXPECTS(initial_.size() >= movable_);
  DRN_EXPECTS(!config_.churn_enabled() || rejoin_ != nullptr);
  DRN_EXPECTS(!config_.churn_enabled() || config_.mean_downtime_s > 0.0);
  DRN_EXPECTS(!config_.mobility_enabled() ||
              (config_.mobility_step_s > 0.0 &&
               config_.mobility_region_m > 0.0));
  DRN_EXPECTS(!config_.drift_enabled() || config_.drift_step_s > 0.0);
  if (config_.mobility_enabled()) {
    mobility_ = std::make_unique<RandomWaypoint>(
        geo::Placement(initial_.begin(),
                       initial_.begin() +
                           static_cast<std::ptrdiff_t>(movable_)),
        config_.mobility_region_m, config_.mobility_speed_mps);
  }
  sim_.add_observer(this);
}

void DynamicsEngine::set_mobility_model(std::unique_ptr<MobilityModel> model) {
  DRN_EXPECTS(model != nullptr);
  DRN_EXPECTS(config_.mobility_enabled());  // ticks are keyed off the config
  DRN_EXPECTS(!initialized_);
  mobility_ = std::move(model);
}

void DynamicsEngine::initialize(double now_s) {
  initialized_ = true;
  next_leave_s_ = config_.churn_enabled()
                      ? now_s + rng_.exponential(config_.churn_rate_per_s)
                      : kNever;
  next_move_s_ =
      config_.mobility_enabled() ? now_s + config_.mobility_step_s : kNever;
  next_drift_s_ =
      config_.drift_enabled() ? now_s + config_.drift_step_s : kNever;
  if (config_.drift_enabled()) {
    drift_slope_ppm_per_s_.resize(movable_);
    for (double& slope : drift_slope_ppm_per_s_)
      slope = rng_.uniform(-config_.drift_ppm_per_s, config_.drift_ppm_per_s);
  }
}

double DynamicsEngine::next_rejoin_s() const {
  double t = kNever;
  for (const auto& [when_s, station] : pending_rejoin_) {
    (void)station;
    t = std::min(t, when_s);
  }
  return t;
}

void DynamicsEngine::run(double t_end_s) {
  if (!initialized_) initialize(sim_.now());
  while (true) {
    const double t =
        std::min(std::min(next_leave_s_, next_move_s_),
                 std::min(next_drift_s_, next_rejoin_s()));
    if (!(t <= t_end_s)) break;  // also exits on kNever
    sim_.run_until(t);
    apply_due(t);
  }
  sim_.run_until(t_end_s);
}

void DynamicsEngine::apply_due(double t) {
  // Rejoins first: a station due back at t is up again before a leave drawn
  // at the same instant picks its victim.
  for (std::size_t i = 0; i < pending_rejoin_.size();) {
    if (pending_rejoin_[i].first <= t) {
      const StationId s = pending_rejoin_[i].second;
      sim_.activate_station(s, rejoin_(s));
      pending_recovery_[s] = t;
      pending_rejoin_.erase(pending_rejoin_.begin() +
                            static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  if (next_leave_s_ <= t) {
    leave_one(t);
    next_leave_s_ = t + rng_.exponential(config_.churn_rate_per_s);
  }
  if (next_move_s_ <= t) {
    move_all();
    next_move_s_ = t + config_.mobility_step_s;
  }
  if (next_drift_s_ <= t) {
    step_drift();
    next_drift_s_ = t + config_.drift_step_s;
  }
}

void DynamicsEngine::leave_one(double t) {
  std::vector<StationId> up;
  up.reserve(movable_);
  for (StationId s = 0; s < movable_; ++s)
    if (sim_.station_active(s)) up.push_back(s);
  if (up.empty()) return;  // everyone is already down; the event is wasted
  const StationId victim = up[rng_.uniform_index(up.size())];
  sim_.deactivate_station(victim);
  pending_recovery_.erase(victim);  // a re-crash voids the pending measurement
  pending_rejoin_.emplace_back(
      t + rng_.exponential(1.0 / config_.mean_downtime_s), victim);
}

void DynamicsEngine::move_all() {
  // Every movable station advances its trajectory each tick — including ones
  // currently down (hardware moves whether or not the radio is up). A refused
  // move (RF state in flight) is superseded by the next tick's position.
  for (StationId s = 0; s < movable_; ++s) {
    const geo::Vec2 p = mobility_->step(s, config_.mobility_step_s, rng_);
    if (sim_.try_move_station(s, p))
      ++moves_applied_;
    else
      ++moves_deferred_;
  }
}

void DynamicsEngine::step_drift() {
  for (StationId s = 0; s < movable_; ++s) {
    if (!sim_.station_active(s)) continue;
    sim_.notify_clock_rate(s,
                           drift_slope_ppm_per_s_[s] * config_.drift_step_s);
  }
}

void DynamicsEngine::on_transmit_start(const sim::TxEvent& tx) {
  if (pending_recovery_.empty()) {
    live_tx_.clear();
    return;
  }
  // Event time is monotone: transmissions whose planned end precedes this
  // start are finished (their receptions completed or aborted already).
  std::erase_if(live_tx_, [&](const auto& kv) {
    return kv.second.second < tx.start_s;
  });
  // Only unicast data hops count as re-convergence — a beacon broadcast
  // proves re-discovery, not that the schedule carries traffic again.
  if (tx.to == kNoStation || tx.to == kBroadcast) return;
  live_tx_.emplace(tx.tx_id, std::pair{tx.from, tx.end_s});
}

void DynamicsEngine::on_reception_complete(const sim::RxEvent& rx) {
  if (pending_recovery_.empty() || !rx.delivered) return;
  const auto it = live_tx_.find(rx.tx_id);
  if (it == live_tx_.end()) return;
  record_recovery(it->second.first, it->second.second);
  record_recovery(rx.rx, it->second.second);
}

void DynamicsEngine::on_transmit_aborted(const sim::TxEvent& tx,
                                         double time_s) {
  (void)time_s;
  live_tx_.erase(tx.tx_id);
}

void DynamicsEngine::record_recovery(StationId s, double t) {
  const auto it = pending_recovery_.find(s);
  if (it == pending_recovery_.end()) return;
  const double sample = t - it->second;
  recovery_s_.push_back(sample);
  sim_.metrics().record_recovery(sample);
  pending_recovery_.erase(it);
}

}  // namespace drn::dynamics
