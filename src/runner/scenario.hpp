// Declarative scenario assembly + single-trial execution for the experiment
// runner. This is the scenario logic the bench binaries used to carry
// privately in bench/common.hpp, promoted to a library so sweeps, tools and
// benches share one definition.
//
// A trial is a pure function of (ScenarioSpec, seed): it builds a fresh
// placement, propagation matrix, network and simulator, runs Poisson traffic
// and returns plain-scalar results. No state is shared between trials, which
// is what lets the sweep runner execute them on any thread in any order and
// still produce bit-identical output.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "core/network_builder.hpp"
#include "dynamics/dynamics.hpp"
#include "geo/placement.hpp"
#include "radio/interference_engine.hpp"
#include "radio/propagation_matrix.hpp"
#include "radio/reception.hpp"
#include "routing/dijkstra.hpp"
#include "routing/graph.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"

namespace drn::runner {

/// The channel-access schemes a trial can install: the paper's scheduled
/// scheme or one of the Section 2 prior-work baselines.
enum class MacKind : std::uint8_t {
  kScheme,
  kAloha,
  kSlottedAloha,
  kCsma,
  kMaca,
};

/// CLI name <-> enum. parse_mac returns nullopt for unknown names.
[[nodiscard]] std::optional<MacKind> parse_mac(std::string_view name);
[[nodiscard]] std::string_view mac_name(MacKind mac);

/// 1 Mb/s design rate over 200 MHz spread (23 dB processing gain), 5 dB
/// detection margin — the Section 6 design point.
[[nodiscard]] radio::ReceptionCriterion scheme_criterion();

/// Multihop-flavoured network defaults: reach ~400 m from a 1 nW delivered
/// power target.
[[nodiscard]] core::ScheduledNetworkConfig multihop_config();

/// A fully assembled network: placement, physics, scheduled-network state
/// and min-energy routing tables.
struct Scenario {
  geo::Placement placement;
  radio::PropagationMatrix gains;
  core::ScheduledNetwork net;
  routing::RoutingTables tables;
};

[[nodiscard]] Scenario make_scenario(std::size_t stations, double region_m,
                                     std::uint64_t seed,
                                     core::ScheduledNetworkConfig net_cfg);

/// Everything that defines one experiment point, MAC and workload included.
struct ScenarioSpec {
  std::size_t stations = 40;
  double region_m = 1000.0;
  MacKind mac = MacKind::kScheme;
  /// Aggregate Poisson offer and window.
  double rate_pps = 200.0;
  double duration_s = 2.0;
  double drain_s = 60.0;
  core::ScheduledNetworkConfig net = multihop_config();
  /// Radio design point (criterion() assembles these).
  double bandwidth_hz = 200.0e6;
  double data_rate_bps = 1.0e6;
  double margin_db = 5.0;
  /// Baseline-MAC knobs (the Section 8 comparison defaults).
  double baseline_power_w = 1.0e-4;
  int baseline_max_retries = 6;
  double baseline_backoff_mean_s = 0.01;
  double csma_sense_threshold_w = 2.5e-9;
  /// Ride an audit::InvariantAuditor along on the trial's simulator and
  /// report its verdict in the result (audit_checks / audit_violations).
  bool audit = false;
  /// Interference accounting engine for the trial's simulator.
  radio::InterferenceEngineKind engine =
      radio::InterferenceEngineKind::kCompensated;
  /// Near/far engine knobs (engine == kNearFar only): cutoff radius inside
  /// which interferers are summed exactly (<= 0 = the whole region, i.e.
  /// near-exact) and grid cell side (<= 0 = cutoff / 4).
  double engine_cutoff_m = 0.0;
  double engine_cell_m = 0.0;
  /// Network dynamics & fault injection (src/dynamics/). All off by default:
  /// a spec with dynamics disabled takes exactly the static trial code path,
  /// draw for draw. When churn or drift is on and the MAC is the scheme, set
  /// net.beacon_interval_s (+ neighbor_timeout_s / readopt_neighbors) so the
  /// stations can actually re-converge; jammer stations are appended after
  /// the real network and excluded from traffic, routing and churn. When
  /// mobility is on and mobility_region_m is 0, run_trial fills it from
  /// region_m.
  dynamics::DynamicsConfig dynamics;

  [[nodiscard]] radio::ReceptionCriterion criterion() const {
    return radio::ReceptionCriterion(radio::Hertz{bandwidth_hz},
                                     radio::BitsPerSecond{data_rate_bps},
                                     radio::Decibels{margin_db});
  }
};

/// Plain-scalar summary of one simulation run — everything the paper's
/// Section 8 table reports, cheap to copy across threads.
struct TrialResult {
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t hop_attempts = 0;
  std::uint64_t hop_successes = 0;
  std::uint64_t type1_losses = 0;
  std::uint64_t type2_losses = 0;
  std::uint64_t type3_losses = 0;
  std::uint64_t mac_drops = 0;
  double delivery_ratio = 0.0;
  double mean_delay_s = 0.0;  // 0 when nothing delivered
  double mean_hops = 0.0;     // 0 when nothing delivered
  double tx_per_hop = 0.0;    // attempts / successes; 1.0 = no waste
  double mean_duty = 0.0;     // mean transmit duty cycle
  /// Invariant-audit verdict; both stay 0 unless ScenarioSpec::audit is set.
  std::uint64_t audit_checks = 0;
  std::uint64_t audit_violations = 0;
  /// Dynamics outcome; all zero unless ScenarioSpec::dynamics is enabled.
  std::uint64_t aborted_losses = 0;
  std::uint64_t station_leaves = 0;
  std::uint64_t station_joins = 0;
  std::uint64_t churn_drops = 0;
  std::uint64_t noise_bursts = 0;
  /// Re-convergence after rejoins (seconds to the first delivered unicast
  /// hop involving the returnee); 0 when none was measured.
  std::uint64_t recoveries = 0;
  double mean_recovery_s = 0.0;
  double median_recovery_s = 0.0;
  /// Event-core cost of the trial (Simulator::queue_stats). Perf telemetry
  /// for the bench binaries; deliberately NOT serialized into drn-sweep-v3
  /// documents, whose bytes must not depend on queue internals.
  std::uint64_t events_processed = 0;
  std::uint64_t peak_queue_bytes = 0;
};

/// Extracts a TrialResult from a finished simulator's metrics.
[[nodiscard]] TrialResult summarize(const sim::Metrics& m,
                                    double total_duration_s);

/// Installs the spec's MAC at every station of `scenario` into `sim`.
/// Consumes scenario.net.macs for MacKind::kScheme.
void install_macs(sim::Simulator& sim, Scenario& scenario,
                  const ScenarioSpec& spec);

/// A fresh instance of the spec's baseline MAC (spec.mac != kScheme) — what
/// install_macs gives every station, and what a churned baseline station
/// reboots with.
[[nodiscard]] std::unique_ptr<sim::MacProtocol> make_baseline_mac(
    const ScenarioSpec& spec);

/// Builds the scenario for (spec, seed), runs it, and summarises. The whole
/// trial is deterministic in its two arguments.
[[nodiscard]] TrialResult run_trial(const ScenarioSpec& spec,
                                    std::uint64_t seed);

/// Installs the scheme MACs + min-energy router and runs Poisson
/// uniform-pair traffic; returns the metrics for inspection. (The historical
/// bench/common.hpp helper, kept for the fig/tab binaries.)
const sim::Metrics& run_scheme(Scenario& scenario, sim::Simulator& sim,
                               double packets_per_s, double duration_s,
                               std::uint64_t traffic_seed, double drain_s = 60.0);

}  // namespace drn::runner
