#include "runner/sweep.hpp"

#include <atomic>
#include <chrono>

#include "common/expects.hpp"
#include "runner/json.hpp"
#include "runner/thread_pool.hpp"

namespace drn::runner {

std::uint64_t trial_seed(std::uint64_t master_seed, std::uint64_t trial_index) {
  Rng master(master_seed);
  return master.split(trial_index)();
}

std::vector<Trial> expand(const SweepSpec& spec) {
  DRN_EXPECTS(spec.seeds > 0);
  std::vector<Trial> trials;
  trials.reserve(spec.trial_count());
  for (std::size_t m : spec.stations)
    for (double region : spec.region_m)
      for (MacKind mac : spec.macs)
        for (double rate : spec.rates_pps)
          for (std::size_t rep = 0; rep < spec.seeds; ++rep) {
            Trial t;
            t.index = trials.size();
            t.point = ParamPoint{m, region, mac, rate};
            t.replicate = rep;
            t.seed = trial_seed(spec.master_seed,
                                spec.paired_seeds ? rep : t.index);
            trials.push_back(t);
          }
  return trials;
}

ScenarioSpec trial_scenario(const SweepSpec& spec, const Trial& trial) {
  ScenarioSpec s = spec.base;
  s.stations = trial.point.stations;
  s.region_m = trial.point.region_m;
  s.mac = trial.point.mac;
  s.rate_pps = trial.point.rate_pps;
  s.duration_s = spec.duration_s;
  s.drain_s = spec.drain_s;
  return s;
}

SweepResult run_sweep(
    const SweepSpec& spec, unsigned jobs,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  SweepResult out;
  out.jobs = jobs == 0 ? ThreadPool::hardware_jobs() : jobs;
  out.trials = expand(spec);
  out.results.resize(out.trials.size());

  const auto t0 = std::chrono::steady_clock::now();
  std::atomic<std::size_t> done{0};
  ThreadPool pool(out.jobs);
  parallel_for(pool, out.trials.size(), [&](std::size_t i) {
    const Trial& trial = out.trials[i];
    out.results[i] = run_trial(trial_scenario(spec, trial), trial.seed);
    const std::size_t d = done.fetch_add(1, std::memory_order_relaxed) + 1;
    if (progress) progress(d, out.trials.size());
  });
  out.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
  return out;
}

std::vector<PointSummary> summarize(const SweepSpec& spec,
                                    const SweepResult& result) {
  std::vector<PointSummary> points;
  for (std::size_t i = 0; i < result.trials.size(); ++i) {
    const Trial& trial = result.trials[i];
    if (trial.replicate == 0) {
      PointSummary p;
      p.point = trial.point;
      points.push_back(std::move(p));
    }
    DRN_EXPECTS(!points.empty() && points.back().point == trial.point);
    const TrialResult& r = result.results[i];
    PointSummary& p = points.back();
    p.delivery_ratio.add(r.delivery_ratio);
    if (r.delivered > 0) {
      p.mean_delay_s.add(r.mean_delay_s);
      p.mean_hops.add(r.mean_hops);
    }
    if (r.hop_successes > 0) p.tx_per_hop.add(r.tx_per_hop);
    p.mean_duty.add(r.mean_duty);
    p.offered.add(static_cast<double>(r.offered));
    p.collision_losses.add(static_cast<double>(
        r.type1_losses + r.type2_losses + r.type3_losses));
    if (r.recoveries > 0) p.median_recovery_s.add(r.median_recovery_s);
    p.aborted_losses.add(static_cast<double>(r.aborted_losses));
  }
  DRN_EXPECTS(points.size() * spec.seeds == result.trials.size());
  return points;
}

namespace {

void write_point(json::Writer& w, const ParamPoint& p) {
  w.key("stations").value(p.stations);
  w.key("region_m").value(p.region_m);
  w.key("mac").value(mac_name(p.mac));
  w.key("rate_pps").value(p.rate_pps);
}

void write_stat(json::Writer& w, const char* name, const SummaryStats& s) {
  w.key(name).begin_object();
  w.key("n").value(s.count());
  w.key("mean").value(s.mean());
  w.key("stddev").value(s.stddev());
  w.key("ci95").value(s.ci95_half_width());
  w.end_object();
}

}  // namespace

void write_results_json(std::ostream& os, const SweepSpec& spec,
                        const SweepResult& result) {
  json::Writer w(os);
  w.begin_object();
  w.key("schema").value("drn-sweep-v3");

  w.key("spec").begin_object();
  w.key("master_seed").value(spec.master_seed);
  w.key("seeds").value(spec.seeds);
  w.key("paired_seeds").value(spec.paired_seeds);
  w.key("audit").value(spec.base.audit);
  w.key("engine").value(radio::engine_name(spec.base.engine));
  w.key("engine_cutoff_m").value(spec.base.engine_cutoff_m);
  w.key("engine_cell_m").value(spec.base.engine_cell_m);
  w.key("duration_s").value(spec.duration_s);
  w.key("drain_s").value(spec.drain_s);
  w.key("stations").begin_array();
  for (std::size_t m : spec.stations) w.value(m);
  w.end_array();
  w.key("region_m").begin_array();
  for (double r : spec.region_m) w.value(r);
  w.end_array();
  w.key("macs").begin_array();
  for (MacKind mac : spec.macs) w.value(mac_name(mac));
  w.end_array();
  w.key("rates_pps").begin_array();
  for (double r : spec.rates_pps) w.value(r);
  w.end_array();
  const dynamics::DynamicsConfig& dc = spec.base.dynamics;
  w.key("dynamics").begin_object();
  w.key("enabled").value(dc.enabled());
  w.key("churn_rate_per_s").value(dc.churn_rate_per_s);
  w.key("mean_downtime_s").value(dc.mean_downtime_s);
  w.key("mobility_model")
      .value(dc.mobility_enabled() ? "random_waypoint" : "none");
  w.key("mobility_speed_mps").value(dc.mobility_speed_mps);
  w.key("mobility_step_s").value(dc.mobility_step_s);
  w.key("mobility_region_m").value(dc.mobility_region_m);
  w.key("drift_ppm_per_s").value(dc.drift_ppm_per_s);
  w.key("drift_step_s").value(dc.drift_step_s);
  w.key("jammers").value(dc.jammer.count);
  w.key("jammer_period_s").value(dc.jammer.period_s);
  w.key("jammer_duty").value(dc.jammer.duty);
  w.key("jammer_power_w").value(dc.jammer.power_w);
  w.end_object();
  w.end_object();

  w.key("trials").begin_array();
  for (std::size_t i = 0; i < result.trials.size(); ++i) {
    const Trial& t = result.trials[i];
    const TrialResult& r = result.results[i];
    w.begin_object();
    w.key("index").value(t.index);
    write_point(w, t.point);
    w.key("replicate").value(t.replicate);
    w.key("seed").value(t.seed);
    w.key("offered").value(r.offered);
    w.key("delivered").value(r.delivered);
    w.key("delivery_ratio").value(r.delivery_ratio);
    w.key("hop_attempts").value(r.hop_attempts);
    w.key("hop_successes").value(r.hop_successes);
    w.key("type1_losses").value(r.type1_losses);
    w.key("type2_losses").value(r.type2_losses);
    w.key("type3_losses").value(r.type3_losses);
    w.key("mac_drops").value(r.mac_drops);
    w.key("mean_delay_s").value(r.mean_delay_s);
    w.key("mean_hops").value(r.mean_hops);
    w.key("tx_per_hop").value(r.tx_per_hop);
    w.key("mean_duty").value(r.mean_duty);
    if (spec.base.audit) {
      w.key("audit_checks").value(r.audit_checks);
      w.key("audit_violations").value(r.audit_violations);
    }
    if (spec.base.dynamics.enabled()) {
      w.key("aborted_losses").value(r.aborted_losses);
      w.key("station_leaves").value(r.station_leaves);
      w.key("station_joins").value(r.station_joins);
      w.key("churn_drops").value(r.churn_drops);
      w.key("noise_bursts").value(r.noise_bursts);
      w.key("recoveries").value(r.recoveries);
      w.key("mean_recovery_s").value(r.mean_recovery_s);
      w.key("median_recovery_s").value(r.median_recovery_s);
    }
    w.end_object();
  }
  w.end_array();

  w.key("summaries").begin_array();
  for (const PointSummary& p : summarize(spec, result)) {
    w.begin_object();
    write_point(w, p.point);
    write_stat(w, "delivery_ratio", p.delivery_ratio);
    write_stat(w, "mean_delay_s", p.mean_delay_s);
    write_stat(w, "mean_hops", p.mean_hops);
    write_stat(w, "tx_per_hop", p.tx_per_hop);
    write_stat(w, "mean_duty", p.mean_duty);
    write_stat(w, "offered", p.offered);
    write_stat(w, "collision_losses", p.collision_losses);
    if (spec.base.dynamics.enabled()) {
      write_stat(w, "median_recovery_s", p.median_recovery_s);
      write_stat(w, "aborted_losses", p.aborted_losses);
    }
    w.end_object();
  }
  w.end_array();

  w.end_object();
  os << '\n';
}

void write_timing_json(std::ostream& os, const SweepResult& result) {
  json::Writer w(os, 0);
  w.begin_object();
  w.key("jobs").value(result.jobs);
  w.key("trials").value(result.trials.size());
  w.key("wall_s").value(result.wall_s);
  w.key("trials_per_s").value(result.trials_per_s());
  w.end_object();
  os << '\n';
}

}  // namespace drn::runner
