#include "runner/summary.hpp"

#include <array>
#include <cmath>

#include "common/expects.hpp"

namespace drn::runner {

double t_critical_95(std::uint64_t df) {
  DRN_EXPECTS(df >= 1);
  // Two-sided 95% (alpha/2 = 0.025) critical values, df = 1..30.
  static constexpr std::array<double, 30> kTable = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df <= kTable.size()) return kTable[df - 1];
  return 1.960;
}

double SummaryStats::ci95_half_width() const {
  const auto n = stats_.count();
  if (n < 2) return undefined();  // no interval exists for one sample
  return t_critical_95(n - 1) * stats_.stddev() /
         std::sqrt(static_cast<double>(n));
}

}  // namespace drn::runner
