// Cross-replicate aggregation for sweep results: mean, stddev, and a 95%
// confidence interval per (parameter point, metric), exactly the form the
// SINR-stability literature reports multi-seed sweeps in.
#pragma once

#include <cstdint>
#include <limits>

#include "common/running_stats.hpp"

namespace drn::runner {

/// Streaming mean / stddev / 95% CI accumulator. Thin layer over
/// RunningStats adding the Student-t interval arithmetic.
class SummaryStats {
 public:
  void add(double x) { stats_.add(x); }

  [[nodiscard]] std::uint64_t count() const { return stats_.count(); }

  /// Mean of the samples; 0 when empty (sweeps key metrics that may have no
  /// samples, e.g. delay when nothing was delivered).
  [[nodiscard]] double mean() const {
    return stats_.count() > 0 ? stats_.mean() : 0.0;
  }

  /// Sample standard deviation. With fewer than two samples the statistic
  /// does not exist, and the old 0.0 placeholder silently masqueraded as "no
  /// spread" in every consumer (including drn-sweep-v3 documents, where a
  /// single-seed sweep reported ci95: 0 as if it were an exact result): NaN
  /// here, rendered as JSON null by runner/json.
  [[nodiscard]] double stddev() const {
    return stats_.count() > 1 ? stats_.stddev() : undefined();
  }

  [[nodiscard]] double min() const {
    return stats_.count() > 0 ? stats_.min() : 0.0;
  }
  [[nodiscard]] double max() const {
    return stats_.count() > 0 ? stats_.max() : 0.0;
  }

  /// Half-width of the 95% confidence interval on the mean,
  /// t_{0.975, n-1} * s / sqrt(n). NaN (undefined, like stddev) with fewer
  /// than two samples.
  [[nodiscard]] double ci95_half_width() const;

  /// Interval endpoints; NaN when the width is undefined (n < 2).
  [[nodiscard]] double ci95_lo() const { return mean() - ci95_half_width(); }
  [[nodiscard]] double ci95_hi() const { return mean() + ci95_half_width(); }

 private:
  static double undefined() {
    return std::numeric_limits<double>::quiet_NaN();
  }

  RunningStats stats_;
};

/// Two-sided 95% Student-t critical value t_{0.975, df}. Exact table for
/// df <= 30, the asymptotic normal value 1.960 beyond. df must be >= 1.
[[nodiscard]] double t_critical_95(std::uint64_t df);

}  // namespace drn::runner
