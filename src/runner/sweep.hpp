// Declarative experiment sweeps: the cross-product of parameter axes ×
// seed replicates, fanned across a ThreadPool, aggregated per parameter
// point, and serialisable as JSON.
//
// Determinism contract: trial i's RNG is Rng(master_seed).split(i) — a pure
// function of (master_seed, i), independent of which worker runs the trial
// and in what order trials complete. Results land in a preallocated slot
// indexed by i. Therefore run_sweep(spec, 1) and run_sweep(spec, 8) produce
// identical results vectors, and write_results_json output is byte-identical
// for any job count. Wall-clock timing is deliberately NOT part of the
// results document — it goes in a separate timing record.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <vector>

#include "runner/scenario.hpp"
#include "runner/summary.hpp"

namespace drn::runner {

/// The axes of a sweep. Every combination of (stations, region_m, mac,
/// rate_pps) is one parameter point; each point runs `seeds` replicates.
struct SweepSpec {
  std::vector<std::size_t> stations{40};
  std::vector<double> region_m{1000.0};
  std::vector<MacKind> macs{MacKind::kScheme};
  std::vector<double> rates_pps{200.0};
  /// Seed replicates per parameter point.
  std::size_t seeds = 1;
  std::uint64_t master_seed = 1;
  /// When true, replicate r of EVERY parameter point draws the same seed
  /// (trial seed = f(master_seed, r) instead of f(master_seed, trial
  /// index)): common random numbers, so MACs are compared on identical
  /// placements/traffic — the classic paired variance-reduction technique
  /// and how the paper's Section 8 table is meant to be read.
  bool paired_seeds = false;
  double duration_s = 2.0;
  double drain_s = 60.0;
  /// Base spec for fields not swept (net config, radio design point, ...).
  ScenarioSpec base;

  [[nodiscard]] std::size_t trial_count() const {
    return stations.size() * region_m.size() * macs.size() *
           rates_pps.size() * seeds;
  }
};

/// One point of the sweep's parameter grid.
struct ParamPoint {
  std::size_t stations = 0;
  double region_m = 0.0;
  MacKind mac = MacKind::kScheme;
  double rate_pps = 0.0;

  friend bool operator==(const ParamPoint&, const ParamPoint&) = default;
};

/// One unit of work: a parameter point plus a seed replicate.
struct Trial {
  std::size_t index = 0;      // position in the expanded sweep
  ParamPoint point;
  std::size_t replicate = 0;  // 0 .. seeds-1
  std::uint64_t seed = 0;     // derived from (master_seed, index)
};

/// The deterministic trial seed: first output of Rng(master_seed).split(i).
[[nodiscard]] std::uint64_t trial_seed(std::uint64_t master_seed,
                                       std::uint64_t trial_index);

/// Expands the spec into its trial list: axes vary slowest-to-fastest in the
/// order stations, region, mac, rate, replicate; index is the row number.
[[nodiscard]] std::vector<Trial> expand(const SweepSpec& spec);

/// Builds the full ScenarioSpec for one trial.
[[nodiscard]] ScenarioSpec trial_scenario(const SweepSpec& spec,
                                          const Trial& trial);

/// Per-point aggregation of the replicate results.
struct PointSummary {
  ParamPoint point;
  SummaryStats delivery_ratio;
  SummaryStats mean_delay_s;
  SummaryStats mean_hops;
  SummaryStats tx_per_hop;
  SummaryStats mean_duty;
  SummaryStats offered;
  SummaryStats collision_losses;  // type1 + type2 + type3 per trial
  /// Dynamics aggregates (empty stats when the sweep has no dynamics).
  SummaryStats median_recovery_s;  // over trials that measured a recovery
  SummaryStats aborted_losses;
};

struct SweepResult {
  std::vector<Trial> trials;
  /// results[i] belongs to trials[i].
  std::vector<TrialResult> results;
  /// Measured execution facts — NOT written into the results document.
  double wall_s = 0.0;
  unsigned jobs = 1;

  [[nodiscard]] double trials_per_s() const {
    return wall_s > 0.0 ? static_cast<double>(trials.size()) / wall_s : 0.0;
  }
};

/// Runs every trial of the sweep across `jobs` worker threads. `progress`
/// (optional) is called after each trial completes with (done, total); it
/// may run on any worker thread.
[[nodiscard]] SweepResult run_sweep(
    const SweepSpec& spec, unsigned jobs,
    const std::function<void(std::size_t, std::size_t)>& progress = {});

/// Aggregates the per-trial results by parameter point (grid order).
[[nodiscard]] std::vector<PointSummary> summarize(const SweepSpec& spec,
                                                  const SweepResult& result);

/// Writes the deterministic results document (schema "drn-sweep-v3"):
/// spec (including the dynamics block), per-trial results (dynamics
/// counters included only when dynamics is enabled), per-point summaries.
/// Byte-identical for any thread count.
void write_results_json(std::ostream& os, const SweepSpec& spec,
                        const SweepResult& result);

/// Writes the one-line timing record: {"jobs":..,"trials":..,"wall_s":..,
/// "trials_per_s":..}. Varies run to run — keep it out of results files you
/// intend to diff.
void write_timing_json(std::ostream& os, const SweepResult& result);

}  // namespace drn::runner
