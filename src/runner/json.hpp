// A minimal JSON writer — no external dependencies, deterministic output.
//
// Determinism matters here: sweep results written with --jobs 1 and --jobs 8
// must be byte-identical, so doubles are rendered with std::to_chars
// (shortest round-trip form, locale-independent) and the caller controls key
// order. Non-finite doubles, which JSON cannot represent, are written as
// null.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace drn::runner::json {

/// Escapes `s` for inclusion inside a JSON string literal (no surrounding
/// quotes): backslash, quote, and control characters become \", \\, \n, ...
/// or \u00XX.
[[nodiscard]] std::string escape(std::string_view s);

/// Inverse of escape: decodes backslash escapes (including \u00XX for
/// code points up to 0xFF; larger \uXXXX are passed through as UTF-8).
/// Returns nullopt on malformed input.
[[nodiscard]] std::optional<std::string> unescape(std::string_view s);

/// Renders a double exactly as the writer does: shortest round-trip decimal
/// via std::to_chars, "null" for NaN/inf.
[[nodiscard]] std::string number(double v);

/// Streaming writer. Usage:
///
///   json::Writer w(os);
///   w.begin_object();
///   w.key("stations").value(std::uint64_t{40});
///   w.key("macs").begin_array().value("scheme").value("aloha").end_array();
///   w.end_object();
///
/// The writer inserts commas and (when indent > 0) newlines/indentation; it
/// does not validate that keys appear only inside objects.
class Writer {
 public:
  explicit Writer(std::ostream& os, int indent = 2) : os_(os), indent_(indent) {}

  Writer& begin_object() { return open('{'); }
  Writer& end_object() { return close('}'); }
  Writer& begin_array() { return open('['); }
  Writer& end_array() { return close(']'); }

  Writer& key(std::string_view k);

  Writer& value(std::string_view v);
  Writer& value(const char* v) { return value(std::string_view(v)); }
  Writer& value(double v);
  Writer& value(std::uint64_t v);
  Writer& value(std::int64_t v);
  Writer& value(int v) { return value(static_cast<std::int64_t>(v)); }
  Writer& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  Writer& value(bool v);
  Writer& null();

 private:
  Writer& open(char bracket);
  Writer& close(char bracket);
  /// Comma/newline bookkeeping before a value or key is emitted.
  void separate();
  void newline_indent();
  Writer& raw(std::string_view text);

  std::ostream& os_;
  int indent_;
  // One entry per open container: whether it has emitted an element yet.
  std::vector<bool> has_element_;
  bool after_key_ = false;
};

}  // namespace drn::runner::json
