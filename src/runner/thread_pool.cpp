#include "runner/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "common/expects.hpp"

namespace drn::runner {

ThreadPool::ThreadPool(unsigned workers) {
  workers = std::max(1u, workers);
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  auto future = wrapped.get_future();
  {
    std::lock_guard lock(mutex_);
    DRN_EXPECTS(!stop_);
    queue_.push_back(std::move(wrapped));
  }
  cv_.notify_one();
  return future;
}

unsigned ThreadPool::hardware_jobs() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures any exception into the future
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    futures.push_back(pool.submit([&body, i] { body(i); }));
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace drn::runner
