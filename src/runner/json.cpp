#include "runner/json.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace drn::runner::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x", c);
          out += buf.data();
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

/// Parses exactly 4 hex digits; returns -1 on malformed input.
int hex4(std::string_view s) {
  if (s.size() < 4) return -1;
  int v = 0;
  for (int i = 0; i < 4; ++i) {
    const char c = s[static_cast<std::size_t>(i)];
    int d = 0;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
    else return -1;
    v = v * 16 + d;
  }
  return v;
}

void append_utf8(std::string& out, int cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

}  // namespace

std::optional<std::string> unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (++i >= s.size()) return std::nullopt;
    switch (s[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        const int cp = hex4(s.substr(i + 1));
        if (cp < 0) return std::nullopt;
        append_utf8(out, cp);
        i += 4;
        break;
      }
      default: return std::nullopt;
    }
  }
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  std::array<char, 32> buf{};
  const auto [end, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  (void)ec;  // 32 chars always suffice for shortest round-trip doubles
  return std::string(buf.data(), end);
}

Writer& Writer::key(std::string_view k) {
  separate();
  raw("\"").raw(escape(k)).raw("\":");
  if (indent_ > 0) raw(" ");
  after_key_ = true;
  return *this;
}

Writer& Writer::value(std::string_view v) {
  separate();
  return raw("\"").raw(escape(v)).raw("\"");
}

Writer& Writer::value(double v) {
  separate();
  return raw(number(v));
}

Writer& Writer::value(std::uint64_t v) {
  separate();
  return raw(std::to_string(v));
}

Writer& Writer::value(std::int64_t v) {
  separate();
  return raw(std::to_string(v));
}

Writer& Writer::value(bool v) {
  separate();
  return raw(v ? "true" : "false");
}

Writer& Writer::null() {
  separate();
  return raw("null");
}

Writer& Writer::open(char bracket) {
  separate();
  os_ << bracket;
  has_element_.push_back(false);
  return *this;
}

Writer& Writer::close(char bracket) {
  const bool had_elements = !has_element_.empty() && has_element_.back();
  if (!has_element_.empty()) has_element_.pop_back();
  if (had_elements) newline_indent();
  os_ << bracket;
  return *this;
}

void Writer::separate() {
  if (after_key_) {
    after_key_ = false;  // the value sits on the key's line
    return;
  }
  if (has_element_.empty()) return;  // top-level value
  if (has_element_.back()) os_ << ',';
  has_element_.back() = true;
  newline_indent();
}

void Writer::newline_indent() {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (std::size_t i = 0; i < has_element_.size() * static_cast<std::size_t>(indent_); ++i)
    os_ << ' ';
}

Writer& Writer::raw(std::string_view text) {
  os_ << text;
  return *this;
}

}  // namespace drn::runner::json
