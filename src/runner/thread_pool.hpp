// A fixed-size worker pool for fanning independent trials across cores.
//
// Design constraints (see DESIGN.md "Runner determinism contract"):
//   * tasks must not share mutable state — the pool provides no synchronisation
//     beyond the queue itself;
//   * exceptions thrown inside a task are captured and re-thrown to the
//     caller (from the task's future, or from parallel_for, which re-throws
//     the exception of the LOWEST-indexed failing iteration so the error a
//     caller sees does not depend on scheduling).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace drn::runner {

class ThreadPool {
 public:
  /// Spawns `workers` threads (minimum 1).
  explicit ThreadPool(unsigned workers);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned worker_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues `task`; the future completes when it has run (or re-throws
  /// whatever the task threw).
  std::future<void> submit(std::function<void()> task);

  /// std::thread::hardware_concurrency clamped to at least 1.
  [[nodiscard]] static unsigned hardware_jobs();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs body(0) .. body(n-1) across the pool and blocks until all complete.
/// If any iterations throw, the exception of the lowest-indexed failing
/// iteration is re-thrown (all iterations still run to completion first).
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

}  // namespace drn::runner
